#include "fleetsim/events.hpp"

#include <algorithm>

namespace qucp::fleetsim {

namespace {

/// std::push_heap/pop_heap build a max-heap, so "greater" here means
/// "pops later": later time first, then higher sequence number.
struct PopsLater {
  bool operator()(const SimEvent& a, const SimEvent& b) const noexcept {
    if (a.time_s != b.time_s) return a.time_s > b.time_s;
    return a.seq > b.seq;
  }
};

}  // namespace

void EventQueue::push(EventKind kind, double time_s, std::uint64_t payload) {
  heap_.push_back({time_s, next_seq_++, kind, payload});
  std::push_heap(heap_.begin(), heap_.end(), PopsLater{});
}

SimEvent EventQueue::pop() {
  std::pop_heap(heap_.begin(), heap_.end(), PopsLater{});
  SimEvent event = heap_.back();
  heap_.pop_back();
  return event;
}

}  // namespace qucp::fleetsim
