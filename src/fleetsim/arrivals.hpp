#pragma once
// Arrival processes for the fleet simulator.
//
// "Millions of users" is a statement about the *arrival stream*, not the
// chips, so the policy-evaluation harness needs traffic knobs that cover
// the shapes real queues see:
//
//   Poisson — memoryless baseline: i.i.d. exponential inter-arrival gaps
//             at a fixed rate. The classic open-queue model behind §II-A's
//             waiting-time term.
//   Bursty  — two-phase Markov-modulated Poisson process (MMPP-2): the
//             stream alternates between a calm phase at the base rate and
//             a burst phase at `burst_factor` times the base rate, with
//             exponentially distributed phase sojourns. Queue-aware
//             routing earns its keep exactly when bursts pile work onto
//             whichever chip a static policy favors.
//   Diurnal — non-homogeneous Poisson with a sinusoidal day/night rate
//             profile, sampled by thinning (Lewis & Shedler): candidates
//             are drawn at the peak rate and accepted with probability
//             rate(t)/peak, which keeps the stream exact and replayable.
//
// Generation is a pure function of (config, count, seed): the time stream
// and the job-class stream draw from independently derived Rng substreams,
// so the same seed reproduces the trace bit-for-bit regardless of how the
// simulation downstream is threaded or replayed (the determinism contract
// tests/test_fleetsim.cpp pins).

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace qucp::fleetsim {

enum class ArrivalKind { Poisson, Bursty, Diurnal };

[[nodiscard]] std::string_view arrival_kind_name(ArrivalKind kind) noexcept;

struct ArrivalConfig {
  ArrivalKind kind = ArrivalKind::Poisson;
  /// Base arrival rate in jobs per second (the calm-phase rate for Bursty,
  /// the mean rate for Diurnal). Must be > 0.
  double rate_per_s = 1.0;

  // Bursty (MMPP-2) knobs.
  double burst_factor = 8.0;   ///< burst-phase rate multiplier (>= 1)
  double calm_mean_s = 240.0;  ///< mean sojourn in the calm phase
  double burst_mean_s = 30.0;  ///< mean sojourn in the burst phase

  // Diurnal knobs: rate(t) = rate_per_s * (1 + depth * sin(2 pi t / period)).
  double diurnal_period_s = 86400.0;
  double diurnal_depth = 0.8;  ///< in [0, 1); 0 degenerates to Poisson

  /// Job-class mixing weights; arrivals sample class ids from this
  /// discrete distribution. Must be non-empty with a positive total.
  std::vector<double> class_weights = {1.0};
};

/// One job hitting the fleet's front door.
struct Arrival {
  double time_s = 0.0;
  int job_class = 0;
};

/// Generate `count` arrivals. Times are strictly non-decreasing from 0;
/// deterministic in (config, count, seed). Throws std::invalid_argument
/// on nonsensical configs (rate <= 0, empty weights, depth outside [0,1)).
[[nodiscard]] std::vector<Arrival> generate_arrivals(
    const ArrivalConfig& config, std::size_t count, std::uint64_t seed);

}  // namespace qucp::fleetsim
