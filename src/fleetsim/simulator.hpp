#pragma once
// FleetSimulator: a deterministic discrete-event model of the fleet.
//
// The service layer (service/fleet.hpp) routes a live job stream; this
// simulator answers the question the live path cannot afford to ask —
// "what would this routing policy have done to latency under a million
// jobs of realistic traffic?" — by replaying an arrival stream against a
// modeled fleet. Each device is a service lane: a FIFO queue of admitted
// jobs, an open tail batch that fills to `max_batch_size`, and a drain
// model where a dispatched batch occupies the device for
// job_runtime_s(model, max member makespan) seconds — the same
// RuntimeModel (core/runtime.hpp) the service's modeled-drain metric and
// BENCH_fleet.json use, so online and offline numbers share units.
//
// Job classes carry calibration-dependent per-device execution estimates
// (makespan_ns from the real transpile + ALAP-schedule machinery, or the
// shape-based estimator in service/fleet.hpp) and per-device solo-EFS
// fidelity scores; a negative makespan marks a device the class cannot be
// placed on, and every routing policy excludes those.
//
// Routing policies mirror the online RoutingPolicy set by name and
// decision rule, plus the queue-aware one this subsystem exists for:
//   RoundRobin      — rotate over fitting devices by arrival ordinal.
//   LeastLoaded     — ascending cumulative routed qubit load, ties low id.
//   BestEfs         — ascending solo EFS (error), ties low id.
//   ExpectedLatency — ascending modeled completion: remaining busy time
//                     + drain of queued batches ahead + the runtime of the
//                     batch the job would join (open-batch occupancy makes
//                     joining an already-slow batch nearly free and
//                     opening a fresh batch behind a backlog expensive).
//
// Determinism: the simulation is single-threaded pure logic over the
// event queue (fleetsim/events.hpp); the same arrival stream produces a
// bit-identical trace regardless of kernel thread caps, submission
// interleaving, or whether the arrivals were generated or replayed from a
// recorded trace. tests/test_fleetsim.cpp pins all three.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/runtime.hpp"
#include "fleetsim/arrivals.hpp"

namespace qucp::fleetsim {

/// A job template: one circuit the traffic mix draws from, with its
/// modeled footprint on every fleet device.
struct SimJobClass {
  std::string name;
  int qubits = 0;
  /// Modeled batch-context makespan per device id; < 0 when the class
  /// cannot be placed on that device even alone.
  std::vector<double> makespan_ns;
  /// Best solo EFS per device id (error; lower is better). Only read for
  /// devices the class fits on.
  std::vector<double> efs;
};

enum class SimPolicy { RoundRobin, LeastLoaded, BestEfs, ExpectedLatency };

[[nodiscard]] std::string_view sim_policy_name(SimPolicy policy) noexcept;

/// Calibration drift applied to one device over a time window — the
/// offline mirror of a chip degrading between live recalibrations
/// (service/backend.hpp). Inside [start_s, end_s) the device's EFS
/// (2q-error-driven fidelity score) and makespans ramp linearly with the
/// time since the last recalibration; `recalibration_period_s` models the
/// scheduled daily cycle that resets the accumulated drift, and at end_s
/// a final recalibration restores the device for good. Outside the window
/// the device is exactly its base self, so a drift-free configuration is
/// bit-identical to a simulator without drift support.
struct DriftProcess {
  int device = 0;
  double start_s = 0.0;  ///< drift onset
  double end_s = 0.0;    ///< final recalibration; restored at and after
  /// Fractional EFS growth per second of accumulated drift (error grows,
  /// so BestEfs/ExpectedLatency see the chip worsen).
  double efs_ramp_per_s = 0.0;
  /// Fractional makespan growth per second of accumulated drift (gates
  /// slow down as calibration decays).
  double makespan_ramp_per_s = 0.0;
  /// Scheduled recalibration period within the window; <= 0 means the
  /// drift accumulates unchecked until end_s.
  double recalibration_period_s = 0.0;
};

struct SimOptions {
  SimPolicy policy = SimPolicy::ExpectedLatency;
  int max_batch_size = 4;  ///< jobs per dispatched batch; <= 0 unbounded
  /// Device-time model for batch runtimes (shots, per-job overhead). The
  /// queue_depth field is ignored — queueing is what the simulator models.
  RuntimeModel model;
  /// Drift scenarios, applied multiplicatively when several target the
  /// same device. Empty = frozen calibration (bit-identical to the
  /// pre-drift simulator).
  std::vector<DriftProcess> drift;
};

/// Per-job outcome, in arrival order. start_s/end_s bound the job's batch
/// on its device; latency is end_s - arrival_s (waiting + execution).
struct JobRecord {
  int job_class = 0;
  int device = -1;
  double arrival_s = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Full simulation outcome: one record per arrival plus per-device
/// occupancy. hash() folds every field of every record, so two traces
/// with the same hash are (for all testing purposes) bit-identical.
struct SimTrace {
  std::vector<JobRecord> jobs;
  std::vector<double> busy_s;     ///< summed batch occupancy per device
  std::vector<std::uint64_t> batches;  ///< batches dispatched per device
  double horizon_s = 0.0;         ///< last batch completion time
  [[nodiscard]] std::uint64_t hash() const;
};

class FleetSimulator {
 public:
  /// `classes` must all carry per-device vectors of length `num_devices`,
  /// and every class must fit on at least one device.
  FleetSimulator(std::vector<SimJobClass> classes, std::size_t num_devices,
                 SimOptions options);

  /// Replay an arrival stream to completion. Pure: identical inputs give
  /// a bit-identical trace; the simulator's own state resets per run.
  [[nodiscard]] SimTrace run(std::span<const Arrival> arrivals) const;

  [[nodiscard]] std::size_t num_devices() const noexcept {
    return num_devices_;
  }
  [[nodiscard]] const std::vector<SimJobClass>& classes() const noexcept {
    return classes_;
  }
  [[nodiscard]] const SimOptions& options() const noexcept {
    return options_;
  }

 private:
  std::vector<SimJobClass> classes_;
  std::size_t num_devices_ = 0;
  SimOptions options_;
};

}  // namespace qucp::fleetsim
