#include "fleetsim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qucp::fleetsim {

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) {
    throw std::invalid_argument("percentile: empty sample");
  }
  if (!(q >= 0.0) || !(q <= 100.0)) {
    throw std::invalid_argument("percentile: q outside [0, 100]");
  }
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  if (q == 0.0) return sorted.front();
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(q / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(rank, sorted.size()) - 1];
}

TraceSummary summarize(const SimTrace& trace,
                       std::span<const SimJobClass> classes,
                       std::size_t num_devices) {
  TraceSummary s;
  s.jobs = trace.jobs.size();
  s.horizon_s = trace.horizon_s;
  s.trace_hash = trace.hash();
  s.routed.assign(num_devices, 0);
  s.batches = trace.batches;
  s.utilization.assign(num_devices, 0.0);
  for (std::size_t d = 0; d < num_devices; ++d) {
    s.utilization[d] =
        trace.horizon_s > 0.0 ? trace.busy_s[d] / trace.horizon_s : 0.0;
  }
  if (trace.jobs.empty()) return s;

  std::vector<double> latencies;
  latencies.reserve(trace.jobs.size());
  double wait_sum = 0.0;
  double efs_sum = 0.0;
  for (const JobRecord& r : trace.jobs) {
    latencies.push_back(r.end_s - r.arrival_s);
    wait_sum += r.start_s - r.arrival_s;
    efs_sum += classes[static_cast<std::size_t>(r.job_class)]
                   .efs[static_cast<std::size_t>(r.device)];
    s.routed[static_cast<std::size_t>(r.device)] += 1;
    s.max_latency_s = std::max(s.max_latency_s, latencies.back());
  }
  double latency_sum = 0.0;
  for (double l : latencies) latency_sum += l;
  const double n = static_cast<double>(latencies.size());
  s.mean_latency_s = latency_sum / n;
  s.mean_wait_s = wait_sum / n;
  s.mean_efs = efs_sum / n;
  s.p50_latency_s = percentile(latencies, 50.0);
  s.p95_latency_s = percentile(latencies, 95.0);
  s.p99_latency_s = percentile(latencies, 99.0);
  return s;
}

}  // namespace qucp::fleetsim
