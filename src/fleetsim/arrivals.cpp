#include "fleetsim/arrivals.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "common/rng.hpp"

namespace qucp::fleetsim {

namespace {

/// Exponential deviate with the given rate, from a uniform draw. uniform()
/// is in [0, 1), so the log argument is in (0, 1] and the result finite.
double exponential(Rng& rng, double rate) {
  return -std::log(1.0 - rng.uniform()) / rate;
}

void validate(const ArrivalConfig& config) {
  if (!(config.rate_per_s > 0.0)) {
    throw std::invalid_argument("generate_arrivals: rate_per_s must be > 0");
  }
  if (config.class_weights.empty()) {
    throw std::invalid_argument("generate_arrivals: empty class_weights");
  }
  if (config.kind == ArrivalKind::Bursty) {
    if (!(config.burst_factor >= 1.0) || !(config.calm_mean_s > 0.0) ||
        !(config.burst_mean_s > 0.0)) {
      throw std::invalid_argument(
          "generate_arrivals: bursty config needs burst_factor >= 1 and "
          "positive phase sojourns");
    }
  }
  if (config.kind == ArrivalKind::Diurnal) {
    if (!(config.diurnal_depth >= 0.0) || !(config.diurnal_depth < 1.0) ||
        !(config.diurnal_period_s > 0.0)) {
      throw std::invalid_argument(
          "generate_arrivals: diurnal config needs depth in [0, 1) and a "
          "positive period");
    }
  }
}

}  // namespace

std::string_view arrival_kind_name(ArrivalKind kind) noexcept {
  switch (kind) {
    case ArrivalKind::Poisson: return "poisson";
    case ArrivalKind::Bursty: return "bursty";
    case ArrivalKind::Diurnal: return "diurnal";
  }
  return "?";
}

std::vector<Arrival> generate_arrivals(const ArrivalConfig& config,
                                       std::size_t count,
                                       std::uint64_t seed) {
  validate(config);
  const Rng root(seed);
  Rng times = root.derive("fleetsim/arrival-times");
  Rng classes = root.derive("fleetsim/arrival-classes");

  std::vector<Arrival> arrivals;
  arrivals.reserve(count);
  double t = 0.0;

  switch (config.kind) {
    case ArrivalKind::Poisson: {
      for (std::size_t i = 0; i < count; ++i) {
        t += exponential(times, config.rate_per_s);
        arrivals.push_back({t, 0});
      }
      break;
    }
    case ArrivalKind::Bursty: {
      // MMPP-2: within a phase arrivals are Poisson at the phase rate;
      // crossing a phase boundary discards the in-flight gap and resamples
      // at the new rate (both exponentials are memoryless, so this is the
      // exact process, not an approximation).
      bool burst = false;
      double phase_end = exponential(times, 1.0 / config.calm_mean_s);
      for (std::size_t i = 0; i < count; ++i) {
        for (;;) {
          const double rate = burst
                                  ? config.rate_per_s * config.burst_factor
                                  : config.rate_per_s;
          const double candidate = t + exponential(times, rate);
          if (candidate <= phase_end) {
            t = candidate;
            break;
          }
          t = phase_end;
          burst = !burst;
          phase_end = t + exponential(times, burst
                                                 ? 1.0 / config.burst_mean_s
                                                 : 1.0 / config.calm_mean_s);
        }
        arrivals.push_back({t, 0});
      }
      break;
    }
    case ArrivalKind::Diurnal: {
      // Thinning at the peak rate: every candidate gap costs one uniform
      // for the gap and one for the accept test, so the draw count (and
      // the stream) is a pure function of the seed.
      const double peak = config.rate_per_s * (1.0 + config.diurnal_depth);
      for (std::size_t i = 0; i < count; ++i) {
        for (;;) {
          t += exponential(times, peak);
          const double rate =
              config.rate_per_s *
              (1.0 + config.diurnal_depth *
                         std::sin(2.0 * std::numbers::pi * t /
                                  config.diurnal_period_s));
          if (times.uniform() * peak <= rate) break;
        }
        arrivals.push_back({t, 0});
      }
      break;
    }
  }

  for (Arrival& a : arrivals) {
    a.job_class = static_cast<int>(classes.discrete(config.class_weights));
  }
  return arrivals;
}

}  // namespace qucp::fleetsim
