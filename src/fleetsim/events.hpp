#pragma once
// Discrete-event core of the fleet simulator.
//
// The paper's §II-A decomposes overall runtime into waiting time +
// execution time; everything the fleet-level claims rest on (queue
// pressure, batch drains, policy choices) is a sequence of timed events.
// This queue is the single source of time in the simulator: events pop in
// (time, sequence) order, where the sequence number is assigned at push
// and breaks ties deterministically — two events at the same instant
// always replay in the order they were scheduled, so a whole simulation
// is a pure function of its inputs (no wall clock, no thread timing).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qucp::fleetsim {

enum class EventKind {
  JobArrival,  ///< payload = index into the arrival stream
  DeviceFree,  ///< payload = device id whose batch just drained
};

struct SimEvent {
  double time_s = 0.0;
  std::uint64_t seq = 0;  ///< push order; the deterministic tie-break
  EventKind kind = EventKind::JobArrival;
  std::uint64_t payload = 0;
};

/// Time-ordered event queue with a stable tie-break on sequence number.
/// A plain binary min-heap: the simulator pushes O(jobs + batches) events,
/// so 1M-job traces stay a few tens of MB and pops are O(log n).
class EventQueue {
 public:
  void push(EventKind kind, double time_s, std::uint64_t payload);

  /// Pop the earliest event; ties on time resolve to the lowest sequence
  /// number. Precondition: !empty().
  [[nodiscard]] SimEvent pop();

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  /// Total events ever pushed (== the next sequence number).
  [[nodiscard]] std::uint64_t pushed() const noexcept { return next_seq_; }

 private:
  std::vector<SimEvent> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace qucp::fleetsim
