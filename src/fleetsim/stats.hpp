#pragma once
// Trace summarization: the per-policy numbers BENCH_fleetsim.json reports.
//
// Latency here is §II-A's overall runtime — waiting time + execution time
// — measured per job from its arrival to its batch's completion. The tail
// percentiles (p95/p99) are the policy-discriminating numbers: mean
// latency barely moves between sane policies while a queue-blind one
// quietly parks the tail of the distribution behind a saturated chip.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fleetsim/simulator.hpp"

namespace qucp::fleetsim {

/// Nearest-rank percentile (q in [0, 100]) of an unsorted sample.
/// Copies and sorts internally; deterministic for identical inputs.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

struct TraceSummary {
  std::size_t jobs = 0;
  double horizon_s = 0.0;     ///< last batch completion
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double p99_latency_s = 0.0;
  double max_latency_s = 0.0;
  double mean_wait_s = 0.0;   ///< arrival -> batch start
  /// Mean solo EFS of each job on its routed device: the fidelity proxy
  /// (lower is better; BestEfs minimizes exactly this).
  double mean_efs = 0.0;
  std::vector<double> utilization;       ///< busy_s / horizon per device
  std::vector<std::uint64_t> routed;     ///< jobs per device
  std::vector<std::uint64_t> batches;    ///< batches per device
  std::uint64_t trace_hash = 0;          ///< SimTrace::hash()
};

/// Summarize a finished trace. `classes` must be the simulator's class
/// set (for the EFS proxy); `num_devices` its device count.
[[nodiscard]] TraceSummary summarize(const SimTrace& trace,
                                     std::span<const SimJobClass> classes,
                                     std::size_t num_devices);

}  // namespace qucp::fleetsim
