#include "fleetsim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/rng.hpp"
#include "fleetsim/events.hpp"

namespace qucp::fleetsim {

namespace {

/// Open/queued batch as the lane models it: member count and the running
/// max makespan, which fixes the batch's modeled runtime. Only the tail
/// batch of a lane's deque can be non-full, so a dispatch always consumes
/// exactly the head batch — the modeled grouping IS the actual grouping.
struct ModeledBatch {
  int count = 0;
  double max_ns = 0.0;
  double runtime_s = 0.0;
};

struct Lane {
  std::deque<std::size_t> queue;        ///< arrival ordinals, FIFO
  std::deque<ModeledBatch> batches;     ///< grouping of `queue`, head first
  double queued_work_s = 0.0;           ///< sum of batches[i].runtime_s
  bool busy = false;
  double busy_until_s = 0.0;
  double busy_total_s = 0.0;
  std::uint64_t dispatched_batches = 0;
  std::uint64_t routed_load = 0;        ///< cumulative qubit load (LL)
};

}  // namespace

std::string_view sim_policy_name(SimPolicy policy) noexcept {
  switch (policy) {
    case SimPolicy::RoundRobin: return "RoundRobin";
    case SimPolicy::LeastLoaded: return "LeastLoaded";
    case SimPolicy::BestEfs: return "BestEfs";
    case SimPolicy::ExpectedLatency: return "ExpectedLatency";
  }
  return "?";
}

std::uint64_t SimTrace::hash() const {
  std::uint64_t h = kFnv1aBasis;
  for (const JobRecord& r : jobs) {
    h = fnv1a_mix(h, static_cast<std::uint64_t>(r.job_class));
    h = fnv1a_mix(h, static_cast<std::uint64_t>(r.device));
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(r.arrival_s));
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(r.start_s));
    h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(r.end_s));
  }
  for (double b : busy_s) h = fnv1a_mix(h, std::bit_cast<std::uint64_t>(b));
  for (std::uint64_t b : batches) h = fnv1a_mix(h, b);
  return fnv1a_mix(h, std::bit_cast<std::uint64_t>(horizon_s));
}

FleetSimulator::FleetSimulator(std::vector<SimJobClass> classes,
                               std::size_t num_devices, SimOptions options)
    : classes_(std::move(classes)),
      num_devices_(num_devices),
      options_(options) {
  if (num_devices_ == 0) {
    throw std::invalid_argument("FleetSimulator: no devices");
  }
  if (classes_.empty()) {
    throw std::invalid_argument("FleetSimulator: no job classes");
  }
  for (const SimJobClass& c : classes_) {
    if (c.makespan_ns.size() != num_devices_ ||
        c.efs.size() != num_devices_) {
      throw std::invalid_argument("FleetSimulator: class '" + c.name +
                                  "' per-device vectors do not match the "
                                  "device count");
    }
    const bool fits_somewhere =
        std::any_of(c.makespan_ns.begin(), c.makespan_ns.end(),
                    [](double m) { return m >= 0.0; });
    if (!fits_somewhere) {
      throw std::invalid_argument("FleetSimulator: class '" + c.name +
                                  "' fits on no device");
    }
  }
  for (const DriftProcess& p : options_.drift) {
    if (p.device < 0 || static_cast<std::size_t>(p.device) >= num_devices_) {
      throw std::invalid_argument(
          "FleetSimulator: drift process targets an unknown device");
    }
    if (p.end_s < p.start_s) {
      throw std::invalid_argument(
          "FleetSimulator: drift process window end precedes start");
    }
  }
  options_.model.queue_depth = 0;  // queueing is simulated, not modeled
}

SimTrace FleetSimulator::run(std::span<const Arrival> arrivals) const {
  const int cap = options_.max_batch_size <= 0
                      ? std::numeric_limits<int>::max()
                      : options_.max_batch_size;

  // Accumulated drift of one process at time `now`: zero outside the
  // window, else seconds since the window opened — wrapped by the
  // scheduled recalibration period, which models the daily cycle
  // resetting the chip.
  const auto drift_elapsed = [](const DriftProcess& p, double now) {
    if (now < p.start_s || now >= p.end_s) return 0.0;
    double elapsed = now - p.start_s;
    if (p.recalibration_period_s > 0.0) {
      elapsed = std::fmod(elapsed, p.recalibration_period_s);
    }
    return elapsed;
  };
  // Drifted per-device estimates. With no drift configured these return
  // their input untouched (no arithmetic), keeping the frozen-calibration
  // simulator bit-identical.
  const auto drifted_efs = [&](std::size_t d, double base, double now) {
    for (const DriftProcess& p : options_.drift) {
      if (p.device != static_cast<int>(d)) continue;
      base *= 1.0 + p.efs_ramp_per_s * drift_elapsed(p, now);
    }
    return base;
  };
  const auto drifted_ns = [&](std::size_t d, double base, double now) {
    if (base < 0.0) return base;  // unfit stays unfit
    for (const DriftProcess& p : options_.drift) {
      if (p.device != static_cast<int>(d)) continue;
      base *= 1.0 + p.makespan_ramp_per_s * drift_elapsed(p, now);
    }
    return base;
  };

  SimTrace trace;
  trace.jobs.resize(arrivals.size());
  trace.busy_s.assign(num_devices_, 0.0);
  trace.batches.assign(num_devices_, 0);

  std::vector<Lane> lanes(num_devices_);

  // Enqueue `job` on `lane`, maintaining the modeled batch grouping the
  // dispatcher will consume (see ModeledBatch). The makespan is read at
  // enqueue time under the drift in force *now* — a job admitted to a
  // degraded chip carries the degraded estimate even if the chip
  // recalibrates before the batch dispatches, mirroring the service's
  // pack-time-epoch rule.
  const auto enqueue = [&](Lane& lane, std::size_t job, double now) {
    const SimJobClass& cls = classes_[static_cast<std::size_t>(
        trace.jobs[job].job_class)];
    const int device = trace.jobs[job].device;
    const double ns = drifted_ns(
        static_cast<std::size_t>(device),
        cls.makespan_ns[static_cast<std::size_t>(device)], now);
    lane.queue.push_back(job);
    if (lane.batches.empty() || lane.batches.back().count >= cap) {
      ModeledBatch b;
      b.count = 1;
      b.max_ns = ns;
      b.runtime_s = job_runtime_s(options_.model, ns);
      lane.queued_work_s += b.runtime_s;
      lane.batches.push_back(b);
    } else {
      ModeledBatch& b = lane.batches.back();
      b.count += 1;
      if (ns > b.max_ns) {
        const double runtime = job_runtime_s(options_.model, ns);
        lane.queued_work_s += runtime - b.runtime_s;
        b.max_ns = ns;
        b.runtime_s = runtime;
      }
    }
  };

  EventQueue events;
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    events.push(EventKind::JobArrival, arrivals[i].time_s, i);
  }

  // Dispatch the head batch of `lane` (device `d`) at time `now`.
  const auto start_batch = [&](std::size_t d, double now) {
    Lane& lane = lanes[d];
    const ModeledBatch head = lane.batches.front();
    lane.batches.pop_front();
    lane.queued_work_s -= head.runtime_s;
    // Guard against float drift accumulating a phantom backlog.
    if (lane.batches.empty()) lane.queued_work_s = 0.0;
    const double end = now + head.runtime_s;
    for (int i = 0; i < head.count; ++i) {
      const std::size_t job = lane.queue.front();
      lane.queue.pop_front();
      trace.jobs[job].start_s = now;
      trace.jobs[job].end_s = end;
    }
    lane.busy = true;
    lane.busy_until_s = end;
    lane.busy_total_s += head.runtime_s;
    ++lane.dispatched_batches;
    events.push(EventKind::DeviceFree, end, d);
  };

  // Pick the device for arrival ordinal `job` of class `cls` at `now`.
  const auto route = [&](std::size_t job, const SimJobClass& cls,
                         double now) -> std::size_t {
    std::size_t best = num_devices_;  // sentinel; ctor guarantees a fit
    double best_score = 0.0;
    std::size_t fit_count = 0;
    // RoundRobin needs the job's ordinal among fitting devices, so it
    // scans in id order like everything else; ties everywhere resolve to
    // the lowest id via strict '<'.
    for (std::size_t d = 0; d < num_devices_; ++d) {
      const double ns = drifted_ns(d, cls.makespan_ns[d], now);
      if (ns < 0.0) continue;
      ++fit_count;
      double score = 0.0;
      switch (options_.policy) {
        case SimPolicy::RoundRobin:
          // Handled after the scan (needs fit_count); score unused.
          break;
        case SimPolicy::LeastLoaded:
          score = static_cast<double>(lanes[d].routed_load);
          break;
        case SimPolicy::BestEfs:
          score = drifted_efs(d, cls.efs[d], now);
          break;
        case SimPolicy::ExpectedLatency: {
          const Lane& lane = lanes[d];
          const double remaining =
              lane.busy ? lane.busy_until_s - now : 0.0;
          // Work queued ahead of the batch this job would join, plus that
          // batch's runtime after joining: an open tail batch with room
          // absorbs the job at the cost of only the makespan delta.
          double ahead = lane.queued_work_s;
          double own_batch = job_runtime_s(options_.model, ns);
          if (!lane.batches.empty() && lane.batches.back().count < cap) {
            ahead -= lane.batches.back().runtime_s;
            own_batch = job_runtime_s(
                options_.model, std::max(lane.batches.back().max_ns, ns));
          }
          score = std::max(0.0, remaining) + ahead + own_batch;
          break;
        }
      }
      if (options_.policy != SimPolicy::RoundRobin &&
          (best == num_devices_ || score < best_score)) {
        best = d;
        best_score = score;
      }
    }
    if (options_.policy == SimPolicy::RoundRobin) {
      std::size_t target = job % fit_count;
      for (std::size_t d = 0; d < num_devices_; ++d) {
        if (cls.makespan_ns[d] < 0.0) continue;
        if (target-- == 0) return d;
      }
    }
    return best;
  };

  while (!events.empty()) {
    const SimEvent event = events.pop();
    switch (event.kind) {
      case EventKind::JobArrival: {
        const std::size_t job = event.payload;
        const Arrival& arrival = arrivals[job];
        const SimJobClass& cls =
            classes_[static_cast<std::size_t>(arrival.job_class)];
        JobRecord& record = trace.jobs[job];
        record.job_class = arrival.job_class;
        record.arrival_s = arrival.time_s;
        const std::size_t d = route(job, cls, event.time_s);
        record.device = static_cast<int>(d);
        Lane& lane = lanes[d];
        lane.routed_load += static_cast<std::uint64_t>(
            std::max(1, cls.qubits));
        enqueue(lane, job, event.time_s);
        if (!lane.busy) start_batch(d, event.time_s);
        break;
      }
      case EventKind::DeviceFree: {
        const std::size_t d = event.payload;
        Lane& lane = lanes[d];
        lane.busy = false;
        if (!lane.queue.empty()) start_batch(d, event.time_s);
        break;
      }
    }
  }

  for (std::size_t d = 0; d < num_devices_; ++d) {
    trace.busy_s[d] = lanes[d].busy_total_s;
    trace.batches[d] = lanes[d].dispatched_batches;
    trace.horizon_s = std::max(trace.horizon_s, lanes[d].busy_until_s);
  }
  return trace;
}

}  // namespace qucp::fleetsim
