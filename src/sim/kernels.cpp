#include "sim/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <limits>

namespace qucp::kern {

namespace {

/// Per-thread parallel_for cap override (0 = unset). Thread-local so each
/// ExecutionService worker caps its own kernel fan-out independently.
thread_local int t_parallel_threads_override = 0;

/// Process-wide runtime switch for the native dense kernels. Starts from
/// the QUCP_NATIVE_KERNELS environment variable ("0" disables) so one
/// binary can be A/B'd without recompiling.
std::atomic<bool>& native_enabled_flag() noexcept {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("QUCP_NATIVE_KERNELS");
    return !(env != nullptr && *env == '0');
  }()};
  return flag;
}

/// cpuid says the AVX2/FMA variants may run on this machine (probed once;
/// the answer cannot change at runtime).
bool native_supported() noexcept {
  static const bool supported = [] {
    const CpuFeatures f = detect_cpu_features();
    return native_kernels_compiled() && f.avx2 && f.fma;
  }();
  return supported;
}

}  // namespace

CpuFeatures detect_cpu_features() noexcept {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.fma = __builtin_cpu_supports("fma") != 0;
#endif
  return f;
}

bool native_kernels_compiled() noexcept {
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
  return true;
#else
  return false;
#endif
}

bool native_kernels_active() noexcept {
  return native_supported() &&
         native_enabled_flag().load(std::memory_order_relaxed);
}

void set_native_kernels(bool enable) noexcept {
  native_enabled_flag().store(enable, std::memory_order_relaxed);
}

int resolve_parallel_threads(int override_threads, const char* env_value,
                             unsigned hardware) noexcept {
  if (override_threads > 0) return override_threads;
  if (env_value != nullptr) {
    // strtol, not atoi: out-of-range input must clamp, not be UB.
    const long parsed = std::strtol(env_value, nullptr, 10);
    if (parsed > 0) {
      return static_cast<int>(
          std::min<long>(parsed, std::numeric_limits<int>::max()));
    }
  }
  // hardware_concurrency() == 0 is a legal "unknown" answer; treat it as a
  // single core rather than letting it zero out the split arithmetic.
  return hardware == 0 ? 1 : static_cast<int>(hardware);
}

int parallel_threads() noexcept {
  if (t_parallel_threads_override > 0) return t_parallel_threads_override;
  // Resolve env + hardware once: both re-read the OS on every call.
  static const int ambient = resolve_parallel_threads(
      0, std::getenv("QUCP_KERNEL_THREADS"),
      std::thread::hardware_concurrency());
  return ambient;
}

void set_parallel_threads(int n) noexcept {
  t_parallel_threads_override = n > 0 ? n : 0;
}

ParallelThreadsGuard::ParallelThreadsGuard(int n) noexcept
    : previous_(t_parallel_threads_override) {
  if (n > 0) t_parallel_threads_override = n;
}

ParallelThreadsGuard::~ParallelThreadsGuard() {
  t_parallel_threads_override = previous_;
}

namespace {

/// Sorted copy of up to 2 * 12 + 4 target bit positions (stack-only).
struct SortedBits {
  int bits[32];
  int count = 0;

  explicit SortedBits(std::span<const int> targets) {
    assert(targets.size() <= std::size(bits));
    count = static_cast<int>(targets.size());
    std::copy(targets.begin(), targets.end(), bits);
    std::sort(bits, bits + count);
  }
};

/// Spread a dense counter over the non-target bit positions: insert a zero
/// bit at each (ascending) target position.
[[nodiscard]] inline std::size_t expand(std::size_t counter,
                                        const SortedBits& sorted) noexcept {
  for (int j = 0; j < sorted.count; ++j) {
    counter = insert_bit(counter, sorted.bits[j]);
  }
  return counter;
}

/// A gate matrix with exactly one nonzero per row is a generalized
/// permutation (CX, CZ, SWAP, Z, S, T, RZ, U1, X, Y, ...): each output
/// amplitude is one scaled input amplitude. Detecting it once per compile
/// removes almost all of the multiplies for the most common gates in
/// lowered circuits.
template <std::size_t LDIM>
bool as_generalized_permutation(const cx* u, int src[LDIM], cx val[LDIM]) {
  for (std::size_t r = 0; r < LDIM; ++r) {
    int nonzero = -1;
    for (std::size_t c = 0; c < LDIM; ++c) {
      const cx v = u[r * LDIM + c];
      if (v.real() != 0.0 || v.imag() != 0.0) {
        if (nonzero >= 0) return false;
        nonzero = static_cast<int>(c);
      }
    }
    if (nonzero < 0) return false;
    src[r] = nonzero;
    val[r] = u[r * LDIM + nonzero];
  }
  return true;
}

// --- specialized loops; coefficients come pre-unpacked from the compile
// step so replayed gates pay no detection or extraction. All dense paths
// expand complex arithmetic over doubles: same formula and association as
// std::complex operator* but without its NaN-recovery branch (__muldc3),
// which the optimizer cannot remove from the std::complex path.

void run_diag1(cx* a, std::size_t pairs, int target, std::size_t mask,
               const CompiledUnitary& cu) {
  const double v0r = cu.re[0], v0i = cu.im[0];
  const double v1r = cu.re[1], v1i = cu.im[1];
  parallel_for(pairs, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t i0 = insert_bit(t, target);
      const std::size_t i1 = i0 | mask;
      const double a0r = a[i0].real(), a0i = a[i0].imag();
      const double a1r = a[i1].real(), a1i = a[i1].imag();
      a[i0] = cx{v0r * a0r - v0i * a0i, v0r * a0i + v0i * a0r};
      a[i1] = cx{v1r * a1r - v1i * a1i, v1r * a1i + v1i * a1r};
    }
  });
}

void run_anti1(cx* a, std::size_t pairs, int target, std::size_t mask,
               const CompiledUnitary& cu) {
  const double v0r = cu.re[0], v0i = cu.im[0];
  const double v1r = cu.re[1], v1i = cu.im[1];
  parallel_for(pairs, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t i0 = insert_bit(t, target);
      const std::size_t i1 = i0 | mask;
      const double a0r = a[i0].real(), a0i = a[i0].imag();
      const double a1r = a[i1].real(), a1i = a[i1].imag();
      a[i0] = cx{v0r * a1r - v0i * a1i, v0r * a1i + v0i * a1r};
      a[i1] = cx{v1r * a0r - v1i * a0i, v1r * a0i + v1i * a0r};
    }
  });
}

void dense1_range_scalar(cx* a, std::size_t begin, std::size_t end, int target,
                         std::size_t mask, const CompiledUnitary& cu) {
  const double u00r = cu.re[0], u00i = cu.im[0];
  const double u01r = cu.re[1], u01i = cu.im[1];
  const double u10r = cu.re[2], u10i = cu.im[2];
  const double u11r = cu.re[3], u11i = cu.im[3];
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t i0 = insert_bit(t, target);
    const std::size_t i1 = i0 | mask;
    const double a0r = a[i0].real(), a0i = a[i0].imag();
    const double a1r = a[i1].real(), a1i = a[i1].imag();
    a[i0] = cx{u00r * a0r - u00i * a0i + u01r * a1r - u01i * a1i,
               u00r * a0i + u00i * a0r + u01r * a1i + u01i * a1r};
    a[i1] = cx{u10r * a0r - u10i * a0i + u11r * a1r - u11i * a1i,
               u10r * a0i + u10i * a0r + u11r * a1i + u11i * a1r};
  }
}

void run_dense1(cx* a, std::size_t pairs, int target, std::size_t mask,
                const CompiledUnitary& cu) {
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
  if (native_kernels_active()) {
    parallel_for(pairs, [&](std::size_t begin, std::size_t end) {
      detail::dense1_range_avx2(a, begin, end, target, mask, cu);
    });
    return;
  }
#endif
  parallel_for(pairs, [&](std::size_t begin, std::size_t end) {
    dense1_range_scalar(a, begin, end, target, mask, cu);
  });
}

void run_cx_perm(cx* a, std::size_t quads, int p0, int p1, std::size_t mh,
                 std::size_t ml) {
  parallel_for(quads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t base = insert_bit(insert_bit(t, p0), p1);
      std::swap(a[base | mh], a[base | mh | ml]);
    }
  });
}

void run_swap_perm(cx* a, std::size_t quads, int p0, int p1, std::size_t mh,
                   std::size_t ml) {
  parallel_for(quads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t base = insert_bit(insert_bit(t, p0), p1);
      std::swap(a[base | ml], a[base | mh]);
    }
  });
}

void run_diag2(cx* a, std::size_t quads, int p0, int p1, std::size_t mh,
               std::size_t ml, const CompiledUnitary& cu) {
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
  if (native_kernels_active()) {
    parallel_for(quads, [&](std::size_t begin, std::size_t end) {
      detail::diag2_range_avx2(a, begin, end, mh, ml, p0, p1, cu);
    });
    return;
  }
#endif
  parallel_for(quads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t base = insert_bit(insert_bit(t, p0), p1);
      const std::size_t idx[4] = {base, base | ml, base | mh, base | mh | ml};
      for (int r = 0; r < 4; ++r) {
        const double sr = a[idx[r]].real(), si = a[idx[r]].imag();
        a[idx[r]] = cx{cu.re[r] * sr - cu.im[r] * si,
                       cu.re[r] * si + cu.im[r] * sr};
      }
    }
  });
}

void run_perm2(cx* a, std::size_t quads, int p0, int p1, std::size_t mh,
               std::size_t ml, const CompiledUnitary& cu) {
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
  if (native_kernels_active()) {
    parallel_for(quads, [&](std::size_t begin, std::size_t end) {
      detail::perm2_range_avx2(a, begin, end, mh, ml, p0, p1, cu);
    });
    return;
  }
#endif
  parallel_for(quads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t base = insert_bit(insert_bit(t, p0), p1);
      const std::size_t idx[4] = {base, base | ml, base | mh, base | mh | ml};
      const cx in[4] = {a[idx[0]], a[idx[1]], a[idx[2]], a[idx[3]]};
      for (int r = 0; r < 4; ++r) {
        const cx s = in[cu.src[r]];
        a[idx[r]] = cx{cu.re[r] * s.real() - cu.im[r] * s.imag(),
                       cu.re[r] * s.imag() + cu.im[r] * s.real()};
      }
    }
  });
}

void dense2_range_scalar(cx* a, std::size_t begin, std::size_t end,
                         std::size_t mh, std::size_t ml, int p0, int p1,
                         const CompiledUnitary& cu) {
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t base = insert_bit(insert_bit(t, p0), p1);
    const std::size_t i0 = base;            // local 00
    const std::size_t i1 = base | ml;       // local 01
    const std::size_t i2 = base | mh;       // local 10
    const std::size_t i3 = base | mh | ml;  // local 11
    const double ar[4] = {a[i0].real(), a[i1].real(), a[i2].real(),
                          a[i3].real()};
    const double ai[4] = {a[i0].imag(), a[i1].imag(), a[i2].imag(),
                          a[i3].imag()};
    const std::size_t idx[4] = {i0, i1, i2, i3};
    for (int r = 0; r < 4; ++r) {
      const int row = 4 * r;
      double accr = 0.0, acci = 0.0;
      for (int c = 0; c < 4; ++c) {
        accr += cu.re[row + c] * ar[c] - cu.im[row + c] * ai[c];
        acci += cu.re[row + c] * ai[c] + cu.im[row + c] * ar[c];
      }
      a[idx[r]] = cx{accr, acci};
    }
  }
}

void run_dense2(cx* a, std::size_t quads, int p0, int p1, std::size_t mh,
                std::size_t ml, const CompiledUnitary& cu) {
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
  if (native_kernels_active()) {
    parallel_for(quads, [&](std::size_t begin, std::size_t end) {
      detail::dense2_range_avx2(a, begin, end, mh, ml, p0, p1, cu);
    });
    return;
  }
#endif
  parallel_for(quads, [&](std::size_t begin, std::size_t end) {
    dense2_range_scalar(a, begin, end, mh, ml, p0, p1, cu);
  });
}

}  // namespace

CompiledUnitary compile_unitary(std::span<const cx> u) {
  CompiledUnitary cu;
  if (u.size() == 4) {
    cu.k = 1;
    int src[2];
    cx val[2];
    // Note: one-nonzero-per-row does NOT imply distinct source columns
    // for a general (non-unitary) matrix — e.g. [[a,0],[b,0]] — so the
    // diag/antidiag tags additionally require src to be the identity or
    // the transposition; anything else goes dense, which is always
    // correct.
    if (as_generalized_permutation<2>(u.data(), src, val) &&
        src[0] != src[1]) {
      cu.tag = src[0] == 0 ? CompiledUnitary::Tag::kDiag1
                           : CompiledUnitary::Tag::kAnti1;
      for (int r = 0; r < 2; ++r) {
        cu.re[r] = val[r].real();
        cu.im[r] = val[r].imag();
      }
    } else {
      cu.tag = CompiledUnitary::Tag::kDense1;
      for (int i = 0; i < 4; ++i) {
        cu.re[i] = u[i].real();
        cu.im[i] = u[i].imag();
      }
    }
    return cu;
  }
  assert(u.size() == 16);
  cu.k = 2;
  int src[4];
  cx val[4];
  if (as_generalized_permutation<4>(u.data(), src, val)) {
    const bool unit = val[0] == cx{1.0, 0.0} && val[1] == cx{1.0, 0.0} &&
                      val[2] == cx{1.0, 0.0} && val[3] == cx{1.0, 0.0};
    if (unit && src[0] == 0 && src[1] == 1 && src[2] == 3 && src[3] == 2) {
      cu.tag = CompiledUnitary::Tag::kCxPerm;
      return cu;
    }
    if (unit && src[0] == 0 && src[1] == 2 && src[2] == 1 && src[3] == 3) {
      cu.tag = CompiledUnitary::Tag::kSwapPerm;
      return cu;
    }
    const bool diag =
        src[0] == 0 && src[1] == 1 && src[2] == 2 && src[3] == 3;
    cu.tag = diag ? CompiledUnitary::Tag::kDiag2
                  : CompiledUnitary::Tag::kPerm2;
    for (int r = 0; r < 4; ++r) {
      cu.src[r] = src[r];
      cu.re[r] = val[r].real();
      cu.im[r] = val[r].imag();
    }
    return cu;
  }
  cu.tag = CompiledUnitary::Tag::kDense2;
  for (int i = 0; i < 16; ++i) {
    cu.re[i] = u[i].real();
    cu.im[i] = u[i].imag();
  }
  return cu;
}

void apply_compiled(std::span<cx> amps, int n, std::span<const int> targets,
                    const CompiledUnitary& cu) {
  assert(amps.size() == (std::size_t{1} << n));
  assert(static_cast<int>(targets.size()) == cu.k);
  (void)n;
  cx* a = amps.data();
  if (cu.k == 1) {
    const int target = targets[0];
    const std::size_t mask = std::size_t{1} << target;
    const std::size_t pairs = amps.size() >> 1;
    switch (cu.tag) {
      case CompiledUnitary::Tag::kDiag1:
        run_diag1(a, pairs, target, mask, cu);
        return;
      case CompiledUnitary::Tag::kAnti1:
        run_anti1(a, pairs, target, mask, cu);
        return;
      default:
        run_dense1(a, pairs, target, mask, cu);
        return;
    }
  }
  const int bit_hi = targets[0];
  const int bit_lo = targets[1];
  const std::size_t mh = std::size_t{1} << bit_hi;
  const std::size_t ml = std::size_t{1} << bit_lo;
  const int p0 = std::min(bit_hi, bit_lo);
  const int p1 = std::max(bit_hi, bit_lo);
  const std::size_t quads = amps.size() >> 2;
  switch (cu.tag) {
    case CompiledUnitary::Tag::kCxPerm:
      run_cx_perm(a, quads, p0, p1, mh, ml);
      return;
    case CompiledUnitary::Tag::kSwapPerm:
      run_swap_perm(a, quads, p0, p1, mh, ml);
      return;
    case CompiledUnitary::Tag::kDiag2:
      run_diag2(a, quads, p0, p1, mh, ml, cu);
      return;
    case CompiledUnitary::Tag::kPerm2:
      run_perm2(a, quads, p0, p1, mh, ml, cu);
      return;
    default:
      run_dense2(a, quads, p0, p1, mh, ml, cu);
      return;
  }
}

void apply1(std::span<cx> amps, [[maybe_unused]] int n, int target,
            const cx u[4]) {
  assert(amps.size() == (std::size_t{1} << n));
  assert(target >= 0 && target < n);
  const CompiledUnitary cu = compile_unitary(std::span<const cx>(u, 4));
  apply_compiled(amps, n, std::span<const int>(&target, 1), cu);
}

void apply2(std::span<cx> amps, [[maybe_unused]] int n, int bit_hi, int bit_lo,
            const cx u[16]) {
  assert(amps.size() == (std::size_t{1} << n));
  assert(bit_hi != bit_lo);
  const CompiledUnitary cu = compile_unitary(std::span<const cx>(u, 16));
  const int targets[2] = {bit_hi, bit_lo};
  apply_compiled(amps, n, std::span<const int>(targets, 2), cu);
}

void apply_generic(std::span<cx> amps, [[maybe_unused]] int n,
                   std::span<const int> targets,
                   const cx* u, std::vector<cx>& scratch) {
  const int k = static_cast<int>(targets.size());
  assert(k >= 1 && k <= n);
  const std::size_t ldim = std::size_t{1} << k;
  const SortedBits sorted(targets);

  // Offset of each local basis value from a base index; targets[0] is the
  // HIGH local bit, matching gate_matrix's operand convention.
  thread_local std::vector<std::size_t> offsets;
  offsets.assign(ldim, 0);
  for (std::size_t li = 0; li < ldim; ++li) {
    std::size_t off = 0;
    for (int j = 0; j < k; ++j) {
      if ((li >> (k - 1 - j)) & 1U) off |= std::size_t{1} << targets[j];
    }
    offsets[li] = off;
  }

  if (scratch.size() < ldim) scratch.resize(ldim);
  const std::size_t bases = amps.size() >> k;
  cx* a = amps.data();
  cx* local = scratch.data();
  // The shared scratch keeps this loop serial; generic k >= 3 never shows
  // up in the executor hot path (gates are lowered to 1q/2q).
  for (std::size_t t = 0; t < bases; ++t) {
    const std::size_t base = expand(t, sorted);
    for (std::size_t li = 0; li < ldim; ++li) local[li] = a[base + offsets[li]];
    for (std::size_t lr = 0; lr < ldim; ++lr) {
      const cx* row = u + lr * ldim;
      cx acc{0.0, 0.0};
      for (std::size_t lc = 0; lc < ldim; ++lc) acc += row[lc] * local[lc];
      a[base + offsets[lr]] = acc;
    }
  }
}

void apply_unitary(std::span<cx> amps, int n, std::span<const int> targets,
                   std::span<const cx> u, bool conjugate,
                   std::vector<cx>& scratch) {
  const int k = static_cast<int>(targets.size());
  if (k == 1) {
    if (conjugate) {
      const cx uc[4] = {std::conj(u[0]), std::conj(u[1]), std::conj(u[2]),
                        std::conj(u[3])};
      apply1(amps, n, targets[0], uc);
    } else {
      apply1(amps, n, targets[0], u.data());
    }
    return;
  }
  if (k == 2) {
    if (conjugate) {
      cx uc[16];
      for (int i = 0; i < 16; ++i) uc[i] = std::conj(u[i]);
      apply2(amps, n, targets[0], targets[1], uc);
    } else {
      apply2(amps, n, targets[0], targets[1], u.data());
    }
    return;
  }
  if (conjugate) {
    thread_local std::vector<cx> conj_buf;
    conj_buf.assign(u.begin(), u.end());
    for (cx& v : conj_buf) v = std::conj(v);
    apply_generic(amps, n, targets, conj_buf.data(), scratch);
  } else {
    apply_generic(amps, n, targets, u.data(), scratch);
  }
}

}  // namespace qucp::kern
