#pragma once
// Statevector-style update kernels shared by Statevector and DensityMatrix.
//
// A k-qubit unitary on an n-qubit amplitude vector touches each amplitude
// once: the 2^(n-k) "base" indices (target bits clear) are enumerated
// directly by bit-insertion — spread a dense counter across the non-target
// bit positions — instead of skip-scanning all 2^n indices and discarding
// the ones with a target bit set. The k = 1 and k = 2 cases (the only
// sizes the executor ever emits) are hand-specialized with the amplitudes
// held in registers; larger k falls back to a gather/apply/scatter loop
// over a caller-owned scratch buffer, so no kernel allocates.
//
// DensityMatrix reuses these kernels by treating rho as a superket of
// length dim^2: rho -> U rho U^dag is (U (x) conj(U)) |rho>, i.e. one
// statevector pass with U on the row bits (q + n) and one with conj(U) on
// the column bits (q).
//
// Kernels whose base loop is large are split across std::thread workers
// (disjoint index ranges, join before return); small states — everything
// the paper's <= 5-qubit programs produce — stay single-threaded.

#include <cstddef>
#include <span>
#include <thread>
#include <vector>

#include "common/matrix.hpp"

namespace qucp::kern {

/// Base loops at least this large are split across hardware threads.
inline constexpr std::size_t kParallelGrain = std::size_t{1} << 16;

/// CPU SIMD capabilities relevant to the dense kernels, probed via cpuid.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
};

/// Probe the executing CPU (not the compile target) for AVX2/FMA.
[[nodiscard]] CpuFeatures detect_cpu_features() noexcept;

/// True when this binary carries the AVX2/FMA dense-kernel variants
/// (built with the QUCP_NATIVE_KERNELS CMake option).
[[nodiscard]] bool native_kernels_compiled() noexcept;

/// True when dense 1q/2q kernels currently dispatch to the AVX2/FMA
/// variants: compiled in, CPU supports avx2+fma, and not disabled via
/// set_native_kernels(false) or QUCP_NATIVE_KERNELS=0 in the environment.
[[nodiscard]] bool native_kernels_active() noexcept;

/// Enable/disable the native dense kernels at runtime (process-wide).
/// A no-op beyond bookkeeping when they are not compiled in or the CPU
/// lacks the features; used by benches and golden tests to compare the
/// scalar and SIMD paths within one binary.
void set_native_kernels(bool enable) noexcept;

/// Worker-thread cap resolution rule for parallel_for, exposed as a pure
/// function so the edge cases are testable: an explicit override (> 0)
/// wins, then a positive integer in `env_value` (the QUCP_KERNEL_THREADS
/// variable), then `hardware` — where 0, which the standard allows
/// hardware_concurrency() to report when the core count is unknown, maps
/// to 1 instead of poisoning the chunk math. Always returns >= 1.
[[nodiscard]] int resolve_parallel_threads(int override_threads,
                                           const char* env_value,
                                           unsigned hardware) noexcept;

/// Effective parallel_for thread cap for the calling thread: the
/// thread-local override when set, else QUCP_KERNEL_THREADS, else the
/// hardware concurrency (cached; glibc re-reads sysfs per call). >= 1.
[[nodiscard]] int parallel_threads() noexcept;

/// Set (n > 0) or clear (n <= 0) the calling thread's cap. An
/// ExecutionService worker sets hw/num_workers here so N concurrent batch
/// simulations cannot oversubscribe the machine N-fold.
void set_parallel_threads(int n) noexcept;

/// Scoped thread cap: applies `n` for the guard's lifetime when n > 0, a
/// no-op otherwise. Restores the previous override either way.
class ParallelThreadsGuard {
 public:
  explicit ParallelThreadsGuard(int n) noexcept;
  ~ParallelThreadsGuard();
  ParallelThreadsGuard(const ParallelThreadsGuard&) = delete;
  ParallelThreadsGuard& operator=(const ParallelThreadsGuard&) = delete;

 private:
  int previous_;
};

/// Run fn(begin, end) over [0, count), split across up to
/// parallel_threads() workers when count is large. fn must be race-free on
/// disjoint ranges. Threads are joined before returning.
template <typename F>
void parallel_for(std::size_t count, F&& fn) {
  const auto max_workers = static_cast<std::size_t>(parallel_threads());
  if (count < 2 * kParallelGrain || max_workers <= 1) {
    fn(std::size_t{0}, count);
    return;
  }
  // Both operands are >= 2 here (count >= 2 * grain and max_workers >= 2),
  // so the chunk math below never divides by zero or strands elements.
  const std::size_t num_chunks =
      std::min<std::size_t>(max_workers, count / kParallelGrain);
  const std::size_t chunk = (count + num_chunks - 1) / num_chunks;
  std::vector<std::thread> workers;
  workers.reserve(num_chunks - 1);
  for (std::size_t c = 1; c < num_chunks; ++c) {
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(count, begin + chunk);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] { fn(begin, end); });
  }
  fn(std::size_t{0}, std::min(count, chunk));
  for (std::thread& w : workers) w.join();
}

/// Insert a zero bit at position `bit`: the counter's bits at and above
/// `bit` shift up one, producing the base index with that bit clear.
[[nodiscard]] inline std::size_t insert_bit(std::size_t counter,
                                            int bit) noexcept {
  const std::size_t low = (std::size_t{1} << bit) - 1;
  return ((counter & ~low) << 1) | (counter & low);
}

/// A 1- or 2-qubit unitary pre-classified for the fast paths below:
/// the structure tag (diagonal / antidiagonal / CX / SWAP / generalized
/// permutation / dense) and the unpacked real/imaginary coefficients are
/// computed once, so replayed gates skip per-call detection entirely.
struct CompiledUnitary {
  enum class Tag : std::uint8_t {
    kDiag1,   ///< diag(v0, v1): Z, S, T, RZ, U1
    kAnti1,   ///< antidiag(v0, v1): X, Y
    kDense1,  ///< general 2x2
    kCxPerm,  ///< CX pattern: swap the hi=1 pair
    kSwapPerm,///< SWAP pattern: exchange the mixed pair
    kDiag2,   ///< diagonal 4x4: CZ, controlled phases
    kPerm2,   ///< generalized permutation 4x4
    kDense2,  ///< general 4x4
  };
  Tag tag = Tag::kDense1;
  int k = 1;           ///< operand count (1 or 2)
  int src[4] = {};     ///< kPerm2: source local index per row
  double re[16] = {};  ///< coefficients (dense: row-major; perm/diag: per row)
  double im[16] = {};
};

/// Classify and unpack a 1q (u.size() == 4) or 2q (u.size() == 16)
/// row-major unitary.
[[nodiscard]] CompiledUnitary compile_unitary(std::span<const cx> u);

/// Apply a compiled 1q/2q unitary; targets follows gate_matrix's operand
/// order (targets[0] = high local bit).
void apply_compiled(std::span<cx> amps, int n, std::span<const int> targets,
                    const CompiledUnitary& cu);

/// Apply the 1-qubit matrix u (row-major, u[0]=u00 u[1]=u01 ...) to bit
/// `target` of `amps` (size 2^n).
void apply1(std::span<cx> amps, int n, int target, const cx u[4]);

/// Apply the 2-qubit matrix u (row-major 4x4; local basis index is
/// (bit_hi << 1) | bit_lo) to bits `bit_hi`/`bit_lo` of `amps`.
void apply2(std::span<cx> amps, int n, int bit_hi, int bit_lo,
            const cx u[16]);

/// Generic k-qubit kernel. `targets` lists bit positions with targets[0]
/// the HIGH local bit (gate_matrix convention); u is row-major 2^k x 2^k.
/// `scratch` is resized to 2^k + k bookkeeping slots and reused.
void apply_generic(std::span<cx> amps, int n, std::span<const int> targets,
                   const cx* u, std::vector<cx>& scratch);

/// Dispatch on targets.size(): specialized k=1/k=2 kernels, generic
/// fallback otherwise. `u` must be a 2^k x 2^k row-major matrix given as a
/// flat span (Matrix::data()). When `conjugate` is set the complex
/// conjugate of u is applied (used for the superket column pass) without
/// materializing a conjugated matrix for k <= 2.
void apply_unitary(std::span<cx> amps, int n, std::span<const int> targets,
                   std::span<const cx> u, bool conjugate,
                   std::vector<cx>& scratch);

namespace detail {

// Internal range bodies of the dense 1q/2q kernels, dispatched per CPU.
// The _avx2 variants live in kernels_avx2.cpp, compiled for x86-64-v3 only
// under the QUCP_NATIVE_KERNELS CMake option and only ever called after a
// cpuid check; the scalar bodies in kernels.cpp are the portable fallback.
void dense1_range_avx2(cx* a, std::size_t begin, std::size_t end, int target,
                       std::size_t mask, const CompiledUnitary& cu);
void dense2_range_avx2(cx* a, std::size_t begin, std::size_t end,
                       std::size_t mh, std::size_t ml, int p0, int p1,
                       const CompiledUnitary& cu);
void diag2_range_avx2(cx* a, std::size_t begin, std::size_t end,
                      std::size_t mh, std::size_t ml, int p0, int p1,
                      const CompiledUnitary& cu);
void perm2_range_avx2(cx* a, std::size_t begin, std::size_t end,
                      std::size_t mh, std::size_t ml, int p0, int p1,
                      const CompiledUnitary& cu);

// Range bodies of DensityMatrix's fused noise-channel updates (real-scalar
// scaling of superket elements — no complex products, so these vectorize
// into pure mul/add streams). `pc`/`pr` are the column/row superket bit
// positions of the target qubit; `fill_scale` folds c2 * inv_ldim.
void depol1_range_avx2(cx* rho, std::size_t begin, std::size_t end, int pc,
                       int pr, double c1, double fill_scale);
void depol2_range_avx2(cx* rho, std::size_t begin, std::size_t end,
                       const int* positions, const std::size_t* row_off,
                       const std::size_t* col_off, double c1,
                       double fill_scale);
void relax1_range_avx2(cx* rho, std::size_t begin, std::size_t end, int pc,
                       int pr, double gamma, double decay, double keep);

// 4x4 complex matrix products for FusionPlan::materialize's per-binding
// block assembly (sim/fusion.cpp) — the matmul chain an angle sweep replays
// per binding. All matrices are row-major spans of cx; `out` may alias
// either operand (products accumulate in registers and store once).
// Results match the scalar products to ~1 ulp per term (FMA), not bitwise.
//
// mul4_avx2:      out = a * b
// swap_mul4_avx2: m = swap_operands(u) * m, the operand-reorder fused into
//                 the coefficient loads (swapped(u)[r][c] = u[s[r]][s[c]],
//                 s = {0,2,1,3}) so no reordered copy is materialized.
// lift_mul4_avx2: m = lift1(u, high) * m for a 2x2 `u`, exploiting the
//                 lifted matrix's sparsity: each output row mixes two rows
//                 of m (8 complex row-scale FMAs instead of a full mul4).
// mul4_lift_avx2: m = m * lift1(u, high), the kAbsorb orientation; each
//                 output row mixes columns of the same row of m.
void mul4_avx2(cx* out, const cx* a, const cx* b);
void swap_mul4_avx2(cx* m, const cx* u);
void lift_mul4_avx2(cx* m, const cx* u, bool high);
void mul4_lift_avx2(cx* m, const cx* u, bool high);

}  // namespace detail

}  // namespace qucp::kern
