#include "sim/statevector.hpp"

#include <cmath>
#include <stdexcept>

namespace qucp {

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0 || num_qubits > 24) {
    throw std::invalid_argument("Statevector: unsupported qubit count");
  }
  amps_.assign(std::size_t{1} << num_qubits, cx{0.0, 0.0});
  amps_[0] = 1.0;
}

void Statevector::apply_unitary(const Matrix& u, std::span<const int> qubits) {
  const int k = static_cast<int>(qubits.size());
  const std::size_t ldim = std::size_t{1} << k;
  if (u.rows() != ldim || u.cols() != ldim) {
    throw std::invalid_argument("Statevector: matrix/operand mismatch");
  }
  for (int q : qubits) {
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("Statevector: qubit out of range");
    }
  }
  const std::size_t dim = amps_.size();
  std::vector<std::size_t> masks(qubits.size());
  for (int j = 0; j < k; ++j) masks[j] = std::size_t{1} << qubits[j];

  std::vector<cx> local(ldim);
  for (std::size_t base = 0; base < dim; ++base) {
    bool is_base = true;
    for (std::size_t m : masks) {
      if (base & m) {
        is_base = false;
        break;
      }
    }
    if (!is_base) continue;
    // Gather local amplitudes: local index li has qubits[0] as HIGH bit.
    for (std::size_t li = 0; li < ldim; ++li) {
      std::size_t idx = base;
      for (int j = 0; j < k; ++j) {
        if ((li >> (k - 1 - j)) & 1U) idx |= masks[j];
      }
      local[li] = amps_[idx];
    }
    for (std::size_t lr = 0; lr < ldim; ++lr) {
      cx acc{0.0, 0.0};
      for (std::size_t lc = 0; lc < ldim; ++lc) acc += u(lr, lc) * local[lc];
      std::size_t idx = base;
      for (int j = 0; j < k; ++j) {
        if ((lr >> (k - 1 - j)) & 1U) idx |= masks[j];
      }
      amps_[idx] = acc;
    }
  }
}

void Statevector::apply_circuit(const Circuit& circuit) {
  if (circuit.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Statevector: qubit count mismatch");
  }
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::Barrier) continue;
    if (g.kind == GateKind::Measure) {
      throw std::logic_error("Statevector: measurement not supported");
    }
    apply_unitary(gate_matrix(g), g.qubits);
  }
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> probs(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) probs[i] = std::norm(amps_[i]);
  return probs;
}

double Statevector::expectation(const Matrix& observable) const {
  if (observable.rows() != amps_.size() || observable.cols() != amps_.size()) {
    throw std::invalid_argument("Statevector: observable shape mismatch");
  }
  cx acc{0.0, 0.0};
  for (std::size_t r = 0; r < amps_.size(); ++r) {
    cx row{0.0, 0.0};
    for (std::size_t c = 0; c < amps_.size(); ++c) {
      row += observable(r, c) * amps_[c];
    }
    acc += std::conj(amps_[r]) * row;
  }
  return acc.real();
}

double Statevector::norm() const {
  double s = 0.0;
  for (const cx& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

Distribution ideal_distribution(const Circuit& circuit) {
  Statevector sv(circuit.num_qubits());
  std::vector<std::pair<int, int>> measurements;  // (qubit, clbit)
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::Barrier) continue;
    if (g.kind == GateKind::Measure) {
      measurements.emplace_back(g.qubits[0], g.clbit);
      continue;
    }
    sv.apply_unitary(gate_matrix(g), g.qubits);
  }
  if (measurements.empty()) {
    throw std::logic_error("ideal_distribution: circuit has no measurements");
  }
  const std::vector<double> probs = sv.probabilities();
  std::map<std::uint64_t, double> out;
  for (std::size_t basis = 0; basis < probs.size(); ++basis) {
    if (probs[basis] < 1e-15) continue;
    std::uint64_t outcome = 0;
    for (const auto& [q, c] : measurements) {
      if ((basis >> q) & 1U) outcome |= std::uint64_t{1} << c;
    }
    out[outcome] += probs[basis];
  }
  return Distribution(circuit.num_clbits(), std::move(out));
}

}  // namespace qucp
