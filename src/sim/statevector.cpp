#include "sim/statevector.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "circuit/gate_cache.hpp"
#include "sim/fusion.hpp"

namespace qucp {

namespace {

/// Per-thread memo of compiled gate kernels: a flat array for
/// parameterless kinds, a (kind, params)-keyed hash map for rotations.
/// thread_local, so no locks anywhere on the replay path.
const kern::CompiledUnitary& compiled_for(const Gate& g) {
  const auto kind_idx = static_cast<std::size_t>(g.kind);
  if (gate_param_count(g.kind) == 0) {
    const Matrix* m = fixed_gate_matrix(g.kind);
    if (m == nullptr) {
      // Barrier/Measure also have zero params but no unitary; surface the
      // same error gate_matrix raises instead of dereferencing null.
      throw std::invalid_argument("compiled_for: non-unitary op");
    }
    struct Slot {
      bool ready = false;
      kern::CompiledUnitary cu;
    };
    thread_local Slot fixed[32];
    Slot& slot = fixed[kind_idx];
    if (!slot.ready) {
      slot.cu = kern::compile_unitary(m->data());
      slot.ready = true;
    }
    return slot.cu;
  }
  thread_local std::unordered_map<GateKey, kern::CompiledUnitary, GateKeyHash,
                                  GateKeyEq>
      memo;
  // Transparent lookup: no params copy (and no allocation) on the hit path.
  if (auto it = memo.find(GateKeyView{g.kind, g.params}); it != memo.end()) {
    return it->second;
  }
  // Bound the memo like GateMatrixCache: an endless rotation-angle sweep
  // must not grow it without limit. Past the cap, rebuild into a
  // per-thread spill slot.
  const Matrix m = gate_matrix(g);
  if (memo.size() >= GateMatrixCache::kMaxEntries) {
    thread_local kern::CompiledUnitary spill;
    spill = kern::compile_unitary(m.data());
    return spill;
  }
  return memo
      .emplace(GateKey{g.kind, {g.params.begin(), g.params.end()}},
               kern::compile_unitary(m.data()))
      .first->second;
}

}  // namespace

Statevector::Statevector(int num_qubits) : num_qubits_(num_qubits) {
  if (num_qubits < 0 || num_qubits > 24) {
    throw std::invalid_argument("Statevector: unsupported qubit count");
  }
  amps_.assign(std::size_t{1} << num_qubits, cx{0.0, 0.0});
  amps_[0] = 1.0;
}

void Statevector::apply_unitary(const Matrix& u, std::span<const int> qubits) {
  const int k = static_cast<int>(qubits.size());
  const std::size_t ldim = std::size_t{1} << k;
  if (u.rows() != ldim || u.cols() != ldim) {
    throw std::invalid_argument("Statevector: matrix/operand mismatch");
  }
  for (int q : qubits) {
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("Statevector: qubit out of range");
    }
  }
  if (k == 0) {
    for (cx& a : amps_) a *= u(0, 0);
    return;
  }
  kern::apply_unitary(amps_, num_qubits_, qubits, u.data(),
                      /*conjugate=*/false, scratch_);
}

void Statevector::apply_compiled(const kern::CompiledUnitary& cu,
                                 std::span<const int> qubits) {
  for (int q : qubits) {
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("Statevector: qubit out of range");
    }
  }
  if (static_cast<int>(qubits.size()) != cu.k) {
    throw std::invalid_argument("Statevector: matrix/operand mismatch");
  }
  kern::apply_compiled(amps_, num_qubits_, qubits, cu);
}

void Statevector::apply_circuit(const Circuit& circuit) {
  if (circuit.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Statevector: qubit count mismatch");
  }
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::Barrier) continue;
    if (g.kind == GateKind::Measure) {
      throw std::logic_error("Statevector: measurement not supported");
    }
    apply_compiled(compiled_for(g), g.qubits);
  }
}

void Statevector::run(const CompiledProgram& program) {
  if (program.num_qubits() != num_qubits_) {
    throw std::invalid_argument("Statevector: qubit count mismatch");
  }
  for (const FusedOp& op : program.ops()) {
    apply_compiled(op.sv, std::span<const int>(op.q, op.k()));
  }
}

std::vector<double> Statevector::probabilities() const {
  std::vector<double> probs(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) probs[i] = std::norm(amps_[i]);
  return probs;
}

double Statevector::expectation(const Matrix& observable) const {
  if (observable.rows() != amps_.size() || observable.cols() != amps_.size()) {
    throw std::invalid_argument("Statevector: observable shape mismatch");
  }
  cx acc{0.0, 0.0};
  for (std::size_t r = 0; r < amps_.size(); ++r) {
    cx row{0.0, 0.0};
    for (std::size_t c = 0; c < amps_.size(); ++c) {
      row += observable(r, c) * amps_[c];
    }
    acc += std::conj(amps_[r]) * row;
  }
  return acc.real();
}

double Statevector::norm() const {
  double s = 0.0;
  for (const cx& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

Distribution ideal_distribution(const Circuit& circuit) {
  Statevector sv(circuit.num_qubits());
  std::vector<std::pair<int, int>> measurements;  // (qubit, clbit)
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::Barrier) continue;
    if (g.kind == GateKind::Measure) {
      measurements.emplace_back(g.qubits[0], g.clbit);
      continue;
    }
    sv.apply_compiled(compiled_for(g), g.qubits);
  }
  if (measurements.empty()) {
    throw std::logic_error("ideal_distribution: circuit has no measurements");
  }
  return detail::distribution_from_amplitudes(sv.amplitudes(),
                                              circuit.num_clbits(),
                                              measurements);
}

namespace detail {

Distribution distribution_from_amplitudes(
    std::span<const cx> amps, int num_clbits,
    std::span<const std::pair<int, int>> measurements) {
  // Read |amp|^2 straight off the state; a probabilities() vector here
  // would be pure allocation overhead.
  std::vector<Distribution::Entry> out;
  if (num_clbits <= 10) {
    // Flat accumulation: no per-outcome node allocation, single pass to
    // collect the support in sorted order.
    thread_local std::vector<double> acc;
    acc.assign(std::size_t{1} << num_clbits, 0.0);
    for (std::size_t basis = 0; basis < amps.size(); ++basis) {
      const double p = std::norm(amps[basis]);
      if (p < 1e-15) continue;
      std::uint64_t outcome = 0;
      for (const auto& [q, c] : measurements) {
        if ((basis >> q) & 1U) outcome |= std::uint64_t{1} << c;
      }
      acc[outcome] += p;
    }
    for (std::size_t o = 0; o < acc.size(); ++o) {
      if (acc[o] != 0.0) out.emplace_back(o, acc[o]);
    }
  } else {
    for (std::size_t basis = 0; basis < amps.size(); ++basis) {
      const double p = std::norm(amps[basis]);
      if (p < 1e-15) continue;
      std::uint64_t outcome = 0;
      for (const auto& [q, c] : measurements) {
        if ((basis >> q) & 1U) outcome |= std::uint64_t{1} << c;
      }
      out.emplace_back(outcome, p);  // ctor merges duplicates
    }
  }
  return Distribution(num_clbits, std::move(out));
}

}  // namespace detail

}  // namespace qucp
