// AVX2/FMA variants of the dense 1q/2q kernel range bodies.
//
// This TU is compiled with -march=x86-64-v3 when the QUCP_NATIVE_KERNELS
// CMake option is ON and contributes nothing otherwise, so the library
// builds identically on toolchains/targets without AVX2. The functions
// here are only ever reached through the runtime dispatch in kernels.cpp
// (cpuid-gated via native_kernels_active()), so one binary serves both
// ISAs with a scalar fallback.
//
// Data layout: a cx is an interleaved (re, im) pair of doubles, so one
// 256-bit register holds two complex amplitudes. Complex arithmetic uses
// the addsub identity: for y = sum_c u_c * x_c,
//   re(y) = sum u_c.re * x_c.re - sum u_c.im * x_c.im
//   im(y) = sum u_c.re * x_c.im + sum u_c.im * x_c.re
// i.e. accumulate (u.re * x) and (u.im * swap(x)) separately with FMAs and
// combine once with vaddsubpd. Results match the scalar kernels to ~1 ulp
// per term (FMA contracts the multiplies), not bitwise — callers that need
// the scalar stream disable dispatch via set_native_kernels(false).

#include "sim/kernels.hpp"

#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace qucp::kern::detail {

namespace {

/// One (i0, i1) pair through the 2x2, used for loop heads/tails where the
/// two-pair vector body cannot engage.
inline void dense1_one_pair(cx* a, std::size_t i0, std::size_t i1,
                            const CompiledUnitary& cu) {
  const double a0r = a[i0].real(), a0i = a[i0].imag();
  const double a1r = a[i1].real(), a1i = a[i1].imag();
  a[i0] = cx{cu.re[0] * a0r - cu.im[0] * a0i + cu.re[1] * a1r - cu.im[1] * a1i,
             cu.re[0] * a0i + cu.im[0] * a0r + cu.re[1] * a1i + cu.im[1] * a1r};
  a[i1] = cx{cu.re[2] * a0r - cu.im[2] * a0i + cu.re[3] * a1r - cu.im[3] * a1i,
             cu.re[2] * a0i + cu.im[2] * a0r + cu.re[3] * a1i + cu.im[3] * a1r};
}

}  // namespace

void dense1_range_avx2(cx* a, std::size_t begin, std::size_t end, int target,
                       std::size_t mask, const CompiledUnitary& cu) {
  double* const p = reinterpret_cast<double*>(a);
  if (target >= 1) {
    // Bases with the target bit clear come in contiguous runs of
    // 2^target >= 2, so an even counter t and its successor map to adjacent
    // i0 (and adjacent i1): process two pairs per iteration with full-width
    // loads. Head/tail pairs (odd alignment) take the single-pair path.
    const __m256d u00r = _mm256_set1_pd(cu.re[0]), u00i = _mm256_set1_pd(cu.im[0]);
    const __m256d u01r = _mm256_set1_pd(cu.re[1]), u01i = _mm256_set1_pd(cu.im[1]);
    const __m256d u10r = _mm256_set1_pd(cu.re[2]), u10i = _mm256_set1_pd(cu.im[2]);
    const __m256d u11r = _mm256_set1_pd(cu.re[3]), u11i = _mm256_set1_pd(cu.im[3]);
    std::size_t t = begin;
    if ((t & 1U) != 0 && t < end) {
      const std::size_t i0 = insert_bit(t, target);
      dense1_one_pair(a, i0, i0 | mask, cu);
      ++t;
    }
    for (; t + 1 < end; t += 2) {
      const std::size_t i0 = insert_bit(t, target);
      double* const p0 = p + 2 * i0;
      double* const p1 = p + 2 * (i0 | mask);
      const __m256d x0 = _mm256_loadu_pd(p0);  // [x0(t), x0(t+1)]
      const __m256d x1 = _mm256_loadu_pd(p1);
      const __m256d x0s = _mm256_permute_pd(x0, 0x5);  // im/re swapped
      const __m256d x1s = _mm256_permute_pd(x1, 0x5);
      const __m256d y0 = _mm256_addsub_pd(
          _mm256_fmadd_pd(u01r, x1, _mm256_mul_pd(u00r, x0)),
          _mm256_fmadd_pd(u01i, x1s, _mm256_mul_pd(u00i, x0s)));
      const __m256d y1 = _mm256_addsub_pd(
          _mm256_fmadd_pd(u11r, x1, _mm256_mul_pd(u10r, x0)),
          _mm256_fmadd_pd(u11i, x1s, _mm256_mul_pd(u10i, x0s)));
      _mm256_storeu_pd(p0, y0);
      _mm256_storeu_pd(p1, y1);
    }
    if (t < end) {
      const std::size_t i0 = insert_bit(t, target);
      dense1_one_pair(a, i0, i0 | mask, cu);
    }
    return;
  }
  // target == 0: i1 = i0 + 1, so one register holds the whole pair. Column
  // coefficients are laid out per output lane: lanes {0,1} build y0 from
  // row 0, lanes {2,3} build y1 from row 1.
  const __m256d c0r = _mm256_set_pd(cu.re[2], cu.re[2], cu.re[0], cu.re[0]);
  const __m256d c0i = _mm256_set_pd(cu.im[2], cu.im[2], cu.im[0], cu.im[0]);
  const __m256d c1r = _mm256_set_pd(cu.re[3], cu.re[3], cu.re[1], cu.re[1]);
  const __m256d c1i = _mm256_set_pd(cu.im[3], cu.im[3], cu.im[1], cu.im[1]);
  for (std::size_t t = begin; t < end; ++t) {
    double* const q = p + 4 * t;
    const __m256d v = _mm256_loadu_pd(q);                     // [x0, x1]
    const __m256d x0b = _mm256_permute2f128_pd(v, v, 0x00);   // [x0, x0]
    const __m256d x1b = _mm256_permute2f128_pd(v, v, 0x11);   // [x1, x1]
    const __m256d x0s = _mm256_permute_pd(x0b, 0x5);
    const __m256d x1s = _mm256_permute_pd(x1b, 0x5);
    const __m256d out = _mm256_addsub_pd(
        _mm256_fmadd_pd(c1r, x1b, _mm256_mul_pd(c0r, x0b)),
        _mm256_fmadd_pd(c1i, x1s, _mm256_mul_pd(c0i, x0s)));
    _mm256_storeu_pd(q, out);
  }
}

namespace {

/// One quad through the 4x4 with packed 128-bit lane loads — correct for
/// any (mh, ml), used when the contiguous two-quad body cannot engage.
inline void dense2_one_quad(double* p, std::size_t base, std::size_t mh,
                            std::size_t ml, const __m256d cr[4][2],
                            const __m256d ci[4][2]) {
  double* const p0 = p + 2 * base;
  double* const p1 = p + 2 * (base | ml);
  double* const p2 = p + 2 * (base | mh);
  double* const p3 = p + 2 * (base | mh | ml);
  const __m256d v01 =
      _mm256_set_m128d(_mm_loadu_pd(p1), _mm_loadu_pd(p0));  // [x0, x1]
  const __m256d v23 = _mm256_set_m128d(_mm_loadu_pd(p3), _mm_loadu_pd(p2));
  const __m256d xb[4] = {_mm256_permute2f128_pd(v01, v01, 0x00),
                         _mm256_permute2f128_pd(v01, v01, 0x11),
                         _mm256_permute2f128_pd(v23, v23, 0x00),
                         _mm256_permute2f128_pd(v23, v23, 0x11)};
  const __m256d xs[4] = {_mm256_permute_pd(xb[0], 0x5),
                         _mm256_permute_pd(xb[1], 0x5),
                         _mm256_permute_pd(xb[2], 0x5),
                         _mm256_permute_pd(xb[3], 0x5)};
  // out01 lanes {0,1} = y0 (row 0), lanes {2,3} = y1 (row 1); out23 = y2/y3.
  __m256d accr01 = _mm256_mul_pd(cr[0][0], xb[0]);
  __m256d acci01 = _mm256_mul_pd(ci[0][0], xs[0]);
  __m256d accr23 = _mm256_mul_pd(cr[0][1], xb[0]);
  __m256d acci23 = _mm256_mul_pd(ci[0][1], xs[0]);
  for (int c = 1; c < 4; ++c) {
    accr01 = _mm256_fmadd_pd(cr[c][0], xb[c], accr01);
    acci01 = _mm256_fmadd_pd(ci[c][0], xs[c], acci01);
    accr23 = _mm256_fmadd_pd(cr[c][1], xb[c], accr23);
    acci23 = _mm256_fmadd_pd(ci[c][1], xs[c], acci23);
  }
  const __m256d out01 = _mm256_addsub_pd(accr01, acci01);
  const __m256d out23 = _mm256_addsub_pd(accr23, acci23);
  _mm_storeu_pd(p0, _mm256_castpd256_pd128(out01));
  _mm_storeu_pd(p1, _mm256_extractf128_pd(out01, 1));
  _mm_storeu_pd(p2, _mm256_castpd256_pd128(out23));
  _mm_storeu_pd(p3, _mm256_extractf128_pd(out23, 1));
}

}  // namespace

void dense2_range_avx2(cx* a, std::size_t begin, std::size_t end,
                       std::size_t mh, std::size_t ml, int p0, int p1,
                       const CompiledUnitary& cu) {
  double* const p = reinterpret_cast<double*>(a);
  // Column coefficient vectors for the per-quad body: cr[c][0] covers
  // output lanes (y0, y1) of column c, cr[c][1] covers (y2, y3).
  __m256d cr[4][2];
  __m256d ci[4][2];
  for (int c = 0; c < 4; ++c) {
    cr[c][0] = _mm256_set_pd(cu.re[4 + c], cu.re[4 + c], cu.re[c], cu.re[c]);
    ci[c][0] = _mm256_set_pd(cu.im[4 + c], cu.im[4 + c], cu.im[c], cu.im[c]);
    cr[c][1] = _mm256_set_pd(cu.re[12 + c], cu.re[12 + c], cu.re[8 + c],
                             cu.re[8 + c]);
    ci[c][1] = _mm256_set_pd(cu.im[12 + c], cu.im[12 + c], cu.im[8 + c],
                             cu.im[8 + c]);
  }
  if (p0 >= 1) {
    // Contiguous runs of length 2^p0 >= 2: an even t and its successor map
    // to adjacent bases, so every amplitude load/store is a full-width
    // two-complex access.
    std::size_t t = begin;
    if ((t & 1U) != 0 && t < end) {
      dense2_one_quad(p, insert_bit(insert_bit(t, p0), p1), mh, ml, cr, ci);
      ++t;
    }
    for (; t + 1 < end; t += 2) {
      const std::size_t base = insert_bit(insert_bit(t, p0), p1);
      double* const q0 = p + 2 * base;
      double* const q1 = p + 2 * (base | ml);
      double* const q2 = p + 2 * (base | mh);
      double* const q3 = p + 2 * (base | mh | ml);
      const __m256d x[4] = {_mm256_loadu_pd(q0), _mm256_loadu_pd(q1),
                            _mm256_loadu_pd(q2), _mm256_loadu_pd(q3)};
      const __m256d s[4] = {
          _mm256_permute_pd(x[0], 0x5), _mm256_permute_pd(x[1], 0x5),
          _mm256_permute_pd(x[2], 0x5), _mm256_permute_pd(x[3], 0x5)};
      double* const outp[4] = {q0, q1, q2, q3};
      for (int r = 0; r < 4; ++r) {
        const int row = 4 * r;
        __m256d accr = _mm256_mul_pd(_mm256_set1_pd(cu.re[row]), x[0]);
        __m256d acci = _mm256_mul_pd(_mm256_set1_pd(cu.im[row]), s[0]);
        for (int c = 1; c < 4; ++c) {
          accr = _mm256_fmadd_pd(_mm256_set1_pd(cu.re[row + c]), x[c], accr);
          acci = _mm256_fmadd_pd(_mm256_set1_pd(cu.im[row + c]), s[c], acci);
        }
        _mm256_storeu_pd(outp[r], _mm256_addsub_pd(accr, acci));
      }
    }
    if (t < end) {
      dense2_one_quad(p, insert_bit(insert_bit(t, p0), p1), mh, ml, cr, ci);
    }
    return;
  }
  for (std::size_t t = begin; t < end; ++t) {
    dense2_one_quad(p, insert_bit(insert_bit(t, p0), p1), mh, ml, cr, ci);
  }
}

namespace {

/// One quad through the diagonal 4x4, used where the two-quad vector body
/// cannot engage. Single multiplies per output (no sums), so this matches
/// the scalar kernel bitwise.
inline void diag2_one_quad(cx* a, std::size_t base, std::size_t mh,
                           std::size_t ml, const CompiledUnitary& cu) {
  const std::size_t idx[4] = {base, base | ml, base | mh, base | mh | ml};
  for (int r = 0; r < 4; ++r) {
    const double sr = a[idx[r]].real(), si = a[idx[r]].imag();
    a[idx[r]] =
        cx{cu.re[r] * sr - cu.im[r] * si, cu.re[r] * si + cu.im[r] * sr};
  }
}

/// One quad through the generalized permutation 4x4 (gather-then-scatter,
/// all four inputs read before any store).
inline void perm2_one_quad(cx* a, std::size_t base, std::size_t mh,
                           std::size_t ml, const CompiledUnitary& cu) {
  const std::size_t idx[4] = {base, base | ml, base | mh, base | mh | ml};
  const cx in[4] = {a[idx[0]], a[idx[1]], a[idx[2]], a[idx[3]]};
  for (int r = 0; r < 4; ++r) {
    const cx s = in[cu.src[r]];
    a[idx[r]] = cx{cu.re[r] * s.real() - cu.im[r] * s.imag(),
                   cu.re[r] * s.imag() + cu.im[r] * s.real()};
  }
}

}  // namespace

void diag2_range_avx2(cx* a, std::size_t begin, std::size_t end,
                      std::size_t mh, std::size_t ml, int p0, int p1,
                      const CompiledUnitary& cu) {
  double* const p = reinterpret_cast<double*>(a);
  if (p0 >= 1) {
    // Contiguous runs of length 2^p0 >= 2: an even t and its successor map
    // to adjacent bases, so each of the four quad offsets is a full-width
    // two-complex access scaled by one broadcast diagonal entry. A single
    // mul per component (no FMA chains) keeps this bitwise equal to the
    // scalar kernel.
    __m256d vr[4], vi[4];
    for (int r = 0; r < 4; ++r) {
      vr[r] = _mm256_set1_pd(cu.re[r]);
      vi[r] = _mm256_set1_pd(cu.im[r]);
    }
    std::size_t t = begin;
    if ((t & 1U) != 0 && t < end) {
      diag2_one_quad(a, insert_bit(insert_bit(t, p0), p1), mh, ml, cu);
      ++t;
    }
    for (; t + 1 < end; t += 2) {
      const std::size_t base = insert_bit(insert_bit(t, p0), p1);
      double* const q[4] = {p + 2 * base, p + 2 * (base | ml),
                            p + 2 * (base | mh), p + 2 * (base | mh | ml)};
      for (int r = 0; r < 4; ++r) {
        const __m256d x = _mm256_loadu_pd(q[r]);
        const __m256d y = _mm256_addsub_pd(
            _mm256_mul_pd(vr[r], x),
            _mm256_mul_pd(vi[r], _mm256_permute_pd(x, 0x5)));
        _mm256_storeu_pd(q[r], y);
      }
    }
    if (t < end) {
      diag2_one_quad(a, insert_bit(insert_bit(t, p0), p1), mh, ml, cu);
    }
    return;
  }
  for (std::size_t t = begin; t < end; ++t) {
    diag2_one_quad(a, insert_bit(insert_bit(t, p0), p1), mh, ml, cu);
  }
}

void perm2_range_avx2(cx* a, std::size_t begin, std::size_t end,
                      std::size_t mh, std::size_t ml, int p0, int p1,
                      const CompiledUnitary& cu) {
  double* const p = reinterpret_cast<double*>(a);
  if (p0 >= 1) {
    // Same contiguous two-quad layout as diag2, but rows permute their
    // source offset: load all four offsets first (stores may alias a later
    // row's source), then scale x[src[r]] into offset r.
    __m256d vr[4], vi[4];
    for (int r = 0; r < 4; ++r) {
      vr[r] = _mm256_set1_pd(cu.re[r]);
      vi[r] = _mm256_set1_pd(cu.im[r]);
    }
    std::size_t t = begin;
    if ((t & 1U) != 0 && t < end) {
      perm2_one_quad(a, insert_bit(insert_bit(t, p0), p1), mh, ml, cu);
      ++t;
    }
    for (; t + 1 < end; t += 2) {
      const std::size_t base = insert_bit(insert_bit(t, p0), p1);
      double* const q[4] = {p + 2 * base, p + 2 * (base | ml),
                            p + 2 * (base | mh), p + 2 * (base | mh | ml)};
      const __m256d x[4] = {_mm256_loadu_pd(q[0]), _mm256_loadu_pd(q[1]),
                            _mm256_loadu_pd(q[2]), _mm256_loadu_pd(q[3])};
      for (int r = 0; r < 4; ++r) {
        const __m256d s = x[cu.src[r]];
        const __m256d y = _mm256_addsub_pd(
            _mm256_mul_pd(vr[r], s),
            _mm256_mul_pd(vi[r], _mm256_permute_pd(s, 0x5)));
        _mm256_storeu_pd(q[r], y);
      }
    }
    if (t < end) {
      perm2_one_quad(a, insert_bit(insert_bit(t, p0), p1), mh, ml, cu);
    }
    return;
  }
  for (std::size_t t = begin; t < end; ++t) {
    perm2_one_quad(a, insert_bit(insert_bit(t, p0), p1), mh, ml, cu);
  }
}

namespace {

/// One quad of the fused depolarizing (k = 1) update, for heads/tails.
inline void depol1_one(cx* rho, std::size_t base, std::size_t mc,
                       std::size_t mr, double c1, double fill_scale) {
  const cx p00 = rho[base];
  const cx p11 = rho[base | mr | mc];
  const cx fill = fill_scale * (p00 + p11);
  rho[base] = c1 * p00 + fill;
  rho[base | mc] *= c1;
  rho[base | mr] *= c1;
  rho[base | mr | mc] = c1 * p11 + fill;
}

/// One quad of the fused relaxation update, for heads/tails.
inline void relax1_one(cx* rho, std::size_t base, std::size_t mc,
                       std::size_t mr, double gamma, double decay,
                       double keep) {
  const cx p11 = rho[base | mr | mc];
  rho[base] += gamma * p11;
  rho[base | mc] *= decay;
  rho[base | mr] *= decay;
  rho[base | mr | mc] = keep * p11;
}

/// One 16-element block of the fused depolarizing (k = 2) update.
inline void depol2_one(cx* rho, std::size_t base, const std::size_t* row_off,
                       const std::size_t* col_off, double c1,
                       double fill_scale) {
  cx traced{0.0, 0.0};
  for (std::size_t s = 0; s < 4; ++s) {
    traced += rho[base + row_off[s] + col_off[s]];
  }
  const cx fill = fill_scale * traced;
  for (std::size_t sr = 0; sr < 4; ++sr) {
    for (std::size_t sc = 0; sc < 4; ++sc) {
      cx& v = rho[base + row_off[sr] + col_off[sc]];
      v *= c1;
      if (sr == sc) v += fill;
    }
  }
}

}  // namespace

void depol1_range_avx2(cx* rho, std::size_t begin, std::size_t end, int pc,
                       int pr, double c1, double fill_scale) {
  const std::size_t mc = std::size_t{1} << pc;
  const std::size_t mr = std::size_t{1} << pr;
  double* const p = reinterpret_cast<double*>(rho);
  const __m256d c1v = _mm256_set1_pd(c1);
  const __m256d fsv = _mm256_set1_pd(fill_scale);
  if (pc >= 1) {
    // Bases with both target bits clear come in contiguous runs of
    // 2^pc >= 2: an even t and its successor map to adjacent quads, so
    // every offset is a full-width two-complex access scaled elementwise.
    std::size_t t = begin;
    if ((t & 1U) != 0 && t < end) {
      depol1_one(rho, insert_bit(insert_bit(t, pc), pr), mc, mr, c1,
                 fill_scale);
      ++t;
    }
    for (; t + 1 < end; t += 2) {
      const std::size_t base = insert_bit(insert_bit(t, pc), pr);
      double* const q00 = p + 2 * base;
      double* const q01 = p + 2 * (base | mc);
      double* const q10 = p + 2 * (base | mr);
      double* const q11 = p + 2 * (base | mr | mc);
      const __m256d v00 = _mm256_loadu_pd(q00);
      const __m256d v11 = _mm256_loadu_pd(q11);
      const __m256d fill = _mm256_mul_pd(fsv, _mm256_add_pd(v00, v11));
      _mm256_storeu_pd(q00, _mm256_add_pd(_mm256_mul_pd(c1v, v00), fill));
      _mm256_storeu_pd(q01, _mm256_mul_pd(c1v, _mm256_loadu_pd(q01)));
      _mm256_storeu_pd(q10, _mm256_mul_pd(c1v, _mm256_loadu_pd(q10)));
      _mm256_storeu_pd(q11, _mm256_add_pd(_mm256_mul_pd(c1v, v11), fill));
    }
    if (t < end) {
      depol1_one(rho, insert_bit(insert_bit(t, pc), pr), mc, mr, c1,
                 fill_scale);
    }
    return;
  }
  // pc == 0 (pr = pc + n >= 1): the (p00, p01) pair is contiguous at base
  // and (p10, p11) at base | mr, so one register holds each row of the
  // quad. Build the fill in the p00 lanes, mirror it into the p11 lanes.
  const __m256d zero = _mm256_setzero_pd();
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t base = insert_bit(insert_bit(t, 0), pr);
    double* const q0 = p + 2 * base;
    double* const q1 = p + 2 * (base | mr);
    const __m256d v0 = _mm256_loadu_pd(q0);  // [p00, p01]
    const __m256d v1 = _mm256_loadu_pd(q1);  // [p10, p11]
    const __m256d v1sw = _mm256_permute2f128_pd(v1, v1, 0x01);  // [p11, p10]
    // Lanes {0,1} hold p00 + p11 — the only lanes the blends keep.
    const __m256d fillv = _mm256_mul_pd(fsv, _mm256_add_pd(v0, v1sw));
    const __m256d out0 = _mm256_add_pd(_mm256_mul_pd(c1v, v0),
                                       _mm256_blend_pd(zero, fillv, 0x3));
    const __m256d fillsw = _mm256_permute2f128_pd(fillv, fillv, 0x01);
    const __m256d out1 = _mm256_add_pd(_mm256_mul_pd(c1v, v1),
                                       _mm256_blend_pd(zero, fillsw, 0xC));
    _mm256_storeu_pd(q0, out0);
    _mm256_storeu_pd(q1, out1);
  }
}

void depol2_range_avx2(cx* rho, std::size_t begin, std::size_t end,
                       const int* positions, const std::size_t* row_off,
                       const std::size_t* col_off, double c1,
                       double fill_scale) {
  double* const p = reinterpret_cast<double*>(rho);
  if (positions[0] < 1) {
    // The lowest target bit sits at position 0: bases are never adjacent,
    // so full-width loads would straddle block boundaries. Keep the
    // scalar body (still inside this TU so the caller's dispatch is one
    // branch either way).
    for (std::size_t t = begin; t < end; ++t) {
      std::size_t base = t;
      for (int j = 0; j < 4; ++j) base = insert_bit(base, positions[j]);
      depol2_one(rho, base, row_off, col_off, c1, fill_scale);
    }
    return;
  }
  const __m256d c1v = _mm256_set1_pd(c1);
  const __m256d fsv = _mm256_set1_pd(fill_scale);
  auto expand = [&](std::size_t t) {
    for (int j = 0; j < 4; ++j) t = insert_bit(t, positions[j]);
    return t;
  };
  std::size_t t = begin;
  if ((t & 1U) != 0 && t < end) {
    depol2_one(rho, expand(t), row_off, col_off, c1, fill_scale);
    ++t;
  }
  for (; t + 1 < end; t += 2) {
    const std::size_t base = expand(t);
    // Trace of the local diagonal across both blocks, then one scaled
    // (+ diagonal fill) pass over all 16 offsets.
    __m256d sum = _mm256_loadu_pd(p + 2 * (base + row_off[0] + col_off[0]));
    for (std::size_t s = 1; s < 4; ++s) {
      sum = _mm256_add_pd(
          sum, _mm256_loadu_pd(p + 2 * (base + row_off[s] + col_off[s])));
    }
    const __m256d fill = _mm256_mul_pd(fsv, sum);
    for (std::size_t sr = 0; sr < 4; ++sr) {
      for (std::size_t sc = 0; sc < 4; ++sc) {
        double* const q = p + 2 * (base + row_off[sr] + col_off[sc]);
        __m256d v = _mm256_mul_pd(c1v, _mm256_loadu_pd(q));
        if (sr == sc) v = _mm256_add_pd(v, fill);
        _mm256_storeu_pd(q, v);
      }
    }
  }
  if (t < end) {
    depol2_one(rho, expand(t), row_off, col_off, c1, fill_scale);
  }
}

void relax1_range_avx2(cx* rho, std::size_t begin, std::size_t end, int pc,
                       int pr, double gamma, double decay, double keep) {
  const std::size_t mc = std::size_t{1} << pc;
  const std::size_t mr = std::size_t{1} << pr;
  double* const p = reinterpret_cast<double*>(rho);
  if (pc >= 1) {
    const __m256d gv = _mm256_set1_pd(gamma);
    const __m256d dv = _mm256_set1_pd(decay);
    const __m256d kv = _mm256_set1_pd(keep);
    std::size_t t = begin;
    if ((t & 1U) != 0 && t < end) {
      relax1_one(rho, insert_bit(insert_bit(t, pc), pr), mc, mr, gamma, decay,
                 keep);
      ++t;
    }
    for (; t + 1 < end; t += 2) {
      const std::size_t base = insert_bit(insert_bit(t, pc), pr);
      double* const q00 = p + 2 * base;
      double* const q01 = p + 2 * (base | mc);
      double* const q10 = p + 2 * (base | mr);
      double* const q11 = p + 2 * (base | mr | mc);
      const __m256d v11 = _mm256_loadu_pd(q11);
      _mm256_storeu_pd(
          q00, _mm256_add_pd(_mm256_loadu_pd(q00), _mm256_mul_pd(gv, v11)));
      _mm256_storeu_pd(q01, _mm256_mul_pd(dv, _mm256_loadu_pd(q01)));
      _mm256_storeu_pd(q10, _mm256_mul_pd(dv, _mm256_loadu_pd(q10)));
      _mm256_storeu_pd(q11, _mm256_mul_pd(kv, v11));
    }
    if (t < end) {
      relax1_one(rho, insert_bit(insert_bit(t, pc), pr), mc, mr, gamma, decay,
                 keep);
    }
    return;
  }
  // pc == 0: rows of the quad are contiguous pairs; per-lane coefficient
  // vectors apply (1, decay) to the top row and (decay, keep) to the
  // bottom, with the gamma*p11 term mirrored into the p00 lanes.
  const __m256d top = _mm256_setr_pd(1.0, 1.0, decay, decay);
  const __m256d bot = _mm256_setr_pd(decay, decay, keep, keep);
  const __m256d gsel = _mm256_setr_pd(gamma, gamma, 0.0, 0.0);
  for (std::size_t t = begin; t < end; ++t) {
    const std::size_t base = insert_bit(insert_bit(t, 0), pr);
    double* const q0 = p + 2 * base;
    double* const q1 = p + 2 * (base | mr);
    const __m256d v0 = _mm256_loadu_pd(q0);  // [p00, p01]
    const __m256d v1 = _mm256_loadu_pd(q1);  // [p10, p11]
    const __m256d v1sw = _mm256_permute2f128_pd(v1, v1, 0x01);  // [p11, p10]
    const __m256d out0 =
        _mm256_add_pd(_mm256_mul_pd(v0, top), _mm256_mul_pd(v1sw, gsel));
    const __m256d out1 = _mm256_mul_pd(v1, bot);
    _mm256_storeu_pd(q0, out0);
    _mm256_storeu_pd(q1, out1);
  }
}

namespace {

inline __m256d imswap(__m256d v) { return _mm256_permute_pd(v, 0x5); }

/// y = alpha * x + beta * z for complex scalars alpha/beta against a
/// 2-amplitude vector x/z (xs/zs are their imswap'd forms): the addsub
/// identity with both terms folded into one accumulate pair.
inline __m256d scale2(__m256d x, __m256d xs, double ar, double ai, __m256d z,
                      __m256d zs, double br, double bi) {
  __m256d accr = _mm256_mul_pd(_mm256_set1_pd(ar), x);
  accr = _mm256_fmadd_pd(_mm256_set1_pd(br), z, accr);
  __m256d acci = _mm256_mul_pd(_mm256_set1_pd(ai), xs);
  acci = _mm256_fmadd_pd(_mm256_set1_pd(bi), zs, acci);
  return _mm256_addsub_pd(accr, acci);
}

/// out = perm(a) * b where perm(a)[r][c] = a[s[r]][s[c]]; S == 0 is the
/// identity, S == 1 the operand swap {0, 2, 1, 3}. The permutation lands
/// on the broadcast coefficient loads, so the swapped variant costs the
/// same as the plain product and never materializes a reordered copy.
/// All loads precede the stores, so out may alias a or b.
template <int S>
inline void mul4_perm(cx* out, const cx* a, const cx* b) {
  static constexpr int kPerm[2][4] = {{0, 1, 2, 3}, {0, 2, 1, 3}};
  const double* pa = reinterpret_cast<const double*>(a);
  const double* pb = reinterpret_cast<const double*>(b);
  __m256d bh[4][2], bs[4][2];
  for (int k = 0; k < 4; ++k) {
    bh[k][0] = _mm256_loadu_pd(pb + 8 * k);
    bh[k][1] = _mm256_loadu_pd(pb + 8 * k + 4);
    bs[k][0] = imswap(bh[k][0]);
    bs[k][1] = imswap(bh[k][1]);
  }
  __m256d res[4][2];
  for (int r = 0; r < 4; ++r) {
    const int pr = kPerm[S][r];
    __m256d ar0 = _mm256_setzero_pd(), ai0 = _mm256_setzero_pd();
    __m256d ar1 = _mm256_setzero_pd(), ai1 = _mm256_setzero_pd();
    for (int k = 0; k < 4; ++k) {
      const int pk = kPerm[S][k];
      const __m256d cr = _mm256_set1_pd(pa[8 * pr + 2 * pk]);
      const __m256d ci = _mm256_set1_pd(pa[8 * pr + 2 * pk + 1]);
      ar0 = _mm256_fmadd_pd(cr, bh[k][0], ar0);
      ai0 = _mm256_fmadd_pd(ci, bs[k][0], ai0);
      ar1 = _mm256_fmadd_pd(cr, bh[k][1], ar1);
      ai1 = _mm256_fmadd_pd(ci, bs[k][1], ai1);
    }
    res[r][0] = _mm256_addsub_pd(ar0, ai0);
    res[r][1] = _mm256_addsub_pd(ar1, ai1);
  }
  double* po = reinterpret_cast<double*>(out);
  for (int r = 0; r < 4; ++r) {
    _mm256_storeu_pd(po + 8 * r, res[r][0]);
    _mm256_storeu_pd(po + 8 * r + 4, res[r][1]);
  }
}

}  // namespace

void mul4_avx2(cx* out, const cx* a, const cx* b) { mul4_perm<0>(out, a, b); }

void swap_mul4_avx2(cx* m, const cx* u) { mul4_perm<1>(m, u, m); }

void lift_mul4_avx2(cx* m, const cx* u, bool high) {
  const double* pm = reinterpret_cast<const double*>(m);
  const double* pu = reinterpret_cast<const double*>(u);
  __m256d row[4][2], rsw[4][2];
  for (int r = 0; r < 4; ++r) {
    row[r][0] = _mm256_loadu_pd(pm + 8 * r);
    row[r][1] = _mm256_loadu_pd(pm + 8 * r + 4);
    rsw[r][0] = imswap(row[r][0]);
    rsw[r][1] = imswap(row[r][1]);
  }
  // lift1(u, high) has two nonzeros per row, so each output row is a
  // two-term combination of rows of m:
  //   high: out(2ur+l) = u[2ur] * m(l)    + u[2ur+1] * m(2+l)
  //   low:  out(2h+ur) = u[2ur] * m(2h)   + u[2ur+1] * m(2h+1)
  static constexpr int kSrc[2][4][2] = {
      {{0, 1}, {0, 1}, {2, 3}, {2, 3}},  // low
      {{0, 2}, {1, 3}, {0, 2}, {1, 3}},  // high
  };
  static constexpr int kCoef[2][4][2] = {
      {{0, 1}, {2, 3}, {0, 1}, {2, 3}},  // low
      {{0, 1}, {0, 1}, {2, 3}, {2, 3}},  // high
  };
  const int hi = high ? 1 : 0;
  __m256d res[4][2];
  for (int r = 0; r < 4; ++r) {
    const int x = kSrc[hi][r][0], z = kSrc[hi][r][1];
    const int ca = kCoef[hi][r][0], cb = kCoef[hi][r][1];
    for (int h = 0; h < 2; ++h) {
      res[r][h] = scale2(row[x][h], rsw[x][h], pu[2 * ca], pu[2 * ca + 1],
                         row[z][h], rsw[z][h], pu[2 * cb], pu[2 * cb + 1]);
    }
  }
  double* po = reinterpret_cast<double*>(m);
  for (int r = 0; r < 4; ++r) {
    _mm256_storeu_pd(po + 8 * r, res[r][0]);
    _mm256_storeu_pd(po + 8 * r + 4, res[r][1]);
  }
}

void mul4_lift_avx2(cx* m, const cx* u, bool high) {
  const double* pm = reinterpret_cast<const double*>(m);
  const double* pu = reinterpret_cast<const double*>(u);
  __m256d res[4][2];
  if (high) {
    // out_cols{0,1} = u00 * m_cols{0,1} + u10 * m_cols{2,3} (and u01/u11
    // for cols {2,3}): whole column halves combine within each row.
    for (int r = 0; r < 4; ++r) {
      const __m256d h0 = _mm256_loadu_pd(pm + 8 * r);
      const __m256d h1 = _mm256_loadu_pd(pm + 8 * r + 4);
      const __m256d h0s = imswap(h0), h1s = imswap(h1);
      res[r][0] = scale2(h0, h0s, pu[0], pu[1], h1, h1s, pu[4], pu[5]);
      res[r][1] = scale2(h0, h0s, pu[2], pu[3], h1, h1s, pu[6], pu[7]);
    }
  } else {
    // Columns combine within each 2-amplitude half: out = [c0*u00 + c1*u10,
    // c0*u01 + c1*u11], so broadcast each cx across the register and use
    // per-lane coefficient vectors.
    const __m256d cre_a = _mm256_setr_pd(pu[0], pu[0], pu[2], pu[2]);
    const __m256d cim_a = _mm256_setr_pd(pu[1], pu[1], pu[3], pu[3]);
    const __m256d cre_b = _mm256_setr_pd(pu[4], pu[4], pu[6], pu[6]);
    const __m256d cim_b = _mm256_setr_pd(pu[5], pu[5], pu[7], pu[7]);
    for (int r = 0; r < 4; ++r) {
      for (int h = 0; h < 2; ++h) {
        const __m256d x = _mm256_loadu_pd(pm + 8 * r + 4 * h);
        const __m256d x0 = _mm256_permute2f128_pd(x, x, 0x00);
        const __m256d x1 = _mm256_permute2f128_pd(x, x, 0x11);
        __m256d accr = _mm256_mul_pd(cre_a, x0);
        accr = _mm256_fmadd_pd(cre_b, x1, accr);
        __m256d acci = _mm256_mul_pd(cim_a, imswap(x0));
        acci = _mm256_fmadd_pd(cim_b, imswap(x1), acci);
        res[r][h] = _mm256_addsub_pd(accr, acci);
      }
    }
  }
  double* po = reinterpret_cast<double*>(m);
  for (int r = 0; r < 4; ++r) {
    _mm256_storeu_pd(po + 8 * r, res[r][0]);
    _mm256_storeu_pd(po + 8 * r + 4, res[r][1]);
  }
}

}  // namespace qucp::kern::detail

#endif  // QUCP_NATIVE_KERNELS && x86
