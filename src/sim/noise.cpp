#include "sim/noise.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qucp {

double depolarizing_param(double err, double max_p) {
  if (err < 0.0) throw std::invalid_argument("depolarizing_param: err < 0");
  return std::min(err, max_p);
}

void apply_readout_flips(std::vector<double>& probs,
                         std::span<const double> flip_probs) {
  const std::size_t dim = probs.size();
  if (dim == 0 || (dim & (dim - 1)) != 0) {
    throw std::invalid_argument("apply_readout_flips: size not a power of 2");
  }
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < dim) ++bits;
  if (flip_probs.size() != bits) {
    throw std::invalid_argument("apply_readout_flips: flip count mismatch");
  }
  for (std::size_t b = 0; b < bits; ++b) {
    const double e = flip_probs[b];
    if (e < 0.0 || e > 1.0) {
      throw std::invalid_argument("apply_readout_flips: prob outside [0,1]");
    }
    if (e == 0.0) continue;
    const std::size_t mask = std::size_t{1} << b;
    for (std::size_t x = 0; x < dim; ++x) {
      if (x & mask) continue;  // handle each pair once
      const double p0 = probs[x];
      const double p1 = probs[x | mask];
      probs[x] = (1.0 - e) * p0 + e * p1;
      probs[x | mask] = (1.0 - e) * p1 + e * p0;
    }
  }
}

}  // namespace qucp
