#pragma once
// Exact noisy simulation via density matrices.
//
// Programs in this library are small (<= ~10 qubits per partition), so we
// can afford the exact mixed-state evolution: no trajectory sampling noise,
// which keeps JSD/PST comparisons between methods deterministic up to the
// final (optional) shot sampling.

#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/matrix.hpp"
#include "sim/counts.hpp"

namespace qucp {

class DensityMatrix {
 public:
  /// |0..0><0..0| on n qubits. Practical up to ~10 qubits.
  explicit DensityMatrix(int num_qubits);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// rho -> U rho U^dagger with U acting on `qubits` (first operand = high
  /// local bit).
  void apply_unitary(const Matrix& u, std::span<const int> qubits);

  /// Uniform-Pauli depolarizing channel with parameter p on the given
  /// qubits: rho -> (1-p) rho + p/(4^m - 1) * sum_{P != I} P rho P.
  void apply_depolarizing(double p, std::span<const int> qubits);

  /// General Kraus channel: rho -> sum_k K rho K^dagger. Kraus operators
  /// must satisfy sum K^dagger K == I (checked to tolerance).
  void apply_kraus(std::span<const Matrix> kraus, std::span<const int> qubits);

  /// Thermal relaxation on one qubit for duration_ns given T1/T2 in us
  /// (amplitude damping followed by pure dephasing).
  void apply_relaxation(int qubit, double duration_ns, double t1_us,
                        double t2_us);

  /// Diagonal of rho (populations), clamped at 0.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// tr(rho * observable).
  [[nodiscard]] double expectation(const Matrix& observable) const;

  [[nodiscard]] double trace_real() const;

  /// Purity tr(rho^2).
  [[nodiscard]] double purity() const;

 private:
  int num_qubits_;
  std::size_t dim_;
  std::vector<cx> rho_;  // row-major dim x dim

  void check_qubits(std::span<const int> qubits) const;
};

}  // namespace qucp
