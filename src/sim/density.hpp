#pragma once
// Exact noisy simulation via density matrices.
//
// Programs in this library are small (<= ~10 qubits per partition), so we
// can afford the exact mixed-state evolution: no trajectory sampling noise,
// which keeps JSD/PST comparisons between methods deterministic up to the
// final (optional) shot sampling.
//
// Hot-path design: rho is stored row-major and treated as a superket of
// length dim^2, so every channel update runs as statevector-style kernels
// over 2n bits (see sim/kernels.hpp) — row bit q of rho lives at superket
// bit q + n, column bit q at superket bit q. All scratch buffers are owned
// by the instance and reused, so no channel update allocates after the
// first call at a given size.

#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/matrix.hpp"
#include "sim/counts.hpp"

namespace qucp {

class CompiledProgram;  // sim/fusion.hpp
struct FusedOp;         // sim/fusion.hpp

class DensityMatrix {
 public:
  /// |0..0><0..0| on n qubits. Practical up to ~10 qubits.
  explicit DensityMatrix(int num_qubits);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Row-major dim x dim matrix elements: data()[r * dim() + c] = <r|rho|c>.
  [[nodiscard]] std::span<const cx> data() const noexcept { return rho_; }

  /// rho -> U rho U^dagger with U acting on `qubits` (first operand = high
  /// local bit).
  void apply_unitary(const Matrix& u, std::span<const int> qubits);

  /// rho -> U rho U^dagger from a precompiled kernel set (sim/fusion.hpp):
  /// the executor's hot path for replayed programs. Arithmetic is
  /// identical to apply_unitary on the same matrix — the superket
  /// compilation was merely hoisted to program-compile time.
  void apply_compiled(const FusedOp& op, std::span<const int> qubits);

  /// Replay a fused program's unitary stream (noiselessly) on this state.
  /// Measurements in the program are ignored.
  void run(const CompiledProgram& program);

  /// Uniform-Pauli depolarizing channel with parameter p on the given
  /// qubits: rho -> (1-p) rho + p/(4^m - 1) * sum_{P != I} P rho P.
  /// Applied in place via the twirl identity (partial trace + uniform
  /// refill on the local diagonal).
  void apply_depolarizing(double p, std::span<const int> qubits);

  /// General Kraus channel: rho -> sum_k K rho K^dagger. With `validate`
  /// (the default) the Kraus set is checked for trace preservation
  /// (sum K^dagger K == I to tolerance) before anything is applied;
  /// internal hot-path callers that construct provably complete sets pass
  /// false to skip the Matrix multiplies.
  void apply_kraus(std::span<const Matrix> kraus, std::span<const int> qubits,
                   bool validate = true);

  /// Thermal relaxation on one qubit for duration_ns given T1/T2 in us.
  /// Amplitude damping followed by pure dephasing, fused into one
  /// closed-form per-element pass (no Kraus matrices are built).
  void apply_relaxation(int qubit, double duration_ns, double t1_us,
                        double t2_us);

  /// Diagonal of rho (populations), clamped at 0.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// tr(rho * observable).
  [[nodiscard]] double expectation(const Matrix& observable) const;

  [[nodiscard]] double trace_real() const;

  /// Purity tr(rho^2).
  [[nodiscard]] double purity() const;

 private:
  int num_qubits_;
  std::size_t dim_;
  std::vector<cx> rho_;  // row-major dim x dim, read as a superket

  // Reused scratch (grown on first use, never shrunk): generic-kernel
  // gather buffer, per-base partial traces for the depolarizing refill,
  // and the original/accumulator copies a multi-operator Kraus sum needs.
  std::vector<cx> kernel_scratch_;
  std::vector<cx> trace_scratch_;
  std::vector<cx> kraus_orig_;
  std::vector<cx> kraus_acc_;
  std::vector<std::size_t> offset_scratch_;

  void check_qubits(std::span<const int> qubits) const;
  /// Superket application of (u (x) conj(u)) — the shared core of
  /// apply_unitary and apply_kraus; no unitarity is assumed.
  void transform_two_sided(const Matrix& u, std::span<const int> qubits);
};

}  // namespace qucp
