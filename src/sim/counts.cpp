#include "sim/counts.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace qucp {

Distribution::Distribution(int num_bits, std::map<std::uint64_t, double> probs)
    : num_bits_(num_bits) {
  if (num_bits < 0 || num_bits > 63) {
    throw std::invalid_argument("Distribution: bad bit count");
  }
  double total = 0.0;
  for (const auto& [outcome, p] : probs) {
    if (p < -1e-12) throw std::invalid_argument("Distribution: negative prob");
    if (outcome >> num_bits) {
      throw std::invalid_argument("Distribution: outcome exceeds bit width");
    }
    total += std::max(0.0, p);
  }
  if (total <= 0.0) throw std::invalid_argument("Distribution: empty support");
  for (const auto& [outcome, p] : probs) {
    if (p > 1e-15) probs_[outcome] = p / total;
  }
}

double Distribution::prob(std::uint64_t outcome) const {
  const auto it = probs_.find(outcome);
  return it == probs_.end() ? 0.0 : it->second;
}

std::uint64_t Distribution::most_likely() const {
  if (probs_.empty()) throw std::logic_error("Distribution: empty");
  std::uint64_t best = 0;
  double best_p = -1.0;
  for (const auto& [outcome, p] : probs_) {
    if (p > best_p) {
      best_p = p;
      best = outcome;
    }
  }
  return best;
}

Counts::Counts(int num_bits, std::map<std::uint64_t, int> counts)
    : num_bits_(num_bits), counts_(std::move(counts)) {
  for (const auto& [outcome, n] : counts_) {
    if (n < 0) throw std::invalid_argument("Counts: negative count");
    if (outcome >> num_bits) {
      throw std::invalid_argument("Counts: outcome exceeds bit width");
    }
    total_ += n;
  }
}

int Counts::count(std::uint64_t outcome) const {
  const auto it = counts_.find(outcome);
  return it == counts_.end() ? 0 : it->second;
}

void Counts::add(std::uint64_t outcome, int n) {
  if (n < 0) throw std::invalid_argument("Counts::add: negative count");
  if (outcome >> num_bits_) {
    throw std::invalid_argument("Counts::add: outcome exceeds bit width");
  }
  counts_[outcome] += n;
  total_ += n;
}

Distribution Counts::to_distribution() const {
  if (total_ == 0) throw std::logic_error("Counts: no shots");
  std::map<std::uint64_t, double> probs;
  for (const auto& [outcome, n] : counts_) {
    probs[outcome] = static_cast<double>(n) / total_;
  }
  return Distribution(num_bits_, std::move(probs));
}

Counts sample_counts(const Distribution& dist, int shots, Rng& rng) {
  if (shots <= 0) throw std::invalid_argument("sample_counts: shots <= 0");
  std::vector<std::uint64_t> outcomes;
  std::vector<double> weights;
  outcomes.reserve(dist.probs().size());
  for (const auto& [outcome, p] : dist.probs()) {
    outcomes.push_back(outcome);
    weights.push_back(p);
  }
  Counts counts(dist.num_bits(), {});
  for (int s = 0; s < shots; ++s) {
    counts.add(outcomes[rng.discrete(weights)]);
  }
  return counts;
}

std::string outcome_to_string(std::uint64_t outcome, int num_bits) {
  std::string s(static_cast<std::size_t>(num_bits), '0');
  for (int b = 0; b < num_bits; ++b) {
    if ((outcome >> b) & 1U) s[static_cast<std::size_t>(num_bits - 1 - b)] = '1';
  }
  return s;
}

}  // namespace qucp
