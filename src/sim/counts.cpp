#include "sim/counts.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace qucp {

Distribution::Distribution(int num_bits, std::vector<Entry> probs)
    : num_bits_(num_bits), probs_(std::move(probs)) {
  if (num_bits < 0 || num_bits > 63) {
    throw std::invalid_argument("Distribution: bad bit count");
  }
  // Sort by outcome; stable so repeated outcomes merge in input order.
  if (!std::is_sorted(probs_.begin(), probs_.end(),
                      [](const Entry& a, const Entry& b) {
                        return a.first < b.first;
                      })) {
    std::stable_sort(probs_.begin(), probs_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.first < b.first;
                     });
  }
  std::size_t unique = 0;
  for (std::size_t i = 0; i < probs_.size(); ++i) {
    if (unique > 0 && probs_[unique - 1].first == probs_[i].first) {
      probs_[unique - 1].second += probs_[i].second;
    } else {
      probs_[unique++] = probs_[i];
    }
  }
  probs_.resize(unique);
  double total = 0.0;
  for (const auto& [outcome, p] : probs_) {
    if (p < -1e-12) throw std::invalid_argument("Distribution: negative prob");
    if (outcome >> num_bits) {
      throw std::invalid_argument("Distribution: outcome exceeds bit width");
    }
    total += std::max(0.0, p);
  }
  if (total <= 0.0) throw std::invalid_argument("Distribution: empty support");
  unique = 0;
  for (const auto& [outcome, p] : probs_) {
    if (p > 1e-15) probs_[unique++] = {outcome, p / total};
  }
  probs_.resize(unique);
}

double Distribution::prob(std::uint64_t outcome) const {
  const auto it = std::lower_bound(probs_.begin(), probs_.end(), outcome,
                                   [](const Entry& e, std::uint64_t o) {
                                     return e.first < o;
                                   });
  return it == probs_.end() || it->first != outcome ? 0.0 : it->second;
}

std::uint64_t Distribution::most_likely() const {
  if (probs_.empty()) throw std::logic_error("Distribution: empty");
  std::uint64_t best = 0;
  double best_p = -1.0;
  for (const auto& [outcome, p] : probs_) {
    if (p > best_p) {
      best_p = p;
      best = outcome;
    }
  }
  return best;
}

Counts::Counts(int num_bits, std::vector<Entry> counts)
    : num_bits_(num_bits), counts_(std::move(counts)) {
  // Validate the original entries before merging duplicates: a negative
  // count must throw even when a duplicate outcome would net it out.
  for (const auto& [outcome, n] : counts_) {
    if (n < 0) throw std::invalid_argument("Counts: negative count");
    if (outcome >> num_bits) {
      throw std::invalid_argument("Counts: outcome exceeds bit width");
    }
    total_ += n;
  }
  std::sort(counts_.begin(), counts_.end(),
            [](const Entry& a, const Entry& b) { return a.first < b.first; });
  std::size_t unique = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (unique > 0 && counts_[unique - 1].first == counts_[i].first) {
      counts_[unique - 1].second += counts_[i].second;
    } else {
      counts_[unique++] = counts_[i];
    }
  }
  counts_.resize(unique);
}

int Counts::count(std::uint64_t outcome) const {
  const auto it = std::lower_bound(counts_.begin(), counts_.end(), outcome,
                                   [](const Entry& e, std::uint64_t o) {
                                     return e.first < o;
                                   });
  return it == counts_.end() || it->first != outcome ? 0 : it->second;
}

void Counts::add(std::uint64_t outcome, int n) {
  if (n < 0) throw std::invalid_argument("Counts::add: negative count");
  if (outcome >> num_bits_) {
    throw std::invalid_argument("Counts::add: outcome exceeds bit width");
  }
  // Ascending-outcome producers (sample_counts, the executor's packed-
  // outcome walk) append here in O(1); out-of-order adds pay one sorted
  // insert, matching the old map's semantics of keeping a zero-count
  // entry visible.
  const auto it = std::lower_bound(counts_.begin(), counts_.end(), outcome,
                                   [](const Entry& e, std::uint64_t o) {
                                     return e.first < o;
                                   });
  if (it != counts_.end() && it->first == outcome) {
    it->second += n;
  } else {
    counts_.insert(it, Entry{outcome, n});
  }
  total_ += n;
}

Distribution Counts::to_distribution() const {
  if (total_ == 0) throw std::logic_error("Counts: no shots");
  std::vector<Distribution::Entry> probs;
  probs.reserve(counts_.size());
  for (const auto& [outcome, n] : counts_) {
    probs.emplace_back(outcome, static_cast<double>(n) / total_);
  }
  return Distribution(num_bits_, std::move(probs));
}

namespace detail {

std::size_t cdf_index(std::span<const double> cdf, double r) noexcept {
  const std::size_t idx = static_cast<std::size_t>(
      std::upper_bound(cdf.begin(), cdf.end(), r) - cdf.begin());
  // r at or past cdf.back() — a draw in the rounding gap the accumulated
  // prefix sums leave below the true total — lands in the last bucket.
  return idx == cdf.size() ? cdf.size() - 1 : idx;
}

}  // namespace detail

Counts sample_counts(const Distribution& dist, int shots, Rng& rng) {
  if (shots <= 0) throw std::invalid_argument("sample_counts: shots <= 0");
  const std::vector<Distribution::Entry>& entries = dist.probs();
  if (entries.empty()) {
    // Matches the old per-shot rng.discrete() behavior, which threw on an
    // all-zero weight set (a default-constructed Distribution).
    throw std::invalid_argument("sample_counts: empty distribution");
  }
  // Prefix sums accumulated left to right — the identical summation and
  // strict r < cdf[i] comparison Rng::discrete performs, so the sampled
  // index stream is bit-for-bit the one a per-shot discrete() would give,
  // at a binary search instead of a linear scan per shot.
  std::vector<double> cdf;
  cdf.reserve(entries.size());
  double acc = 0.0;
  for (const auto& [outcome, p] : entries) {
    acc += p;
    cdf.push_back(acc);
  }
  const double total = acc;
  std::vector<int> hits(entries.size(), 0);
  for (int s = 0; s < shots; ++s) {
    ++hits[detail::cdf_index(cdf, rng.uniform() * total)];
  }
  Counts counts(dist.num_bits(), {});
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (hits[i] > 0) counts.add(entries[i].first, hits[i]);
  }
  return counts;
}

std::string outcome_to_string(std::uint64_t outcome, int num_bits) {
  std::string s(static_cast<std::size_t>(num_bits), '0');
  for (int b = 0; b < num_bits; ++b) {
    if ((outcome >> b) & 1U) s[static_cast<std::size_t>(num_bits - 1 - b)] = '1';
  }
  return s;
}

}  // namespace qucp
