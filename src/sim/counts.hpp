#pragma once
// Measurement outcome containers.
//
// Counts maps classical-bit outcomes (packed little-endian: clbit 0 is bit
// 0) to shot counts. Distribution is its normalized sibling and the common
// currency of the fidelity metrics (PST, JSD).

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace qucp {

class Rng;

/// Normalized probability distribution over packed clbit outcomes.
///
/// Stored as a flat (outcome, probability) vector sorted by outcome — one
/// allocation instead of a tree node per outcome, which keeps the
/// simulator's result-assembly hot path cheap. Iteration with structured
/// bindings works exactly as it did with the former std::map storage.
class Distribution {
 public:
  using Entry = std::pair<std::uint64_t, double>;

  Distribution() = default;
  /// Construct from (outcome, probability) entries, in any order and
  /// possibly with repeated outcomes (summed); normalizes; drops zeros.
  Distribution(int num_bits, std::vector<Entry> probs);

  [[nodiscard]] int num_bits() const noexcept { return num_bits_; }
  /// Entries sorted by outcome, normalized, zero-free.
  [[nodiscard]] const std::vector<Entry>& probs() const noexcept {
    return probs_;
  }
  [[nodiscard]] double prob(std::uint64_t outcome) const;
  [[nodiscard]] bool empty() const noexcept { return probs_.empty(); }

  /// Outcome with highest probability; throws when empty.
  [[nodiscard]] std::uint64_t most_likely() const;

 private:
  int num_bits_ = 0;
  std::vector<Entry> probs_;
};

/// Raw shot counts.
///
/// Stored as a flat (outcome, count) vector sorted by outcome — the same
/// representation Distribution uses, so result assembly allocates one
/// buffer instead of a tree node per outcome. Iteration order (ascending
/// outcome) and therefore serialization are identical to the former
/// std::map storage, and structured-binding loops work unchanged.
class Counts {
 public:
  using Entry = std::pair<std::uint64_t, int>;

  Counts() = default;
  /// Construct from (outcome, count) entries, in any order and possibly
  /// with repeated outcomes (summed).
  Counts(int num_bits, std::vector<Entry> counts);

  [[nodiscard]] int num_bits() const noexcept { return num_bits_; }
  /// Entries sorted by outcome.
  [[nodiscard]] const std::vector<Entry>& data() const noexcept {
    return counts_;
  }
  [[nodiscard]] int total() const noexcept { return total_; }
  [[nodiscard]] int count(std::uint64_t outcome) const;

  void add(std::uint64_t outcome, int n = 1);

  [[nodiscard]] Distribution to_distribution() const;

 private:
  int num_bits_ = 0;
  std::vector<Entry> counts_;  ///< sorted by outcome, unique
  int total_ = 0;
};

/// Draw `shots` samples from a distribution (multinomial).
[[nodiscard]] Counts sample_counts(const Distribution& dist, int shots,
                                   Rng& rng);

namespace detail {

/// Bucket index of draw `r` against an inclusive prefix-sum CDF (the
/// sample_counts binary search): the first entry with cdf[i] > r, clamped
/// to the last bucket. The clamp is load-bearing: left-to-right
/// accumulation can leave cdf.back() fractionally below the true total, so
/// a uniform draw near 1.0 (scaled to that total) would otherwise index
/// one past the end. Requires a non-empty, non-decreasing cdf.
[[nodiscard]] std::size_t cdf_index(std::span<const double> cdf,
                                    double r) noexcept;

}  // namespace detail

/// Render an outcome as a bitstring, clbit (num_bits-1) first — matching
/// the usual Qiskit display convention.
[[nodiscard]] std::string outcome_to_string(std::uint64_t outcome,
                                            int num_bits);

}  // namespace qucp
