#pragma once
// Program-level gate fusion and per-program kernel compilation.
//
// A CompiledProgram walks a Circuit once and fuses maximal runs of
// adjacent gates into single dense kernels:
//
//   - consecutive 1q gates on the same qubit collapse into one 2x2, so a
//     rotation ladder pays one kernel sweep instead of one per gate;
//   - 1q gates adjacent to a 2q gate on a shared qubit are absorbed into
//     that gate's 4x4, as are consecutive 2q gates on the same qubit pair
//     (in either operand order).
//
// The existing compiled-gate classification (kern::compile_unitary:
// diag / antidiag / CX / SWAP / generalized-permutation / dense) is then
// re-applied to each fused product, so fusion that lands back on a
// structured matrix (e.g. an RZ ladder fusing to a diagonal) still takes
// the cheap kernel path. Fusion never reorders across barriers or
// measurements: a barrier or measure closes every block it touches, and
// blocks only absorb gates on their own qubits, so any two non-commuting
// ops keep their program order. Fused replay therefore agrees with
// gate-by-gate replay to simulation accuracy (pinned at <= 1e-10 by
// tests/test_fusion.cpp).
//
// CompiledExecutable is the unfused sibling for the noisy executor: the
// CX-lowered circuit plus per-op precompiled kernels (including the
// superket forms DensityMatrix needs), replayed gate by gate so noise
// channels interleave exactly as before — arithmetic identical to the
// uncompiled path bit for bit. CompiledProgramCache memoizes both per
// circuit fingerprint and lives on a Backend next to GateMatrixCache and
// CandidateIndex.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/counts.hpp"
#include "sim/kernels.hpp"

namespace qucp {

class GateMatrixCache;  // circuit/gate_cache.hpp

/// One fused (or per-op compiled) unitary with every kernel form the
/// simulators need, precompiled:
///   - `sv`: the k-qubit unitary itself (statevector replay; for k == 2 it
///     doubles as the density row pass over the superket's row bits);
///   - `dm`: the superket companion for density replay — k == 1: the
///     compiled 4x4 U (x) conj(U) gate, k == 2: the compiled conj(U)
///     column pass.
struct FusedOp {
  kern::CompiledUnitary sv;
  kern::CompiledUnitary dm;
  int q[2] = {-1, -1};  ///< qubit operands; q[0] = high local bit for k == 2

  [[nodiscard]] int k() const noexcept { return sv.k; }
  /// False for the placeholder entries a CompiledExecutable keeps at
  /// barrier/measure positions.
  [[nodiscard]] bool is_unitary() const noexcept { return q[0] >= 0; }
};

/// A circuit compiled to a fused kernel stream plus its measurement map.
class CompiledProgram {
 public:
  /// Fuse and compile `circuit`. Accepts any simulable circuit (unitary
  /// gates, barriers, measurements).
  [[nodiscard]] static CompiledProgram compile(const Circuit& circuit);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] int num_clbits() const noexcept { return num_clbits_; }
  /// Fused unitary stream, in a program-order-compatible interleaving.
  [[nodiscard]] const std::vector<FusedOp>& ops() const noexcept {
    return ops_;
  }
  /// (qubit, clbit) pairs in program order.
  [[nodiscard]] const std::vector<std::pair<int, int>>& measurements()
      const noexcept {
    return measurements_;
  }
  /// Unitary gates in the source circuit (what fusion started from).
  [[nodiscard]] std::size_t source_gate_count() const noexcept {
    return source_gates_;
  }

 private:
  int num_qubits_ = 0;
  int num_clbits_ = 0;
  std::vector<FusedOp> ops_;
  std::vector<std::pair<int, int>> measurements_;
  std::size_t source_gates_ = 0;
};

/// A physical program compiled for the noisy executor: lowered to the CX
/// basis once, with per-op kernels precompiled and aligned 1:1 with
/// `lowered.ops()` (non-unitary positions hold placeholder entries).
/// Replay is gate by gate — no fusion — so interleaved noise channels see
/// exactly the state they saw before compilation existed. The fused
/// compilation of the compacted lowered circuit rides along for the
/// executor's noiseless fast path (gate_noise and idle_noise both off),
/// so a cached executable answers both replay styles without per-call
/// recompaction.
class CompiledExecutable {
 public:
  [[nodiscard]] static CompiledExecutable compile(
      const Circuit& physical, GateMatrixCache* matrices = nullptr);

  [[nodiscard]] const Circuit& lowered() const noexcept { return lowered_; }
  [[nodiscard]] const std::vector<FusedOp>& channels() const noexcept {
    return channels_;
  }
  /// Fused kernel stream of lowered().compacted() — active qubit i of the
  /// lowered circuit is local bit i, the executor's partition mapping.
  [[nodiscard]] const CompiledProgram& fused_compacted() const noexcept {
    return *fused_compacted_;
  }

 private:
  Circuit lowered_;
  std::vector<FusedOp> channels_;
  std::shared_ptr<const CompiledProgram> fused_compacted_;
};

/// Per-op (unfused) kernel compilation for an arbitrary circuit: entry i
/// corresponds to circuit.ops()[i]; barrier/measure positions are
/// placeholders with is_unitary() == false.
[[nodiscard]] std::vector<FusedOp> compile_ops(const Circuit& circuit,
                                               GateMatrixCache* matrices =
                                                   nullptr);

/// Exact outcome distribution of a compiled (fused) program under ideal
/// execution — the cached-program fast path of
/// ideal_distribution(const Circuit&).
[[nodiscard]] Distribution ideal_distribution(const CompiledProgram& program);

/// Thread-safe per-Backend memo of compiled programs, keyed by circuit
/// fingerprint like the transpile cache. Entries are returned as
/// shared_ptr so FIFO eviction can never invalidate a program a simulation
/// is replaying. Bounded: an endless stream of distinct circuits evicts
/// oldest-first instead of growing without limit.
class CompiledProgramCache {
 public:
  static constexpr std::size_t kMaxEntries = 1 << 10;

  /// Fused compilation of `circuit` (ideal pipeline).
  [[nodiscard]] std::shared_ptr<const CompiledProgram> fused(
      const Circuit& circuit) const;

  /// Lowered + per-op compilation of `physical` (noisy pipeline).
  /// `matrices` (optional) memoizes the gate unitaries built during
  /// compilation.
  [[nodiscard]] std::shared_ptr<const CompiledExecutable> executable(
      const Circuit& physical, GateMatrixCache* matrices = nullptr) const;

  /// Distinct programs currently held (fused + executable).
  [[nodiscard]] std::size_t entries() const;

 private:
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const CompiledProgram>>
      fused_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const CompiledExecutable>>
      executables_;
  mutable std::vector<std::uint64_t> fused_order_;        ///< FIFO eviction
  mutable std::vector<std::uint64_t> executables_order_;  ///< FIFO eviction
};

}  // namespace qucp
