#pragma once
// Program-level gate fusion and per-program kernel compilation.
//
// A CompiledProgram walks a Circuit once and fuses maximal runs of
// adjacent gates into single dense kernels:
//
//   - consecutive 1q gates on the same qubit collapse into one 2x2, so a
//     rotation ladder pays one kernel sweep instead of one per gate;
//   - 1q gates adjacent to a 2q gate on a shared qubit are absorbed into
//     that gate's 4x4, as are consecutive 2q gates on the same qubit pair
//     (in either operand order).
//
// The existing compiled-gate classification (kern::compile_unitary:
// diag / antidiag / CX / SWAP / generalized-permutation / dense) is then
// re-applied to each fused product, so fusion that lands back on a
// structured matrix (e.g. an RZ ladder fusing to a diagonal) still takes
// the cheap kernel path. Fusion never reorders across barriers or
// measurements: a barrier or measure closes every block it touches, and
// blocks only absorb gates on their own qubits, so any two non-commuting
// ops keep their program order. Fused replay therefore agrees with
// gate-by-gate replay to simulation accuracy (pinned at <= 1e-10 by
// tests/test_fusion.cpp).
//
// Fusion itself is split in two. A FusionPlan is the *structural* half:
// which gates land in which blocks, the exact order of matrix products,
// and what gets emitted — everything the fusion state machine decides,
// none of which depends on parameter values (adjacency and operand
// overlap are pure structure). CompiledProgram::materialize() replays a
// plan against a concrete circuit's gate matrices, performing the same
// multiplications in the same order the from-scratch path would, so the
// result is bit-identical to CompiledProgram::compile() — which is now
// literally materialize(FusionPlan::build(c), c). Plans are cached per
// structural_fingerprint in CompiledProgramCache, so a parameter sweep
// over one ansatz re-runs only the cheap matrix products per iteration,
// never the fusion walk.
//
// CompiledExecutable is the unfused sibling for the noisy executor: the
// CX-lowered circuit plus per-op precompiled kernels (including the
// superket forms DensityMatrix needs), replayed gate by gate so noise
// channels interleave exactly as before — arithmetic identical to the
// uncompiled path bit for bit. CompiledProgramCache memoizes both per
// circuit fingerprint and lives on a Backend next to GateMatrixCache and
// CandidateIndex.

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "sim/counts.hpp"
#include "sim/kernels.hpp"

namespace qucp {

class GateMatrixCache;  // circuit/gate_cache.hpp

/// One fused (or per-op compiled) unitary with every kernel form the
/// simulators need, precompiled:
///   - `sv`: the k-qubit unitary itself (statevector replay; for k == 2 it
///     doubles as the density row pass over the superket's row bits);
///   - `dm`: the superket companion for density replay — k == 1: the
///     compiled 4x4 U (x) conj(U) gate, k == 2: the compiled conj(U)
///     column pass.
struct FusedOp {
  kern::CompiledUnitary sv;
  kern::CompiledUnitary dm;
  int q[2] = {-1, -1};  ///< qubit operands; q[0] = high local bit for k == 2

  [[nodiscard]] int k() const noexcept { return sv.k; }
  /// False for the placeholder entries a CompiledExecutable keeps at
  /// barrier/measure positions.
  [[nodiscard]] bool is_unitary() const noexcept { return q[0] >= 0; }
};

/// The structural half of fusion: the block layout and the exact ordered
/// sequence of matrix operations the fusion state machine performs on a
/// circuit of a given structure. Built once per structural_fingerprint
/// and replayed against any circuit sharing that structure (same kinds,
/// operands, order — parameter values free).
class FusionPlan {
 public:
  enum class Op : std::uint8_t {
    kNew1,      ///< open 1q block `block` from gate `gate`'s 2x2
    kMul1,      ///< block.m = gate * block.m (2x2)
    kLift1Mul,  ///< block.m = lift1(gate, flag=high) * block.m (4x4)
    kNew2,      ///< open 2q block `block` from gate `gate`'s 4x4
    kMul2,      ///< block.m = gate * block.m (4x4; flag = operand-swapped)
    kAbsorb,    ///< block.m = block.m * lift1(block `src`, flag=high)
    kEmit,      ///< classify + emit block `block` as the next FusedOp
  };
  struct Step {
    Op op = Op::kEmit;
    std::uint32_t block = 0;  ///< target block id
    std::uint32_t gate = 0;   ///< source op index (matrix-consuming steps)
    std::uint32_t src = 0;    ///< kAbsorb: absorbed 1q block id
    bool flag = false;        ///< high-operand lift / operand-swapped mul
  };
  struct BlockInfo {
    std::uint8_t k = 0;
    int q0 = -1;
    int q1 = -1;
  };

  /// Run the fusion state machine over `circuit`, recording structure only.
  [[nodiscard]] static FusionPlan build(const Circuit& circuit);

  [[nodiscard]] const std::vector<Step>& steps() const noexcept {
    return steps_;
  }
  [[nodiscard]] const std::vector<BlockInfo>& blocks() const noexcept {
    return blocks_;
  }
  [[nodiscard]] const std::vector<std::pair<int, int>>& measurements()
      const noexcept {
    return measurements_;
  }
  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] int num_clbits() const noexcept { return num_clbits_; }
  [[nodiscard]] std::size_t source_gate_count() const noexcept {
    return source_gates_;
  }
  /// Op count of the circuit the plan was built from (materialize guard).
  [[nodiscard]] std::size_t source_size() const noexcept {
    return source_size_;
  }
  /// FusedOps an emit pass produces (kEmit step count).
  [[nodiscard]] std::size_t emitted() const noexcept { return emitted_; }

 private:
  int num_qubits_ = 0;
  int num_clbits_ = 0;
  std::vector<Step> steps_;
  std::vector<BlockInfo> blocks_;
  std::vector<std::pair<int, int>> measurements_;
  std::size_t source_gates_ = 0;
  std::size_t source_size_ = 0;
  std::size_t emitted_ = 0;
};

/// A circuit compiled to a fused kernel stream plus its measurement map.
class CompiledProgram {
 public:
  /// Fuse and compile `circuit`. Accepts any simulable circuit (unitary
  /// gates, barriers, measurements). Equivalent to (and implemented as)
  /// materialize(FusionPlan::build(circuit), circuit).
  [[nodiscard]] static CompiledProgram compile(const Circuit& circuit);

  /// Replay `plan` against `circuit`'s gate matrices. `circuit` must have
  /// the structure the plan was built from (same structural_fingerprint);
  /// throws std::invalid_argument on an op-count/qubit-count mismatch.
  /// Bit-identical to compile(circuit): same products, same order.
  [[nodiscard]] static CompiledProgram materialize(const FusionPlan& plan,
                                                   const Circuit& circuit);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] int num_clbits() const noexcept { return num_clbits_; }
  /// Fused unitary stream, in a program-order-compatible interleaving.
  [[nodiscard]] const std::vector<FusedOp>& ops() const noexcept {
    return ops_;
  }
  /// (qubit, clbit) pairs in program order.
  [[nodiscard]] const std::vector<std::pair<int, int>>& measurements()
      const noexcept {
    return measurements_;
  }
  /// Unitary gates in the source circuit (what fusion started from).
  [[nodiscard]] std::size_t source_gate_count() const noexcept {
    return source_gates_;
  }

 private:
  int num_qubits_ = 0;
  int num_clbits_ = 0;
  std::vector<FusedOp> ops_;
  std::vector<std::pair<int, int>> measurements_;
  std::size_t source_gates_ = 0;
};

/// A physical program compiled for the noisy executor: lowered to the CX
/// basis once, with per-op kernels precompiled and aligned 1:1 with
/// `lowered.ops()` (non-unitary positions hold placeholder entries).
/// Replay is gate by gate — no fusion — so interleaved noise channels see
/// exactly the state they saw before compilation existed. The fused
/// compilation of the compacted lowered circuit rides along for the
/// executor's noiseless fast path (gate_noise and idle_noise both off),
/// so a cached executable answers both replay styles without per-call
/// recompaction.
class CompiledExecutable {
 public:
  [[nodiscard]] static CompiledExecutable compile(
      const Circuit& physical, GateMatrixCache* matrices = nullptr);

  [[nodiscard]] const Circuit& lowered() const noexcept { return lowered_; }
  [[nodiscard]] const std::vector<FusedOp>& channels() const noexcept {
    return channels_;
  }
  /// Fused kernel stream of lowered().compacted() — active qubit i of the
  /// lowered circuit is local bit i, the executor's partition mapping.
  [[nodiscard]] const CompiledProgram& fused_compacted() const noexcept {
    return *fused_compacted_;
  }

 private:
  friend class CompiledProgramCache;  // assembles executables against its
                                      // plan-aware fused() path
  Circuit lowered_;
  std::vector<FusedOp> channels_;
  std::shared_ptr<const CompiledProgram> fused_compacted_;
};

/// Per-op (unfused) kernel compilation for an arbitrary circuit: entry i
/// corresponds to circuit.ops()[i]; barrier/measure positions are
/// placeholders with is_unitary() == false.
[[nodiscard]] std::vector<FusedOp> compile_ops(const Circuit& circuit,
                                               GateMatrixCache* matrices =
                                                   nullptr);

/// Exact outcome distribution of a compiled (fused) program under ideal
/// execution — the cached-program fast path of
/// ideal_distribution(const Circuit&).
[[nodiscard]] Distribution ideal_distribution(const CompiledProgram& program);

/// Thread-safe per-Backend memo of compiled programs, keyed by circuit
/// fingerprint like the transpile cache. Entries are returned as
/// shared_ptr so FIFO eviction can never invalidate a program a simulation
/// is replaying. Bounded: an endless stream of distinct circuits evicts
/// oldest-first instead of growing without limit.
class CompiledProgramCache {
 public:
  static constexpr std::size_t kMaxEntries = 1 << 10;

  /// `parametric` gates the structural fusion-plan cache: when false,
  /// exact-fingerprint misses compile from scratch (full fusion walk per
  /// circuit) — the pre-parametric behavior, kept selectable so the knob
  /// that disables template transpilation disables plan reuse too.
  explicit CompiledProgramCache(bool parametric = true) noexcept
      : parametric_(parametric) {}

  /// Fused compilation of `circuit` (ideal pipeline).
  [[nodiscard]] std::shared_ptr<const CompiledProgram> fused(
      const Circuit& circuit) const;

  /// Lowered + per-op compilation of `physical` (noisy pipeline).
  /// `matrices` (optional) memoizes the gate unitaries built during
  /// compilation.
  [[nodiscard]] std::shared_ptr<const CompiledExecutable> executable(
      const Circuit& physical, GateMatrixCache* matrices = nullptr) const;

  /// Fusion plan for `circuit`'s structure, memoized per
  /// structural_fingerprint. Exact-fingerprint misses in fused() and
  /// executable() go through here, so a parameter sweep over one ansatz
  /// runs the fusion walk once and only re-materializes matrices.
  [[nodiscard]] std::shared_ptr<const FusionPlan> plan(
      const Circuit& circuit) const;

  /// Distinct programs currently held (fused + executable).
  [[nodiscard]] std::size_t entries() const;

  /// Fusion walks actually performed / avoided via the plan cache.
  [[nodiscard]] std::uint64_t plan_builds() const;
  [[nodiscard]] std::uint64_t plan_hits() const;

 private:
  /// Plan lookup with the structural key already in hand (fused() computes
  /// both fingerprints in one circuit walk).
  [[nodiscard]] std::shared_ptr<const FusionPlan> plan_for(
      std::uint64_t structural_key, const Circuit& circuit) const;

  bool parametric_ = true;
  mutable std::mutex mutex_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const CompiledProgram>>
      fused_;
  mutable std::unordered_map<std::uint64_t,
                             std::shared_ptr<const CompiledExecutable>>
      executables_;
  mutable std::unordered_map<std::uint64_t, std::shared_ptr<const FusionPlan>>
      plans_;  ///< keyed by structural_fingerprint
  mutable std::deque<std::uint64_t> fused_order_;        ///< FIFO eviction
  mutable std::deque<std::uint64_t> executables_order_;  ///< FIFO eviction
  mutable std::deque<std::uint64_t> plans_order_;        ///< FIFO eviction
  mutable std::uint64_t plan_builds_ = 0;
  mutable std::uint64_t plan_hits_ = 0;
};

}  // namespace qucp
