#include "sim/executor.hpp"

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>

#include "circuit/decompose.hpp"
#include "circuit/gate_cache.hpp"
#include "sim/density.hpp"
#include "sim/fusion.hpp"
#include "sim/kernels.hpp"
#include "sim/noise.hpp"

namespace qucp {

namespace {

struct CxEvent {
  std::size_t program = 0;
  std::size_t op = 0;       // op index in the lowered program circuit
  int edge = -1;            // device edge id
  double start_ns = 0.0;
  double end_ns = 0.0;
  double gamma = 1.0;       // accumulated crosstalk multiplier
};

}  // namespace

DerivedNoise DerivedNoise::from(const Calibration& cal) {
  DerivedNoise d;
  d.cx_depol.reserve(cal.cx_error.size());
  for (double err : cal.cx_error) d.cx_depol.push_back(depolarizing_param(err));
  d.q1_depol.reserve(cal.q1_error.size());
  for (double err : cal.q1_error) d.q1_depol.push_back(depolarizing_param(err));
  return d;
}

ParallelRunReport execute_parallel(const Device& device,
                                   std::vector<PhysicalProgram> programs,
                                   const ExecOptions& options,
                                   GateMatrixCache* gate_cache,
                                   const CompiledProgramCache* program_cache,
                                   const DerivedNoise* derived) {
  // Cap kernel-level threading for the whole run (scoped to this thread).
  const kern::ParallelThreadsGuard thread_cap(options.kernel_threads);
  // Callers without a long-lived cache still deduplicate within the run.
  GateMatrixCache local_cache;
  GateMatrixCache& matrices = gate_cache != nullptr ? *gate_cache : local_cache;
  if (programs.empty()) {
    throw std::invalid_argument("execute_parallel: no programs");
  }
  if (options.shots <= 0) {
    throw std::invalid_argument("execute_parallel: shots <= 0");
  }
  const Topology& topo = device.topology();
  const Calibration& cal = device.calibration();

  // Lower to CX basis and compile per-op kernels — through the Backend's
  // persistent cache when given, else per call — then validate qubit usage
  // and coupling against this device.
  std::vector<std::shared_ptr<const CompiledExecutable>> compiled;
  compiled.reserve(programs.size());
  std::set<int> all_used;
  for (const PhysicalProgram& prog : programs) {
    if (prog.circuit.num_qubits() > device.num_qubits()) {
      throw std::invalid_argument("execute_parallel: program wider than device");
    }
    std::shared_ptr<const CompiledExecutable> exe =
        program_cache != nullptr
            ? program_cache->executable(prog.circuit, &matrices)
            : std::make_shared<const CompiledExecutable>(
                  CompiledExecutable::compile(prog.circuit, &matrices));
    for (const Gate& g : exe->lowered().ops()) {
      if (is_two_qubit_gate(g.kind) &&
          !topo.adjacent(g.qubits[0], g.qubits[1])) {
        throw std::invalid_argument(
            "execute_parallel: two-qubit gate on uncoupled qubits in " +
            prog.name);
      }
    }
    for (int q : exe->lowered().active_qubits()) {
      if (!all_used.insert(q).second) {
        throw std::invalid_argument(
            "execute_parallel: programs overlap on qubit " +
            std::to_string(q));
      }
    }
    compiled.push_back(std::move(exe));
  }

  // Schedule each program; align ALAP schedules to the common end time.
  std::vector<Schedule> schedules;
  double global_makespan = 0.0;
  for (const auto& exe : compiled) {
    schedules.push_back(
        schedule_circuit(exe->lowered(), device, options.schedule));
    global_makespan = std::max(global_makespan, schedules.back().makespan_ns);
  }
  if (options.schedule == SchedulePolicy::ALAP) {
    for (Schedule& s : schedules) {
      const double shift = global_makespan - s.makespan_ns;
      for (ScheduledOp& op : s.ops) {
        op.start_ns += shift;
        op.end_ns += shift;
      }
      s.makespan_ns = global_makespan;
    }
  }

  // Collect CX events and amplify overlapping one-hop pairs.
  auto collect_events = [&] {
    std::vector<CxEvent> events;
    for (std::size_t p = 0; p < compiled.size(); ++p) {
      const Circuit& low = compiled[p]->lowered();
      for (std::size_t i = 0; i < low.size(); ++i) {
        const Gate& g = low.ops()[i];
        if (g.kind != GateKind::CX) continue;
        const auto edge = topo.edge_index(g.qubits[0], g.qubits[1]);
        events.push_back({p, i, *edge, schedules[p].ops[i].start_ns,
                          schedules[p].ops[i].end_ns, 1.0});
      }
    }
    return events;
  };
  std::vector<CxEvent> events = collect_events();

  if (options.serialize_crosstalk) {
    // Program-level serialization: shift the later program past the
    // earlier one whenever a (hinted) one-hop CX pair overlaps. Coarse but
    // sound — overlap strictly decreases each round.
    //
    // Everything about a pair except its time overlap (programs, edges,
    // one-hop distance, hints) is shift-invariant, so the O(E^2) pair scan
    // runs once; each round then only rechecks overlap on the precomputed
    // eligible pairs. A shift moves just the victim program's events, so
    // the next scan resumes from the victim's earlier pairs plus the tail
    // at/after the shift position instead of restarting at index 0 —
    // pairs before that point without a victim event were already clean
    // and cannot have changed.
    auto statically_eligible = [&](const CxEvent& a, const CxEvent& b) {
      if (a.program == b.program || a.edge == b.edge) return false;
      const Edge& ea = topo.edges()[a.edge];
      const Edge& eb = topo.edges()[b.edge];
      if (ea.shares_qubit(eb)) return false;
      const int dist = std::min(
          {topo.distance(ea.a, eb.a), topo.distance(ea.a, eb.b),
           topo.distance(ea.b, eb.a), topo.distance(ea.b, eb.b)});
      if (dist != 1) return false;
      return !options.serialize_hints.has_value() ||
             options.serialize_hints->gamma(a.edge, b.edge) > 1.0;
    };
    struct EligiblePair {
      std::uint32_t a = 0;
      std::uint32_t b = 0;
    };
    std::vector<EligiblePair> eligible;
    for (std::size_t i = 0; i < events.size(); ++i) {
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        if (statically_eligible(events[i], events[j])) {
          eligible.push_back({static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j)});
        }
      }
    }
    // Eligible-pair positions touching each program, ascending.
    std::vector<std::vector<std::uint32_t>> pairs_of(programs.size());
    for (std::size_t t = 0; t < eligible.size(); ++t) {
      pairs_of[events[eligible[t].a].program].push_back(
          static_cast<std::uint32_t>(t));
      pairs_of[events[eligible[t].b].program].push_back(
          static_cast<std::uint32_t>(t));
    }
    auto overlapping = [&](const EligiblePair& pr) {
      const CxEvent& a = events[pr.a];
      const CxEvent& b = events[pr.b];
      return intervals_overlap(a.start_ns, a.end_ns, b.start_ns, b.end_ns);
    };
    const std::size_t kNoVictim = programs.size();
    std::size_t resume = 0;
    std::size_t last_victim = kNoVictim;
    for (int round = 0; round < 100; ++round) {
      std::size_t found = eligible.size();
      if (last_victim != kNoVictim) {
        for (std::uint32_t t : pairs_of[last_victim]) {
          if (t >= resume) break;
          if (overlapping(eligible[t])) {
            found = t;
            break;
          }
        }
      }
      if (found == eligible.size()) {
        for (std::size_t t = resume; t < eligible.size(); ++t) {
          if (overlapping(eligible[t])) {
            found = t;
            break;
          }
        }
      }
      if (found == eligible.size()) break;
      const CxEvent& a = events[eligible[found].a];
      const CxEvent& b = events[eligible[found].b];
      // Delay the program whose conflicting gate starts later.
      const bool delay_b = b.start_ns >= a.start_ns;
      const std::size_t victim = delay_b ? b.program : a.program;
      const double delta = delay_b ? a.end_ns - b.start_ns
                                   : b.end_ns - a.start_ns;
      for (ScheduledOp& op : schedules[victim].ops) {
        op.start_ns += delta;
        op.end_ns += delta;
      }
      schedules[victim].makespan_ns += delta;
      for (CxEvent& ev : events) {
        if (ev.program == victim) {
          ev.start_ns += delta;
          ev.end_ns += delta;
        }
      }
      resume = found;
      last_victim = victim;
    }
    global_makespan = 0.0;
    for (const Schedule& s : schedules) {
      global_makespan = std::max(global_makespan, s.makespan_ns);
    }
  }
  int crosstalk_events = 0;
  double max_gamma = 1.0;
  const CrosstalkModel& xtalk = device.crosstalk_ground_truth();
  if (options.crosstalk_noise && !xtalk.empty()) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        CxEvent& a = events[i];
        CxEvent& b = events[j];
        if (a.edge == b.edge) continue;
        if (!intervals_overlap(a.start_ns, a.end_ns, b.start_ns, b.end_ns)) {
          continue;
        }
        const double g = xtalk.gamma(a.edge, b.edge);
        if (g > 1.0) {
          // Conditional-error semantics (Murali et al.): the CX error in
          // the presence of any conflicting neighbor is gamma * base, so
          // concurrent partners take the max rather than compounding.
          a.gamma = std::max(a.gamma, g);
          b.gamma = std::max(b.gamma, g);
          ++crosstalk_events;
          max_gamma = std::max(max_gamma, g);
        }
      }
    }
  }
  // Index the amplified gamma per (program, op): flat per-op vectors.
  std::vector<std::vector<double>> gamma_of(programs.size());
  for (std::size_t p = 0; p < compiled.size(); ++p) {
    gamma_of[p].assign(compiled[p]->lowered().size(), 1.0);
  }
  for (const CxEvent& ev : events) gamma_of[ev.program][ev.op] = ev.gamma;

  // Simulate each program's partition.
  Rng rng(options.seed);
  ParallelRunReport report;
  report.makespan_ns = global_makespan;
  report.crosstalk_events = crosstalk_events;
  report.max_gamma_applied = max_gamma;
  report.qubits_used = static_cast<int>(all_used.size());
  report.throughput =
      static_cast<double>(all_used.size()) / device.num_qubits();

  // Flat device-indexed bookkeeping, reused across programs.
  std::vector<int> local_of(device.num_qubits(), -1);
  std::vector<double> busy_until(device.num_qubits(), 0.0);

  // No gate channels and no idle channels means the evolution is purely
  // unitary (crosstalk only amplifies gate depolarizing, and readout error
  // applies to the measurement probabilities afterwards), so each program
  // can replay its *fused* kernel stream instead of stepping gate by gate
  // — ROADMAP item (f), ~2x on noiseless density runs. Agreement with the
  // per-op walk is pinned at <= 1e-10 by tests/test_fusion.cpp.
  const bool fused_noiseless =
      options.fuse_noiseless && !options.gate_noise && !options.idle_noise;

  for (std::size_t p = 0; p < compiled.size(); ++p) {
    const Circuit& circ = compiled[p]->lowered();
    const std::vector<FusedOp>& channels = compiled[p]->channels();
    const std::vector<int> active = circ.active_qubits();
    for (std::size_t i = 0; i < active.size(); ++i) {
      local_of[active[i]] = static_cast<int>(i);
      busy_until[active[i]] = 0.0;
    }
    DensityMatrix dm(static_cast<int>(active.size()));

    std::vector<std::pair<int, int>> measurements;  // (device qubit, clbit)

    if (fused_noiseless) {
      // The executable carries the fused compilation of its compacted
      // lowered circuit (active qubit i = local bit i — exactly the
      // local_of mapping the measurement packing below relies on), so a
      // cached program replays with zero per-call compilation work.
      dm.run(compiled[p]->fused_compacted());
      for (const Gate& g : circ.ops()) {
        if (g.kind == GateKind::Measure) {
          measurements.emplace_back(g.qubits[0], g.clbit);
        }
      }
    } else {
      // Process ops in time order (stable on op index for ties).
      std::vector<std::size_t> order(circ.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t x, std::size_t y) {
                         return schedules[p].ops[x].start_ns <
                                schedules[p].ops[y].start_ns;
                       });

      auto apply_idle = [&](int q, double until_ns) {
        if (!options.idle_noise) return;
        const double gap = until_ns - busy_until[q];
        if (gap > 1e-9) {
          dm.apply_relaxation(local_of[q], gap, cal.t1_us[q], cal.t2_us[q]);
        }
      };

      int local[4];
      for (std::size_t idx : order) {
        const Gate& g = circ.ops()[idx];
        const ScheduledOp& so = schedules[p].ops[idx];
        if (g.kind == GateKind::Barrier) continue;
        for (int q : g.qubits) {
          apply_idle(q, so.start_ns);
          busy_until[q] = so.end_ns;
        }
        if (g.kind == GateKind::Measure) {
          measurements.emplace_back(g.qubits[0], g.clbit);
          continue;
        }
        const std::size_t width = g.qubits.size();
        for (std::size_t i = 0; i < width; ++i) {
          local[i] = local_of[g.qubits[i]];
        }
        const std::span<const int> local_span(local, width);
        dm.apply_compiled(channels[idx], local_span);
        if (!options.gate_noise) continue;
        if (g.kind == GateKind::CX) {
          const double gamma = gamma_of[p][idx];
          const int edge = *topo.edge_index(g.qubits[0], g.qubits[1]);
          // x * 1.0 == x bitwise for every finite error rate, so the
          // epoch-precomputed parameter is exact for unamplified gates.
          const double param =
              (derived != nullptr && gamma == 1.0)
                  ? derived->cx_depol[static_cast<std::size_t>(edge)]
                  : depolarizing_param(cal.cx_error[edge] * gamma);
          dm.apply_depolarizing(param, local_span);
        } else {
          const double param =
              derived != nullptr
                  ? derived->q1_depol[static_cast<std::size_t>(g.qubits[0])]
                  : depolarizing_param(cal.q1_error[g.qubits[0]]);
          dm.apply_depolarizing(param, local_span);
        }
      }
    }

    if (measurements.empty()) {
      throw std::invalid_argument("execute_parallel: program '" +
                                  programs[p].name +
                                  "' has no measurements");
    }
    // Sort by clbit so bit j of the packed index is measurement j.
    std::sort(measurements.begin(), measurements.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    const std::size_t m = measurements.size();
    std::vector<double> meas_probs(std::size_t{1} << m, 0.0);
    const std::vector<double> local_probs = dm.probabilities();
    for (std::size_t basis = 0; basis < local_probs.size(); ++basis) {
      if (local_probs[basis] < 1e-15) continue;
      std::size_t packed = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const int lq = local_of.at(measurements[j].first);
        if ((basis >> lq) & 1U) packed |= std::size_t{1} << j;
      }
      meas_probs[packed] += local_probs[basis];
    }
    if (options.readout_noise) {
      std::vector<double> flips;
      flips.reserve(m);
      for (const auto& [q, c] : measurements) {
        flips.push_back(cal.readout_error[q]);
      }
      apply_readout_flips(meas_probs, flips);
    }
    int num_bits = 0;
    for (const auto& [q, c] : measurements) num_bits = std::max(num_bits, c + 1);
    std::vector<Distribution::Entry> dist_entries;
    for (std::size_t packed = 0; packed < meas_probs.size(); ++packed) {
      if (meas_probs[packed] < 1e-15) continue;
      std::uint64_t outcome = 0;
      for (std::size_t j = 0; j < m; ++j) {
        if ((packed >> j) & 1U) {
          outcome |= std::uint64_t{1} << measurements[j].second;
        }
      }
      dist_entries.emplace_back(outcome, meas_probs[packed]);
    }
    ProgramOutcome outcome;
    outcome.name = programs[p].name;
    outcome.distribution = Distribution(num_bits, std::move(dist_entries));
    Rng prog_rng = rng.derive(programs[p].name + "#" + std::to_string(p));
    outcome.counts = sample_counts(outcome.distribution, options.shots,
                                   prog_rng);
    report.programs.push_back(std::move(outcome));
  }
  return report;
}

ProgramOutcome execute_single(const Device& device,
                              const Circuit& physical_circuit,
                              const ExecOptions& options) {
  std::vector<PhysicalProgram> programs;
  programs.push_back({physical_circuit, physical_circuit.name().empty()
                                            ? "program"
                                            : physical_circuit.name()});
  ParallelRunReport report =
      execute_parallel(device, std::move(programs), options);
  return std::move(report.programs.front());
}

}  // namespace qucp
