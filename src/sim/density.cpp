#include "sim/density.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "sim/fusion.hpp"
#include "sim/kernels.hpp"

namespace qucp {

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), dim_(std::size_t{1} << num_qubits) {
  if (num_qubits < 0 || num_qubits > 12) {
    throw std::invalid_argument("DensityMatrix: unsupported qubit count");
  }
  rho_.assign(dim_ * dim_, cx{0.0, 0.0});
  rho_[0] = 1.0;
}

void DensityMatrix::check_qubits(std::span<const int> qubits) const {
  for (int q : qubits) {
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("DensityMatrix: qubit out of range");
    }
  }
}

void DensityMatrix::transform_two_sided(const Matrix& u,
                                        std::span<const int> qubits) {
  const int k = static_cast<int>(qubits.size());
  const int n2 = 2 * num_qubits_;
  const std::span<cx> amps(rho_);
  if (k == 1) {
    // Single fused pass: U (x) conj(U) is a 4x4 superket gate on bits
    // (q + n, q) — one sweep over rho instead of a row and a column pass.
    const std::span<const cx> d = u.data();
    cx ku[16];
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 2; ++c) {
        const cx scale = d[static_cast<std::size_t>(2 * r + c)];
        for (int rr = 0; rr < 2; ++rr) {
          for (int cc = 0; cc < 2; ++cc) {
            ku[(2 * r + rr) * 4 + (2 * c + cc)] =
                scale * std::conj(d[static_cast<std::size_t>(2 * rr + cc)]);
          }
        }
      }
    }
    kern::apply2(amps, n2, qubits[0] + num_qubits_, qubits[0], ku);
    return;
  }
  // Row pass: U on the row bits (superket positions q + n).
  int row_targets[16];
  for (int j = 0; j < k; ++j) row_targets[j] = qubits[j] + num_qubits_;
  kern::apply_unitary(amps, n2, std::span<const int>(row_targets, qubits.size()),
                      u.data(), /*conjugate=*/false, kernel_scratch_);
  // Column pass: conj(U) on the column bits (superket positions q).
  kern::apply_unitary(amps, n2, qubits, u.data(), /*conjugate=*/true,
                      kernel_scratch_);
}

void DensityMatrix::apply_unitary(const Matrix& u,
                                  std::span<const int> qubits) {
  check_qubits(qubits);
  const std::size_t ldim = std::size_t{1} << qubits.size();
  if (u.rows() != ldim || u.cols() != ldim) {
    throw std::invalid_argument("DensityMatrix: matrix/operand mismatch");
  }
  if (qubits.empty()) {
    // 1x1 "unitary": a global scalar u rho conj(u).
    const cx s = u(0, 0) * std::conj(u(0, 0));
    for (cx& v : rho_) v *= s;
    return;
  }
  transform_two_sided(u, qubits);
}

void DensityMatrix::apply_compiled(const FusedOp& op,
                                   std::span<const int> qubits) {
  check_qubits(qubits);
  if (static_cast<int>(qubits.size()) != op.k()) {
    throw std::invalid_argument("DensityMatrix: matrix/operand mismatch");
  }
  const int n2 = 2 * num_qubits_;
  const std::span<cx> amps(rho_);
  if (op.k() == 1) {
    // One fused superket pass: op.dm is the compiled U (x) conj(U) on bits
    // (q + n, q), exactly what transform_two_sided builds per call.
    const int targets[2] = {qubits[0] + num_qubits_, qubits[0]};
    kern::apply_compiled(amps, n2, targets, op.dm);
    return;
  }
  // Row pass (U on the row bits), then column pass (conj(U) on the column
  // bits) — the same two sweeps as the uncompiled path.
  const int row[2] = {qubits[0] + num_qubits_, qubits[1] + num_qubits_};
  kern::apply_compiled(amps, n2, row, op.sv);
  const int col[2] = {qubits[0], qubits[1]};
  kern::apply_compiled(amps, n2, col, op.dm);
}

void DensityMatrix::run(const CompiledProgram& program) {
  if (program.num_qubits() != num_qubits_) {
    throw std::invalid_argument("DensityMatrix: qubit count mismatch");
  }
  for (const FusedOp& op : program.ops()) {
    apply_compiled(op, std::span<const int>(op.q, op.k()));
  }
}

void DensityMatrix::apply_depolarizing(double p, std::span<const int> qubits) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("DensityMatrix: depolarizing p outside [0,1]");
  }
  if (p == 0.0) return;
  check_qubits(qubits);
  const int k = static_cast<int>(qubits.size());
  const std::size_t ldim = std::size_t{1} << k;
  const double pauli_dim = std::pow(4.0, k);
  // Uniform-Pauli channel via the twirl identity:
  //   sum_{all P} P rho P = 4^m * ptrace(rho) (x) I/2^m
  // so rho' = c1 * rho + c2 * [ptrace(rho) (x) I/2^m] with:
  const double c2 = p * pauli_dim / (pauli_dim - 1.0);
  const double c1 = 1.0 - c2;
  const double inv_ldim = 1.0 / static_cast<double>(ldim);

  // Fused single-pass updates for the only sizes the executor emits: each
  // 2^k x 2^k local block needs only its own elements (trace of the local
  // diagonal, uniform contraction, refill), so no scratch or extra sweeps.
  if (k == 1) {
    const int pc = qubits[0];
    const int pr = qubits[0] + num_qubits_;
    const std::size_t mc = std::size_t{1} << pc;
    const std::size_t mr = std::size_t{1} << pr;
    const std::size_t quads = (dim_ * dim_) >> 2;
    cx* rho = rho_.data();
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
    if (kern::native_kernels_active()) {
      const double fill_scale = c2 * inv_ldim;
      kern::parallel_for(quads, [&](std::size_t begin, std::size_t end) {
        kern::detail::depol1_range_avx2(rho, begin, end, pc, pr, c1,
                                        fill_scale);
      });
      return;
    }
#endif
    kern::parallel_for(quads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t t = begin; t < end; ++t) {
        const std::size_t base =
            kern::insert_bit(kern::insert_bit(t, pc), pr);
        const cx p00 = rho[base];
        const cx p11 = rho[base | mr | mc];
        const cx fill = c2 * (p00 + p11) * inv_ldim;
        rho[base] = c1 * p00 + fill;
        rho[base | mc] *= c1;
        rho[base | mr] *= c1;
        rho[base | mr | mc] = c1 * p11 + fill;
      }
    });
    return;
  }
  if (k == 2) {
    const int n = num_qubits_;
    // Local value s: qubits[0] is the high bit (matching with_local).
    std::size_t row_off[4];
    std::size_t col_off[4];
    for (std::size_t s = 0; s < 4; ++s) {
      col_off[s] = ((s >> 1) ? (std::size_t{1} << qubits[0]) : 0) |
                   ((s & 1) ? (std::size_t{1} << qubits[1]) : 0);
      row_off[s] = col_off[s] << n;
    }
    int positions[4] = {qubits[0], qubits[1], qubits[0] + n, qubits[1] + n};
    std::sort(positions, positions + 4);
    const std::size_t blocks = (dim_ * dim_) >> 4;
    cx* rho = rho_.data();
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
    if (kern::native_kernels_active()) {
      const double fill_scale = c2 * inv_ldim;
      kern::parallel_for(blocks, [&](std::size_t begin, std::size_t end) {
        kern::detail::depol2_range_avx2(rho, begin, end, positions, row_off,
                                        col_off, c1, fill_scale);
      });
      return;
    }
#endif
    kern::parallel_for(blocks, [&](std::size_t begin, std::size_t end) {
      for (std::size_t t = begin; t < end; ++t) {
        std::size_t base = t;
        for (int j = 0; j < 4; ++j) base = kern::insert_bit(base, positions[j]);
        cx traced{0.0, 0.0};
        for (std::size_t s = 0; s < 4; ++s) {
          traced += rho[base + row_off[s] + col_off[s]];
        }
        const cx fill = c2 * traced * inv_ldim;
        for (std::size_t sr = 0; sr < 4; ++sr) {
          for (std::size_t sc = 0; sc < 4; ++sc) {
            cx& v = rho[base + row_off[sr] + col_off[sc]];
            v *= c1;
            if (sr == sc) v += fill;
          }
        }
      }
    });
    return;
  }

  // Superket positions of the 2k target bits, ascending, for base
  // enumeration; per-local-value offsets onto the local diagonal (s, s).
  int positions[32];
  for (int j = 0; j < k; ++j) positions[j] = qubits[j];
  std::sort(positions, positions + k);
  for (int j = 0; j < k; ++j) positions[k + j] = positions[j] + num_qubits_;

  offset_scratch_.assign(ldim, 0);
  for (std::size_t s = 0; s < ldim; ++s) {
    std::size_t off = 0;
    for (int j = 0; j < k; ++j) {
      if ((s >> (k - 1 - j)) & 1U) {
        off |= (std::size_t{1} << qubits[j]) |
               (std::size_t{1} << (qubits[j] + num_qubits_));
      }
    }
    offset_scratch_[s] = off;
  }

  const std::size_t bases = (dim_ * dim_) >> (2 * k);
  auto expand = [&](std::size_t t) {
    for (int j = 0; j < 2 * k; ++j) t = kern::insert_bit(t, positions[j]);
    return t;
  };

  // Pass 1: partial trace of every (row-base, col-base) block, taken from
  // the pre-scaled state.
  trace_scratch_.assign(bases, cx{0.0, 0.0});
  cx* rho = rho_.data();
  cx* traces = trace_scratch_.data();
  const std::size_t* offs = offset_scratch_.data();
  kern::parallel_for(bases, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t base = expand(t);
      cx acc{0.0, 0.0};
      for (std::size_t s = 0; s < ldim; ++s) acc += rho[base + offs[s]];
      traces[t] = acc;
    }
  });
  // Pass 2: uniform contraction toward zero.
  kern::parallel_for(rho_.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) rho[i] *= c1;
  });
  // Pass 3: refill the local diagonal with the traced mass.
  kern::parallel_for(bases, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t base = expand(t);
      const cx fill = c2 * traces[t] * inv_ldim;
      for (std::size_t s = 0; s < ldim; ++s) rho[base + offs[s]] += fill;
    }
  });
}

void DensityMatrix::apply_kraus(std::span<const Matrix> kraus,
                                std::span<const int> qubits, bool validate) {
  check_qubits(qubits);
  if (kraus.empty()) {
    throw std::invalid_argument("DensityMatrix: empty Kraus set");
  }
  const std::size_t ldim = std::size_t{1} << qubits.size();
  for (const Matrix& k : kraus) {
    if (k.rows() != ldim || k.cols() != ldim) {
      throw std::invalid_argument("DensityMatrix: matrix/operand mismatch");
    }
  }
  if (validate) {
    Matrix completeness(ldim, ldim);
    for (const Matrix& k : kraus) completeness += k.dagger() * k;
    if (!completeness.approx_equal(Matrix::identity(ldim), 1e-8)) {
      throw std::invalid_argument(
          "DensityMatrix: Kraus set not trace-preserving");
    }
  }

  // K rho K^dagger runs through the same superket transform as a unitary —
  // the transform itself never requires unitarity.
  if (kraus.size() == 1) {
    transform_two_sided(kraus[0], qubits);
    return;
  }
  kraus_orig_.assign(rho_.begin(), rho_.end());
  kraus_acc_.assign(rho_.size(), cx{0.0, 0.0});
  for (std::size_t i = 0; i < kraus.size(); ++i) {
    if (i != 0) std::copy(kraus_orig_.begin(), kraus_orig_.end(), rho_.begin());
    transform_two_sided(kraus[i], qubits);
    for (std::size_t j = 0; j < rho_.size(); ++j) kraus_acc_[j] += rho_[j];
  }
  rho_.swap(kraus_acc_);
}

void DensityMatrix::apply_relaxation(int qubit, double duration_ns,
                                     double t1_us, double t2_us) {
  check_qubits(std::span<const int>(&qubit, 1));
  if (duration_ns <= 0.0) return;
  if (t1_us <= 0.0 || t2_us <= 0.0) {
    throw std::invalid_argument("DensityMatrix: non-positive T1/T2");
  }
  const double t_us = duration_ns * 1e-3;
  const double gamma = 1.0 - std::exp(-t_us / t1_us);
  // Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1); clamp at 0 when T2 is
  // reported above the 2*T1 physical limit.
  const double inv_tphi = std::max(0.0, 1.0 / t2_us - 0.5 / t1_us);
  const double lambda = 1.0 - std::exp(-t_us * inv_tphi);

  // Fused amplitude-damping (gamma) + pure-dephasing (lambda) channel in
  // closed form. With m the qubit mask, each 2x2 sub-block
  // [[p00, p01], [p10, p11]] over (row bit, col bit) maps to
  //   [[p00 + gamma p11,     sqrt(1-gamma)sqrt(1-lambda) p01],
  //    [sqrt(..)sqrt(..) p10,               (1-gamma) p11]]
  // — the composition of the AD Kraus pair {diag(1, sqrt(1-gamma)),
  // sqrt(gamma)|0><1|} and the PD pair {diag(1, sqrt(1-lambda)),
  // sqrt(lambda)|1><1|}. Both pairs are complete by construction, so the
  // full trace-preservation check reduces to this parameter-range guard
  // (two comparisons per call; also rejects NaN from a NaN duration,
  // which the old Kraus completeness check caught by throwing).
  if (!(gamma >= 0.0 && gamma <= 1.0) || !(lambda >= 0.0 && lambda <= 1.0)) {
    throw std::invalid_argument(
        "DensityMatrix: relaxation channel parameters outside [0,1]");
  }
  const double keep = 1.0 - gamma;
  const double decay = std::sqrt(std::max(0.0, 1.0 - gamma)) *
                       std::sqrt(std::max(0.0, 1.0 - lambda));

  const int pc = qubit;                // column bit position in the superket
  const int pr = qubit + num_qubits_;  // row bit position
  const std::size_t mc = std::size_t{1} << pc;
  const std::size_t mr = std::size_t{1} << pr;
  const std::size_t quads = (dim_ * dim_) >> 2;
  cx* rho = rho_.data();
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
  if (kern::native_kernels_active()) {
    kern::parallel_for(quads, [&](std::size_t begin, std::size_t end) {
      kern::detail::relax1_range_avx2(rho, begin, end, pc, pr, gamma, decay,
                                      keep);
    });
    return;
  }
#endif
  kern::parallel_for(quads, [&](std::size_t begin, std::size_t end) {
    for (std::size_t t = begin; t < end; ++t) {
      const std::size_t base = kern::insert_bit(kern::insert_bit(t, pc), pr);
      const cx p11 = rho[base | mr | mc];
      rho[base] += gamma * p11;
      rho[base | mc] *= decay;
      rho[base | mr] *= decay;
      rho[base | mr | mc] = keep * p11;
    }
  });
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> probs(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    probs[i] = std::max(0.0, rho_[i * dim_ + i].real());
  }
  return probs;
}

double DensityMatrix::expectation(const Matrix& observable) const {
  if (observable.rows() != dim_ || observable.cols() != dim_) {
    throw std::invalid_argument("DensityMatrix: observable shape mismatch");
  }
  cx acc{0.0, 0.0};
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      acc += rho_[r * dim_ + c] * observable(c, r);
    }
  }
  return acc.real();
}

double DensityMatrix::trace_real() const {
  double t = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) t += rho_[i * dim_ + i].real();
  return t;
}

double DensityMatrix::purity() const {
  double t = 0.0;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      t += std::norm(rho_[r * dim_ + c]);
    }
  }
  return t;
}

}  // namespace qucp
