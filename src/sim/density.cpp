#include "sim/density.hpp"

#include <cmath>
#include <stdexcept>

namespace qucp {

namespace {

/// Build the global index from a base index (local bits cleared) and a
/// local value (qubits[0] = high bit).
std::size_t with_local(std::size_t base, std::size_t local,
                       std::span<const int> qubits) {
  const int k = static_cast<int>(qubits.size());
  for (int j = 0; j < k; ++j) {
    if ((local >> (k - 1 - j)) & 1U) base |= std::size_t{1} << qubits[j];
  }
  return base;
}

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), dim_(std::size_t{1} << num_qubits) {
  if (num_qubits < 0 || num_qubits > 12) {
    throw std::invalid_argument("DensityMatrix: unsupported qubit count");
  }
  rho_.assign(dim_ * dim_, cx{0.0, 0.0});
  rho_[0] = 1.0;
}

void DensityMatrix::check_qubits(std::span<const int> qubits) const {
  for (int q : qubits) {
    if (q < 0 || q >= num_qubits_) {
      throw std::out_of_range("DensityMatrix: qubit out of range");
    }
  }
}

void DensityMatrix::apply_unitary(const Matrix& u,
                                  std::span<const int> qubits) {
  check_qubits(qubits);
  const int k = static_cast<int>(qubits.size());
  const std::size_t ldim = std::size_t{1} << k;
  if (u.rows() != ldim || u.cols() != ldim) {
    throw std::invalid_argument("DensityMatrix: matrix/operand mismatch");
  }
  std::size_t submask = 0;
  for (int q : qubits) submask |= std::size_t{1} << q;

  std::vector<cx> local(ldim);
  // Left-multiply U on the row index: for each column, transform rows.
  for (std::size_t c = 0; c < dim_; ++c) {
    for (std::size_t base = 0; base < dim_; ++base) {
      if (base & submask) continue;
      for (std::size_t li = 0; li < ldim; ++li) {
        local[li] = rho_[with_local(base, li, qubits) * dim_ + c];
      }
      for (std::size_t lr = 0; lr < ldim; ++lr) {
        cx acc{0.0, 0.0};
        for (std::size_t lc = 0; lc < ldim; ++lc) {
          acc += u(lr, lc) * local[lc];
        }
        rho_[with_local(base, lr, qubits) * dim_ + c] = acc;
      }
    }
  }
  // Right-multiply U^dagger on the column index: for each row, transform
  // columns with conj(U): (rho U^dag)[r][c] = sum_k rho[r][k] conj(u[c][k]).
  for (std::size_t r = 0; r < dim_; ++r) {
    cx* row = &rho_[r * dim_];
    for (std::size_t base = 0; base < dim_; ++base) {
      if (base & submask) continue;
      for (std::size_t li = 0; li < ldim; ++li) {
        local[li] = row[with_local(base, li, qubits)];
      }
      for (std::size_t lc = 0; lc < ldim; ++lc) {
        cx acc{0.0, 0.0};
        for (std::size_t lk = 0; lk < ldim; ++lk) {
          acc += std::conj(u(lc, lk)) * local[lk];
        }
        row[with_local(base, lc, qubits)] = acc;
      }
    }
  }
}

void DensityMatrix::apply_depolarizing(double p, std::span<const int> qubits) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("DensityMatrix: depolarizing p outside [0,1]");
  }
  if (p == 0.0) return;
  check_qubits(qubits);
  const int k = static_cast<int>(qubits.size());
  const std::size_t ldim = std::size_t{1} << k;
  const double pauli_dim = std::pow(4.0, k);
  // Uniform-Pauli channel via the twirl identity:
  //   sum_{all P} P rho P = 4^m * ptrace(rho) (x) I/2^m
  // so rho' = c1 * rho + c2 * [ptrace(rho) (x) I/2^m] with:
  const double c2 = p * pauli_dim / (pauli_dim - 1.0);
  const double c1 = 1.0 - c2;

  std::size_t submask = 0;
  for (int q : qubits) submask |= std::size_t{1} << q;

  std::vector<cx> out(dim_ * dim_, cx{0.0, 0.0});
  for (std::size_t i = 0; i < rho_.size(); ++i) out[i] = c1 * rho_[i];
  const double inv_ldim = 1.0 / static_cast<double>(ldim);
  for (std::size_t rb = 0; rb < dim_; ++rb) {
    if (rb & submask) continue;
    for (std::size_t cb = 0; cb < dim_; ++cb) {
      if (cb & submask) continue;
      cx traced{0.0, 0.0};
      for (std::size_t s = 0; s < ldim; ++s) {
        traced += rho_[with_local(rb, s, qubits) * dim_ +
                       with_local(cb, s, qubits)];
      }
      const cx fill = c2 * traced * inv_ldim;
      for (std::size_t s = 0; s < ldim; ++s) {
        out[with_local(rb, s, qubits) * dim_ + with_local(cb, s, qubits)] +=
            fill;
      }
    }
  }
  rho_ = std::move(out);
}

void DensityMatrix::apply_kraus(std::span<const Matrix> kraus,
                                std::span<const int> qubits) {
  check_qubits(qubits);
  if (kraus.empty()) {
    throw std::invalid_argument("DensityMatrix: empty Kraus set");
  }
  const std::size_t ldim = std::size_t{1} << qubits.size();
  Matrix completeness(ldim, ldim);
  for (const Matrix& k : kraus) completeness += k.dagger() * k;
  if (!completeness.approx_equal(Matrix::identity(ldim), 1e-8)) {
    throw std::invalid_argument("DensityMatrix: Kraus set not trace-preserving");
  }

  const std::vector<cx> original = rho_;
  std::vector<cx> acc(dim_ * dim_, cx{0.0, 0.0});
  for (const Matrix& k : kraus) {
    rho_ = original;
    // K rho K^dagger via the same two-sided transform as apply_unitary —
    // the transform itself never requires unitarity.
    apply_unitary(k, qubits);
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += rho_[i];
  }
  rho_ = std::move(acc);
}

void DensityMatrix::apply_relaxation(int qubit, double duration_ns,
                                     double t1_us, double t2_us) {
  check_qubits(std::span<const int>(&qubit, 1));
  if (duration_ns <= 0.0) return;
  if (t1_us <= 0.0 || t2_us <= 0.0) {
    throw std::invalid_argument("DensityMatrix: non-positive T1/T2");
  }
  const double t_us = duration_ns * 1e-3;
  const double gamma = 1.0 - std::exp(-t_us / t1_us);
  // Pure dephasing rate: 1/Tphi = 1/T2 - 1/(2 T1); clamp at 0 when T2 is
  // reported above the 2*T1 physical limit.
  const double inv_tphi = std::max(0.0, 1.0 / t2_us - 0.5 / t1_us);
  const double lambda = 1.0 - std::exp(-t_us * inv_tphi);

  const double sg = std::sqrt(std::max(0.0, 1.0 - gamma));
  const Matrix ad0(2, 2, {1, 0, 0, sg});
  const Matrix ad1(2, 2, {0, std::sqrt(gamma), 0, 0});
  const Matrix ads[] = {ad0, ad1};
  apply_kraus(ads, std::span<const int>(&qubit, 1));

  const double sl = std::sqrt(std::max(0.0, 1.0 - lambda));
  const Matrix pd0(2, 2, {1, 0, 0, sl});
  const Matrix pd1(2, 2, {0, 0, 0, std::sqrt(lambda)});
  const Matrix pds[] = {pd0, pd1};
  apply_kraus(pds, std::span<const int>(&qubit, 1));
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> probs(dim_);
  for (std::size_t i = 0; i < dim_; ++i) {
    probs[i] = std::max(0.0, rho_[i * dim_ + i].real());
  }
  return probs;
}

double DensityMatrix::expectation(const Matrix& observable) const {
  if (observable.rows() != dim_ || observable.cols() != dim_) {
    throw std::invalid_argument("DensityMatrix: observable shape mismatch");
  }
  cx acc{0.0, 0.0};
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      acc += rho_[r * dim_ + c] * observable(c, r);
    }
  }
  return acc.real();
}

double DensityMatrix::trace_real() const {
  double t = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) t += rho_[i * dim_ + i].real();
  return t;
}

double DensityMatrix::purity() const {
  double t = 0.0;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      t += std::norm(rho_[r * dim_ + c]);
    }
  }
  return t;
}

}  // namespace qucp
