#pragma once
// Noise parameter conversions and classical readout-error application.
//
// Calibration error rates map to uniform-Pauli depolarizing parameters; the
// mapping is the identity by convention here — what matters for the paper's
// comparisons is that every method is evaluated under the same model.
// Readout error acts classically on the final outcome distribution.

#include <span>
#include <vector>

namespace qucp {

/// Depolarizing parameter used for a gate with reported error rate `err`
/// (clamped into [0, max_p]); crosstalk multipliers are applied upstream.
[[nodiscard]] double depolarizing_param(double err, double max_p = 0.75);

/// Apply independent per-bit assignment flips to a dense probability
/// vector over 2^k outcomes. flip_probs[b] is the flip probability of bit b.
void apply_readout_flips(std::vector<double>& probs,
                         std::span<const double> flip_probs);

}  // namespace qucp
