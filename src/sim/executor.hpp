#pragma once
// Parallel-job executor: the simulated "quantum hardware".
//
// Takes pre-mapped physical programs (circuits over device qubit indices,
// mutually disjoint), schedules them against a common end time (ALAP), and
// simulates each program's partition exactly with a density matrix. The
// programs only couple through crosstalk: ground-truth gamma multipliers
// amplify the depolarizing rate of CX gates whose time intervals overlap on
// one-hop edge pairs — the physical mechanism the paper's methods react to.
//
// Noise sources, matching the paper's discussion: per-edge CX error,
// per-qubit single-qubit error, readout assignment error, idle thermal
// relaxation (T1/T2) in schedule gaps, and crosstalk.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "hardware/device.hpp"
#include "schedule/schedule.hpp"
#include "sim/counts.hpp"

namespace qucp {

class GateMatrixCache;        // circuit/gate_cache.hpp
class CompiledProgramCache;   // sim/fusion.hpp

/// A program already mapped to physical qubits. The circuit spans the whole
/// device index space but may only touch its partition's qubits; CX/CZ ops
/// must sit on coupled edges; SWAPs are lowered internally.
struct PhysicalProgram {
  Circuit circuit;
  std::string name;
};

struct ExecOptions {
  int shots = 4096;
  SchedulePolicy schedule = SchedulePolicy::ALAP;
  bool idle_noise = true;
  bool readout_noise = true;
  bool gate_noise = true;
  bool crosstalk_noise = true;
  std::uint64_t seed = 1234;  ///< sampling seed

  /// Cap on kern::parallel_for worker threads while this run simulates
  /// (0 = inherit the ambient cap: QUCP_KERNEL_THREADS, else hardware
  /// concurrency). The ExecutionService sets hw / num_workers here so N
  /// concurrent batch workers cannot oversubscribe the machine N-fold.
  int kernel_threads = 0;

  /// When gate_noise and idle_noise are both off there are no per-op
  /// channels to interleave, so the executor replays each program's fused
  /// CompiledProgram stream (sim/fusion.hpp) instead of stepping gate by
  /// gate (~2x on noiseless density runs; agreement with the per-op replay
  /// is pinned at <= 1e-10 by tests/test_fusion.cpp). Readout error,
  /// sampling seeds and all reporting are unaffected. Set false to force
  /// the per-op path (A/B testing, debugging).
  bool fuse_noiseless = true;

  /// Software crosstalk mitigation by instruction scheduling (Murali et
  /// al., the alternative to QuCP's avoidance): delay whole programs until
  /// no one-hop CX pairs overlap in time. With `serialize_hints` set only
  /// the listed (SRB-characterized) pairs are serialized; otherwise every
  /// one-hop overlap is. Buys crosstalk immunity with idle decoherence
  /// and a longer makespan. Held by value: ExecOptions frequently outlive
  /// the caller's stack frame in the async ExecutionService, so a borrowed
  /// pointer here would be a dangling-lifetime trap.
  bool serialize_crosstalk = false;
  std::optional<CrosstalkModel> serialize_hints;
};

struct ProgramOutcome {
  std::string name;
  Distribution distribution;  ///< exact noisy outcome distribution
  Counts counts;              ///< sampled shots
};

/// Calibration-derived noise constants, computed once per calibration
/// snapshot instead of once per gate application: the per-edge CX
/// depolarizing parameter at gamma = 1 and the per-qubit 1q depolarizing
/// parameter. A CalibrationEpoch (service/backend.hpp) derives one table
/// when it is built and hands it to every execution on that epoch;
/// crosstalk-amplified CX events (gamma > 1) still derive their parameter
/// on the fly. Purely a recompute-avoidance table — depolarizing_param is
/// deterministic, so results are bit-identical with or without it.
struct DerivedNoise {
  std::vector<double> cx_depol;  ///< depolarizing_param(cx_error[e]) per edge
  std::vector<double> q1_depol;  ///< depolarizing_param(q1_error[q]) per qubit
  [[nodiscard]] static DerivedNoise from(const Calibration& cal);
};

struct ParallelRunReport {
  std::vector<ProgramOutcome> programs;
  double makespan_ns = 0.0;
  int crosstalk_events = 0;   ///< CX pairs overlapped on one-hop edges
  double max_gamma_applied = 1.0;
  int qubits_used = 0;
  double throughput = 0.0;    ///< qubits_used / device qubits
};

/// Execute programs simultaneously on the device. Programs must occupy
/// pairwise-disjoint qubit sets and respect the coupling graph.
/// `gate_cache` (optional) memoizes gate unitaries across calls — a Backend
/// passes its own so repeated shot-batches stop rebuilding matrices per op;
/// when null a run-local cache still deduplicates within the call.
/// `program_cache` (optional) memoizes each program's CX lowering and
/// per-op compiled kernels (sim/fusion.hpp) across calls; when null the
/// compilation happens per call. `derived` (optional) supplies the
/// calibration-derived depolarizing parameters precomputed for this
/// device's calibration snapshot — it must have been built from exactly
/// device.calibration(). Either way every gate replays through a
/// precompiled kernel, with noise channels interleaved exactly as the
/// uncompiled path did — results are bit-identical.
[[nodiscard]] ParallelRunReport execute_parallel(
    const Device& device, std::vector<PhysicalProgram> programs,
    const ExecOptions& options = {}, GateMatrixCache* gate_cache = nullptr,
    const CompiledProgramCache* program_cache = nullptr,
    const DerivedNoise* derived = nullptr);

/// Convenience: execute a single program (no co-runners).
[[nodiscard]] ProgramOutcome execute_single(const Device& device,
                                            const Circuit& physical_circuit,
                                            const ExecOptions& options = {});

}  // namespace qucp
