#pragma once
// Ideal (noiseless) statevector simulator.
//
// Little-endian convention: qubit k is bit k of the basis index. Used for
// reference distributions (JSD baselines, PST targets), exact expectation
// values, and RB recovery-unitary construction. Practical up to ~20 qubits;
// all the paper's programs are <= 5.

#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/matrix.hpp"
#include "sim/counts.hpp"
#include "sim/kernels.hpp"

namespace qucp {

class Statevector {
 public:
  /// |0...0> on n qubits.
  explicit Statevector(int num_qubits);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::span<const cx> amplitudes() const noexcept {
    return amps_;
  }

  /// Apply a 1- or 2-qubit unitary (first operand = high local bit,
  /// matching gate_matrix's convention).
  void apply_unitary(const Matrix& u, std::span<const int> qubits);

  /// Apply a pre-compiled 1q/2q kernel (kern::compile_unitary): the hot
  /// path for replayed gates — structure detection and coefficient
  /// unpacking were paid once at compile time.
  void apply_compiled(const kern::CompiledUnitary& cu,
                      std::span<const int> qubits);

  /// Apply all unitary ops of a circuit (barriers skipped; measurements
  /// rejected — use ideal_distribution for measured circuits).
  void apply_circuit(const Circuit& circuit);

  /// Probability of each basis state.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// <psi| P |psi> for an observable given as a full matrix.
  [[nodiscard]] double expectation(const Matrix& observable) const;

  [[nodiscard]] double norm() const;

 private:
  int num_qubits_;
  std::vector<cx> amps_;
  std::vector<cx> scratch_;  ///< generic-kernel gather buffer, reused
};

/// Exact outcome distribution of a measured circuit under ideal execution.
/// Only measured clbits contribute; unmeasured clbits read 0.
[[nodiscard]] Distribution ideal_distribution(const Circuit& circuit);

}  // namespace qucp
