#pragma once
// Ideal (noiseless) statevector simulator.
//
// Little-endian convention: qubit k is bit k of the basis index. Used for
// reference distributions (JSD baselines, PST targets), exact expectation
// values, and RB recovery-unitary construction. Practical up to ~20 qubits;
// all the paper's programs are <= 5.

#include <span>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/matrix.hpp"
#include "sim/counts.hpp"
#include "sim/kernels.hpp"

namespace qucp {

class CompiledProgram;  // sim/fusion.hpp

class Statevector {
 public:
  /// |0...0> on n qubits.
  explicit Statevector(int num_qubits);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::span<const cx> amplitudes() const noexcept {
    return amps_;
  }

  /// Apply a 1- or 2-qubit unitary (first operand = high local bit,
  /// matching gate_matrix's convention).
  void apply_unitary(const Matrix& u, std::span<const int> qubits);

  /// Apply a pre-compiled 1q/2q kernel (kern::compile_unitary): the hot
  /// path for replayed gates — structure detection and coefficient
  /// unpacking were paid once at compile time.
  void apply_compiled(const kern::CompiledUnitary& cu,
                      std::span<const int> qubits);

  /// Apply all unitary ops of a circuit (barriers skipped; measurements
  /// rejected — use ideal_distribution for measured circuits).
  void apply_circuit(const Circuit& circuit);

  /// Replay a fused, precompiled program (sim/fusion.hpp): the cached hot
  /// path of the ideal pipeline. Measurements in the program are ignored
  /// here — callers read the final amplitudes.
  void run(const CompiledProgram& program);

  /// Probability of each basis state.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// <psi| P |psi> for an observable given as a full matrix.
  [[nodiscard]] double expectation(const Matrix& observable) const;

  [[nodiscard]] double norm() const;

 private:
  int num_qubits_;
  std::vector<cx> amps_;
  std::vector<cx> scratch_;  ///< generic-kernel gather buffer, reused
};

/// Exact outcome distribution of a measured circuit under ideal execution.
/// Only measured clbits contribute; unmeasured clbits read 0.
[[nodiscard]] Distribution ideal_distribution(const Circuit& circuit);

namespace detail {

/// Shared result-assembly tail of the ideal pipelines: fold |amp|^2 over
/// the (qubit, clbit) measurement map into a Distribution. Both the
/// gate-by-gate and the fused (sim/fusion.hpp) path end here, so their
/// packing and zero-drop behavior cannot drift apart.
[[nodiscard]] Distribution distribution_from_amplitudes(
    std::span<const cx> amps, int num_clbits,
    std::span<const std::pair<int, int>> measurements);

}  // namespace detail

}  // namespace qucp
