#include "sim/fusion.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "circuit/decompose.hpp"
#include "circuit/gate_cache.hpp"
#include "sim/statevector.hpp"

namespace qucp {

namespace {

/// Row-major unitary of a gate without heap traffic: parameterless kinds
/// resolve to the immutable fixed_gate_matrix table, parameterized kinds
/// are evaluated into `buf`. Values match gate_matrix bit for bit.
const cx* step_matrix(const Gate& g, cx buf[16]) {
  if (const Matrix* fixed = fixed_gate_matrix(g.kind)) {
    return fixed->data().data();
  }
  gate_matrix_into(g.kind, g.params, buf);
  return buf;
}

/// out = a * b for row-major 2x2 (aliasing-safe).
void mul2(cx out[4], const cx a[4], const cx b[4]) {
  cx tmp[4];
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      tmp[2 * r + c] = a[2 * r] * b[c] + a[2 * r + 1] * b[2 + c];
    }
  }
  std::memcpy(out, tmp, sizeof(tmp));
}

/// out = a * b for row-major 4x4 (aliasing-safe).
void mul4(cx out[16], const cx a[16], const cx b[16]) {
  cx tmp[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      cx acc{0.0, 0.0};
      for (int k = 0; k < 4; ++k) acc += a[4 * r + k] * b[4 * k + c];
      tmp[4 * r + c] = acc;
    }
  }
  std::memcpy(out, tmp, sizeof(tmp));
}

/// Lift a 2x2 onto one operand of a 4x4 block whose local basis index is
/// (bit_hi << 1) | bit_lo: high -> u (x) I, low -> I (x) u.
void lift1(cx out[16], const cx u[4], bool high) {
  for (int i = 0; i < 16; ++i) out[i] = cx{0.0, 0.0};
  if (high) {
    for (int ur = 0; ur < 2; ++ur) {
      for (int uc = 0; uc < 2; ++uc) {
        for (int l = 0; l < 2; ++l) {
          out[(2 * ur + l) * 4 + (2 * uc + l)] = u[2 * ur + uc];
        }
      }
    }
  } else {
    for (int h = 0; h < 2; ++h) {
      for (int ur = 0; ur < 2; ++ur) {
        for (int uc = 0; uc < 2; ++uc) {
          out[(2 * h + ur) * 4 + (2 * h + uc)] = u[2 * ur + uc];
        }
      }
    }
  }
}

/// Re-express a 4x4 given in operand order (b, a) in operand order (a, b):
/// conjugate by the bit-swap permutation 0<->0, 1<->2, 3<->3.
void swap_operands(cx out[16], const cx u[16]) {
  static constexpr int s[4] = {0, 2, 1, 3};
  cx tmp[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) tmp[4 * r + c] = u[4 * s[r] + s[c]];
  }
  std::memcpy(out, tmp, sizeof(tmp));
}

/// Build the compiled superket form of a 1q matrix: U (x) conj(U) as a 4x4
/// on superket bits (q + n, q). The element expression mirrors
/// DensityMatrix::transform_two_sided exactly so the compiled coefficients
/// are bit-identical to what the uncompiled path computes per call.
kern::CompiledUnitary compile_superket1(const cx d[4]) {
  cx ku[16];
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      const cx scale = d[2 * r + c];
      for (int rr = 0; rr < 2; ++rr) {
        for (int cc = 0; cc < 2; ++cc) {
          ku[(2 * r + rr) * 4 + (2 * c + cc)] =
              scale * std::conj(d[2 * rr + cc]);
        }
      }
    }
  }
  return kern::compile_unitary(std::span<const cx>(ku, 16));
}

/// Compiled conj(U) for the density column pass of a 2q gate, built the
/// same way kern::apply_unitary's conjugate branch builds it.
kern::CompiledUnitary compile_conj4(const cx u[16]) {
  cx uc[16];
  for (int i = 0; i < 16; ++i) uc[i] = std::conj(u[i]);
  return kern::compile_unitary(std::span<const cx>(uc, 16));
}

FusedOp make_fused_op(const cx* u, int k, int q0, int q1) {
  FusedOp op;
  op.q[0] = q0;
  op.q[1] = q1;
  if (k == 1) {
    op.sv = kern::compile_unitary(std::span<const cx>(u, 4));
    op.dm = compile_superket1(u);
  } else {
    op.sv = kern::compile_unitary(std::span<const cx>(u, 16));
    op.dm = compile_conj4(u);
  }
  return op;
}

/// The fusion state machine, structure only: open blocks accumulate gate
/// *references* per qubit (1q) or qubit pair (2q); every decision —
/// merge, absorb, close — is recorded as a FusionPlan::Step in the exact
/// order the matrix arithmetic must replay. Each qubit is owned by at
/// most one open block, and any gate, barrier or measurement on a block's
/// qubits either merges into the block or closes it first, so emitted
/// order only ever interchanges ops with disjoint supports (which commute
/// exactly). No parameter value is read anywhere: the step stream is a
/// pure function of gate kinds and operands.
class PlanFuser {
 public:
  using Op = FusionPlan::Op;
  using Step = FusionPlan::Step;

  PlanFuser(int num_qubits, std::vector<Step>& steps,
            std::vector<FusionPlan::BlockInfo>& blocks, std::size_t& emitted)
      : owner_(static_cast<std::size_t>(num_qubits), -1),
        steps_(steps),
        blocks_(blocks),
        emitted_(emitted) {}

  void add_1q(int q, std::uint32_t gate) {
    const int bi = owner_[static_cast<std::size_t>(q)];
    if (bi < 0) {
      const std::uint32_t nb = alloc_block(1, q, -1);
      owner_[static_cast<std::size_t>(q)] = static_cast<int>(nb);
      steps_.push_back({Op::kNew1, nb, gate, 0, false});
      return;
    }
    const auto ubi = static_cast<std::uint32_t>(bi);
    if (blocks_[static_cast<std::size_t>(bi)].k == 1) {
      steps_.push_back({Op::kMul1, ubi, gate, 0, false});
      return;
    }
    steps_.push_back({Op::kLift1Mul, ubi, gate, 0,
                      /*high=*/blocks_[static_cast<std::size_t>(bi)].q0 == q});
  }

  void add_2q(int a, int b, std::uint32_t gate) {
    int ba = owner_[static_cast<std::size_t>(a)];
    int bb = owner_[static_cast<std::size_t>(b)];
    if (ba >= 0 && ba == bb) {
      // Same open 2q block — merge, permuting when the operand order of
      // this gate is the reverse of the block's.
      assert(blocks_[static_cast<std::size_t>(ba)].k == 2);
      steps_.push_back({Op::kMul2, static_cast<std::uint32_t>(ba), gate, 0,
                        /*swapped=*/blocks_[static_cast<std::size_t>(ba)].q0 !=
                            a});
      return;
    }
    // A 2q block sharing only one qubit cannot absorb this gate (that
    // would grow past the 4x4 the kernels handle); close it.
    if (ba >= 0 && blocks_[static_cast<std::size_t>(ba)].k == 2) {
      close(ba);
      ba = -1;
    }
    if (bb >= 0 && blocks_[static_cast<std::size_t>(bb)].k == 2) {
      close(bb);
      bb = -1;
    }
    const std::uint32_t nb = alloc_block(2, a, b);
    steps_.push_back({Op::kNew2, nb, gate, 0, false});
    // Pending 1q gates on the operands were applied before this gate:
    // right-multiply their lifted forms, consuming the 1q blocks unemitted.
    if (ba >= 0) {
      steps_.push_back(
          {Op::kAbsorb, nb, 0, static_cast<std::uint32_t>(ba), /*high=*/true});
      discard(ba);
    }
    if (bb >= 0) {
      steps_.push_back(
          {Op::kAbsorb, nb, 0, static_cast<std::uint32_t>(bb), /*high=*/false});
      discard(bb);
    }
    owner_[static_cast<std::size_t>(a)] = static_cast<int>(nb);
    owner_[static_cast<std::size_t>(b)] = static_cast<int>(nb);
  }

  /// Barrier/measurement boundary: close whatever these qubits touch.
  void fence(std::span<const int> qubits) {
    for (int q : qubits) {
      const int bi = owner_[static_cast<std::size_t>(q)];
      if (bi >= 0) close(bi);
    }
  }

  /// Flush every remaining open block, oldest first.
  void finish() {
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (open_[i]) close(static_cast<int>(i));
    }
  }

 private:
  std::uint32_t alloc_block(std::uint8_t k, int q0, int q1) {
    blocks_.push_back({k, q0, q1});
    open_.push_back(true);
    return static_cast<std::uint32_t>(blocks_.size() - 1);
  }

  void close(int bi) {
    assert(open_[static_cast<std::size_t>(bi)]);
    steps_.push_back(
        {Op::kEmit, static_cast<std::uint32_t>(bi), 0, 0, false});
    ++emitted_;
    discard(bi);
  }

  void discard(int bi) {
    const FusionPlan::BlockInfo& blk = blocks_[static_cast<std::size_t>(bi)];
    open_[static_cast<std::size_t>(bi)] = false;
    owner_[static_cast<std::size_t>(blk.q0)] = -1;
    if (blk.k == 2) owner_[static_cast<std::size_t>(blk.q1)] = -1;
  }

  std::vector<int> owner_;
  std::vector<bool> open_;
  std::vector<Step>& steps_;
  std::vector<FusionPlan::BlockInfo>& blocks_;
  std::size_t& emitted_;
};

}  // namespace

FusionPlan FusionPlan::build(const Circuit& circuit) {
  FusionPlan plan;
  plan.num_qubits_ = circuit.num_qubits();
  plan.num_clbits_ = circuit.num_clbits();
  plan.source_size_ = circuit.size();
  PlanFuser fuser(circuit.num_qubits(), plan.steps_, plan.blocks_,
                  plan.emitted_);
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& g = circuit.ops()[i];
    if (g.kind == GateKind::Barrier) {
      fuser.fence(g.qubits);
      continue;
    }
    if (g.kind == GateKind::Measure) {
      fuser.fence(std::span<const int>(g.qubits.data(), 1));
      plan.measurements_.emplace_back(g.qubits[0], g.clbit);
      continue;
    }
    ++plan.source_gates_;
    if (g.qubits.size() == 1) {
      fuser.add_1q(g.qubits[0], static_cast<std::uint32_t>(i));
    } else {
      assert(g.qubits.size() == 2);
      fuser.add_2q(g.qubits[0], g.qubits[1], static_cast<std::uint32_t>(i));
    }
  }
  fuser.finish();
  return plan;
}

CompiledProgram CompiledProgram::compile(const Circuit& circuit) {
  return materialize(FusionPlan::build(circuit), circuit);
}

CompiledProgram CompiledProgram::materialize(const FusionPlan& plan,
                                             const Circuit& circuit) {
  if (circuit.size() != plan.source_size() ||
      circuit.num_qubits() != plan.num_qubits()) {
    throw std::invalid_argument(
        "CompiledProgram::materialize: circuit does not match plan structure");
  }
  CompiledProgram out;
  out.num_qubits_ = plan.num_qubits();
  out.num_clbits_ = plan.num_clbits();
  out.measurements_ = plan.measurements();
  out.source_gates_ = plan.source_gate_count();
  out.ops_.reserve(plan.emitted());
  // One 4x4 scratch per block; 1q blocks use the first 4 entries, exactly
  // like the old in-Fuser Block::m. Replaying the step stream performs
  // the same products, with the same operands, in the same order the
  // from-scratch fusion did — bit-identical results.
  // Every block's first step (kNew1/kNew2) writes its scratch before any
  // read, so the buffers need no initialization; small plans stay entirely
  // on the stack.
  constexpr std::size_t kStackBlocks = 32;
  std::array<cx, 16> stack_scratch[kStackBlocks];
  std::vector<std::array<cx, 16>> heap_scratch;
  std::array<cx, 16>* scratch = stack_scratch;
  if (plan.blocks().size() > kStackBlocks) {
    heap_scratch.resize(plan.blocks().size());
    scratch = heap_scratch.data();
  }
  // Per-angle sweeps replay this product chain once per binding, so the
  // 4x4 products dispatch to the AVX2/FMA kernels when compiled in and the
  // cpuid check passes (hoisted out of the step loop — dispatch reads an
  // atomic). The AVX2 products are ~1 ulp from the scalar chain (FMA
  // contraction), matching the dense-kernel dispatch contract; callers
  // that need the exact scalar stream use set_native_kernels(false).
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
  const bool native = kern::native_kernels_active();
#else
  constexpr bool native = false;
#endif
  (void)native;
  cx ubuf[16];
  for (const FusionPlan::Step& s : plan.steps()) {
    cx* m = scratch[s.block].data();
    switch (s.op) {
      case FusionPlan::Op::kNew1: {
        const cx* u = step_matrix(circuit.ops()[s.gate], ubuf);
        std::memcpy(m, u, 4 * sizeof(cx));
        break;
      }
      case FusionPlan::Op::kMul1: {
        const cx* u = step_matrix(circuit.ops()[s.gate], ubuf);
        mul2(m, u, m);
        break;
      }
      case FusionPlan::Op::kLift1Mul: {
        const cx* u = step_matrix(circuit.ops()[s.gate], ubuf);
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
        if (native) {
          kern::detail::lift_mul4_avx2(m, u, s.flag);
          break;
        }
#endif
        cx lifted[16];
        lift1(lifted, u, s.flag);
        mul4(m, lifted, m);
        break;
      }
      case FusionPlan::Op::kNew2: {
        const cx* u = step_matrix(circuit.ops()[s.gate], ubuf);
        std::memcpy(m, u, 16 * sizeof(cx));
        break;
      }
      case FusionPlan::Op::kMul2: {
        const cx* u = step_matrix(circuit.ops()[s.gate], ubuf);
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
        if (native) {
          if (s.flag) {
            kern::detail::swap_mul4_avx2(m, u);
          } else {
            kern::detail::mul4_avx2(m, u, m);
          }
          break;
        }
#endif
        if (s.flag) {
          cx swapped[16];
          swap_operands(swapped, u);
          mul4(m, swapped, m);
        } else {
          mul4(m, u, m);
        }
        break;
      }
      case FusionPlan::Op::kAbsorb: {
#if defined(QUCP_NATIVE_KERNELS) && (defined(__x86_64__) || defined(__i386__))
        if (native) {
          kern::detail::mul4_lift_avx2(m, scratch[s.src].data(), s.flag);
          break;
        }
#endif
        cx lifted[16];
        lift1(lifted, scratch[s.src].data(), s.flag);
        mul4(m, m, lifted);
        break;
      }
      case FusionPlan::Op::kEmit: {
        const FusionPlan::BlockInfo& blk = plan.blocks()[s.block];
        out.ops_.push_back(make_fused_op(m, blk.k, blk.q0, blk.q1));
        break;
      }
    }
  }
  return out;
}

std::vector<FusedOp> compile_ops(const Circuit& circuit,
                                 GateMatrixCache* matrices) {
  std::vector<FusedOp> out(circuit.size());
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& g = circuit.ops()[i];
    if (!is_unitary_gate(g.kind)) continue;
    const int k = static_cast<int>(g.qubits.size());
    assert(k == 1 || k == 2);
    if (matrices != nullptr) {
      out[i] = make_fused_op(matrices->get(g).data().data(), k, g.qubits[0],
                             k == 2 ? g.qubits[1] : -1);
    } else {
      const Matrix u = gate_matrix(g);
      out[i] = make_fused_op(u.data().data(), k, g.qubits[0],
                             k == 2 ? g.qubits[1] : -1);
    }
  }
  return out;
}

CompiledExecutable CompiledExecutable::compile(const Circuit& physical,
                                               GateMatrixCache* matrices) {
  CompiledExecutable exe;
  exe.lowered_ = lower_to_cx_basis(physical);
  exe.channels_ = compile_ops(exe.lowered_, matrices);
  exe.fused_compacted_ = std::make_shared<const CompiledProgram>(
      CompiledProgram::compile(exe.lowered_.compacted()));
  return exe;
}

Distribution ideal_distribution(const CompiledProgram& program) {
  if (program.measurements().empty()) {
    throw std::logic_error("ideal_distribution: circuit has no measurements");
  }
  Statevector sv(program.num_qubits());
  sv.run(program);
  return detail::distribution_from_amplitudes(
      sv.amplitudes(), program.num_clbits(), program.measurements());
}

std::shared_ptr<const FusionPlan> CompiledProgramCache::plan(
    const Circuit& circuit) const {
  return plan_for(structural_fingerprint(circuit), circuit);
}

std::shared_ptr<const FusionPlan> CompiledProgramCache::plan_for(
    const std::uint64_t key, const Circuit& circuit) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = plans_.find(key); it != plans_.end()) {
      ++plan_hits_;
      return it->second;
    }
  }
  // Build outside the lock: deterministic, so a racing duplicate insert
  // just loses and its result is identical anyway.
  auto built = std::make_shared<const FusionPlan>(FusionPlan::build(circuit));
  std::lock_guard<std::mutex> lock(mutex_);
  ++plan_builds_;
  auto [it, inserted] = plans_.emplace(key, std::move(built));
  if (inserted) {
    plans_order_.push_back(key);
    if (plans_.size() > kMaxEntries) {
      plans_.erase(plans_order_.front());
      plans_order_.pop_front();
    }
  }
  return it->second;
}

std::shared_ptr<const CompiledProgram> CompiledProgramCache::fused(
    const Circuit& circuit) const {
  const CircuitFingerprints fp = circuit_fingerprints(circuit);
  const std::uint64_t key = fp.exact;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = fused_.find(key); it != fused_.end()) return it->second;
  }
  // Exact-fingerprint miss: fetch (or build) the structural plan, then
  // materialize this circuit's matrices against it. A parameter sweep
  // over one ansatz pays the fusion walk once — every later binding is a
  // plan hit plus the cheap matrix products. With the parametric knob off
  // the plan cache is bypassed and every distinct circuit pays the full
  // fusion walk. Both halves run outside the lock; results are
  // deterministic either way.
  std::shared_ptr<const CompiledProgram> program;
  if (parametric_) {
    const std::shared_ptr<const FusionPlan> p = plan_for(fp.structural, circuit);
    program = std::make_shared<const CompiledProgram>(
        CompiledProgram::materialize(*p, circuit));
  } else {
    program = std::make_shared<const CompiledProgram>(
        CompiledProgram::compile(circuit));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!parametric_) ++plan_builds_;  // a fusion walk ran, just uncached
  auto [it, inserted] = fused_.emplace(key, std::move(program));
  if (inserted) {
    fused_order_.push_back(key);
    if (fused_.size() > kMaxEntries) {
      fused_.erase(fused_order_.front());
      fused_order_.pop_front();
    }
  }
  return it->second;
}

std::shared_ptr<const CompiledExecutable> CompiledProgramCache::executable(
    const Circuit& physical, GateMatrixCache* matrices) const {
  const std::uint64_t key = circuit_fingerprint(physical);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = executables_.find(key); it != executables_.end()) {
      return it->second;
    }
  }
  // Assemble piecewise (friend access) instead of via
  // CompiledExecutable::compile so the fused half of the executable also
  // flows through the plan cache.
  auto exe_ptr = std::make_shared<CompiledExecutable>();
  exe_ptr->lowered_ = lower_to_cx_basis(physical);
  exe_ptr->channels_ = compile_ops(exe_ptr->lowered_, matrices);
  exe_ptr->fused_compacted_ = fused(exe_ptr->lowered_.compacted());
  std::shared_ptr<const CompiledExecutable> exe = std::move(exe_ptr);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = executables_.emplace(key, std::move(exe));
  if (inserted) {
    executables_order_.push_back(key);
    if (executables_.size() > kMaxEntries) {
      executables_.erase(executables_order_.front());
      executables_order_.pop_front();
    }
  }
  return it->second;
}

std::size_t CompiledProgramCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fused_.size() + executables_.size();
}

std::uint64_t CompiledProgramCache::plan_builds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_builds_;
}

std::uint64_t CompiledProgramCache::plan_hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_hits_;
}

}  // namespace qucp
