#include "sim/fusion.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "circuit/decompose.hpp"
#include "circuit/gate_cache.hpp"
#include "sim/statevector.hpp"

namespace qucp {

namespace {

/// out = a * b for row-major 2x2 (aliasing-safe).
void mul2(cx out[4], const cx a[4], const cx b[4]) {
  cx tmp[4];
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      tmp[2 * r + c] = a[2 * r] * b[c] + a[2 * r + 1] * b[2 + c];
    }
  }
  std::memcpy(out, tmp, sizeof(tmp));
}

/// out = a * b for row-major 4x4 (aliasing-safe).
void mul4(cx out[16], const cx a[16], const cx b[16]) {
  cx tmp[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      cx acc{0.0, 0.0};
      for (int k = 0; k < 4; ++k) acc += a[4 * r + k] * b[4 * k + c];
      tmp[4 * r + c] = acc;
    }
  }
  std::memcpy(out, tmp, sizeof(tmp));
}

/// Lift a 2x2 onto one operand of a 4x4 block whose local basis index is
/// (bit_hi << 1) | bit_lo: high -> u (x) I, low -> I (x) u.
void lift1(cx out[16], const cx u[4], bool high) {
  for (int i = 0; i < 16; ++i) out[i] = cx{0.0, 0.0};
  if (high) {
    for (int ur = 0; ur < 2; ++ur) {
      for (int uc = 0; uc < 2; ++uc) {
        for (int l = 0; l < 2; ++l) {
          out[(2 * ur + l) * 4 + (2 * uc + l)] = u[2 * ur + uc];
        }
      }
    }
  } else {
    for (int h = 0; h < 2; ++h) {
      for (int ur = 0; ur < 2; ++ur) {
        for (int uc = 0; uc < 2; ++uc) {
          out[(2 * h + ur) * 4 + (2 * h + uc)] = u[2 * ur + uc];
        }
      }
    }
  }
}

/// Re-express a 4x4 given in operand order (b, a) in operand order (a, b):
/// conjugate by the bit-swap permutation 0<->0, 1<->2, 3<->3.
void swap_operands(cx out[16], const cx u[16]) {
  static constexpr int s[4] = {0, 2, 1, 3};
  cx tmp[16];
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) tmp[4 * r + c] = u[4 * s[r] + s[c]];
  }
  std::memcpy(out, tmp, sizeof(tmp));
}

/// Build the compiled superket form of a 1q matrix: U (x) conj(U) as a 4x4
/// on superket bits (q + n, q). The element expression mirrors
/// DensityMatrix::transform_two_sided exactly so the compiled coefficients
/// are bit-identical to what the uncompiled path computes per call.
kern::CompiledUnitary compile_superket1(const cx d[4]) {
  cx ku[16];
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 2; ++c) {
      const cx scale = d[2 * r + c];
      for (int rr = 0; rr < 2; ++rr) {
        for (int cc = 0; cc < 2; ++cc) {
          ku[(2 * r + rr) * 4 + (2 * c + cc)] =
              scale * std::conj(d[2 * rr + cc]);
        }
      }
    }
  }
  return kern::compile_unitary(std::span<const cx>(ku, 16));
}

/// Compiled conj(U) for the density column pass of a 2q gate, built the
/// same way kern::apply_unitary's conjugate branch builds it.
kern::CompiledUnitary compile_conj4(const cx u[16]) {
  cx uc[16];
  for (int i = 0; i < 16; ++i) uc[i] = std::conj(u[i]);
  return kern::compile_unitary(std::span<const cx>(uc, 16));
}

FusedOp make_fused_op(const cx* u, int k, int q0, int q1) {
  FusedOp op;
  op.q[0] = q0;
  op.q[1] = q1;
  if (k == 1) {
    op.sv = kern::compile_unitary(std::span<const cx>(u, 4));
    op.dm = compile_superket1(u);
  } else {
    op.sv = kern::compile_unitary(std::span<const cx>(u, 16));
    op.dm = compile_conj4(u);
  }
  return op;
}

/// The fusion state machine: open blocks accumulate gate products per
/// qubit (1q) or qubit pair (2q); closing a block classifies the product
/// and emits it. Each qubit is owned by at most one open block, and any
/// gate, barrier or measurement on a block's qubits either merges into the
/// block or closes it first, so emitted order only ever interchanges ops
/// with disjoint supports (which commute exactly).
class Fuser {
 public:
  explicit Fuser(int num_qubits, std::vector<FusedOp>& out)
      : owner_(static_cast<std::size_t>(num_qubits), -1), out_(out) {}

  void add_1q(int q, std::span<const cx> u) {
    const int bi = owner_[static_cast<std::size_t>(q)];
    if (bi < 0) {
      Block b;
      b.k = 1;
      b.q0 = q;
      std::memcpy(b.m, u.data(), 4 * sizeof(cx));
      open_block(std::move(b));
      return;
    }
    Block& blk = blocks_[static_cast<std::size_t>(bi)];
    if (blk.k == 1) {
      mul2(blk.m, u.data(), blk.m);
      return;
    }
    cx lifted[16];
    lift1(lifted, u.data(), /*high=*/blk.q0 == q);
    mul4(blk.m, lifted, blk.m);
  }

  void add_2q(int a, int b, std::span<const cx> u) {
    int ba = owner_[static_cast<std::size_t>(a)];
    int bb = owner_[static_cast<std::size_t>(b)];
    if (ba >= 0 && ba == bb) {
      // Same open 2q block — merge, permuting when the operand order of
      // this gate is the reverse of the block's.
      Block& blk = blocks_[static_cast<std::size_t>(ba)];
      assert(blk.k == 2);
      if (blk.q0 == a) {
        mul4(blk.m, u.data(), blk.m);
      } else {
        cx swapped[16];
        swap_operands(swapped, u.data());
        mul4(blk.m, swapped, blk.m);
      }
      return;
    }
    // A 2q block sharing only one qubit cannot absorb this gate (that
    // would grow past the 4x4 the kernels handle); close it.
    if (ba >= 0 && blocks_[static_cast<std::size_t>(ba)].k == 2) {
      close(ba);
      ba = -1;
    }
    if (bb >= 0 && blocks_[static_cast<std::size_t>(bb)].k == 2) {
      close(bb);
      bb = -1;
    }
    Block blk;
    blk.k = 2;
    blk.q0 = a;
    blk.q1 = b;
    std::memcpy(blk.m, u.data(), 16 * sizeof(cx));
    // Pending 1q gates on the operands were applied before this gate:
    // right-multiply their lifted forms, consuming the 1q blocks unemitted.
    if (ba >= 0) {
      cx lifted[16];
      lift1(lifted, blocks_[static_cast<std::size_t>(ba)].m, /*high=*/true);
      mul4(blk.m, blk.m, lifted);
      discard(ba);
    }
    if (bb >= 0) {
      cx lifted[16];
      lift1(lifted, blocks_[static_cast<std::size_t>(bb)].m, /*high=*/false);
      mul4(blk.m, blk.m, lifted);
      discard(bb);
    }
    open_block(std::move(blk));
  }

  /// Barrier/measurement boundary: close whatever these qubits touch.
  void fence(std::span<const int> qubits) {
    for (int q : qubits) {
      const int bi = owner_[static_cast<std::size_t>(q)];
      if (bi >= 0) close(bi);
    }
  }

  /// Flush every remaining open block, oldest first.
  void finish() {
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
      if (blocks_[i].open) close(static_cast<int>(i));
    }
  }

 private:
  struct Block {
    int k = 0;
    int q0 = -1;
    int q1 = -1;
    cx m[16];
    bool open = false;
  };

  void open_block(Block b) {
    b.open = true;
    const int bi = static_cast<int>(blocks_.size());
    owner_[static_cast<std::size_t>(b.q0)] = bi;
    if (b.k == 2) owner_[static_cast<std::size_t>(b.q1)] = bi;
    blocks_.push_back(std::move(b));
  }

  void close(int bi) {
    Block& blk = blocks_[static_cast<std::size_t>(bi)];
    assert(blk.open);
    out_.push_back(make_fused_op(blk.m, blk.k, blk.q0, blk.q1));
    discard(bi);
  }

  void discard(int bi) {
    Block& blk = blocks_[static_cast<std::size_t>(bi)];
    blk.open = false;
    owner_[static_cast<std::size_t>(blk.q0)] = -1;
    if (blk.k == 2) owner_[static_cast<std::size_t>(blk.q1)] = -1;
  }

  std::vector<Block> blocks_;
  std::vector<int> owner_;
  std::vector<FusedOp>& out_;
};

}  // namespace

CompiledProgram CompiledProgram::compile(const Circuit& circuit) {
  CompiledProgram out;
  out.num_qubits_ = circuit.num_qubits();
  out.num_clbits_ = circuit.num_clbits();
  Fuser fuser(circuit.num_qubits(), out.ops_);
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::Barrier) {
      fuser.fence(g.qubits);
      continue;
    }
    if (g.kind == GateKind::Measure) {
      fuser.fence(std::span<const int>(g.qubits.data(), 1));
      out.measurements_.emplace_back(g.qubits[0], g.clbit);
      continue;
    }
    ++out.source_gates_;
    const Matrix u = gate_matrix(g);
    if (g.qubits.size() == 1) {
      fuser.add_1q(g.qubits[0], u.data());
    } else {
      assert(g.qubits.size() == 2);
      fuser.add_2q(g.qubits[0], g.qubits[1], u.data());
    }
  }
  fuser.finish();
  return out;
}

std::vector<FusedOp> compile_ops(const Circuit& circuit,
                                 GateMatrixCache* matrices) {
  std::vector<FusedOp> out(circuit.size());
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& g = circuit.ops()[i];
    if (!is_unitary_gate(g.kind)) continue;
    const int k = static_cast<int>(g.qubits.size());
    assert(k == 1 || k == 2);
    if (matrices != nullptr) {
      out[i] = make_fused_op(matrices->get(g).data().data(), k, g.qubits[0],
                             k == 2 ? g.qubits[1] : -1);
    } else {
      const Matrix u = gate_matrix(g);
      out[i] = make_fused_op(u.data().data(), k, g.qubits[0],
                             k == 2 ? g.qubits[1] : -1);
    }
  }
  return out;
}

CompiledExecutable CompiledExecutable::compile(const Circuit& physical,
                                               GateMatrixCache* matrices) {
  CompiledExecutable exe;
  exe.lowered_ = lower_to_cx_basis(physical);
  exe.channels_ = compile_ops(exe.lowered_, matrices);
  exe.fused_compacted_ = std::make_shared<const CompiledProgram>(
      CompiledProgram::compile(exe.lowered_.compacted()));
  return exe;
}

Distribution ideal_distribution(const CompiledProgram& program) {
  if (program.measurements().empty()) {
    throw std::logic_error("ideal_distribution: circuit has no measurements");
  }
  Statevector sv(program.num_qubits());
  sv.run(program);
  return detail::distribution_from_amplitudes(
      sv.amplitudes(), program.num_clbits(), program.measurements());
}

std::shared_ptr<const CompiledProgram> CompiledProgramCache::fused(
    const Circuit& circuit) const {
  const std::uint64_t key = circuit_fingerprint(circuit);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = fused_.find(key); it != fused_.end()) return it->second;
  }
  // Compile outside the lock: deterministic, so a racing duplicate insert
  // just loses and its result is identical anyway.
  auto program =
      std::make_shared<const CompiledProgram>(CompiledProgram::compile(circuit));
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = fused_.emplace(key, std::move(program));
  if (inserted) {
    fused_order_.push_back(key);
    if (fused_.size() > kMaxEntries) {
      fused_.erase(fused_order_.front());
      fused_order_.erase(fused_order_.begin());
    }
  }
  return it->second;
}

std::shared_ptr<const CompiledExecutable> CompiledProgramCache::executable(
    const Circuit& physical, GateMatrixCache* matrices) const {
  const std::uint64_t key = circuit_fingerprint(physical);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = executables_.find(key); it != executables_.end()) {
      return it->second;
    }
  }
  auto exe = std::make_shared<const CompiledExecutable>(
      CompiledExecutable::compile(physical, matrices));
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = executables_.emplace(key, std::move(exe));
  if (inserted) {
    executables_order_.push_back(key);
    if (executables_.size() > kMaxEntries) {
      executables_.erase(executables_order_.front());
      executables_order_.erase(executables_order_.begin());
    }
  }
  return it->second;
}

std::size_t CompiledProgramCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fused_.size() + executables_.size();
}

}  // namespace qucp
