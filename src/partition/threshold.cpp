#include "partition/threshold.hpp"

#include <algorithm>
#include <stdexcept>

namespace qucp {

ThresholdSelection select_parallel_count(const Device& device,
                                         const ProgramShape& shape,
                                         int max_copies, double threshold,
                                         const Partitioner& partitioner) {
  if (max_copies < 1) {
    throw std::invalid_argument("select_parallel_count: max_copies < 1");
  }
  if (threshold < 0.0) {
    throw std::invalid_argument("select_parallel_count: negative threshold");
  }
  // Independent reference: the program alone on the empty device.
  const std::vector<ProgramShape> solo{shape};
  const auto solo_alloc = partitioner.allocate(device, solo);
  if (!solo_alloc) {
    throw std::runtime_error(
        "select_parallel_count: program does not fit on device");
  }
  const double independent_efs = (*solo_alloc)[0].efs.score;

  ThresholdSelection best;
  best.independent_efs = independent_efs;
  for (int m = 1; m <= max_copies; ++m) {
    const std::vector<ProgramShape> batch(static_cast<std::size_t>(m), shape);
    const auto alloc = partitioner.allocate(device, batch);
    if (!alloc) break;  // device exhausted
    double worst_delta = 0.0;
    for (const PartitionAssignment& a : *alloc) {
      worst_delta = std::max(worst_delta, a.efs.score - independent_efs);
    }
    if (m > 1 && worst_delta > threshold) break;
    best.num_circuits = m;
    best.assignments = *alloc;
    best.worst_delta = worst_delta;
  }
  return best;
}

}  // namespace qucp
