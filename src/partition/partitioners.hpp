#pragma once
// Qubit partitioners: QuCP (this paper), QuMC, QuCloud-style,
// MultiQC-style, and a naive first-fit baseline.
//
// All allocate connected, mutually-disjoint physical-qubit regions for a
// batch of programs. Programs are processed largest-first (qubits, then CX
// count), the order QuMC uses. QuCP and QuMC share the candidate
// generation + EFS machinery and differ only in where the crosstalk
// multiplier comes from: a flat sigma vs. SRB measurements — the paper's
// central comparison.

#include <memory>
#include <optional>
#include <string>

#include "circuit/circuit.hpp"
#include "partition/efs.hpp"

namespace qucp {

class CandidateIndex;     // partition/candidate_index.hpp
class AllocationSession;  // partition/candidate_index.hpp

/// Derive a program's partition requirements from its circuit.
[[nodiscard]] ProgramShape shape_of(const Circuit& circuit);

struct PartitionAssignment {
  std::vector<int> qubits;  ///< sorted physical qubits
  EfsBreakdown efs;         ///< score in its allocation context
};

class Partitioner {
 public:
  virtual ~Partitioner() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Allocate one partition per program, in the given order (callers sort
  /// with `allocation_order` first when emulating QuMC's largest-first
  /// policy). Returns nullopt when some program cannot be placed.
  ///
  /// `index` (optional) is a persistent per-device CandidateIndex that
  /// lets the candidate-based partitioners skip regenerating and rescoring
  /// everything outside the fringe of the growing allocation. Results are
  /// bit-identical with and without it (same partitions, same order, same
  /// EFS doubles — pinned by tests/test_allocator_golden.cpp); the index
  /// must have been built for `device`.
  [[nodiscard]] std::optional<std::vector<PartitionAssignment>> allocate(
      const Device& device, std::span<const ProgramShape> programs,
      const CandidateIndex* index = nullptr) const {
    return do_allocate(device, programs, index);
  }

  /// True when grow_one() can extend an indexed allocation one program at
  /// a time with results bit-identical to a fresh allocate() over the
  /// whole ordered batch (the candidate-based partitioners; Naive ignores
  /// the index and stays from-scratch).
  [[nodiscard]] virtual bool supports_incremental() const noexcept {
    return false;
  }

  /// Allocate `shape` as the NEXT program of an ongoing indexed
  /// allocation whose earlier commits live in `session`, without
  /// committing — callers commit the returned qubits on admission. Given
  /// a session that replayed commits for programs[0..n-1] in order, the
  /// result is bit-identical (same partition, same EFS doubles) to entry
  /// n of allocate(device, programs[0..n], index). Throws
  /// std::logic_error when !supports_incremental().
  [[nodiscard]] virtual std::optional<PartitionAssignment> grow_one(
      AllocationSession& session, const ProgramShape& shape) const;

 protected:
  [[nodiscard]] virtual std::optional<std::vector<PartitionAssignment>>
  do_allocate(const Device& device, std::span<const ProgramShape> programs,
              const CandidateIndex* index) const = 0;
};

/// Largest-first processing order (qubits desc, then 2q count desc, stable).
[[nodiscard]] std::vector<std::size_t> allocation_order(
    std::span<const ProgramShape> programs);

/// Best solo-partition EFS of one program shape on `device`: the score the
/// shape gets when it is allocated alone on an otherwise-empty chip. This
/// is the packer's §IV-B spill baseline and the fleet scheduler's
/// calibration-aware routing score (BestEfs routes a job to the device
/// where this number is lowest). nullopt when the shape cannot be placed
/// on the device at all. `index` (optional, must match `device`) reuses a
/// persistent candidate cache; the score is bit-identical either way.
[[nodiscard]] std::optional<double> solo_efs_score(
    const Device& device, const Partitioner& partitioner,
    const ProgramShape& shape, const CandidateIndex* index = nullptr);

/// QuCP: EFS-greedy with flat sigma crosstalk emulation. No SRB needed.
class QucpPartitioner final : public Partitioner {
 public:
  explicit QucpPartitioner(double sigma = 4.0) : policy_(sigma) {}
  [[nodiscard]] std::string name() const override { return "QuCP"; }
  [[nodiscard]] std::optional<std::vector<PartitionAssignment>> do_allocate(
      const Device& device, std::span<const ProgramShape> programs,
      const CandidateIndex* index) const override;
  [[nodiscard]] bool supports_incremental() const noexcept override {
    return true;
  }
  [[nodiscard]] std::optional<PartitionAssignment> grow_one(
      AllocationSession& session, const ProgramShape& shape) const override;
  [[nodiscard]] double sigma() const noexcept { return policy_.sigma(); }

 private:
  SigmaPolicy policy_;
};

/// QuMC: EFS-greedy with measured (SRB-estimated) per-pair crosstalk.
class QumcPartitioner final : public Partitioner {
 public:
  explicit QumcPartitioner(CrosstalkModel srb_estimates)
      : estimates_(std::move(srb_estimates)), policy_(estimates_) {}
  [[nodiscard]] std::string name() const override { return "QuMC"; }
  [[nodiscard]] std::optional<std::vector<PartitionAssignment>> do_allocate(
      const Device& device, std::span<const ProgramShape> programs,
      const CandidateIndex* index) const override;
  [[nodiscard]] bool supports_incremental() const noexcept override {
    return true;
  }
  [[nodiscard]] std::optional<PartitionAssignment> grow_one(
      AllocationSession& session, const ProgramShape& shape) const override;

 private:
  CrosstalkModel estimates_;
  EstimatePolicy policy_;
};

/// QuCloud-style: ranks candidates by qubit "fidelity degree"
/// (connectivity weighted by local gate fidelity) without crosstalk terms.
class QucloudPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "QuCloud"; }
  [[nodiscard]] std::optional<std::vector<PartitionAssignment>> do_allocate(
      const Device& device, std::span<const ProgramShape> programs,
      const CandidateIndex* index) const override;
  [[nodiscard]] bool supports_incremental() const noexcept override {
    return true;
  }
  [[nodiscard]] std::optional<PartitionAssignment> grow_one(
      AllocationSession& session, const ProgramShape& shape) const override;
};

/// MultiQC-style (Das et al.): picks the most reliable region by a
/// success-probability utility (product of gate/readout survivals).
class MultiqcPartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "MultiQC"; }
  [[nodiscard]] std::optional<std::vector<PartitionAssignment>> do_allocate(
      const Device& device, std::span<const ProgramShape> programs,
      const CandidateIndex* index) const override;
  [[nodiscard]] bool supports_incremental() const noexcept override {
    return true;
  }
  [[nodiscard]] std::optional<PartitionAssignment> grow_one(
      AllocationSession& session, const ProgramShape& shape) const override;
};

/// First-fit connected region by BFS from the lowest free index,
/// calibration-blind. Ablation baseline.
class NaivePartitioner final : public Partitioner {
 public:
  [[nodiscard]] std::string name() const override { return "Naive"; }
  [[nodiscard]] std::optional<std::vector<PartitionAssignment>> do_allocate(
      const Device& device, std::span<const ProgramShape> programs,
      const CandidateIndex* index) const override;
};

}  // namespace qucp
