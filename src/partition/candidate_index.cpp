#include "partition/candidate_index.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "partition/candidates.hpp"

namespace qucp {

namespace {

/// Static EFS components of a candidate, accumulated in efs_score's exact
/// summation order: edge errors (with the mult == 1 cap) in induced-edge
/// order, 1q and readout errors in partition order. Single definition on
/// purpose — the bit-identity contract with efs.cpp depends on every
/// cached/recomputed base using the identical float operations.
CandidateIndex::BaseScore compute_base(const Device& device,
                                       const std::vector<int>& part,
                                       const std::vector<int>& part_edges) {
  const Calibration& cal = device.calibration();
  CandidateIndex::BaseScore base;
  base.num_edges = static_cast<int>(part_edges.size());
  for (int e : part_edges) {
    base.edge_error_total += std::min(1.0, cal.cx_error[e] * 1.0);
  }
  for (int q : part) {
    base.q1_total += cal.q1_error[q];
    base.readout_sum += cal.readout_error[q];
  }
  return base;
}

}  // namespace

const CandidateIndex::PerK& CandidateIndex::per_k(int k) const {
  if (k <= 0) throw std::invalid_argument("CandidateIndex::per_k: k <= 0");
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cache_.find(k);
  if (it != cache_.end()) return *it->second;

  const Device& device = *device_;
  const Topology& topo = device.topology();
  const int n = topo.num_qubits();

  auto entry = std::make_unique<PerK>();
  entry->growth_of_start.assign(static_cast<std::size_t>(n), -1);

  // Empty-mask growths, deduplicated exactly like partition_candidates.
  const std::vector<char> usable(static_cast<std::size_t>(n), 1);
  std::vector<char> in_part(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<int>> grown(static_cast<std::size_t>(n));
  for (int start = 0; start < n; ++start) {
    std::vector<int> part =
        detail::grow_candidate(device, k, start, usable, in_part);
    if (static_cast<int>(part.size()) == k) {
      std::sort(part.begin(), part.end());
      grown[start] = std::move(part);
    }
  }
  std::vector<std::vector<int>> dedup;
  for (const auto& part : grown) {
    if (!part.empty()) dedup.push_back(part);
  }
  std::sort(dedup.begin(), dedup.end());
  dedup.erase(std::unique(dedup.begin(), dedup.end()), dedup.end());
  for (int start = 0; start < n; ++start) {
    if (grown[start].empty()) continue;  // component < k: fails always
    const auto it2 =
        std::lower_bound(dedup.begin(), dedup.end(), grown[start]);
    entry->growth_of_start[start] = static_cast<int>(it2 - dedup.begin());
  }
  entry->candidates = std::move(dedup);

  // Base scores, accumulated in efs_score's exact summation order: edge
  // errors in induced_edges (edge-id) order with the mult == 1 cap, 1q and
  // readout errors in partition (sorted) order.
  entry->base.resize(entry->candidates.size());
  entry->cand_edges.resize(entry->candidates.size());
  for (std::size_t i = 0; i < entry->candidates.size(); ++i) {
    entry->cand_edges[i] = topo.induced_edges(entry->candidates[i]);
    entry->base[i] =
        compute_base(device, entry->candidates[i], entry->cand_edges[i]);
  }

  auto [pos, inserted] = cache_.emplace(k, std::move(entry));
  assert(inserted);
  return *pos->second;
}

std::size_t CandidateIndex::sizes_cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::vector<int> CandidateIndex::cached_sizes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<int> sizes;
  sizes.reserve(cache_.size());
  for (const auto& [k, entry] : cache_) sizes.push_back(k);
  return sizes;
}

AllocationSession::AllocationSession(const CandidateIndex& index)
    : index_(&index) {
  const std::size_t n =
      static_cast<std::size_t>(index.device().topology().num_qubits());
  usable_.assign(n, 1);
  near1_.assign(n, 0);
  near2_.assign(n, 0);
  in_part_.assign(n, 0);
}

const std::vector<AllocationSession::Candidate>&
AllocationSession::candidates(int k) {
  const CandidateIndex::PerK& pk = index_->per_k(k);
  result_.clear();

  if (allocated_.empty()) {
    // Fast path: every cached growth is clean, and the cached candidate
    // list is already the deduplicated sorted answer.
    result_.reserve(pk.candidates.size());
    for (std::size_t i = 0; i < pk.candidates.size(); ++i) {
      result_.push_back({&pk.candidates[i], &pk.base[i], &pk.cand_edges[i]});
    }
    return result_;
  }

  const Device& device = index_->device();
  const int n = device.topology().num_qubits();
  if (quality_stale_) {
    detail::frontier_quality(device, usable_, conn_, err_);
    quality_stale_ = false;
  }
  regrown_.clear();
  regrown_.reserve(static_cast<std::size_t>(n));
  for (int start = 0; start < n; ++start) {
    if (!usable_[start]) continue;
    const int cached = pk.growth_of_start[start];
    if (cached < 0) continue;  // component < k under the empty mask
    const std::vector<int>& part = pk.candidates[cached];
    bool clean = true;
    for (int q : part) {
      if (near2_[q]) {
        clean = false;
        break;
      }
    }
    if (clean) {
      // No allocated qubit within the growth's radius-2 influence ball:
      // the greedy walk replays its empty-mask decisions verbatim.
      result_.push_back({&part, &pk.base[cached], &pk.cand_edges[cached]});
      continue;
    }
    std::vector<int> grown = detail::grow_candidate(
        device, k, start, usable_, in_part_, conn_.data(), err_.data());
    if (static_cast<int>(grown.size()) != k) continue;
    std::sort(grown.begin(), grown.end());
    regrown_.push_back(std::move(grown));  // reserved: pointers stay stable
    result_.push_back({&regrown_.back(), nullptr, nullptr});
  }

  std::sort(result_.begin(), result_.end(),
            [](const Candidate& a, const Candidate& b) {
              return *a.part < *b.part;
            });
  // Dedup runs of equal parts, preferring an entry that carries a cached
  // base (the base is a pure function of the part, so any survivor gives
  // identical scores).
  std::size_t unique = 0;
  for (std::size_t i = 0; i < result_.size();) {
    std::size_t j = i;
    std::size_t keep = i;
    while (j < result_.size() && *result_[j].part == *result_[i].part) {
      if (result_[j].base != nullptr && result_[keep].base == nullptr) {
        keep = j;
      }
      ++j;
    }
    result_[unique++] = result_[keep];
    i = j;
  }
  result_.resize(unique);
  return result_;
}

EfsBreakdown AllocationSession::score(const Candidate& cand,
                                      const ProgramShape& shape,
                                      const CrosstalkPolicy& policy) const {
  const std::vector<int>& part = *cand.part;
  if (static_cast<int>(part.size()) != shape.num_qubits) {
    throw std::invalid_argument("efs_score: partition size != program size");
  }
  if (shape.num_2q > 0 && part.size() < 2) {
    throw std::invalid_argument("efs_score: program needs an edge");
  }
  for (int q : part) {
    if (near1_[q]) {
      // Only a candidate touching the distance-1 fringe can pick up a
      // crosstalk flag: replay efs_score's edge loop against the
      // session-maintained allocated-edge list.
      return fringe_score(cand, shape, policy);
    }
  }

  // Clean candidate: every edge keeps multiplier 1 and no edge is flagged,
  // so the score is the cached static base (recomputed on the spot for
  // fringe-regrown parts).
  const Device& device = index_->device();
  CandidateIndex::BaseScore local;
  const CandidateIndex::BaseScore* base = cand.base;
  if (base == nullptr) {
    local = compute_base(device, part, device.topology().induced_edges(part));
    base = &local;
  }
  EfsBreakdown out;
  if (base->num_edges > 0) {
    out.avg_2q = base->edge_error_total / static_cast<double>(base->num_edges);
  }
  out.avg_1q = base->q1_total / static_cast<double>(part.size());
  out.readout_sum = base->readout_sum;
  out.score = out.avg_2q * shape.num_2q + out.avg_1q * shape.num_1q +
              out.readout_sum;
  return out;
}

EfsBreakdown AllocationSession::fringe_score(
    const Candidate& cand, const ProgramShape& shape,
    const CrosstalkPolicy& policy) const {
  // efs_score's scoring loops verbatim (same accumulation order, same
  // operations), minus the per-call validation scans whose outcomes are
  // fixed for session-generated candidates: the partition is connected by
  // construction, the allocation is in range, and the two sets are
  // disjoint because candidates avoid allocated qubits.
  const Device& device = index_->device();
  const Topology& topo = device.topology();
  const Calibration& cal = device.calibration();
  const std::vector<int>& part = *cand.part;

  std::vector<int> local_edges;
  const std::vector<int>* part_edges = cand.edges;
  if (part_edges == nullptr) {
    local_edges = topo.induced_edges(part);
    part_edges = &local_edges;
  }

  EfsBreakdown out;
  if (!part_edges->empty()) {
    double total = 0.0;
    for (int e : *part_edges) {
      double mult = 1.0;
      bool flagged = false;
      const Edge& ee = topo.edges()[e];
      for (int f : alloc_edges_) {
        const Edge& fe = topo.edges()[f];
        assert(!ee.shares_qubit(fe));
        const int d = std::min(
            {topo.distance(ee.a, fe.a), topo.distance(ee.a, fe.b),
             topo.distance(ee.b, fe.a), topo.distance(ee.b, fe.b)});
        if (d == 1) {
          mult = std::max(mult, policy.multiplier(e, f));
          flagged = true;
        }
      }
      if (flagged) out.crosstalk_edges.push_back(e);
      total += std::min(1.0, cal.cx_error[e] * mult);
    }
    out.avg_2q = total / static_cast<double>(part_edges->size());
  }

  // The 1q/readout sums are allocation-independent: cached bases carry
  // them from index-build time, regrown parts recompute them on the spot.
  CandidateIndex::BaseScore local;
  const CandidateIndex::BaseScore* base = cand.base;
  if (base == nullptr) {
    local = compute_base(device, part, *part_edges);
    base = &local;
  }
  out.avg_1q = base->q1_total / static_cast<double>(part.size());
  out.readout_sum = base->readout_sum;
  out.score = out.avg_2q * shape.num_2q + out.avg_1q * shape.num_1q +
              out.readout_sum;
  return out;
}

void AllocationSession::commit(std::span<const int> partition) {
  const Topology& topo = index_->device().topology();
  for (int q : partition) {
    assert(q >= 0 && q < topo.num_qubits() && usable_[q]);
    allocated_.push_back(q);
    usable_[q] = 0;
    near1_[q] = 1;
    near2_[q] = 1;
    for (int nb : topo.neighbors(q)) {
      near1_[nb] = 1;
      near2_[nb] = 1;
      for (int nb2 : topo.neighbors(nb)) near2_[nb2] = 1;
    }
  }
  // Edge-id order, exactly what efs_score's induced_edges(allocated) scan
  // would produce for the grown allocation.
  alloc_edges_ = topo.induced_edges(allocated_);
  quality_stale_ = true;
}

}  // namespace qucp
