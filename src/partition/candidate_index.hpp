#pragma once
// CandidateIndex: persistent, incremental EFS candidate cache.
//
// Candidate generation + EFS scoring used to be recomputed from scratch by
// every efs_greedy_allocate / solo_efs call, which made the allocator the
// per-batch floor of the ExecutionService (~55 us/batch on toronto27).
// Both computations are almost entirely allocation-independent:
//
//   * The greedy growth from a start qubit reads the usable mask only
//     within hop distance 2 of the part it grows (frontier membership at
//     distance 1; connectivity counts and local edge errors at distance 2).
//     A growth whose radius-2 ball avoids every allocated qubit therefore
//     reproduces its empty-mask result verbatim, and a growth that failed
//     under the empty mask (connected component < k) fails under any mask.
//   * An EFS crosstalk flag needs a partition edge within hop distance 1
//     of an allocated edge. A candidate whose qubits all sit at distance
//     >= 2 from every allocated qubit scores exactly its static base:
//     plain average CX error, average 1q error, readout sum.
//
// The index is built once per Device (a Backend owns one, like its
// GateMatrixCache) and caches, per partition size k: the per-start
// empty-mask growths, the deduplicated candidate list, and per-candidate
// base scores accumulated in the same floating-point order efs_score uses.
// An AllocationSession then replays one allocate() call: it tracks the
// allocated set plus distance-1/-2 dirty masks, reuses cached growths and
// base scores for the clean majority, and falls back to the reference
// grow/score code only on the dirty fringe — producing results that are
// bit-identical (same candidates, same order, same doubles) to the
// non-indexed path, which tests/test_allocator_golden.cpp pins.
//
// Thread-safety: per-k entries are built lazily under a mutex and
// immutable afterwards, so concurrent service workers share one index;
// each AllocationSession is single-caller scratch.

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "partition/efs.hpp"

namespace qucp {

class CandidateIndex {
 public:
  /// Static (allocation-independent) EFS components of one candidate,
  /// accumulated in efs_score's exact summation order.
  struct BaseScore {
    double edge_error_total = 0.0;  ///< sum of min(1, cx_error) over edges
    int num_edges = 0;              ///< induced partition-internal edges
    double q1_total = 0.0;          ///< sum of 1q errors over the qubits
    double readout_sum = 0.0;       ///< sum of readout errors
  };

  /// Immutable per-partition-size cache entry.
  struct PerK {
    /// candidates[] index of the completed empty-mask growth per start
    /// qubit, -1 when the start's connected component has < k qubits (in
    /// which case the growth fails under every allocation mask).
    std::vector<int> growth_of_start;
    std::vector<std::vector<int>> candidates;  ///< sorted parts, set order
    std::vector<BaseScore> base;               ///< parallel to candidates
    /// Induced internal edge ids per candidate (edge-id order, exactly
    /// what topology().induced_edges returns), parallel to candidates.
    std::vector<std::vector<int>> cand_edges;
  };

  /// The device must outlive the index (a Backend owns both).
  explicit CandidateIndex(const Device& device) : device_(&device) {}

  CandidateIndex(const CandidateIndex&) = delete;
  CandidateIndex& operator=(const CandidateIndex&) = delete;

  [[nodiscard]] const Device& device() const noexcept { return *device_; }

  /// Per-size cache entry, built on first use. The reference stays valid
  /// for the index's lifetime. Throws std::invalid_argument for k <= 0
  /// (mirroring partition_candidates).
  [[nodiscard]] const PerK& per_k(int k) const;

  /// Partition sizes cached so far (for stats/tests).
  [[nodiscard]] std::size_t sizes_cached() const;

  /// The cached partition sizes themselves, ascending. Used by
  /// Backend::recalibrate to warm-build a replacement index off-lane with
  /// the same working set the retiring index accumulated, so the first
  /// dispatch cycle on a fresh calibration epoch pays no per_k builds.
  [[nodiscard]] std::vector<int> cached_sizes() const;

 private:
  const Device* device_;
  mutable std::mutex mutex_;
  mutable std::map<int, std::unique_ptr<PerK>> cache_;
};

/// Replays one allocate() call against a CandidateIndex: candidates() and
/// score() are bit-identical to partition_candidates() / efs_score() under
/// the allocation committed so far, but reuse the index for everything
/// outside the dirty fringe of the allocated qubits. Cheap to construct;
/// not thread-safe (one session per allocate call).
class AllocationSession {
 public:
  struct Candidate {
    /// Sorted qubit set; points into the shared index or session scratch,
    /// valid until the next candidates() call.
    const std::vector<int>* part = nullptr;
    /// Cached base score; null for fringe candidates regrown this session.
    const CandidateIndex::BaseScore* base = nullptr;
    /// Cached induced internal edges; null for regrown candidates.
    const std::vector<int>* edges = nullptr;
  };

  explicit AllocationSession(const CandidateIndex& index);

  /// Candidate partitions of size k avoiding the committed allocation —
  /// the same sets in the same (lexicographic) order as
  /// partition_candidates(device, k, allocated()). The returned reference
  /// is invalidated by the next candidates() call.
  [[nodiscard]] const std::vector<Candidate>& candidates(int k);

  /// EFS of `cand` in the current allocation context; bit-identical to
  /// efs_score(device, *cand.part, shape, allocated(), policy).
  [[nodiscard]] EfsBreakdown score(const Candidate& cand,
                                   const ProgramShape& shape,
                                   const CrosstalkPolicy& policy) const;

  /// Grant `partition` (disjoint from the current allocation) and dirty
  /// its distance-1/-2 fringe.
  void commit(std::span<const int> partition);

  [[nodiscard]] std::span<const int> allocated() const noexcept {
    return allocated_;
  }

  /// The index this session replays against (and through it the device).
  [[nodiscard]] const CandidateIndex& index() const noexcept {
    return *index_;
  }

 private:
  /// Fringe scoring: efs_score's exact arithmetic against the session's
  /// incrementally-maintained allocated-edge list, skipping the per-call
  /// mask/connectivity setup the reference recomputes per candidate.
  [[nodiscard]] EfsBreakdown fringe_score(const Candidate& cand,
                                          const ProgramShape& shape,
                                          const CrosstalkPolicy& policy) const;

  const CandidateIndex* index_;
  std::vector<int> allocated_;   ///< committed qubits, commit order
  std::vector<int> alloc_edges_; ///< induced_edges(allocated_), edge-id order
  std::vector<char> usable_;     ///< !allocated, per device qubit
  std::vector<char> near1_;      ///< within hop distance 1 of allocation
  std::vector<char> near2_;      ///< within hop distance 2 of allocation
  std::vector<char> in_part_;    ///< grow_candidate scratch (all zero)
  /// Per-qubit frontier quality under usable_ (grow_candidate's conn/err
  /// terms, pure functions of the mask), rebuilt lazily after commits.
  std::vector<int> conn_;
  std::vector<double> err_;
  bool quality_stale_ = true;
  std::vector<std::vector<int>> regrown_;  ///< fringe growths, this query
  std::vector<Candidate> result_;
};

}  // namespace qucp
