#pragma once
// Estimated Fidelity Score (paper Eq. 1) and crosstalk policies.
//
//   EFS = Avg2q(cross) * #2q + Avg1q * #1q + sum_{Qi in P} R_Qi
//
// EFS estimates the *error* a program accumulates on a partition (lower is
// better, despite the name). Avg2q(cross) averages CX errors over the
// partition's internal edges, where edges one-hop away from already-
// allocated edges ("q_crosstalk") have their error inflated by a crosstalk
// policy:
//   - SigmaPolicy       : fixed sigma multiplier (QuCP — no characterization)
//   - EstimatePolicy    : per-pair multipliers from SRB estimates (QuMC)
//   - NoCrosstalkPolicy : ignore crosstalk (QuCloud/MultiQC-style baselines)

#include <memory>
#include <span>
#include <vector>

#include "hardware/device.hpp"

namespace qucp {

/// What a program needs from a partition; derived from its circuit.
struct ProgramShape {
  int num_qubits = 0;
  int num_2q = 0;  ///< two-qubit gate count
  int num_1q = 0;  ///< single-qubit gate count
};

/// Crosstalk multiplier applied to a candidate edge adjacent (one-hop) to
/// an allocated edge.
class CrosstalkPolicy {
 public:
  virtual ~CrosstalkPolicy() = default;
  /// Multiplier (>= 1) for candidate edge `cand_edge` given allocated
  /// neighbor edge `alloc_edge` (device edge ids).
  [[nodiscard]] virtual double multiplier(int cand_edge,
                                          int alloc_edge) const = 0;
};

class NoCrosstalkPolicy final : public CrosstalkPolicy {
 public:
  [[nodiscard]] double multiplier(int, int) const override { return 1.0; }
};

/// QuCP: every one-hop conflict costs a flat sigma (paper sets sigma = 4).
class SigmaPolicy final : public CrosstalkPolicy {
 public:
  explicit SigmaPolicy(double sigma);
  [[nodiscard]] double multiplier(int, int) const override { return sigma_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double sigma_;
};

/// QuMC: per-pair multipliers measured by SRB (or any CrosstalkModel).
class EstimatePolicy final : public CrosstalkPolicy {
 public:
  explicit EstimatePolicy(const CrosstalkModel& estimates)
      : estimates_(&estimates) {}
  [[nodiscard]] double multiplier(int cand_edge,
                                  int alloc_edge) const override {
    return estimates_->gamma(cand_edge, alloc_edge);
  }

 private:
  const CrosstalkModel* estimates_;
};

/// EFS evaluation detail for reporting and tests.
struct EfsBreakdown {
  double avg_2q = 0.0;       ///< crosstalk-adjusted average CX error
  double avg_1q = 0.0;
  double readout_sum = 0.0;
  double score = 0.0;        ///< Eq. 1 total
  std::vector<int> crosstalk_edges;  ///< candidate edges flagged one-hop
};

/// Score a candidate partition for a program. `allocated` holds qubits
/// already granted to co-running programs (empty for the first program).
/// The partition must be a connected subset of unallocated device qubits
/// with exactly shape.num_qubits members.
[[nodiscard]] EfsBreakdown efs_score(const Device& device,
                                     std::span<const int> partition,
                                     const ProgramShape& shape,
                                     std::span<const int> allocated,
                                     const CrosstalkPolicy& policy);

}  // namespace qucp
