#include "partition/candidates.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace qucp {

namespace {

/// Average error of edges incident to q that stay inside `usable` (flat
/// boolean membership per device qubit — the partitioner is on the
/// service's per-batch path, so no per-query set lookups).
double local_edge_error(const Device& device, int q,
                        const std::vector<char>& usable) {
  const Topology& topo = device.topology();
  double total = 0.0;
  int count = 0;
  for (int nb : topo.neighbors(q)) {
    if (!usable[nb]) continue;
    total += device.cx_error(q, nb);
    ++count;
  }
  return count == 0 ? 1.0 : total / count;
}

}  // namespace

namespace detail {

std::vector<int> grow_candidate(const Device& device, int k, int start,
                                const std::vector<char>& usable,
                                std::vector<char>& in_part,
                                const int* conn_cache,
                                const double* err_cache) {
  const Topology& topo = device.topology();
  std::vector<int> part{start};
  in_part[start] = 1;
  while (static_cast<int>(part.size()) < k) {
    // Frontier: usable neighbors of the current subgraph.
    int best = -1;
    int best_conn = -1;
    double best_err = 2.0;
    for (int q : part) {
      for (int nb : topo.neighbors(q)) {
        if (in_part[nb] || !usable[nb]) continue;
        // Quality: connections into the usable region (descending), then
        // local error (ascending), then index for determinism. Both terms
        // are pure functions of the usable mask, so a caller-provided
        // cache yields the identical comparison sequence.
        int conn;
        double err;
        if (conn_cache != nullptr) {
          conn = conn_cache[nb];
          err = err_cache[nb];
        } else {
          conn = 0;
          for (int nb2 : topo.neighbors(nb)) {
            if (usable[nb2]) ++conn;
          }
          err = local_edge_error(device, nb, usable);
        }
        if (conn > best_conn ||
            (conn == best_conn && err < best_err - 1e-15) ||
            (conn == best_conn && std::abs(err - best_err) <= 1e-15 &&
             nb < best)) {
          best = nb;
          best_conn = conn;
          best_err = err;
        }
      }
    }
    if (best < 0) break;  // region exhausted; candidate unusable
    part.push_back(best);
    in_part[best] = 1;
  }
  for (int q : part) in_part[q] = 0;
  return part;
}

void frontier_quality(const Device& device, const std::vector<char>& usable,
                      std::vector<int>& conn, std::vector<double>& err) {
  const Topology& topo = device.topology();
  const int n = topo.num_qubits();
  conn.assign(static_cast<std::size_t>(n), 0);
  err.assign(static_cast<std::size_t>(n), 1.0);
  for (int q = 0; q < n; ++q) {
    int count = 0;
    for (int nb : topo.neighbors(q)) {
      if (usable[nb]) ++count;
    }
    conn[q] = count;
    err[q] = local_edge_error(device, q, usable);
  }
}

}  // namespace detail

std::vector<std::vector<int>> partition_candidates(
    const Device& device, int k, std::span<const int> allocated) {
  if (k <= 0) throw std::invalid_argument("partition_candidates: k <= 0");
  const Topology& topo = device.topology();
  const int n = topo.num_qubits();
  std::vector<char> usable(n, 1);
  for (int q : allocated) {
    if (q < 0 || q >= n) {
      throw std::out_of_range("partition_candidates: allocated qubit out of range");
    }
    usable[q] = 0;
  }
  std::vector<char> in_part(n, 0);
  std::set<std::vector<int>> dedup;
  for (int start = 0; start < n; ++start) {
    if (!usable[start]) continue;
    std::vector<int> part = detail::grow_candidate(device, k, start, usable,
                                                   in_part);
    if (static_cast<int>(part.size()) == k) {
      std::sort(part.begin(), part.end());
      dedup.insert(std::move(part));
    }
  }
  return {dedup.begin(), dedup.end()};
}

std::vector<std::vector<int>> enumerate_connected_subsets(
    const Topology& topo, int k, std::span<const int> allocated,
    std::size_t max_count) {
  if (k <= 0) {
    throw std::invalid_argument("enumerate_connected_subsets: k <= 0");
  }
  std::set<int> blocked(allocated.begin(), allocated.end());
  std::set<std::vector<int>> found;

  // Standard connected-subgraph enumeration: expand only through qubits
  // greater than the anchor to avoid duplicates, then dedup defensively.
  for (int anchor = 0; anchor < topo.num_qubits(); ++anchor) {
    if (blocked.count(anchor)) continue;
    std::vector<std::vector<int>> stack{{anchor}};
    while (!stack.empty()) {
      std::vector<int> cur = std::move(stack.back());
      stack.pop_back();
      if (static_cast<int>(cur.size()) == k) {
        std::vector<int> sorted = cur;
        std::sort(sorted.begin(), sorted.end());
        found.insert(std::move(sorted));
        if (found.size() > max_count) {
          throw std::runtime_error(
              "enumerate_connected_subsets: bound exceeded");
        }
        continue;
      }
      std::set<int> in_cur(cur.begin(), cur.end());
      std::set<int> frontier;
      for (int q : cur) {
        for (int nb : topo.neighbors(q)) {
          if (nb > anchor && !in_cur.count(nb) && !blocked.count(nb)) {
            frontier.insert(nb);
          }
        }
      }
      for (int nb : frontier) {
        std::vector<int> next = cur;
        next.push_back(nb);
        stack.push_back(std::move(next));
      }
    }
  }
  return {found.begin(), found.end()};
}

}  // namespace qucp
