#pragma once
// Candidate partition generation (QuMC's heuristic).
//
// For a k-qubit program, grow a connected subgraph greedily from every
// available physical qubit: at each step add the frontier neighbor with the
// best quality (connectivity into the available region first, then lower
// local error). Deduplicated candidate sets are then ranked by EFS by the
// partitioners. An exhaustive enumerator (bounded) backs property tests.

#include <span>
#include <vector>

#include "hardware/device.hpp"

namespace qucp {

/// Greedy candidates: one attempt per available start qubit, deduplicated,
/// each a sorted connected qubit set of size k avoiding `allocated`.
[[nodiscard]] std::vector<std::vector<int>> partition_candidates(
    const Device& device, int k, std::span<const int> allocated);

namespace detail {

/// One greedy growth from `start` under the usable mask — the exact
/// per-start step of partition_candidates, exposed so CandidateIndex can
/// regrow single starts without rerunning the whole sweep. Returns the
/// part in growth order (not sorted); size < k means the region around
/// `start` was exhausted. `in_part` is caller-owned scratch of
/// num_qubits() zeros; it is restored to all-zero before returning.
///
/// `conn_cache` / `err_cache` (optional, both or neither) hold the
/// per-qubit frontier quality under `usable` — usable-neighbor count and
/// local_edge_error — which depend only on the mask, not on the growing
/// part. AllocationSession precomputes them once per allocation state so
/// regrowth makes O(1) lookups; passing nullptr recomputes inline. The
/// grown part is identical either way.
[[nodiscard]] std::vector<int> grow_candidate(
    const Device& device, int k, int start, const std::vector<char>& usable,
    std::vector<char>& in_part, const int* conn_cache = nullptr,
    const double* err_cache = nullptr);

/// Fill `conn` / `err` (resized to num_qubits()) with the per-qubit
/// frontier quality grow_candidate computes under `usable`: the usable
/// neighbor count and the average usable-incident CX error.
void frontier_quality(const Device& device, const std::vector<char>& usable,
                      std::vector<int>& conn, std::vector<double>& err);

}  // namespace detail

/// All connected subsets of size k avoiding `allocated`, up to `max_count`
/// (throws std::runtime_error if the bound is exceeded). For tests and
/// small devices.
[[nodiscard]] std::vector<std::vector<int>> enumerate_connected_subsets(
    const Topology& topo, int k, std::span<const int> allocated,
    std::size_t max_count = 200000);

}  // namespace qucp
