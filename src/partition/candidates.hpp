#pragma once
// Candidate partition generation (QuMC's heuristic).
//
// For a k-qubit program, grow a connected subgraph greedily from every
// available physical qubit: at each step add the frontier neighbor with the
// best quality (connectivity into the available region first, then lower
// local error). Deduplicated candidate sets are then ranked by EFS by the
// partitioners. An exhaustive enumerator (bounded) backs property tests.

#include <span>
#include <vector>

#include "hardware/device.hpp"

namespace qucp {

/// Greedy candidates: one attempt per available start qubit, deduplicated,
/// each a sorted connected qubit set of size k avoiding `allocated`.
[[nodiscard]] std::vector<std::vector<int>> partition_candidates(
    const Device& device, int k, std::span<const int> allocated);

/// All connected subsets of size k avoiding `allocated`, up to `max_count`
/// (throws std::runtime_error if the bound is exceeded). For tests and
/// small devices.
[[nodiscard]] std::vector<std::vector<int>> enumerate_connected_subsets(
    const Topology& topo, int k, std::span<const int> allocated,
    std::size_t max_count = 200000);

}  // namespace qucp
