#pragma once
// Fidelity-threshold selection of the parallel circuit count (paper §IV-B).
//
// QuMC/QuCP estimate, via EFS, how much worse the i-th simultaneous copy's
// partition is compared with running the program alone on the whole chip.
// A threshold tau on that EFS difference decides how many circuits execute
// simultaneously: tau = 0 forces independent execution; larger tau admits
// more co-runners (more throughput, less fidelity) — the Fig. 4 trade-off.

#include <optional>

#include "partition/partitioners.hpp"

namespace qucp {

struct ThresholdSelection {
  int num_circuits = 0;  ///< chosen number of simultaneous copies
  std::vector<PartitionAssignment> assignments;  ///< one per copy
  double independent_efs = 0.0;  ///< EFS of the best solo partition
  double worst_delta = 0.0;      ///< max EFS_i - independent_efs accepted
};

/// Pick the largest m <= max_copies such that every copy's EFS exceeds the
/// solo-best EFS by at most `threshold`. At least one copy always runs.
[[nodiscard]] ThresholdSelection select_parallel_count(
    const Device& device, const ProgramShape& shape, int max_copies,
    double threshold, const Partitioner& partitioner);

}  // namespace qucp
