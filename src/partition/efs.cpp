#include "partition/efs.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace qucp {

SigmaPolicy::SigmaPolicy(double sigma) : sigma_(sigma) {
  if (sigma < 1.0) {
    throw std::invalid_argument("SigmaPolicy: sigma must be >= 1");
  }
}

EfsBreakdown efs_score(const Device& device, std::span<const int> partition,
                       const ProgramShape& shape,
                       std::span<const int> allocated,
                       const CrosstalkPolicy& policy) {
  const Topology& topo = device.topology();
  const Calibration& cal = device.calibration();
  if (static_cast<int>(partition.size()) != shape.num_qubits) {
    throw std::invalid_argument("efs_score: partition size != program size");
  }
  if (!topo.is_connected_subset(partition)) {
    throw std::invalid_argument("efs_score: partition not connected");
  }
  std::vector<char> alloc_mask(static_cast<std::size_t>(topo.num_qubits()), 0);
  for (int q : allocated) {
    if (q < 0 || q >= topo.num_qubits()) {
      throw std::out_of_range("efs_score: allocated qubit out of range");
    }
    alloc_mask[q] = 1;
  }
  for (int q : partition) {
    if (alloc_mask[q]) {
      throw std::invalid_argument("efs_score: partition overlaps allocation");
    }
  }
  if (shape.num_2q > 0 && partition.size() < 2) {
    throw std::invalid_argument("efs_score: program needs an edge");
  }

  EfsBreakdown out;
  // Avg2q(cross): average CX error over partition-internal edges, with
  // q_crosstalk edges (one-hop from an allocated edge) inflated.
  const std::vector<int> part_edges = topo.induced_edges(partition);
  const std::vector<int> alloc_edges = topo.induced_edges(allocated);
  if (!part_edges.empty()) {
    double total = 0.0;
    for (int e : part_edges) {
      double mult = 1.0;
      bool flagged = false;
      const Edge& ee = topo.edges()[e];
      for (int f : alloc_edges) {
        const Edge& fe = topo.edges()[f];
        // Unreachable shared-qubit case: the overlap validation above
        // guarantees partition and allocation are disjoint qubit sets, so
        // a partition-internal edge can never share an endpoint with an
        // allocated edge (tests/test_efs.cpp pins the invariant).
        assert(!ee.shares_qubit(fe));
        const int d = std::min(
            {topo.distance(ee.a, fe.a), topo.distance(ee.a, fe.b),
             topo.distance(ee.b, fe.a), topo.distance(ee.b, fe.b)});
        if (d == 1) {
          mult = std::max(mult, policy.multiplier(e, f));
          flagged = true;
        }
      }
      if (flagged) out.crosstalk_edges.push_back(e);
      total += std::min(1.0, cal.cx_error[e] * mult);
    }
    out.avg_2q = total / static_cast<double>(part_edges.size());
  }

  double q1_total = 0.0;
  for (int q : partition) {
    q1_total += cal.q1_error[q];
    out.readout_sum += cal.readout_error[q];
  }
  out.avg_1q = q1_total / static_cast<double>(partition.size());

  out.score = out.avg_2q * shape.num_2q + out.avg_1q * shape.num_1q +
              out.readout_sum;
  return out;
}

}  // namespace qucp
