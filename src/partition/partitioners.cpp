#include "partition/partitioners.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>
#include <stdexcept>

#include "partition/candidate_index.hpp"
#include "partition/candidates.hpp"

namespace qucp {

ProgramShape shape_of(const Circuit& circuit) {
  ProgramShape shape;
  shape.num_qubits = static_cast<int>(circuit.active_qubits().size());
  shape.num_2q = circuit.two_qubit_count();
  shape.num_1q = circuit.gate_count() - circuit.two_qubit_count();
  return shape;
}

std::vector<std::size_t> allocation_order(
    std::span<const ProgramShape> programs) {
  std::vector<std::size_t> order(programs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (programs[a].num_qubits != programs[b].num_qubits) {
                       return programs[a].num_qubits > programs[b].num_qubits;
                     }
                     return programs[a].num_2q > programs[b].num_2q;
                   });
  return order;
}

std::optional<double> solo_efs_score(const Device& device,
                                     const Partitioner& partitioner,
                                     const ProgramShape& shape,
                                     const CandidateIndex* index) {
  const ProgramShape shapes[] = {shape};
  const auto alloc = partitioner.allocate(device, shapes, index);
  if (!alloc) return std::nullopt;
  return (*alloc)[0].efs.score;
}

namespace {

/// One grow step of the EFS-greedy allocation against a session: pick the
/// lowest-EFS candidate in the current allocation context, without
/// committing. The indexed allocate loop and Partitioner::grow_one both
/// call this, so the incremental admission path replays the exact
/// decision (and floating-point) stream of a fresh allocate by
/// construction.
std::optional<PartitionAssignment> efs_greedy_grow_one(
    AllocationSession& session, const ProgramShape& shape,
    const CrosstalkPolicy& policy) {
  const auto& candidates = session.candidates(shape.num_qubits);
  bool found = false;
  PartitionAssignment current;
  double best_score = 0.0;
  for (const AllocationSession::Candidate& cand : candidates) {
    EfsBreakdown efs = session.score(cand, shape, policy);
    if (!found || efs.score < best_score) {
      current = {*cand.part, std::move(efs)};
      found = true;
      best_score = current.efs.score;
    }
  }
  if (!found) return std::nullopt;
  return current;
}

/// Shared EFS-greedy allocation used by QuCP and QuMC. The reference
/// (index == nullptr) path regenerates candidates and rescores everything
/// per program; the indexed path replays the identical decisions through
/// an AllocationSession, touching only the fringe of the allocation.
std::optional<std::vector<PartitionAssignment>> efs_greedy_allocate(
    const Device& device, std::span<const ProgramShape> programs,
    const CrosstalkPolicy& policy, const CandidateIndex* index) {
  std::vector<PartitionAssignment> result(programs.size());

  if (index != nullptr) {
    AllocationSession session(*index);
    for (std::size_t idx = 0; idx < programs.size(); ++idx) {
      auto current = efs_greedy_grow_one(session, programs[idx], policy);
      if (!current) return std::nullopt;
      session.commit(current->qubits);
      result[idx] = std::move(*current);
    }
    return result;
  }

  std::vector<int> allocated;
  for (std::size_t idx = 0; idx < programs.size(); ++idx) {
    const ProgramShape& shape = programs[idx];
    const auto candidates =
        partition_candidates(device, shape.num_qubits, allocated);
    const PartitionAssignment* best = nullptr;
    PartitionAssignment current;
    double best_score = 0.0;
    for (const auto& cand : candidates) {
      EfsBreakdown efs = efs_score(device, cand, shape, allocated, policy);
      if (best == nullptr || efs.score < best_score) {
        current = {cand, std::move(efs)};
        best = &current;
        best_score = current.efs.score;
      }
    }
    if (best == nullptr) return std::nullopt;
    allocated.insert(allocated.end(), current.qubits.begin(),
                     current.qubits.end());
    result[idx] = std::move(current);
  }
  return result;
}

/// Score-based allocation for calibration-aware, crosstalk-blind baselines.
/// The index accelerates candidate generation only; each method's own
/// ranking runs unchanged, and the chosen region's EFS breakdown comes
/// from the reference efs_score either way.
/// One grow step of the score-based allocation (QuCloud/MultiQC) against
/// a session, without committing — shared with Partitioner::grow_one like
/// efs_greedy_grow_one above.
template <typename ScoreFn>
std::optional<PartitionAssignment> score_greedy_grow_one(
    AllocationSession& session, const ProgramShape& shape, ScoreFn score) {
  const NoCrosstalkPolicy no_xtalk;
  const Device& device = session.index().device();
  const auto& candidates = session.candidates(shape.num_qubits);
  bool found = false;
  std::vector<int> best_cand;
  double best_score = 0.0;
  for (const AllocationSession::Candidate& cand : candidates) {
    const double s = score(device, *cand.part);
    if (!found || s > best_score) {
      best_cand = *cand.part;
      best_score = s;
      found = true;
    }
  }
  if (!found) return std::nullopt;
  PartitionAssignment assignment;
  assignment.qubits = best_cand;
  assignment.efs =
      efs_score(device, best_cand, shape, session.allocated(), no_xtalk);
  return assignment;
}

template <typename ScoreFn>
std::optional<std::vector<PartitionAssignment>> score_greedy_allocate(
    const Device& device, std::span<const ProgramShape> programs,
    ScoreFn score /* higher is better */, const CandidateIndex* index) {
  const NoCrosstalkPolicy no_xtalk;
  std::vector<PartitionAssignment> result(programs.size());

  if (index != nullptr) {
    AllocationSession session(*index);
    for (std::size_t idx = 0; idx < programs.size(); ++idx) {
      auto assignment = score_greedy_grow_one(session, programs[idx], score);
      if (!assignment) return std::nullopt;
      session.commit(assignment->qubits);
      result[idx] = std::move(*assignment);
    }
    return result;
  }

  std::vector<int> allocated;
  for (std::size_t idx = 0; idx < programs.size(); ++idx) {
    const ProgramShape& shape = programs[idx];
    const auto candidates =
        partition_candidates(device, shape.num_qubits, allocated);
    bool found = false;
    std::vector<int> best_cand;
    double best_score = 0.0;
    for (const auto& cand : candidates) {
      const double s = score(device, cand);
      if (!found || s > best_score) {
        best_cand = cand;
        best_score = s;
        found = true;
      }
    }
    if (!found) return std::nullopt;
    PartitionAssignment assignment;
    assignment.qubits = best_cand;
    assignment.efs =
        efs_score(device, best_cand, shape, allocated, no_xtalk);
    allocated.insert(allocated.end(), best_cand.begin(), best_cand.end());
    result[idx] = std::move(assignment);
  }
  return result;
}

/// Fidelity degree of qubit q: sum over incident edges of (1 - cx error),
/// penalized by readout error — QuCloud's CMR-style heuristic. Candidates
/// arrive sorted, so membership is a binary search, not a per-call set.
double qucloud_score(const Device& dev, const std::vector<int>& cand) {
  double total = 0.0;
  for (int q : cand) {
    double fd = 0.0;
    for (int nb : dev.topology().neighbors(q)) {
      if (std::binary_search(cand.begin(), cand.end(), nb)) {
        fd += 1.0 - dev.cx_error(q, nb);
      }
    }
    total += fd - dev.readout_error(q);
  }
  return total;
}

/// Region utility: product of edge and readout survival probabilities
/// (log-sum for numeric stability) — Das et al.'s reliability ranking.
double multiqc_score(const Device& dev, const std::vector<int>& cand) {
  double log_survival = 0.0;
  for (int e : dev.topology().induced_edges(cand)) {
    log_survival += std::log1p(-dev.calibration().cx_error[e]);
  }
  for (int q : cand) {
    log_survival += std::log1p(-dev.readout_error(q));
  }
  return log_survival;
}

}  // namespace

std::optional<PartitionAssignment> Partitioner::grow_one(
    AllocationSession& session, const ProgramShape& shape) const {
  (void)session;
  (void)shape;
  throw std::logic_error("Partitioner::grow_one: " + name() +
                         " does not support incremental allocation");
}

std::optional<std::vector<PartitionAssignment>> QucpPartitioner::do_allocate(
    const Device& device, std::span<const ProgramShape> programs,
    const CandidateIndex* index) const {
  return efs_greedy_allocate(device, programs, policy_, index);
}

std::optional<PartitionAssignment> QucpPartitioner::grow_one(
    AllocationSession& session, const ProgramShape& shape) const {
  return efs_greedy_grow_one(session, shape, policy_);
}

std::optional<std::vector<PartitionAssignment>> QumcPartitioner::do_allocate(
    const Device& device, std::span<const ProgramShape> programs,
    const CandidateIndex* index) const {
  return efs_greedy_allocate(device, programs, policy_, index);
}

std::optional<PartitionAssignment> QumcPartitioner::grow_one(
    AllocationSession& session, const ProgramShape& shape) const {
  return efs_greedy_grow_one(session, shape, policy_);
}

std::optional<std::vector<PartitionAssignment>> QucloudPartitioner::do_allocate(
    const Device& device, std::span<const ProgramShape> programs,
    const CandidateIndex* index) const {
  return score_greedy_allocate(device, programs, qucloud_score, index);
}

std::optional<PartitionAssignment> QucloudPartitioner::grow_one(
    AllocationSession& session, const ProgramShape& shape) const {
  return score_greedy_grow_one(session, shape, qucloud_score);
}

std::optional<std::vector<PartitionAssignment>> MultiqcPartitioner::do_allocate(
    const Device& device, std::span<const ProgramShape> programs,
    const CandidateIndex* index) const {
  return score_greedy_allocate(device, programs, multiqc_score, index);
}

std::optional<PartitionAssignment> MultiqcPartitioner::grow_one(
    AllocationSession& session, const ProgramShape& shape) const {
  return score_greedy_grow_one(session, shape, multiqc_score);
}

std::optional<std::vector<PartitionAssignment>> NaivePartitioner::do_allocate(
    const Device& device, std::span<const ProgramShape> programs,
    const CandidateIndex* /*index*/) const {
  // First-fit BFS needs no candidate enumeration, so the index is unused.
  const Topology& topo = device.topology();
  const NoCrosstalkPolicy no_xtalk;
  std::vector<PartitionAssignment> result(programs.size());
  std::set<int> blocked;
  for (std::size_t idx = 0; idx < programs.size(); ++idx) {
    const ProgramShape& shape = programs[idx];
    std::vector<int> region;
    for (int start = 0; start < topo.num_qubits(); ++start) {
      if (blocked.count(start)) continue;
      // BFS region of the requested size.
      std::vector<int> part;
      std::set<int> visited;
      std::deque<int> queue{start};
      visited.insert(start);
      while (!queue.empty() &&
             static_cast<int>(part.size()) < shape.num_qubits) {
        const int u = queue.front();
        queue.pop_front();
        part.push_back(u);
        for (int nb : topo.neighbors(u)) {
          if (!visited.count(nb) && !blocked.count(nb)) {
            visited.insert(nb);
            queue.push_back(nb);
          }
        }
      }
      if (static_cast<int>(part.size()) == shape.num_qubits) {
        std::sort(part.begin(), part.end());
        region = std::move(part);
        break;
      }
    }
    if (region.empty()) return std::nullopt;
    PartitionAssignment assignment;
    assignment.qubits = region;
    const std::vector<int> allocated(blocked.begin(), blocked.end());
    assignment.efs = efs_score(device, region, shape, allocated, no_xtalk);
    blocked.insert(region.begin(), region.end());
    result[idx] = std::move(assignment);
  }
  return result;
}

}  // namespace qucp
