#pragma once
// OpenQASM 2.0 subset parser and writer.
//
// Supported: OPENQASM/include headers (ignored), one or more qreg/creg
// declarations (flattened into a single index space in declaration order),
// the gate set from gate.hpp plus `ccx` (expanded to its standard 15-op
// decomposition), `barrier`, `measure q[i] -> c[j]`, and parameter
// expressions over float literals and `pi` with + - * / and parentheses.
// Gate broadcasting over whole registers (e.g. `measure q -> c;`) is
// supported for measure and single-qubit gates.

#include <string>
#include <string_view>

#include "circuit/circuit.hpp"

namespace qucp {

/// Thrown on malformed QASM input; message carries the line number.
class QasmError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse OpenQASM 2.0 source text into a Circuit.
[[nodiscard]] Circuit parse_qasm(std::string_view source,
                                 std::string name = "");

/// Serialize a Circuit to OpenQASM 2.0 (single q/c registers).
[[nodiscard]] std::string to_qasm(const Circuit& circuit);

}  // namespace qucp
