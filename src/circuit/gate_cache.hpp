#pragma once
// Keyed memoization of per-gate artifacts.
//
// GateKey / GateKeyView key a gate by (kind, exact param bit patterns) —
// cache identity, not numeric closeness — with transparent hashing so the
// hit path never copies a params vector. GateMatrixCache is the
// thread-safe gate_matrix() memo built on them; single-threaded callers
// (e.g. the statevector's thread_local compiled-gate memo) reuse the key
// types with their own unordered_map and skip the mutex.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "circuit/gate.hpp"
#include "common/matrix.hpp"

namespace qucp {

/// Owning cache key: a gate kind plus its exact parameter bit patterns.
struct GateKey {
  GateKind kind = GateKind::I;
  std::vector<double> params;
};

/// Non-owning lookup view over the same fields (transparent find).
struct GateKeyView {
  GateKind kind = GateKind::I;
  std::span<const double> params;
};

/// FNV-1a over the kind byte and the params' bit patterns.
struct GateKeyHash {
  using is_transparent = void;
  template <typename K>
  std::size_t operator()(const K& k) const noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) { h = (h ^ v) * 1099511628211ULL; };
    mix(static_cast<std::uint64_t>(k.kind));
    for (double p : k.params) mix(std::bit_cast<std::uint64_t>(p));
    return static_cast<std::size_t>(h);
  }
};

struct GateKeyEq {
  using is_transparent = void;
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const noexcept {
    return a.kind == b.kind &&
           std::equal(a.params.begin(), a.params.end(), b.params.begin(),
                      b.params.end());
  }
};

/// Thread-safe memo of gate_matrix() results keyed by (kind, params).
///
/// Entries are never evicted, so returned references stay valid for the
/// cache's lifetime (node-based map: stable under later insertions). Meant
/// for call sites that replay the same gates many times — a Backend keeps
/// one across jobs so repeated shot-batches stop rebuilding CX/H/rotation
/// matrices per op. The cache grows by one entry per distinct
/// (kind, params) up to kMaxEntries, after which fresh keys are built into
/// a per-thread spill slot instead (valid until the calling thread's next
/// spilled get) so an endless rotation-angle sweep cannot grow the cache
/// without bound.
class GateMatrixCache {
 public:
  static constexpr std::size_t kMaxEntries = 1 << 14;

  /// The unitary of (kind, params), built on first use.
  [[nodiscard]] const Matrix& get(GateKind kind,
                                  std::span<const double> params = {});
  [[nodiscard]] const Matrix& get(const Gate& g) {
    return get(g.kind, g.params);
  }

  [[nodiscard]] std::size_t entries() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<GateKey, Matrix, GateKeyHash, GateKeyEq> cache_;
};

}  // namespace qucp
