#include "circuit/qasm.hpp"

#include <cctype>
#include <cmath>
#include <map>
#include <numbers>
#include <sstream>
#include <vector>

#include "common/strings.hpp"

namespace qucp {

namespace {

/// Recursive-descent evaluator for QASM parameter expressions.
class ExprParser {
 public:
  explicit ExprParser(std::string_view s) : s_(s) {}

  double parse() {
    const double v = expr();
    skip_ws();
    if (pos_ != s_.size()) throw QasmError("trailing tokens in expression");
    return v;
  }

 private:
  double expr() {
    double v = term();
    for (;;) {
      skip_ws();
      if (consume('+')) {
        v += term();
      } else if (consume('-')) {
        v -= term();
      } else {
        return v;
      }
    }
  }

  double term() {
    double v = factor();
    for (;;) {
      skip_ws();
      if (consume('*')) {
        v *= factor();
      } else if (consume('/')) {
        const double d = factor();
        if (d == 0.0) throw QasmError("division by zero in expression");
        v /= d;
      } else {
        return v;
      }
    }
  }

  double factor() {
    skip_ws();
    if (consume('-')) return -factor();
    if (consume('+')) return factor();
    if (consume('(')) {
      const double v = expr();
      skip_ws();
      if (!consume(')')) throw QasmError("missing ')' in expression");
      return v;
    }
    if (pos_ + 1 < s_.size() && s_.substr(pos_, 2) == "pi") {
      pos_ += 2;
      return std::numbers::pi;
    }
    // number literal
    std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            ((s_[pos_] == '+' || s_[pos_] == '-') && pos_ > start &&
             (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    if (pos_ == start) throw QasmError("expected number in expression");
    return std::stod(std::string(s_.substr(start, pos_ - start)));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

struct Register {
  int offset = 0;
  int size = 0;
};

struct Operand {
  std::string reg;
  int index = -1;  // -1 means whole-register broadcast
};

Operand parse_operand(std::string_view tok) {
  tok = trim(tok);
  const std::size_t lb = tok.find('[');
  if (lb == std::string_view::npos) {
    return {std::string(tok), -1};
  }
  const std::size_t rb = tok.find(']', lb);
  if (rb == std::string_view::npos) throw QasmError("missing ']' in operand");
  Operand op;
  op.reg = std::string(trim(tok.substr(0, lb)));
  const std::string idx(trim(tok.substr(lb + 1, rb - lb - 1)));
  try {
    op.index = std::stoi(idx);
  } catch (const std::exception&) {
    throw QasmError("bad register index: " + idx);
  }
  return op;
}

std::string strip_comments(std::string_view src) {
  std::string out;
  out.reserve(src.size());
  std::size_t i = 0;
  while (i < src.size()) {
    if (i + 1 < src.size() && src[i] == '/' && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
    } else {
      out += src[i++];
    }
  }
  return out;
}

void expand_ccx(Circuit& c, int a, int b, int t) { c.ccx(a, b, t); }

}  // namespace

Circuit parse_qasm(std::string_view source, std::string name) {
  const std::string clean = strip_comments(source);
  std::map<std::string, Register> qregs;
  std::map<std::string, Register> cregs;
  int total_q = 0;
  int total_c = 0;

  struct PendingOp {
    std::string mnemonic;
    std::vector<double> params;
    std::vector<Operand> operands;
  };
  std::vector<PendingOp> pending;

  for (std::string_view stmt_raw : split(clean, ';')) {
    std::string_view stmt = trim(stmt_raw);
    if (stmt.empty()) continue;
    if (starts_with(stmt, "OPENQASM") || starts_with(stmt, "include")) {
      continue;
    }
    if (starts_with(stmt, "qreg") || starts_with(stmt, "creg")) {
      const bool is_q = starts_with(stmt, "qreg");
      const Operand decl = parse_operand(trim(stmt.substr(4)));
      if (decl.index <= 0) throw QasmError("register size must be positive");
      if (qregs.count(decl.reg) || cregs.count(decl.reg)) {
        throw QasmError("duplicate register: " + decl.reg);
      }
      if (is_q) {
        qregs[decl.reg] = {total_q, decl.index};
        total_q += decl.index;
      } else {
        cregs[decl.reg] = {total_c, decl.index};
        total_c += decl.index;
      }
      continue;
    }

    // gate application: name[(params)] operands
    PendingOp op;
    std::size_t head_end = 0;
    while (head_end < stmt.size() &&
           !std::isspace(static_cast<unsigned char>(stmt[head_end])) &&
           stmt[head_end] != '(') {
      ++head_end;
    }
    op.mnemonic = std::string(stmt.substr(0, head_end));
    std::string_view rest = stmt.substr(head_end);
    rest = trim(rest);
    if (!rest.empty() && rest.front() == '(') {
      // Find the matching close paren (parameters may nest parens).
      std::size_t depth = 0;
      std::size_t close = std::string_view::npos;
      for (std::size_t i = 0; i < rest.size(); ++i) {
        if (rest[i] == '(') ++depth;
        if (rest[i] == ')' && --depth == 0) {
          close = i;
          break;
        }
      }
      if (close == std::string_view::npos) {
        throw QasmError("missing ')' in gate parameters");
      }
      // Split on top-level commas only.
      std::vector<std::string_view> parts;
      std::size_t start = 1;
      std::size_t d = 0;
      for (std::size_t i = 1; i < close; ++i) {
        if (rest[i] == '(') ++d;
        if (rest[i] == ')') --d;
        if (rest[i] == ',' && d == 0) {
          parts.push_back(rest.substr(start, i - start));
          start = i + 1;
        }
      }
      parts.push_back(rest.substr(start, close - start));
      for (std::string_view p : parts) {
        op.params.push_back(ExprParser(p).parse());
      }
      rest = trim(rest.substr(close + 1));
    }
    if (op.mnemonic == "measure") {
      const std::size_t arrow = rest.find("->");
      if (arrow == std::string_view::npos) {
        throw QasmError("measure requires '->'");
      }
      op.operands.push_back(parse_operand(rest.substr(0, arrow)));
      op.operands.push_back(parse_operand(rest.substr(arrow + 2)));
    } else if (!rest.empty()) {
      for (std::string_view tok : split(rest, ',')) {
        op.operands.push_back(parse_operand(tok));
      }
    }
    pending.push_back(std::move(op));
  }

  if (total_q == 0) throw QasmError("no qreg declared");
  Circuit circuit(total_q, std::max(total_c, total_q), std::move(name));

  auto resolve_q = [&](const Operand& op) -> int {
    auto it = qregs.find(op.reg);
    if (it == qregs.end()) throw QasmError("unknown qreg: " + op.reg);
    if (op.index < 0 || op.index >= it->second.size) {
      throw QasmError("qubit index out of range in " + op.reg);
    }
    return it->second.offset + op.index;
  };
  auto resolve_c = [&](const Operand& op) -> int {
    auto it = cregs.find(op.reg);
    if (it == cregs.end()) throw QasmError("unknown creg: " + op.reg);
    if (op.index < 0 || op.index >= it->second.size) {
      throw QasmError("clbit index out of range in " + op.reg);
    }
    return it->second.offset + op.index;
  };

  for (const auto& op : pending) {
    if (op.mnemonic == "measure") {
      const Operand& q = op.operands.at(0);
      const Operand& c = op.operands.at(1);
      if (q.index < 0) {  // broadcast: measure q -> c;
        auto qit = qregs.find(q.reg);
        auto cit = cregs.find(c.reg);
        if (qit == qregs.end()) throw QasmError("unknown qreg: " + q.reg);
        if (cit == cregs.end()) throw QasmError("unknown creg: " + c.reg);
        if (qit->second.size != cit->second.size) {
          throw QasmError("measure broadcast register size mismatch");
        }
        for (int i = 0; i < qit->second.size; ++i) {
          circuit.measure(qit->second.offset + i, cit->second.offset + i);
        }
      } else {
        circuit.measure(resolve_q(q), resolve_c(c));
      }
      continue;
    }
    if (op.mnemonic == "barrier") {
      std::vector<int> qs;
      for (const Operand& o : op.operands) {
        if (o.index < 0) {
          auto it = qregs.find(o.reg);
          if (it == qregs.end()) throw QasmError("unknown qreg: " + o.reg);
          for (int i = 0; i < it->second.size; ++i) {
            qs.push_back(it->second.offset + i);
          }
        } else {
          qs.push_back(resolve_q(o));
        }
      }
      circuit.barrier(std::move(qs));
      continue;
    }
    if (op.mnemonic == "ccx") {
      if (op.operands.size() != 3) throw QasmError("ccx takes 3 operands");
      expand_ccx(circuit, resolve_q(op.operands[0]),
                 resolve_q(op.operands[1]), resolve_q(op.operands[2]));
      continue;
    }
    const auto kind = gate_from_name(op.mnemonic);
    if (!kind) throw QasmError("unknown gate: " + op.mnemonic);
    const int arity = gate_arity(*kind);
    if (arity == 1 && op.operands.size() == 1 && op.operands[0].index < 0) {
      // single-qubit broadcast over a register
      auto it = qregs.find(op.operands[0].reg);
      if (it == qregs.end()) {
        throw QasmError("unknown qreg: " + op.operands[0].reg);
      }
      for (int i = 0; i < it->second.size; ++i) {
        circuit.append({*kind, {it->second.offset + i}, op.params});
      }
      continue;
    }
    if (static_cast<int>(op.operands.size()) != arity) {
      throw QasmError("wrong operand count for " + op.mnemonic);
    }
    std::vector<int> qs;
    qs.reserve(op.operands.size());
    for (const Operand& o : op.operands) qs.push_back(resolve_q(o));
    circuit.append({*kind, std::move(qs), op.params});
  }
  return circuit;
}

std::string to_qasm(const Circuit& circuit) {
  std::ostringstream out;
  out.precision(17);  // round-trip exact doubles
  out << "OPENQASM 2.0;\n";
  out << "include \"qelib1.inc\";\n";
  out << "qreg q[" << circuit.num_qubits() << "];\n";
  out << "creg c[" << circuit.num_clbits() << "];\n";
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::Measure) {
      out << "measure q[" << g.qubits[0] << "] -> c[" << g.clbit << "];\n";
      continue;
    }
    out << gate_name(g.kind);
    if (!g.params.empty()) {
      out << '(';
      for (std::size_t i = 0; i < g.params.size(); ++i) {
        if (i != 0) out << ',';
        out << g.params[i];
      }
      out << ')';
    }
    for (std::size_t i = 0; i < g.qubits.size(); ++i) {
      out << (i == 0 ? " " : ",") << "q[" << g.qubits[i] << "]";
    }
    out << ";\n";
  }
  return out.str();
}

}  // namespace qucp
