#pragma once
// Dependency DAG view over a Circuit.
//
// Nodes are op indices into the source circuit; an edge u -> v exists when v
// is the next op touching one of u's wires. The router consumes the DAG
// front-layer style (SABRE): executable ops are popped from the front,
// releasing their successors.

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"

namespace qucp {

class DagCircuit {
 public:
  explicit DagCircuit(const Circuit& circuit);

  [[nodiscard]] const Circuit& circuit() const noexcept { return *circuit_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return succs_.size();
  }

  /// Successor node ids of `node`.
  [[nodiscard]] const std::vector<std::size_t>& successors(
      std::size_t node) const {
    return succs_.at(node);
  }

  /// Number of predecessors of `node`.
  [[nodiscard]] int in_degree(std::size_t node) const {
    return in_degree_.at(node);
  }

  /// Nodes with no predecessors.
  [[nodiscard]] std::vector<std::size_t> initial_front() const;

  /// Topological order (stable: follows op order).
  [[nodiscard]] std::vector<std::size_t> topological_order() const;

  /// The gate behind a node.
  [[nodiscard]] const Gate& gate(std::size_t node) const {
    return circuit_->ops().at(node);
  }

 private:
  const Circuit* circuit_;
  std::vector<std::vector<std::size_t>> succs_;
  std::vector<int> in_degree_;
};

/// Mutable front-layer traversal state used by routers.
///
/// Tracks remaining in-degrees; `complete(node)` retires a node and returns
/// newly released successors.
class FrontLayer {
 public:
  explicit FrontLayer(const DagCircuit& dag);

  [[nodiscard]] const std::vector<std::size_t>& nodes() const noexcept {
    return front_;
  }
  [[nodiscard]] bool empty() const noexcept { return front_.empty(); }

  /// Retire a node currently in the front; newly-ready successors join the
  /// front. Throws if the node is not in the front.
  void complete(std::size_t node);

 private:
  const DagCircuit* dag_;
  std::vector<int> pending_;
  std::vector<std::size_t> front_;
};

}  // namespace qucp
