#include "circuit/circuit.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <numbers>
#include <set>
#include <stdexcept>

#include "common/rng.hpp"

namespace qucp {

namespace {

/// Embed a k-qubit gate matrix into the full 2^n space (little-endian basis;
/// the first operand in `qs` is the HIGH bit of the gate's local index,
/// matching gate_matrix's convention).
Matrix embed(const Matrix& m, std::span<const int> qs, int n) {
  const std::size_t dim = std::size_t{1} << n;
  const int k = static_cast<int>(qs.size());
  const std::size_t ldim = std::size_t{1} << k;
  if (m.rows() != ldim || m.cols() != ldim) {
    throw std::invalid_argument("embed: matrix/operand mismatch");
  }
  Matrix out(dim, dim);
  for (std::size_t c = 0; c < dim; ++c) {
    std::size_t lc = 0;
    for (int j = 0; j < k; ++j) {
      lc = (lc << 1) | ((c >> qs[j]) & 1U);
    }
    for (std::size_t lr = 0; lr < ldim; ++lr) {
      const cx v = m(lr, lc);
      if (v == cx{0.0, 0.0}) continue;
      std::size_t r = c;
      for (int j = 0; j < k; ++j) {
        const std::size_t bit = (lr >> (k - 1 - j)) & 1U;
        r = (r & ~(std::size_t{1} << qs[j])) | (bit << qs[j]);
      }
      out(r, c) += v;
    }
  }
  return out;
}

}  // namespace

Circuit::Circuit(int num_qubits, std::optional<int> num_clbits,
                 std::string name)
    : num_qubits_(num_qubits),
      num_clbits_(num_clbits.value_or(num_qubits)),
      name_(std::move(name)) {
  if (num_qubits < 0 || num_clbits_ < 0) {
    throw std::invalid_argument("Circuit: negative register size");
  }
}

void Circuit::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("Circuit: qubit index out of range");
  }
}

void Circuit::append(Gate g) {
  if (g.kind == GateKind::Barrier) {
    if (g.qubits.empty()) {
      for (int q = 0; q < num_qubits_; ++q) g.qubits.push_back(q);
    }
    for (int q : g.qubits) check_qubit(q);
  } else if (g.kind == GateKind::Measure) {
    if (g.qubits.size() != 1) {
      throw std::invalid_argument("Circuit: measure takes one qubit");
    }
    check_qubit(g.qubits[0]);
    if (g.clbit < 0 || g.clbit >= num_clbits_) {
      throw std::out_of_range("Circuit: clbit index out of range");
    }
  } else {
    const int arity = gate_arity(g.kind);
    if (static_cast<int>(g.qubits.size()) != arity) {
      throw std::invalid_argument("Circuit: wrong operand count for " +
                                  std::string(gate_name(g.kind)));
    }
    for (int q : g.qubits) check_qubit(q);
    if (arity == 2 && g.qubits[0] == g.qubits[1]) {
      throw std::invalid_argument("Circuit: duplicate qubit operand");
    }
    if (static_cast<int>(g.params.size()) != gate_param_count(g.kind)) {
      throw std::invalid_argument("Circuit: wrong parameter count for " +
                                  std::string(gate_name(g.kind)));
    }
  }
  ops_.push_back(std::move(g));
  fp_memo_.invalidate();
}

void Circuit::barrier() { append({GateKind::Barrier, {}, {}}); }

void Circuit::barrier(std::vector<int> qubits) {
  append({GateKind::Barrier, std::move(qubits), {}});
}

void Circuit::measure(int qubit, int clbit) {
  Gate g{GateKind::Measure, {qubit}, {}};
  g.clbit = clbit;
  append(std::move(g));
}

void Circuit::measure_all() {
  if (num_clbits_ < num_qubits_) {
    throw std::logic_error("Circuit::measure_all: too few clbits");
  }
  for (int q = 0; q < num_qubits_; ++q) measure(q, q);
}

void Circuit::ccx(int c0, int c1, int target) {
  h(target);
  cx(c1, target);
  tdg(target);
  cx(c0, target);
  t(target);
  cx(c1, target);
  tdg(target);
  cx(c0, target);
  t(c1);
  t(target);
  cx(c0, c1);
  h(target);
  t(c0);
  tdg(c1);
  cx(c0, c1);
}

int Circuit::gate_count() const {
  int n = 0;
  for (const Gate& g : ops_) {
    if (is_unitary_gate(g.kind)) ++n;
  }
  return n;
}

int Circuit::two_qubit_count() const {
  int n = 0;
  for (const Gate& g : ops_) {
    if (is_two_qubit_gate(g.kind)) ++n;
  }
  return n;
}

std::map<std::string, int> Circuit::count_ops() const {
  std::map<std::string, int> counts;
  for (const Gate& g : ops_) {
    ++counts[std::string(gate_name(g.kind))];
  }
  return counts;
}

int Circuit::depth() const {
  std::vector<int> qlevel(num_qubits_, 0);
  std::vector<int> clevel(num_clbits_, 0);
  int depth = 0;
  for (const Gate& g : ops_) {
    if (g.kind == GateKind::Barrier) {
      int m = 0;
      for (int q : g.qubits) m = std::max(m, qlevel[q]);
      for (int q : g.qubits) qlevel[q] = m;
      continue;
    }
    int lvl = 0;
    for (int q : g.qubits) lvl = std::max(lvl, qlevel[q]);
    if (g.kind == GateKind::Measure) lvl = std::max(lvl, clevel[g.clbit]);
    ++lvl;
    for (int q : g.qubits) qlevel[q] = lvl;
    if (g.kind == GateKind::Measure) clevel[g.clbit] = lvl;
    depth = std::max(depth, lvl);
  }
  return depth;
}

int Circuit::two_qubit_depth() const {
  std::vector<int> qlevel(num_qubits_, 0);
  int depth = 0;
  for (const Gate& g : ops_) {
    if (!is_two_qubit_gate(g.kind)) continue;
    const int lvl = std::max(qlevel[g.qubits[0]], qlevel[g.qubits[1]]) + 1;
    qlevel[g.qubits[0]] = lvl;
    qlevel[g.qubits[1]] = lvl;
    depth = std::max(depth, lvl);
  }
  return depth;
}

bool Circuit::has_measurements() const {
  return std::any_of(ops_.begin(), ops_.end(), [](const Gate& g) {
    return g.kind == GateKind::Measure;
  });
}

std::vector<int> Circuit::active_qubits() const {
  std::set<int> used;
  for (const Gate& g : ops_) {
    if (g.kind == GateKind::Barrier) continue;
    used.insert(g.qubits.begin(), g.qubits.end());
  }
  return {used.begin(), used.end()};
}

Circuit Circuit::without_final_ops() const {
  Circuit out(num_qubits_, num_clbits_, name_);
  for (const Gate& g : ops_) {
    if (g.kind == GateKind::Measure || g.kind == GateKind::Barrier) continue;
    out.append(g);
  }
  return out;
}

Circuit Circuit::compacted() const {
  const std::vector<int> active = active_qubits();
  std::vector<int> local(num_qubits_, -1);
  for (std::size_t i = 0; i < active.size(); ++i) {
    local[active[i]] = static_cast<int>(i);
  }
  Circuit out(static_cast<int>(active.size()), num_clbits_, name_);
  for (const Gate& g : ops_) {
    Gate mapped = g;
    for (int& q : mapped.qubits) q = local[q];
    out.append(std::move(mapped));
  }
  return out;
}

Circuit Circuit::inverse() const {
  if (has_measurements()) {
    throw std::logic_error("Circuit::inverse: circuit has measurements");
  }
  Circuit out(num_qubits_, num_clbits_, name_.empty() ? "" : name_ + "_dg");
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    if (it->kind == GateKind::Barrier) {
      out.append(*it);
      continue;
    }
    out.append(inverse_gate(*it));
  }
  return out;
}

Circuit Circuit::remapped(std::span<const int> layout,
                          int new_num_qubits) const {
  if (static_cast<int>(layout.size()) != num_qubits_) {
    throw std::invalid_argument("Circuit::remapped: layout size mismatch");
  }
  Circuit out(new_num_qubits, std::max(num_clbits_, new_num_qubits), name_);
  for (const Gate& g : ops_) {
    Gate mapped = g;
    for (int& q : mapped.qubits) {
      if (layout[q] < 0 || layout[q] >= new_num_qubits) {
        throw std::out_of_range("Circuit::remapped: layout target invalid");
      }
      q = layout[q];
    }
    out.append(std::move(mapped));
  }
  return out;
}

void Circuit::compose(const Circuit& other, std::span<const int> qubit_map,
                      int clbit_offset) {
  std::vector<int> map;
  if (qubit_map.empty()) {
    if (other.num_qubits_ > num_qubits_) {
      throw std::invalid_argument("Circuit::compose: other too wide");
    }
    map.resize(other.num_qubits_);
    for (int i = 0; i < other.num_qubits_; ++i) map[i] = i;
  } else {
    if (static_cast<int>(qubit_map.size()) != other.num_qubits_) {
      throw std::invalid_argument("Circuit::compose: qubit_map size");
    }
    map.assign(qubit_map.begin(), qubit_map.end());
  }
  for (const Gate& g : other.ops_) {
    Gate mapped = g;
    for (int& q : mapped.qubits) q = map.at(q);
    if (mapped.kind == GateKind::Measure) mapped.clbit += clbit_offset;
    append(std::move(mapped));
  }
}

Matrix Circuit::to_unitary() const {
  if (has_measurements()) {
    throw std::logic_error("Circuit::to_unitary: circuit has measurements");
  }
  const std::size_t dim = std::size_t{1} << num_qubits_;
  Matrix u = Matrix::identity(dim);
  for (const Gate& g : ops_) {
    if (g.kind == GateKind::Barrier) continue;
    u = embed(gate_matrix(g), g.qubits, num_qubits_) * u;
  }
  return u;
}

CircuitFingerprints Circuit::fingerprints() const {
  CircuitFingerprints fp;
  if (fp_memo_.load(fp)) return fp;
  // One walk, two FNV-1a streams over the structural content. The exact
  // stream hashes parameter bit patterns (no epsilon aliasing,
  // platform-stable); the structural stream substitutes a fixed slot
  // marker per parameter value (the parameter *count* still mixes, so RZ
  // vs U3 never alias), which is why circuits differing only in rotation
  // angles share a structural fingerprint. The name is deliberately
  // excluded from both.
  constexpr std::uint64_t kSlotMarker = 0x9E3779B97F4A7C15ull;
  std::uint64_t he = kFnv1aBasis;
  std::uint64_t hs = kFnv1aBasis;
  const auto mix_both = [&](std::uint64_t v) {
    he = fnv1a_mix(he, v);
    hs = fnv1a_mix(hs, v);
  };
  mix_both(static_cast<std::uint64_t>(num_qubits_));
  mix_both(static_cast<std::uint64_t>(num_clbits_));
  for (const Gate& g : ops_) {
    mix_both(static_cast<std::uint64_t>(g.kind));
    mix_both(static_cast<std::uint64_t>(g.qubits.size()));
    for (int q : g.qubits) mix_both(static_cast<std::uint64_t>(q));
    mix_both(static_cast<std::uint64_t>(g.params.size()));
    for (double p : g.params) {
      he = fnv1a_mix(he, std::bit_cast<std::uint64_t>(p));
      hs = fnv1a_mix(hs, kSlotMarker);
    }
    mix_both(static_cast<std::uint64_t>(static_cast<std::int64_t>(g.clbit)));
  }
  fp = {he, hs};
  fp_memo_.store(fp);
  return fp;
}

std::uint64_t circuit_fingerprint(const Circuit& circuit) {
  return circuit.fingerprints().exact;
}

std::uint64_t structural_fingerprint(const Circuit& circuit) {
  return circuit.fingerprints().structural;
}

CircuitFingerprints circuit_fingerprints(const Circuit& circuit) {
  return circuit.fingerprints();
}

ParamBinding::ParamBinding(const Circuit& circuit) {
  std::size_t n = 0;
  for (const Gate& g : circuit.ops()) n += g.params.size();
  values.reserve(n);
  for (const Gate& g : circuit.ops()) {
    values.insert(values.end(), g.params.begin(), g.params.end());
  }
}

}  // namespace qucp
