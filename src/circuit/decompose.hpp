#pragma once
// Basis decomposition passes.
//
// Routing inserts explicit SWAP gates; hardware executes CX only, so SWAPs
// are lowered to 3 CX before execution/error accounting. CZ lowers to
// H-CX-H when a device lacks native CZ.

#include "circuit/circuit.hpp"

namespace qucp {

/// Replace each SWAP with 3 CX (orientation alternates to balance error).
[[nodiscard]] Circuit decompose_swaps(const Circuit& circuit);

/// Replace each CZ with H(target) CX H(target).
[[nodiscard]] Circuit decompose_cz(const Circuit& circuit);

/// Full lowering used before execution: SWAPs then CZs.
[[nodiscard]] Circuit lower_to_cx_basis(const Circuit& circuit);

}  // namespace qucp
