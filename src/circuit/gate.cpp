#include "circuit/gate.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <unordered_map>

namespace qucp {

namespace {
constexpr double kPi = std::numbers::pi;
const cx kI{0.0, 1.0};
}  // namespace

int gate_arity(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
      return 2;
    case GateKind::Barrier:
      return 0;  // variadic
    default:
      return 1;
  }
}

int gate_param_count(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::U1:
      return 1;
    case GateKind::U2:
      return 2;
    case GateKind::U3:
      return 3;
    default:
      return 0;
  }
}

std::string_view gate_name(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::I: return "id";
    case GateKind::X: return "x";
    case GateKind::Y: return "y";
    case GateKind::Z: return "z";
    case GateKind::H: return "h";
    case GateKind::S: return "s";
    case GateKind::Sdg: return "sdg";
    case GateKind::T: return "t";
    case GateKind::Tdg: return "tdg";
    case GateKind::SX: return "sx";
    case GateKind::RX: return "rx";
    case GateKind::RY: return "ry";
    case GateKind::RZ: return "rz";
    case GateKind::U1: return "u1";
    case GateKind::U2: return "u2";
    case GateKind::U3: return "u3";
    case GateKind::CX: return "cx";
    case GateKind::CZ: return "cz";
    case GateKind::SWAP: return "swap";
    case GateKind::Barrier: return "barrier";
    case GateKind::Measure: return "measure";
  }
  return "?";
}

std::optional<GateKind> gate_from_name(std::string_view name) {
  static const std::unordered_map<std::string_view, GateKind> kMap = {
      {"id", GateKind::I},      {"i", GateKind::I},
      {"x", GateKind::X},       {"y", GateKind::Y},
      {"z", GateKind::Z},       {"h", GateKind::H},
      {"s", GateKind::S},       {"sdg", GateKind::Sdg},
      {"t", GateKind::T},       {"tdg", GateKind::Tdg},
      {"sx", GateKind::SX},     {"rx", GateKind::RX},
      {"ry", GateKind::RY},     {"rz", GateKind::RZ},
      {"u1", GateKind::U1},     {"p", GateKind::U1},
      {"u2", GateKind::U2},     {"u3", GateKind::U3},
      {"u", GateKind::U3},      {"cx", GateKind::CX},
      {"cnot", GateKind::CX},   {"cz", GateKind::CZ},
      {"swap", GateKind::SWAP}, {"barrier", GateKind::Barrier},
      {"measure", GateKind::Measure},
  };
  auto it = kMap.find(name);
  if (it == kMap.end()) return std::nullopt;
  return it->second;
}

bool is_unitary_gate(GateKind kind) noexcept {
  return kind != GateKind::Barrier && kind != GateKind::Measure;
}

bool is_two_qubit_gate(GateKind kind) noexcept {
  return kind == GateKind::CX || kind == GateKind::CZ ||
         kind == GateKind::SWAP;
}

bool is_self_inverse(GateKind kind) noexcept {
  switch (kind) {
    case GateKind::I:
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
    case GateKind::CX:
    case GateKind::CZ:
    case GateKind::SWAP:
      return true;
    default:
      return false;
  }
}

Gate inverse_gate(const Gate& g) {
  if (!is_unitary_gate(g.kind)) {
    throw std::invalid_argument("inverse_gate: non-unitary op");
  }
  Gate inv = g;
  if (is_self_inverse(g.kind)) return inv;
  switch (g.kind) {
    case GateKind::S:
      inv.kind = GateKind::Sdg;
      return inv;
    case GateKind::Sdg:
      inv.kind = GateKind::S;
      return inv;
    case GateKind::T:
      inv.kind = GateKind::Tdg;
      return inv;
    case GateKind::Tdg:
      inv.kind = GateKind::T;
      return inv;
    case GateKind::SX:
      // SX^dagger == RX(-pi/2) up to a global phase, which is unobservable
      // in every use of circuit inversion in this library.
      inv.kind = GateKind::RX;
      inv.params = {-kPi / 2.0};
      return inv;
    case GateKind::RX:
    case GateKind::RY:
    case GateKind::RZ:
    case GateKind::U1:
      inv.params = {-g.params.at(0)};
      return inv;
    case GateKind::U2:
      // U2(phi, lambda) == U3(pi/2, phi, lambda); inverse is
      // U3(-pi/2, -lambda, -phi).
      inv.kind = GateKind::U3;
      inv.params = {-kPi / 2.0, -g.params.at(1), -g.params.at(0)};
      return inv;
    case GateKind::U3:
      inv.params = {-g.params.at(0), -g.params.at(2), -g.params.at(1)};
      return inv;
    default:
      throw std::logic_error("inverse_gate: unhandled kind");
  }
}

int gate_matrix_into(GateKind kind, std::span<const double> params, cx* out) {
  const int want = gate_param_count(kind);
  if (static_cast<int>(params.size()) < want) {
    throw std::invalid_argument("gate_matrix: missing parameters");
  }
  const double s2 = 1.0 / std::sqrt(2.0);
  const auto m2 = [out](cx a, cx b, cx c, cx d) {
    out[0] = a;
    out[1] = b;
    out[2] = c;
    out[3] = d;
    return 2;
  };
  const auto m4 = [out](std::initializer_list<cx> vals) {
    int i = 0;
    for (cx v : vals) out[i++] = v;
    return 4;
  };
  switch (kind) {
    case GateKind::I:
      return m2(1, 0, 0, 1);
    case GateKind::X:
      return m2(0, 1, 1, 0);
    case GateKind::Y:
      return m2(0, -kI, kI, 0);
    case GateKind::Z:
      return m2(1, 0, 0, -1);
    case GateKind::H:
      return m2(s2, s2, s2, -s2);
    case GateKind::S:
      return m2(1, 0, 0, kI);
    case GateKind::Sdg:
      return m2(1, 0, 0, -kI);
    case GateKind::T:
      return m2(1, 0, 0, std::exp(kI * (kPi / 4.0)));
    case GateKind::Tdg:
      return m2(1, 0, 0, std::exp(-kI * (kPi / 4.0)));
    case GateKind::SX:
      return m2(cx{0.5, 0.5}, cx{0.5, -0.5}, cx{0.5, -0.5}, cx{0.5, 0.5});
    case GateKind::RX: {
      const double t = params[0] / 2.0;
      return m2(std::cos(t), -kI * std::sin(t), -kI * std::sin(t),
                std::cos(t));
    }
    case GateKind::RY: {
      const double t = params[0] / 2.0;
      return m2(std::cos(t), -std::sin(t), std::sin(t), std::cos(t));
    }
    case GateKind::RZ: {
      // exp(±i t) spelled as {cos t, ±sin t}: identical values (cexp of a
      // purely imaginary argument scales sincos by exp(0) == 1), one
      // sin/cos pair instead of two full complex exponentials — this is
      // the hottest parameterized kind in materialize's replay loop.
      const double t = params[0] / 2.0;
      const double c = std::cos(t);
      const double s = std::sin(t);
      return m2(cx{c, -s}, 0, 0, cx{c, s});
    }
    case GateKind::U1:
      return m2(1, 0, 0, std::exp(kI * params[0]));
    case GateKind::U2: {
      const double phi = params[0];
      const double lam = params[1];
      return m2(s2, -s2 * std::exp(kI * lam), s2 * std::exp(kI * phi),
                s2 * std::exp(kI * (phi + lam)));
    }
    case GateKind::U3: {
      const double t = params[0] / 2.0;
      const double phi = params[1];
      const double lam = params[2];
      return m2(std::cos(t), -std::exp(kI * lam) * std::sin(t),
                std::exp(kI * phi) * std::sin(t),
                std::exp(kI * (phi + lam)) * std::cos(t));
    }
    // Two-qubit matrices use basis index (first_operand << 1) | second,
    // i.e. the first operand (control for CX) is the high bit.
    case GateKind::CX:
      return m4({1, 0, 0, 0,  //
                 0, 1, 0, 0,  //
                 0, 0, 0, 1,  //
                 0, 0, 1, 0});
    case GateKind::CZ:
      return m4({1, 0, 0, 0,  //
                 0, 1, 0, 0,  //
                 0, 0, 1, 0,  //
                 0, 0, 0, -1});
    case GateKind::SWAP:
      return m4({1, 0, 0, 0,  //
                 0, 0, 1, 0,  //
                 0, 1, 0, 0,  //
                 0, 0, 0, 1});
    case GateKind::Barrier:
    case GateKind::Measure:
      throw std::invalid_argument("gate_matrix: non-unitary op");
  }
  throw std::logic_error("gate_matrix: unhandled kind");
}

Matrix gate_matrix(GateKind kind, std::span<const double> params) {
  cx buf[16];
  const int dim = gate_matrix_into(kind, params, buf);
  Matrix m(static_cast<std::size_t>(dim), static_cast<std::size_t>(dim));
  std::copy_n(buf, static_cast<std::size_t>(dim) * dim, m.data().begin());
  return m;
}

Matrix gate_matrix(const Gate& g) { return gate_matrix(g.kind, g.params); }

const Matrix* fixed_gate_matrix(GateKind kind) {
  // The tables below are indexed by enum value; fail the build if the
  // enum ordering this depends on ever changes.
  static_assert(static_cast<int>(GateKind::I) == 0 &&
                    static_cast<int>(GateKind::SX) == 9 &&
                    static_cast<int>(GateKind::SWAP) -
                            static_cast<int>(GateKind::CX) ==
                        2,
                "fixed_gate_matrix tables assume the GateKind ordering");
  // Immutable after the (thread-safe) first-use initialization, so reads
  // need no synchronization.
  static const std::array<Matrix, 10> table = {
      gate_matrix(GateKind::I),   gate_matrix(GateKind::X),
      gate_matrix(GateKind::Y),   gate_matrix(GateKind::Z),
      gate_matrix(GateKind::H),   gate_matrix(GateKind::S),
      gate_matrix(GateKind::Sdg), gate_matrix(GateKind::T),
      gate_matrix(GateKind::Tdg), gate_matrix(GateKind::SX)};
  static const std::array<Matrix, 3> table2 = {gate_matrix(GateKind::CX),
                                               gate_matrix(GateKind::CZ),
                                               gate_matrix(GateKind::SWAP)};
  const auto idx = static_cast<std::size_t>(kind);
  if (idx < table.size()) return &table[idx];
  if (kind >= GateKind::CX && kind <= GateKind::SWAP) {
    return &table2[idx - static_cast<std::size_t>(GateKind::CX)];
  }
  return nullptr;
}

}  // namespace qucp
