#include "circuit/gate_cache.hpp"

namespace qucp {

const Matrix& GateMatrixCache::get(GateKind kind,
                                   std::span<const double> params) {
  if (const Matrix* fixed = fixed_gate_matrix(kind)) return *fixed;
  const GateKeyView view{kind, params};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = cache_.find(view); it != cache_.end()) return it->second;
    if (cache_.size() < kMaxEntries) {
      auto [it, inserted] = cache_.emplace(
          GateKey{kind, std::vector<double>(params.begin(), params.end())},
          gate_matrix(kind, params));
      return it->second;
    }
  }
  // Cache full: build into a per-thread slot so callers still get a stable
  // reference for immediate use without unbounded growth.
  thread_local Matrix spill;
  spill = gate_matrix(kind, params);
  return spill;
}

std::size_t GateMatrixCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

}  // namespace qucp
