#include "circuit/optimize.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace qucp {

namespace {

constexpr double kTau = 2.0 * std::numbers::pi;
constexpr double kEps = 1e-12;

bool is_rotation(GateKind k) {
  return k == GateKind::RX || k == GateKind::RY || k == GateKind::RZ ||
         k == GateKind::U1;
}

/// Operand-sensitive inverse-pair test for gates of equal qubit sets.
bool is_inverse_pair(const Gate& a, const Gate& b) {
  auto same_ordered = [&] { return a.qubits == b.qubits; };
  auto same_unordered = [&] {
    return same_ordered() ||
           (a.qubits.size() == 2 && a.qubits[0] == b.qubits[1] &&
            a.qubits[1] == b.qubits[0]);
  };
  switch (a.kind) {
    case GateKind::X:
    case GateKind::Y:
    case GateKind::Z:
    case GateKind::H:
      return b.kind == a.kind && same_ordered();
    case GateKind::CX:
      return b.kind == GateKind::CX && same_ordered();
    case GateKind::CZ:
      return b.kind == GateKind::CZ && same_unordered();
    case GateKind::SWAP:
      return b.kind == GateKind::SWAP && same_unordered();
    case GateKind::S:
      return b.kind == GateKind::Sdg && same_ordered();
    case GateKind::Sdg:
      return b.kind == GateKind::S && same_ordered();
    case GateKind::T:
      return b.kind == GateKind::Tdg && same_ordered();
    case GateKind::Tdg:
      return b.kind == GateKind::T && same_ordered();
    default:
      return false;
  }
}

/// Shared fixpoint body. When `trace` is non-null, `exprs` carries the
/// expression id of every live op's params; merges append Add nodes and
/// every identity decision is logged so a template bind can validate a new
/// binding against the recorded control flow.
Circuit optimize_impl(const Circuit& circuit, OptimizeStats* stats,
                      const std::vector<std::vector<std::uint32_t>>* in_exprs,
                      OptimizeTrace* trace) {
  std::vector<Gate> ops = circuit.ops();
  std::vector<bool> alive(ops.size(), true);
  OptimizeStats local;
  const bool tracing = trace != nullptr;
  std::vector<std::vector<std::uint32_t>> exprs;
  if (tracing) {
    assert(in_exprs != nullptr && in_exprs->size() == ops.size());
    exprs = *in_exprs;
  }

  // Returns the first alive op index after `i` acting on qubit `q`, or -1.
  auto next_on_qubit = [&](std::size_t i, int q) -> long {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      if (!alive[j]) continue;
      for (int oq : ops[j].qubits) {
        if (oq == q) return static_cast<long>(j);
      }
    }
    return -1;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!alive[i]) continue;
      const Gate& g = ops[i];
      if (!is_unitary_gate(g.kind)) continue;

      // Identity removal — the fixpoint's only value-dependent branch, so
      // it is the only decision the trace needs to log.
      bool remove = g.kind == GateKind::I;
      if (!remove && is_rotation(g.kind)) {
        const bool ident = angle_is_identity(g.params[0]);
        if (tracing) trace->checks.push_back({exprs[i][0], ident});
        remove = ident;
      }
      if (remove) {
        alive[i] = false;
        ++local.removed_identities;
        changed = true;
        continue;
      }

      // The candidate partner must be the next op on *every* wire of g.
      long j = next_on_qubit(i, g.qubits[0]);
      if (j < 0) continue;
      bool adjacent = true;
      for (std::size_t k = 1; k < g.qubits.size(); ++k) {
        if (next_on_qubit(i, g.qubits[k]) != j) {
          adjacent = false;
          break;
        }
      }
      if (!adjacent) continue;
      Gate& h = ops[static_cast<std::size_t>(j)];
      if (!is_unitary_gate(h.kind)) continue;
      if (h.qubits.size() != g.qubits.size()) continue;
      // h must not touch qubits outside g (guaranteed for 1q; check 2q).
      if (g.qubits.size() == 2) {
        const bool subset =
            (h.qubits[0] == g.qubits[0] || h.qubits[0] == g.qubits[1]) &&
            (h.qubits[1] == g.qubits[0] || h.qubits[1] == g.qubits[1]);
        if (!subset) continue;
      }

      if (is_inverse_pair(g, h)) {
        alive[i] = false;
        alive[static_cast<std::size_t>(j)] = false;
        ++local.cancelled_pairs;
        changed = true;
        continue;
      }
      if (is_rotation(g.kind) && h.kind == g.kind &&
          h.qubits == g.qubits) {
        if (tracing) {
          exprs[static_cast<std::size_t>(j)][0] =
              trace->add(exprs[static_cast<std::size_t>(j)][0], exprs[i][0]);
        }
        h.params[0] += g.params[0];
        alive[i] = false;
        ++local.merged_rotations;
        changed = true;
        continue;
      }
    }
  }

  Circuit out(circuit.num_qubits(), circuit.num_clbits(), circuit.name());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (alive[i]) {
      out.append(ops[i]);
      if (tracing) trace->out_exprs.push_back(exprs[i]);
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace

bool angle_is_identity(double theta) noexcept {
  const double m = std::fmod(std::fmod(theta, kTau) + kTau, kTau);
  return m < kEps || kTau - m < kEps;
}

void OptimizeTrace::eval(std::span<const double> binding,
                         std::vector<double>& out) const {
  out.resize(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const ParamExpr& e = nodes[i];
    switch (e.kind) {
      case ParamExpr::Kind::Slot:
        out[i] = binding[static_cast<std::size_t>(e.slot)];
        break;
      case ParamExpr::Kind::Add:
        out[i] = out[e.a] + out[e.b];
        break;
      case ParamExpr::Kind::Const:
        out[i] = e.value;
        break;
    }
  }
}

Circuit optimize(const Circuit& circuit, OptimizeStats* stats) {
  return optimize_impl(circuit, stats, nullptr, nullptr);
}

Circuit optimize_traced(const Circuit& circuit,
                        const std::vector<std::vector<std::uint32_t>>& in_exprs,
                        OptimizeTrace& trace, OptimizeStats* stats) {
  if (in_exprs.size() != circuit.size()) {
    throw std::invalid_argument("optimize_traced: in_exprs/ops size mismatch");
  }
  return optimize_impl(circuit, stats, &in_exprs, &trace);
}

}  // namespace qucp
