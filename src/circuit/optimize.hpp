#pragma once
// Peephole circuit optimizer.
//
// Emulates the cheap, always-profitable subset of what Qiskit's
// optimization_level=3 performs on these benchmark sizes: cancellation of
// adjacent inverse pairs (H-H, X-X, CX-CX, S-Sdg, T-Tdg, ...), merging of
// consecutive same-axis rotations, and removal of identity rotations.
// Passes iterate to a fixpoint.

#include "circuit/circuit.hpp"

namespace qucp {

struct OptimizeStats {
  int cancelled_pairs = 0;   ///< inverse pairs removed
  int merged_rotations = 0;  ///< rotation gates folded into a predecessor
  int removed_identities = 0;

  [[nodiscard]] int total() const {
    return cancelled_pairs * 2 + merged_rotations + removed_identities;
  }
};

/// Run peephole optimization until no pass makes progress.
/// Measurements and barriers act as optimization fences on their wires.
[[nodiscard]] Circuit optimize(const Circuit& circuit,
                               OptimizeStats* stats = nullptr);

}  // namespace qucp
