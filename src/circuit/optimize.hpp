#pragma once
// Peephole circuit optimizer.
//
// Emulates the cheap, always-profitable subset of what Qiskit's
// optimization_level=3 performs on these benchmark sizes: cancellation of
// adjacent inverse pairs (H-H, X-X, CX-CX, S-Sdg, T-Tdg, ...), merging of
// consecutive same-axis rotations, and removal of identity rotations.
// Passes iterate to a fixpoint.
//
// The traced variant (optimize_traced) additionally records how the output
// parameters derive from the input parameters, as an expression DAG
// (Slot / Add / Const nodes, evaluated in creation order), plus the ordered
// log of every angle_is_identity decision the fixpoint took. The pass's
// control flow depends on parameter *values* only through those decisions
// — adjacency, inverse-pair cancellation and merge opportunities are pure
// structure — so a new parameter binding whose decision log matches can
// reuse the traced output structure verbatim, with parameters re-evaluated
// from the DAG bitwise-identically to a from-scratch run (additions replay
// in the same order). This is the foundation of the parametric transpile
// templates in mapping/parametric.hpp.

#include <cstdint>
#include <span>

#include "circuit/circuit.hpp"

namespace qucp {

struct OptimizeStats {
  int cancelled_pairs = 0;   ///< inverse pairs removed
  int merged_rotations = 0;  ///< rotation gates folded into a predecessor
  int removed_identities = 0;

  [[nodiscard]] int total() const {
    return cancelled_pairs * 2 + merged_rotations + removed_identities;
  }
};

/// One node of a parameter-expression DAG. Slot reads the binding value at
/// `slot`; Add sums two earlier nodes (ids `a`, `b`); Const is a fixed
/// value independent of the binding.
struct ParamExpr {
  enum class Kind : std::uint8_t { Slot, Add, Const };
  Kind kind = Kind::Const;
  std::uint32_t a = 0;    ///< Add: lhs node id
  std::uint32_t b = 0;    ///< Add: rhs node id
  std::int32_t slot = 0;  ///< Slot: binding index
  double value = 0.0;     ///< Const: fixed value
};

/// One recorded angle_is_identity evaluation: node id and outcome. A
/// binding that flips any recorded outcome would have steered the fixpoint
/// differently, so template binds validate the whole log before reusing
/// the traced structure.
struct ParamCheck {
  std::uint32_t node = 0;
  bool identity = false;
};

struct OptimizeTrace {
  std::vector<ParamExpr> nodes;
  std::vector<ParamCheck> checks;
  /// Node id per (output op, param), parallel to the returned circuit's
  /// ops. Appended by optimize_traced; clear between stages when chaining
  /// several traced passes over one node list.
  std::vector<std::vector<std::uint32_t>> out_exprs;

  std::uint32_t leaf(std::int32_t slot) {
    nodes.push_back({ParamExpr::Kind::Slot, 0, 0, slot, 0.0});
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }
  std::uint32_t constant(double value) {
    nodes.push_back({ParamExpr::Kind::Const, 0, 0, 0, value});
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }
  std::uint32_t add(std::uint32_t a, std::uint32_t b) {
    nodes.push_back({ParamExpr::Kind::Add, a, b, 0, 0.0});
    return static_cast<std::uint32_t>(nodes.size() - 1);
  }
  /// Evaluate every node under `binding` into `out` (resized), replaying
  /// the recorded additions in creation order — bitwise identical to what
  /// the traced optimize computed for that binding.
  void eval(std::span<const double> binding, std::vector<double>& out) const;
};

/// Angle equivalent to zero mod 2*pi (identity up to an unobservable global
/// phase), the optimizer's only value-dependent decision. Exposed so
/// template binds validate recorded decision logs with the same predicate.
[[nodiscard]] bool angle_is_identity(double theta) noexcept;

/// Run peephole optimization until no pass makes progress.
/// Measurements and barriers act as optimization fences on their wires.
[[nodiscard]] Circuit optimize(const Circuit& circuit,
                               OptimizeStats* stats = nullptr);

/// Traced variant: identical output to optimize() (same arithmetic, same
/// order), recording the parameter provenance into `trace`. `in_exprs`
/// gives the node id of each input op's params (in_exprs[i][j] for
/// ops[i].params[j]; sized exactly like the circuit's param lists) —
/// typically fresh trace.leaf() slots, or composed expressions when a
/// later pipeline stage feeds a routed circuit back through. Appends to
/// trace.nodes/checks and fills trace.out_exprs for the surviving ops.
[[nodiscard]] Circuit optimize_traced(
    const Circuit& circuit,
    const std::vector<std::vector<std::uint32_t>>& in_exprs,
    OptimizeTrace& trace, OptimizeStats* stats = nullptr);

}  // namespace qucp
