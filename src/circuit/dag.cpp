#include "circuit/dag.hpp"

#include <algorithm>
#include <stdexcept>

namespace qucp {

DagCircuit::DagCircuit(const Circuit& circuit) : circuit_(&circuit) {
  const auto& ops = circuit.ops();
  succs_.resize(ops.size());
  in_degree_.assign(ops.size(), 0);

  // last op seen on each qubit / clbit wire
  std::vector<int> last_q(circuit.num_qubits(), -1);
  std::vector<int> last_c(circuit.num_clbits(), -1);

  auto link = [&](int from, std::size_t to) {
    if (from < 0) return;
    auto& s = succs_[static_cast<std::size_t>(from)];
    if (std::find(s.begin(), s.end(), to) == s.end()) {
      s.push_back(to);
      ++in_degree_[to];
    }
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Gate& g = ops[i];
    for (int q : g.qubits) {
      link(last_q[q], i);
      last_q[q] = static_cast<int>(i);
    }
    if (g.kind == GateKind::Measure) {
      link(last_c[g.clbit], i);
      last_c[g.clbit] = static_cast<int>(i);
    }
  }
}

std::vector<std::size_t> DagCircuit::initial_front() const {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < in_degree_.size(); ++i) {
    if (in_degree_[i] == 0) front.push_back(i);
  }
  return front;
}

std::vector<std::size_t> DagCircuit::topological_order() const {
  std::vector<int> pending = in_degree_;
  std::vector<std::size_t> order;
  order.reserve(num_nodes());
  // Kahn's algorithm with an index-ordered worklist for stability.
  std::vector<std::size_t> ready = initial_front();
  std::make_heap(ready.begin(), ready.end(), std::greater<>{});
  while (!ready.empty()) {
    std::pop_heap(ready.begin(), ready.end(), std::greater<>{});
    const std::size_t n = ready.back();
    ready.pop_back();
    order.push_back(n);
    for (std::size_t s : succs_[n]) {
      if (--pending[s] == 0) {
        ready.push_back(s);
        std::push_heap(ready.begin(), ready.end(), std::greater<>{});
      }
    }
  }
  if (order.size() != num_nodes()) {
    throw std::logic_error("DagCircuit: cycle detected");
  }
  return order;
}

FrontLayer::FrontLayer(const DagCircuit& dag)
    : dag_(&dag), pending_(dag.num_nodes()) {
  for (std::size_t i = 0; i < dag.num_nodes(); ++i) {
    pending_[i] = dag.in_degree(i);
  }
  front_ = dag.initial_front();
}

void FrontLayer::complete(std::size_t node) {
  auto it = std::find(front_.begin(), front_.end(), node);
  if (it == front_.end()) {
    throw std::invalid_argument("FrontLayer::complete: node not in front");
  }
  front_.erase(it);
  for (std::size_t s : dag_->successors(node)) {
    if (--pending_[s] == 0) front_.push_back(s);
  }
}

}  // namespace qucp
