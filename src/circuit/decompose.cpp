#include "circuit/decompose.hpp"

namespace qucp {

Circuit decompose_swaps(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.num_clbits(), circuit.name());
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::SWAP) {
      out.cx(g.qubits[0], g.qubits[1]);
      out.cx(g.qubits[1], g.qubits[0]);
      out.cx(g.qubits[0], g.qubits[1]);
    } else {
      out.append(g);
    }
  }
  return out;
}

Circuit decompose_cz(const Circuit& circuit) {
  Circuit out(circuit.num_qubits(), circuit.num_clbits(), circuit.name());
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::CZ) {
      out.h(g.qubits[1]);
      out.cx(g.qubits[0], g.qubits[1]);
      out.h(g.qubits[1]);
    } else {
      out.append(g);
    }
  }
  return out;
}

Circuit lower_to_cx_basis(const Circuit& circuit) {
  return decompose_cz(decompose_swaps(circuit));
}

}  // namespace qucp
