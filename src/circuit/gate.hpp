#pragma once
// Gate set and per-gate metadata.
//
// The gate set covers what the paper's benchmarks (QASMBench / RevLib) and
// the VQE / ZNE pipelines need: Pauli + Clifford 1q gates, T/Tdg, rotations,
// the IBM u1/u2/u3 family, CX/CZ/SWAP entanglers, plus measurement and
// barrier pseudo-ops.

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"
#include "common/small_vector.hpp"

namespace qucp {

enum class GateKind : std::uint8_t {
  I,
  X,
  Y,
  Z,
  H,
  S,
  Sdg,
  T,
  Tdg,
  SX,
  RX,
  RY,
  RZ,
  U1,
  U2,
  U3,
  CX,
  CZ,
  SWAP,
  Barrier,
  Measure,
};

/// One operation in a circuit.
///
/// `qubits` holds 1 entry for single-qubit gates and measure, 2 for
/// two-qubit gates, and any number (>=1) for barriers. `params` holds the
/// rotation angles in radians (RX/RY/RZ/U1: 1, U2: 2, U3: 3, others: 0).
/// For Measure, `clbit` is the destination classical bit.
///
/// Operand and angle lists live inline (no heap allocation) up to the gate
/// set's natural widths — 2 qubits, 3 angles — so copying a Gate is a
/// memcpy. Only device-wide barriers on >2 qubits spill to the heap.
struct Gate {
  GateKind kind = GateKind::I;
  SmallVector<int, 2> qubits;
  SmallVector<double, 3> params;
  int clbit = -1;

  [[nodiscard]] bool operator==(const Gate& other) const = default;
};

/// Number of qubit operands the kind requires (barrier is variadic: 0 here).
[[nodiscard]] int gate_arity(GateKind kind) noexcept;

/// Number of angle parameters the kind requires.
[[nodiscard]] int gate_param_count(GateKind kind) noexcept;

/// Lower-case OpenQASM mnemonic ("cx", "rz", ...).
[[nodiscard]] std::string_view gate_name(GateKind kind) noexcept;

/// Inverse mnemonic lookup; empty when unknown.
[[nodiscard]] std::optional<GateKind> gate_from_name(std::string_view name);

/// True for unitary gates (everything except Barrier and Measure).
[[nodiscard]] bool is_unitary_gate(GateKind kind) noexcept;

/// True for CX/CZ/SWAP.
[[nodiscard]] bool is_two_qubit_gate(GateKind kind) noexcept;

/// True when the gate is its own inverse (X,Y,Z,H,CX,CZ,SWAP,I,...).
[[nodiscard]] bool is_self_inverse(GateKind kind) noexcept;

/// The inverse gate of (kind, params). Self-inverse kinds return themselves;
/// S<->Sdg, T<->Tdg; rotations negate angles; U2/U3 invert analytically.
[[nodiscard]] Gate inverse_gate(const Gate& g);

/// Unitary matrix of a gate kind with the given params (2x2 or 4x4 for
/// two-qubit kinds, little-endian convention: qubit operand order
/// {control, target} for CX). Throws for Barrier/Measure.
[[nodiscard]] Matrix gate_matrix(GateKind kind,
                                 std::span<const double> params = {});

/// Allocation-free core of gate_matrix: writes the row-major unitary into
/// `out` (capacity >= 16 entries) and returns the dimension (2 or 4). The
/// entries are computed by exactly the arithmetic gate_matrix uses, so the
/// two are bit-identical; hot compile paths (CompiledProgram::materialize)
/// call this to skip the per-gate Matrix heap allocation.
int gate_matrix_into(GateKind kind, std::span<const double> params, cx* out);

/// Convenience: unitary of a concrete gate.
[[nodiscard]] Matrix gate_matrix(const Gate& g);

/// Lock-free lookup of the unitary of a parameterless gate kind (X, H, T,
/// CX, ...): a pointer into an immutable table built on first use, or null
/// for parameterized / non-unitary kinds. The hot path under every
/// simulator — no allocation, no mutex.
[[nodiscard]] const Matrix* fixed_gate_matrix(GateKind kind);

}  // namespace qucp
