#pragma once
// Quantum circuit intermediate representation.
//
// A Circuit is an ordered list of Gate ops over `num_qubits` qubits and
// `num_clbits` classical bits. It is a plain value type: cheap to copy for
// the small NISQ benchmarks this library targets, and every transformation
// (mapping, folding, optimization) returns a new Circuit.

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "circuit/gate.hpp"

namespace qucp {

/// Both fingerprints of one circuit, computed in a single walk.
struct CircuitFingerprints {
  std::uint64_t exact = 0;       ///< == circuit_fingerprint(circuit)
  std::uint64_t structural = 0;  ///< == structural_fingerprint(circuit)
};

namespace detail {

/// Lazily filled fingerprint cache attached to a Circuit. Concurrent const
/// readers may race to fill it; both compute identical values from the same
/// gate list, and every access is an atomic, so the race is benign and
/// TSan-clean (values publish via release/acquire on state_). Mutation of
/// the owning circuit invalidates; non-const access requires external
/// synchronization, exactly like the circuit's own op list.
class FingerprintMemo {
 public:
  FingerprintMemo() = default;
  FingerprintMemo(const FingerprintMemo& other) noexcept { *this = other; }
  FingerprintMemo& operator=(const FingerprintMemo& other) noexcept {
    CircuitFingerprints fp;
    if (other.load(fp)) {
      store(fp);
    } else {
      invalidate();
    }
    return *this;
  }
  FingerprintMemo(FingerprintMemo&& other) noexcept { *this = other; }
  FingerprintMemo& operator=(FingerprintMemo&& other) noexcept {
    return *this = static_cast<const FingerprintMemo&>(other);
  }

  bool load(CircuitFingerprints& out) const noexcept {
    if (state_.load(std::memory_order_acquire) != 1) return false;
    out.exact = exact_.load(std::memory_order_relaxed);
    out.structural = structural_.load(std::memory_order_relaxed);
    return true;
  }
  void store(const CircuitFingerprints& fp) const noexcept {
    exact_.store(fp.exact, std::memory_order_relaxed);
    structural_.store(fp.structural, std::memory_order_relaxed);
    state_.store(1, std::memory_order_release);
  }
  void invalidate() noexcept {
    if (state_.load(std::memory_order_relaxed) != 0) {
      state_.store(0, std::memory_order_relaxed);
    }
  }

 private:
  mutable std::atomic<std::uint64_t> exact_{0};
  mutable std::atomic<std::uint64_t> structural_{0};
  mutable std::atomic<int> state_{0};  ///< 0 = invalid, 1 = valid
};

}  // namespace detail

class Circuit {
 public:
  Circuit() = default;

  /// Construct an empty circuit. num_clbits defaults to num_qubits.
  explicit Circuit(int num_qubits, std::optional<int> num_clbits = {},
                   std::string name = "");

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] int num_clbits() const noexcept { return num_clbits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::vector<Gate>& ops() const noexcept { return ops_; }
  [[nodiscard]] std::size_t size() const noexcept { return ops_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ops_.empty(); }

  /// Append an op after validating operand counts and index ranges.
  void append(Gate g);

  /// Overwrite parameter `index` of op `op` (range-checked, no other
  /// revalidation — the gate kind fixes the parameter count). Used by the
  /// parametric compilation paths to bind fresh angles into a structural
  /// template without rebuilding the op list.
  void set_param(std::size_t op, std::size_t index, double value) {
    ops_.at(op).params.at(index) = value;
    fp_memo_.invalidate();
  }

  /// Unchecked set_param for the template-binding hot loop, which patches
  /// hundreds of pre-validated (op, index) pairs back to back: no bounds
  /// checks, and the fingerprint memo is left alone so one
  /// invalidate_fingerprints() call can close the whole patch sequence.
  void patch_param(std::size_t op, std::size_t index, double value) noexcept {
    ops_[op].params[index] = value;
  }
  /// Drop memoized fingerprints after a patch_param sequence. Equivalent
  /// to what every set_param call does implicitly.
  void invalidate_fingerprints() noexcept { fp_memo_.invalidate(); }

  // -- gate helpers -------------------------------------------------------
  void i(int q) { append({GateKind::I, {q}, {}}); }
  void x(int q) { append({GateKind::X, {q}, {}}); }
  void y(int q) { append({GateKind::Y, {q}, {}}); }
  void z(int q) { append({GateKind::Z, {q}, {}}); }
  void h(int q) { append({GateKind::H, {q}, {}}); }
  void s(int q) { append({GateKind::S, {q}, {}}); }
  void sdg(int q) { append({GateKind::Sdg, {q}, {}}); }
  void t(int q) { append({GateKind::T, {q}, {}}); }
  void tdg(int q) { append({GateKind::Tdg, {q}, {}}); }
  void sx(int q) { append({GateKind::SX, {q}, {}}); }
  void rx(double theta, int q) { append({GateKind::RX, {q}, {theta}}); }
  void ry(double theta, int q) { append({GateKind::RY, {q}, {theta}}); }
  void rz(double theta, int q) { append({GateKind::RZ, {q}, {theta}}); }
  void u1(double lam, int q) { append({GateKind::U1, {q}, {lam}}); }
  void u2(double phi, double lam, int q) {
    append({GateKind::U2, {q}, {phi, lam}});
  }
  void u3(double theta, double phi, double lam, int q) {
    append({GateKind::U3, {q}, {theta, phi, lam}});
  }
  void cx(int control, int target) {
    append({GateKind::CX, {control, target}, {}});
  }
  void cz(int a, int b) { append({GateKind::CZ, {a, b}, {}}); }
  void swap(int a, int b) { append({GateKind::SWAP, {a, b}, {}}); }
  void barrier();                       ///< barrier over all qubits
  void barrier(std::vector<int> qubits);
  void measure(int qubit, int clbit);
  void measure_all();                   ///< measure qubit i into clbit i

  /// Standard 15-op Toffoli decomposition (6 CX, 7 T/Tdg, 2 H).
  void ccx(int c0, int c1, int target);

  // -- queries ------------------------------------------------------------
  /// Count of ops excluding barriers (the paper's "Gates" column counts
  /// unitary gates; measurements excluded).
  [[nodiscard]] int gate_count() const;
  /// Count of two-qubit gates (CX/CZ/SWAP).
  [[nodiscard]] int two_qubit_count() const;
  /// Count per mnemonic.
  [[nodiscard]] std::map<std::string, int> count_ops() const;
  /// Circuit depth over unitary gates + measurements (barriers synchronize
  /// but add no depth).
  [[nodiscard]] int depth() const;
  /// Depth counting only two-qubit gates.
  [[nodiscard]] int two_qubit_depth() const;
  /// True when any op is a measurement.
  [[nodiscard]] bool has_measurements() const;
  /// Qubits that appear in at least one op.
  [[nodiscard]] std::vector<int> active_qubits() const;

  // -- transformations (return new circuits) ------------------------------
  /// Copy without measurements and barriers.
  [[nodiscard]] Circuit without_final_ops() const;
  /// Compact onto the active qubits only (relative order preserved, clbits
  /// unchanged). Useful for simulating device-wide circuits whose ops all
  /// sit inside one small partition.
  [[nodiscard]] Circuit compacted() const;
  /// Reverse op order with each unitary inverted. Requires no measurements.
  [[nodiscard]] Circuit inverse() const;
  /// Relabel qubits: new_qubit = layout[old_qubit]. The layout must be a
  /// permutation injection into [0, new_num_qubits).
  [[nodiscard]] Circuit remapped(std::span<const int> layout,
                                 int new_num_qubits) const;
  /// Append `other`'s ops onto `*this` (operand counts must fit). The
  /// optional qubit_map relabels other's qubits into this circuit; clbits
  /// are mapped through clbit_offset.
  void compose(const Circuit& other, std::span<const int> qubit_map = {},
               int clbit_offset = 0);
  /// Total unitary of the circuit (no measurements allowed); little-endian:
  /// qubit 0 is the least significant index bit. Exponential in qubits —
  /// intended for <= ~12 qubits.
  [[nodiscard]] Matrix to_unitary() const;

  /// Exact + structural fingerprints of this circuit, memoized until the
  /// next mutation. Backing store for the circuit_fingerprint family of
  /// free functions — a job that is hashed by the transpile cache and then
  /// again by the compiled-program cache walks its gate list once.
  [[nodiscard]] CircuitFingerprints fingerprints() const;

 private:
  void check_qubit(int q) const;

  int num_qubits_ = 0;
  int num_clbits_ = 0;
  std::string name_;
  std::vector<Gate> ops_;
  mutable detail::FingerprintMemo fp_memo_;
};

/// Stable 64-bit content hash of a circuit: qubit/clbit counts plus every
/// op's kind, operands, clbit and exact parameter bit patterns. The name is
/// deliberately excluded — two same-named circuits with different gates
/// must not collide, and renaming must not invalidate transpilation
/// caches. Used as the cache and canonical-ordering key by the
/// ExecutionService.
[[nodiscard]] std::uint64_t circuit_fingerprint(const Circuit& circuit);

/// Structural sibling of circuit_fingerprint: hashes gate kinds, operands,
/// clbits and parameter *counts* in order, but treats every parameter value
/// as an anonymous slot. Two circuits differing only in rotation angles
/// (an ansatz across optimizer iterations, ZNE folded variants, ...) share
/// a structural fingerprint, which keys the parametric transpile-template
/// and fusion-plan caches. A circuit with no parameters hashes identically
/// to its own structure, so the key degenerates gracefully for
/// non-parameterized traffic.
[[nodiscard]] std::uint64_t structural_fingerprint(const Circuit& circuit);

/// Computes circuit_fingerprint and structural_fingerprint together in one
/// pass over the ops (memoized on the circuit until its next mutation).
/// Hot caches (CompiledProgramCache::fused, the parametric TranspileCache)
/// need both keys per lookup; walking the gate list once halves the
/// hashing cost on a cache miss.
[[nodiscard]] CircuitFingerprints circuit_fingerprints(const Circuit& circuit);

/// Slot -> value view of a circuit's parameters: slot s is the s-th gate
/// parameter encountered scanning ops front to back (U2/U3 contribute one
/// slot per angle). Circuits with equal structural_fingerprint have the
/// same slot layout, so a binding extracted from one can be bound into a
/// template built from another.
struct ParamBinding {
  std::vector<double> values;  ///< values[slot], circuit order

  ParamBinding() = default;
  explicit ParamBinding(const Circuit& circuit);

  [[nodiscard]] std::size_t size() const noexcept { return values.size(); }
  [[nodiscard]] bool operator==(const ParamBinding&) const = default;
};

}  // namespace qucp
