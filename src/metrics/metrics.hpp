#pragma once
// Output-fidelity metrics from the paper's Eqs. (2)-(4).
//
// PST (Probability of a Successful Trial) scores circuits with one known
// correct outcome; JSD (Jensen-Shannon divergence, base-2, in [0,1])
// scores circuits whose ideal output is a distribution. KL is the building
// block of JSD; TVD and Hellinger are provided for cross-checks.

#include <cstdint>

#include "sim/counts.hpp"

namespace qucp {

/// PST = successful trials / total trials (Eq. 2).
[[nodiscard]] double pst(const Counts& counts, std::uint64_t expected);

/// PST from an exact distribution: probability mass on the expected outcome.
[[nodiscard]] double pst(const Distribution& dist, std::uint64_t expected);

/// Kullback-Leibler divergence D(P||Q) in bits (Eq. 4). Infinite when P has
/// support where Q does not; callers needing finiteness use JSD.
[[nodiscard]] double kl_divergence(const Distribution& p,
                                   const Distribution& q);

/// Jensen-Shannon divergence (Eq. 3), base-2: always finite, symmetric,
/// bounded to [0, 1]. Lower is better.
[[nodiscard]] double jsd(const Distribution& p, const Distribution& q);

/// Total variation distance, [0, 1].
[[nodiscard]] double tvd(const Distribution& p, const Distribution& q);

/// Hellinger distance, [0, 1].
[[nodiscard]] double hellinger(const Distribution& p, const Distribution& q);

/// Hardware throughput: used qubits / total qubits (paper §II-A).
[[nodiscard]] double hardware_throughput(int qubits_used, int device_qubits);

}  // namespace qucp
