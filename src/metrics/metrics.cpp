#include "metrics/metrics.hpp"

#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace qucp {

namespace {

double log2_safe(double x) { return std::log2(x); }

std::set<std::uint64_t> support_union(const Distribution& p,
                                      const Distribution& q) {
  std::set<std::uint64_t> keys;
  for (const auto& [k, v] : p.probs()) keys.insert(k);
  for (const auto& [k, v] : q.probs()) keys.insert(k);
  return keys;
}

}  // namespace

double pst(const Counts& counts, std::uint64_t expected) {
  if (counts.total() == 0) throw std::invalid_argument("pst: no shots");
  return static_cast<double>(counts.count(expected)) / counts.total();
}

double pst(const Distribution& dist, std::uint64_t expected) {
  return dist.prob(expected);
}

double kl_divergence(const Distribution& p, const Distribution& q) {
  double d = 0.0;
  for (const auto& [k, pk] : p.probs()) {
    const double qk = q.prob(k);
    if (qk <= 0.0) return std::numeric_limits<double>::infinity();
    d += pk * log2_safe(pk / qk);
  }
  return d;
}

double jsd(const Distribution& p, const Distribution& q) {
  double d = 0.0;
  for (std::uint64_t k : support_union(p, q)) {
    const double pk = p.prob(k);
    const double qk = q.prob(k);
    const double mk = 0.5 * (pk + qk);
    if (pk > 0.0) d += 0.5 * pk * log2_safe(pk / mk);
    if (qk > 0.0) d += 0.5 * qk * log2_safe(qk / mk);
  }
  // Numerical guard: JSD in base 2 lies in [0, 1].
  return std::min(1.0, std::max(0.0, d));
}

double tvd(const Distribution& p, const Distribution& q) {
  double d = 0.0;
  for (std::uint64_t k : support_union(p, q)) {
    d += std::abs(p.prob(k) - q.prob(k));
  }
  return 0.5 * d;
}

double hellinger(const Distribution& p, const Distribution& q) {
  double s = 0.0;
  for (std::uint64_t k : support_union(p, q)) {
    const double diff = std::sqrt(p.prob(k)) - std::sqrt(q.prob(k));
    s += diff * diff;
  }
  return std::sqrt(s / 2.0);
}

double hardware_throughput(int qubits_used, int device_qubits) {
  if (device_qubits <= 0 || qubits_used < 0 || qubits_used > device_qubits) {
    throw std::invalid_argument("hardware_throughput: bad arguments");
  }
  return static_cast<double>(qubits_used) / device_qubits;
}

}  // namespace qucp
