#pragma once
// Simultaneous RB orchestration: crosstalk characterization (Fig. 2) and
// overhead accounting (Table I).
//
// Characterization runs, for every one-hop edge pair, individual RB on each
// edge and simultaneous RB on both; a pair whose simultaneous error-per-
// cycle ratio exceeds `ratio_threshold` is flagged as a crosstalk pair with
// gamma = that ratio. The result feeds QuMC (as its SRB estimates) and is
// validated against the device's planted ground truth in tests.
//
// Overhead accounting mirrors the paper's arithmetic: one-hop pairs are
// packed into a minimum number of non-interfering groups (greedy coloring,
// largest degree first); jobs = groups x seeds x 3 (two individual RB jobs
// + one simultaneous job per group and seed).

#include <string>
#include <vector>

#include "srb/rb.hpp"

namespace qucp {

struct PairCharacterization {
  int edge1 = 0;  ///< device edge id
  int edge2 = 0;
  double epc1_individual = 0.0;
  double epc1_simultaneous = 0.0;
  double epc2_individual = 0.0;
  double epc2_simultaneous = 0.0;
  double ratio = 1.0;  ///< max of the two per-edge EPC ratios, >= 1
  bool significant = false;
};

struct CharacterizationResult {
  std::vector<PairCharacterization> pairs;
  CrosstalkModel estimates;  ///< significant pairs with gamma = ratio
};

struct SrbCharacterizationOptions {
  RbOptions rb;
  double ratio_threshold = 2.0;  ///< Murali et al. use E(gi|gj)/E(gi) > 2
};

/// Characterize all one-hop pairs of the device by simulated SRB.
[[nodiscard]] CharacterizationResult characterize_crosstalk(
    const Device& device, const SrbCharacterizationOptions& options,
    Rng rng);

/// SRB cost accounting (Table I).
struct SrbOverhead {
  int qubits = 0;
  int edges = 0;           ///< CNOTs on the chip (paper's "1-hop pairs" row)
  int one_hop_pairs = 0;   ///< disjoint edge pairs at one-hop distance
  int groups = 0;          ///< parallel SRB groups after coloring
  int seeds = 0;
  int jobs = 0;            ///< groups * seeds * 3
};

[[nodiscard]] SrbOverhead srb_overhead(const Topology& topo, int seeds = 5);

/// Greedy coloring of the pair-conflict graph. Two one-hop pairs conflict
/// when any of their edges share a qubit or lie within one hop of each
/// other (they would crosstalk during simultaneous benchmarking). Returns
/// the group index of each pair (same order as topo.one_hop_edge_pairs()).
[[nodiscard]] std::vector<int> group_one_hop_pairs(const Topology& topo);

}  // namespace qucp
