#pragma once
// Randomized benchmarking of a coupled qubit pair.
//
// We use mirror (Loschmidt-echo) sequences: m cycles of [random 1q
// Clifford layer + CX] followed by the exact inverse circuit. Survival
// P(00) decays exponentially in m with the pair's effective error rate —
// the same observable SRB uses on hardware, at a fraction of the
// implementation cost (recovery is circuit inversion rather than Clifford
// tableau compilation). DESIGN.md records this substitution.

#include <vector>

#include "common/rng.hpp"
#include "hardware/device.hpp"
#include "sim/executor.hpp"

namespace qucp {

struct RbOptions {
  std::vector<int> lengths = {1, 3, 6, 10, 15};  ///< cycles per sequence
  int seeds = 5;          ///< random sequences averaged per length
  bool sampled = false;   ///< true: estimate survival from sampled shots
  int shots = 2048;
  ExecOptions exec;       ///< execution configuration (noise toggles)
};

/// One RB sequence of `cycles` cycles on edge (a, b), including the mirror
/// inverse and terminal measurements. Physical circuit over device qubits.
[[nodiscard]] Circuit make_rb_sequence(const Device& device, int a, int b,
                                       int cycles, Rng& rng);

struct RbResult {
  double epc = 0.0;     ///< error per cycle, (d-1)/d * (1 - alpha_cycle)
  double alpha = 0.0;   ///< fitted decay per cycle
  std::vector<double> lengths;
  std::vector<double> survival;  ///< mean P(00) per length
};

/// RB on a single edge, run alone on the device.
[[nodiscard]] RbResult run_rb(const Device& device, int a, int b,
                              const RbOptions& options, Rng rng);

/// Simultaneous RB: sequences on both edges execute in parallel; returns
/// the per-edge results in order {(a1,b1), (a2,b2)}. Edges must be
/// disjoint.
[[nodiscard]] std::pair<RbResult, RbResult> run_simultaneous_rb(
    const Device& device, int a1, int b1, int a2, int b2,
    const RbOptions& options, Rng rng);

}  // namespace qucp
