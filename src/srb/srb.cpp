#include "srb/srb.hpp"

#include <algorithm>
#include <set>

namespace qucp {

namespace {

/// Minimum hop distance between two edges' endpoints (0 when sharing).
int edge_distance(const Topology& topo, int e, int f) {
  const Edge& a = topo.edges()[e];
  const Edge& b = topo.edges()[f];
  if (a.shares_qubit(b)) return 0;
  return std::min({topo.distance(a.a, b.a), topo.distance(a.a, b.b),
                   topo.distance(a.b, b.a), topo.distance(a.b, b.b)});
}

/// Two one-hop pairs interfere when any cross-pair edge combination is
/// within one hop (or shares a qubit).
bool pairs_conflict(const Topology& topo, const std::pair<int, int>& p,
                    const std::pair<int, int>& q) {
  for (int e : {p.first, p.second}) {
    for (int f : {q.first, q.second}) {
      if (e == f) return true;
      if (edge_distance(topo, e, f) <= 1) return true;
    }
  }
  return false;
}

}  // namespace

std::vector<int> group_one_hop_pairs(const Topology& topo) {
  const auto pairs = topo.one_hop_edge_pairs();
  const std::size_t n = pairs.size();
  // Conflict adjacency.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (pairs_conflict(topo, pairs[i], pairs[j])) {
        adj[i].push_back(j);
        adj[j].push_back(i);
      }
    }
  }
  // Greedy coloring, largest degree first (Welsh-Powell).
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (adj[a].size() != adj[b].size()) {
      return adj[a].size() > adj[b].size();
    }
    return a < b;
  });
  std::vector<int> color(n, -1);
  for (std::size_t v : order) {
    std::set<int> used;
    for (std::size_t nb : adj[v]) {
      if (color[nb] >= 0) used.insert(color[nb]);
    }
    int c = 0;
    while (used.count(c)) ++c;
    color[v] = c;
  }
  return color;
}

SrbOverhead srb_overhead(const Topology& topo, int seeds) {
  SrbOverhead out;
  out.qubits = topo.num_qubits();
  out.edges = topo.num_edges();
  out.one_hop_pairs = static_cast<int>(topo.one_hop_edge_pairs().size());
  const std::vector<int> colors = group_one_hop_pairs(topo);
  out.groups =
      colors.empty() ? 0 : *std::max_element(colors.begin(), colors.end()) + 1;
  out.seeds = seeds;
  // Per group and seed: one job benchmarking first edges alone, one for
  // second edges alone, one simultaneous — the paper's 3x multiplier.
  out.jobs = out.groups * seeds * 3;
  return out;
}

CharacterizationResult characterize_crosstalk(
    const Device& device, const SrbCharacterizationOptions& options,
    Rng rng) {
  const Topology& topo = device.topology();
  CharacterizationResult result;
  for (const auto& [e1, e2] : topo.one_hop_edge_pairs()) {
    const Edge& edge1 = topo.edges()[e1];
    const Edge& edge2 = topo.edges()[e2];
    Rng pair_rng = rng.derive("pair:" + std::to_string(e1) + ":" +
                              std::to_string(e2));

    const RbResult ind1 = run_rb(device, edge1.a, edge1.b, options.rb,
                                 pair_rng.derive("ind1"));
    const RbResult ind2 = run_rb(device, edge2.a, edge2.b, options.rb,
                                 pair_rng.derive("ind2"));
    const auto [sim1, sim2] =
        run_simultaneous_rb(device, edge1.a, edge1.b, edge2.a, edge2.b,
                            options.rb, pair_rng.derive("sim"));

    PairCharacterization pc;
    pc.edge1 = e1;
    pc.edge2 = e2;
    pc.epc1_individual = ind1.epc;
    pc.epc1_simultaneous = sim1.epc;
    pc.epc2_individual = ind2.epc;
    pc.epc2_simultaneous = sim2.epc;
    const double r1 =
        ind1.epc > 1e-9 ? sim1.epc / ind1.epc : 1.0;
    const double r2 =
        ind2.epc > 1e-9 ? sim2.epc / ind2.epc : 1.0;
    pc.ratio = std::max({1.0, r1, r2});
    pc.significant = pc.ratio > options.ratio_threshold;
    if (pc.significant) {
      result.estimates.add_pair(e1, e2, pc.ratio);
    }
    result.pairs.push_back(pc);
  }
  return result;
}

}  // namespace qucp
