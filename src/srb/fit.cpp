#include "srb/fit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace qucp {

namespace {

/// Solve a 3x3 linear system in place (partial pivoting). Returns false on
/// a (near-)singular matrix.
bool solve3(double a[3][3], double b[3], double x[3]) {
  int perm[3] = {0, 1, 2};
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 3; ++r) {
      if (std::abs(a[perm[r]][col]) > std::abs(a[perm[pivot]][col])) pivot = r;
    }
    std::swap(perm[col], perm[pivot]);
    const double diag = a[perm[col]][col];
    if (std::abs(diag) < 1e-14) return false;
    for (int r = col + 1; r < 3; ++r) {
      const double f = a[perm[r]][col] / diag;
      for (int c = col; c < 3; ++c) a[perm[r]][c] -= f * a[perm[col]][c];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  for (int row = 2; row >= 0; --row) {
    double acc = b[perm[row]];
    for (int c = row + 1; c < 3; ++c) acc -= a[perm[row]][c] * x[c];
    x[row] = acc / a[perm[row]][row];
  }
  return true;
}

double rmse_of(std::span<const double> xs, std::span<const double> ys,
               double A, double alpha, double B) {
  double s = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - (A * std::pow(alpha, xs[i]) + B);
    s += r * r;
  }
  return std::sqrt(s / static_cast<double>(xs.size()));
}

}  // namespace

DecayFit fit_exponential_decay(std::span<const double> xs,
                               std::span<const double> ys,
                               double asymptote_guess) {
  if (xs.size() != ys.size() || xs.size() < 3) {
    throw std::invalid_argument("fit_exponential_decay: need >= 3 points");
  }
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] <= xs[i - 1]) {
      throw std::invalid_argument(
          "fit_exponential_decay: xs must be strictly increasing");
    }
  }

  // Log-linear initialization on (y - B).
  double B = asymptote_guess;
  const double y_min = *std::min_element(ys.begin(), ys.end());
  if (B >= y_min) B = std::max(0.0, y_min - 0.01);
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int n_used = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double shifted = ys[i] - B;
    if (shifted <= 1e-9) continue;
    const double ly = std::log(shifted);
    sx += xs[i];
    sy += ly;
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ly;
    ++n_used;
  }
  double alpha = 0.9;
  double A = ys[0] - B;
  if (n_used >= 2) {
    const double denom = n_used * sxx - sx * sx;
    if (std::abs(denom) > 1e-12) {
      const double slope = (n_used * sxy - sx * sy) / denom;
      const double intercept = (sy - slope * sx) / n_used;
      alpha = std::clamp(std::exp(slope), 1e-6, 1.0);
      A = std::exp(intercept);
    }
  }

  // Levenberg-Marquardt refinement: damping shrinks on success and grows
  // on a rejected step, so a bad initialization still escapes.
  DecayFit fit{A, alpha, B, rmse_of(xs, ys, A, alpha, B), false};
  double lambda = 1e-3;
  for (int iter = 0; iter < 200; ++iter) {
    double jtj[3][3] = {{0, 0, 0}, {0, 0, 0}, {0, 0, 0}};
    double jtr[3] = {0, 0, 0};
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double ax = std::pow(alpha, xs[i]);
      const double model = A * ax + B;
      const double resid = ys[i] - model;
      // d/dA = alpha^x ; d/dalpha = A x alpha^(x-1) ; d/dB = 1
      const double j[3] = {ax,
                           alpha > 0 ? A * xs[i] * ax / alpha : 0.0,
                           1.0};
      for (int r = 0; r < 3; ++r) {
        for (int c = 0; c < 3; ++c) jtj[r][c] += j[r] * j[c];
        jtr[r] += j[r] * resid;
      }
    }
    for (int d = 0; d < 3; ++d) jtj[d][d] *= 1.0 + lambda;
    for (int d = 0; d < 3; ++d) jtj[d][d] += 1e-12;
    double step[3];
    if (!solve3(jtj, jtr, step)) break;
    const double new_A = A + step[0];
    const double new_alpha = std::clamp(alpha + step[1], 1e-6, 1.0);
    const double new_B = B + step[2];
    const double new_rmse = rmse_of(xs, ys, new_A, new_alpha, new_B);
    if (new_rmse <= fit.rmse + 1e-15) {
      A = new_A;
      alpha = new_alpha;
      B = new_B;
      const bool tiny_step = std::abs(step[0]) + std::abs(step[1]) +
                                 std::abs(step[2]) <
                             1e-12;
      fit = {A, alpha, B, new_rmse, tiny_step || new_rmse < 1e-14};
      if (fit.converged) break;
      lambda = std::max(lambda * 0.3, 1e-9);
    } else {
      lambda *= 10.0;
      if (lambda > 1e9) {
        fit.converged = true;  // cannot improve further
        break;
      }
    }
  }
  return fit;
}

}  // namespace qucp
