#pragma once
// Exponential-decay fitting for randomized benchmarking.
//
// Fits y = A * alpha^x + B by log-linear initialization followed by
// Gauss-Newton refinement on (A, alpha, B). RB survival curves are smooth
// here (exact simulation), so a handful of iterations converges.

#include <span>

namespace qucp {

struct DecayFit {
  double amplitude = 0.0;  ///< A
  double alpha = 0.0;      ///< decay base per unit x
  double offset = 0.0;     ///< B (asymptote)
  double rmse = 0.0;       ///< root-mean-square residual
  bool converged = false;
};

/// Fit y = A * alpha^x + B. Requires >= 3 points and xs strictly
/// increasing. `asymptote_guess` seeds B (2-qubit RB: 0.25).
[[nodiscard]] DecayFit fit_exponential_decay(std::span<const double> xs,
                                             std::span<const double> ys,
                                             double asymptote_guess = 0.25);

}  // namespace qucp
