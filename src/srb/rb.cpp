#include "srb/rb.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "srb/fit.hpp"

namespace qucp {

namespace {

constexpr std::array<GateKind, 6> kCliffords1q = {
    GateKind::X, GateKind::Y, GateKind::Z,
    GateKind::H, GateKind::S, GateKind::Sdg};

void random_clifford_layer(Circuit& c, int a, int b, Rng& rng) {
  c.append({kCliffords1q[rng.index(kCliffords1q.size())], {a}, {}});
  c.append({kCliffords1q[rng.index(kCliffords1q.size())], {b}, {}});
}

double survival_00(const ProgramOutcome& outcome, bool sampled) {
  if (sampled) {
    return static_cast<double>(outcome.counts.count(0)) /
           outcome.counts.total();
  }
  return outcome.distribution.prob(0);
}

/// EPC from the fitted per-mirror-step decay: each step is a forward +
/// inverse cycle pair, so the per-cycle decay is sqrt(alpha).
double epc_from_alpha(double alpha) {
  const double per_cycle = std::sqrt(std::clamp(alpha, 0.0, 1.0));
  return 0.75 * (1.0 - per_cycle);
}

}  // namespace

Circuit make_rb_sequence(const Device& device, int a, int b, int cycles,
                         Rng& rng) {
  if (!device.topology().adjacent(a, b)) {
    throw std::invalid_argument("make_rb_sequence: qubits not coupled");
  }
  if (cycles < 1) throw std::invalid_argument("make_rb_sequence: cycles < 1");
  Circuit half(device.num_qubits(), 2, "rb_half");
  for (int m = 0; m < cycles; ++m) {
    random_clifford_layer(half, a, b, rng);
    half.cx(a, b);
  }
  Circuit seq = half;
  seq.compose(half.inverse());
  seq.set_name("rb_" + std::to_string(a) + "_" + std::to_string(b));
  seq.measure(a, 0);
  seq.measure(b, 1);
  return seq;
}

RbResult run_rb(const Device& device, int a, int b, const RbOptions& options,
                Rng rng) {
  RbResult result;
  for (int len : options.lengths) {
    double total = 0.0;
    for (int s = 0; s < options.seeds; ++s) {
      Rng seq_rng = rng.derive("rb:" + std::to_string(len) + ":" +
                               std::to_string(s));
      const Circuit seq = make_rb_sequence(device, a, b, len, seq_rng);
      ExecOptions exec = options.exec;
      exec.seed = seq_rng.seed();
      const ProgramOutcome outcome = execute_single(device, seq, exec);
      total += survival_00(outcome, options.sampled);
    }
    result.lengths.push_back(static_cast<double>(len));
    result.survival.push_back(total / options.seeds);
  }
  const DecayFit fit =
      fit_exponential_decay(result.lengths, result.survival, 0.25);
  result.alpha = fit.alpha;
  result.epc = epc_from_alpha(fit.alpha);
  return result;
}

std::pair<RbResult, RbResult> run_simultaneous_rb(const Device& device,
                                                  int a1, int b1, int a2,
                                                  int b2,
                                                  const RbOptions& options,
                                                  Rng rng) {
  if (a1 == a2 || a1 == b2 || b1 == a2 || b1 == b2) {
    throw std::invalid_argument("run_simultaneous_rb: edges share a qubit");
  }
  RbResult r1;
  RbResult r2;
  for (int len : options.lengths) {
    double total1 = 0.0;
    double total2 = 0.0;
    for (int s = 0; s < options.seeds; ++s) {
      Rng rng1 = rng.derive("srb1:" + std::to_string(len) + ":" +
                            std::to_string(s));
      Rng rng2 = rng.derive("srb2:" + std::to_string(len) + ":" +
                            std::to_string(s));
      std::vector<PhysicalProgram> programs;
      programs.push_back(
          {make_rb_sequence(device, a1, b1, len, rng1), "rb1"});
      programs.push_back(
          {make_rb_sequence(device, a2, b2, len, rng2), "rb2"});
      ExecOptions exec = options.exec;
      exec.seed = rng1.seed() ^ (rng2.seed() << 1);
      const ParallelRunReport report =
          execute_parallel(device, std::move(programs), exec);
      total1 += survival_00(report.programs[0], options.sampled);
      total2 += survival_00(report.programs[1], options.sampled);
    }
    r1.lengths.push_back(static_cast<double>(len));
    r1.survival.push_back(total1 / options.seeds);
    r2.lengths.push_back(static_cast<double>(len));
    r2.survival.push_back(total2 / options.seeds);
  }
  const DecayFit f1 = fit_exponential_decay(r1.lengths, r1.survival, 0.25);
  const DecayFit f2 = fit_exponential_decay(r2.lengths, r2.survival, 0.25);
  r1.alpha = f1.alpha;
  r1.epc = epc_from_alpha(f1.alpha);
  r2.alpha = f2.alpha;
  r2.epc = epc_from_alpha(f2.alpha);
  return {r1, r2};
}

}  // namespace qucp
