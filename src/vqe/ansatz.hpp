#pragma once
// Hardware-efficient RyRz ansatz (Kandala et al. [10]).
//
// Each repetition applies Ry and Rz on every qubit followed by a CX
// entangler chain; a final rotation layer closes the circuit. The paper
// ties all 12 parameters of its 2-qubit, 2-rep ansatz to a single value
// theta and sweeps it — make_tied_ansatz reproduces that.

#include <span>

#include "circuit/circuit.hpp"

namespace qucp {

/// Number of parameters of the RyRz ansatz: 2 * num_qubits * (reps + 1).
[[nodiscard]] int ansatz_parameter_count(int num_qubits, int reps);

/// Build the ansatz with explicit parameters (size must match
/// ansatz_parameter_count). Layout per layer: Ry(q0..qn-1) then
/// Rz(q0..qn-1).
[[nodiscard]] Circuit make_ryrz_ansatz(int num_qubits, int reps,
                                       std::span<const double> parameters);

/// All parameters tied to one value (the paper's simplification).
[[nodiscard]] Circuit make_tied_ansatz(int num_qubits, int reps,
                                       double theta);

}  // namespace qucp
