#pragma once
// Pauli-string algebra.
//
// A PauliString is a tensor product of I/X/Y/Z over n qubits, written with
// qubit (n-1) leftmost ("ZX" on 2 qubits = Z on qubit 1, X on qubit 0 —
// the Qiskit label convention the paper's Hamiltonian uses).

#include <complex>
#include <string>
#include <string_view>
#include <vector>

#include "common/matrix.hpp"

namespace qucp {

enum class PauliOp : std::uint8_t { I, X, Y, Z };

class PauliString {
 public:
  PauliString() = default;
  /// Identity on n qubits.
  explicit PauliString(int num_qubits);
  /// Parse a label such as "IZ" or "XX" (leftmost char = highest qubit).
  explicit PauliString(std::string_view label);

  [[nodiscard]] int num_qubits() const noexcept {
    return static_cast<int>(ops_.size());
  }
  [[nodiscard]] PauliOp op(int qubit) const;
  void set_op(int qubit, PauliOp op);

  /// Label with qubit (n-1) first.
  [[nodiscard]] std::string label() const;

  /// Full 2^n x 2^n matrix (little-endian basis).
  [[nodiscard]] Matrix matrix() const;

  /// True when the string is all-identity.
  [[nodiscard]] bool is_identity() const;

  /// General commutation: [P, Q] == 0.
  [[nodiscard]] bool commutes_with(const PauliString& other) const;

  /// Qubit-wise commutation: per qubit, ops are equal or one is I. This is
  /// the grouping criterion for simultaneous measurement (Gokhale et al.).
  [[nodiscard]] bool qubit_wise_commutes_with(const PauliString& other) const;

  /// Qubits where the op is not I.
  [[nodiscard]] std::vector<int> support() const;

  [[nodiscard]] bool operator==(const PauliString& other) const = default;

 private:
  std::vector<PauliOp> ops_;  // ops_[k] acts on qubit k
};

/// Single-qubit matrix of a PauliOp.
[[nodiscard]] Matrix pauli_matrix(PauliOp op);

}  // namespace qucp
