#include "vqe/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/statevector.hpp"

namespace qucp {

std::vector<double> theta_grid(int count, double lo, double hi) {
  if (count < 1) throw std::invalid_argument("theta_grid: count < 1");
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(count));
  if (count == 1) {
    out.push_back(lo);
    return out;
  }
  for (int i = 0; i < count; ++i) {
    out.push_back(lo + (hi - lo) * i / (count - 1));
  }
  return out;
}

VqeSweepResult run_vqe_sweep(const Device& device,
                             const Hamiltonian& hamiltonian,
                             std::vector<double> thetas,
                             const VqeSweepOptions& options) {
  if (thetas.empty()) throw std::invalid_argument("run_vqe_sweep: no thetas");
  const auto groups = group_commuting_terms(hamiltonian);
  const int n = hamiltonian.num_qubits();
  const Matrix h_matrix = hamiltonian.matrix();

  VqeSweepResult result;
  result.thetas = thetas;
  result.exact_ground = hamiltonian.ground_energy();

  // Build every measurement circuit: thetas x groups.
  std::vector<Circuit> circuits;
  circuits.reserve(thetas.size() * groups.size());
  for (std::size_t t = 0; t < thetas.size(); ++t) {
    const Circuit prep = make_tied_ansatz(n, options.reps, thetas[t]);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      Circuit mc = measurement_circuit(prep, groups[g]);
      mc.set_name("t" + std::to_string(t) + "g" + std::to_string(g));
      circuits.push_back(std::move(mc));
    }
    // Noiseless reference energy.
    Statevector sv(n);
    sv.apply_circuit(prep);
    result.ideal_energies.push_back(sv.expectation(h_matrix));
  }
  result.circuits_executed = static_cast<int>(circuits.size());

  // Execute: one batch (QuCP+PG) or one job per circuit (PG).
  std::vector<Distribution> distributions;
  distributions.reserve(circuits.size());
  if (options.run_parallel) {
    const BatchReport report =
        run_parallel(device, circuits, options.parallel);
    result.throughput = report.throughput;
    for (const ProgramReport& pr : report.programs) {
      distributions.push_back(pr.noisy);
    }
  } else {
    for (const Circuit& circuit : circuits) {
      const BatchReport report =
          run_parallel(device, {circuit}, options.parallel);
      distributions.push_back(report.programs[0].noisy);
      result.throughput = report.throughput;  // per-job throughput
    }
  }

  for (std::size_t t = 0; t < thetas.size(); ++t) {
    double energy = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      energy += group_energy(groups[g], distributions[t * groups.size() + g]);
    }
    result.energies.push_back(energy);
  }

  result.min_energy =
      *std::min_element(result.energies.begin(), result.energies.end());
  result.min_ideal_energy = *std::min_element(result.ideal_energies.begin(),
                                              result.ideal_energies.end());
  result.delta_e_base_pct =
      std::abs((result.min_energy - result.min_ideal_energy) /
               result.min_ideal_energy) *
      100.0;
  result.delta_e_theory_pct =
      std::abs((result.min_energy - result.exact_ground) /
               result.exact_ground) *
      100.0;
  return result;
}

}  // namespace qucp
