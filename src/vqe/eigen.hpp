#pragma once
// Dense Hermitian eigensolver (cyclic Jacobi on the complex matrix).
//
// Stands in for Scipy's eigensolver in the paper's Table III "theory"
// column. Sizes here are tiny (4x4 for the H2 Hamiltonian), so the classic
// Jacobi sweep is exact to machine precision and dependency-free.

#include <vector>

#include "common/matrix.hpp"

namespace qucp {

/// Eigenvalues of a Hermitian matrix, ascending. Throws when the matrix is
/// not square/Hermitian (1e-9 tolerance).
[[nodiscard]] std::vector<double> hermitian_eigenvalues(const Matrix& m);

/// Smallest eigenvalue (ground energy for Hamiltonians).
[[nodiscard]] double ground_state_energy(const Matrix& hamiltonian);

}  // namespace qucp
