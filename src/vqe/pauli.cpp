#include "vqe/pauli.hpp"

#include <stdexcept>

namespace qucp {

PauliString::PauliString(int num_qubits) {
  if (num_qubits <= 0) {
    throw std::invalid_argument("PauliString: non-positive qubit count");
  }
  ops_.assign(static_cast<std::size_t>(num_qubits), PauliOp::I);
}

PauliString::PauliString(std::string_view label) {
  if (label.empty()) throw std::invalid_argument("PauliString: empty label");
  ops_.resize(label.size());
  for (std::size_t i = 0; i < label.size(); ++i) {
    // Leftmost char is the highest qubit.
    const std::size_t qubit = label.size() - 1 - i;
    switch (label[i]) {
      case 'I': ops_[qubit] = PauliOp::I; break;
      case 'X': ops_[qubit] = PauliOp::X; break;
      case 'Y': ops_[qubit] = PauliOp::Y; break;
      case 'Z': ops_[qubit] = PauliOp::Z; break;
      default:
        throw std::invalid_argument("PauliString: bad label char");
    }
  }
}

PauliOp PauliString::op(int qubit) const {
  if (qubit < 0 || qubit >= num_qubits()) {
    throw std::out_of_range("PauliString::op");
  }
  return ops_[static_cast<std::size_t>(qubit)];
}

void PauliString::set_op(int qubit, PauliOp op) {
  if (qubit < 0 || qubit >= num_qubits()) {
    throw std::out_of_range("PauliString::set_op");
  }
  ops_[static_cast<std::size_t>(qubit)] = op;
}

std::string PauliString::label() const {
  std::string s;
  s.reserve(ops_.size());
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    switch (*it) {
      case PauliOp::I: s += 'I'; break;
      case PauliOp::X: s += 'X'; break;
      case PauliOp::Y: s += 'Y'; break;
      case PauliOp::Z: s += 'Z'; break;
    }
  }
  return s;
}

Matrix pauli_matrix(PauliOp op) {
  switch (op) {
    case PauliOp::I:
      return Matrix::identity(2);
    case PauliOp::X:
      return Matrix(2, 2, {0, 1, 1, 0});
    case PauliOp::Y:
      return Matrix(2, 2, {0, cx{0, -1}, cx{0, 1}, 0});
    case PauliOp::Z:
      return Matrix(2, 2, {1, 0, 0, -1});
  }
  throw std::logic_error("pauli_matrix: unhandled op");
}

Matrix PauliString::matrix() const {
  // kron_all expects the highest qubit leftmost.
  std::vector<Matrix> factors;
  factors.reserve(ops_.size());
  for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
    factors.push_back(pauli_matrix(*it));
  }
  return kron_all(factors);
}

bool PauliString::is_identity() const {
  for (PauliOp op : ops_) {
    if (op != PauliOp::I) return false;
  }
  return true;
}

bool PauliString::commutes_with(const PauliString& other) const {
  if (num_qubits() != other.num_qubits()) {
    throw std::invalid_argument("PauliString: qubit count mismatch");
  }
  // P and Q commute iff they anticommute on an even number of qubits.
  int anti = 0;
  for (int q = 0; q < num_qubits(); ++q) {
    const PauliOp a = ops_[static_cast<std::size_t>(q)];
    const PauliOp b = other.ops_[static_cast<std::size_t>(q)];
    if (a != PauliOp::I && b != PauliOp::I && a != b) ++anti;
  }
  return anti % 2 == 0;
}

bool PauliString::qubit_wise_commutes_with(const PauliString& other) const {
  if (num_qubits() != other.num_qubits()) {
    throw std::invalid_argument("PauliString: qubit count mismatch");
  }
  for (int q = 0; q < num_qubits(); ++q) {
    const PauliOp a = ops_[static_cast<std::size_t>(q)];
    const PauliOp b = other.ops_[static_cast<std::size_t>(q)];
    if (a != PauliOp::I && b != PauliOp::I && a != b) return false;
  }
  return true;
}

std::vector<int> PauliString::support() const {
  std::vector<int> out;
  for (int q = 0; q < num_qubits(); ++q) {
    if (ops_[static_cast<std::size_t>(q)] != PauliOp::I) out.push_back(q);
  }
  return out;
}

}  // namespace qucp
