#include "vqe/grouping.hpp"

#include <stdexcept>

namespace qucp {

std::vector<MeasurementGroup> group_commuting_terms(
    const Hamiltonian& hamiltonian) {
  const int n = hamiltonian.num_qubits();
  std::vector<MeasurementGroup> groups;
  for (const PauliTerm& term : hamiltonian.terms()) {
    bool placed = false;
    for (MeasurementGroup& group : groups) {
      bool compatible = true;
      for (const PauliTerm& existing : group.terms) {
        if (!term.pauli.qubit_wise_commutes_with(existing.pauli)) {
          compatible = false;
          break;
        }
      }
      if (compatible) {
        group.terms.push_back(term);
        placed = true;
        break;
      }
    }
    if (!placed) {
      groups.push_back({{term}, {}});
    }
  }
  // Resolve each group's measurement basis: the non-identity op per qubit
  // (unique by qubit-wise commutation), defaulting to Z.
  for (MeasurementGroup& group : groups) {
    group.basis.assign(static_cast<std::size_t>(n), PauliOp::Z);
    for (const PauliTerm& term : group.terms) {
      for (int q = 0; q < n; ++q) {
        const PauliOp op = term.pauli.op(q);
        if (op != PauliOp::I) group.basis[static_cast<std::size_t>(q)] = op;
      }
    }
  }
  return groups;
}

Circuit measurement_circuit(const Circuit& state_prep,
                            const MeasurementGroup& group) {
  if (state_prep.has_measurements()) {
    throw std::invalid_argument(
        "measurement_circuit: state prep already measured");
  }
  if (group.basis.size() != static_cast<std::size_t>(state_prep.num_qubits())) {
    throw std::invalid_argument("measurement_circuit: basis width mismatch");
  }
  Circuit out = state_prep;
  for (int q = 0; q < state_prep.num_qubits(); ++q) {
    switch (group.basis[static_cast<std::size_t>(q)]) {
      case PauliOp::X:
        out.h(q);
        break;
      case PauliOp::Y:
        out.sdg(q);
        out.h(q);
        break;
      case PauliOp::I:
      case PauliOp::Z:
        break;
    }
  }
  out.measure_all();
  return out;
}

double term_expectation(const PauliString& pauli, const Distribution& dist) {
  if (pauli.is_identity()) return 1.0;
  double e = 0.0;
  for (const auto& [outcome, p] : dist.probs()) {
    int parity = 0;
    for (int q : pauli.support()) {
      parity ^= static_cast<int>((outcome >> q) & 1U);
    }
    e += (parity ? -1.0 : 1.0) * p;
  }
  return e;
}

double group_energy(const MeasurementGroup& group, const Distribution& dist) {
  double e = 0.0;
  for (const PauliTerm& term : group.terms) {
    e += term.coefficient * term_expectation(term.pauli, dist);
  }
  return e;
}

}  // namespace qucp
