#pragma once
// VQE energy estimation: PG (independent) vs QuCP+PG (parallel).
//
// For a parameter sweep, each theta contributes one measurement circuit
// per commuting group. PG executes those circuits one job at a time (the
// paper's independent baseline); QuCP+PG packs all of them into one
// parallel batch on the device. The energy estimate at each theta sums the
// group energies plus any identity offsets; the sweep minimum approximates
// the ground energy (Table III / Fig. 5).

#include <vector>

#include "core/parallel.hpp"
#include "vqe/ansatz.hpp"
#include "vqe/grouping.hpp"

namespace qucp {

struct VqeSweepOptions {
  int reps = 2;                  ///< ansatz repetitions
  ParallelOptions parallel;      ///< method/sigma/exec for QuCP+PG
  bool run_parallel = true;      ///< false: PG (one circuit per job)
};

struct VqeSweepResult {
  std::vector<double> thetas;
  std::vector<double> energies;        ///< measured estimate per theta
  std::vector<double> ideal_energies;  ///< noiseless simulator reference
  double min_energy = 0.0;
  double min_ideal_energy = 0.0;
  double exact_ground = 0.0;           ///< eigensolver ("theory")
  int circuits_executed = 0;           ///< nc of Table III
  double throughput = 0.0;             ///< hardware throughput achieved
  /// |E - E_ideal| / |E_ideal| and |E - E_exact| / |E_exact| in percent.
  double delta_e_base_pct = 0.0;
  double delta_e_theory_pct = 0.0;
};

/// Sweep the tied-parameter ansatz over `thetas` against `hamiltonian` on
/// `device`. Number of simultaneous circuits = thetas.size() * #groups.
[[nodiscard]] VqeSweepResult run_vqe_sweep(const Device& device,
                                           const Hamiltonian& hamiltonian,
                                           std::vector<double> thetas,
                                           const VqeSweepOptions& options);

/// Evenly spaced theta grid over [lo, hi].
[[nodiscard]] std::vector<double> theta_grid(int count, double lo, double hi);

}  // namespace qucp
