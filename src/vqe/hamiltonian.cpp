#include "vqe/hamiltonian.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace qucp {

Hamiltonian::Hamiltonian(int num_qubits, std::vector<PauliTerm> terms)
    : num_qubits_(num_qubits), terms_(std::move(terms)) {
  if (num_qubits <= 0) {
    throw std::invalid_argument("Hamiltonian: non-positive qubit count");
  }
  for (const PauliTerm& t : terms_) {
    if (t.pauli.num_qubits() != num_qubits) {
      throw std::invalid_argument("Hamiltonian: term width mismatch");
    }
  }
}

Matrix Hamiltonian::matrix() const {
  const std::size_t dim = std::size_t{1} << num_qubits_;
  Matrix m(dim, dim);
  for (const PauliTerm& t : terms_) {
    Matrix pm = t.pauli.matrix();
    pm *= cx{t.coefficient, 0.0};
    m += pm;
  }
  return m;
}

double Hamiltonian::ground_energy() const {
  return ground_state_energy(matrix());
}

Hamiltonian Hamiltonian::simplified(double tol) const {
  std::map<std::string, double> merged;
  for (const PauliTerm& t : terms_) {
    merged[t.pauli.label()] += t.coefficient;
  }
  std::vector<PauliTerm> out;
  for (const auto& [label, coeff] : merged) {
    if (std::abs(coeff) > tol) {
      out.push_back({PauliString(label), coeff});
    }
  }
  return Hamiltonian(num_qubits_, std::move(out));
}

Hamiltonian h2_hamiltonian() {
  // Canonical parity-mapped, 2-qubit-reduced H2/STO-3G coefficients at
  // R = 0.735 A (e.g. Kandala et al. 2017 / Qiskit textbook).
  return Hamiltonian(
      2, {
             {PauliString("II"), -1.052373245772859},
             {PauliString("IZ"), +0.39793742484318045},
             {PauliString("ZI"), -0.39793742484318045},
             {PauliString("ZZ"), -0.01128010425623538},
             {PauliString("XX"), +0.18093119978423156},
         });
}

double h2_nuclear_repulsion() { return 0.7199689944489797; }

}  // namespace qucp
