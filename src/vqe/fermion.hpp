#pragma once
// Fermionic operators and fermion-to-qubit mappings.
//
// The paper derives its 2-qubit H2 Hamiltonian by parity-mapping the
// fermionic Hamiltonian and applying two-qubit reduction [1]. This module
// reproduces that pipeline: second-quantized operators built from the
// molecular integrals, Jordan-Wigner and parity transforms into Pauli
// sums, and symmetry-sector tapering. Tests verify the tapered 2-qubit
// operator reproduces the canonical h2_hamiltonian() spectrum.

#include <complex>
#include <map>
#include <string>
#include <vector>

#include "vqe/hamiltonian.hpp"
#include "vqe/pauli.hpp"

namespace qucp {

/// Weighted sum of Pauli strings with complex coefficients (intermediate
/// representation during mapping; Hermitian results convert to
/// Hamiltonian).
class QubitOperator {
 public:
  QubitOperator() = default;
  explicit QubitOperator(int num_qubits) : num_qubits_(num_qubits) {}

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] const std::map<std::string, cx>& terms() const noexcept {
    return terms_;
  }

  void add_term(const PauliString& pauli, cx coefficient);
  QubitOperator& operator+=(const QubitOperator& other);
  [[nodiscard]] QubitOperator operator*(const QubitOperator& other) const;
  [[nodiscard]] QubitOperator operator*(cx scalar) const;

  /// Drop terms with |coeff| <= tol.
  void prune(double tol = 1e-12);

  /// Convert to a real Hamiltonian; throws if any coefficient has an
  /// imaginary part above tol.
  [[nodiscard]] Hamiltonian to_hamiltonian(double tol = 1e-9) const;

 private:
  int num_qubits_ = 0;
  std::map<std::string, cx> terms_;  // label -> coefficient
};

/// Single-qubit Pauli product: returns (result op, phase) with
/// a * b == phase * result.
[[nodiscard]] std::pair<PauliOp, cx> pauli_product(PauliOp a, PauliOp b);

/// One normal-ordered product of ladder operators with a coefficient.
struct FermionTerm {
  /// (mode, is_creation) applied right-to-left in operator order; the
  /// vector lists operators left-to-right as written.
  std::vector<std::pair<int, bool>> ladder;
  double coefficient = 0.0;
};

class FermionicOp {
 public:
  explicit FermionicOp(int num_modes) : num_modes_(num_modes) {}

  [[nodiscard]] int num_modes() const noexcept { return num_modes_; }
  [[nodiscard]] const std::vector<FermionTerm>& terms() const noexcept {
    return terms_;
  }
  void add_term(FermionTerm term);

 private:
  int num_modes_ = 0;
  std::vector<FermionTerm> terms_;
};

enum class FermionMapping { JordanWigner, Parity, BravyiKitaev };

/// Map a fermionic operator to qubits (one qubit per mode).
[[nodiscard]] QubitOperator map_to_qubits(const FermionicOp& op,
                                          FermionMapping mapping);

/// Remove a qubit on which every term acts with I or Z, substituting the
/// sector eigenvalue (+1/-1) for Z. Throws if some term has X/Y there.
[[nodiscard]] QubitOperator taper_qubit(const QubitOperator& op, int qubit,
                                        int sector);

/// Second-quantized H2 Hamiltonian in the STO-3G basis near equilibrium
/// bond length, spin-orbital order [0-up, 1-up, 0-down, 1-down] (4 modes).
/// Electronic part only.
[[nodiscard]] FermionicOp h2_fermionic_hamiltonian();

/// The paper's full derivation: parity-map h2_fermionic_hamiltonian() and
/// taper the two parity-symmetry qubits (modes 1 and 3), selecting the
/// sector that minimizes the ground energy.
[[nodiscard]] Hamiltonian h2_via_parity_mapping();

}  // namespace qucp
