#pragma once
// Qubit Hamiltonians as weighted Pauli sums.
//
// Includes the paper's working example: the parity-mapped, two-qubit H2
// Hamiltonian at 0.735 angstrom (5 Pauli terms {II, IZ, ZI, ZZ, XX}),
// whose ground energy is the Table III reference.

#include <vector>

#include "vqe/eigen.hpp"
#include "vqe/pauli.hpp"

namespace qucp {

struct PauliTerm {
  PauliString pauli;
  double coefficient = 0.0;
};

class Hamiltonian {
 public:
  Hamiltonian() = default;
  Hamiltonian(int num_qubits, std::vector<PauliTerm> terms);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] const std::vector<PauliTerm>& terms() const noexcept {
    return terms_;
  }

  /// Dense matrix representation.
  [[nodiscard]] Matrix matrix() const;

  /// Exact ground-state energy (Jacobi eigensolver).
  [[nodiscard]] double ground_energy() const;

  /// Merge duplicate Pauli strings and drop negligible coefficients.
  [[nodiscard]] Hamiltonian simplified(double tol = 1e-12) const;

 private:
  int num_qubits_ = 0;
  std::vector<PauliTerm> terms_;
};

/// Parity-mapped two-qubit H2 Hamiltonian at equilibrium bond length
/// (0.735 A, STO-3G, two-qubit reduction), electronic part. Ground energy
/// ~= -1.85727 Ha; adding nuclear repulsion (+0.71997 Ha) gives the total
/// ~= -1.13730 Ha.
[[nodiscard]] Hamiltonian h2_hamiltonian();

/// Nuclear repulsion energy of H2 at 0.735 A (Hartree).
[[nodiscard]] double h2_nuclear_repulsion();

}  // namespace qucp
