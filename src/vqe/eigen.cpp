#include "vqe/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qucp {

std::vector<double> hermitian_eigenvalues(const Matrix& m) {
  if (!m.is_square()) {
    throw std::invalid_argument("hermitian_eigenvalues: not square");
  }
  if (!m.is_hermitian(1e-9)) {
    throw std::invalid_argument("hermitian_eigenvalues: not Hermitian");
  }
  const std::size_t n = m.rows();
  Matrix a = m;

  // Complex Jacobi: repeatedly zero the largest off-diagonal element with a
  // unitary 2x2 rotation.
  for (int sweep = 0; sweep < 200; ++sweep) {
    double off = 0.0;
    std::size_t p = 0;
    std::size_t q = 1;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = r + 1; c < n; ++c) {
        const double mag = std::abs(a(r, c));
        if (mag > off) {
          off = mag;
          p = r;
          q = c;
        }
      }
    }
    if (off < 1e-13) break;

    const cx apq = a(p, q);
    const double app = a(p, p).real();
    const double aqq = a(q, q).real();
    // Phase to make the pivot real, then a standard Jacobi angle.
    const double absapq = std::abs(apq);
    const cx phase = apq / absapq;
    const double theta = 0.5 * std::atan2(2.0 * absapq, app - aqq);
    const double c = std::cos(theta);
    const double s = std::sin(theta);

    // Rotation: rows/cols p,q with U = [[c, s*phase],[-s*conj(phase), c]].
    for (std::size_t k = 0; k < n; ++k) {
      const cx akp = a(k, p);
      const cx akq = a(k, q);
      a(k, p) = c * akp + s * std::conj(phase) * akq;
      a(k, q) = -s * phase * akp + c * akq;
    }
    for (std::size_t k = 0; k < n; ++k) {
      const cx apk = a(p, k);
      const cx aqk = a(q, k);
      a(p, k) = c * apk + s * phase * aqk;
      a(q, k) = -s * std::conj(phase) * apk + c * aqk;
    }
  }

  std::vector<double> eig(n);
  for (std::size_t i = 0; i < n; ++i) eig[i] = a(i, i).real();
  std::sort(eig.begin(), eig.end());
  return eig;
}

double ground_state_energy(const Matrix& hamiltonian) {
  return hermitian_eigenvalues(hamiltonian).front();
}

}  // namespace qucp
