#pragma once
// Pauli operator grouping (PG) for simultaneous measurement.
//
// Qubit-wise commuting terms share one measurement circuit (Gokhale et
// al., McClean et al.): the paper groups H2's 5 terms into
// {II, IZ, ZI, ZZ} and {XX}, turning 5 naive measurement circuits into 2.
// Greedy first-fit grouping; the shared measurement basis per group
// rotates X -> Z with H and Y -> Z with Sdg-H before readout.

#include <vector>

#include "circuit/circuit.hpp"
#include "sim/counts.hpp"
#include "vqe/hamiltonian.hpp"

namespace qucp {

struct MeasurementGroup {
  std::vector<PauliTerm> terms;       ///< qubit-wise commuting
  std::vector<PauliOp> basis;         ///< per-qubit measured Pauli (I -> Z)
};

/// Greedy qubit-wise-commuting grouping, preserving term order. Identity
/// terms land in the first group (they need no measurement but keep their
/// coefficient in the energy sum).
[[nodiscard]] std::vector<MeasurementGroup> group_commuting_terms(
    const Hamiltonian& hamiltonian);

/// Append basis-change rotations + measure-all to a state-preparation
/// circuit, producing the group's measurement circuit.
[[nodiscard]] Circuit measurement_circuit(const Circuit& state_prep,
                                          const MeasurementGroup& group);

/// <P> for one term evaluated from a measured distribution in the group's
/// basis: sum over outcomes of p(outcome) * prod_{q in support} (-1)^bit_q.
[[nodiscard]] double term_expectation(const PauliString& pauli,
                                      const Distribution& dist);

/// Group energy contribution: sum coeff * <P> over the group's terms.
[[nodiscard]] double group_energy(const MeasurementGroup& group,
                                  const Distribution& dist);

}  // namespace qucp
