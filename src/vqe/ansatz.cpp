#include "vqe/ansatz.hpp"

#include <stdexcept>
#include <vector>

namespace qucp {

int ansatz_parameter_count(int num_qubits, int reps) {
  if (num_qubits <= 0 || reps < 0) {
    throw std::invalid_argument("ansatz_parameter_count: bad arguments");
  }
  return 2 * num_qubits * (reps + 1);
}

Circuit make_ryrz_ansatz(int num_qubits, int reps,
                         std::span<const double> parameters) {
  const int want = ansatz_parameter_count(num_qubits, reps);
  if (static_cast<int>(parameters.size()) != want) {
    throw std::invalid_argument("make_ryrz_ansatz: parameter count mismatch");
  }
  Circuit c(num_qubits, num_qubits, "ryrz_ansatz");
  std::size_t p = 0;
  auto rotation_layer = [&] {
    for (int q = 0; q < num_qubits; ++q) c.ry(parameters[p++], q);
    for (int q = 0; q < num_qubits; ++q) c.rz(parameters[p++], q);
  };
  // 2 qubits, 2 reps: 12 rotation parameters and 2 CX entanglers — exactly
  // the paper's ansatz.
  for (int r = 0; r < reps; ++r) {
    rotation_layer();
    for (int q = 0; q + 1 < num_qubits; ++q) c.cx(q, q + 1);
  }
  rotation_layer();
  return c;
}

Circuit make_tied_ansatz(int num_qubits, int reps, double theta) {
  const std::vector<double> params(
      static_cast<std::size_t>(ansatz_parameter_count(num_qubits, reps)),
      theta);
  return make_ryrz_ansatz(num_qubits, reps, params);
}

}  // namespace qucp
