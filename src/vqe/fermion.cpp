#include "vqe/fermion.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <stdexcept>

namespace qucp {

std::pair<PauliOp, cx> pauli_product(PauliOp a, PauliOp b) {
  if (a == PauliOp::I) return {b, 1.0};
  if (b == PauliOp::I) return {a, 1.0};
  if (a == b) return {PauliOp::I, 1.0};
  const cx i{0.0, 1.0};
  // Cyclic: XY=iZ, YZ=iX, ZX=iY; anticyclic conjugates.
  auto cyc = [&](PauliOp x, PauliOp y, PauliOp z) {
    if (a == x && b == y) return std::make_pair(z, i);
    return std::make_pair(z, -i);
  };
  if ((a == PauliOp::X && b == PauliOp::Y) ||
      (a == PauliOp::Y && b == PauliOp::X)) {
    return cyc(PauliOp::X, PauliOp::Y, PauliOp::Z);
  }
  if ((a == PauliOp::Y && b == PauliOp::Z) ||
      (a == PauliOp::Z && b == PauliOp::Y)) {
    return cyc(PauliOp::Y, PauliOp::Z, PauliOp::X);
  }
  return cyc(PauliOp::Z, PauliOp::X, PauliOp::Y);
}

void QubitOperator::add_term(const PauliString& pauli, cx coefficient) {
  if (pauli.num_qubits() != num_qubits_) {
    throw std::invalid_argument("QubitOperator: term width mismatch");
  }
  terms_[pauli.label()] += coefficient;
}

QubitOperator& QubitOperator::operator+=(const QubitOperator& other) {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("QubitOperator: width mismatch");
  }
  for (const auto& [label, coeff] : other.terms_) terms_[label] += coeff;
  return *this;
}

QubitOperator QubitOperator::operator*(const QubitOperator& other) const {
  if (other.num_qubits_ != num_qubits_) {
    throw std::invalid_argument("QubitOperator: width mismatch");
  }
  QubitOperator out(num_qubits_);
  for (const auto& [la, ca] : terms_) {
    const PauliString pa(la);
    for (const auto& [lb, cb] : other.terms_) {
      const PauliString pb(lb);
      PauliString prod(num_qubits_);
      cx phase{1.0, 0.0};
      for (int q = 0; q < num_qubits_; ++q) {
        const auto [op, ph] = pauli_product(pa.op(q), pb.op(q));
        prod.set_op(q, op);
        phase *= ph;
      }
      out.terms_[prod.label()] += ca * cb * phase;
    }
  }
  return out;
}

QubitOperator QubitOperator::operator*(cx scalar) const {
  QubitOperator out = *this;
  for (auto& [label, coeff] : out.terms_) coeff *= scalar;
  return out;
}

void QubitOperator::prune(double tol) {
  for (auto it = terms_.begin(); it != terms_.end();) {
    if (std::abs(it->second) <= tol) {
      it = terms_.erase(it);
    } else {
      ++it;
    }
  }
}

Hamiltonian QubitOperator::to_hamiltonian(double tol) const {
  std::vector<PauliTerm> out;
  for (const auto& [label, coeff] : terms_) {
    if (std::abs(coeff.imag()) > tol) {
      throw std::logic_error("QubitOperator: non-Hermitian coefficient");
    }
    if (std::abs(coeff.real()) <= tol) continue;
    out.push_back({PauliString(label), coeff.real()});
  }
  return Hamiltonian(num_qubits_, std::move(out));
}

void FermionicOp::add_term(FermionTerm term) {
  for (const auto& [mode, creation] : term.ladder) {
    if (mode < 0 || mode >= num_modes_) {
      throw std::out_of_range("FermionicOp: mode out of range");
    }
  }
  terms_.push_back(std::move(term));
}

namespace {

/// Fenwick-tree index sets for the Bravyi-Kitaev encoding (Seeley,
/// Richard, Love). BIT indices are 1-based; qubit q stores the occupation
/// sum of modes (q - lowbit(q), q].
struct BkSets {
  std::vector<int> update;  ///< U(j): qubits whose sums include mode j
  std::vector<int> parity;  ///< P(j): qubits encoding parity of modes < j
  std::vector<int> rho;     ///< P(j) \ F(j): parity minus j's children
};

BkSets bk_sets(int mode, int n) {
  auto lowbit = [](int x) { return x & (-x); };
  const int j = mode + 1;  // 1-based BIT index
  BkSets sets;
  // Update path: ancestors of j in the BIT.
  for (int u = j + lowbit(j); u <= n; u += lowbit(u)) {
    sets.update.push_back(u - 1);
  }
  // Parity path: prefix sum of modes [1, j-1].
  std::vector<int> parity_bit;
  for (int p = j - 1; p > 0; p -= lowbit(p)) parity_bit.push_back(p);
  // Children of j: nodes whose sums j aggregates (all lie on the parity
  // path of j - 1).
  std::vector<int> children;
  for (int c = j - 1; c > j - lowbit(j); c -= lowbit(c)) {
    children.push_back(c);
  }
  for (int p : parity_bit) {
    sets.parity.push_back(p - 1);
    if (std::find(children.begin(), children.end(), p) == children.end()) {
      sets.rho.push_back(p - 1);
    }
  }
  return sets;
}

/// Annihilation operator a_p as a qubit operator under a mapping.
QubitOperator annihilation(int p, int n, FermionMapping mapping) {
  QubitOperator out(n);
  if (mapping == FermionMapping::BravyiKitaev) {
    // a_p = 1/2 X_{U(p)} (X_p Z_{P(p)} + i Y_p Z_{rho(p)}); derived the
    // same way as the parity form: flip o phase o occupation projector,
    // with the Fenwick tree supplying the index sets.
    const BkSets sets = bk_sets(p, n);
    PauliString x_term(n);
    PauliString y_term(n);
    for (int u : sets.update) {
      x_term.set_op(u, PauliOp::X);
      y_term.set_op(u, PauliOp::X);
    }
    x_term.set_op(p, PauliOp::X);
    y_term.set_op(p, PauliOp::Y);
    for (int q : sets.parity) x_term.set_op(q, PauliOp::Z);
    for (int q : sets.rho) y_term.set_op(q, PauliOp::Z);
    out.add_term(x_term, 0.5);
    out.add_term(y_term, cx{0.0, 0.5});
    return out;
  }
  if (mapping == FermionMapping::JordanWigner) {
    // a_p = 1/2 (X_p + i Y_p) (x) Z_{p-1..0}
    PauliString x_term(n);
    PauliString y_term(n);
    for (int j = 0; j < p; ++j) {
      x_term.set_op(j, PauliOp::Z);
      y_term.set_op(j, PauliOp::Z);
    }
    x_term.set_op(p, PauliOp::X);
    y_term.set_op(p, PauliOp::Y);
    out.add_term(x_term, 0.5);
    out.add_term(y_term, cx{0.0, 0.5});
    return out;
  }
  // Parity: a_p = 1/2 X_{n-1..p+1} (x) (X_p Z_{p-1} + i Y_p)
  PauliString x_term(n);
  PauliString y_term(n);
  for (int j = p + 1; j < n; ++j) {
    x_term.set_op(j, PauliOp::X);
    y_term.set_op(j, PauliOp::X);
  }
  x_term.set_op(p, PauliOp::X);
  if (p > 0) x_term.set_op(p - 1, PauliOp::Z);
  y_term.set_op(p, PauliOp::Y);
  out.add_term(x_term, 0.5);
  out.add_term(y_term, cx{0.0, 0.5});
  return out;
}

QubitOperator creation(int p, int n, FermionMapping mapping) {
  // a_p^dagger: conjugate the coefficients (Pauli strings are Hermitian).
  QubitOperator a = annihilation(p, n, mapping);
  QubitOperator out(n);
  for (const auto& [label, coeff] : a.terms()) {
    out.add_term(PauliString(label), std::conj(coeff));
  }
  return out;
}

}  // namespace

QubitOperator map_to_qubits(const FermionicOp& op, FermionMapping mapping) {
  const int n = op.num_modes();
  QubitOperator total(n);
  for (const FermionTerm& term : op.terms()) {
    QubitOperator product(n);
    product.add_term(PauliString(n), term.coefficient);  // identity * coeff
    for (const auto& [mode, is_creation] : term.ladder) {
      product = product * (is_creation ? creation(mode, n, mapping)
                                       : annihilation(mode, n, mapping));
    }
    total += product;
  }
  total.prune();
  return total;
}

QubitOperator taper_qubit(const QubitOperator& op, int qubit, int sector) {
  if (sector != 1 && sector != -1) {
    throw std::invalid_argument("taper_qubit: sector must be +/-1");
  }
  const int n = op.num_qubits();
  if (qubit < 0 || qubit >= n) {
    throw std::out_of_range("taper_qubit: qubit out of range");
  }
  QubitOperator out(n - 1);
  for (const auto& [label, coeff] : op.terms()) {
    const PauliString p(label);
    cx c = coeff;
    switch (p.op(qubit)) {
      case PauliOp::I:
        break;
      case PauliOp::Z:
        c *= static_cast<double>(sector);
        break;
      default:
        throw std::logic_error(
            "taper_qubit: operator acts with X/Y on symmetry qubit");
    }
    PauliString reduced(n - 1);
    for (int q = 0; q < n - 1; ++q) {
      reduced.set_op(q, p.op(q < qubit ? q : q + 1));
    }
    out.add_term(reduced, c);
  }
  out.prune();
  return out;
}

FermionicOp h2_fermionic_hamiltonian() {
  // STO-3G H2 near equilibrium: MO one-electron energies and two-electron
  // integrals in chemist notation (pq|rs). Spin-orbital order:
  // [0-up, 1-up, 0-down, 1-down].
  const double h[2] = {-1.252477495, -0.475934275};
  auto g = [](int p, int q, int r, int s) -> double {
    auto key = [](int a, int b, int c, int d) {
      return a * 1000 + b * 100 + c * 10 + d;
    };
    // Unique nonzero integrals; all index permutational symmetries hold.
    const double g0000 = 0.674493166;
    const double g1111 = 0.697397504;
    const double g0011 = 0.663472101;
    const double g0101 = 0.181287518;
    switch (key(p, q, r, s)) {
      case 0: return g0000;
      case 1111: return g1111;
      case 11: return g0011;      // (00|11)
      case 1100: return g0011;    // (11|00)
      case 101: return g0101;     // (01|01)
      case 110: return g0101;     // (01|10)
      case 1001: return g0101;    // (10|01)
      case 1010: return g0101;    // (10|10)
      default: return 0.0;        // odd-parity integrals vanish for H2
    }
  };
  auto mode = [](int spatial, int spin) { return spatial + 2 * spin; };

  FermionicOp op(4);
  // One-body: sum_p,sigma h[p] a+_{p,sigma} a_{p,sigma} (h is diagonal in
  // the MO basis).
  for (int p = 0; p < 2; ++p) {
    for (int spin = 0; spin < 2; ++spin) {
      op.add_term({{{mode(p, spin), true}, {mode(p, spin), false}}, h[p]});
    }
  }
  // Two-body: 1/2 sum (pq|rs) a+_{p,s1} a+_{r,s2} a_{s,s2} a_{q,s1}.
  for (int p = 0; p < 2; ++p) {
    for (int q = 0; q < 2; ++q) {
      for (int r = 0; r < 2; ++r) {
        for (int s = 0; s < 2; ++s) {
          const double integral = g(p, q, r, s);
          if (integral == 0.0) continue;
          for (int s1 = 0; s1 < 2; ++s1) {
            for (int s2 = 0; s2 < 2; ++s2) {
              op.add_term({{{mode(p, s1), true},
                            {mode(r, s2), true},
                            {mode(s, s2), false},
                            {mode(q, s1), false}},
                           0.5 * integral});
            }
          }
        }
      }
    }
  }
  return op;
}

Hamiltonian h2_via_parity_mapping() {
  const QubitOperator mapped =
      map_to_qubits(h2_fermionic_hamiltonian(), FermionMapping::Parity);
  // Qubits 1 (spin-up parity) and 3 (total parity) carry conserved
  // symmetries under the block-spin ordering; taper them, scanning sectors
  // for the ground state.
  double best_energy = std::numeric_limits<double>::infinity();
  Hamiltonian best;
  for (int s3 : {1, -1}) {
    for (int s1 : {1, -1}) {
      const QubitOperator reduced =
          taper_qubit(taper_qubit(mapped, 3, s3), 1, s1);
      const Hamiltonian h = reduced.to_hamiltonian();
      const double e = h.ground_energy();
      if (e < best_energy) {
        best_energy = e;
        best = h;
      }
    }
  }
  return best;
}

}  // namespace qucp
