#pragma once
// Time scheduling of physical circuits.
//
// All parallel-execution methods in the paper schedule As-Late-As-Possible
// (ALAP, the Qiskit default): qubits stay in the ground state as long as
// possible, which minimizes exposed idle decoherence when circuits of
// different depths run side by side. ASAP is provided for the ablation
// bench. Start times feed the crosstalk-overlap detection in the executor.

#include <cstddef>
#include <vector>

#include "circuit/circuit.hpp"
#include "hardware/device.hpp"

namespace qucp {

enum class SchedulePolicy { ASAP, ALAP };

struct ScheduledOp {
  std::size_t op_index = 0;  ///< index into the source circuit's ops()
  double start_ns = 0.0;
  double end_ns = 0.0;
};

struct Schedule {
  std::vector<ScheduledOp> ops;  ///< in source op order
  double makespan_ns = 0.0;
};

/// Duration of one op on the device (SWAP = 3 CX on its edge; barrier = 0).
/// Two-qubit ops must sit on coupled qubits.
[[nodiscard]] double op_duration_ns(const Gate& g, const Device& device);

/// Schedule a physical circuit (qubits = device qubits). ASAP packs ops as
/// early as wire dependencies allow; ALAP mirrors the ASAP schedule of the
/// reversed circuit so every op finishes as late as dependencies permit.
[[nodiscard]] Schedule schedule_circuit(const Circuit& circuit,
                                        const Device& device,
                                        SchedulePolicy policy);

/// True when [a_start, a_end) and [b_start, b_end) intersect.
[[nodiscard]] bool intervals_overlap(double a_start, double a_end,
                                     double b_start, double b_end) noexcept;

}  // namespace qucp
