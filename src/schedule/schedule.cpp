#include "schedule/schedule.hpp"

#include <algorithm>
#include <stdexcept>

namespace qucp {

double op_duration_ns(const Gate& g, const Device& device) {
  const Calibration& cal = device.calibration();
  switch (g.kind) {
    case GateKind::Barrier:
      return 0.0;
    case GateKind::Measure:
      return cal.readout_duration_ns;
    case GateKind::CX:
    case GateKind::CZ:
      return device.cx_duration_ns(g.qubits[0], g.qubits[1]);
    case GateKind::SWAP:
      return 3.0 * device.cx_duration_ns(g.qubits[0], g.qubits[1]);
    default:
      return cal.q1_duration_ns;
  }
}

namespace {

Schedule schedule_asap(const Circuit& circuit, const Device& device) {
  std::vector<double> ready(circuit.num_qubits(), 0.0);
  Schedule sched;
  sched.ops.resize(circuit.size());
  for (std::size_t i = 0; i < circuit.size(); ++i) {
    const Gate& g = circuit.ops()[i];
    double start = 0.0;
    for (int q : g.qubits) start = std::max(start, ready[q]);
    const double dur = op_duration_ns(g, device);
    sched.ops[i] = {i, start, start + dur};
    for (int q : g.qubits) ready[q] = start + dur;
    sched.makespan_ns = std::max(sched.makespan_ns, start + dur);
  }
  return sched;
}

}  // namespace

Schedule schedule_circuit(const Circuit& circuit, const Device& device,
                          SchedulePolicy policy) {
  if (circuit.num_qubits() > device.num_qubits()) {
    throw std::invalid_argument("schedule_circuit: circuit wider than device");
  }
  if (policy == SchedulePolicy::ASAP) {
    return schedule_asap(circuit, device);
  }
  // ALAP: run ASAP over the reversed op list (keeping the same gates — only
  // dependency order matters for timing), then mirror times.
  Circuit reversed(circuit.num_qubits(), circuit.num_clbits());
  const auto& ops = circuit.ops();
  for (auto it = ops.rbegin(); it != ops.rend(); ++it) reversed.append(*it);
  const Schedule rev = schedule_asap(reversed, device);

  Schedule sched;
  sched.makespan_ns = rev.makespan_ns;
  sched.ops.resize(circuit.size());
  for (std::size_t ri = 0; ri < rev.ops.size(); ++ri) {
    const std::size_t i = circuit.size() - 1 - ri;
    const ScheduledOp& r = rev.ops[ri];
    sched.ops[i] = {i, rev.makespan_ns - r.end_ns,
                    rev.makespan_ns - r.start_ns};
  }
  return sched;
}

bool intervals_overlap(double a_start, double a_end, double b_start,
                       double b_end) noexcept {
  return a_start < b_end && b_start < a_end;
}

}  // namespace qucp
