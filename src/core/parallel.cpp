#include "core/parallel.hpp"

#include <stdexcept>

#include "service/service.hpp"

namespace qucp {

std::string_view method_name(Method m) noexcept {
  switch (m) {
    case Method::QuCP: return "QuCP";
    case Method::QuMC: return "QuMC";
    case Method::CNA: return "CNA";
    case Method::QuCloud: return "QuCloud";
    case Method::MultiQC: return "MultiQC";
    case Method::Naive: return "Naive";
  }
  return "?";
}

std::unique_ptr<Partitioner> make_partitioner(
    Method method, double sigma,
    const std::optional<CrosstalkModel>& estimates) {
  switch (method) {
    case Method::QuCP:
      return std::make_unique<QucpPartitioner>(sigma);
    case Method::QuMC:
      if (!estimates) {
        throw std::invalid_argument(
            "make_partitioner: QuMC requires SRB estimates");
      }
      return std::make_unique<QumcPartitioner>(*estimates);
    case Method::CNA:
      // The paper notes CNA proposes no qubit-partition algorithm of its
      // own: it inherits first-fit regions and mitigates crosstalk at gate
      // level during mapping instead.
      return std::make_unique<NaivePartitioner>();
    case Method::MultiQC:
      return std::make_unique<MultiqcPartitioner>();
    case Method::QuCloud:
      return std::make_unique<QucloudPartitioner>();
    case Method::Naive:
      return std::make_unique<NaivePartitioner>();
  }
  throw std::logic_error("make_partitioner: unhandled method");
}

BatchReport run_parallel(const Device& device,
                         const std::vector<Circuit>& programs,
                         const ParallelOptions& options) {
  if (programs.empty()) {
    throw std::invalid_argument("run_parallel: no programs");
  }
  // Compatibility shim: one synchronous pass through the service's batch
  // pipeline — the exact code path an ExecutionService worker runs for a
  // batch, on a throwaway Backend. Input order and the caller's seed are
  // preserved, so the output is bit-identical to the historical facade
  // (asserted by tests/test_service.cpp), and pipeline exceptions
  // (invalid_argument for config errors, runtime_error for an
  // unplaceable batch) propagate with their original types.
  Backend backend(device, /*transpile_cache_capacity=*/0);
  return run_batch_pipeline(backend, programs, {}, options);
}

}  // namespace qucp
