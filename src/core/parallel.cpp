#include "core/parallel.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "core/runtime.hpp"
#include "mapping/transpiler.hpp"
#include "sim/statevector.hpp"

namespace qucp {

std::string_view method_name(Method m) noexcept {
  switch (m) {
    case Method::QuCP: return "QuCP";
    case Method::QuMC: return "QuMC";
    case Method::CNA: return "CNA";
    case Method::QuCloud: return "QuCloud";
    case Method::MultiQC: return "MultiQC";
    case Method::Naive: return "Naive";
  }
  return "?";
}

std::unique_ptr<Partitioner> make_partitioner(
    Method method, double sigma,
    const std::optional<CrosstalkModel>& estimates) {
  switch (method) {
    case Method::QuCP:
      return std::make_unique<QucpPartitioner>(sigma);
    case Method::QuMC:
      if (!estimates) {
        throw std::invalid_argument(
            "make_partitioner: QuMC requires SRB estimates");
      }
      return std::make_unique<QumcPartitioner>(*estimates);
    case Method::CNA:
      // The paper notes CNA proposes no qubit-partition algorithm of its
      // own: it inherits first-fit regions and mitigates crosstalk at gate
      // level during mapping instead.
      return std::make_unique<NaivePartitioner>();
    case Method::MultiQC:
      return std::make_unique<MultiqcPartitioner>();
    case Method::QuCloud:
      return std::make_unique<QucloudPartitioner>();
    case Method::Naive:
      return std::make_unique<NaivePartitioner>();
  }
  throw std::logic_error("make_partitioner: unhandled method");
}

BatchReport run_parallel(const Device& device,
                         const std::vector<Circuit>& programs,
                         const ParallelOptions& options) {
  if (programs.empty()) {
    throw std::invalid_argument("run_parallel: no programs");
  }
  // Partition in QuMC's largest-first order.
  std::vector<ProgramShape> shapes;
  shapes.reserve(programs.size());
  for (const Circuit& c : programs) shapes.push_back(shape_of(c));
  const std::vector<std::size_t> order = allocation_order(shapes);
  std::vector<ProgramShape> ordered_shapes;
  ordered_shapes.reserve(shapes.size());
  for (std::size_t idx : order) ordered_shapes.push_back(shapes[idx]);

  const auto partitioner =
      make_partitioner(options.method, options.sigma, options.srb_estimates);
  const auto allocations = partitioner->allocate(device, ordered_shapes);
  if (!allocations) {
    throw std::runtime_error("run_parallel: batch does not fit on " +
                             device.name());
  }
  // Assignment per original program index.
  std::vector<PartitionAssignment> assignment(programs.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    assignment[order[pos]] = (*allocations)[pos];
  }

  // Transpile each program onto its partition. CNA builds its gate-level
  // crosstalk context from all co-runner partitions.
  std::vector<PhysicalProgram> physical(programs.size());
  std::vector<int> swaps(programs.size(), 0);
  std::vector<std::vector<int>> layouts(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    TranspileOptions topts;
    if (options.method == Method::CNA) {
      std::vector<int> context;
      for (std::size_t j = 0; j < programs.size(); ++j) {
        if (j == i) continue;
        const auto edges =
            device.topology().induced_edges(assignment[j].qubits);
        context.insert(context.end(), edges.begin(), edges.end());
      }
      topts = cna_options(std::move(context),
                          options.srb_estimates ? &*options.srb_estimates
                                                : nullptr);
    } else {
      topts = hardware_aware_options();
    }
    topts.optimize_input = options.optimize_circuits;
    topts.optimize_output = options.optimize_circuits;
    TranspiledProgram tp = transpile_to_partition(
        programs[i], device, assignment[i].qubits, topts);
    swaps[i] = tp.swaps_added;
    layouts[i] = tp.final_layout;
    std::string name = programs[i].name().empty()
                           ? "program" + std::to_string(i)
                           : programs[i].name();
    physical[i] = {std::move(tp.physical), std::move(name)};
  }

  const ParallelRunReport run =
      execute_parallel(device, physical, options.exec);

  BatchReport report;
  report.throughput = run.throughput;
  report.makespan_ns = run.makespan_ns;
  report.crosstalk_events = run.crosstalk_events;
  report.programs.resize(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    ProgramReport& pr = report.programs[i];
    pr.name = run.programs[i].name;
    pr.partition = assignment[i].qubits;
    pr.final_layout = layouts[i];
    pr.efs = assignment[i].efs.score;
    pr.swaps_added = swaps[i];
    pr.ideal = ideal_distribution(programs[i]);
    pr.noisy = run.programs[i].distribution;
    pr.counts = run.programs[i].counts;
    pr.jsd_value = jsd(pr.noisy, pr.ideal);
    pr.pst_value = pst(pr.noisy, pr.ideal.most_likely());
  }

  // Modeled runtime reduction: N queued jobs vs one batch job.
  RuntimeModel model;
  model.shots = options.exec.shots;
  std::vector<double> solo_makespans;
  for (const PhysicalProgram& prog : physical) {
    solo_makespans.push_back(
        schedule_circuit(prog.circuit, device, options.exec.schedule)
            .makespan_ns);
  }
  report.runtime_reduction =
      serial_runtime_s(model, solo_makespans) /
      parallel_runtime_s(model, run.makespan_ns);
  return report;
}

}  // namespace qucp
