#include "core/runtime.hpp"

#include <stdexcept>

namespace qucp {

double job_runtime_s(const RuntimeModel& model, double makespan_ns) {
  if (makespan_ns < 0.0) {
    throw std::invalid_argument("job_runtime_s: negative makespan");
  }
  const double per_shot_ns = makespan_ns + model.shot_overhead_ns;
  return model.job_overhead_s + model.shots * per_shot_ns * 1e-9 +
         model.queue_depth * model.queue_job_latency_s;
}

double serial_runtime_s(const RuntimeModel& model,
                        const std::vector<double>& makespans_ns) {
  double total = 0.0;
  for (double m : makespans_ns) total += job_runtime_s(model, m);
  return total;
}

double parallel_runtime_s(const RuntimeModel& model,
                          double batch_makespan_ns) {
  return job_runtime_s(model, batch_makespan_ns);
}

}  // namespace qucp
