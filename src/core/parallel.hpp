#pragma once
// Compatibility facade: one-shot parallel circuit execution.
//
// NOTE: the primary public API now lives in service/service.hpp — an
// asynchronous job-queue ExecutionService with submit()/flush()/shutdown(),
// an online batch packer and a worker pool. run_parallel() remains as a
// thin synchronous shim over the service (one FIFO single batch, seed
// preserved bit for bit) for existing callers; new code should construct
// an ExecutionService and submit jobs instead.
//
// run_parallel() takes logical circuits and a device and performs the full
// multi-programming pipeline of the paper: partition allocation (per
// method), per-partition transpilation, simultaneous ALAP execution on the
// noisy simulator, and fidelity scoring (PST/JSD vs the ideal output).
//
// Methods map to the paper's comparison set:
//   QuCP    — EFS partitioning with sigma-emulated crosstalk (this paper)
//   QuMC    — EFS partitioning with SRB-measured crosstalk
//   CNA     — reliability partitioning + gate-level crosstalk-aware mapping
//   QuCloud — fidelity-degree partitioning, crosstalk-blind
//   MultiQC — reliability partitioning, crosstalk-blind
//   Naive   — first-fit partitioning, calibration-blind

#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "hardware/device.hpp"
#include "metrics/metrics.hpp"
#include "partition/partitioners.hpp"
#include "sim/executor.hpp"

namespace qucp {

enum class Method { QuCP, QuMC, CNA, QuCloud, MultiQC, Naive };

[[nodiscard]] std::string_view method_name(Method m) noexcept;

struct ParallelOptions {
  Method method = Method::QuCP;
  double sigma = 4.0;  ///< QuCP's crosstalk parameter (paper: sigma = 4)
  ExecOptions exec;    ///< shots, scheduling policy, noise toggles, seed
  /// SRB crosstalk estimates; required by QuMC, used by CNA when present.
  std::optional<CrosstalkModel> srb_estimates;
  /// Peephole-optimize circuits during transpilation. ZNE disables this:
  /// optimization would cancel the folded G G^dagger G sequences and undo
  /// the intended noise scaling.
  bool optimize_circuits = true;
};

struct ProgramReport {
  std::string name;
  std::vector<int> partition;      ///< physical qubits granted
  std::vector<int> final_layout;   ///< logical -> physical after routing
  double efs = 0.0;                ///< EFS in allocation context (Eq. 1)
  int swaps_added = 0;
  Distribution ideal;              ///< noiseless reference output
  Distribution noisy;              ///< exact noisy output
  Counts counts;                   ///< sampled shots
  double jsd_value = 0.0;          ///< JSD(noisy, ideal)
  double pst_value = 0.0;          ///< mass on the ideal most-likely outcome
};

struct BatchReport {
  std::vector<ProgramReport> programs;  ///< in input order
  double throughput = 0.0;
  double makespan_ns = 0.0;
  int crosstalk_events = 0;
  /// Modeled speedup of one parallel batch vs running each program as its
  /// own serial job (see core/runtime.hpp).
  double runtime_reduction = 1.0;
};

/// Execute a batch of logical programs simultaneously. Throws
/// std::runtime_error when the batch cannot be placed on the device and
/// std::invalid_argument when QuMC is requested without SRB estimates.
[[nodiscard]] BatchReport run_parallel(const Device& device,
                                       const std::vector<Circuit>& programs,
                                       const ParallelOptions& options = {});

/// The partitioner behind a method (CNA shares MultiQC's reliability
/// partitioner — the paper notes CNA has no partitioning algorithm of its
/// own). QuMC requires estimates.
[[nodiscard]] std::unique_ptr<Partitioner> make_partitioner(
    Method method, double sigma,
    const std::optional<CrosstalkModel>& estimates);

}  // namespace qucp
