#pragma once
// Cloud runtime model: waiting time + execution time.
//
// The paper motivates multi-programming with queue pressure on shared IBM
// devices (overall runtime = waiting time + execution time, §II-A). This
// model quantifies the claimed "total runtime reduced by up to N" when N
// programs share one job instead of queuing N jobs.

#include <vector>

namespace qucp {

struct RuntimeModel {
  double job_overhead_s = 8.0;     ///< queue/compile/load per submitted job
  double shot_overhead_ns = 1000.0;  ///< reset etc. per shot
  int shots = 4096;
  /// Average latency contributed by each job already waiting in the queue.
  double queue_job_latency_s = 30.0;
  int queue_depth = 0;             ///< jobs ahead of ours
};

/// Wall-clock seconds for one job whose circuit makespan is `makespan_ns`.
[[nodiscard]] double job_runtime_s(const RuntimeModel& model,
                                   double makespan_ns);

/// Total runtime of running programs serially: each is its own job, and
/// each re-enters the queue.
[[nodiscard]] double serial_runtime_s(const RuntimeModel& model,
                                      const std::vector<double>& makespans_ns);

/// Total runtime of one parallel batch (single job, single queue wait).
[[nodiscard]] double parallel_runtime_s(const RuntimeModel& model,
                                        double batch_makespan_ns);

}  // namespace qucp
