#include "benchmarks/suite.hpp"

#include <stdexcept>

#include "circuit/qasm.hpp"

namespace qucp {

namespace {

/// QASMBench adder_n4 (4-bit ripple adder kernel), verbatim.
constexpr const char* kAdderQasm = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
x q[0];
x q[1];
h q[3];
cx q[2],q[3];
t q[0];
t q[1];
t q[2];
tdg q[3];
cx q[0],q[1];
cx q[2],q[3];
cx q[3],q[0];
cx q[1],q[2];
cx q[0],q[1];
cx q[2],q[3];
tdg q[0];
tdg q[1];
tdg q[2];
t q[3];
cx q[0],q[1];
cx q[2],q[3];
s q[3];
cx q[3],q[0];
h q[3];
measure q -> c;
)";

/// QASMBench fredkin_n3: controlled-SWAP on |110>, Toffoli decomposed.
constexpr const char* kFredkinQasm = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
x q[0];
x q[1];
cx q[2],q[1];
ccx q[0],q[1],q[2];
cx q[2],q[1];
measure q -> c;
)";

/// RevLib 4mod5-v1_22 reconstruction: reversible mod-5 kernel with one
/// Toffoli; matches Table II's 21 gates / 11 CX.
constexpr const char* k4mod5Qasm = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
x q[4];
cx q[4],q[3];
cx q[3],q[2];
cx q[2],q[1];
cx q[1],q[0];
ccx q[0],q[1],q[2];
cx q[4],q[0];
measure q -> c;
)";

/// RevLib alu-v0_27 reconstruction: reversible ALU kernel with two
/// Toffolis; matches Table II's 36 gates / 17 CX.
constexpr const char* kAluQasm = R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
x q[0];
ccx q[0],q[1],q[2];
cx q[0],q[3];
cx q[3],q[4];
cx q[4],q[1];
ccx q[1],q[2],q[0];
cx q[2],q[4];
cx q[0],q[2];
measure q -> c;
)";

Circuit make_linearsolver() {
  Circuit c(3, 3, "linearsolver");
  c.ry(0.3, 0);
  c.h(1);
  c.ry(1.2, 2);
  c.cx(0, 1);
  c.rz(0.7, 1);
  c.ry(-0.4, 2);
  c.h(0);
  c.cx(1, 2);
  c.ry(0.8, 0);
  c.rz(1.1, 1);
  c.h(2);
  c.cx(2, 0);
  c.ry(0.5, 1);
  c.rx(0.9, 2);
  c.t(0);
  c.cx(0, 1);
  c.h(0);
  c.ry(0.25, 1);
  c.rz(0.6, 2);
  c.measure_all();
  return c;
}

Circuit make_qec_en() {
  Circuit c(5, 5, "qec_en");
  c.ry(0.9, 0);  // data qubit in superposition: distribution output
  c.h(1);
  c.h(2);
  c.cx(0, 3);
  c.cx(1, 3);
  c.cx(0, 4);
  c.cx(2, 4);
  c.t(0);
  c.t(1);
  c.t(2);
  c.tdg(3);
  c.tdg(4);
  c.cx(1, 0);
  c.cx(2, 0);
  c.h(3);
  c.h(4);
  c.cx(3, 2);
  c.cx(4, 1);
  c.s(0);
  c.s(3);
  c.h(0);
  c.z(2);
  c.cx(0, 1);
  c.cx(2, 3);
  c.x(4);
  c.measure_all();
  return c;
}

Circuit make_bell() {
  Circuit c(4, 4, "bell");
  for (int q = 0; q < 4; ++q) c.h(q);
  c.cx(0, 1);
  c.cx(2, 3);
  c.ry(0.785, 0);
  c.ry(-0.785, 1);
  c.ry(0.393, 2);
  c.ry(-0.393, 3);
  c.cx(1, 2);
  c.rz(0.25, 0);
  c.rx(0.5, 1);
  c.rz(-0.25, 2);
  c.rx(-0.5, 3);
  c.cx(0, 1);
  c.cx(2, 3);
  c.h(0);
  c.s(1);
  c.h(2);
  c.s(3);
  c.cx(1, 2);
  c.t(0);
  c.tdg(1);
  c.t(2);
  c.tdg(3);
  c.cx(0, 3);
  c.h(1);
  c.h(2);
  c.rz(0.35, 0);
  c.ry(0.15, 1);
  c.rz(-0.35, 2);
  c.ry(-0.15, 3);
  c.measure_all();
  return c;
}

Circuit make_variational() {
  Circuit c(4, 4, "variational");
  // Four RyRz + ring-entangler layers, then a final partial rotation layer:
  // 38 single-qubit gates + 16 CX = 54 gates (Table II).
  for (int layer = 0; layer < 4; ++layer) {
    for (int q = 0; q < 4; ++q) c.ry(0.2 + 0.15 * layer + 0.3 * q, q);
    for (int q = 0; q < 4; ++q) c.rz(0.1 + 0.1 * layer + 0.2 * q, q);
    for (int q = 0; q < 4; ++q) c.cx(q, (q + 1) % 4);
  }
  for (int q = 0; q < 4; ++q) c.ry(0.05 + 0.1 * q, q);
  c.rz(0.4, 0);
  c.rz(-0.4, 2);
  c.measure_all();
  return c;
}

std::vector<BenchmarkSpec> build_suite() {
  std::vector<BenchmarkSpec> suite;
  suite.push_back({"adder", "adder", parse_qasm(kAdderQasm, "adder"),
                   ResultKind::Deterministic, 4, 23, 10});
  suite.push_back({"linearsolver", "lin", make_linearsolver(),
                   ResultKind::Distribution, 3, 19, 4});
  suite.push_back({"4mod5-v1_22", "4mod", parse_qasm(k4mod5Qasm, "4mod5-v1_22"),
                   ResultKind::Deterministic, 5, 21, 11});
  suite.push_back({"fredkin", "fred", parse_qasm(kFredkinQasm, "fredkin"),
                   ResultKind::Deterministic, 3, 19, 8});
  suite.push_back({"qec_en", "qec", make_qec_en(), ResultKind::Distribution,
                   5, 25, 10});
  suite.push_back({"alu-v0_27", "alu", parse_qasm(kAluQasm, "alu-v0_27"),
                   ResultKind::Deterministic, 5, 36, 17});
  suite.push_back({"bell", "bell", make_bell(), ResultKind::Distribution, 4,
                   33, 7});
  suite.push_back({"variational", "var", make_variational(),
                   ResultKind::Distribution, 4, 54, 16});
  return suite;
}

}  // namespace

const std::vector<BenchmarkSpec>& benchmark_suite() {
  static const std::vector<BenchmarkSpec> kSuite = build_suite();
  return kSuite;
}

const BenchmarkSpec& get_benchmark(std::string_view name) {
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    if (spec.name == name || spec.short_name == name) return spec;
  }
  throw std::out_of_range("get_benchmark: unknown benchmark " +
                          std::string(name));
}

}  // namespace qucp
