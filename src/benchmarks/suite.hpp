#pragma once
// The paper's benchmark suite (Table II).
//
// Eight small circuits collected from QASMBench / RevLib. adder and fredkin
// are the published QASMBench circuits verbatim; the remaining six are
// reconstructed to match Table II's qubit/gate/CX counts and output class
// exactly (the paper does not reprint their gate lists). "Deterministic"
// circuits ideally produce a single outcome and are scored with PST;
// "distribution" circuits are scored with JSD against the ideal output.
//
// All circuits carry terminal measure-all; gate/CX counts exclude
// measurements, matching Table II's convention.

#include <span>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace qucp {

enum class ResultKind { Deterministic, Distribution };

struct BenchmarkSpec {
  std::string name;        ///< full benchmark name (Table II row)
  std::string short_name;  ///< label used in Fig. 3 ("lin", "qec", ...)
  Circuit circuit;         ///< measured circuit
  ResultKind result = ResultKind::Distribution;
  /// Table II reference values, asserted in tests.
  int table_qubits = 0;
  int table_gates = 0;
  int table_cx = 0;
};

/// All eight Table II benchmarks, in the table's row order.
[[nodiscard]] const std::vector<BenchmarkSpec>& benchmark_suite();

/// Lookup by full or short name; throws std::out_of_range when unknown.
[[nodiscard]] const BenchmarkSpec& get_benchmark(std::string_view name);

}  // namespace qucp
