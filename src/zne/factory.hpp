#pragma once
// Zero-noise extrapolation factories (Mitiq's Linear/Poly/Richardson).
//
// Each factory fits expectation values measured at scale factors >= 1 and
// extrapolates to scale 0. Richardson interpolates exactly through all
// points (Lagrange at 0); Linear and Poly are least-squares fits, which
// tolerate noisy expectation values better.

#include <span>
#include <string>
#include <vector>

namespace qucp {

class ExtrapolationFactory {
 public:
  virtual ~ExtrapolationFactory() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Extrapolate to zero noise from (scale, expectation) samples.
  /// Requires enough points for the model; throws otherwise.
  [[nodiscard]] virtual double extrapolate(
      std::span<const double> scales,
      std::span<const double> values) const = 0;
};

class LinearFactory final : public ExtrapolationFactory {
 public:
  [[nodiscard]] std::string name() const override { return "Linear"; }
  [[nodiscard]] double extrapolate(
      std::span<const double> scales,
      std::span<const double> values) const override;
};

class PolyFactory final : public ExtrapolationFactory {
 public:
  explicit PolyFactory(int order);
  [[nodiscard]] std::string name() const override {
    return "Poly" + std::to_string(order_);
  }
  [[nodiscard]] double extrapolate(
      std::span<const double> scales,
      std::span<const double> values) const override;

 private:
  int order_;
};

class RichardsonFactory final : public ExtrapolationFactory {
 public:
  [[nodiscard]] std::string name() const override { return "Richardson"; }
  [[nodiscard]] double extrapolate(
      std::span<const double> scales,
      std::span<const double> values) const override;
};

/// Least-squares polynomial fit returning coefficients c0..c_order
/// (normal equations with partial-pivot elimination; sizes here are tiny).
[[nodiscard]] std::vector<double> polyfit(std::span<const double> xs,
                                          std::span<const double> ys,
                                          int order);

}  // namespace qucp
