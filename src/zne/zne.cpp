#include "zne/zne.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "sim/statevector.hpp"

namespace qucp {

double parity_expectation(const Distribution& dist) {
  double e = 0.0;
  for (const auto& [outcome, p] : dist.probs()) {
    e += (std::popcount(outcome) % 2 ? -1.0 : 1.0) * p;
  }
  return e;
}

ZneResult run_zne(const Device& device, const Circuit& circuit,
                  ZneProcess process, const ZneOptions& options) {
  if (options.scales.empty() || options.scales.front() != 1.0) {
    throw std::invalid_argument("run_zne: scales must start at 1.0");
  }
  ZneResult result;
  result.ideal_expectation = parity_expectation(ideal_distribution(circuit));

  // Folding relies on redundant G G^dagger G sequences surviving to the
  // device; peephole optimization would silently cancel them. Disable it
  // for every process so the comparison stays apples-to-apples.
  ParallelOptions exec_opts = options.parallel;
  exec_opts.optimize_circuits = false;

  // Folded circuits (scale 1 = original).
  Rng fold_rng(options.folding_seed);
  std::vector<Circuit> folded;
  for (double s : options.scales) {
    Circuit f = s == 1.0
                    ? circuit
                    : fold_gates_at_random(
                          circuit, s,
                          fold_rng.derive("fold" + std::to_string(s)));
    f.set_name(circuit.name() + "@x" + std::to_string(s));
    result.scales.push_back(achieved_scale(circuit, f));
    folded.push_back(std::move(f));
  }

  if (process == ZneProcess::Baseline) {
    const BatchReport report =
        run_parallel(device, {circuit}, exec_opts);
    result.unmitigated = parity_expectation(report.programs[0].noisy);
    result.mitigated = result.unmitigated;
    result.best_factory = "none";
    result.abs_error =
        std::abs(result.unmitigated - result.ideal_expectation);
    result.throughput = report.throughput;
    result.expectations = {result.unmitigated};
    result.scales = {1.0};
    return result;
  }

  // Measure the expectation at every scale.
  if (process == ZneProcess::Parallel) {
    const BatchReport report = run_parallel(device, folded, exec_opts);
    for (const ProgramReport& pr : report.programs) {
      result.expectations.push_back(parity_expectation(pr.noisy));
    }
    result.throughput = report.throughput;
  } else {
    for (const Circuit& f : folded) {
      const BatchReport report = run_parallel(device, {f}, exec_opts);
      result.expectations.push_back(
          parity_expectation(report.programs[0].noisy));
      result.throughput = report.throughput;
    }
  }
  result.unmitigated = result.expectations.front();

  // Extrapolate with every factory; report the one closest to ideal (the
  // paper's protocol, acknowledging extrapolation's noise sensitivity).
  std::vector<std::unique_ptr<ExtrapolationFactory>> factories;
  factories.push_back(std::make_unique<LinearFactory>());
  factories.push_back(std::make_unique<PolyFactory>(2));
  factories.push_back(std::make_unique<RichardsonFactory>());
  double best_err = std::numeric_limits<double>::infinity();
  for (const auto& factory : factories) {
    double value = 0.0;
    try {
      value = factory->extrapolate(result.scales, result.expectations);
    } catch (const std::exception&) {
      continue;  // e.g. singular fit on degenerate scales
    }
    const double err = std::abs(value - result.ideal_expectation);
    if (err < best_err) {
      best_err = err;
      result.mitigated = value;
      result.best_factory = factory->name();
    }
  }
  result.abs_error = std::abs(result.mitigated - result.ideal_expectation);
  return result;
}

}  // namespace qucp
