#include "zne/folding.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qucp {

namespace {

/// Split a measured circuit into its unitary body and terminal
/// measurements; throws on non-terminal measurement.
struct SplitCircuit {
  Circuit body;
  std::vector<std::pair<int, int>> measurements;  // (qubit, clbit)
};

SplitCircuit split_terminal(const Circuit& circuit) {
  SplitCircuit out{Circuit(circuit.num_qubits(), circuit.num_clbits(),
                           circuit.name()),
                   {}};
  std::vector<bool> measured(static_cast<std::size_t>(circuit.num_qubits()),
                             false);
  for (const Gate& g : circuit.ops()) {
    if (g.kind == GateKind::Measure) {
      out.measurements.emplace_back(g.qubits[0], g.clbit);
      measured[static_cast<std::size_t>(g.qubits[0])] = true;
      continue;
    }
    if (g.kind == GateKind::Barrier) continue;
    for (int q : g.qubits) {
      if (measured[static_cast<std::size_t>(q)]) {
        throw std::invalid_argument("folding: non-terminal measurement");
      }
    }
    out.body.append(g);
  }
  return out;
}

void append_measurements(Circuit& c,
                         const std::vector<std::pair<int, int>>& ms) {
  for (const auto& [q, cl] : ms) c.measure(q, cl);
}

}  // namespace

Circuit fold_gates_at_random(const Circuit& circuit, double scale, Rng rng) {
  if (scale < 1.0) {
    throw std::invalid_argument("fold_gates_at_random: scale < 1");
  }
  SplitCircuit split = split_terminal(circuit);
  const std::size_t n = split.body.size();
  if (n == 0) return circuit;

  // Each fold adds 2 extra copies of one gate. Number of single folds to
  // reach the scale: d = round(n * (scale - 1) / 2), spread over the
  // circuit with repetition allowed past scale 3.
  const auto folds =
      static_cast<std::size_t>(std::llround(n * (scale - 1.0) / 2.0));
  std::vector<int> fold_count(n, 0);
  const std::size_t full_rounds = folds / n;
  for (auto& f : fold_count) f += static_cast<int>(full_rounds);
  std::size_t remaining = folds % n;
  // Random subset for the partial round.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t i = 0; i < remaining; ++i) ++fold_count[order[i]];

  Circuit out(circuit.num_qubits(), circuit.num_clbits(), circuit.name());
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = split.body.ops()[i];
    out.append(g);
    for (int f = 0; f < fold_count[i]; ++f) {
      out.append(inverse_gate(g));
      out.append(g);
    }
  }
  append_measurements(out, split.measurements);
  return out;
}

Circuit fold_global(const Circuit& circuit, double scale) {
  if (scale < 1.0) throw std::invalid_argument("fold_global: scale < 1");
  SplitCircuit split = split_terminal(circuit);
  const std::size_t n = split.body.size();
  if (n == 0) return circuit;

  const auto k = static_cast<std::size_t>(std::floor((scale - 1.0) / 2.0));
  // Partial fold of the last `p` gates to land near the requested scale.
  const double frac = (scale - 1.0) / 2.0 - static_cast<double>(k);
  const auto p = static_cast<std::size_t>(std::llround(frac * n));

  Circuit out = split.body;
  const Circuit inv = split.body.inverse();
  for (std::size_t i = 0; i < k; ++i) {
    out.compose(inv);
    out.compose(split.body);
  }
  if (p > 0) {
    // Fold the tail: append inverse of last p gates, then the gates again.
    Circuit tail(circuit.num_qubits(), circuit.num_clbits());
    for (std::size_t i = n - p; i < n; ++i) tail.append(split.body.ops()[i]);
    out.compose(tail.inverse());
    out.compose(tail);
  }
  out.set_name(circuit.name());
  append_measurements(out, split.measurements);
  return out;
}

double achieved_scale(const Circuit& original, const Circuit& folded) {
  const int base = original.gate_count();
  if (base == 0) throw std::invalid_argument("achieved_scale: empty circuit");
  return static_cast<double>(folded.gate_count()) / base;
}

std::vector<double> paper_scale_factors() { return {1.0, 1.5, 2.0, 2.5}; }

}  // namespace qucp
