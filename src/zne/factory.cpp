#include "zne/factory.hpp"

#include <cmath>
#include <stdexcept>

namespace qucp {

std::vector<double> polyfit(std::span<const double> xs,
                            std::span<const double> ys, int order) {
  if (order < 0) throw std::invalid_argument("polyfit: negative order");
  const std::size_t n = xs.size();
  if (ys.size() != n || static_cast<int>(n) < order + 1) {
    throw std::invalid_argument("polyfit: not enough points");
  }
  const int m = order + 1;
  // Normal equations A c = b with A[i][j] = sum x^(i+j).
  std::vector<std::vector<double>> a(m, std::vector<double>(m, 0.0));
  std::vector<double> b(m, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    double xp = 1.0;
    std::vector<double> powers(2 * m - 1);
    for (int d = 0; d < 2 * m - 1; ++d) {
      powers[d] = xp;
      xp *= xs[k];
    }
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) a[i][j] += powers[i + j];
      b[i] += powers[i] * ys[k];
    }
  }
  // Gaussian elimination with partial pivoting.
  std::vector<int> perm(m);
  for (int i = 0; i < m; ++i) perm[i] = i;
  for (int col = 0; col < m; ++col) {
    int pivot = col;
    for (int r = col + 1; r < m; ++r) {
      if (std::abs(a[perm[r]][col]) > std::abs(a[perm[pivot]][col])) {
        pivot = r;
      }
    }
    std::swap(perm[col], perm[pivot]);
    const double diag = a[perm[col]][col];
    if (std::abs(diag) < 1e-14) {
      throw std::runtime_error("polyfit: singular normal equations");
    }
    for (int r = col + 1; r < m; ++r) {
      const double f = a[perm[r]][col] / diag;
      for (int c = col; c < m; ++c) a[perm[r]][c] -= f * a[perm[col]][c];
      b[perm[r]] -= f * b[perm[col]];
    }
  }
  std::vector<double> coeff(m, 0.0);
  for (int row = m - 1; row >= 0; --row) {
    double acc = b[perm[row]];
    for (int c = row + 1; c < m; ++c) acc -= a[perm[row]][c] * coeff[c];
    coeff[row] = acc / a[perm[row]][row];
  }
  return coeff;
}

double LinearFactory::extrapolate(std::span<const double> scales,
                                  std::span<const double> values) const {
  return polyfit(scales, values, 1)[0];
}

PolyFactory::PolyFactory(int order) : order_(order) {
  if (order < 1) throw std::invalid_argument("PolyFactory: order < 1");
}

double PolyFactory::extrapolate(std::span<const double> scales,
                                std::span<const double> values) const {
  return polyfit(scales, values, order_)[0];
}

double RichardsonFactory::extrapolate(std::span<const double> scales,
                                      std::span<const double> values) const {
  const std::size_t n = scales.size();
  if (values.size() != n || n < 2) {
    throw std::invalid_argument("RichardsonFactory: need >= 2 points");
  }
  // Lagrange interpolation evaluated at x = 0.
  double result = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double weight = 1.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double denom = scales[i] - scales[j];
      if (std::abs(denom) < 1e-12) {
        throw std::invalid_argument("RichardsonFactory: duplicate scales");
      }
      weight *= -scales[j] / denom;
    }
    result += weight * values[i];
  }
  return result;
}

}  // namespace qucp
