#pragma once
// End-to-end ZNE with optional parallel execution (paper §IV-D).
//
// The observable is the parity expectation <Z...Z> over measured bits —
// computable from counts for any benchmark. Three processes are compared:
//   Baseline  — the unfolded circuit on its best partition, no mitigation
//   ZNE       — folded circuits executed one job each, extrapolated
//   QuCP+ZNE  — folded circuits executed in ONE parallel batch (same
//               number of circuit executions as Baseline), extrapolated
// Per the paper, the reported mitigated value uses the extrapolation
// method closest to the ideal (noiseless) expectation.

#include <vector>

#include "core/parallel.hpp"
#include "zne/factory.hpp"
#include "zne/folding.hpp"

namespace qucp {

/// Parity expectation <Z^(x)m> over the measured bits of a distribution.
[[nodiscard]] double parity_expectation(const Distribution& dist);

struct ZneOptions {
  std::vector<double> scales = paper_scale_factors();
  ParallelOptions parallel;       ///< method/exec used for execution
  std::uint64_t folding_seed = 99;
};

enum class ZneProcess { Baseline, Independent, Parallel };

struct ZneResult {
  double ideal_expectation = 0.0;
  double unmitigated = 0.0;          ///< scale-1 measured expectation
  std::vector<double> scales;        ///< achieved scale factors
  std::vector<double> expectations;  ///< measured value per scale
  double mitigated = 0.0;            ///< best-factory extrapolation
  std::string best_factory;
  double abs_error = 0.0;            ///< |mitigated or unmitigated - ideal|
  double throughput = 0.0;
};

/// Run one process on a circuit. Baseline ignores `scales` beyond 1.0.
[[nodiscard]] ZneResult run_zne(const Device& device, const Circuit& circuit,
                                ZneProcess process, const ZneOptions& options);

}  // namespace qucp
