#pragma once
// Digital noise scaling by unitary folding (Giurgica-Tiron et al.; the
// Mitiq primitives the paper uses).
//
// Folding a gate G into G G^dagger G leaves the ideal circuit invariant
// while tripling that gate's noise exposure. A scale factor s >= 1 selects
// how many gates to fold: the folded circuit has ~s times the original
// gate count. fold_gates_at_random picks the folded subset randomly
// (the paper's choice); fold_global folds the whole circuit.

#include "circuit/circuit.hpp"
#include "common/rng.hpp"

namespace qucp {

/// Random gate folding to reach `scale` (>= 1). Measurements/barriers are
/// untouched and stay terminal. scale in [1, 3] folds a subset once;
/// larger scales apply full folds first, then a random partial fold.
[[nodiscard]] Circuit fold_gates_at_random(const Circuit& circuit,
                                           double scale, Rng rng);

/// Global folding: C -> C (C^dagger C)^k with a partial right fold for
/// fractional scales.
[[nodiscard]] Circuit fold_global(const Circuit& circuit, double scale);

/// Achieved scale: folded unitary gate count / original count.
[[nodiscard]] double achieved_scale(const Circuit& original,
                                    const Circuit& folded);

/// The paper's scale list: 1.0 to 2.5 with step 0.5 (4 folded circuits).
[[nodiscard]] std::vector<double> paper_scale_factors();

}  // namespace qucp
