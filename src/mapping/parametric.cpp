#include "mapping/parametric.hpp"

#include <bit>
#include <cstdint>

namespace qucp {

namespace {

/// Positional tag for (op, param) of the prepared circuit: small exact
/// integers survive routing bit-for-bit and decode uniquely. Stride 4
/// covers the widest parameter list in the gate set (U3's 3 angles).
constexpr std::size_t kTagStride = 4;

double encode_tag(std::size_t op, std::size_t param) {
  return static_cast<double>(op * kTagStride + param + 1);
}

bool decode_tag(double tag, std::size_t num_ops, std::size_t& op,
                std::size_t& param) {
  if (!(tag >= 1.0) || tag > static_cast<double>(num_ops * kTagStride)) {
    return false;
  }
  const auto t = static_cast<std::uint64_t>(tag);
  if (static_cast<double>(t) != tag) return false;  // non-integer tag
  op = static_cast<std::size_t>((t - 1) / kTagStride);
  param = static_cast<std::size_t>((t - 1) % kTagStride);
  return true;
}

bool same_bits(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

}  // namespace

std::optional<TranspileTemplate> TranspileTemplate::build(
    const Circuit& logical, const Device& device,
    std::span<const int> partition, const TranspileOptions& options) {
  TranspileTemplate tmpl;
  tmpl.binding0 = ParamBinding(logical).values;

  OptimizeTrace trace;
  // Input ops read binding slots directly, in circuit order.
  std::vector<std::vector<std::uint32_t>> logical_exprs;
  logical_exprs.reserve(logical.size());
  std::int32_t slot = 0;
  for (const Gate& g : logical.ops()) {
    std::vector<std::uint32_t> ids;
    ids.reserve(g.params.size());
    for (std::size_t j = 0; j < g.params.size(); ++j) {
      ids.push_back(trace.leaf(slot++));
    }
    logical_exprs.push_back(std::move(ids));
  }

  // Stage A: input peephole (traced — mirrors transpile_to_partition).
  Circuit prepared;
  std::vector<std::vector<std::uint32_t>> prepared_exprs;
  if (options.optimize_input) {
    prepared = optimize_traced(logical, logical_exprs, trace);
    prepared_exprs = std::move(trace.out_exprs);
    trace.out_exprs.clear();
  } else {
    prepared = logical;
    prepared_exprs = std::move(logical_exprs);
  }

  // Stage B: placement + routing, both parameter-blind. Route the real
  // prepared circuit for the result, and a positionally tagged copy to
  // recover which prepared parameter each routed parameter came from
  // (routing may reorder commuting layers relative to op index).
  const std::vector<int> layout =
      initial_layout(prepared, device, partition, options.placement);
  RoutingResult routed = route_on_partition(prepared, device, partition,
                                            layout, options.router);
  Circuit tagged = prepared;
  for (std::size_t i = 0; i < prepared.size(); ++i) {
    for (std::size_t j = 0; j < prepared.ops()[i].params.size(); ++j) {
      tagged.set_param(i, j, encode_tag(i, j));
    }
  }
  const RoutingResult tagged_routed = route_on_partition(
      tagged, device, partition, layout, options.router);

  // Decode provenance, validating that the tagged route replayed the real
  // one gate-for-gate. Any mismatch means the router was not actually
  // parameter-blind on this input — refuse the template rather than risk a
  // wrong bind.
  const auto& real_ops = routed.physical.ops();
  const auto& tag_ops = tagged_routed.physical.ops();
  if (tag_ops.size() != real_ops.size()) return std::nullopt;
  std::vector<std::vector<std::uint32_t>> routed_exprs(real_ops.size());
  for (std::size_t i = 0; i < real_ops.size(); ++i) {
    const Gate& r = real_ops[i];
    const Gate& t = tag_ops[i];
    if (t.kind != r.kind || t.qubits != r.qubits ||
        t.params.size() != r.params.size()) {
      return std::nullopt;
    }
    routed_exprs[i].reserve(r.params.size());
    for (std::size_t j = 0; j < r.params.size(); ++j) {
      std::size_t src_op = 0;
      std::size_t src_param = 0;
      if (!decode_tag(t.params[j], prepared.size(), src_op, src_param)) {
        return std::nullopt;
      }
      if (src_op >= prepared.size() ||
          src_param >= prepared.ops()[src_op].params.size() ||
          !same_bits(r.params[j], prepared.ops()[src_op].params[src_param])) {
        return std::nullopt;
      }
      routed_exprs[i].push_back(prepared_exprs[src_op][src_param]);
    }
  }

  // Stage C: output peephole (traced, same DAG — merges compose).
  tmpl.result.initial_layout = layout;
  tmpl.result.final_layout = std::move(routed.final_layout);
  tmpl.result.swaps_added = routed.swaps_added;
  if (options.optimize_output) {
    tmpl.result.physical = optimize_traced(routed.physical, routed_exprs,
                                           trace);
    tmpl.phys_exprs = std::move(trace.out_exprs);
  } else {
    tmpl.result.physical = std::move(routed.physical);
    tmpl.phys_exprs = std::move(routed_exprs);
  }
  tmpl.nodes = std::move(trace.nodes);
  tmpl.checks = std::move(trace.checks);
  return tmpl;
}

std::optional<TranspiledProgram> TranspileTemplate::bind(
    std::span<const double> binding) const {
  if (binding.size() != binding0.size()) return std::nullopt;

  // Evaluate the DAG in creation order — the same additions, in the same
  // order, the traced optimize performed, so values are bit-identical to a
  // from-scratch transpile of the bound circuit. Typical ansatz DAGs are
  // small; keep the evaluation buffer on the stack for them.
  constexpr std::size_t kStackNodes = 256;
  double stack_vals[kStackNodes];
  std::vector<double> heap_vals;
  double* vals = stack_vals;
  if (nodes.size() > kStackNodes) {
    heap_vals.resize(nodes.size());
    vals = heap_vals.data();
  }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const ParamExpr& e = nodes[i];
    switch (e.kind) {
      case ParamExpr::Kind::Slot:
        vals[i] = binding[static_cast<std::size_t>(e.slot)];
        break;
      case ParamExpr::Kind::Add:
        vals[i] = vals[e.a] + vals[e.b];
        break;
      case ParamExpr::Kind::Const:
        vals[i] = e.value;
        break;
    }
  }

  // The optimizer's control flow is structure plus these decisions; a new
  // binding must take every recorded branch the same way to reuse the
  // template's structure.
  for (const ParamCheck& c : checks) {
    if (angle_is_identity(vals[c.node]) != c.identity) return std::nullopt;
  }

  TranspiledProgram out = result;
  for (std::size_t i = 0; i < phys_exprs.size(); ++i) {
    for (std::size_t j = 0; j < phys_exprs[i].size(); ++j) {
      out.physical.patch_param(i, j, vals[phys_exprs[i][j]]);
    }
  }
  out.physical.invalidate_fingerprints();
  return out;
}

void TranspileTemplate::bind_many(
    std::span<const ParamBinding* const> bindings,
    std::vector<std::optional<TranspiledProgram>>& out) const {
  out.clear();
  out.resize(bindings.size());
  if (bindings.empty()) return;

  // Hoist everything a single bind() recomputes that does not depend on
  // the values: one evaluation arena reused across bindings, the ragged
  // phys_exprs walk flattened into a linear patch list once, and the
  // check list compressed to its distinct nodes (fan-out means several
  // checks interrogate one node; angle_is_identity runs once per node).
  std::vector<double> arena(nodes.size());
  double* const vals = arena.data();
  struct Patch {
    std::uint32_t op;
    std::uint32_t param;
    std::uint32_t node;
  };
  std::vector<Patch> patches;
  for (std::size_t i = 0; i < phys_exprs.size(); ++i) {
    for (std::size_t j = 0; j < phys_exprs[i].size(); ++j) {
      patches.push_back(Patch{static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j),
                              phys_exprs[i][j]});
    }
  }
  // expected[node]: the identity verdict every check on `node` recorded,
  // or kUnchecked. Conflicting verdicts for one node can never both hold,
  // so such a template rejects every binding — exactly what sequential
  // bind() calls conclude by the second check on that node.
  constexpr std::uint8_t kUnchecked = 2;
  std::vector<std::uint8_t> expected(nodes.size(), kUnchecked);
  bool contradictory = false;
  std::vector<std::uint32_t> check_nodes;
  for (const ParamCheck& c : checks) {
    const std::uint8_t want = c.identity ? 1 : 0;
    if (expected[c.node] == kUnchecked) {
      expected[c.node] = want;
      check_nodes.push_back(c.node);
    } else if (expected[c.node] != want) {
      contradictory = true;
    }
  }

  for (std::size_t b = 0; b < bindings.size(); ++b) {
    const std::vector<double>& binding = bindings[b]->values;
    if (binding.size() != binding0.size()) continue;
    // Same evaluation loop as bind(): creation order, identical additions,
    // so each engaged result is bit-identical to bind(bindings[b]).
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const ParamExpr& e = nodes[i];
      switch (e.kind) {
        case ParamExpr::Kind::Slot:
          vals[i] = binding[static_cast<std::size_t>(e.slot)];
          break;
        case ParamExpr::Kind::Add:
          vals[i] = vals[e.a] + vals[e.b];
          break;
        case ParamExpr::Kind::Const:
          vals[i] = e.value;
          break;
      }
    }
    bool flipped = contradictory;
    for (const std::uint32_t node : check_nodes) {
      if (flipped) break;
      if (angle_is_identity(vals[node]) != (expected[node] != 0)) {
        flipped = true;
      }
    }
    if (flipped) continue;
    TranspiledProgram& prog = out[b].emplace(result);
    for (const Patch& p : patches) {
      prog.physical.patch_param(p.op, p.param, vals[p.node]);
    }
    prog.physical.invalidate_fingerprints();
  }
}

void TranspileTemplate::bind_many(
    std::span<const ParamBinding> bindings,
    std::vector<std::optional<TranspiledProgram>>& out) const {
  std::vector<const ParamBinding*> ptrs;
  ptrs.reserve(bindings.size());
  for (const ParamBinding& b : bindings) ptrs.push_back(&b);
  bind_many(ptrs, out);
}

}  // namespace qucp
