#include "mapping/transpiler.hpp"

#include "circuit/optimize.hpp"

namespace qucp {

TranspileOptions hardware_aware_options() {
  TranspileOptions opts;
  opts.placement = PlacementStyle::HardwareAware;
  opts.router.noise_aware = true;
  opts.router.crosstalk_aware = false;
  return opts;
}

TranspileOptions cna_options(std::vector<int> context_edges,
                             const CrosstalkModel* estimates) {
  TranspileOptions opts;
  opts.placement = PlacementStyle::NoiseAdaptive;
  opts.router.noise_aware = true;
  opts.router.crosstalk_aware = true;
  opts.router.context_edges = std::move(context_edges);
  opts.router.crosstalk_estimates = estimates;
  return opts;
}

TranspiledProgram transpile_to_partition(const Circuit& logical,
                                         const Device& device,
                                         std::span<const int> partition,
                                         const TranspileOptions& options) {
  const Circuit prepared =
      options.optimize_input ? optimize(logical) : logical;
  const std::vector<int> layout =
      initial_layout(prepared, device, partition, options.placement);
  RoutingResult routed = route_on_partition(prepared, device, partition,
                                            layout, options.router);
  TranspiledProgram out;
  out.initial_layout = layout;
  out.final_layout = std::move(routed.final_layout);
  out.swaps_added = routed.swaps_added;
  out.physical = options.optimize_output ? optimize(routed.physical)
                                         : std::move(routed.physical);
  return out;
}

}  // namespace qucp
