#pragma once
// Parametric transpilation templates: transpile a circuit *structure* once,
// bind per-job parameter values in one cheap pass.
//
// Everything in the transpile pipeline except the peephole optimizer is
// parameter-blind: initial placement reads interaction weights (2q gate
// counts), SABRE routing copies gates verbatim and inserts parameterless
// SWAPs, and the partition/EFS layers consume gate placement only. The
// optimizer's control flow depends on values solely through its
// angle-is-identity decisions. A template therefore stores:
//
//   - the full TranspiledProgram of one representative binding (binding0);
//   - the parameter-expression DAG tracing every physical-op parameter back
//     to input slots through the optimizer's rotation merges (two traced
//     optimize passes — input-side and post-routing — share one DAG, glued
//     through routing by re-routing a positionally tagged copy of the
//     prepared circuit and decoding where each routed parameter came from;
//     safe precisely because the router never reads parameter values);
//   - the ordered log of every identity decision both passes took.
//
// bind() evaluates the DAG for a new slot binding, validates the decision
// log, and patches the evaluated parameters into a copy of the stored
// physical circuit. Because the DAG replays the optimizer's additions in
// the original order and the structure is reused verbatim, a successful
// bind is bit-identical to a from-scratch transpile_to_partition() of the
// newly-bound circuit (golden-pinned in tests/test_parametric.cpp). A
// binding that flips any recorded decision (an angle landing on an
// identity the representative didn't have) is rejected and the caller
// falls back to a from-scratch transpile.

#include <optional>
#include <span>

#include "circuit/optimize.hpp"
#include "mapping/transpiler.hpp"

namespace qucp {

struct TranspileTemplate {
  TranspiledProgram result;      ///< transpile of the binding0 circuit
  std::vector<double> binding0;  ///< slot values the template was built from
  std::vector<ParamExpr> nodes;  ///< shared expression DAG (both passes)
  std::vector<ParamCheck> checks;  ///< identity decisions, evaluation order
  /// Node id per (physical op, param), parallel to result.physical.ops().
  std::vector<std::vector<std::uint32_t>> phys_exprs;

  /// Build a template from a representative logical circuit. Returns
  /// nullopt when parameter provenance through routing cannot be decoded
  /// (not expected for the supported gate set; callers fall back to plain
  /// transpilation and cache the result without a template).
  [[nodiscard]] static std::optional<TranspileTemplate> build(
      const Circuit& logical, const Device& device,
      std::span<const int> partition, const TranspileOptions& options);

  /// Bind a new slot assignment (ParamBinding order of a circuit with the
  /// same structural_fingerprint). Returns nullopt when the binding flips
  /// a recorded optimizer decision or its slot count mismatches.
  [[nodiscard]] std::optional<TranspiledProgram> bind(
      std::span<const double> binding) const;

  /// Batched bind() for sweep traffic: evaluate the DAG for every binding
  /// against this one routed program. `out` is cleared and resized to
  /// bindings.size(); entry i is engaged iff bind(bindings[i].values)
  /// would succeed and is bit-identical to it. Binding-independent work —
  /// the DAG evaluation arena and the flattened (op, param, node) patch
  /// list — is hoisted out of the per-binding loop; a binding that flips a
  /// recorded decision leaves its entry disengaged so the caller can fall
  /// back for that binding alone.
  void bind_many(std::span<const ParamBinding> bindings,
                 std::vector<std::optional<TranspiledProgram>>& out) const;
  /// Pointer-span form: lets callers bind a non-contiguous subset of a
  /// binding set (e.g. transpile_sweep skipping exact-binding repeats)
  /// without copying ParamBinding values. The value-span overload
  /// forwards here.
  void bind_many(std::span<const ParamBinding* const> bindings,
                 std::vector<std::optional<TranspiledProgram>>& out) const;
};

}  // namespace qucp
