#pragma once
// SWAP routing restricted to a partition (SABRE-style).
//
// Makes every two-qubit gate act on coupled qubits by inserting SWAPs along
// partition-internal edges. The cost function blends hop distance for the
// front layer, a look-ahead over upcoming gates, a per-qubit decay term
// against ping-ponging, an optional noise term (3x the edge's CX error —
// the SWAP's real cost), and — for the CNA baseline — a gate-level
// crosstalk penalty against edges one-hop from co-runner partitions.

#include <optional>
#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "hardware/device.hpp"

namespace qucp {

struct RouterOptions {
  bool noise_aware = true;     ///< add CX-error term to swap scores
  double error_weight = 10.0;  ///< weight of the noise term
  double lookahead_weight = 0.5;
  int lookahead_depth = 20;    ///< number of future 2q gates considered
  double decay = 0.001;        ///< per-use decay increment
  int decay_reset_interval = 5;

  /// Gate-level crosstalk penalty (CNA): edges one-hop from any context
  /// edge are discouraged proportionally to the estimated gamma.
  bool crosstalk_aware = false;
  double crosstalk_weight = 5.0;
  std::vector<int> context_edges;            ///< co-runner partition edges
  const CrosstalkModel* crosstalk_estimates = nullptr;  ///< SRB estimates
};

struct RoutingResult {
  Circuit physical;              ///< over device-qubit indices
  std::vector<int> final_layout; ///< logical -> physical after routing
  int swaps_added = 0;
};

/// Route `circuit` (logical) onto the partition starting from
/// `initial_layout` (logical -> physical). Measurements must be terminal;
/// they are re-emitted on the final physical positions with their original
/// clbits. Throws std::runtime_error if routing cannot progress (partition
/// not connected).
[[nodiscard]] RoutingResult route_on_partition(
    const Circuit& circuit, const Device& device,
    std::span<const int> partition, std::span<const int> initial_layout,
    const RouterOptions& options = {});

}  // namespace qucp
