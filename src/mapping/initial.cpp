#include "mapping/initial.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

namespace qucp {

std::vector<std::vector<int>> interaction_weights(const Circuit& circuit) {
  const int n = circuit.num_qubits();
  std::vector<std::vector<int>> w(n, std::vector<int>(n, 0));
  for (const Gate& g : circuit.ops()) {
    if (!is_two_qubit_gate(g.kind)) continue;
    ++w[g.qubits[0]][g.qubits[1]];
    ++w[g.qubits[1]][g.qubits[0]];
  }
  return w;
}

namespace {

/// Quality of a physical qubit for tie-breaking: lower is better.
double phys_error_score(const Device& device, int q,
                        const std::set<int>& partition) {
  double err = device.readout_error(q);
  int links = 0;
  double cx_sum = 0.0;
  for (int nb : device.topology().neighbors(q)) {
    if (!partition.count(nb)) continue;
    cx_sum += device.cx_error(q, nb);
    ++links;
  }
  if (links > 0) err += cx_sum / links;
  return err;
}

}  // namespace

std::vector<int> initial_layout(const Circuit& circuit, const Device& device,
                                std::span<const int> partition,
                                PlacementStyle style) {
  const int n = circuit.num_qubits();
  const Topology& topo = device.topology();
  const std::set<int> part_set(partition.begin(), partition.end());
  if (static_cast<int>(part_set.size()) < n) {
    throw std::invalid_argument("initial_layout: partition too small");
  }
  if (!topo.is_connected_subset(partition)) {
    throw std::invalid_argument("initial_layout: partition not connected");
  }

  const auto weights = interaction_weights(circuit);
  std::vector<int> total_weight(n, 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) total_weight[i] += weights[i][j];
  }

  std::vector<int> layout(n, -1);
  std::set<int> free_phys = part_set;
  std::vector<bool> placed(n, false);

  // Physical connectivity inside the partition (for the anchor choice).
  auto part_degree = [&](int q) {
    int d = 0;
    for (int nb : topo.neighbors(q)) {
      if (part_set.count(nb)) ++d;
    }
    return d;
  };

  for (int step = 0; step < n; ++step) {
    // Next logical: highest connection weight to already-placed logicals;
    // first step (or isolated qubits) fall back to total weight.
    int logical = -1;
    int best_key = -1;
    for (int l = 0; l < n; ++l) {
      if (placed[l]) continue;
      int key = 0;
      for (int m = 0; m < n; ++m) {
        if (placed[m]) key += weights[l][m];
      }
      key = key * 1000 + total_weight[l];  // placed-links dominate
      if (key > best_key) {
        best_key = key;
        logical = l;
      }
    }

    // Candidate physical qubits, scored per placement style.
    int best_phys = -1;
    double best_score = 0.0;
    for (int phys : free_phys) {
      double score = 0.0;
      if (style == PlacementStyle::HardwareAware) {
        // Distance to placed partners (weighted), fewer hops better; the
        // anchor prefers high partition connectivity. Error tie-break.
        for (int m = 0; m < n; ++m) {
          if (placed[m] && weights[logical][m] > 0) {
            score += weights[logical][m] * topo.distance(phys, layout[m]);
          }
        }
        score -= 0.1 * part_degree(phys);
        // Error term scaled so calibration dominates pure-connectivity
        // tie-breaks (the point of the hardware-aware heuristic [18]).
        score += 10.0 * phys_error_score(device, phys, part_set);
      } else {
        // Noise-adaptive: maximize log reliability toward partners (use
        // negated value so that lower stays better).
        for (int m = 0; m < n; ++m) {
          if (!placed[m] || weights[logical][m] == 0) continue;
          const int d = topo.distance(phys, layout[m]);
          // Approximate path reliability with the partition's average CX
          // error per hop.
          double avg_err = 0.0;
          int cnt = 0;
          for (int e : topo.induced_edges(partition)) {
            avg_err += device.calibration().cx_error[e];
            ++cnt;
          }
          avg_err = cnt > 0 ? avg_err / cnt : 0.05;
          score += weights[logical][m] *
                   (-std::log1p(-std::min(0.99, avg_err)) * d);
        }
        score += 2.0 * device.readout_error(phys);
        score += 10.0 * phys_error_score(device, phys, part_set);
      }
      if (best_phys < 0 || score < best_score) {
        best_phys = phys;
        best_score = score;
      }
    }

    layout[logical] = best_phys;
    placed[logical] = true;
    free_phys.erase(best_phys);
  }
  return layout;
}

}  // namespace qucp
