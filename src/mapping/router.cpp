#include "mapping/router.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <set>
#include <stdexcept>

#include "circuit/dag.hpp"

namespace qucp {

namespace {

/// Hop distances inside the partition-induced subgraph.
class PartitionDistances {
 public:
  PartitionDistances(const Topology& topo, std::span<const int> partition) {
    int next = 0;
    for (int q : partition) local_[q] = next++;
    const int n = next;
    dist_.assign(n, std::vector<int>(n, -1));
    for (int src : partition) {
      const int ls = local_[src];
      dist_[ls][ls] = 0;
      std::deque<int> queue{src};
      while (!queue.empty()) {
        const int u = queue.front();
        queue.pop_front();
        for (int v : topo.neighbors(u)) {
          const auto it = local_.find(v);
          if (it == local_.end()) continue;
          if (dist_[ls][it->second] < 0) {
            dist_[ls][it->second] = dist_[ls][local_[u]] + 1;
            queue.push_back(v);
          }
        }
      }
    }
  }

  [[nodiscard]] int distance(int phys_a, int phys_b) const {
    return dist_[local_.at(phys_a)][local_.at(phys_b)];
  }

 private:
  std::map<int, int> local_;
  std::vector<std::vector<int>> dist_;
};

}  // namespace

RoutingResult route_on_partition(const Circuit& circuit, const Device& device,
                                 std::span<const int> partition,
                                 std::span<const int> initial_layout,
                                 const RouterOptions& options) {
  const Topology& topo = device.topology();
  const std::set<int> part_set(partition.begin(), partition.end());
  if (!topo.is_connected_subset(partition)) {
    throw std::invalid_argument("route_on_partition: partition not connected");
  }
  if (static_cast<int>(initial_layout.size()) != circuit.num_qubits()) {
    throw std::invalid_argument("route_on_partition: layout size mismatch");
  }
  {
    std::set<int> seen;
    for (int phys : initial_layout) {
      if (!part_set.count(phys) || !seen.insert(phys).second) {
        throw std::invalid_argument(
            "route_on_partition: layout not injective into partition");
      }
    }
  }

  // Validate terminal measurements and separate them from the gate body.
  std::vector<std::pair<int, int>> measurements;  // (logical qubit, clbit)
  Circuit body(circuit.num_qubits(), circuit.num_clbits());
  {
    std::set<int> measured;
    for (const Gate& g : circuit.ops()) {
      if (g.kind == GateKind::Measure) {
        measurements.emplace_back(g.qubits[0], g.clbit);
        measured.insert(g.qubits[0]);
        continue;
      }
      if (g.kind == GateKind::Barrier) continue;
      for (int q : g.qubits) {
        if (measured.count(q)) {
          throw std::invalid_argument(
              "route_on_partition: non-terminal measurement");
        }
      }
      body.append(g);
    }
  }

  const PartitionDistances dists(topo, partition);
  const std::vector<int> part_edges = topo.induced_edges(partition);

  std::vector<int> layout(initial_layout.begin(), initial_layout.end());
  std::map<int, int> log_of;  // physical -> logical
  for (int l = 0; l < circuit.num_qubits(); ++l) log_of[layout[l]] = l;

  const DagCircuit dag(body);
  FrontLayer front(dag);
  Circuit physical(device.num_qubits(), circuit.num_clbits(), circuit.name());
  std::map<int, double> decay;
  for (int q : partition) decay[q] = 0.0;
  int swaps_added = 0;
  int since_reset = 0;

  auto phys_gate = [&](const Gate& g) {
    Gate out = g;
    for (int& q : out.qubits) q = layout[q];
    return out;
  };

  // Extended (look-ahead) set: the next few 2q gates past the front.
  auto extended_set = [&](const std::vector<std::size_t>& front_nodes) {
    std::vector<std::size_t> ext;
    std::deque<std::size_t> queue(front_nodes.begin(), front_nodes.end());
    std::set<std::size_t> seen(front_nodes.begin(), front_nodes.end());
    while (!queue.empty() &&
           static_cast<int>(ext.size()) < options.lookahead_depth) {
      const std::size_t n = queue.front();
      queue.pop_front();
      for (std::size_t s : dag.successors(n)) {
        if (!seen.insert(s).second) continue;
        if (is_two_qubit_gate(dag.gate(s).kind)) ext.push_back(s);
        queue.push_back(s);
      }
    }
    return ext;
  };

  int guard = 0;
  const int max_iterations =
      10000 + 200 * static_cast<int>(body.size() + 1);
  while (!front.empty()) {
    if (++guard > max_iterations) {
      throw std::runtime_error("route_on_partition: routing did not converge");
    }
    // Apply every currently-executable front gate.
    bool applied = false;
    for (std::size_t node : std::vector<std::size_t>(front.nodes().begin(),
                                                     front.nodes().end())) {
      const Gate& g = dag.gate(node);
      const bool executable =
          !is_two_qubit_gate(g.kind) ||
          topo.adjacent(layout[g.qubits[0]], layout[g.qubits[1]]);
      if (!executable) continue;
      physical.append(phys_gate(g));
      front.complete(node);
      applied = true;
    }
    if (applied) continue;

    // Blocked: every front gate is a non-adjacent 2q gate. Pick a SWAP.
    const std::vector<std::size_t>& front_nodes = front.nodes();
    const auto ext = extended_set(front_nodes);

    // Candidate swaps: partition edges touching a front gate's qubit.
    std::set<int> involved;
    for (std::size_t node : front_nodes) {
      for (int l : dag.gate(node).qubits) involved.insert(layout[l]);
    }
    double best_score = std::numeric_limits<double>::infinity();
    int best_edge = -1;
    for (int e : part_edges) {
      const Edge& edge = topo.edges()[e];
      if (!involved.count(edge.a) && !involved.count(edge.b)) continue;

      // Tentative layout after the swap.
      auto dist_after = [&](int l0, int l1) {
        int p0 = layout[l0];
        int p1 = layout[l1];
        auto swapped = [&](int p) {
          if (p == edge.a) return edge.b;
          if (p == edge.b) return edge.a;
          return p;
        };
        return dists.distance(swapped(p0), swapped(p1));
      };

      double h_front = 0.0;
      for (std::size_t node : front_nodes) {
        const Gate& g = dag.gate(node);
        if (is_two_qubit_gate(g.kind)) {
          h_front += dist_after(g.qubits[0], g.qubits[1]);
        }
      }
      h_front /= static_cast<double>(front_nodes.size());

      double h_look = 0.0;
      if (!ext.empty()) {
        for (std::size_t node : ext) {
          const Gate& g = dag.gate(node);
          h_look += dist_after(g.qubits[0], g.qubits[1]);
        }
        h_look /= static_cast<double>(ext.size());
      }

      double score = (h_front + options.lookahead_weight * h_look) *
                     (1.0 + std::max(decay[edge.a], decay[edge.b]));
      if (options.noise_aware) {
        score += options.error_weight * device.calibration().cx_error[e];
      }
      if (options.crosstalk_aware) {
        for (int f : options.context_edges) {
          const Edge& fe = topo.edges()[f];
          if (edge.shares_qubit(fe)) continue;
          const int d =
              std::min({topo.distance(edge.a, fe.a), topo.distance(edge.a, fe.b),
                        topo.distance(edge.b, fe.a), topo.distance(edge.b, fe.b)});
          if (d != 1) continue;
          const double gamma = options.crosstalk_estimates != nullptr
                                   ? options.crosstalk_estimates->gamma(e, f)
                                   : 2.0;
          score += options.crosstalk_weight *
                   device.calibration().cx_error[e] * (gamma - 1.0);
        }
      }
      if (score < best_score) {
        best_score = score;
        best_edge = e;
      }
    }
    if (best_edge < 0) {
      throw std::runtime_error("route_on_partition: no usable swap");
    }
    const Edge& se = topo.edges()[best_edge];
    physical.swap(se.a, se.b);
    ++swaps_added;
    // Update layout maps.
    const auto la = log_of.find(se.a);
    const auto lb = log_of.find(se.b);
    const int log_a = la == log_of.end() ? -1 : la->second;
    const int log_b = lb == log_of.end() ? -1 : lb->second;
    if (log_a >= 0) layout[log_a] = se.b;
    if (log_b >= 0) layout[log_b] = se.a;
    log_of.erase(se.a);
    log_of.erase(se.b);
    if (log_a >= 0) log_of[se.b] = log_a;
    if (log_b >= 0) log_of[se.a] = log_b;

    decay[se.a] += options.decay;
    decay[se.b] += options.decay;
    if (++since_reset >= options.decay_reset_interval) {
      for (auto& [q, d] : decay) d = 0.0;
      since_reset = 0;
    }
  }

  for (const auto& [logical, clbit] : measurements) {
    physical.measure(layout[logical], clbit);
  }

  RoutingResult result;
  result.physical = std::move(physical);
  result.final_layout = std::move(layout);
  result.swaps_added = swaps_added;
  return result;
}

}  // namespace qucp
