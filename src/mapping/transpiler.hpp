#pragma once
// End-to-end transpilation of a logical program onto a partition.
//
// Pipeline (the library's stand-in for Qiskit's optimization_level=3 +
// layout + routing): peephole optimize -> initial placement -> SABRE-style
// routing -> re-optimize -> terminal measurements on final positions.
// Styles package the mapper configurations the paper compares: the
// QuCP/QuMC hardware-aware mapper [18], and CNA's noise-adaptive,
// gate-level crosstalk-aware mapper [16][20].

#include <span>

#include "mapping/initial.hpp"
#include "mapping/router.hpp"

namespace qucp {

struct TranspileOptions {
  PlacementStyle placement = PlacementStyle::HardwareAware;
  RouterOptions router;
  bool optimize_input = true;
  bool optimize_output = true;
};

/// Preset used by QuCP / QuMC / MultiQC (noise-aware mapping [18]).
[[nodiscard]] TranspileOptions hardware_aware_options();

/// Preset used by the CNA baseline: noise-adaptive placement and a router
/// penalizing edges one-hop from co-runner edges (gate-level crosstalk).
/// `context_edges` are the device edge ids inside co-runners' partitions;
/// `estimates` are SRB-measured crosstalk multipliers (may be null).
[[nodiscard]] TranspileOptions cna_options(std::vector<int> context_edges,
                                           const CrosstalkModel* estimates);

struct TranspiledProgram {
  Circuit physical;               ///< device-wide circuit, partition-local ops
  std::vector<int> initial_layout;  ///< logical -> physical before routing
  std::vector<int> final_layout;    ///< logical -> physical after routing
  int swaps_added = 0;
};

/// Transpile `logical` (k qubits + terminal measurements) onto the given
/// partition of the device.
[[nodiscard]] TranspiledProgram transpile_to_partition(
    const Circuit& logical, const Device& device,
    std::span<const int> partition, const TranspileOptions& options = {});

}  // namespace qucp
