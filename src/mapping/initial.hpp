#pragma once
// Initial qubit placement inside a partition.
//
// Implements the hardware-aware heuristic of Niu et al. [18] (the mapper
// MultiQC/QuMC/QuCP use): logical qubits are placed in descending
// interaction order; each is pinned to the free partition qubit that
// minimizes distance to its placed partners, breaking ties toward
// better-calibrated qubits when noise awareness is on. The CNA baseline
// uses the Murali-style variant that maximizes link reliability instead of
// hop distance.

#include <span>
#include <vector>

#include "circuit/circuit.hpp"
#include "hardware/device.hpp"

namespace qucp {

enum class PlacementStyle {
  HardwareAware,  ///< distance-first, error tie-break (Niu et al.)
  NoiseAdaptive,  ///< reliability-first (Murali et al., used by CNA)
};

/// Logical-interaction weights: weight[i][j] = number of 2q gates between
/// logical i and j.
[[nodiscard]] std::vector<std::vector<int>> interaction_weights(
    const Circuit& circuit);

/// Compute layout[logical] = physical (device index), using only qubits in
/// `partition` (connected, size >= active logical count). Every logical
/// qubit of the circuit gets a distinct physical qubit.
[[nodiscard]] std::vector<int> initial_layout(const Circuit& circuit,
                                              const Device& device,
                                              std::span<const int> partition,
                                              PlacementStyle style);

}  // namespace qucp
