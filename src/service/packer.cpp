#include "service/packer.hpp"

#include "service/fleet.hpp"

namespace qucp {

PackResult pack_batches(const Device& device, std::span<const PackJob> jobs,
                        const Partitioner& partitioner,
                        const PackOptions& options,
                        std::map<std::uint64_t, double>& solo_efs_cache,
                        const CandidateIndex* index) {
  // The single-slot instantiation of the fleet packer (service/fleet.hpp):
  // with one device and no routing policy, pack_fleet makes exactly the
  // decisions this function historically made — same batches, same
  // unplaceable set, same spill-event stream, same solo-EFS cache fills —
  // so single-backend packing stays bit-identical by construction.
  const FleetSlot slot{&device, index, &solo_efs_cache};
  FleetPlan plan = pack_fleet(std::span<const FleetSlot>(&slot, 1), jobs,
                              partitioner, options, nullptr);
  PackResult result;
  result.batches = std::move(plan.batches.front());
  result.unplaceable = std::move(plan.unplaceable);
  result.spill_events = plan.spill_events;
  return result;
}

}  // namespace qucp
