#include "service/packer.hpp"

#include <cmath>
#include <optional>

namespace qucp {

namespace {

/// Best solo-partition EFS for a shape, memoized by circuit fingerprint.
/// nullopt when the program does not fit on the device at all.
std::optional<double> solo_efs(const Device& device,
                               const Partitioner& partitioner,
                               const PackJob& job,
                               std::map<std::uint64_t, double>& cache,
                               const CandidateIndex* index) {
  if (auto it = cache.find(job.fingerprint); it != cache.end()) {
    return it->second;
  }
  const ProgramShape shapes[] = {job.shape};
  const auto alloc = partitioner.allocate(device, shapes, index);
  if (!alloc) return std::nullopt;
  const double score = (*alloc)[0].efs.score;
  cache.emplace(job.fingerprint, score);
  return score;
}

}  // namespace

PackResult pack_batches(const Device& device, std::span<const PackJob> jobs,
                        const Partitioner& partitioner,
                        const PackOptions& options,
                        std::map<std::uint64_t, double>& solo_efs_cache,
                        const CandidateIndex* index) {
  PackResult result;
  if (jobs.empty()) return result;

  if (options.single_batch) {
    PackedBatch batch;
    for (const PackJob& job : jobs) batch.jobs.push_back(job.index);
    result.batches.push_back(std::move(batch));
    return result;
  }

  const std::size_t cap = options.max_batch_size <= 0
                              ? jobs.size()
                              : static_cast<std::size_t>(options.max_batch_size);
  const bool check_threshold = std::isfinite(options.efs_threshold);

  std::vector<const PackJob*> remaining;
  remaining.reserve(jobs.size());
  for (const PackJob& job : jobs) remaining.push_back(&job);

  while (!remaining.empty()) {
    std::vector<const PackJob*> batch;
    std::vector<ProgramShape> batch_shapes;
    std::vector<const PackJob*> spilled;
    bool closed = false;

    for (const PackJob* job : remaining) {
      // Waiting behind a full batch is normal queueing, not a spill:
      // spill_events counts only fidelity/fit rejections below.
      if (closed || batch.size() >= cap) {
        spilled.push_back(job);
        continue;
      }
      if (job->exclusive) {
        if (!batch.empty()) {
          spilled.push_back(job);
          continue;
        }
        if (!solo_efs(device, partitioner, *job, solo_efs_cache, index)) {
          result.unplaceable.push_back(job->index);
          continue;
        }
        batch.push_back(job);
        batch_shapes.push_back(job->shape);
        closed = true;
        continue;
      }

      // Tentatively grow the batch and re-allocate in the same
      // largest-first order the execution pipeline will use, so the EFS
      // we threshold against is the EFS the job will actually get.
      std::vector<const PackJob*> tentative = batch;
      tentative.push_back(job);
      std::vector<ProgramShape> tentative_shapes = batch_shapes;
      tentative_shapes.push_back(job->shape);
      const std::vector<std::size_t> order =
          allocation_order(tentative_shapes);
      std::vector<ProgramShape> ordered_shapes;
      ordered_shapes.reserve(order.size());
      for (std::size_t idx : order) {
        ordered_shapes.push_back(tentative_shapes[idx]);
      }
      const auto alloc = partitioner.allocate(device, ordered_shapes, index);

      if (!alloc) {
        if (batch.empty()) {
          // Alone on an empty device and still unplaceable: terminal.
          result.unplaceable.push_back(job->index);
        } else {
          spilled.push_back(job);
          ++result.spill_events;
        }
        continue;
      }

      bool over_threshold = false;
      if (check_threshold && tentative.size() > 1) {
        for (std::size_t pos = 0; pos < order.size() && !over_threshold;
             ++pos) {
          const PackJob& member = *tentative[order[pos]];
          const auto solo =
              solo_efs(device, partitioner, member, solo_efs_cache, index);
          if (!solo) continue;  // batch-placeable implies solo-placeable
          const double delta = (*alloc)[pos].efs.score - *solo;
          over_threshold = delta > options.efs_threshold;
        }
      }
      if (over_threshold) {
        spilled.push_back(job);
        ++result.spill_events;
        continue;
      }
      batch.push_back(job);
      batch_shapes.push_back(job->shape);
    }

    if (!batch.empty()) {
      PackedBatch packed;
      for (const PackJob* job : batch) packed.jobs.push_back(job->index);
      result.batches.push_back(std::move(packed));
    } else if (!spilled.empty()) {
      // Unreachable by construction (an open empty batch either admits or
      // terminally rejects every job); guard against a non-monotonic
      // partitioner looping forever by failing what is left.
      for (const PackJob* job : spilled) {
        result.unplaceable.push_back(job->index);
      }
      break;
    }
    remaining = std::move(spilled);
  }
  return result;
}

}  // namespace qucp
