#include "service/backend.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace qucp {

CalibrationEpoch::CalibrationEpoch(std::uint64_t id, Device device,
                                   std::size_t transpile_cache_capacity,
                                   bool parametric)
    : id_(id),
      device_(std::move(device)),
      candidate_index_(device_),
      derived_noise_(DerivedNoise::from(device_.calibration())),
      capacity_(transpile_cache_capacity),
      parametric_(parametric),
      program_cache_(parametric) {}

TranspiledProgram CalibrationEpoch::transpile(const Circuit& logical,
                                              std::span<const int> partition,
                                              const TranspileOptions& options,
                                              std::uint64_t options_fp) const {
  if (capacity_ == 0) {
    return transpile_to_partition(logical, device_, partition, options);
  }
  const ParamBinding binding =
      parametric_ ? ParamBinding(logical) : ParamBinding{};
  // Parameterless circuits gain nothing from a template (there is nothing
  // to rebind), so they take the exact-key path even in parametric mode —
  // the structural key still folds, e.g., renamed copies together.
  const bool use_template = parametric_ && !binding.values.empty();
  CacheKey key{parametric_ ? structural_fingerprint(logical)
                           : circuit_fingerprint(logical),
               options_fp, std::vector<int>(partition.begin(), partition.end())};
  std::shared_ptr<const TranspileTemplate> tmpl;
  bool fallback = false;  // structure matched, but the entry can't serve it
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      if (it->second.binding0 == binding.values) {
        ++stats_.hits;
        return it->second.result;
      }
      // Same structure, different angles. Bind outside the lock; if the
      // entry has no template (an earlier build failed), rebuild below.
      tmpl = it->second.tmpl;
      fallback = tmpl == nullptr;
    } else {
      ++stats_.misses;
    }
  }

  if (tmpl != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    if (std::optional<TranspiledProgram> bound = tmpl->bind(binding.values)) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.structural_hits;
      stats_.bind_ns += static_cast<std::uint64_t>(ns);
      return *std::move(bound);
    }
    fallback = true;  // binding flipped a recorded optimizer decision
  }

  // From-scratch path (first sighting of this key, or a binding the
  // template rejected), outside the lock: routing is the expensive part
  // and two threads racing on the same key produce identical results.
  CacheEntry entry;
  if (use_template) {
    if (std::optional<TranspileTemplate> built =
            TranspileTemplate::build(logical, device_, partition, options)) {
      entry.result = built->result;
      entry.tmpl = std::make_shared<const TranspileTemplate>(std::move(*built));
    } else {
      entry.result = transpile_to_partition(logical, device_, partition,
                                            options);
    }
    entry.binding0 = binding.values;
  } else {
    entry.result = transpile_to_partition(logical, device_, partition, options);
  }
  TranspiledProgram result = entry.result;
  std::lock_guard<std::mutex> lock(mutex_);
  if (fallback) ++stats_.bind_fallbacks;
  // insert_or_assign so a fallback *replaces* the entry: the cache adapts
  // to the binding actually in flight instead of pinning a template whose
  // representative binding was degenerate.
  auto [it, inserted] = cache_.insert_or_assign(key, std::move(entry));
  if (inserted) {
    insertion_order_.push_back(std::move(key));
    if (cache_.size() > capacity_) {
      cache_.erase(insertion_order_.front());
      insertion_order_.pop_front();
      ++stats_.evictions;
    }
  }
  stats_.entries = cache_.size();
  return result;
}

void CalibrationEpoch::transpile_sweep(std::span<const Circuit* const> circuits,
                                       std::span<const int> partition,
                                       const TranspileOptions& options,
                                       std::uint64_t options_fp,
                                       std::vector<TranspiledProgram>& out) const {
  out.clear();
  out.resize(circuits.size());
  if (circuits.empty()) return;
  if (capacity_ == 0 || !parametric_) {
    // No template machinery to amortize; the per-call path is already the
    // whole story.
    for (std::size_t i = 0; i < circuits.size(); ++i) {
      out[i] = transpile(*circuits[i], partition, options, options_fp);
    }
    return;
  }
  const std::size_t n = circuits.size();
  // The binding every per-call transpile() would recompute, computed once
  // per circuit up front.
  std::vector<ParamBinding> bindings;
  bindings.reserve(n);
  for (const Circuit* c : circuits) bindings.emplace_back(*c);
  const CacheKey key{structural_fingerprint(*circuits[0]), options_fp,
                     std::vector<int>(partition.begin(), partition.end())};

  std::vector<const ParamBinding*> to_bind;
  std::vector<std::optional<TranspiledProgram>> bound;
  std::size_t i = 0;
  while (i < n) {
    // One lock acquisition probes the cache for the whole segment that
    // follows; the segment runs until a binding the snapshot cannot serve
    // replaces the entry (rare), at which point the loop re-probes.
    std::vector<double> binding0;
    std::shared_ptr<const TranspileTemplate> tmpl;
    bool have_entry = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (auto it = cache_.find(key); it != cache_.end()) {
        have_entry = true;
        binding0 = it->second.binding0;
        tmpl = it->second.tmpl;
      }
    }
    if (!have_entry) {
      // First sighting of the structure: transpile() counts the miss,
      // builds the template and inserts the entry the rest of the sweep
      // binds against.
      out[i] = transpile(*circuits[i], partition, options, options_fp);
      ++i;
      continue;
    }
    // Batch-bind every non-exact binding in [i, n) against the snapshot,
    // then commit the results in order. The first rejected binding falls
    // back through transpile() — which rebuilds and *replaces* the entry —
    // so everything after it must re-probe; later binds already computed
    // against the old template are discarded to keep the decision chain
    // (and every counter) exactly what sequential calls produce.
    to_bind.clear();
    if (tmpl != nullptr) {
      for (std::size_t k = i; k < n; ++k) {
        if (bindings[k].values != binding0) to_bind.push_back(&bindings[k]);
      }
    }
    std::uint64_t bind_ns = 0;
    bound.clear();
    if (!to_bind.empty()) {
      const auto t0 = std::chrono::steady_clock::now();
      tmpl->bind_many(to_bind, bound);
      bind_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
    std::size_t bi = 0;
    std::uint64_t committed = 0;
    while (i < n) {
      if (bindings[i].values == binding0) {
        // Exact-binding repeat: the entry is unchanged (a rejection would
        // have ended the segment before this point), so transpile()
        // re-finds it and counts the hit exactly as a sequential call.
        out[i] = transpile(*circuits[i], partition, options, options_fp);
        ++i;
        continue;
      }
      if (tmpl == nullptr || !bound[bi].has_value()) {
        // Rejected binding (or a template-less entry): the one-at-a-time
        // fallback rebuilds from scratch, counts the bind_fallback and
        // replaces the entry; break to re-probe the replacement.
        out[i] = transpile(*circuits[i], partition, options, options_fp);
        ++i;
        break;
      }
      out[i] = *std::move(bound[bi]);
      ++bi;
      ++committed;
      ++i;
    }
    if (committed != 0) {
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.structural_hits += committed;
      stats_.bind_ns += bind_ns;
    }
  }
}

ParallelRunReport CalibrationEpoch::execute(
    std::vector<PhysicalProgram> programs, const ExecOptions& options) const {
  return execute_parallel(device_, std::move(programs), options, &gate_cache_,
                          &program_cache_, &derived_noise_);
}

TranspileCacheStats CalibrationEpoch::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TranspileCacheStats stats = stats_;
  stats.entries = cache_.size();
  return stats;
}

void CalibrationEpoch::clear_cache() const {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  insertion_order_.clear();
  stats_.entries = 0;
}

void CalibrationEpoch::warm(std::span<const int> partition_sizes) const {
  for (int k : partition_sizes) {
    if (k <= 0 || k > device_.num_qubits()) continue;
    (void)candidate_index_.per_k(k);
  }
}

Backend::Backend(Device device, std::size_t transpile_cache_capacity,
                 bool parametric)
    : capacity_(transpile_cache_capacity),
      parametric_(parametric),
      epoch_(std::make_shared<CalibrationEpoch>(
          0, std::move(device), transpile_cache_capacity, parametric)) {}

std::shared_ptr<const CalibrationEpoch> Backend::epoch() const {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  return epoch_;
}

std::uint64_t Backend::epoch_id() const { return epoch()->id(); }

double Backend::recalibrate(Calibration cal) {
  // One recalibration at a time: epoch ids stay monotonic and two
  // concurrent swaps cannot interleave their build/publish steps.
  std::lock_guard<std::mutex> recal_lock(recal_mutex_);
  const std::shared_ptr<const CalibrationEpoch> old = epoch();

  const auto t0 = std::chrono::steady_clock::now();
  // The Device constructor validates `cal` against the topology and
  // throws std::invalid_argument before any state changes.
  Device next(old->device().name(), old->device().topology(), std::move(cal),
              old->device().crosstalk_ground_truth());
  auto fresh = std::make_shared<const CalibrationEpoch>(
      old->id() + 1, std::move(next), capacity_, parametric_);
  // Off-lane warm build: reproduce the candidate working set the retiring
  // epoch accumulated, so the first pack cycle on the new epoch routes at
  // full speed. Runs entirely on this thread — no lane or worker waits.
  fresh->warm(old->candidate_index().cached_sizes());
  const double build_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  {
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    epoch_ = std::move(fresh);
  }
  recalibrations_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add(double) needs C++20 library support that not every
  // toolchain ships; a CAS loop is equivalent and portable.
  double expected = recalibration_build_s_.load(std::memory_order_relaxed);
  while (!recalibration_build_s_.compare_exchange_weak(
      expected, expected + build_s, std::memory_order_relaxed)) {
  }
  return build_s;
}

}  // namespace qucp
