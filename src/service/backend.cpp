#include "service/backend.hpp"

#include <algorithm>
#include <utility>

namespace qucp {

Backend::Backend(Device device, std::size_t transpile_cache_capacity)
    : device_(std::move(device)),
      candidate_index_(device_),
      capacity_(transpile_cache_capacity) {}

TranspiledProgram Backend::transpile(const Circuit& logical,
                                     std::span<const int> partition,
                                     const TranspileOptions& options,
                                     std::uint64_t options_fp) {
  if (capacity_ == 0) {
    return transpile_to_partition(logical, device_, partition, options);
  }
  CacheKey key{circuit_fingerprint(logical), options_fp,
               std::vector<int>(partition.begin(), partition.end())};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = cache_.find(key); it != cache_.end()) {
      ++stats_.hits;
      return it->second;
    }
    ++stats_.misses;
  }
  // Transpile outside the lock: routing is the expensive part and two
  // threads racing on the same key both produce the identical result.
  TranspiledProgram result =
      transpile_to_partition(logical, device_, partition, options);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = cache_.emplace(key, result);
  if (inserted) {
    insertion_order_.push_back(std::move(key));
    if (cache_.size() > capacity_) {
      cache_.erase(insertion_order_.front());
      insertion_order_.erase(insertion_order_.begin());
      ++stats_.evictions;
    }
  }
  stats_.entries = cache_.size();
  return result;
}

ParallelRunReport Backend::execute(std::vector<PhysicalProgram> programs,
                                   const ExecOptions& options) const {
  return execute_parallel(device_, std::move(programs), options, &gate_cache_,
                          &program_cache_);
}

TranspileCacheStats Backend::cache_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TranspileCacheStats stats = stats_;
  stats.entries = cache_.size();
  return stats;
}

void Backend::clear_cache() {
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.clear();
  insertion_order_.clear();
  stats_.entries = 0;
}

}  // namespace qucp
