#include "service/registry.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace qucp {

BackendRegistry::BackendRegistry(std::vector<Device> devices,
                                 std::size_t transpile_cache_capacity) {
  backends_.reserve(devices.size());
  for (Device& device : devices) {
    backends_.push_back(
        std::make_shared<Backend>(std::move(device), transpile_cache_capacity));
  }
}

BackendRegistry::BackendRegistry(
    std::vector<std::shared_ptr<Backend>> backends) {
  backends_.reserve(backends.size());
  for (auto& backend : backends) add(std::move(backend));
}

std::size_t BackendRegistry::add(std::shared_ptr<Backend> backend) {
  if (!backend) {
    throw std::invalid_argument("BackendRegistry::add: null backend");
  }
  // One Backend = one device endpoint: registering the same object twice
  // would give a fleet two lanes racing over a single chip's queue and
  // double-count its caches in every per-backend stats breakdown.
  for (const auto& existing : backends_) {
    if (existing == backend) {
      throw std::invalid_argument(
          "BackendRegistry::add: backend already registered");
    }
  }
  backends_.push_back(std::move(backend));
  return backends_.size() - 1;
}

std::size_t BackendRegistry::add(Device device,
                                 std::size_t transpile_cache_capacity) {
  return add(
      std::make_shared<Backend>(std::move(device), transpile_cache_capacity));
}

Backend& BackendRegistry::at(std::size_t id) {
  if (id >= backends_.size()) {
    throw std::out_of_range("BackendRegistry: no backend " +
                            std::to_string(id));
  }
  return *backends_[id];
}

const Backend& BackendRegistry::at(std::size_t id) const {
  if (id >= backends_.size()) {
    throw std::out_of_range("BackendRegistry: no backend " +
                            std::to_string(id));
  }
  return *backends_[id];
}

std::shared_ptr<Backend> BackendRegistry::share(std::size_t id) const {
  if (id >= backends_.size()) {
    throw std::out_of_range("BackendRegistry: no backend " +
                            std::to_string(id));
  }
  return backends_[id];
}

std::optional<std::size_t> BackendRegistry::find(
    std::string_view device_name) const noexcept {
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    if (backends_[i]->device().name() == device_name) return i;
  }
  return std::nullopt;
}

}  // namespace qucp
