#pragma once
// Jobs: the unit of work the ExecutionService queues, packs and runs.
//
// submit() returns a JobHandle — a cheap, copyable reference to shared job
// state. Handles expose non-blocking status() plus blocking wait()/result()
// in the style of std::future, except that result() can be read any number
// of times and status() can be polled while the job is still queued or
// running.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "core/parallel.hpp"

namespace qucp {

enum class JobStatus {
  Queued,   ///< submitted, waiting to be packed into a batch
  Running,  ///< its batch is on a worker thread
  Done,     ///< result available
  Failed,   ///< terminal error; JobHandle::error() has the message
};

[[nodiscard]] std::string_view job_status_name(JobStatus status) noexcept;

/// Batch-level context attached to every job result, so callers can
/// reconstruct per-batch figures (speedup, throughput) from job handles.
struct BatchStats {
  /// Service-wide batch sequence number; unique across the whole fleet
  /// (interleaved per-backend ordinals), and for a single-backend service
  /// the plain dispatch order it always was.
  std::uint64_t batch_index = 0;
  /// Registry id of the backend this batch executed on (0 on a
  /// single-backend service) and its device name.
  int backend_id = 0;
  std::string backend_device;
  std::size_t batch_size = 0;     ///< co-scheduled jobs, this one included
  double makespan_ns = 0.0;
  double throughput = 0.0;        ///< device-qubit utilization of the batch
  int crosstalk_events = 0;
  /// Modeled speedup of the batch vs one serial job per program
  /// (core/runtime.hpp).
  double runtime_reduction = 1.0;
};

struct JobResult {
  ProgramReport report;  ///< per-program outcome, as run_parallel() reports
  BatchStats batch;      ///< the batch this job was co-scheduled into
};

struct JobOptions {
  /// Overrides the circuit's name in reports (handy when submitting many
  /// copies of one circuit). Also a determinism key: the service orders
  /// canonically by (circuit fingerprint, name), so give concurrent
  /// submissions of identical circuits distinct names to make each
  /// handle's result reproducible run to run.
  std::string name;
  /// Run this job alone in its own batch (no co-runners, no crosstalk).
  bool exclusive = false;
};

namespace detail {

/// Shared state between the service and handles. Internal to the service
/// subsystem; user code never touches it directly.
struct JobState {
  // Immutable after submit().
  std::uint64_t id = 0;  ///< submission sequence number (tie-break only)
  Circuit circuit;
  std::uint64_t fingerprint = 0;
  std::uint64_t structural_fp = 0;  ///< parameter-blind fingerprint
  std::string name;
  bool exclusive = false;
  /// Marked by submit_all() when this job arrived as part of a parameter
  /// sweep (>= 2 jobs of one structural fingerprint, with parameters, in
  /// one submitted vector). Dispatch groups marked jobs per planned batch
  /// and binds their transpile templates batch-at-a-time; single-shot
  /// submit() never sets it, so that traffic is byte-for-byte untouched.
  bool sweep = false;

  // Guarded by mutex.
  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::Queued;
  std::optional<JobResult> result;
  std::string error;

  void finish(JobResult r);
  void fail(std::string message);
  void set_running();
};

}  // namespace detail

class JobHandle {
 public:
  JobHandle() = default;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }
  [[nodiscard]] std::uint64_t id() const { return state().id; }
  [[nodiscard]] const std::string& name() const { return state().name; }

  /// Current status; non-blocking.
  [[nodiscard]] JobStatus status() const;
  /// True once the job reached Done or Failed.
  [[nodiscard]] bool finished() const;

  /// Block until the job finishes.
  void wait() const;
  /// Block up to `timeout`; true when the job finished in time.
  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) const;

  /// Block until finished, then return the result. Throws
  /// std::runtime_error with the failure message when the job Failed.
  [[nodiscard]] const JobResult& result() const;

  /// Failure message; empty unless status() == Failed.
  [[nodiscard]] std::string error() const;

 private:
  [[nodiscard]] const detail::JobState& state() const;

  std::shared_ptr<detail::JobState> state_;

  friend class ExecutionService;
};

}  // namespace qucp
