#pragma once
// ExecutionService: the asynchronous job-queue front door of the library.
//
// The paper motivates multi-programming with cloud-queue pressure (overall
// runtime = waiting time + execution time, §II-A): batching N user jobs
// into one device job cuts total runtime by up to N. The service owns the
// logic every caller used to hand-roll around run_parallel(): a job queue,
// an online batch packer (EFS partitioning + the §IV-B fidelity-threshold
// spill), worker lanes that execute independent batches concurrently, and
// per-backend transpilation caches.
//
//   ExecutionService service(make_toronto27());
//   JobHandle job = service.submit(circuit);
//   service.flush();                       // pack + run everything queued
//   const JobResult& r = job.result();     // or poll job.status()
//
// The service also scales past one chip: construct it from a
// BackendRegistry and it becomes a fleet — a FleetScheduler
// (service/fleet.hpp) routes each pending job to a (backend, batch) slot
// via a pluggable policy (RoundRobin / LeastLoaded / BestEfs), and every
// backend gets its own packer/worker lane, so batches on different devices
// execute concurrently without sharing locks:
//
//   BackendRegistry fleet({make_toronto27(), make_manhattan65()});
//   ExecutionService service(std::move(fleet), options);  // BestEfs default
//
// Determinism: with JobOrder::Canonical (default) queued jobs are packed
// in (circuit fingerprint, name, submission id) order, so for a fixed seed
// the results — including routing decisions and per-backend batch
// assignments — are reproducible regardless of submission interleaving;
// jobs that share both circuit and name are mutually interchangeable, and
// every other handle is exactly reproducible. A batch with per-backend
// ordinal k on backend b (of B) executes with seed
// `exec.seed + (k * B + b) * golden_ratio`; for B = 1 that is the
// historical `seed + batch_index * golden_ratio`, which keeps the
// run_parallel() shim and the single-backend constructor bit-identical to
// their historical output.
//
// run_parallel() in core/parallel.hpp is a compatibility shim over this
// service (single backend, single batch, FIFO order, synchronous).

#include <atomic>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "core/runtime.hpp"
#include "service/backend.hpp"
#include "service/fleet.hpp"
#include "service/intake.hpp"
#include "service/job.hpp"
#include "service/packer.hpp"
#include "service/registry.hpp"

namespace qucp {

/// Order in which queued jobs are considered for packing.
enum class JobOrder {
  /// Submission order. Deterministic only for single-threaded submitters.
  Fifo,
  /// (circuit fingerprint, name, submission id): deterministic under
  /// concurrent submission up to jobs that are exact duplicates.
  Canonical,
};

struct ServiceOptions {
  Method method = Method::QuCP;
  double sigma = 4.0;  ///< QuCP crosstalk parameter (paper: sigma = 4)
  ExecOptions exec;    ///< shots, noise toggles, base seed
  /// SRB crosstalk estimates; required by QuMC, used by CNA when present.
  std::optional<CrosstalkModel> srb_estimates;
  bool optimize_circuits = true;

  int num_workers = 4;     ///< batch-executing threads per backend lane
  int max_batch_size = 4;  ///< jobs per batch; <= 0 means unbounded
  /// §IV-B fidelity threshold: max EFS degradation vs running solo before
  /// a co-placement is rejected and the job spills — on a fleet, first to
  /// another device's open batch, then to the next batch.
  /// 0 forces independent execution; infinity admits anything that fits.
  double efs_threshold = std::numeric_limits<double>::infinity();
  JobOrder order = JobOrder::Canonical;
  /// Fleet routing policy (see service/fleet.hpp). Ignored on a
  /// single-backend service, where routing is trivial.
  RoutePolicy route_policy = RoutePolicy::BestEfs;
  /// Pack all queued jobs into exactly one batch and let the pipeline
  /// fail the whole batch when it does not fit (run_parallel semantics).
  bool single_batch = false;
  /// When > 0, submit() packs and dispatches as soon as this many jobs
  /// are pending, without waiting for flush(). Note: with concurrent
  /// submitters the batch boundaries then depend on arrival interleaving.
  std::size_t auto_flush_batch_size = 0;
  std::size_t transpile_cache_capacity = 1024;
  /// Parametric compilation: key the transpile cache structurally and
  /// serve parameter-sweep traffic by template binding
  /// (service/backend.hpp). Off reverts to exact-fingerprint caching —
  /// identical results either way (binds are bit-identical), so this is a
  /// performance A/B knob, not a semantics switch. Excluded from the
  /// transpile-options fingerprint for the same reason.
  bool parametric_transpile = true;
  /// Sharded MPSC intake (service/intake.hpp): number of submission
  /// shards. Each submitter thread homes on shard (thread ordinal mod
  /// shards), so up to this many producers publish without touching the
  /// same ring. 0 (the default) sizes the shard count from the machine:
  /// hardware_concurrency rounded up to a power of two, clamped to
  /// [8, 64] — at least 8 so an 8-producer burst never shares a ring even
  /// on small boxes, capped so shard memory stays bounded. An explicit
  /// value overrides. Shard count no longer affects plans: Canonical
  /// packing totally orders the drained set, so batch boundaries are
  /// drain-layout independent (see dispatch_pending); under Fifo order
  /// the global ticket sort restores submission order regardless of
  /// layout.
  std::size_t submit_shards = 0;
  /// Fixed capacity per submission shard, rounded up to a power of two.
  /// A full shard backpressures submit() into draining the rings itself
  /// (a pack/dispatch cycle) and retrying — nothing blocks indefinitely
  /// and nothing is dropped, but under overload batch boundaries follow
  /// drain timing rather than auto_flush_batch_size.
  std::size_t submit_shard_capacity = 4096;
  /// Use the incremental grow-one-job admission probe in the packer
  /// (PackOptions::incremental_admission). Decision- and bit-identical to
  /// the from-scratch re-allocation path; off = reference path, kept for
  /// golden A/B tests.
  bool incremental_admission = true;
  /// Feed *realized* batch durations back into the per-lane backlog the
  /// next dispatch cycle routes on: each lane keeps an EWMA of
  /// (measured wall-clock batch duration) / (modeled batch runtime), and
  /// the backlog snapshot handed to ExpectedLatency routing is scaled by
  /// it — a lane whose batches consistently run longer than the model
  /// says attracts less traffic. Off (default) the service never reads a
  /// clock and stays bit-identical to the modeled-only behavior. Note the
  /// ratio calibrates modeled device-time against observed host-time
  /// behavior; only its trend matters, not its absolute scale.
  bool feed_realized_durations = false;
};

/// Per-backend slice of the service counters, keyed by registry id.
struct BackendStats {
  int backend_id = 0;
  std::string device;  ///< device name of the backend
  std::uint64_t jobs_routed = 0;  ///< jobs packed into this backend's lane
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t batches_executed = 0;
  /// §II-A modeled queue-wait accounting, captured at admission: for every
  /// job routed to this backend, the modeled drain (dispatched backlog +
  /// batches planned ahead of it in the same cycle) it was admitted
  /// behind. The sum and max are auditable against the FleetPlan that
  /// produced them — tests recompute the same numbers from batch order.
  double modeled_wait_sum_s = 0.0;
  double modeled_wait_max_s = 0.0;
  /// Modeled execution seconds dispatched to the lane and not yet
  /// finished — the backlog snapshot the next dispatch cycle's
  /// ExpectedLatency routing and wait accounting start from.
  double modeled_backlog_s = 0.0;
  /// Calibration epoch accounting (service/backend.hpp): the epoch the
  /// backend currently serves, how many live recalibrations published new
  /// epochs, and the total off-lane epoch build seconds those
  /// recalibrations spent — the stall a drain-the-world design would have
  /// charged to the lane, paid on the recalibrating thread instead.
  std::uint64_t calibration_epoch = 0;
  std::uint64_t recalibrations = 0;
  double recalibration_build_s = 0.0;
  /// Batches that completed against a pack-time epoch older than the
  /// backend's current one — in-flight work that rode out a live
  /// recalibration on its pinned snapshot.
  std::uint64_t stale_epoch_batches = 0;
  /// Realized-duration feedback (ServiceOptions::feed_realized_durations):
  /// measured wall seconds summed over executed batches, the number of
  /// batches measured, and the lane's current EWMA of realized/modeled
  /// duration. All zero (ratio 1) when the knob is off.
  double realized_exec_sum_s = 0.0;
  std::uint64_t realized_batches = 0;
  double realized_ratio = 1.0;
  /// Sweep fast path (see ExecutionService::submit_all): groups of
  /// same-structure jobs in this lane's planned batches whose templates
  /// were probed once and bound batch-at-a-time at dispatch, and the
  /// number of jobs that received a prebound transpile that way.
  std::uint64_t sweep_groups = 0;
  std::uint64_t batched_binds = 0;
  TranspileCacheStats transpile_cache;
};

struct ServiceStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  /// Jobs failed by cancel_pending() before ever being dispatched
  /// (also counted in jobs_failed).
  std::uint64_t jobs_cancelled = 0;
  std::uint64_t batches_executed = 0;
  std::uint64_t spill_events = 0;  ///< EFS-threshold / fit rejections
  /// Jobs placed on a backend after a fit/threshold rejection on an
  /// earlier-preferred one (always 0 on a single-backend service).
  std::uint64_t cross_device_spills = 0;
  /// Reservation lane: exclusive jobs routed by the modeled-backlog
  /// reservation order (lowest drain first) instead of the policy's
  /// preference, and the modeled §II-A wait each one was admitted behind.
  std::uint64_t reservation_jobs = 0;
  double reservation_wait_sum_s = 0.0;
  double reservation_wait_max_s = 0.0;
  /// Fleet-wide calibration-epoch accounting: recalibrations published
  /// across every backend, their total off-lane build seconds, and the
  /// batches that completed against a superseded epoch (see the
  /// per-backend fields for the breakdown).
  std::uint64_t recalibrations = 0;
  double recalibration_build_s = 0.0;
  std::uint64_t stale_epoch_batches = 0;
  /// Fleet-wide sweep fast-path totals (see the BackendStats fields).
  std::uint64_t sweep_groups = 0;
  std::uint64_t batched_binds = 0;
  /// Aggregate over every backend's transpile cache (current epochs).
  TranspileCacheStats transpile_cache;
  /// Per-backend breakdown, indexed by registry id.
  std::vector<BackendStats> backends;
};

/// Sweep fast-path payload for run_batch_pipeline: transpiles prebound at
/// dispatch (ExecutionService::dispatch_pending groups same-structure
/// sweep jobs per planned batch and binds their templates
/// batch-at-a-time). Entries are parallel to the pipeline's programs;
/// a disengaged program means "transpile normally". `partitions[i]` is
/// the partition prebind i was computed against — the pipeline uses a
/// prebound program only after verifying its own allocation reproduced
/// that exact partition, so the fast path can never change results.
/// `plans[i]` (when set) is the group's shared fusion plan, fetched once
/// per sweep group from the epoch's program cache; the scoring pass
/// materializes the ideal-reference program straight from it instead of
/// paying a per-job fingerprint + cache round-trip. materialize() is
/// bit-identical to the cached fused() compile, so results don't change.
struct PreboundTranspiles {
  std::vector<std::optional<TranspiledProgram>> programs;
  std::vector<std::vector<int>> partitions;
  std::vector<std::shared_ptr<const FusionPlan>> plans;
  [[nodiscard]] bool empty() const noexcept { return programs.empty(); }
};

class ExecutionService {
 public:
  /// Validates the configuration eagerly: QuMC without SRB estimates
  /// throws std::invalid_argument here, not at execution time.
  explicit ExecutionService(Device device, ServiceOptions options = {});
  ExecutionService(std::shared_ptr<Backend> backend, ServiceOptions options);
  /// Multi-backend fleet: one packer/worker lane per registered backend,
  /// jobs routed by `options.route_policy`. Throws std::invalid_argument
  /// on an empty registry.
  explicit ExecutionService(BackendRegistry fleet, ServiceOptions options = {});
  ~ExecutionService();

  ExecutionService(const ExecutionService&) = delete;
  ExecutionService& operator=(const ExecutionService&) = delete;

  /// Enqueue a circuit. Cheap, thread-safe and lock-free on the hot path
  /// (sharded MPSC intake, see service/intake.hpp); nothing executes
  /// until a batch is dispatched (flush(), shutdown() or auto-flush).
  /// Throws std::runtime_error after shutdown().
  JobHandle submit(Circuit circuit, JobOptions options = {});

  /// Batch submission: one handle per circuit. The whole vector is
  /// published to the caller's home shard as a single contiguous ticket
  /// block (one reservation, not one per job), so a drain sees it in
  /// order with no interleaved jobs from same-shard producers — including
  /// vectors larger than the shard capacity, which reserve a multi-lap
  /// ticket span up front and publish through it, backpressure-draining
  /// as the consumer frees cells (no chunk seam another producer could
  /// land inside).
  std::vector<JobHandle> submit_all(std::vector<Circuit> circuits);

  /// Fail every not-yet-dispatched job ("cancelled before dispatch") and
  /// return how many were cancelled. Dispatched/running jobs are
  /// untouched. Used by intake benchmarks to exercise the submission path
  /// at full rate without simulating millions of circuits.
  std::size_t cancel_pending();

  /// Pack every pending job into batches, dispatch them to the backend
  /// lanes, and block until all dispatched work has drained.
  void flush();

  /// flush() then stop and join the workers. Idempotent. Further
  /// submit() calls throw.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const BackendRegistry& registry() const noexcept {
    return fleet_;
  }
  [[nodiscard]] std::size_t num_backends() const noexcept {
    return fleet_.size();
  }
  /// Backend by registry id; throws std::out_of_range.
  [[nodiscard]] Backend& backend(std::size_t id = 0) { return fleet_.at(id); }
  [[nodiscard]] const Backend& backend(std::size_t id = 0) const {
    return fleet_.at(id);
  }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }
  /// Jobs submitted but not yet dispatched into a batch.
  [[nodiscard]] std::size_t pending_jobs() const;

 private:
  using JobPtr = std::shared_ptr<detail::JobState>;
  struct Batch {
    std::uint64_t index = 0;  ///< fleet-unique: per-lane ordinal * B + lane
    /// Modeled runtime from the plan that created the batch; added to the
    /// lane backlog at dispatch, removed at completion.
    double modeled_exec_s = 0.0;
    /// The calibration epoch this batch was planned under. Execution goes
    /// through it — not through the backend's current epoch — so a
    /// recalibration between dispatch and execution cannot change the
    /// batch's results or invalidate its partition/EFS decisions.
    std::shared_ptr<const CalibrationEpoch> epoch;
    std::vector<JobPtr> jobs;
    /// Sweep fast path: transpiles already bound at dispatch, parallel to
    /// `jobs` (empty when the batch has none).
    PreboundTranspiles prebound;
  };
  /// Per-backend execution lane: its own batch queue, condition variable
  /// and worker threads, so devices drain concurrently without sharing
  /// locks on the hot path.
  struct Lane {
    Lane(std::shared_ptr<Backend> b, int lane_id)
        : backend(std::move(b)), id(lane_id) {}
    std::shared_ptr<Backend> backend;
    int id = 0;
    std::mutex mutex;  ///< guards queue / stop / execution-side counters
    std::condition_variable cv;
    std::deque<Batch> queue;
    bool stop = false;
    std::uint64_t next_ordinal = 0;  ///< batches dispatched (pack mutex)
    std::uint64_t jobs_routed = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t jobs_failed = 0;
    std::uint64_t batches_executed = 0;
    /// Modeled dispatched-but-unfinished seconds (guarded by mutex):
    /// += Batch::modeled_exec_s at dispatch, -= at completion. Snapshotted
    /// per dispatch cycle as pack_fleet's initial_backlog_s.
    double backlog_s = 0.0;
    double wait_sum_s = 0.0;  ///< modeled wait at admission, summed
    double wait_max_s = 0.0;  ///< worst modeled wait at admission
    /// Batches that finished against an epoch the backend had already
    /// superseded (guarded by mutex) — the live-recalibration overlap.
    std::uint64_t stale_epoch_batches = 0;
    /// Realized-duration feedback (only touched when
    /// ServiceOptions::feed_realized_durations is on; guarded by mutex).
    /// realized_ratio is an EWMA of measured-wall / modeled-runtime per
    /// executed batch; the dispatch cycle multiplies its backlog snapshot
    /// by it so routing sees a lane's *observed* drain speed.
    double realized_ratio = 1.0;
    double realized_exec_sum_s = 0.0;
    std::uint64_t realized_batches = 0;
    /// Sweep fast-path counters (written under pack_mutex_ at dispatch,
    /// read under mutex at stats()-time via the same lane lock the
    /// dispatch enqueue takes).
    std::uint64_t sweep_groups = 0;
    std::uint64_t batched_binds = 0;
    std::vector<std::thread> workers;
  };

  void start_workers();
  /// Assign an id and publish `state` to `shard`, backpressure-dispatching
  /// while the ring is full; throws std::runtime_error once shut down.
  void enqueue_job(const JobPtr& state, std::size_t shard);
  void maybe_auto_flush(std::size_t pending_now);
  void worker_loop(Lane& lane);
  /// Pack current pending jobs through the fleet scheduler and enqueue
  /// the planned batches onto their lanes. Serialized by pack_mutex_.
  void dispatch_pending();
  /// `concurrency` is the fleet-wide batch parallelism observed at
  /// dequeue time (in-flight + queued, capped at the total pool size); it
  /// sizes the kernel-thread budget so a lone batch keeps the whole
  /// machine while N concurrent batches cannot oversubscribe it N-fold.
  void execute_batch(Lane& lane, Batch batch, int concurrency);
  void wait_for_drain();

  BackendRegistry fleet_;
  ServiceOptions options_;
  std::unique_ptr<Partitioner> partitioner_;    ///< drives the packer
  std::unique_ptr<FleetScheduler> scheduler_;  ///< guarded by pack_mutex_

  /// Sharded MPSC submission queues; drained only under pack_mutex_.
  std::unique_ptr<detail::ShardedIntake> intake_;
  /// Submission-side state, all atomic — submit() takes no lock.
  std::atomic<std::uint64_t> next_job_id_{0};
  std::atomic<std::size_t> pending_count_{0};  ///< published, not drained
  std::atomic<bool> accepting_{true};  ///< false in shutdown(); submit throws
  std::atomic<std::size_t> active_submits_{0};  ///< submits past the gate

  mutable std::mutex mutex_;            ///< fleet counters + drain state
  std::condition_variable drained_cv_;  ///< outstanding == 0 -> flush()
  std::size_t outstanding_jobs_ = 0;  ///< dispatched, not yet finished
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t jobs_cancelled_ = 0;
  std::uint64_t batches_executed_ = 0;
  std::uint64_t spill_events_ = 0;
  std::uint64_t cross_device_spills_ = 0;
  std::uint64_t reservation_jobs_ = 0;
  double reservation_wait_sum_s_ = 0.0;
  double reservation_wait_max_s_ = 0.0;

  /// Batches dispatched and not yet finished, fleet-wide (queued +
  /// executing); sizes the kernel-thread budget without taking any lock.
  std::atomic<std::size_t> inflight_batches_{0};

  std::mutex pack_mutex_;  ///< serializes pack/dispatch cycles

  std::vector<std::unique_ptr<Lane>> lanes_;  ///< one per registry backend
};

/// The one true batch pipeline (partition -> transpile-with-cache ->
/// simultaneous execution -> fidelity metrics -> runtime model), shared by
/// the service workers and the run_parallel() compatibility shim. `names`
/// overrides per-program report names; empty entries (or an empty vector)
/// fall back to the circuit name / "program<i>". Throws
/// std::invalid_argument for config errors and std::runtime_error when the
/// batch cannot be placed.
[[nodiscard]] BatchReport run_batch_pipeline(
    Backend& backend, const std::vector<Circuit>& programs,
    const std::vector<std::string>& names, const ParallelOptions& options);

/// Epoch-pinned form: runs the pipeline entirely against one calibration
/// epoch (device snapshot + caches + derived noise constants). The
/// Backend& overload forwards here with the backend's current epoch; the
/// service workers call it with each batch's pack-time epoch so execution
/// matches planning even across a live recalibration. `prebound`
/// (optional) carries dispatch-time batch-bound transpiles; each entry is
/// consumed (moved from) only when its recorded partition matches the
/// allocation this pipeline derives, otherwise that program transpiles
/// through the epoch cache as usual — results are identical either way.
[[nodiscard]] BatchReport run_batch_pipeline(
    const CalibrationEpoch& epoch, const std::vector<Circuit>& programs,
    const std::vector<std::string>& names, const ParallelOptions& options,
    PreboundTranspiles* prebound = nullptr);

/// Modeled fleet drain time for a set of finished jobs: batches are
/// grouped by (backend id, batch index), each backend's occupancy is the
/// sum of parallel_runtime_s over its batches (a chip runs its batches
/// back to back), and the fleet finishes when its busiest chip does —
/// §II-A's waiting + execution framing at fleet level. `num_backends`
/// must cover every backend id in `handles`; handles that Failed are
/// skipped. This is the throughput metric bench_fleet records in
/// BENCH_fleet.json and tests/test_service.cpp pins at >= 2.5x for a
/// 4-backend fleet.
[[nodiscard]] double modeled_fleet_drain_s(std::span<const JobHandle> handles,
                                           std::size_t num_backends,
                                           const RuntimeModel& model);

}  // namespace qucp
