#pragma once
// ExecutionService: the asynchronous job-queue front door of the library.
//
// The paper motivates multi-programming with cloud-queue pressure (overall
// runtime = waiting time + execution time, §II-A): batching N user jobs
// into one device job cuts total runtime by up to N. The service owns the
// logic every caller used to hand-roll around run_parallel(): a job queue,
// an online batch packer (EFS partitioning + the §IV-B fidelity-threshold
// spill), a worker pool that executes independent batches concurrently,
// and a transpilation cache.
//
//   ExecutionService service(make_toronto27());
//   JobHandle job = service.submit(circuit);
//   service.flush();                       // pack + run everything queued
//   const JobResult& r = job.result();     // or poll job.status()
//
// Determinism: with JobOrder::Canonical (default) queued jobs are packed
// in (circuit fingerprint, name, submission id) order, so for a fixed seed
// the results are reproducible regardless of submission interleaving —
// jobs that share both circuit and name are mutually interchangeable, and
// every other handle is exactly reproducible. Batch i executes with seed
// `exec.seed + i * golden_ratio` (batch 0 uses exec.seed unchanged, which
// keeps the run_parallel() shim bit-identical to its historical output).
//
// run_parallel() in core/parallel.hpp is a compatibility shim over this
// service (single batch, FIFO order, synchronous).

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "service/backend.hpp"
#include "service/job.hpp"
#include "service/packer.hpp"

namespace qucp {

/// Order in which queued jobs are considered for packing.
enum class JobOrder {
  /// Submission order. Deterministic only for single-threaded submitters.
  Fifo,
  /// (circuit fingerprint, name, submission id): deterministic under
  /// concurrent submission up to jobs that are exact duplicates.
  Canonical,
};

struct ServiceOptions {
  Method method = Method::QuCP;
  double sigma = 4.0;  ///< QuCP crosstalk parameter (paper: sigma = 4)
  ExecOptions exec;    ///< shots, noise toggles, base seed
  /// SRB crosstalk estimates; required by QuMC, used by CNA when present.
  std::optional<CrosstalkModel> srb_estimates;
  bool optimize_circuits = true;

  int num_workers = 4;     ///< batch-executing threads (clamped to >= 1)
  int max_batch_size = 4;  ///< jobs per batch; <= 0 means unbounded
  /// §IV-B fidelity threshold: max EFS degradation vs running solo before
  /// a co-placement is rejected and the job spills to the next batch.
  /// 0 forces independent execution; infinity admits anything that fits.
  double efs_threshold = std::numeric_limits<double>::infinity();
  JobOrder order = JobOrder::Canonical;
  /// Pack all queued jobs into exactly one batch and let the pipeline
  /// fail the whole batch when it does not fit (run_parallel semantics).
  bool single_batch = false;
  /// When > 0, submit() packs and dispatches as soon as this many jobs
  /// are pending, without waiting for flush(). Note: with concurrent
  /// submitters the batch boundaries then depend on arrival interleaving.
  std::size_t auto_flush_batch_size = 0;
  std::size_t transpile_cache_capacity = 1024;
};

struct ServiceStats {
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;
  std::uint64_t batches_executed = 0;
  std::uint64_t spill_events = 0;  ///< EFS-threshold / fit rejections
  TranspileCacheStats transpile_cache;
};

class ExecutionService {
 public:
  /// Validates the configuration eagerly: QuMC without SRB estimates
  /// throws std::invalid_argument here, not at execution time.
  explicit ExecutionService(Device device, ServiceOptions options = {});
  ExecutionService(std::shared_ptr<Backend> backend, ServiceOptions options);
  ~ExecutionService();

  ExecutionService(const ExecutionService&) = delete;
  ExecutionService& operator=(const ExecutionService&) = delete;

  /// Enqueue a circuit. Cheap and thread-safe; nothing executes until a
  /// batch is dispatched (flush(), shutdown() or auto-flush). Throws
  /// std::runtime_error after shutdown().
  JobHandle submit(Circuit circuit, JobOptions options = {});

  /// Convenience: submit a vector of circuits, one handle each.
  std::vector<JobHandle> submit_all(std::vector<Circuit> circuits);

  /// Pack every pending job into batches, dispatch them to the worker
  /// pool, and block until all dispatched work has drained.
  void flush();

  /// flush() then stop and join the workers. Idempotent. Further
  /// submit() calls throw.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] Backend& backend() noexcept { return *backend_; }
  [[nodiscard]] const Backend& backend() const noexcept { return *backend_; }
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }
  /// Jobs submitted but not yet dispatched into a batch.
  [[nodiscard]] std::size_t pending_jobs() const;

 private:
  using JobPtr = std::shared_ptr<detail::JobState>;
  struct Batch {
    std::uint64_t index = 0;
    std::vector<JobPtr> jobs;
  };

  void start_workers();
  void worker_loop();
  /// Pack current pending jobs and enqueue the resulting batches.
  /// Serialized by pack_mutex_.
  void dispatch_pending();
  /// `concurrency` is the batch parallelism observed at dequeue time
  /// (in-flight + queued, capped at the pool size); it sizes the
  /// kernel-thread budget so a lone batch keeps the whole machine.
  void execute_batch(Batch batch, int concurrency);
  void wait_for_drain();

  std::shared_ptr<Backend> backend_;
  ServiceOptions options_;
  std::unique_ptr<Partitioner> partitioner_;  ///< drives the packer

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;     ///< batch queue -> workers
  std::condition_variable drained_cv_;  ///< outstanding == 0 -> flush()
  std::vector<JobPtr> pending_;
  std::deque<Batch> batch_queue_;
  std::size_t outstanding_jobs_ = 0;  ///< dispatched, not yet finished
  std::size_t active_batches_ = 0;    ///< batches currently executing
  bool accepting_ = true;  ///< false after shutdown(); submit() throws
  bool stop_ = false;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t next_batch_index_ = 0;
  std::uint64_t jobs_completed_ = 0;
  std::uint64_t jobs_failed_ = 0;
  std::uint64_t batches_executed_ = 0;
  std::uint64_t spill_events_ = 0;

  std::mutex pack_mutex_;  ///< serializes pack/dispatch cycles
  std::map<std::uint64_t, double> solo_efs_cache_;  ///< by circuit fp

  std::vector<std::thread> workers_;
};

/// The one true batch pipeline (partition -> transpile-with-cache ->
/// simultaneous execution -> fidelity metrics -> runtime model), shared by
/// the service workers and the run_parallel() compatibility shim. `names`
/// overrides per-program report names; empty entries (or an empty vector)
/// fall back to the circuit name / "program<i>". Throws
/// std::invalid_argument for config errors and std::runtime_error when the
/// batch cannot be placed.
[[nodiscard]] BatchReport run_batch_pipeline(
    Backend& backend, const std::vector<Circuit>& programs,
    const std::vector<std::string>& names, const ParallelOptions& options);

}  // namespace qucp
