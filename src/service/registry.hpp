#pragma once
// BackendRegistry: the set of device endpoints an ExecutionService fleet
// schedules over.
//
// Each registered Backend carries its own epoch-versioned cache set —
// TranspileCache, CandidateIndex, GateMatrixCache, CompiledProgramCache,
// all owned by the backend's current CalibrationEpoch (service/
// backend.hpp) — so per-device memoization survives routing decisions: a
// job bounced between devices warms each device's caches independently,
// and a device recalibrated mid-stream swaps in a fresh cache set without
// touching its fleet peers. Backends are held by shared_ptr and
// identified by a dense id (their registration order) — the id the
// FleetScheduler routes on and the id a JobResult reports back.
//
// Heterogeneous fleets are first-class: a registry may mix e.g. toronto27
// and manhattan65, and calibration-aware policies (BestEfs) use each
// device's own error data to route.

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "service/backend.hpp"

namespace qucp {

class BackendRegistry {
 public:
  BackendRegistry() = default;

  /// One Backend per device, in order; ids are the vector positions.
  /// `transpile_cache_capacity` applies to every constructed backend.
  explicit BackendRegistry(std::vector<Device> devices,
                           std::size_t transpile_cache_capacity = 1024);

  /// Adopt pre-built backends (shared caches, custom capacities). Throws
  /// std::invalid_argument on a null entry.
  explicit BackendRegistry(std::vector<std::shared_ptr<Backend>> backends);

  /// Register one more backend; returns its id. Only meaningful before
  /// the registry is handed to an ExecutionService (the service sizes its
  /// lanes at construction).
  std::size_t add(std::shared_ptr<Backend> backend);
  std::size_t add(Device device, std::size_t transpile_cache_capacity = 1024);

  [[nodiscard]] std::size_t size() const noexcept { return backends_.size(); }
  [[nodiscard]] bool empty() const noexcept { return backends_.empty(); }

  /// Bounds-checked access; throws std::out_of_range.
  [[nodiscard]] Backend& at(std::size_t id);
  [[nodiscard]] const Backend& at(std::size_t id) const;
  [[nodiscard]] Backend& operator[](std::size_t id) { return at(id); }
  [[nodiscard]] const Backend& operator[](std::size_t id) const {
    return at(id);
  }

  /// Shared ownership of backend `id` (e.g. to build a service lane).
  [[nodiscard]] std::shared_ptr<Backend> share(std::size_t id) const;

  /// Id of the first backend whose device name matches; nullopt when absent.
  [[nodiscard]] std::optional<std::size_t> find(
      std::string_view device_name) const noexcept;

 private:
  std::vector<std::shared_ptr<Backend>> backends_;
};

}  // namespace qucp
