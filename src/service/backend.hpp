#pragma once
// Backend: a device endpoint for the ExecutionService.
//
// Wraps a Device together with its noisy executor and a thread-safe
// transpilation cache. The service (and the run_parallel() compatibility
// shim) never call transpile_to_partition() or execute_parallel() directly;
// they go through a Backend so that repeated submissions of the same
// circuit onto the same partition pay transpilation once, and so future
// PRs can slot in other endpoints (real hardware transports, remote
// simulators, shards) behind the same interface.
//
// The cache key covers everything transpile_to_partition() reads: the
// circuit's content fingerprint, the target partition, and an
// options fingerprint the caller derives from the method configuration
// (placement style, optimize flags, CNA crosstalk context). Transpilation
// is deterministic, so a cache hit is observationally identical to a
// fresh transpile.

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <vector>

#include "circuit/gate_cache.hpp"
#include "hardware/device.hpp"
#include "mapping/transpiler.hpp"
#include "partition/candidate_index.hpp"
#include "sim/executor.hpp"
#include "sim/fusion.hpp"

namespace qucp {

struct TranspileCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

class Backend {
 public:
  /// `transpile_cache_capacity` = 0 disables caching.
  explicit Backend(Device device, std::size_t transpile_cache_capacity = 1024);

  [[nodiscard]] const Device& device() const noexcept { return device_; }

  /// Persistent incremental-EFS candidate cache for this backend's device
  /// (see partition/candidate_index.hpp). Shared by the batch pipeline and
  /// the packer so candidate generation + base scoring is paid once per
  /// (device, partition size) instead of once per batch. Thread-safe; the
  /// cache stays valid because Backend never exposes a mutable Device.
  [[nodiscard]] const CandidateIndex& candidate_index() const noexcept {
    return candidate_index_;
  }

  /// Persistent program-compilation cache (sim/fusion.hpp): fused kernel
  /// streams for the ideal pipeline, lowered per-op kernel streams for the
  /// noisy executor, both keyed by circuit fingerprint. Thread-safe.
  [[nodiscard]] const CompiledProgramCache& program_cache() const noexcept {
    return program_cache_;
  }

  /// Fused compilation of `logical`, memoized per circuit fingerprint —
  /// what the batch pipeline feeds ideal_distribution.
  [[nodiscard]] std::shared_ptr<const CompiledProgram> compiled_program(
      const Circuit& logical) const {
    return program_cache_.fused(logical);
  }

  /// Transpile `logical` onto `partition`, consulting the cache first.
  /// `options_fp` must fingerprint every TranspileOptions field that can
  /// differ between calls (the service derives it from method, optimize
  /// flags and CNA context). Thread-safe.
  [[nodiscard]] TranspiledProgram transpile(const Circuit& logical,
                                            std::span<const int> partition,
                                            const TranspileOptions& options,
                                            std::uint64_t options_fp);

  /// Execute pre-mapped programs on the simulated hardware. Thread-safe:
  /// execute_parallel only reads the device, and the shared gate-matrix
  /// cache is internally synchronized.
  [[nodiscard]] ParallelRunReport execute(std::vector<PhysicalProgram> programs,
                                          const ExecOptions& options) const;

  [[nodiscard]] TranspileCacheStats cache_stats() const;
  void clear_cache();

  /// Distinct (kind, params) gate unitaries memoized by this backend.
  [[nodiscard]] std::size_t gate_cache_entries() const {
    return gate_cache_.entries();
  }

 private:
  struct CacheKey {
    std::uint64_t circuit_fp = 0;
    std::uint64_t options_fp = 0;
    std::vector<int> partition;
    [[nodiscard]] bool operator<(const CacheKey& o) const {
      if (circuit_fp != o.circuit_fp) return circuit_fp < o.circuit_fp;
      if (options_fp != o.options_fp) return options_fp < o.options_fp;
      return partition < o.partition;
    }
  };

  Device device_;
  CandidateIndex candidate_index_;  ///< built against device_ (declared above)
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<CacheKey, TranspiledProgram> cache_;
  std::vector<CacheKey> insertion_order_;  ///< FIFO eviction queue
  TranspileCacheStats stats_;
  /// Gate unitaries shared by every execution on this backend (its own
  /// mutex; never cleared, so references handed to the simulator stay
  /// valid for the backend's lifetime).
  mutable GateMatrixCache gate_cache_;
  /// Compiled (fused / lowered per-op) programs shared by every execution
  /// on this backend (its own mutex; shared_ptr entries, so eviction never
  /// invalidates an in-flight replay).
  mutable CompiledProgramCache program_cache_;
};

}  // namespace qucp
