#pragma once
// Backend: a device endpoint for the ExecutionService, versioned by
// calibration epoch.
//
// Everything a backend derives from its calibration — the Device snapshot
// itself, the CandidateIndex, the transpile cache, the compiled-program
// and gate-matrix caches, and the executor's derived noise constants —
// lives inside an immutable CalibrationEpoch. The Backend owns a
// shared_ptr to the current epoch and swaps it RCU-style on
// recalibrate(): the replacement epoch's caches are warm-built on the
// calling thread (off-lane — no dispatch cycle or worker ever waits on
// the build), then the pointer swap publishes the whole cache set
// atomically. Holders of the old epoch (in-flight batches, a dispatch
// cycle mid-plan) keep executing against the calibration they were packed
// under; the old epoch retires when its last shared_ptr drops.
//
// The transpile cache key covers everything transpile_to_partition()
// reads: the circuit's fingerprint, the target partition, and an options
// fingerprint the caller derives from the method configuration (placement
// style, optimize flags, CNA crosstalk context). Transpilation is
// deterministic, so a cache hit is observationally identical to a fresh
// transpile — and because the cache lives inside the epoch, a hit can
// never serve a result transpiled under a different calibration.
//
// In parametric mode (the default) the circuit key is the *structural*
// fingerprint: entries for parameterized circuits store a
// TranspileTemplate (mapping/parametric.hpp) alongside the transpiled
// program of the first binding seen. A job whose structure matches but
// whose angles differ binds the template in one cheap pass —
// bit-identical to a from-scratch transpile — instead of re-placing and
// re-routing. Bindings the template rejects (an angle flipping one of the
// optimizer's recorded identity decisions) fall back to a from-scratch
// template rebuild, which also replaces the cached entry so a degenerate
// first binding (e.g. an all-zero VQE start) does not pin a
// fallback-prone template forever.
//
// Backend keeps the historical accessor surface (device(),
// candidate_index(), transpile(), execute(), ...) as forwarders to the
// current epoch, so single-epoch callers are untouched. References
// returned by the forwarders stay valid until the next recalibrate();
// code that must survive a concurrent recalibration (the fleet planner,
// batch execution) pins an epoch with epoch() and works through it.

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "circuit/gate_cache.hpp"
#include "hardware/device.hpp"
#include "mapping/parametric.hpp"
#include "mapping/transpiler.hpp"
#include "partition/candidate_index.hpp"
#include "sim/executor.hpp"
#include "sim/fusion.hpp"

namespace qucp {

struct TranspileCacheStats {
  std::uint64_t hits = 0;    ///< exact-binding hits (identical circuit)
  std::uint64_t misses = 0;  ///< no usable entry; full transpile performed
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  /// Structure matched with different angles; served by template bind.
  std::uint64_t structural_hits = 0;
  /// Structure matched but the binding flipped a recorded optimizer
  /// decision (or the entry had no template); rebuilt from scratch.
  std::uint64_t bind_fallbacks = 0;
  /// Total nanoseconds spent in successful template binds.
  std::uint64_t bind_ns = 0;
};

/// One immutable calibration snapshot plus every cache derived from it.
/// Construction is cheap (the caches fill lazily); warm() optionally
/// pre-builds the candidate lists a predecessor epoch had accumulated.
/// All methods are const and internally synchronized, so concurrent
/// service workers share one epoch exactly as they shared the old
/// Backend. An epoch never mutates its calibration — drift is modeled by
/// building a successor epoch, not by touching this one.
class CalibrationEpoch {
 public:
  /// `transpile_cache_capacity` = 0 disables transpile caching.
  /// `parametric` = false keys the cache on exact circuit fingerprints
  /// only (the pre-template behavior; useful for A/B benchmarking).
  CalibrationEpoch(std::uint64_t id, Device device,
                   std::size_t transpile_cache_capacity,
                   bool parametric = true);

  CalibrationEpoch(const CalibrationEpoch&) = delete;
  CalibrationEpoch& operator=(const CalibrationEpoch&) = delete;

  /// Monotonic per-backend epoch number (0 = construction epoch).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  [[nodiscard]] const Device& device() const noexcept { return device_; }

  /// Persistent incremental-EFS candidate cache built against this
  /// epoch's device snapshot (see partition/candidate_index.hpp).
  /// Thread-safe; valid because the epoch never exposes a mutable Device.
  [[nodiscard]] const CandidateIndex& candidate_index() const noexcept {
    return candidate_index_;
  }

  /// Executor noise constants derived from this epoch's calibration once,
  /// instead of per gate application (sim/executor.hpp).
  [[nodiscard]] const DerivedNoise& derived_noise() const noexcept {
    return derived_noise_;
  }

  /// Persistent program-compilation cache (sim/fusion.hpp). Thread-safe.
  [[nodiscard]] const CompiledProgramCache& program_cache() const noexcept {
    return program_cache_;
  }

  /// Fused compilation of `logical`, memoized per circuit fingerprint.
  [[nodiscard]] std::shared_ptr<const CompiledProgram> compiled_program(
      const Circuit& logical) const {
    return program_cache_.fused(logical);
  }

  /// Transpile `logical` onto `partition`, consulting the epoch's cache
  /// first. `options_fp` must fingerprint every TranspileOptions field
  /// that can differ between calls. Thread-safe.
  [[nodiscard]] TranspiledProgram transpile(const Circuit& logical,
                                            std::span<const int> partition,
                                            const TranspileOptions& options,
                                            std::uint64_t options_fp) const;

  /// Batched sweep transpile: serve N circuits that share one structural
  /// fingerprint on one partition with a single cache probe and one
  /// bind_many pass — the per-circuit lock/lookup/bind round-trips of N
  /// transpile() calls collapse to one. Results and every cache counter
  /// are identical to calling transpile() on each circuit in order
  /// (bind_ns aside — it is timing): the first unseen circuit still
  /// counts the miss and builds the template, exact-binding repeats still
  /// count hits, and a binding the template rejects still falls back
  /// through the one-at-a-time path (replacing the entry, after which the
  /// remaining circuits re-probe the replacement). `out` is cleared and
  /// filled with one program per circuit. Thread-safe.
  void transpile_sweep(std::span<const Circuit* const> circuits,
                       std::span<const int> partition,
                       const TranspileOptions& options,
                       std::uint64_t options_fp,
                       std::vector<TranspiledProgram>& out) const;

  /// Execute pre-mapped programs on this epoch's simulated hardware.
  [[nodiscard]] ParallelRunReport execute(std::vector<PhysicalProgram> programs,
                                          const ExecOptions& options) const;

  [[nodiscard]] TranspileCacheStats cache_stats() const;
  void clear_cache() const;

  /// Distinct (kind, params) gate unitaries memoized by this epoch.
  [[nodiscard]] std::size_t gate_cache_entries() const {
    return gate_cache_.entries();
  }

  /// Pre-build the candidate lists for `partition_sizes` (typically the
  /// predecessor epoch's working set) so the first dispatch cycle on this
  /// epoch pays no per_k builds. Part of recalibrate()'s off-lane work.
  void warm(std::span<const int> partition_sizes) const;

 private:
  struct CacheKey {
    std::uint64_t circuit_fp = 0;
    std::uint64_t options_fp = 0;
    std::vector<int> partition;
    [[nodiscard]] bool operator<(const CacheKey& o) const {
      if (circuit_fp != o.circuit_fp) return circuit_fp < o.circuit_fp;
      if (options_fp != o.options_fp) return options_fp < o.options_fp;
      return partition < o.partition;
    }
  };

  /// One cached transpilation. `tmpl` is non-null only for parametric
  /// entries that built a template; `binding0` is the parameter binding
  /// `result` was transpiled from (empty for parameterless circuits and
  /// non-parametric entries, where the key already pins exact values).
  struct CacheEntry {
    TranspiledProgram result;
    std::vector<double> binding0;
    std::shared_ptr<const TranspileTemplate> tmpl;
  };

  std::uint64_t id_ = 0;
  Device device_;
  CandidateIndex candidate_index_;  ///< built against device_ (declared above)
  DerivedNoise derived_noise_;      ///< derived from device_.calibration()
  std::size_t capacity_;
  bool parametric_ = true;
  mutable std::mutex mutex_;
  mutable std::map<CacheKey, CacheEntry> cache_;
  mutable std::deque<CacheKey> insertion_order_;  ///< FIFO eviction queue
  mutable TranspileCacheStats stats_;
  /// Gate unitaries shared by every execution on this epoch (its own
  /// mutex; never cleared, so references handed to the simulator stay
  /// valid for the epoch's lifetime).
  mutable GateMatrixCache gate_cache_;
  /// Compiled (fused / lowered per-op) programs shared by every execution
  /// on this epoch (its own mutex; shared_ptr entries, so eviction never
  /// invalidates an in-flight replay).
  mutable CompiledProgramCache program_cache_;
};

class Backend {
 public:
  /// `transpile_cache_capacity` = 0 disables transpile caching; both
  /// knobs apply to every epoch this backend ever builds. `parametric` =
  /// false reverts the transpile cache to exact-fingerprint keying.
  explicit Backend(Device device, std::size_t transpile_cache_capacity = 1024,
                   bool parametric = true);

  /// Pin the current calibration epoch. The returned shared_ptr keeps the
  /// epoch (device, caches, derived constants) alive across any number of
  /// concurrent recalibrate() calls — this is how in-flight batches keep
  /// executing against their pack-time calibration.
  [[nodiscard]] std::shared_ptr<const CalibrationEpoch> epoch() const;

  /// Current epoch number (0 until the first recalibrate()).
  [[nodiscard]] std::uint64_t epoch_id() const;

  /// Swap in a new calibration without draining anything: validates
  /// `cal` against the device topology, builds a successor epoch with a
  /// fresh cache set on the calling thread (warm-building the candidate
  /// sizes the retiring epoch had accumulated), then atomically publishes
  /// it. Dispatch cycles pick the new epoch up at their next pack
  /// boundary; batches already packed complete against their pinned
  /// epoch. Returns the off-lane build time in seconds (the "stall" a
  /// drain-the-world design would have imposed on the lane). Concurrent
  /// recalibrate() calls serialize; throws std::invalid_argument (leaving
  /// the current epoch untouched) when `cal` fails validation.
  double recalibrate(Calibration cal);

  /// Epochs published by recalibrate() so far.
  [[nodiscard]] std::uint64_t recalibrations() const noexcept {
    return recalibrations_.load(std::memory_order_relaxed);
  }
  /// Total off-lane epoch build seconds across every recalibrate().
  [[nodiscard]] double recalibration_build_s() const noexcept {
    return recalibration_build_s_.load(std::memory_order_relaxed);
  }

  // Forwarders to the current epoch. References are valid until the next
  // recalibrate(); epoch-crossing callers pin epoch() instead.
  [[nodiscard]] const Device& device() const { return epoch()->device(); }
  [[nodiscard]] const CandidateIndex& candidate_index() const {
    return epoch()->candidate_index();
  }
  [[nodiscard]] const CompiledProgramCache& program_cache() const {
    return epoch()->program_cache();
  }
  [[nodiscard]] std::shared_ptr<const CompiledProgram> compiled_program(
      const Circuit& logical) const {
    return epoch()->compiled_program(logical);
  }
  [[nodiscard]] TranspiledProgram transpile(const Circuit& logical,
                                            std::span<const int> partition,
                                            const TranspileOptions& options,
                                            std::uint64_t options_fp) {
    return epoch()->transpile(logical, partition, options, options_fp);
  }
  [[nodiscard]] ParallelRunReport execute(std::vector<PhysicalProgram> programs,
                                          const ExecOptions& options) const {
    return epoch()->execute(std::move(programs), options);
  }
  [[nodiscard]] TranspileCacheStats cache_stats() const {
    return epoch()->cache_stats();
  }
  void clear_cache() { epoch()->clear_cache(); }
  [[nodiscard]] std::size_t gate_cache_entries() const {
    return epoch()->gate_cache_entries();
  }

 private:
  std::size_t capacity_;
  bool parametric_ = true;
  mutable std::mutex epoch_mutex_;  ///< guards the epoch_ pointer swap
  std::shared_ptr<const CalibrationEpoch> epoch_;
  std::mutex recal_mutex_;  ///< serializes concurrent recalibrate() calls
  std::atomic<std::uint64_t> recalibrations_{0};
  std::atomic<double> recalibration_build_s_{0.0};
};

}  // namespace qucp
