#include "service/intake.hpp"

#include <bit>
#include <stdexcept>
#include <thread>

namespace qucp::detail {

namespace {

/// Process-wide ordinal of intake-using threads, assigned on first use.
std::atomic<std::size_t> g_intake_thread_counter{0};

std::size_t intake_thread_ordinal() {
  thread_local const std::size_t ordinal =
      g_intake_thread_counter.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

SubmitRing::SubmitRing(std::size_t capacity) {
  capacity_ = std::bit_ceil(std::max<std::size_t>(capacity, 2));
  mask_ = capacity_ - 1;
  cells_ = std::vector<Cell>(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool SubmitRing::try_push(const JobPtr& job) {
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff =
        static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.value = job;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded pos; retry against the new ticket.
    } else if (diff < 0) {
      return false;  // the cell still holds an unconsumed lap: full
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool SubmitRing::try_push_block(std::span<const JobPtr> jobs) {
  const std::uint64_t n = jobs.size();
  if (n == 0) return true;
  if (n > capacity_) return false;
  std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    // The consumer frees cells in ticket order, so "the last cell of the
    // block is writable" implies every earlier cell of the block has been
    // consumed too (any producer holding an older unpublished ticket would
    // have stalled the consumer before it could free our last cell).
    Cell& last = cells_[(pos + n - 1) & mask_];
    const std::uint64_t seq = last.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::int64_t>(seq) -
                      static_cast<std::int64_t>(pos + n - 1);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + n,
                                             std::memory_order_relaxed)) {
        for (std::uint64_t i = 0; i < n; ++i) {
          Cell& cell = cells_[(pos + i) & mask_];
          // Immediate by the argument above; the acquire load (re)checks
          // it per cell and orders our write after the consumer's read of
          // the previous lap's value.
          while (cell.seq.load(std::memory_order_acquire) != pos + i) {
            std::this_thread::yield();
          }
          cell.value = jobs[i];
          cell.seq.store(pos + i + 1, std::memory_order_release);
        }
        return true;
      }
    } else if (diff < 0) {
      return false;  // not enough consumed room for the whole block
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

std::uint64_t SubmitRing::reserve_span(std::uint64_t count) {
  // Unconditional ticket claim: same counter try_push CASes on, so the
  // span is totally ordered against every concurrent push. Concurrent
  // try_push/try_push_block calls that land on a reserved-but-unpublished
  // cell observe seq < pos (an unconsumed lap) and report full — normal
  // backpressure, no special case.
  return enqueue_pos_.fetch_add(count, std::memory_order_relaxed);
}

bool SubmitRing::try_publish_at(std::uint64_t ticket, const JobPtr& job) {
  Cell& cell = cells_[ticket & mask_];
  // The cell is ours to write only once the consumer has freed every
  // earlier lap of this slot (seq reaches the ticket value). The acquire
  // load orders our write after the consumer's read of the old value.
  if (cell.seq.load(std::memory_order_acquire) != ticket) return false;
  cell.value = job;
  cell.seq.store(ticket + 1, std::memory_order_release);
  return true;
}

bool SubmitRing::try_pop(JobPtr& out) {
  const std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Cell& cell = cells_[pos & mask_];
  const std::uint64_t seq = cell.seq.load(std::memory_order_acquire);
  if (seq != pos + 1) return false;  // empty, or head ticket not published
  out = std::move(cell.value);
  cell.value.reset();
  dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
  cell.seq.store(pos + capacity_, std::memory_order_release);
  return true;
}

ShardedIntake::ShardedIntake(std::size_t num_shards,
                             std::size_t shard_capacity) {
  if (num_shards == 0) {
    throw std::invalid_argument("ShardedIntake: num_shards must be >= 1");
  }
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<SubmitRing>(shard_capacity));
  }
}

std::size_t ShardedIntake::home_shard() const noexcept {
  return intake_thread_ordinal() % shards_.size();
}

std::size_t ShardedIntake::drain(std::vector<JobPtr>& out) {
  std::size_t drained = 0;
  JobPtr job;
  for (auto& shard : shards_) {
    while (shard->try_pop(job)) {
      out.push_back(std::move(job));
      ++drained;
    }
  }
  return drained;
}

}  // namespace qucp::detail
