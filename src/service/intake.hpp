#pragma once
// Sharded MPSC submission intake: the lock-free front half of the
// ExecutionService queue.
//
// Every submit() used to take the one service mutex, so N producer threads
// serialized on a single cache line long before the packer or the
// simulator became the bottleneck. The intake splits the pending queue
// into S independent fixed-capacity ring buffers (shards). A producer
// thread picks its home shard once (thread ordinal mod S) and then
// publishes jobs with two atomic operations — a bounded MPMC-style
// ticket claim and a per-cell sequence release (Vyukov's bounded queue,
// producer side) — so unrelated submitter threads never touch the same
// shard, and same-shard producers contend only on one fetch-like CAS.
//
// The consumer side is single-threaded by construction: only the pack
// cycle drains, under the service's pack mutex, walking shards in id
// order and each shard in ticket (FIFO) order. That drain order is
// deterministic given the shard contents, and the service sorts the
// drained jobs canonically (or by submission id) before packing, so for
// a single-submitter stream the dispatched batches are bit-identical to
// the historical mutex-guarded queue.
//
// Capacity is fixed at construction (rounded up to a power of two). A
// full shard makes try_push return false; the service reacts by draining
// the rings itself (backpressure dispatch) and retrying, so producers
// never block on a condition variable and never drop jobs.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace qucp::detail {

struct JobState;  // service/job.hpp
using JobPtr = std::shared_ptr<JobState>;

/// Bounded multi-producer ring buffer of queued jobs (Vyukov bounded
/// queue). Producers are lock-free (ticket CAS + cell-sequence publish);
/// the consumer side assumes a single drainer at a time — the service
/// serializes pops under its pack mutex.
class SubmitRing {
 public:
  /// `capacity` is rounded up to a power of two, minimum 2.
  explicit SubmitRing(std::size_t capacity);

  SubmitRing(const SubmitRing&) = delete;
  SubmitRing& operator=(const SubmitRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Publish one job. False when the ring is full (the job is untouched).
  [[nodiscard]] bool try_push(const JobPtr& job);

  /// Publish `jobs` as one contiguous ticket block — consumers see the
  /// whole vector in order, with no interleaved jobs from other producers
  /// on this shard. All-or-nothing; false when the ring lacks room for the
  /// whole block or the block exceeds the capacity (jobs are untouched).
  [[nodiscard]] bool try_push_block(std::span<const JobPtr> jobs);

  /// Pop the oldest job in ticket order. False when empty, or when the
  /// head ticket was claimed but not yet published (the job stays queued
  /// for the next drain — nothing is ever lost or reordered). Single
  /// consumer at a time.
  [[nodiscard]] bool try_pop(JobPtr& out);

  /// Reserve `count` contiguous tickets unconditionally (the span may
  /// exceed the ring capacity) and return the first ticket. This is the
  /// oversized-batch path of submit_all: the whole vector claims one
  /// contiguous id span up front, then publishes cell by cell with
  /// try_publish_at, so a drain sees the block contiguous in ticket order
  /// with no chunk seam — at the cost of the reserver being obliged to
  /// keep publishing (an abandoned reservation stalls the shard at its
  /// first unpublished ticket, exactly like a producer dying between
  /// ticket claim and publish).
  [[nodiscard]] std::uint64_t reserve_span(std::uint64_t count);

  /// Publish `job` at `ticket` (previously returned by reserve_span, plus
  /// an offset). False when the ticket's cell still holds an unconsumed
  /// earlier lap — the reserver must let the consumer drain (the service
  /// backpressures into dispatch_pending) and retry. Tickets of one span
  /// must be published in ascending order.
  [[nodiscard]] bool try_publish_at(std::uint64_t ticket, const JobPtr& job);

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    JobPtr value;
  };

  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::vector<Cell> cells_;
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
};

/// The service-facing intake: S independent SubmitRings plus the
/// thread-to-shard mapping. Producers address their home shard (stable
/// per thread for FIFO-per-producer ordering); the pack cycle drains all
/// shards in shard-then-ticket order.
class ShardedIntake {
 public:
  ShardedIntake(std::size_t num_shards, std::size_t shard_capacity);

  [[nodiscard]] std::size_t num_shards() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_capacity() const noexcept {
    return shards_.front()->capacity();
  }

  /// Stable home shard of the calling thread: thread ordinal (order of
  /// first intake use, process-wide) mod num_shards. Keeps one submitter
  /// alone on its shard for up to S concurrent producers.
  [[nodiscard]] std::size_t home_shard() const noexcept;

  [[nodiscard]] bool try_push(const JobPtr& job, std::size_t shard) {
    return shards_[shard]->try_push(job);
  }
  [[nodiscard]] bool try_push_block(std::span<const JobPtr> jobs,
                                    std::size_t shard) {
    return shards_[shard]->try_push_block(jobs);
  }
  [[nodiscard]] std::uint64_t reserve_span(std::uint64_t count,
                                           std::size_t shard) {
    return shards_[shard]->reserve_span(count);
  }
  [[nodiscard]] bool try_publish_at(std::uint64_t ticket, const JobPtr& job,
                                    std::size_t shard) {
    return shards_[shard]->try_publish_at(ticket, job);
  }

  /// Drain every shard into `out` (appended), shard 0..S-1, each in FIFO
  /// ticket order. Returns the number of jobs drained. Single consumer at
  /// a time — the service calls this under its pack mutex.
  std::size_t drain(std::vector<JobPtr>& out);

 private:
  std::vector<std::unique_ptr<SubmitRing>> shards_;
};

}  // namespace qucp::detail
