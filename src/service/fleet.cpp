#include "service/fleet.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "partition/candidate_index.hpp"

namespace qucp {

namespace {

double mean_cx_duration_ns(const Calibration& cal) {
  if (cal.cx_duration_ns.empty()) return 0.0;
  double sum = 0.0;
  for (double d : cal.cx_duration_ns) sum += d;
  return sum / static_cast<double>(cal.cx_duration_ns.size());
}

// Width-normalized serial gate time: with w qubits at most w/2 two-qubit
// gates (and w one-qubit gates) run concurrently, so the serial sum over
// gates divided by w/2 brackets the ALAP makespan from above for
// width-parallel circuits and degrades gracefully to the serial sum for
// 1-2 qubit programs.
double exec_ns_from_calibration(const Calibration& cal,
                                const ProgramShape& shape,
                                double avg_cx_ns) {
  const double width = std::max(2.0, static_cast<double>(shape.num_qubits));
  const double serial =
      static_cast<double>(shape.num_1q) * cal.q1_duration_ns +
      static_cast<double>(shape.num_2q) * avg_cx_ns;
  return serial * 2.0 / width + cal.readout_duration_ns;
}

}  // namespace

double modeled_exec_ns(const Device& device, const ProgramShape& shape) {
  const Calibration& cal = device.calibration();
  return exec_ns_from_calibration(cal, shape, mean_cx_duration_ns(cal));
}

AdmissionProbe::AdmissionProbe(const FleetSlot& slot,
                               const Partitioner& partitioner,
                               bool incremental)
    : slot_(&slot), partitioner_(&partitioner), incremental_(incremental) {}

AdmissionProbe::~AdmissionProbe() = default;
AdmissionProbe::AdmissionProbe(AdmissionProbe&&) noexcept = default;
AdmissionProbe& AdmissionProbe::operator=(AdmissionProbe&&) noexcept =
    default;

void AdmissionProbe::rebuild_session() {
  // A session's future queries depend only on the committed set and
  // commit order, so replaying assignments_ (already in allocation order)
  // reproduces exactly the session state a fresh allocate() would have
  // after the same prefix.
  session_ = std::make_unique<AllocationSession>(*slot_->index);
  for (const PartitionAssignment& a : assignments_) {
    session_->commit(a.qubits);
  }
  session_valid_ = true;
}

const std::vector<PartitionAssignment>* AdmissionProbe::probe(
    const ProgramShape& shape) {
  has_pending_ = false;
  pending_shape_ = shape;

  // allocation_order sorts (qubits desc, 2q desc, stable): the new shape
  // — holding the highest original index — sorts last iff it does not
  // strictly precede the currently-last ordered member.
  const auto sorts_last = [&] {
    if (shapes_.empty()) return true;
    const ProgramShape& last = shapes_[order_.back()];
    const bool precedes =
        shape.num_qubits > last.num_qubits ||
        (shape.num_qubits == last.num_qubits && shape.num_2q > last.num_2q);
    return !precedes;
  };

  if (incremental_ && slot_->index != nullptr &&
      partitioner_->supports_incremental() && sorts_last()) {
    // Fast path: the grown batch's allocation order is the old order plus
    // the new shape at the end, so the members' greedy prefix (and their
    // context EFS scores, frozen at their own allocation step) is
    // unchanged — only the new job needs an allocation, against the
    // persistent session.
    if (!session_valid_) rebuild_session();
    auto grown = partitioner_->grow_one(*session_, shape);
    if (!grown) return nullptr;
    pending_assignments_ = assignments_;
    pending_assignments_.push_back(std::move(*grown));
    pending_order_ = order_;
    pending_order_.push_back(shapes_.size());
    pending_fast_ = true;
  } else {
    // Reference path: re-allocate the whole grown batch from scratch, in
    // the same largest-first order the execution pipeline will use.
    std::vector<ProgramShape> tentative = shapes_;
    tentative.push_back(shape);
    pending_order_ = allocation_order(tentative);
    std::vector<ProgramShape> ordered_shapes;
    ordered_shapes.reserve(pending_order_.size());
    for (std::size_t idx : pending_order_) {
      ordered_shapes.push_back(tentative[idx]);
    }
    auto alloc =
        partitioner_->allocate(*slot_->device, ordered_shapes, slot_->index);
    if (!alloc) return nullptr;
    pending_assignments_ = std::move(*alloc);
    pending_fast_ = false;
  }
  has_pending_ = true;
  return &pending_assignments_;
}

void AdmissionProbe::admit() {
  assert(has_pending_);
  if (pending_fast_ && session_valid_) {
    // Tail admission: the session extends by exactly the new commit.
    session_->commit(pending_assignments_.back().qubits);
  } else {
    // Mid-order admission re-shuffled the commit order; rebuild lazily on
    // the next fast probe.
    session_valid_ = false;
  }
  shapes_.push_back(pending_shape_);
  order_ = std::move(pending_order_);
  assignments_ = std::move(pending_assignments_);
  pending_order_.clear();
  pending_assignments_.clear();
  has_pending_ = false;
}

std::vector<std::vector<int>> AdmissionProbe::admitted_partitions() const {
  // assignments_ is allocation-ordered; order_[pos] maps each allocation
  // position back to the admission index of the job it places.
  std::vector<std::vector<int>> parts(assignments_.size());
  for (std::size_t pos = 0; pos < assignments_.size(); ++pos) {
    parts[order_[pos]] = assignments_[pos].qubits;
  }
  return parts;
}

void AdmissionProbe::reset() {
  shapes_.clear();
  order_.clear();
  assignments_.clear();
  session_.reset();
  session_valid_ = false;
  pending_order_.clear();
  pending_assignments_.clear();
  has_pending_ = false;
}

FleetView::FleetView(std::span<const FleetSlot> slots,
                     const Partitioner& partitioner,
                     std::span<const LaneEstimate> lanes,
                     const RuntimeModel* model, int max_batch_size)
    : slots_(slots),
      partitioner_(&partitioner),
      lanes_(lanes),
      model_(model),
      max_batch_size_(max_batch_size) {
  avg_cx_ns_.reserve(slots_.size());
  for (const FleetSlot& slot : slots_) {
    avg_cx_ns_.push_back(mean_cx_duration_ns(slot.device->calibration()));
  }
}

double FleetView::drain_estimate_s(std::size_t slot) const {
  if (lanes_.empty()) return 0.0;
  return lanes_[slot].initial_backlog_s + lanes_[slot].planned_closed_s;
}

int FleetView::open_jobs(std::size_t slot) const {
  return lanes_.empty() ? 0 : lanes_[slot].open_jobs;
}

double FleetView::exec_estimate_ns(std::size_t slot,
                                   const PackJob& job) const {
  return exec_ns_from_calibration(slots_[slot].device->calibration(),
                                  job.shape, avg_cx_ns_[slot]);
}

double FleetView::expected_latency_s(std::size_t slot,
                                     const PackJob& job) const {
  static const RuntimeModel kDefaultModel{};
  const RuntimeModel& model = model_ != nullptr ? *model_ : kDefaultModel;
  const double own_ns = exec_estimate_ns(slot, job);
  double wait = drain_estimate_s(slot);
  double batch_ns = own_ns;
  if (!lanes_.empty()) {
    const LaneEstimate& lane = lanes_[slot];
    const bool open_has_room =
        lane.open_jobs > 0 &&
        (max_batch_size_ <= 0 || lane.open_jobs < max_batch_size_);
    if (open_has_room) {
      // Joining the open batch: the batch's runtime only grows by the
      // makespan delta, which is zero when a slower co-runner already
      // bounds it — the §II-A win batching exists for.
      batch_ns = std::max(lane.open_max_ns, own_ns);
    } else if (lane.open_jobs > 0) {
      // Full open batch ahead: wait behind it, then run a fresh batch.
      wait += job_runtime_s(model, lane.open_max_ns);
    }
  }
  return wait + job_runtime_s(model, batch_ns);
}

std::optional<double> FleetView::solo_efs(std::size_t slot,
                                          const PackJob& job) const {
  // Does-not-fit is memoized as +infinity: EFS sums finite error terms, so
  // the sentinel can never collide with a real score, and BestEfs (which
  // probes every job on every device each round) never re-runs an
  // allocation that is known to fail.
  constexpr double kUnfit = std::numeric_limits<double>::infinity();
  // Solo EFS reads the job's shape and the device only — never parameter
  // values — so structurally identical jobs share one memo slot when the
  // submitter provides the parameter-blind key (angle sweeps score once).
  const std::uint64_t key =
      job.structural_fp != 0 ? job.structural_fp : job.fingerprint;
  std::map<std::uint64_t, double>& cache = *slots_[slot].solo_efs;
  if (auto it = cache.find(key); it != cache.end()) {
    if (it->second == kUnfit) return std::nullopt;
    return it->second;
  }
  const auto score = solo_efs_score(*slots_[slot].device, *partitioner_,
                                    job.shape, slots_[slot].index);
  cache.emplace(key, score.value_or(kUnfit));
  return score;
}

std::string_view route_policy_name(RoutePolicy policy) noexcept {
  switch (policy) {
    case RoutePolicy::RoundRobin: return "RoundRobin";
    case RoutePolicy::LeastLoaded: return "LeastLoaded";
    case RoutePolicy::BestEfs: return "BestEfs";
    case RoutePolicy::ExpectedLatency: return "ExpectedLatency";
  }
  return "?";
}

void RoundRobinPolicy::preference(const FleetView& fleet, const PackJob& job,
                                  std::vector<std::size_t>& order) {
  // Rotate the starting slot by canonical queue position: stable across
  // packing rounds (a spilled job keeps its preference) and independent of
  // submission interleaving.
  const std::size_t n = fleet.size();
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = (job.index + i) % n;
}

void LeastLoadedPolicy::preference(const FleetView& fleet, const PackJob& job,
                                   std::vector<std::size_t>& order) {
  (void)job;
  const std::size_t n = fleet.size();
  if (load_.size() < n) load_.resize(n, 0);
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return load_[a] < load_[b];
                   });
}

void LeastLoadedPolicy::on_placed(std::size_t slot, const PackJob& job) {
  if (load_.size() <= slot) load_.resize(slot + 1, 0);
  load_[slot] += static_cast<std::uint64_t>(std::max(1, job.shape.num_qubits));
}

void BestEfsPolicy::preference(const FleetView& fleet, const PackJob& job,
                               std::vector<std::size_t>& order) {
  // Ascending best-solo-EFS (EFS accumulates *error*, so lowest is best);
  // devices the job cannot fit on are excluded, ties go to the lowest id.
  struct Scored {
    std::size_t slot;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(fleet.size());
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    if (const auto score = fleet.solo_efs(s, job)) {
      scored.push_back({s, *score});
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score < b.score;
                   });
  order.clear();
  for (const Scored& s : scored) order.push_back(s.slot);
}

void ExpectedLatencyPolicy::preference(const FleetView& fleet,
                                       const PackJob& job,
                                       std::vector<std::size_t>& order) {
  // Ascending §II-A modeled completion time (waiting + execution); unfit
  // devices are excluded, ties go to the lowest id. All queue state lives
  // in the lane estimates the packer maintains, so the policy itself is
  // stateless and replayable.
  struct Scored {
    std::size_t slot;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(fleet.size());
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    if (!fleet.solo_efs(s, job)) continue;
    scored.push_back({s, fleet.expected_latency_s(s, job)});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score < b.score;
                   });
  order.clear();
  for (const Scored& s : scored) order.push_back(s.slot);
}

std::unique_ptr<RoutingPolicy> make_routing_policy(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::RoundRobin: return std::make_unique<RoundRobinPolicy>();
    case RoutePolicy::LeastLoaded:
      return std::make_unique<LeastLoadedPolicy>();
    case RoutePolicy::BestEfs: return std::make_unique<BestEfsPolicy>();
    case RoutePolicy::ExpectedLatency:
      return std::make_unique<ExpectedLatencyPolicy>();
  }
  throw std::logic_error("make_routing_policy: unhandled policy");
}

FleetPlan pack_fleet(std::span<const FleetSlot> slots,
                     std::span<const PackJob> jobs,
                     const Partitioner& partitioner,
                     const PackOptions& options, RoutingPolicy* policy,
                     std::span<const double> initial_backlog_s) {
  if (!initial_backlog_s.empty() && initial_backlog_s.size() != slots.size()) {
    throw std::invalid_argument(
        "pack_fleet: initial_backlog_s must be empty or one entry per slot");
  }
  FleetPlan plan;
  plan.batches.resize(slots.size());
  plan.batch_exec_s.resize(slots.size());
  plan.wait_sum_s.assign(slots.size(), 0.0);
  plan.wait_max_s.assign(slots.size(), 0.0);
  if (slots.empty() || jobs.empty()) return plan;

  // Queueing is exactly what the drain estimates model, so a caller-set
  // queue depth would double-count the wait term.
  RuntimeModel model = options.runtime;
  model.queue_depth = 0;

  if (options.single_batch) {
    // run_parallel() semantics: everything in exactly one batch on the
    // first slot; the execution pipeline fails the whole batch when it
    // does not fit.
    PackedBatch batch;
    const FleetView solo_view(slots, partitioner);
    double max_ns = 0.0;
    for (const PackJob& job : jobs) {
      batch.jobs.push_back(job.index);
      max_ns = std::max(max_ns, solo_view.exec_estimate_ns(0, job));
    }
    plan.batches[0].push_back(std::move(batch));
    plan.batch_exec_s[0].push_back(job_runtime_s(model, max_ns));
    const double wait =
        initial_backlog_s.empty() ? 0.0 : initial_backlog_s[0];
    plan.wait_sum_s[0] = wait * static_cast<double>(jobs.size());
    plan.wait_max_s[0] = wait;
    return plan;
  }

  const std::size_t num_slots = slots.size();
  const std::size_t cap = options.max_batch_size <= 0
                              ? jobs.size()
                              : static_cast<std::size_t>(options.max_batch_size);
  const bool check_threshold = std::isfinite(options.efs_threshold);

  // Modeled lane state, maintained placement by placement so queue-aware
  // policies see occupancy grow within a round and backlog grow across
  // rounds. Time-blind policies never read it, so maintaining it cannot
  // change their decisions.
  std::vector<LaneEstimate> lanes(num_slots);
  for (std::size_t s = 0; s < initial_backlog_s.size(); ++s) {
    lanes[s].initial_backlog_s = initial_backlog_s[s];
  }
  const FleetView view(slots, partitioner, lanes, &model,
                       options.max_batch_size);
  const bool queue_aware = policy != nullptr && policy->queue_aware();

  std::vector<const PackJob*> remaining;
  remaining.reserve(jobs.size());
  for (const PackJob& job : jobs) remaining.push_back(&job);

  // Per-round open batch state, slot-indexed. The probes carry the open
  // batches' shapes and allocations across admissions (see AdmissionProbe)
  // so each test grows one job instead of re-allocating the whole batch.
  std::vector<std::vector<const PackJob*>> batch(num_slots);
  std::vector<AdmissionProbe> probes;
  probes.reserve(num_slots);
  for (std::size_t s = 0; s < num_slots; ++s) {
    probes.emplace_back(slots[s], partitioner,
                        options.incremental_admission);
  }
  std::vector<char> closed(num_slots, 0);
  std::vector<std::size_t> prefs;

  while (!remaining.empty()) {
    for (std::size_t s = 0; s < num_slots; ++s) {
      batch[s].clear();
      probes[s].reset();
      closed[s] = 0;
    }
    std::vector<const PackJob*> spilled;

    for (const PackJob* job : remaining) {
      prefs.clear();
      if (policy != nullptr) {
        policy->preference(view, *job, prefs);
      } else {
        for (std::size_t s = 0; s < num_slots; ++s) prefs.push_back(s);
      }
      if (job->exclusive) {
        // Reservation lane: an exclusive job idles a whole chip for its
        // round, so instead of closing the policy's best-ranked device,
        // route it to the emptiest one — ascending modeled drain over the
        // policy's preferences, ties keeping the policy order. With no
        // backlog and no earlier-closed batches every drain is 0 and the
        // order is unchanged (single-slot fleets trivially so).
        std::stable_sort(prefs.begin(), prefs.end(),
                         [&](std::size_t a, std::size_t b) {
                           return view.drain_estimate_s(a) <
                                  view.drain_estimate_s(b);
                         });
      }

      bool placed = false;
      std::size_t placed_slot = 0;
      // A job is terminally unplaceable only when every preferred slot
      // proved it cannot host the job even alone; a slot that merely had a
      // full/closed/occupied batch defers the decision to a later round
      // (normal queueing — exactly the historical pack_batches rule).
      bool unfit_everywhere = true;
      // True once an earlier-preferred slot rejected the job for fit or
      // the §IV-B threshold: a subsequent placement is a cross-device
      // spill. Skipping a merely full/closed slot is queueing, not a
      // spill, and does not set this.
      bool rejected_earlier = false;

      for (const std::size_t s : prefs) {
        // Waiting behind a full batch is queueing, not a spill.
        if (closed[s] || batch[s].size() >= cap) {
          unfit_everywhere = false;
          // Queue-aware deferral: the policy already priced waiting into
          // its ranking, so when the best-ranked slot that can host the
          // job at all is busy this round, overflowing onto a worse-
          // ranked lane is modeled slower than waiting a round. Defer
          // instead — but only when the job actually fits on s
          // (memoized probe), else keep scanning.
          if (queue_aware && view.solo_efs(s, *job)) break;
          continue;
        }
        if (job->exclusive) {
          if (!batch[s].empty()) {
            unfit_everywhere = false;
            continue;
          }
          if (!view.solo_efs(s, *job)) continue;  // unfit alone on s
          batch[s].push_back(job);
          closed[s] = 1;
          placed = true;
          placed_slot = s;
          break;
        }

        // Grow slot s's open batch by this job through the slot's
        // admission probe: assignments come back in the same largest-
        // first order the execution pipeline will use, so the EFS we
        // threshold against is the EFS the job will actually get.
        const std::vector<PartitionAssignment>* alloc =
            probes[s].probe(job->shape);
        if (alloc == nullptr) {
          if (batch[s].empty()) continue;  // cannot fit even alone on s
          ++plan.spill_events;
          rejected_earlier = true;
          unfit_everywhere = false;
          continue;
        }
        unfit_everywhere = false;

        bool over_threshold = false;
        if (check_threshold && alloc->size() > 1) {
          const std::span<const std::size_t> order = probes[s].order();
          for (std::size_t pos = 0; pos < order.size() && !over_threshold;
               ++pos) {
            const PackJob& member = order[pos] == probes[s].size()
                                        ? *job
                                        : *batch[s][order[pos]];
            const auto solo = view.solo_efs(s, member);
            if (!solo) continue;  // batch-placeable implies solo-placeable
            const double delta = (*alloc)[pos].efs.score - *solo;
            over_threshold = delta > options.efs_threshold;
          }
        }
        if (over_threshold) {
          ++plan.spill_events;
          rejected_earlier = true;
          continue;
        }
        probes[s].admit();
        batch[s].push_back(job);
        placed = true;
        placed_slot = s;
        break;
      }

      if (placed) {
        if (rejected_earlier) ++plan.cross_device_spills;
        // §II-A waiting term at admission: everything modeled to run on
        // the lane before the batch this job just joined.
        const double wait = view.drain_estimate_s(placed_slot);
        plan.wait_sum_s[placed_slot] += wait;
        plan.wait_max_s[placed_slot] =
            std::max(plan.wait_max_s[placed_slot], wait);
        if (job->exclusive) {
          ++plan.reservation_jobs;
          plan.reservation_wait_sum_s += wait;
          plan.reservation_wait_max_s =
              std::max(plan.reservation_wait_max_s, wait);
        }
        LaneEstimate& lane = lanes[placed_slot];
        lane.open_jobs += 1;
        lane.open_max_ns = std::max(
            lane.open_max_ns, view.exec_estimate_ns(placed_slot, *job));
        if (policy != nullptr) policy->on_placed(placed_slot, *job);
        continue;
      }
      if (unfit_everywhere) {
        // Every candidate device rejected the job alone (or the policy
        // offered none): terminal.
        plan.unplaceable.push_back(job->index);
      } else {
        spilled.push_back(job);
      }
    }

    bool any_batch = false;
    for (std::size_t s = 0; s < num_slots; ++s) {
      if (batch[s].empty()) continue;
      any_batch = true;
      PackedBatch packed;
      for (const PackJob* job : batch[s]) packed.jobs.push_back(job->index);
      if (probes[s].size() == batch[s].size()) {
        // Every member was admitted through the probe (exclusive jobs
        // bypass it), so its committed assignments are exactly the
        // partitions the execution pipeline will re-derive — export them
        // as provenance for the service's sweep-bind fast path.
        packed.partitions = probes[s].admitted_partitions();
      }
      plan.batches[s].push_back(std::move(packed));
      // Close the round's open batch: its modeled runtime joins the lane's
      // planned drain, so the next round's admissions queue behind it.
      const double exec_s = job_runtime_s(model, lanes[s].open_max_ns);
      plan.batch_exec_s[s].push_back(exec_s);
      lanes[s].planned_closed_s += exec_s;
      lanes[s].open_jobs = 0;
      lanes[s].open_max_ns = 0.0;
    }
    if (!any_batch && !spilled.empty()) {
      // Unreachable by construction (the first remaining job either opens
      // a batch somewhere or is terminally unplaceable); guard against a
      // non-monotonic partitioner looping forever by failing what is left.
      for (const PackJob* job : spilled) {
        plan.unplaceable.push_back(job->index);
      }
      break;
    }
    remaining = std::move(spilled);
  }
  return plan;
}

FleetScheduler::FleetScheduler(const BackendRegistry& fleet,
                               RoutePolicy policy)
    : fleet_(&fleet), solo_cache_(fleet.size()) {
  if (fleet.empty()) {
    throw std::invalid_argument("FleetScheduler: empty fleet");
  }
  // Single-backend fleets route trivially; bypassing the policy keeps the
  // packing decision stream bit-identical to the historical pack_batches
  // path (including spill-event accounting).
  if (fleet.size() > 1) policy_ = make_routing_policy(policy);
}

FleetPlan FleetScheduler::plan(std::span<const PackJob> jobs,
                               const Partitioner& partitioner,
                               const PackOptions& options,
                               std::span<const double> initial_backlog_s) {
  // Pin each backend's calibration epoch for the whole cycle: routing,
  // admission probing and threshold checks all read one consistent
  // snapshot even if the backend recalibrates mid-plan, and the epochs
  // travel with the plan so dispatched batches execute against it too.
  std::vector<std::shared_ptr<const CalibrationEpoch>> epochs;
  epochs.reserve(fleet_->size());
  std::vector<FleetSlot> slots;
  slots.reserve(fleet_->size());
  for (std::size_t i = 0; i < fleet_->size(); ++i) {
    epochs.push_back(fleet_->at(i).epoch());
    const CalibrationEpoch& epoch = *epochs.back();
    if (solo_cache_[i].epoch_id != epoch.id()) {
      // The memoized solo-EFS scores were computed under a retired
      // calibration; drop them so the new epoch re-scores.
      solo_cache_[i].scores.clear();
      solo_cache_[i].epoch_id = epoch.id();
    }
    slots.push_back({&epoch.device(), &epoch.candidate_index(),
                     &solo_cache_[i].scores});
  }
  FleetPlan plan = pack_fleet(slots, jobs, partitioner, options, policy_.get(),
                              initial_backlog_s);
  plan.epochs = std::move(epochs);
  return plan;
}

}  // namespace qucp
