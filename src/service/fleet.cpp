#include "service/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace qucp {

std::optional<double> FleetView::solo_efs(std::size_t slot,
                                          const PackJob& job) const {
  // Does-not-fit is memoized as +infinity: EFS sums finite error terms, so
  // the sentinel can never collide with a real score, and BestEfs (which
  // probes every job on every device each round) never re-runs an
  // allocation that is known to fail.
  constexpr double kUnfit = std::numeric_limits<double>::infinity();
  std::map<std::uint64_t, double>& cache = *slots_[slot].solo_efs;
  if (auto it = cache.find(job.fingerprint); it != cache.end()) {
    if (it->second == kUnfit) return std::nullopt;
    return it->second;
  }
  const auto score = solo_efs_score(*slots_[slot].device, *partitioner_,
                                    job.shape, slots_[slot].index);
  cache.emplace(job.fingerprint, score.value_or(kUnfit));
  return score;
}

std::string_view route_policy_name(RoutePolicy policy) noexcept {
  switch (policy) {
    case RoutePolicy::RoundRobin: return "RoundRobin";
    case RoutePolicy::LeastLoaded: return "LeastLoaded";
    case RoutePolicy::BestEfs: return "BestEfs";
  }
  return "?";
}

void RoundRobinPolicy::preference(const FleetView& fleet, const PackJob& job,
                                  std::vector<std::size_t>& order) {
  // Rotate the starting slot by canonical queue position: stable across
  // packing rounds (a spilled job keeps its preference) and independent of
  // submission interleaving.
  const std::size_t n = fleet.size();
  order.resize(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = (job.index + i) % n;
}

void LeastLoadedPolicy::preference(const FleetView& fleet, const PackJob& job,
                                   std::vector<std::size_t>& order) {
  (void)job;
  const std::size_t n = fleet.size();
  if (load_.size() < n) load_.resize(n, 0);
  order.resize(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return load_[a] < load_[b];
                   });
}

void LeastLoadedPolicy::on_placed(std::size_t slot, const PackJob& job) {
  if (load_.size() <= slot) load_.resize(slot + 1, 0);
  load_[slot] += static_cast<std::uint64_t>(std::max(1, job.shape.num_qubits));
}

void BestEfsPolicy::preference(const FleetView& fleet, const PackJob& job,
                               std::vector<std::size_t>& order) {
  // Ascending best-solo-EFS (EFS accumulates *error*, so lowest is best);
  // devices the job cannot fit on are excluded, ties go to the lowest id.
  struct Scored {
    std::size_t slot;
    double score;
  };
  std::vector<Scored> scored;
  scored.reserve(fleet.size());
  for (std::size_t s = 0; s < fleet.size(); ++s) {
    if (const auto score = fleet.solo_efs(s, job)) {
      scored.push_back({s, *score});
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score < b.score;
                   });
  order.clear();
  for (const Scored& s : scored) order.push_back(s.slot);
}

std::unique_ptr<RoutingPolicy> make_routing_policy(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::RoundRobin: return std::make_unique<RoundRobinPolicy>();
    case RoutePolicy::LeastLoaded:
      return std::make_unique<LeastLoadedPolicy>();
    case RoutePolicy::BestEfs: return std::make_unique<BestEfsPolicy>();
  }
  throw std::logic_error("make_routing_policy: unhandled policy");
}

FleetPlan pack_fleet(std::span<const FleetSlot> slots,
                     std::span<const PackJob> jobs,
                     const Partitioner& partitioner,
                     const PackOptions& options, RoutingPolicy* policy) {
  FleetPlan plan;
  plan.batches.resize(slots.size());
  if (slots.empty() || jobs.empty()) return plan;

  if (options.single_batch) {
    // run_parallel() semantics: everything in exactly one batch on the
    // first slot; the execution pipeline fails the whole batch when it
    // does not fit.
    PackedBatch batch;
    for (const PackJob& job : jobs) batch.jobs.push_back(job.index);
    plan.batches[0].push_back(std::move(batch));
    return plan;
  }

  const std::size_t num_slots = slots.size();
  const std::size_t cap = options.max_batch_size <= 0
                              ? jobs.size()
                              : static_cast<std::size_t>(options.max_batch_size);
  const bool check_threshold = std::isfinite(options.efs_threshold);
  const FleetView view(slots, partitioner);

  std::vector<const PackJob*> remaining;
  remaining.reserve(jobs.size());
  for (const PackJob& job : jobs) remaining.push_back(&job);

  // Per-round open batch state, slot-indexed.
  std::vector<std::vector<const PackJob*>> batch(num_slots);
  std::vector<std::vector<ProgramShape>> batch_shapes(num_slots);
  std::vector<char> closed(num_slots, 0);
  std::vector<std::size_t> prefs;

  while (!remaining.empty()) {
    for (std::size_t s = 0; s < num_slots; ++s) {
      batch[s].clear();
      batch_shapes[s].clear();
      closed[s] = 0;
    }
    std::vector<const PackJob*> spilled;

    for (const PackJob* job : remaining) {
      prefs.clear();
      if (policy != nullptr) {
        policy->preference(view, *job, prefs);
      } else {
        for (std::size_t s = 0; s < num_slots; ++s) prefs.push_back(s);
      }

      bool placed = false;
      std::size_t placed_slot = 0;
      // A job is terminally unplaceable only when every preferred slot
      // proved it cannot host the job even alone; a slot that merely had a
      // full/closed/occupied batch defers the decision to a later round
      // (normal queueing — exactly the historical pack_batches rule).
      bool unfit_everywhere = true;
      // True once an earlier-preferred slot rejected the job for fit or
      // the §IV-B threshold: a subsequent placement is a cross-device
      // spill. Skipping a merely full/closed slot is queueing, not a
      // spill, and does not set this.
      bool rejected_earlier = false;

      for (const std::size_t s : prefs) {
        // Waiting behind a full batch is queueing, not a spill.
        if (closed[s] || batch[s].size() >= cap) {
          unfit_everywhere = false;
          continue;
        }
        if (job->exclusive) {
          if (!batch[s].empty()) {
            unfit_everywhere = false;
            continue;
          }
          if (!view.solo_efs(s, *job)) continue;  // unfit alone on s
          batch[s].push_back(job);
          batch_shapes[s].push_back(job->shape);
          closed[s] = 1;
          placed = true;
          placed_slot = s;
          break;
        }

        // Tentatively grow slot s's batch and re-allocate in the same
        // largest-first order the execution pipeline will use, so the EFS
        // we threshold against is the EFS the job will actually get.
        std::vector<ProgramShape> tentative_shapes = batch_shapes[s];
        tentative_shapes.push_back(job->shape);
        const std::vector<std::size_t> order =
            allocation_order(tentative_shapes);
        std::vector<ProgramShape> ordered_shapes;
        ordered_shapes.reserve(order.size());
        for (std::size_t idx : order) {
          ordered_shapes.push_back(tentative_shapes[idx]);
        }
        const auto alloc = partitioner.allocate(*slots[s].device,
                                                ordered_shapes, slots[s].index);
        if (!alloc) {
          if (batch[s].empty()) continue;  // cannot fit even alone on s
          ++plan.spill_events;
          rejected_earlier = true;
          unfit_everywhere = false;
          continue;
        }
        unfit_everywhere = false;

        bool over_threshold = false;
        if (check_threshold && tentative_shapes.size() > 1) {
          for (std::size_t pos = 0; pos < order.size() && !over_threshold;
               ++pos) {
            const PackJob& member = order[pos] == tentative_shapes.size() - 1
                                        ? *job
                                        : *batch[s][order[pos]];
            const auto solo = view.solo_efs(s, member);
            if (!solo) continue;  // batch-placeable implies solo-placeable
            const double delta = (*alloc)[pos].efs.score - *solo;
            over_threshold = delta > options.efs_threshold;
          }
        }
        if (over_threshold) {
          ++plan.spill_events;
          rejected_earlier = true;
          continue;
        }
        batch[s].push_back(job);
        batch_shapes[s].push_back(job->shape);
        placed = true;
        placed_slot = s;
        break;
      }

      if (placed) {
        if (rejected_earlier) ++plan.cross_device_spills;
        if (policy != nullptr) policy->on_placed(placed_slot, *job);
        continue;
      }
      if (unfit_everywhere) {
        // Every candidate device rejected the job alone (or the policy
        // offered none): terminal.
        plan.unplaceable.push_back(job->index);
      } else {
        spilled.push_back(job);
      }
    }

    bool any_batch = false;
    for (std::size_t s = 0; s < num_slots; ++s) {
      if (batch[s].empty()) continue;
      any_batch = true;
      PackedBatch packed;
      for (const PackJob* job : batch[s]) packed.jobs.push_back(job->index);
      plan.batches[s].push_back(std::move(packed));
    }
    if (!any_batch && !spilled.empty()) {
      // Unreachable by construction (the first remaining job either opens
      // a batch somewhere or is terminally unplaceable); guard against a
      // non-monotonic partitioner looping forever by failing what is left.
      for (const PackJob* job : spilled) {
        plan.unplaceable.push_back(job->index);
      }
      break;
    }
    remaining = std::move(spilled);
  }
  return plan;
}

FleetScheduler::FleetScheduler(const BackendRegistry& fleet,
                               RoutePolicy policy)
    : fleet_(&fleet), solo_cache_(fleet.size()) {
  if (fleet.empty()) {
    throw std::invalid_argument("FleetScheduler: empty fleet");
  }
  // Single-backend fleets route trivially; bypassing the policy keeps the
  // packing decision stream bit-identical to the historical pack_batches
  // path (including spill-event accounting).
  if (fleet.size() > 1) policy_ = make_routing_policy(policy);
}

FleetPlan FleetScheduler::plan(std::span<const PackJob> jobs,
                               const Partitioner& partitioner,
                               const PackOptions& options) {
  std::vector<FleetSlot> slots;
  slots.reserve(fleet_->size());
  for (std::size_t i = 0; i < fleet_->size(); ++i) {
    const Backend& backend = fleet_->at(i);
    slots.push_back({&backend.device(), &backend.candidate_index(),
                     &solo_cache_[i]});
  }
  return pack_fleet(slots, jobs, partitioner, options, policy_.get());
}

}  // namespace qucp
