#include "service/job.hpp"

#include <stdexcept>
#include <utility>

namespace qucp {

std::string_view job_status_name(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::Queued: return "queued";
    case JobStatus::Running: return "running";
    case JobStatus::Done: return "done";
    case JobStatus::Failed: return "failed";
  }
  return "?";
}

namespace detail {

void JobState::finish(JobResult r) {
  {
    std::lock_guard<std::mutex> lock(mutex);
    result = std::move(r);
    status = JobStatus::Done;
  }
  cv.notify_all();
}

void JobState::fail(std::string message) {
  {
    std::lock_guard<std::mutex> lock(mutex);
    error = std::move(message);
    status = JobStatus::Failed;
  }
  cv.notify_all();
}

void JobState::set_running() {
  {
    std::lock_guard<std::mutex> lock(mutex);
    status = JobStatus::Running;
  }
  cv.notify_all();
}

}  // namespace detail

const detail::JobState& JobHandle::state() const {
  if (!state_) throw std::logic_error("JobHandle: empty handle");
  return *state_;
}

JobStatus JobHandle::status() const {
  const detail::JobState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.status;
}

bool JobHandle::finished() const {
  const JobStatus s = status();
  return s == JobStatus::Done || s == JobStatus::Failed;
}

void JobHandle::wait() const {
  const detail::JobState& s = state();
  std::unique_lock<std::mutex> lock(s.mutex);
  s.cv.wait(lock, [&s] {
    return s.status == JobStatus::Done || s.status == JobStatus::Failed;
  });
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  const detail::JobState& s = state();
  std::unique_lock<std::mutex> lock(s.mutex);
  return s.cv.wait_for(lock, timeout, [&s] {
    return s.status == JobStatus::Done || s.status == JobStatus::Failed;
  });
}

const JobResult& JobHandle::result() const {
  wait();
  const detail::JobState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.status == JobStatus::Failed) {
    throw std::runtime_error(s.error);
  }
  return *s.result;
}

std::string JobHandle::error() const {
  const detail::JobState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  return s.error;
}

}  // namespace qucp
