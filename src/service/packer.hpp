#pragma once
// Online batch packer: groups queued jobs into parallel batches.
//
// Greedy policy in queue order: a job joins the current batch when (a) the
// partitioner can still place every member of the grown batch on the
// device, and (b) the paper's fidelity-threshold check passes — the job's
// estimated EFS in batch context may exceed its best solo EFS by at most
// `efs_threshold` (§IV-B: tau = 0 forces independent execution, larger tau
// trades fidelity for throughput). A job that fails either check spills to
// the next batch; a job that cannot be placed even alone is reported
// unplaceable. The scan never assumes the queue length is a multiple of
// the batch size — partial tail batches are first-class (the bug the old
// examples/cloud_queue.cpp slicing had).
//
// pack_batches() is the single-device entry point; the general N-device
// engine (one open batch per device, policy-routed preference order,
// cross-device spill) lives in service/fleet.hpp, and this function is its
// one-slot instantiation — decision-identical to the historical packer.
//
// Pure logic, no threads: the ExecutionService drives it under its own
// locking, and tests exercise it directly.

#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <vector>

#include "core/runtime.hpp"
#include "partition/partitioners.hpp"

namespace qucp {

struct PackJob {
  std::size_t index = 0;        ///< caller's identifier, echoed back
  ProgramShape shape;
  std::uint64_t fingerprint = 0;  ///< solo-EFS cache key
  bool exclusive = false;         ///< must run alone in its batch
  /// Structural fingerprint (parameter-blind). When nonzero, the planner
  /// keys its solo-EFS cache on this instead of `fingerprint`, since solo
  /// EFS depends only on shape and placement — a parameter sweep over one
  /// ansatz then scores once, not once per binding. Last field so
  /// positional aggregate initializers predating it stay valid.
  std::uint64_t structural_fp = 0;
};

struct PackedBatch {
  std::vector<std::size_t> jobs;  ///< PackJob::index values, queue order
  /// Partition each member was admitted on (parallel to `jobs`), exported
  /// from the admission probe when every member went through it. Empty
  /// when unavailable (single_batch packing, exclusive jobs — they bypass
  /// the probe). Consumers must re-derive partitions when empty; the
  /// service's sweep fast path additionally re-verifies these against the
  /// pipeline's own allocation before trusting a prebound transpile.
  std::vector<std::vector<int>> partitions;
};

struct PackResult {
  std::vector<PackedBatch> batches;      ///< dispatch order
  std::vector<std::size_t> unplaceable;  ///< jobs that do not fit even alone
  /// Co-placement rejections: the allocation failed or the EFS threshold
  /// tripped with co-runners present, deferring the job to a later batch.
  /// Waiting behind a batch that is simply full is not counted.
  std::uint64_t spill_events = 0;
};

struct PackOptions {
  int max_batch_size = 4;  ///< <= 0 means unbounded
  /// Max allowed (EFS in batch context) - (best solo EFS) before a
  /// co-placement is rejected. EFS measures accumulated *error*, so larger
  /// thresholds admit noisier packings. infinity() disables the check.
  double efs_threshold = std::numeric_limits<double>::infinity();
  /// Pack everything into exactly one batch with no feasibility checks;
  /// the execution pipeline then reports failure for the whole batch when
  /// it does not fit. This is run_parallel()'s historical contract.
  bool single_batch = false;
  /// Admission probes grow the open batch one job at a time through a
  /// persistent AllocationSession (AdmissionProbe, service/fleet.hpp)
  /// instead of re-allocating the whole batch from scratch per test.
  /// Decision- and bit-identical to the from-scratch path — same batches,
  /// same EFS doubles, same spill stream (golden-pinned in
  /// tests/test_fleet.cpp) — so this is purely a speed knob; off keeps
  /// the reference path for A/B tests.
  bool incremental_admission = true;
  /// Device-time model for the fleet packer's drain estimates (queue-aware
  /// routing, modeled-wait accounting). The service sets shots from its
  /// ExecOptions; queue_depth is ignored — queueing is what the estimates
  /// model. Does not influence packing decisions for time-blind policies.
  RuntimeModel runtime;
};

class CandidateIndex;  // partition/candidate_index.hpp

/// Pack `jobs` (already in the desired queue order) into batches.
/// `solo_efs_cache` memoizes best-solo-partition EFS per circuit
/// fingerprint across calls; pass a service-owned map. `index` (optional,
/// must match `device`) reuses the backend's persistent candidate cache
/// for the tentative allocations and solo-EFS probes; packing decisions
/// are identical with and without it. Not thread-safe — callers serialize
/// packing.
[[nodiscard]] PackResult pack_batches(
    const Device& device, std::span<const PackJob> jobs,
    const Partitioner& partitioner, const PackOptions& options,
    std::map<std::uint64_t, double>& solo_efs_cache,
    const CandidateIndex* index = nullptr);

}  // namespace qucp
