#pragma once
// Fleet scheduling: routing a job stream across N device endpoints.
//
// The paper frames multi-programming as a cloud-queue problem (overall
// runtime = waiting time + execution time, §II-A); one saturated chip next
// to idle ones is the fleet-level version of the same waste. This layer
// generalizes the single-device batch packer (service/packer.hpp) to N
// devices: every packing round keeps one open batch per device, and each
// job tries devices in a policy-chosen preference order before it spills
// to a later round. A job that would violate the §IV-B EFS threshold on
// its preferred chip therefore spills *cross-device* first — it lands on
// its second choice in the same round — and only defers when every open
// batch rejects it.
//
// Routing policies (pluggable, deterministic):
//   RoundRobin      — rotate the starting device by canonical queue
//                     position; throughput-first, calibration-blind.
//   LeastLoaded     — ascending routed-qubit load (cumulative per
//                     scheduler), ties to the lowest id; balances
//                     heterogeneous job sizes.
//   BestEfs         — ascending best-solo-EFS of the job on each device
//                     (partition/solo_efs_score, memoized per device);
//                     routes every job to the chip where its accumulated
//                     error is lowest, fidelity-first. Devices the job
//                     cannot fit on are excluded.
//   ExpectedLatency — ascending modeled completion time (§II-A: waiting +
//                     execution). The wait term is the slot's modeled
//                     drain — backlog already dispatched to the lane plus
//                     batches planned earlier this cycle — and the
//                     execution term is the runtime of the open batch the
//                     job would join, under the calibration-dependent
//                     makespan estimate modeled_exec_ns(). Joining an
//                     occupied open batch whose makespan already covers
//                     the job is nearly free, while opening a fresh batch
//                     behind a backlog is charged in full, so the policy
//                     is queue-aware where BestEfs/LeastLoaded are time-
//                     blind. Unfit devices are excluded. Validated
//                     offline by the src/fleetsim/ discrete-event
//                     simulator, whose ExpectedLatency mirrors this rule.
//
// pack_fleet() is the shared engine: with one slot and no policy it makes
// exactly the decisions pack_batches() historically made — pack_batches()
// is now a thin wrapper over it — so the single-backend ExecutionService
// and the run_parallel() shim stay bit-identical by construction.
//
// Determinism: policies see only the canonical job order and per-device
// state derived from it, so for a fixed fleet and fixed dispatch-cycle
// contents the full plan (slot, batch, order) is reproducible regardless
// of submission interleaving.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/runtime.hpp"
#include "service/packer.hpp"
#include "service/registry.hpp"

namespace qucp {

/// One schedulable device endpoint, as the fleet packer sees it. `index`
/// (optional) must have been built for `device`; `solo_efs` (required) is
/// the per-device memo of best-solo-EFS scores keyed by the job's
/// structural fingerprint (falling back to the exact circuit fingerprint
/// when the submitter leaves it zero) — the §IV-B spill baseline and the
/// BestEfs routing score.
struct FleetSlot {
  const Device* device = nullptr;
  const CandidateIndex* index = nullptr;
  std::map<std::uint64_t, double>* solo_efs = nullptr;
};

/// Calibration-dependent modeled makespan (ns) of a program shape on a
/// device: width-normalized serial gate time plus readout. A ranking
/// proxy, not a schedule — the same formula applied across devices makes
/// per-device duration calibration (CX/1q/readout times) the
/// discriminator, which is all the ExpectedLatency policy and the
/// service's queue-wait accounting need. The offline fleet simulator can
/// substitute exact transpile + ALAP-schedule makespans for the same
/// slot (see bench/bench_fleetsim.cpp).
[[nodiscard]] double modeled_exec_ns(const Device& device,
                                     const ProgramShape& shape);

/// Incremental grow-one-job admission probe for one slot's open batch.
///
/// The packer's admission test asks "does job J fit in this device's open
/// batch, and at what EFS?". The from-scratch answer re-allocates the
/// whole grown batch per probe (O(batch) allocations x N devices x
/// rounds). This probe keeps a persistent AllocationSession mirroring the
/// open batch's commits and, when the probed shape sorts last in
/// allocation_order (the common case: allocation order is
/// largest-first, and the §IV-B spill stream tends to present jobs in
/// shrinking shape order within a batch), extends it with a single
/// Partitioner::grow_one step — the earlier members' assignments are the
/// greedy prefix replay, which is bit-identical by construction, so only
/// the new job is allocated. A probe that would land mid-order (or a
/// partitioner/slot without incremental support) falls back to the
/// reference from-scratch allocation; either way the produced assignment
/// vector and order are bit-identical to the historical path, which
/// tests/test_fleet.cpp pins golden-style over randomized streams on all
/// bundled topologies.
class AdmissionProbe {
 public:
  /// `incremental` off forces the from-scratch path for every probe (the
  /// reference arm of the golden A/B tests).
  AdmissionProbe(const FleetSlot& slot, const Partitioner& partitioner,
                 bool incremental);
  ~AdmissionProbe();
  AdmissionProbe(AdmissionProbe&&) noexcept;
  AdmissionProbe& operator=(AdmissionProbe&&) noexcept;

  /// Test admitting `shape` as the next member of the open batch. On
  /// success returns the assignments of the grown batch in allocation
  /// order (use order() to map positions back to admission order); null
  /// when the grown batch cannot be placed. The pointer is valid until
  /// the next probe()/admit()/reset().
  [[nodiscard]] const std::vector<PartitionAssignment>* probe(
      const ProgramShape& shape);

  /// Admission-order index of each ordered assignment from the last
  /// successful probe; the value size() marks the probed shape itself.
  [[nodiscard]] std::span<const std::size_t> order() const noexcept {
    return pending_order_;
  }

  /// Commit the last successful probe into the open batch.
  void admit();

  /// Forget the open batch (the round closed it / a new round starts).
  void reset();

  /// Jobs admitted to the open batch so far.
  [[nodiscard]] std::size_t size() const noexcept { return shapes_.size(); }

  /// Qubit partition of each admitted job, in admission order (the
  /// allocation-order assignments mapped back through order()). Used by
  /// pack_fleet to export per-job partition provenance on closed batches.
  [[nodiscard]] std::vector<std::vector<int>> admitted_partitions() const;

 private:
  void rebuild_session();

  const FleetSlot* slot_;
  const Partitioner* partitioner_;
  bool incremental_;
  std::vector<ProgramShape> shapes_;  ///< open batch, admission order
  std::vector<std::size_t> order_;    ///< == allocation_order(shapes_)
  std::vector<PartitionAssignment> assignments_;  ///< allocation order
  /// Session mirroring assignments_ commits; rebuilt lazily after a
  /// mid-order (from-scratch) admission invalidates it.
  std::unique_ptr<AllocationSession> session_;
  bool session_valid_ = false;
  // Last probe, pending until admit()/reset().
  std::vector<PartitionAssignment> pending_assignments_;
  std::vector<std::size_t> pending_order_;
  ProgramShape pending_shape_;
  bool pending_fast_ = false;
  bool has_pending_ = false;
};

/// Modeled drain state of one slot's lane during a packing cycle: the
/// backlog already dispatched to the lane when the cycle started, the
/// batches closed by earlier rounds of this cycle, and the open batch
/// being grown. Maintained by pack_fleet; read through FleetView by
/// queue-aware policies and the wait accounting.
struct LaneEstimate {
  double initial_backlog_s = 0.0;  ///< dispatched, unfinished at cycle start
  double planned_closed_s = 0.0;   ///< batches closed earlier this cycle
  int open_jobs = 0;               ///< jobs in the open batch
  double open_max_ns = 0.0;        ///< max modeled makespan in the open batch
};

/// Read-mostly view of the fleet handed to routing policies and used by
/// the packer's threshold checks. Probes are memoized in each slot's
/// solo-EFS map, so routing and spill checks share one score per
/// (device, circuit) pair. When constructed by pack_fleet the view also
/// exposes the per-slot drain/occupancy estimators queue-aware policies
/// score with; the two-argument form (tests, ad-hoc probing) reports an
/// idle fleet.
class FleetView {
 public:
  FleetView(std::span<const FleetSlot> slots, const Partitioner& partitioner,
            std::span<const LaneEstimate> lanes = {},
            const RuntimeModel* model = nullptr, int max_batch_size = 0);

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] const Device& device(std::size_t slot) const {
    return *slots_[slot].device;
  }
  /// Best solo EFS of `job` on `slot`'s device; nullopt = does not fit
  /// even alone. Memoized in the slot's map by structural fingerprint
  /// (exact fingerprint when the job carries none).
  [[nodiscard]] std::optional<double> solo_efs(std::size_t slot,
                                               const PackJob& job) const;

  /// Modeled seconds until `slot` would start a batch opened now: initial
  /// backlog plus the batches planned earlier this cycle. This is also
  /// the modeled wait a job admitted to the slot's open batch incurs.
  [[nodiscard]] double drain_estimate_s(std::size_t slot) const;
  /// Jobs in the slot's open batch this packing round.
  [[nodiscard]] int open_jobs(std::size_t slot) const;
  /// modeled_exec_ns() of `job` on the slot's device (per-slot duration
  /// averages are cached in the view).
  [[nodiscard]] double exec_estimate_ns(std::size_t slot,
                                        const PackJob& job) const;
  /// §II-A modeled completion time were `job` admitted to `slot` now:
  /// drain_estimate_s + the runtime of the batch it would join (the open
  /// batch while it has room, else a fresh one behind it).
  [[nodiscard]] double expected_latency_s(std::size_t slot,
                                          const PackJob& job) const;

 private:
  std::span<const FleetSlot> slots_;
  const Partitioner* partitioner_;
  std::span<const LaneEstimate> lanes_;
  const RuntimeModel* model_ = nullptr;
  int max_batch_size_ = 0;  ///< <= 0 means unbounded
  /// Per-slot mean CX duration (ns), computed once per view.
  std::vector<double> avg_cx_ns_;
};

/// How a multi-backend ExecutionService picks a device for each job.
enum class RoutePolicy { RoundRobin, LeastLoaded, BestEfs, ExpectedLatency };

[[nodiscard]] std::string_view route_policy_name(RoutePolicy policy) noexcept;

/// Pluggable routing strategy. `preference` fills `order` with slot ids in
/// try order (a strict subset excludes devices the policy rules out — an
/// empty order marks the job unplaceable); it is called once per job per
/// packing round and must be deterministic in (its own state, the fleet,
/// the job). `on_placed` observes every successful placement, in canonical
/// job order, for load accounting.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual void preference(const FleetView& fleet, const PackJob& job,
                          std::vector<std::size_t>& order) = 0;
  virtual void on_placed(std::size_t slot, const PackJob& job) {
    (void)slot;
    (void)job;
  }
  /// True when the preference order already prices queueing (waiting
  /// behind full batches and backlogs). The packer then DEFERS a job to
  /// the next round when its preferred fitting slot's batch is full,
  /// instead of overflowing onto a worse-ranked (possibly catastrophically
  /// backlogged) lane — for a queue-aware order, every later preference
  /// is modeled slower than simply waiting. Time-blind policies keep the
  /// historical overflow behavior.
  [[nodiscard]] virtual bool queue_aware() const noexcept { return false; }
};

class RoundRobinPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "RoundRobin";
  }
  void preference(const FleetView& fleet, const PackJob& job,
                  std::vector<std::size_t>& order) override;
};

class LeastLoadedPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LeastLoaded";
  }
  void preference(const FleetView& fleet, const PackJob& job,
                  std::vector<std::size_t>& order) override;
  void on_placed(std::size_t slot, const PackJob& job) override;

 private:
  /// Cumulative routed qubit load per slot (qubit-weighted so one wide job
  /// counts like several narrow ones). Grown on first use.
  std::vector<std::uint64_t> load_;
};

class BestEfsPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "BestEfs";
  }
  void preference(const FleetView& fleet, const PackJob& job,
                  std::vector<std::size_t>& order) override;
};

/// Queue-aware routing: ascending FleetView::expected_latency_s, unfit
/// devices excluded, ties to the lowest id. Stateless — all load state
/// lives in the lane estimates pack_fleet maintains.
class ExpectedLatencyPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "ExpectedLatency";
  }
  void preference(const FleetView& fleet, const PackJob& job,
                  std::vector<std::size_t>& order) override;
  [[nodiscard]] bool queue_aware() const noexcept override { return true; }
};

[[nodiscard]] std::unique_ptr<RoutingPolicy> make_routing_policy(
    RoutePolicy policy);

/// A fleet packing plan: per-slot batches in dispatch order, plus the
/// terminal failures and spill accounting.
struct FleetPlan {
  std::vector<std::vector<PackedBatch>> batches;  ///< [slot][dispatch order]
  std::vector<std::size_t> unplaceable;  ///< fits on no fleet device, alone
  /// Fidelity/fit co-placement rejections (same semantics as PackResult).
  std::uint64_t spill_events = 0;
  /// Placements that followed a fit/threshold rejection on an
  /// earlier-preferred device — the cross-device spills that kept the
  /// §IV-B threshold intact without deferring the job. Skipping a merely
  /// full batch on the way to another device is queueing, not a spill,
  /// and is not counted.
  std::uint64_t cross_device_spills = 0;
  /// Modeled execution seconds per planned batch, aligned with `batches`
  /// (job_runtime_s of the batch's max modeled makespan). The service
  /// adds these to its per-lane backlog at dispatch and removes them at
  /// completion, closing the loop for the next cycle's wait estimates.
  std::vector<std::vector<double>> batch_exec_s;
  /// Per-slot modeled queue wait at admission (§II-A waiting term): for
  /// every job placed on the slot this cycle, the drain estimate it was
  /// admitted behind. Sum and max feed ServiceStats so online estimates
  /// can be audited against realized batch order.
  std::vector<double> wait_sum_s;
  std::vector<double> wait_max_s;
  /// Reservation lane: exclusive jobs placed this cycle (each claims a
  /// whole device for its round, routed to the lowest-modeled-drain slot
  /// among its policy preferences), and the modeled wait each reservation
  /// was admitted behind — the §II-A cost of idling a chip for one job.
  std::uint64_t reservation_jobs = 0;
  double reservation_wait_sum_s = 0.0;
  double reservation_wait_max_s = 0.0;
  /// Calibration epoch each slot was planned under, one entry per slot
  /// when the plan came from FleetScheduler::plan (raw pack_fleet calls
  /// leave it empty — their slots' lifetimes are the caller's problem).
  /// The service attaches epochs[s] to every batch dispatched to slot s,
  /// so a batch executes against exactly the calibration its partitions
  /// and EFS scores were computed from, even if the backend recalibrates
  /// between planning and execution.
  std::vector<std::shared_ptr<const CalibrationEpoch>> epochs;
};

/// Pack `jobs` (already in the desired queue order) across `slots`.
/// `policy` == nullptr routes every job through slots in id order (the
/// single-slot instantiation of this engine IS pack_batches).
/// `initial_backlog_s` (empty, or one modeled-seconds entry per slot)
/// seeds each lane's drain estimate with work already dispatched to it.
/// Not thread-safe — callers serialize packing.
[[nodiscard]] FleetPlan pack_fleet(
    std::span<const FleetSlot> slots, std::span<const PackJob> jobs,
    const Partitioner& partitioner, const PackOptions& options,
    RoutingPolicy* policy = nullptr,
    std::span<const double> initial_backlog_s = {});

/// The service-side orchestrator: owns the routing policy and the
/// per-backend solo-EFS memos for a BackendRegistry, and turns a pending
/// job list into a FleetPlan. Single-backend fleets bypass the policy
/// (routing is trivial and must stay decision-identical to the historical
/// pack_batches path). Not thread-safe — the ExecutionService serializes
/// planning under its pack mutex.
class FleetScheduler {
 public:
  FleetScheduler(const BackendRegistry& fleet, RoutePolicy policy);

  /// `initial_backlog_s` — see pack_fleet. The service passes each lane's
  /// modeled dispatched-but-unfinished work so ExpectedLatency routing and
  /// the wait accounting see queue state across dispatch cycles.
  [[nodiscard]] FleetPlan plan(std::span<const PackJob> jobs,
                               const Partitioner& partitioner,
                               const PackOptions& options,
                               std::span<const double> initial_backlog_s = {});

  /// Active policy; nullptr on single-backend fleets.
  [[nodiscard]] RoutingPolicy* policy() noexcept { return policy_.get(); }

 private:
  /// Per-backend solo-EFS memo, keyed by the calibration epoch it was
  /// scored under: plan() pins each backend's current epoch, and a memo
  /// whose epoch_id no longer matches is discarded wholesale — a
  /// recalibrated chip re-scores from scratch instead of routing on stale
  /// fidelity numbers.
  struct SoloCache {
    std::uint64_t epoch_id = 0;
    std::map<std::uint64_t, double> scores;  ///< circuit fp -> best solo EFS
  };

  const BackendRegistry* fleet_;
  std::unique_ptr<RoutingPolicy> policy_;
  std::vector<SoloCache> solo_cache_;  ///< per backend
};

}  // namespace qucp
