#pragma once
// Fleet scheduling: routing a job stream across N device endpoints.
//
// The paper frames multi-programming as a cloud-queue problem (overall
// runtime = waiting time + execution time, §II-A); one saturated chip next
// to idle ones is the fleet-level version of the same waste. This layer
// generalizes the single-device batch packer (service/packer.hpp) to N
// devices: every packing round keeps one open batch per device, and each
// job tries devices in a policy-chosen preference order before it spills
// to a later round. A job that would violate the §IV-B EFS threshold on
// its preferred chip therefore spills *cross-device* first — it lands on
// its second choice in the same round — and only defers when every open
// batch rejects it.
//
// Routing policies (pluggable, deterministic):
//   RoundRobin  — rotate the starting device by canonical queue position;
//                 throughput-first, calibration-blind.
//   LeastLoaded — ascending routed-qubit load (cumulative per scheduler),
//                 ties to the lowest id; balances heterogeneous job sizes.
//   BestEfs     — ascending best-solo-EFS of the job on each device
//                 (partition/solo_efs_score, memoized per device); routes
//                 every job to the chip where its accumulated error is
//                 lowest, fidelity-first. Devices the job cannot fit on
//                 are excluded.
//
// pack_fleet() is the shared engine: with one slot and no policy it makes
// exactly the decisions pack_batches() historically made — pack_batches()
// is now a thin wrapper over it — so the single-backend ExecutionService
// and the run_parallel() shim stay bit-identical by construction.
//
// Determinism: policies see only the canonical job order and per-device
// state derived from it, so for a fixed fleet and fixed dispatch-cycle
// contents the full plan (slot, batch, order) is reproducible regardless
// of submission interleaving.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "service/packer.hpp"
#include "service/registry.hpp"

namespace qucp {

/// One schedulable device endpoint, as the fleet packer sees it. `index`
/// (optional) must have been built for `device`; `solo_efs` (required) is
/// the per-device memo of best-solo-EFS scores keyed by circuit
/// fingerprint — the §IV-B spill baseline and the BestEfs routing score.
struct FleetSlot {
  const Device* device = nullptr;
  const CandidateIndex* index = nullptr;
  std::map<std::uint64_t, double>* solo_efs = nullptr;
};

/// Read-mostly view of the fleet handed to routing policies and used by
/// the packer's threshold checks. Probes are memoized in each slot's
/// solo-EFS map, so routing and spill checks share one score per
/// (device, circuit) pair.
class FleetView {
 public:
  FleetView(std::span<const FleetSlot> slots, const Partitioner& partitioner)
      : slots_(slots), partitioner_(&partitioner) {}

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] const Device& device(std::size_t slot) const {
    return *slots_[slot].device;
  }
  /// Best solo EFS of `job` on `slot`'s device; nullopt = does not fit
  /// even alone. Memoized by circuit fingerprint in the slot's map.
  [[nodiscard]] std::optional<double> solo_efs(std::size_t slot,
                                               const PackJob& job) const;

 private:
  std::span<const FleetSlot> slots_;
  const Partitioner* partitioner_;
};

/// How a multi-backend ExecutionService picks a device for each job.
enum class RoutePolicy { RoundRobin, LeastLoaded, BestEfs };

[[nodiscard]] std::string_view route_policy_name(RoutePolicy policy) noexcept;

/// Pluggable routing strategy. `preference` fills `order` with slot ids in
/// try order (a strict subset excludes devices the policy rules out — an
/// empty order marks the job unplaceable); it is called once per job per
/// packing round and must be deterministic in (its own state, the fleet,
/// the job). `on_placed` observes every successful placement, in canonical
/// job order, for load accounting.
class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  virtual void preference(const FleetView& fleet, const PackJob& job,
                          std::vector<std::size_t>& order) = 0;
  virtual void on_placed(std::size_t slot, const PackJob& job) {
    (void)slot;
    (void)job;
  }
};

class RoundRobinPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "RoundRobin";
  }
  void preference(const FleetView& fleet, const PackJob& job,
                  std::vector<std::size_t>& order) override;
};

class LeastLoadedPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "LeastLoaded";
  }
  void preference(const FleetView& fleet, const PackJob& job,
                  std::vector<std::size_t>& order) override;
  void on_placed(std::size_t slot, const PackJob& job) override;

 private:
  /// Cumulative routed qubit load per slot (qubit-weighted so one wide job
  /// counts like several narrow ones). Grown on first use.
  std::vector<std::uint64_t> load_;
};

class BestEfsPolicy final : public RoutingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "BestEfs";
  }
  void preference(const FleetView& fleet, const PackJob& job,
                  std::vector<std::size_t>& order) override;
};

[[nodiscard]] std::unique_ptr<RoutingPolicy> make_routing_policy(
    RoutePolicy policy);

/// A fleet packing plan: per-slot batches in dispatch order, plus the
/// terminal failures and spill accounting.
struct FleetPlan {
  std::vector<std::vector<PackedBatch>> batches;  ///< [slot][dispatch order]
  std::vector<std::size_t> unplaceable;  ///< fits on no fleet device, alone
  /// Fidelity/fit co-placement rejections (same semantics as PackResult).
  std::uint64_t spill_events = 0;
  /// Placements that followed a fit/threshold rejection on an
  /// earlier-preferred device — the cross-device spills that kept the
  /// §IV-B threshold intact without deferring the job. Skipping a merely
  /// full batch on the way to another device is queueing, not a spill,
  /// and is not counted.
  std::uint64_t cross_device_spills = 0;
};

/// Pack `jobs` (already in the desired queue order) across `slots`.
/// `policy` == nullptr routes every job through slots in id order (the
/// single-slot instantiation of this engine IS pack_batches). Not
/// thread-safe — callers serialize packing.
[[nodiscard]] FleetPlan pack_fleet(std::span<const FleetSlot> slots,
                                   std::span<const PackJob> jobs,
                                   const Partitioner& partitioner,
                                   const PackOptions& options,
                                   RoutingPolicy* policy = nullptr);

/// The service-side orchestrator: owns the routing policy and the
/// per-backend solo-EFS memos for a BackendRegistry, and turns a pending
/// job list into a FleetPlan. Single-backend fleets bypass the policy
/// (routing is trivial and must stay decision-identical to the historical
/// pack_batches path). Not thread-safe — the ExecutionService serializes
/// planning under its pack mutex.
class FleetScheduler {
 public:
  FleetScheduler(const BackendRegistry& fleet, RoutePolicy policy);

  [[nodiscard]] FleetPlan plan(std::span<const PackJob> jobs,
                               const Partitioner& partitioner,
                               const PackOptions& options);

  /// Active policy; nullptr on single-backend fleets.
  [[nodiscard]] RoutingPolicy* policy() noexcept { return policy_.get(); }

 private:
  const BackendRegistry* fleet_;
  std::unique_ptr<RoutingPolicy> policy_;
  std::vector<std::map<std::uint64_t, double>> solo_cache_;  ///< per backend
};

}  // namespace qucp
