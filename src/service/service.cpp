#include "service/service.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <map>
#include <stdexcept>
#include <utility>

#include "common/rng.hpp"
#include "core/runtime.hpp"
#include "sim/kernels.hpp"
#include "sim/statevector.hpp"

namespace qucp {

namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ull;

constexpr auto mix = fnv1a_mix;

/// Fingerprint of everything besides (circuit, partition) that can change
/// a transpilation result: method presets, optimize flags, the CNA
/// crosstalk context, and the SRB estimates the CNA router reads.
std::uint64_t transpile_options_fp(
    Method method, double sigma, bool optimize,
    std::span<const int> context_edges,
    const std::optional<CrosstalkModel>& estimates) {
  std::uint64_t h = kFnv1aBasis;
  h = mix(h, static_cast<std::uint64_t>(method));
  h = mix(h, std::bit_cast<std::uint64_t>(sigma));
  h = mix(h, optimize ? 1 : 0);
  h = mix(h, context_edges.size());
  for (int e : context_edges) h = mix(h, static_cast<std::uint64_t>(e));
  if (estimates) {
    for (const auto& [e1, e2, gamma] : estimates->pairs()) {
      h = mix(h, static_cast<std::uint64_t>(e1));
      h = mix(h, static_cast<std::uint64_t>(e2));
      h = mix(h, std::bit_cast<std::uint64_t>(gamma));
    }
  }
  return h;
}

}  // namespace

BatchReport run_batch_pipeline(Backend& backend,
                               const std::vector<Circuit>& programs,
                               const std::vector<std::string>& names,
                               const ParallelOptions& options) {
  // Pin the backend's current epoch for the whole pipeline: partitioning,
  // transpilation and execution all read one calibration snapshot even if
  // the backend recalibrates mid-call.
  return run_batch_pipeline(*backend.epoch(), programs, names, options);
}

BatchReport run_batch_pipeline(const CalibrationEpoch& epoch,
                               const std::vector<Circuit>& programs,
                               const std::vector<std::string>& names,
                               const ParallelOptions& options,
                               PreboundTranspiles* prebound) {
  if (programs.empty()) {
    throw std::invalid_argument("run_batch_pipeline: no programs");
  }
  // Cap kernel threading for the whole pipeline, not just the noisy
  // executor: the ideal_distribution() statevector passes below also
  // engage parallel_for on wide programs.
  const kern::ParallelThreadsGuard thread_cap(options.exec.kernel_threads);
  const Device& device = epoch.device();

  // Partition in QuMC's largest-first order.
  std::vector<ProgramShape> shapes;
  shapes.reserve(programs.size());
  for (const Circuit& c : programs) shapes.push_back(shape_of(c));
  const std::vector<std::size_t> order = allocation_order(shapes);
  std::vector<ProgramShape> ordered_shapes;
  ordered_shapes.reserve(shapes.size());
  for (std::size_t idx : order) ordered_shapes.push_back(shapes[idx]);

  const auto partitioner =
      make_partitioner(options.method, options.sigma, options.srb_estimates);
  const auto allocations = partitioner->allocate(
      device, ordered_shapes, &epoch.candidate_index());
  if (!allocations) {
    throw std::runtime_error("run_batch_pipeline: batch does not fit on " +
                             device.name());
  }
  // Assignment per original program index.
  std::vector<PartitionAssignment> assignment(programs.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    assignment[order[pos]] = (*allocations)[pos];
  }

  // Transpile each program onto its partition, through the backend's
  // cache. CNA builds its gate-level crosstalk context from all co-runner
  // partitions, which therefore participates in the cache key.
  std::vector<PhysicalProgram> physical(programs.size());
  std::vector<int> swaps(programs.size(), 0);
  std::vector<std::vector<int>> layouts(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    TranspileOptions topts;
    std::vector<int> context;
    if (options.method == Method::CNA) {
      for (std::size_t j = 0; j < programs.size(); ++j) {
        if (j == i) continue;
        const auto edges =
            device.topology().induced_edges(assignment[j].qubits);
        context.insert(context.end(), edges.begin(), edges.end());
      }
      topts = cna_options(context, options.srb_estimates
                                       ? &*options.srb_estimates
                                       : nullptr);
    } else {
      topts = hardware_aware_options();
    }
    topts.optimize_input = options.optimize_circuits;
    topts.optimize_output = options.optimize_circuits;
    const std::uint64_t opts_fp = transpile_options_fp(
        options.method, options.sigma, options.optimize_circuits, context,
        options.srb_estimates);
    TranspiledProgram tp;
    if (prebound != nullptr && i < prebound->programs.size() &&
        prebound->programs[i].has_value() &&
        prebound->partitions[i] == assignment[i].qubits) {
      // Sweep fast path: dispatch already probed the epoch cache for this
      // job's structure and bound its template batch-at-a-time against
      // this exact partition, so the per-job cache round-trip is skipped
      // entirely. The partition equality check above makes this
      // unconditional-safe: any divergence between the pack-time
      // allocation and this pipeline's falls through to the normal path.
      tp = *std::move(prebound->programs[i]);
    } else {
      tp = epoch.transpile(programs[i], assignment[i].qubits, topts, opts_fp);
    }
    swaps[i] = tp.swaps_added;
    layouts[i] = tp.final_layout;
    std::string name = (i < names.size() && !names[i].empty())
                           ? names[i]
                           : programs[i].name();
    if (name.empty()) name = "program" + std::to_string(i);
    physical[i] = {std::move(tp.physical), std::move(name)};
  }

  const ParallelRunReport run = epoch.execute(physical, options.exec);

  BatchReport report;
  report.throughput = run.throughput;
  report.makespan_ns = run.makespan_ns;
  report.crosstalk_events = run.crosstalk_events;
  report.programs.resize(programs.size());
  for (std::size_t i = 0; i < programs.size(); ++i) {
    ProgramReport& pr = report.programs[i];
    pr.name = run.programs[i].name;
    pr.partition = assignment[i].qubits;
    pr.final_layout = layouts[i];
    pr.efs = assignment[i].efs.score;
    pr.swaps_added = swaps[i];
    // Fused, backend-cached ideal pipeline: repeated submissions of the
    // same circuit replay a precompiled kernel stream (sim/fusion.hpp).
    // Sweep jobs carry their group's fusion plan from dispatch, so the
    // reference program materializes directly — no per-job fingerprint
    // hashing or program-cache lock. Bit-identical to the cached path.
    if (prebound != nullptr && i < prebound->plans.size() &&
        prebound->plans[i] != nullptr) {
      pr.ideal = ideal_distribution(
          CompiledProgram::materialize(*prebound->plans[i], programs[i]));
    } else {
      pr.ideal = ideal_distribution(*epoch.compiled_program(programs[i]));
    }
    pr.noisy = run.programs[i].distribution;
    pr.counts = run.programs[i].counts;
    pr.jsd_value = jsd(pr.noisy, pr.ideal);
    pr.pst_value = pst(pr.noisy, pr.ideal.most_likely());
  }

  // Modeled runtime reduction: N queued jobs vs one batch job.
  RuntimeModel model;
  model.shots = options.exec.shots;
  std::vector<double> solo_makespans;
  for (const PhysicalProgram& prog : physical) {
    solo_makespans.push_back(
        schedule_circuit(prog.circuit, device, options.exec.schedule)
            .makespan_ns);
  }
  report.runtime_reduction =
      serial_runtime_s(model, solo_makespans) /
      parallel_runtime_s(model, run.makespan_ns);
  return report;
}

ExecutionService::ExecutionService(Device device, ServiceOptions options)
    : ExecutionService(
          std::make_shared<Backend>(std::move(device),
                                    options.transpile_cache_capacity,
                                    options.parametric_transpile),
          std::move(options)) {}

ExecutionService::ExecutionService(std::shared_ptr<Backend> backend,
                                   ServiceOptions options)
    : ExecutionService(
          BackendRegistry(std::vector<std::shared_ptr<Backend>>{
              std::move(backend)}),
          std::move(options)) {}

ExecutionService::ExecutionService(BackendRegistry fleet,
                                   ServiceOptions options)
    : fleet_(std::move(fleet)), options_(std::move(options)) {
  if (fleet_.empty()) {
    throw std::invalid_argument("ExecutionService: empty backend registry");
  }
  // Fail configuration errors at construction, not at execution: QuMC
  // without SRB estimates throws std::invalid_argument here. The
  // partitioner also drives the packer.
  partitioner_ = make_partitioner(options_.method, options_.sigma,
                                  options_.srb_estimates);
  scheduler_ =
      std::make_unique<FleetScheduler>(fleet_, options_.route_policy);
  options_.num_workers = std::max(1, options_.num_workers);
  if (options_.submit_shards == 0) {
    // Adaptive intake sharding: one shard per hardware thread, rounded up
    // to a power of two, clamped to [8, 64] (see ServiceOptions). Plans
    // are shard-layout independent, so this only moves contention.
    const auto hw =
        static_cast<std::size_t>(std::thread::hardware_concurrency());
    options_.submit_shards =
        std::clamp<std::size_t>(std::bit_ceil(hw), 8, 64);
  }
  options_.submit_shards = std::max<std::size_t>(1, options_.submit_shards);
  intake_ = std::make_unique<detail::ShardedIntake>(
      options_.submit_shards, options_.submit_shard_capacity);
  lanes_.reserve(fleet_.size());
  for (std::size_t i = 0; i < fleet_.size(); ++i) {
    lanes_.push_back(
        std::make_unique<Lane>(fleet_.share(i), static_cast<int>(i)));
  }
  start_workers();
}

ExecutionService::~ExecutionService() {
  try {
    shutdown();
  } catch (...) {
    // Destructors must not throw; pending jobs were already failed or the
    // process is tearing down anyway.
  }
}

void ExecutionService::start_workers() {
  for (auto& lane : lanes_) {
    lane->workers.reserve(static_cast<std::size_t>(options_.num_workers));
    for (int i = 0; i < options_.num_workers; ++i) {
      lane->workers.emplace_back([this, &lane = *lane] { worker_loop(lane); });
    }
  }
}

namespace {

/// RAII submit gate: counts the caller into active_submits before reading
/// the accepting flag (both seq_cst), so shutdown()'s store-then-wait
/// sequence either rejects this submit or waits for it to finish
/// publishing — a published job can never be stranded behind a shutdown.
class SubmitGate {
 public:
  SubmitGate(std::atomic<bool>& accepting, std::atomic<std::size_t>& active)
      : active_(active) {
    active_.fetch_add(1);
    if (!accepting.load()) {
      active_.fetch_sub(1);
      throw std::runtime_error(
          "ExecutionService::submit: service is shut down");
    }
  }
  ~SubmitGate() { active_.fetch_sub(1); }
  SubmitGate(const SubmitGate&) = delete;
  SubmitGate& operator=(const SubmitGate&) = delete;

 private:
  std::atomic<std::size_t>& active_;
};

}  // namespace

void ExecutionService::maybe_auto_flush(std::size_t pending_now) {
  if (options_.auto_flush_batch_size > 0 &&
      pending_now >= options_.auto_flush_batch_size) {
    dispatch_pending();
  }
}

void ExecutionService::enqueue_job(const JobPtr& state, std::size_t shard) {
  state->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
  while (!intake_->try_push(state, shard)) {
    // Ring full: backpressure. Drain the rings ourselves (one pack/
    // dispatch cycle) and retry — producers never block on a lock and
    // jobs are never dropped.
    dispatch_pending();
  }
  maybe_auto_flush(pending_count_.fetch_add(1, std::memory_order_acq_rel) +
                   1);
}

JobHandle ExecutionService::submit(Circuit circuit, JobOptions options) {
  auto state = std::make_shared<detail::JobState>();
  state->fingerprint = circuit_fingerprint(circuit);
  state->structural_fp = structural_fingerprint(circuit);
  state->name = options.name.empty() ? circuit.name() : options.name;
  state->exclusive = options.exclusive;
  state->circuit = std::move(circuit);
  const SubmitGate gate(accepting_, active_submits_);
  enqueue_job(state, intake_->home_shard());
  return JobHandle(state);
}

std::vector<JobHandle> ExecutionService::submit_all(
    std::vector<Circuit> circuits) {
  std::vector<JobPtr> states;
  states.reserve(circuits.size());
  for (Circuit& c : circuits) {
    auto state = std::make_shared<detail::JobState>();
    state->fingerprint = circuit_fingerprint(c);
    state->structural_fp = structural_fingerprint(c);
    state->name = c.name();
    state->circuit = std::move(c);
    // Construction order = id order for this producer, so the contiguous
    // ticket blocks below publish in id order like a submit() loop would.
    state->id = next_job_id_.fetch_add(1, std::memory_order_relaxed);
    states.push_back(std::move(state));
  }

  // Sweep detection: >= 2 jobs of one structural fingerprint in a single
  // submitted vector, each with parameters to rebind, is parameter-sweep
  // traffic — mark it so dispatch can probe the transpile cache once per
  // (structure, partition) group and bind templates batch-at-a-time.
  // Only submit_all() marks (the caller declared these jobs related);
  // single-shot submit() traffic stays byte-for-byte on the per-job path.
  {
    std::map<std::uint64_t, std::size_t> structure_counts;
    for (const JobPtr& state : states) ++structure_counts[state->structural_fp];
    for (const JobPtr& state : states) {
      if (structure_counts[state->structural_fp] < 2) continue;
      const auto& ops = state->circuit.ops();
      const bool has_params =
          std::any_of(ops.begin(), ops.end(),
                      [](const Gate& g) { return !g.params.empty(); });
      state->sweep = has_params;
    }
  }

  const SubmitGate gate(accepting_, active_submits_);
  const std::size_t shard = intake_->home_shard();
  if (states.size() <= intake_->shard_capacity()) {
    // Fits in one lap: the all-or-nothing block push either publishes the
    // whole vector or backpressures without touching the ring.
    const std::span<const JobPtr> block(states);
    while (!intake_->try_push_block(block, shard)) {
      dispatch_pending();  // backpressure, as in enqueue_job
    }
    maybe_auto_flush(pending_count_.fetch_add(states.size(),
                                              std::memory_order_acq_rel) +
                     states.size());
  } else {
    // Oversized batch: reserve the whole multi-lap ticket span up front —
    // ids stay contiguous with no chunk seam another same-shard producer
    // could land inside — then publish cell by cell. A cell whose earlier
    // lap has not been consumed yet backpressures us into draining the
    // rings ourselves (we publish in ascending ticket order, so our own
    // published prefix is always drainable and frees the cells we need).
    const std::uint64_t base =
        intake_->reserve_span(states.size(), shard);
    std::size_t published_unflushed = 0;
    for (std::size_t i = 0; i < states.size(); ++i) {
      while (!intake_->try_publish_at(base + i, states[i], shard)) {
        // Make our published prefix visible to pending_jobs()/auto-flush
        // accounting before draining it.
        pending_count_.fetch_add(published_unflushed,
                                 std::memory_order_acq_rel);
        published_unflushed = 0;
        dispatch_pending();
      }
      ++published_unflushed;
    }
    maybe_auto_flush(pending_count_.fetch_add(published_unflushed,
                                              std::memory_order_acq_rel) +
                     published_unflushed);
  }

  std::vector<JobHandle> handles;
  handles.reserve(states.size());
  for (JobPtr& state : states) handles.push_back(JobHandle(std::move(state)));
  return handles;
}

std::size_t ExecutionService::cancel_pending() {
  // pack_mutex_ makes us the single intake consumer and serializes against
  // dispatch cycles, so a job is either cancelled here or packed there —
  // never both.
  std::lock_guard<std::mutex> pack_lock(pack_mutex_);
  std::vector<JobPtr> jobs;
  intake_->drain(jobs);
  if (jobs.empty()) return 0;
  pending_count_.fetch_sub(jobs.size(), std::memory_order_acq_rel);
  for (const JobPtr& job : jobs) {
    job->fail("job '" + job->name + "' cancelled before dispatch");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_cancelled_ += jobs.size();
    jobs_failed_ += jobs.size();
  }
  return jobs.size();
}

void ExecutionService::dispatch_pending() {
  std::lock_guard<std::mutex> pack_lock(pack_mutex_);
  std::vector<JobPtr> jobs;
  // Deterministic shard-then-ticket drain under pack_mutex_ (the single
  // consumer). The canonical/FIFO sort below is a total order over the
  // drained set, so the plan does not depend on the drain layout.
  const std::size_t drained = intake_->drain(jobs);
  if (drained != 0) {
    pending_count_.fetch_sub(drained, std::memory_order_acq_rel);
  }
  if (jobs.empty()) return;

  if (options_.order == JobOrder::Canonical) {
    std::sort(jobs.begin(), jobs.end(), [](const JobPtr& a, const JobPtr& b) {
      if (a->fingerprint != b->fingerprint) {
        return a->fingerprint < b->fingerprint;
      }
      if (a->name != b->name) return a->name < b->name;
      return a->id < b->id;
    });
  } else {
    // pending_ is appended under the same lock that assigns ids, so jobs
    // are already in submission order; keep it explicit regardless.
    std::sort(jobs.begin(), jobs.end(),
              [](const JobPtr& a, const JobPtr& b) { return a->id < b->id; });
  }

  std::vector<PackJob> pack_jobs;
  pack_jobs.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pack_jobs.push_back({i, shape_of(jobs[i]->circuit), jobs[i]->fingerprint,
                         jobs[i]->exclusive, jobs[i]->structural_fp});
  }
  PackOptions popts;
  popts.max_batch_size = options_.max_batch_size;
  popts.efs_threshold = options_.efs_threshold;
  popts.single_batch = options_.single_batch;
  popts.incremental_admission = options_.incremental_admission;
  popts.runtime.shots = options_.exec.shots;
  // Snapshot each lane's modeled backlog so queue-aware routing and the
  // wait accounting see work dispatched in earlier cycles. Read under the
  // lane mutexes but used under pack_mutex_, so concurrent completions can
  // only make the snapshot conservative (stale-high), never inconsistent
  // with the plan that consumes it. With realized-duration feedback on,
  // the snapshot is scaled by the lane's observed realized/modeled ratio
  // so routing prices how the lane actually drains, not just the model.
  std::vector<double> backlogs(lanes_.size(), 0.0);
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    std::lock_guard<std::mutex> lane_lock(lanes_[i]->mutex);
    backlogs[i] = lanes_[i]->backlog_s;
    if (options_.feed_realized_durations) {
      backlogs[i] *= lanes_[i]->realized_ratio;
    }
  }
  const FleetPlan plan =
      scheduler_->plan(pack_jobs, *partitioner_, popts, backlogs);

  for (std::size_t idx : plan.unplaceable) {
    const std::string where =
        fleet_.size() == 1
            ? backend(0).device().name()
            : "any of the " + std::to_string(fleet_.size()) + " fleet devices";
    jobs[idx]->fail("job '" + jobs[idx]->name + "' does not fit on " + where +
                    " even alone");
  }

  // Count every planned job into outstanding_jobs_ BEFORE any batch
  // becomes visible to a worker: a fast lane finishing its batch must not
  // be able to decrement past the increment and wake a concurrent flush()
  // while work from this dispatch is still running.
  std::size_t dispatched = 0;
  for (const auto& slot_batches : plan.batches) {
    for (const PackedBatch& pb : slot_batches) dispatched += pb.jobs.size();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    jobs_failed_ += plan.unplaceable.size();
    spill_events_ += plan.spill_events;
    cross_device_spills_ += plan.cross_device_spills;
    reservation_jobs_ += plan.reservation_jobs;
    reservation_wait_sum_s_ += plan.reservation_wait_sum_s;
    reservation_wait_max_s_ =
        std::max(reservation_wait_max_s_, plan.reservation_wait_max_s);
    outstanding_jobs_ += dispatched;
  }

  // Sweep fast path: group sweep-marked jobs in this plan by (slot,
  // structure, admitted partition), probe each epoch's transpile cache
  // once per group and bind the group's templates batch-at-a-time
  // (CalibrationEpoch::transpile_sweep — one epoch pin, one cache/lock
  // acquisition, N binds). The prebound programs ride on the batches and
  // run_batch_pipeline re-verifies each recorded partition against its
  // own allocation before use, so results and cache counters are exactly
  // what the per-job path produces. CNA is excluded: its options
  // fingerprint folds in per-batch co-runner context, so there is no
  // batch-independent key to group under; single_batch plans carry no
  // partition provenance and skip naturally.
  std::vector<std::vector<PreboundTranspiles>> prebound(plan.batches.size());
  std::vector<std::uint64_t> slot_sweep_groups(plan.batches.size(), 0);
  std::vector<std::uint64_t> slot_batched_binds(plan.batches.size(), 0);
  const bool sweep_eligible = options_.parametric_transpile &&
                              options_.transpile_cache_capacity > 0 &&
                              options_.method != Method::CNA &&
                              !options_.single_batch;
  if (sweep_eligible) {
    TranspileOptions topts = hardware_aware_options();
    topts.optimize_input = options_.optimize_circuits;
    topts.optimize_output = options_.optimize_circuits;
    const std::uint64_t opts_fp = transpile_options_fp(
        options_.method, options_.sigma, options_.optimize_circuits,
        std::span<const int>{}, options_.srb_estimates);
    for (std::size_t s = 0; s < plan.batches.size(); ++s) {
      struct Target {
        std::size_t batch;
        std::size_t pos;
        std::size_t job;
      };
      std::map<std::pair<std::uint64_t, std::vector<int>>, std::vector<Target>>
          groups;
      for (std::size_t b = 0; b < plan.batches[s].size(); ++b) {
        const PackedBatch& pb = plan.batches[s][b];
        if (pb.partitions.size() != pb.jobs.size()) continue;
        for (std::size_t pos = 0; pos < pb.jobs.size(); ++pos) {
          const JobPtr& job = jobs[pb.jobs[pos]];
          if (!job->sweep) continue;
          groups[{job->structural_fp, pb.partitions[pos]}].push_back(
              Target{b, pos, pb.jobs[pos]});
        }
      }
      if (groups.empty()) continue;
      prebound[s].resize(plan.batches[s].size());
      std::vector<const Circuit*> circuits;
      std::vector<TranspiledProgram> bound;
      for (auto& [group_key, targets] : groups) {
        if (targets.size() < 2) continue;  // nothing to amortize
        circuits.clear();
        circuits.reserve(targets.size());
        for (const Target& t : targets) circuits.push_back(&jobs[t.job]->circuit);
        plan.epochs[s]->transpile_sweep(circuits, group_key.second, topts,
                                        opts_fp, bound);
        // One fusion-plan fetch for the whole group (memoized per
        // structure): the pipeline's scoring pass materializes each
        // job's ideal-reference program from it directly.
        const std::shared_ptr<const FusionPlan> fusion_plan =
            plan.epochs[s]->program_cache().plan(*circuits.front());
        ++slot_sweep_groups[s];
        slot_batched_binds[s] += targets.size();
        for (std::size_t t = 0; t < targets.size(); ++t) {
          PreboundTranspiles& pre = prebound[s][targets[t].batch];
          if (pre.empty()) {
            pre.programs.resize(plan.batches[s][targets[t].batch].jobs.size());
            pre.partitions.resize(pre.programs.size());
            pre.plans.resize(pre.programs.size());
          }
          pre.programs[targets[t].pos] = std::move(bound[t]);
          pre.partitions[targets[t].pos] = group_key.second;
          pre.plans[targets[t].pos] = fusion_plan;
        }
      }
    }
  }

  const std::uint64_t num_lanes = lanes_.size();
  for (std::size_t s = 0; s < plan.batches.size(); ++s) {
    Lane& lane = *lanes_[s];
    if (plan.batches[s].empty()) continue;
    {
      std::lock_guard<std::mutex> lane_lock(lane.mutex);
      for (std::size_t b = 0; b < plan.batches[s].size(); ++b) {
        const PackedBatch& pb = plan.batches[s][b];
        Batch batch;
        batch.index = lane.next_ordinal++ * num_lanes +
                      static_cast<std::uint64_t>(lane.id);
        batch.modeled_exec_s = plan.batch_exec_s[s][b];
        // Pin the plan-time epoch: the batch executes against the exact
        // calibration its partitions and EFS admissions were computed
        // from, even if the backend recalibrates before a worker gets to
        // it.
        batch.epoch = plan.epochs[s];
        batch.jobs.reserve(pb.jobs.size());
        for (std::size_t idx : pb.jobs) batch.jobs.push_back(jobs[idx]);
        if (b < prebound[s].size()) {
          batch.prebound = std::move(prebound[s][b]);
        }
        lane.jobs_routed += batch.jobs.size();
        lane.backlog_s += batch.modeled_exec_s;
        inflight_batches_.fetch_add(1, std::memory_order_relaxed);
        lane.queue.push_back(std::move(batch));
      }
      lane.wait_sum_s += plan.wait_sum_s[s];
      lane.wait_max_s = std::max(lane.wait_max_s, plan.wait_max_s[s]);
      lane.sweep_groups += slot_sweep_groups[s];
      lane.batched_binds += slot_batched_binds[s];
    }
    lane.cv.notify_all();
  }
  if (dispatched == 0) drained_cv_.notify_all();
}

void ExecutionService::worker_loop(Lane& lane) {
  for (;;) {
    Batch batch;
    {
      std::unique_lock<std::mutex> lock(lane.mutex);
      lane.cv.wait(lock, [&] { return lane.stop || !lane.queue.empty(); });
      if (lane.queue.empty()) {
        if (lane.stop) return;
        continue;
      }
      batch = std::move(lane.queue.front());
      lane.queue.pop_front();
    }
    // This batch is still counted in inflight_batches_ until it finishes,
    // so the load reads as "batches that want the machine right now",
    // fleet-wide across every lane.
    const std::size_t pool =
        static_cast<std::size_t>(options_.num_workers) * lanes_.size();
    const std::size_t inflight =
        std::max<std::size_t>(1, inflight_batches_.load(
                                     std::memory_order_relaxed));
    const int concurrency = static_cast<int>(std::min(pool, inflight));
    execute_batch(lane, std::move(batch), concurrency);
  }
}

void ExecutionService::execute_batch(Lane& lane, Batch batch,
                                     int concurrency) {
  for (const JobPtr& job : batch.jobs) job->set_running();

  std::vector<Circuit> circuits;
  std::vector<std::string> names;
  circuits.reserve(batch.jobs.size());
  names.reserve(batch.jobs.size());
  for (const JobPtr& job : batch.jobs) {
    circuits.push_back(job->circuit);
    names.push_back(job->name);
  }

  ParallelOptions popts;
  popts.method = options_.method;
  popts.sigma = options_.sigma;
  popts.exec = options_.exec;
  popts.srb_estimates = options_.srb_estimates;
  popts.optimize_circuits = options_.optimize_circuits;
  // Decorrelate batches fleet-wide while keeping batch 0 of lane 0 on the
  // caller's exact seed (the run_parallel() shim runs as that batch and
  // must stay bit-identical to the historical single-shot behavior).
  popts.exec.seed = options_.exec.seed + kGolden * batch.index;
  // Unless the caller pinned a kernel-thread cap, share the machine across
  // the batches actually running: N concurrent batch simulations each with
  // a full-width parallel_for would oversubscribe the cores N-fold, while
  // a lone batch should keep the whole machine.
  if (popts.exec.kernel_threads == 0 && concurrency > 1) {
    popts.exec.kernel_threads =
        std::max(1, kern::parallel_threads() / concurrency);
  }

  // Only read the clock when realized-duration feedback is on: the
  // modeled-only mode must not depend on timing in any way.
  const bool feed_realized = options_.feed_realized_durations;
  std::chrono::steady_clock::time_point wall_start;
  if (feed_realized) wall_start = std::chrono::steady_clock::now();

  std::size_t failed = 0;
  try {
    const BatchReport report = run_batch_pipeline(
        *batch.epoch, circuits, names, popts,
        batch.prebound.empty() ? nullptr : &batch.prebound);
    BatchStats stats;
    stats.batch_index = batch.index;
    stats.backend_id = lane.id;
    stats.backend_device = batch.epoch->device().name();
    stats.batch_size = batch.jobs.size();
    stats.makespan_ns = report.makespan_ns;
    stats.throughput = report.throughput;
    stats.crosstalk_events = report.crosstalk_events;
    stats.runtime_reduction = report.runtime_reduction;
    for (std::size_t i = 0; i < batch.jobs.size(); ++i) {
      batch.jobs[i]->finish({report.programs[i], stats});
    }
  } catch (const std::exception& e) {
    for (const JobPtr& job : batch.jobs) job->fail(e.what());
    failed = batch.jobs.size();
  } catch (...) {
    // A non-std exception escaping the worker would std::terminate.
    for (const JobPtr& job : batch.jobs) {
      job->fail("batch execution failed with a non-standard exception");
    }
    failed = batch.jobs.size();
  }

  double realized_s = 0.0;
  if (feed_realized) {
    realized_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();
  }
  // A batch that outlived its epoch completed against its pack-time
  // calibration while the backend already serves a newer one — the
  // overlap live recalibration exists to permit. Counted under the lane
  // mutex below.
  const bool stale_epoch = batch.epoch->id() != lane.backend->epoch_id();

  {
    std::lock_guard<std::mutex> lane_lock(lane.mutex);
    ++lane.batches_executed;
    lane.jobs_failed += failed;
    lane.jobs_completed += batch.jobs.size() - failed;
    // Clamp: float summation drift must never leave a phantom backlog sign
    // flip behind for the next dispatch cycle's wait estimates.
    lane.backlog_s = std::max(0.0, lane.backlog_s - batch.modeled_exec_s);
    if (stale_epoch) ++lane.stale_epoch_batches;
    if (feed_realized) {
      lane.realized_exec_sum_s += realized_s;
      ++lane.realized_batches;
      if (batch.modeled_exec_s > 0.0) {
        // EWMA with alpha = 0.2: smooths per-batch wall-clock jitter while
        // still tracking a lane whose real drain speed shifts.
        constexpr double kAlpha = 0.2;
        const double ratio = realized_s / batch.modeled_exec_s;
        lane.realized_ratio =
            (1.0 - kAlpha) * lane.realized_ratio + kAlpha * ratio;
      }
    }
  }
  inflight_batches_.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++batches_executed_;
    jobs_failed_ += failed;
    jobs_completed_ += batch.jobs.size() - failed;
    outstanding_jobs_ -= batch.jobs.size();
  }
  drained_cv_.notify_all();
}

void ExecutionService::wait_for_drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  drained_cv_.wait(lock, [this] { return outstanding_jobs_ == 0; });
}

void ExecutionService::flush() {
  dispatch_pending();
  wait_for_drain();
}

void ExecutionService::shutdown() {
  // Close the gate, then wait for in-flight submits to finish publishing
  // (see SubmitGate): after the spin no new job can reach the rings, so
  // the flush below drains everything ever accepted.
  accepting_.store(false);
  while (active_submits_.load() != 0) std::this_thread::yield();
  flush();
  for (auto& lane : lanes_) {
    {
      std::lock_guard<std::mutex> lane_lock(lane->mutex);
      lane->stop = true;
    }
    lane->cv.notify_all();
  }
  for (auto& lane : lanes_) {
    for (std::thread& worker : lane->workers) {
      if (worker.joinable()) worker.join();
    }
    lane->workers.clear();
  }
}

ServiceStats ExecutionService::stats() const {
  ServiceStats stats;
  stats.jobs_submitted = next_job_id_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.jobs_completed = jobs_completed_;
    stats.jobs_failed = jobs_failed_;
    stats.jobs_cancelled = jobs_cancelled_;
    stats.batches_executed = batches_executed_;
    stats.spill_events = spill_events_;
    stats.cross_device_spills = cross_device_spills_;
    stats.reservation_jobs = reservation_jobs_;
    stats.reservation_wait_sum_s = reservation_wait_sum_s_;
    stats.reservation_wait_max_s = reservation_wait_max_s_;
  }
  stats.backends.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    BackendStats bs;
    bs.backend_id = lane->id;
    // One epoch pin for the whole row, so device/epoch/cache fields are
    // mutually consistent even against a concurrent recalibrate().
    const auto epoch = lane->backend->epoch();
    bs.device = epoch->device().name();
    bs.transpile_cache = epoch->cache_stats();
    bs.calibration_epoch = epoch->id();
    bs.recalibrations = lane->backend->recalibrations();
    bs.recalibration_build_s = lane->backend->recalibration_build_s();
    {
      std::lock_guard<std::mutex> lane_lock(lane->mutex);
      bs.jobs_routed = lane->jobs_routed;
      bs.jobs_completed = lane->jobs_completed;
      bs.jobs_failed = lane->jobs_failed;
      bs.batches_executed = lane->batches_executed;
      bs.modeled_wait_sum_s = lane->wait_sum_s;
      bs.modeled_wait_max_s = lane->wait_max_s;
      bs.modeled_backlog_s = lane->backlog_s;
      bs.stale_epoch_batches = lane->stale_epoch_batches;
      bs.realized_exec_sum_s = lane->realized_exec_sum_s;
      bs.realized_batches = lane->realized_batches;
      bs.realized_ratio = lane->realized_ratio;
      bs.sweep_groups = lane->sweep_groups;
      bs.batched_binds = lane->batched_binds;
    }
    stats.sweep_groups += bs.sweep_groups;
    stats.batched_binds += bs.batched_binds;
    stats.recalibrations += bs.recalibrations;
    stats.recalibration_build_s += bs.recalibration_build_s;
    stats.stale_epoch_batches += bs.stale_epoch_batches;
    stats.transpile_cache.hits += bs.transpile_cache.hits;
    stats.transpile_cache.misses += bs.transpile_cache.misses;
    stats.transpile_cache.evictions += bs.transpile_cache.evictions;
    stats.transpile_cache.entries += bs.transpile_cache.entries;
    stats.transpile_cache.structural_hits += bs.transpile_cache.structural_hits;
    stats.transpile_cache.bind_fallbacks += bs.transpile_cache.bind_fallbacks;
    stats.transpile_cache.bind_ns += bs.transpile_cache.bind_ns;
    stats.backends.push_back(std::move(bs));
  }
  return stats;
}

std::size_t ExecutionService::pending_jobs() const {
  return pending_count_.load(std::memory_order_acquire);
}

double modeled_fleet_drain_s(std::span<const JobHandle> handles,
                             std::size_t num_backends,
                             const RuntimeModel& model) {
  if (num_backends == 0) {
    throw std::invalid_argument("modeled_fleet_drain_s: no backends");
  }
  std::map<std::pair<int, std::uint64_t>, double> batch_makespans;
  for (const JobHandle& handle : handles) {
    if (!handle.valid() || handle.status() != JobStatus::Done) continue;
    const BatchStats& batch = handle.result().batch;
    batch_makespans[{batch.backend_id, batch.batch_index}] =
        batch.makespan_ns;
  }
  if (batch_makespans.empty()) {
    // Returning 0 here would turn a fully-failed job set into an infinite
    // "speedup" in every caller's ratio; fail loudly instead.
    throw std::invalid_argument(
        "modeled_fleet_drain_s: no completed jobs in the handle set");
  }
  std::vector<double> occupancy(num_backends, 0.0);
  for (const auto& [key, makespan_ns] : batch_makespans) {
    occupancy.at(static_cast<std::size_t>(key.first)) +=
        parallel_runtime_s(model, makespan_ns);
  }
  return *std::max_element(occupancy.begin(), occupancy.end());
}

}  // namespace qucp
