#pragma once
// Measurement (readout) error mitigation — the tensored calibration-matrix
// method the paper cites among QEM techniques (Bravyi et al. [2]).
//
// Each measured qubit gets a 2x2 confusion matrix M with
// M[observed][prepared]; the mitigated distribution applies M^-1 per bit,
// clips small negative probabilities and renormalizes. Matrices can be
// taken directly from calibration data or *characterized* by running the
// two basis-state calibration circuits through the noisy executor, the
// way one would on hardware.

#include <vector>

#include "hardware/device.hpp"
#include "sim/counts.hpp"
#include "sim/executor.hpp"

namespace qucp {

/// Per-qubit readout confusion matrices for an ordered set of measured
/// bits.
class ReadoutMitigator {
 public:
  /// Build from known calibration: symmetric flip probability per qubit.
  /// `flip_probs[b]` is the assignment error of measured bit b.
  [[nodiscard]] static ReadoutMitigator from_flip_probs(
      std::vector<double> flip_probs);

  /// Build directly from the device for physical qubits `qubits` (bit b of
  /// mitigated outcomes corresponds to qubits[b]).
  [[nodiscard]] static ReadoutMitigator from_device(
      const Device& device, const std::vector<int>& qubits);

  /// Characterize by experiment: prepare |0...0> and |1...1> on the given
  /// physical qubits and estimate per-qubit flip rates from the executor's
  /// sampled counts (asymmetric errors supported by the estimate).
  [[nodiscard]] static ReadoutMitigator characterize(
      const Device& device, const std::vector<int>& qubits,
      const ExecOptions& options);

  [[nodiscard]] int num_bits() const {
    return static_cast<int>(p01_.size());
  }
  /// P(read 0 | prepared 1) of bit b.
  [[nodiscard]] double p01(int bit) const { return p01_.at(bit); }
  /// P(read 1 | prepared 0) of bit b.
  [[nodiscard]] double p10(int bit) const { return p10_.at(bit); }

  /// Invert the confusion model on a distribution (bit b of outcomes =
  /// calibrated bit b). Negative probabilities from the inversion are
  /// clipped before renormalization.
  [[nodiscard]] Distribution mitigate(const Distribution& dist) const;

  /// Convenience: mitigate raw counts.
  [[nodiscard]] Distribution mitigate(const Counts& counts) const;

 private:
  ReadoutMitigator(std::vector<double> p01, std::vector<double> p10);

  std::vector<double> p01_;  // P(0|1) per bit
  std::vector<double> p10_;  // P(1|0) per bit
};

}  // namespace qucp
