#include "mitigation/readout.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace qucp {

ReadoutMitigator::ReadoutMitigator(std::vector<double> p01,
                                   std::vector<double> p10)
    : p01_(std::move(p01)), p10_(std::move(p10)) {
  if (p01_.size() != p10_.size() || p01_.empty()) {
    throw std::invalid_argument("ReadoutMitigator: bad flip vectors");
  }
  for (std::size_t b = 0; b < p01_.size(); ++b) {
    if (p01_[b] < 0.0 || p10_[b] < 0.0 || p01_[b] + p10_[b] >= 1.0) {
      throw std::invalid_argument(
          "ReadoutMitigator: confusion matrix not invertible");
    }
  }
}

ReadoutMitigator ReadoutMitigator::from_flip_probs(
    std::vector<double> flip_probs) {
  std::vector<double> p01 = flip_probs;
  return ReadoutMitigator(std::move(p01), std::move(flip_probs));
}

ReadoutMitigator ReadoutMitigator::from_device(
    const Device& device, const std::vector<int>& qubits) {
  std::vector<double> flips;
  flips.reserve(qubits.size());
  for (int q : qubits) flips.push_back(device.readout_error(q));
  return from_flip_probs(std::move(flips));
}

ReadoutMitigator ReadoutMitigator::characterize(const Device& device,
                                                const std::vector<int>& qubits,
                                                const ExecOptions& options) {
  if (qubits.empty()) {
    throw std::invalid_argument("ReadoutMitigator: no qubits");
  }
  const int n = static_cast<int>(qubits.size());
  // Calibration circuit 1: all-zeros. Circuit 2: all-ones.
  auto run_basis = [&](bool ones) {
    Circuit c(device.num_qubits(), n,
              ones ? "readout_cal_1" : "readout_cal_0");
    for (int b = 0; b < n; ++b) {
      if (ones) c.x(qubits[b]);
      c.measure(qubits[b], b);
    }
    ExecOptions exec = options;
    // Only readout noise matters for the estimate; keep gate noise as
    // configured (an X error folds into the estimate, as on hardware).
    return execute_single(device, c, exec);
  };
  const ProgramOutcome zeros = run_basis(false);
  const ProgramOutcome ones = run_basis(true);

  std::vector<double> p10(n, 0.0);
  std::vector<double> p01(n, 0.0);
  for (int b = 0; b < n; ++b) {
    double read1_given0 = 0.0;
    for (const auto& [outcome, p] : zeros.distribution.probs()) {
      if ((outcome >> b) & 1U) read1_given0 += p;
    }
    double read0_given1 = 0.0;
    for (const auto& [outcome, p] : ones.distribution.probs()) {
      if (!((outcome >> b) & 1U)) read0_given1 += p;
    }
    p10[b] = std::clamp(read1_given0, 0.0, 0.49);
    p01[b] = std::clamp(read0_given1, 0.0, 0.49);
  }
  return ReadoutMitigator(std::move(p01), std::move(p10));
}

Distribution ReadoutMitigator::mitigate(const Distribution& dist) const {
  const int n = num_bits();
  if (dist.num_bits() < n) {
    throw std::invalid_argument("ReadoutMitigator: distribution too narrow");
  }
  const std::size_t dim = std::size_t{1} << n;
  std::vector<double> probs(dim, 0.0);
  for (const auto& [outcome, p] : dist.probs()) {
    if (outcome >> n) {
      throw std::invalid_argument(
          "ReadoutMitigator: outcome outside calibrated bits");
    }
    probs[outcome] = p;
  }
  // Apply the per-bit inverse confusion matrix:
  //   M = [[1-p10, p01], [p10, 1-p01]],  M^-1 = 1/det [[1-p01, -p01],
  //                                                    [-p10, 1-p10]]
  for (int b = 0; b < n; ++b) {
    const double det = 1.0 - p01_[b] - p10_[b];
    const std::size_t mask = std::size_t{1} << b;
    for (std::size_t x = 0; x < dim; ++x) {
      if (x & mask) continue;
      const double m0 = probs[x];
      const double m1 = probs[x | mask];
      probs[x] = ((1.0 - p01_[b]) * m0 - p01_[b] * m1) / det;
      probs[x | mask] = (-p10_[b] * m0 + (1.0 - p10_[b]) * m1) / det;
    }
  }
  // Clip and renormalize.
  std::vector<Distribution::Entry> out;
  double total = 0.0;
  for (std::size_t x = 0; x < dim; ++x) {
    if (probs[x] > 0.0) {
      out.emplace_back(x, probs[x]);
      total += probs[x];
    }
  }
  if (total <= 0.0) {
    throw std::runtime_error("ReadoutMitigator: mitigation emptied support");
  }
  return Distribution(dist.num_bits(), std::move(out));
}

Distribution ReadoutMitigator::mitigate(const Counts& counts) const {
  return mitigate(counts.to_distribution());
}

}  // namespace qucp
