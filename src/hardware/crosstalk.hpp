#pragma once
// Ground-truth crosstalk model.
//
// Physically, simultaneous CNOTs on edge pairs at one-hop distance can
// degrade each other (Sheldon et al.; Murali et al. report error-rate
// ratios of 2-11x on IBM devices). The Device carries this model as hidden
// ground truth: the noisy simulator consults it to amplify CX depolarizing
// rates when two CNOTs overlap in time, and SRB *estimates* it by
// experiment. QuCP never reads it — that is the point of the paper.

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "hardware/topology.hpp"

namespace qucp {

class Rng;

class CrosstalkModel {
 public:
  CrosstalkModel() = default;

  /// Register mutual crosstalk between edge ids e1, e2 with multiplier
  /// gamma >= 1 (applied to both edges' CX error when overlapping).
  void add_pair(int e1, int e2, double gamma);

  /// Multiplier for simultaneous execution on edges e1, e2 (1.0 = none).
  [[nodiscard]] double gamma(int e1, int e2) const;

  /// All registered pairs with their multipliers, canonical order.
  [[nodiscard]] std::vector<std::tuple<int, int, double>> pairs() const;

  [[nodiscard]] bool empty() const noexcept { return gamma_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return gamma_.size(); }

 private:
  static std::pair<int, int> key(int e1, int e2) {
    return e1 < e2 ? std::make_pair(e1, e2) : std::make_pair(e2, e1);
  }
  std::map<std::pair<int, int>, double> gamma_;
};

/// Plant crosstalk on a deterministic subset of one-hop edge pairs.
///
/// `fraction` of the one-hop pairs receive a multiplier drawn uniformly
/// from [gamma_lo, gamma_hi]. This mirrors the sparsity seen in Fig. 2:
/// only a handful of Toronto pairs are significantly affected.
[[nodiscard]] CrosstalkModel plant_crosstalk(const Topology& topo,
                                             double fraction, double gamma_lo,
                                             double gamma_hi, Rng rng);

}  // namespace qucp
