#include "hardware/device.hpp"

#include <stdexcept>

#include "common/rng.hpp"

namespace qucp {

Device::Device(std::string name, Topology topology, Calibration calibration,
               CrosstalkModel crosstalk)
    : name_(std::move(name)),
      topo_(std::move(topology)),
      cal_(std::move(calibration)),
      xtalk_(std::move(crosstalk)) {
  cal_.validate(topo_);
}

double Device::cx_error(int a, int b) const {
  const auto e = topo_.edge_index(a, b);
  if (!e) throw std::invalid_argument("Device::cx_error: qubits not coupled");
  return cal_.cx_error[static_cast<std::size_t>(*e)];
}

double Device::cx_duration_ns(int a, int b) const {
  const auto e = topo_.edge_index(a, b);
  if (!e) {
    throw std::invalid_argument("Device::cx_duration_ns: qubits not coupled");
  }
  return cal_.cx_duration_ns[static_cast<std::size_t>(*e)];
}

double Device::readout_error(int q) const {
  if (q < 0 || q >= num_qubits()) {
    throw std::out_of_range("Device::readout_error");
  }
  return cal_.readout_error[static_cast<std::size_t>(q)];
}

double Device::q1_error(int q) const {
  if (q < 0 || q >= num_qubits()) throw std::out_of_range("Device::q1_error");
  return cal_.q1_error[static_cast<std::size_t>(q)];
}

void Device::set_calibration(Calibration cal) {
  cal.validate(topo_);
  cal_ = std::move(cal);
}

namespace {

/// IBM Q 16 Melbourne: two rows (0-6 top, 7-14 bottom) with rung links.
Topology melbourne_topology() {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 6; ++i) edges.emplace_back(i, i + 1);         // top row
  for (int i = 7; i < 14; ++i) edges.emplace_back(i, i + 1);        // bottom
  edges.emplace_back(0, 14);
  edges.emplace_back(1, 13);
  edges.emplace_back(2, 12);
  edges.emplace_back(3, 11);
  edges.emplace_back(4, 10);
  edges.emplace_back(5, 9);
  edges.emplace_back(6, 8);
  return Topology(15, std::move(edges));
}

/// 27-qubit Falcon heavy-hex coupling map (ibmq_toronto family).
Topology toronto_topology() {
  const std::vector<std::pair<int, int>> edges = {
      {0, 1},   {1, 2},   {1, 4},   {2, 3},   {3, 5},   {4, 7},   {5, 8},
      {6, 7},   {7, 10},  {8, 9},   {8, 11},  {10, 12}, {11, 14}, {12, 13},
      {12, 15}, {13, 14}, {14, 16}, {15, 18}, {16, 19}, {17, 18}, {18, 21},
      {19, 20}, {19, 22}, {21, 23}, {22, 25}, {23, 24}, {24, 25}, {25, 26}};
  return Topology(27, edges);
}

/// 65-qubit Hummingbird heavy-hex coupling map (ibmq_manhattan).
Topology manhattan_topology() {
  std::vector<std::pair<int, int>> edges;
  auto row = [&edges](int first, int last) {
    for (int i = first; i < last; ++i) edges.emplace_back(i, i + 1);
  };
  row(0, 9);    // 0..9
  edges.insert(edges.end(), {{0, 10}, {4, 11}, {8, 12}});
  edges.insert(edges.end(), {{10, 13}, {11, 17}, {12, 21}});
  row(13, 23);  // 13..23
  edges.insert(edges.end(), {{15, 24}, {19, 25}, {23, 26}});
  edges.insert(edges.end(), {{24, 29}, {25, 33}, {26, 37}});
  row(27, 37);  // 27..37
  edges.insert(edges.end(), {{27, 38}, {31, 39}, {35, 40}});
  edges.insert(edges.end(), {{38, 41}, {39, 45}, {40, 49}});
  row(41, 51);  // 41..51
  edges.insert(edges.end(), {{43, 52}, {47, 53}, {51, 54}});
  edges.insert(edges.end(), {{52, 56}, {53, 60}, {54, 64}});
  row(55, 64);  // 55..64
  return Topology(65, edges);
}

}  // namespace

Device make_melbourne16(std::uint64_t seed) {
  Topology topo = melbourne_topology();
  Rng rng(seed);
  CalibrationProfile profile;
  profile.cx_error_median = 0.030;  // Melbourne-era error rates (Fig. 1)
  profile.readout_median = 0.045;
  profile.bad_edge_fraction = 0.0;  // errors are set explicitly below
  Calibration cal =
      synthesize_calibration(topo, profile, rng.derive("melbourne-cal"));
  // CX errors (in %) transcribed from Fig. 1, ordered: top-row links
  // 0-1..5-6, bottom-row links 7-8..13-14, rung links 0-14,1-13,...,6-8.
  const std::vector<double> fig1_pct = {
      2.1, 3.1, 1.9, 5.9, 1.1, 5.3,            // top row
      2.6, 6.2, 3.7, 2.4, 2.8, 2.7, 2.7,       // bottom row
      2.8, 2.9, 3.7, 4.0, 5.4, 4.9, 4.4};      // rungs
  for (std::size_t e = 0; e < fig1_pct.size(); ++e) {
    cal.cx_error[e] = fig1_pct[e] / 100.0;
  }
  CrosstalkModel xtalk = plant_crosstalk(topo, 0.15, 2.0, 5.0,
                                         rng.derive("melbourne-xtalk"));
  return Device("ibmq_melbourne16", std::move(topo), std::move(cal),
                std::move(xtalk));
}

Device make_toronto27(std::uint64_t seed) {
  Topology topo = toronto_topology();
  Rng rng(seed);
  CalibrationProfile profile;
  profile.cx_error_median = 0.015;  // Falcon-generation medians
  profile.readout_median = 0.030;
  profile.bad_edge_fraction = 0.15;
  profile.bad_edge_multiplier = 5.0;
  Calibration cal =
      synthesize_calibration(topo, profile, rng.derive("toronto-cal"));
  // Fig. 2 shows a sparse set of significantly-affected pairs on Toronto.
  CrosstalkModel xtalk =
      plant_crosstalk(topo, 0.25, 2.5, 8.0, rng.derive("toronto-xtalk"));
  return Device("ibmq_toronto27", std::move(topo), std::move(cal),
                std::move(xtalk));
}

Device make_manhattan65(std::uint64_t seed) {
  Topology topo = manhattan_topology();
  Rng rng(seed);
  CalibrationProfile profile;
  profile.cx_error_median = 0.018;  // Hummingbird medians
  profile.readout_median = 0.034;
  profile.bad_edge_fraction = 0.15;
  profile.bad_edge_multiplier = 5.0;
  Calibration cal =
      synthesize_calibration(topo, profile, rng.derive("manhattan-cal"));
  CrosstalkModel xtalk =
      plant_crosstalk(topo, 0.35, 2.5, 8.0, rng.derive("manhattan-xtalk"));
  return Device("ibmq_manhattan65", std::move(topo), std::move(cal),
                std::move(xtalk));
}

Device make_line_device(int n, std::uint64_t seed) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  Topology topo(n, std::move(edges));
  Rng rng(seed);
  CalibrationProfile profile;
  profile.bad_edge_fraction = 0.0;
  profile.bad_readout_fraction = 0.0;
  Calibration cal =
      synthesize_calibration(topo, profile, rng.derive("line-cal"));
  return Device("line" + std::to_string(n), std::move(topo), std::move(cal),
                CrosstalkModel{});
}

Device make_grid_device(int rows, int cols, std::uint64_t seed) {
  std::vector<std::pair<int, int>> edges;
  auto id = [cols](int r, int c) { return r * cols + c; };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  Topology topo(rows * cols, std::move(edges));
  Rng rng(seed);
  CalibrationProfile profile;
  Calibration cal =
      synthesize_calibration(topo, profile, rng.derive("grid-cal"));
  CrosstalkModel xtalk =
      plant_crosstalk(topo, 0.2, 2.0, 4.0, rng.derive("grid-xtalk"));
  return Device("grid" + std::to_string(rows) + "x" + std::to_string(cols),
                std::move(topo), std::move(cal), std::move(xtalk));
}

Device make_named_device(std::string_view name, std::uint64_t seed) {
  if (name == "melbourne16" || name == "ibmq_melbourne16") {
    return make_melbourne16(seed);
  }
  if (name == "toronto27" || name == "ibmq_toronto27") {
    return make_toronto27(seed);
  }
  if (name == "manhattan65" || name == "ibmq_manhattan65") {
    return make_manhattan65(seed);
  }
  throw std::invalid_argument("make_named_device: unknown device '" +
                              std::string(name) + "'");
}

}  // namespace qucp
