#include "hardware/crosstalk.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace qucp {

void CrosstalkModel::add_pair(int e1, int e2, double gamma) {
  if (e1 == e2) throw std::invalid_argument("CrosstalkModel: e1 == e2");
  if (gamma < 1.0) {
    throw std::invalid_argument("CrosstalkModel: gamma must be >= 1");
  }
  gamma_[key(e1, e2)] = gamma;
}

double CrosstalkModel::gamma(int e1, int e2) const {
  const auto it = gamma_.find(key(e1, e2));
  return it == gamma_.end() ? 1.0 : it->second;
}

std::vector<std::tuple<int, int, double>> CrosstalkModel::pairs() const {
  std::vector<std::tuple<int, int, double>> out;
  out.reserve(gamma_.size());
  for (const auto& [k, g] : gamma_) {
    out.emplace_back(k.first, k.second, g);
  }
  return out;
}

CrosstalkModel plant_crosstalk(const Topology& topo, double fraction,
                               double gamma_lo, double gamma_hi, Rng rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("plant_crosstalk: fraction outside [0,1]");
  }
  if (gamma_lo < 1.0 || gamma_hi < gamma_lo) {
    throw std::invalid_argument("plant_crosstalk: bad gamma range");
  }
  CrosstalkModel model;
  auto candidates = topo.one_hop_edge_pairs();
  rng.shuffle(candidates);
  const auto count = static_cast<std::size_t>(
      std::round(fraction * static_cast<double>(candidates.size())));
  for (std::size_t i = 0; i < count && i < candidates.size(); ++i) {
    model.add_pair(candidates[i].first, candidates[i].second,
                   rng.uniform(gamma_lo, gamma_hi));
  }
  return model;
}

}  // namespace qucp
