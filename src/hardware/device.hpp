#pragma once
// Device = topology + calibration + hidden crosstalk ground truth.
//
// Factories model the three IBM machines the paper evaluates on:
//   - ibmq_melbourne16 : 15 qubits, ladder layout (Fig. 1; CX errors
//     transcribed from the figure)
//   - ibmq_toronto27   : 27 qubits, Falcon heavy-hex (Fig. 2, Fig. 3)
//   - ibmq_manhattan65 : 65 qubits, Hummingbird heavy-hex (Fig. 4-6)
// plus small synthetic devices for tests.

#include <memory>
#include <string>
#include <string_view>

#include "hardware/calibration.hpp"
#include "hardware/crosstalk.hpp"
#include "hardware/topology.hpp"

namespace qucp {

class Device {
 public:
  Device(std::string name, Topology topology, Calibration calibration,
         CrosstalkModel crosstalk);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const Calibration& calibration() const noexcept {
    return cal_;
  }
  /// Ground-truth crosstalk. Only the simulator and validation code may
  /// consult this; partitioners must work from calibration + SRB estimates.
  [[nodiscard]] const CrosstalkModel& crosstalk_ground_truth() const noexcept {
    return xtalk_;
  }

  [[nodiscard]] int num_qubits() const noexcept { return topo_.num_qubits(); }

  /// CX error of the edge (a,b); throws when not coupled.
  [[nodiscard]] double cx_error(int a, int b) const;
  [[nodiscard]] double cx_duration_ns(int a, int b) const;
  [[nodiscard]] double readout_error(int q) const;
  [[nodiscard]] double q1_error(int q) const;

  /// Replace the calibration snapshot in place (e.g. for what-if studies
  /// in tests). Live recalibration of a serving backend must NOT use
  /// this: every derived cache (CandidateIndex, transpile/compiled-
  /// program caches, solo-EFS memos) assumes the Device it was built
  /// against never changes. Backend::recalibrate (service/backend.hpp)
  /// builds a fresh epoch-owned Device copy instead and swaps the whole
  /// cache set atomically.
  void set_calibration(Calibration cal);

 private:
  std::string name_;
  Topology topo_;
  Calibration cal_;
  CrosstalkModel xtalk_;
};

/// 15-qubit IBM Q 16 Melbourne with Fig. 1's CX error pattern.
[[nodiscard]] Device make_melbourne16(std::uint64_t seed = 2022);

/// 27-qubit heavy-hex Falcon (IBM Q 27 Toronto).
[[nodiscard]] Device make_toronto27(std::uint64_t seed = 2022);

/// 65-qubit heavy-hex Hummingbird (IBM Q 65 Manhattan).
[[nodiscard]] Device make_manhattan65(std::uint64_t seed = 2022);

/// Path graph of n qubits, uniform-ish calibration; for tests.
[[nodiscard]] Device make_line_device(int n, std::uint64_t seed = 7);

/// r x c grid device; for tests.
[[nodiscard]] Device make_grid_device(int rows, int cols,
                                      std::uint64_t seed = 7);

/// Bundled device by name — "melbourne16", "toronto27" or "manhattan65"
/// (full IBM names like "ibmq_toronto27" are accepted too). This is the
/// config-string entry point for assembling heterogeneous fleets
/// (service/registry.hpp). Throws std::invalid_argument on an unknown
/// name.
[[nodiscard]] Device make_named_device(std::string_view name,
                                       std::uint64_t seed = 2022);

}  // namespace qucp
