#pragma once
// Device calibration data: error rates and gate durations.
//
// Mirrors the fields the paper's partitioners consume from the IBM
// calibration API: per-qubit single-qubit error and readout error, per-edge
// CX error, plus durations and relaxation times used by the scheduler and
// the idle-decoherence noise term.

#include <span>
#include <vector>

#include "hardware/topology.hpp"

namespace qucp {

class Rng;

/// Calibration snapshot for a device with `num_qubits` qubits and
/// `num_edges` coupling edges (indexed consistently with a Topology).
struct Calibration {
  std::vector<double> q1_error;       ///< single-qubit gate error per qubit
  std::vector<double> readout_error;  ///< assignment error per qubit
  std::vector<double> cx_error;       ///< CX error per edge id
  std::vector<double> t1_us;          ///< relaxation time per qubit (us)
  std::vector<double> t2_us;          ///< dephasing time per qubit (us)
  std::vector<double> cx_duration_ns;  ///< CX duration per edge id
  double q1_duration_ns = 35.0;
  double readout_duration_ns = 3500.0;

  /// Validate sizes against a topology and ranges (errors within [0,1),
  /// positive durations/times). Throws std::invalid_argument on violation.
  void validate(const Topology& topo) const;

  [[nodiscard]] double avg_cx_error() const;
  [[nodiscard]] double avg_readout_error() const;
  [[nodiscard]] double avg_q1_error() const;
};

/// Knobs for synthesizing a plausible IBM-like calibration snapshot.
struct CalibrationProfile {
  double cx_error_median = 0.012;
  double cx_error_spread = 0.35;      ///< lognormal sigma
  double readout_median = 0.025;
  double readout_spread = 0.45;
  double q1_error_median = 3.5e-4;
  double q1_error_spread = 0.4;
  double t1_mean_us = 95.0;
  double t2_mean_us = 85.0;
  double cx_duration_mean_ns = 380.0;
  /// Fraction of edges/qubits degraded to "bad" (red in Fig. 1).
  double bad_edge_fraction = 0.12;
  double bad_edge_multiplier = 4.0;
  double bad_readout_fraction = 0.1;
  double bad_readout_multiplier = 3.0;
};

/// Generate a deterministic calibration snapshot for the topology.
[[nodiscard]] Calibration synthesize_calibration(const Topology& topo,
                                                 const CalibrationProfile& p,
                                                 Rng rng);

}  // namespace qucp
