#include "hardware/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/rng.hpp"

namespace qucp {

namespace {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

/// Lognormal sample around a median with shape sigma, clamped.
double lognormal(Rng& rng, double median, double sigma, double lo, double hi) {
  const double v = median * std::exp(rng.normal(0.0, sigma));
  return std::clamp(v, lo, hi);
}

}  // namespace

void Calibration::validate(const Topology& topo) const {
  const auto nq = static_cast<std::size_t>(topo.num_qubits());
  const auto ne = static_cast<std::size_t>(topo.num_edges());
  if (q1_error.size() != nq || readout_error.size() != nq ||
      t1_us.size() != nq || t2_us.size() != nq) {
    throw std::invalid_argument("Calibration: per-qubit vector size mismatch");
  }
  if (cx_error.size() != ne || cx_duration_ns.size() != ne) {
    throw std::invalid_argument("Calibration: per-edge vector size mismatch");
  }
  auto in_unit = [](double e) { return e >= 0.0 && e < 1.0; };
  if (!std::all_of(q1_error.begin(), q1_error.end(), in_unit) ||
      !std::all_of(readout_error.begin(), readout_error.end(), in_unit) ||
      !std::all_of(cx_error.begin(), cx_error.end(), in_unit)) {
    throw std::invalid_argument("Calibration: error rate outside [0,1)");
  }
  auto positive = [](double v) { return v > 0.0; };
  if (!std::all_of(t1_us.begin(), t1_us.end(), positive) ||
      !std::all_of(t2_us.begin(), t2_us.end(), positive) ||
      !std::all_of(cx_duration_ns.begin(), cx_duration_ns.end(), positive) ||
      q1_duration_ns <= 0.0 || readout_duration_ns <= 0.0) {
    throw std::invalid_argument("Calibration: non-positive duration/time");
  }
}

double Calibration::avg_cx_error() const { return mean(cx_error); }
double Calibration::avg_readout_error() const { return mean(readout_error); }
double Calibration::avg_q1_error() const { return mean(q1_error); }

Calibration synthesize_calibration(const Topology& topo,
                                   const CalibrationProfile& p, Rng rng) {
  const int nq = topo.num_qubits();
  const int ne = topo.num_edges();
  Calibration cal;
  cal.q1_error.reserve(nq);
  cal.readout_error.reserve(nq);
  cal.t1_us.reserve(nq);
  cal.t2_us.reserve(nq);
  for (int q = 0; q < nq; ++q) {
    cal.q1_error.push_back(
        lognormal(rng, p.q1_error_median, p.q1_error_spread, 5e-5, 5e-3));
    double ro = lognormal(rng, p.readout_median, p.readout_spread, 5e-3, 0.2);
    cal.readout_error.push_back(ro);
    cal.t1_us.push_back(std::max(20.0, rng.normal(p.t1_mean_us, 20.0)));
    cal.t2_us.push_back(std::max(15.0, rng.normal(p.t2_mean_us, 25.0)));
  }
  for (int e = 0; e < ne; ++e) {
    cal.cx_error.push_back(
        lognormal(rng, p.cx_error_median, p.cx_error_spread, 2e-3, 0.15));
    cal.cx_duration_ns.push_back(
        std::clamp(rng.normal(p.cx_duration_mean_ns, 80.0), 150.0, 900.0));
  }
  // Degrade a deterministic subset ("red" edges/qubits in Fig. 1).
  const int bad_edges =
      static_cast<int>(std::round(p.bad_edge_fraction * ne));
  for (int k = 0; k < bad_edges; ++k) {
    const auto e = rng.index(static_cast<std::size_t>(ne));
    cal.cx_error[e] =
        std::min(0.15, cal.cx_error[e] * p.bad_edge_multiplier);
  }
  const int bad_ro =
      static_cast<int>(std::round(p.bad_readout_fraction * nq));
  for (int k = 0; k < bad_ro; ++k) {
    const auto q = rng.index(static_cast<std::size_t>(nq));
    cal.readout_error[q] =
        std::min(0.25, cal.readout_error[q] * p.bad_readout_multiplier);
  }
  cal.validate(topo);
  return cal;
}

}  // namespace qucp
