#pragma once
// Coupling-graph model of a quantum chip.
//
// Qubits are vertices; an edge means a native CX is available between the
// two qubits (both directions). Distances are hop counts. "One-hop edge
// pairs" — disjoint edges joined by a single coupling link — are the pairs
// on which simultaneous CNOTs can experience crosstalk (Murali et al.,
// ASPLOS'20) and drive both SRB characterization cost (Table I) and QuCP's
// sigma-emulated crosstalk.

#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace qucp {

/// Canonical undirected edge (a < b after normalization).
struct Edge {
  int a = 0;
  int b = 0;

  Edge() = default;
  Edge(int x, int y) : a(x < y ? x : y), b(x < y ? y : x) {}

  [[nodiscard]] bool contains(int q) const noexcept { return q == a || q == b; }
  [[nodiscard]] bool shares_qubit(const Edge& other) const noexcept {
    return contains(other.a) || contains(other.b);
  }
  [[nodiscard]] bool operator==(const Edge& other) const = default;
  [[nodiscard]] auto operator<=>(const Edge& other) const = default;
};

class Topology {
 public:
  /// Build from an edge list; duplicate/self edges rejected.
  Topology(int num_qubits, std::vector<std::pair<int, int>> edge_list);

  [[nodiscard]] int num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept {
    return edges_;
  }
  [[nodiscard]] int num_edges() const noexcept {
    return static_cast<int>(edges_.size());
  }

  [[nodiscard]] bool adjacent(int a, int b) const;
  [[nodiscard]] const std::vector<int>& neighbors(int q) const;
  [[nodiscard]] int degree(int q) const;

  /// Edge id of (a,b) if coupled.
  [[nodiscard]] std::optional<int> edge_index(int a, int b) const;

  /// Hop distance; -1 when disconnected.
  [[nodiscard]] int distance(int a, int b) const;

  /// All unordered pairs of disjoint edges {e, f} (by edge id) such that an
  /// endpoint of e is adjacent to an endpoint of f.
  [[nodiscard]] std::vector<std::pair<int, int>> one_hop_edge_pairs() const;

  /// Edge ids at one-hop distance from edge id `e` (disjoint neighbors).
  [[nodiscard]] std::vector<int> one_hop_neighbors_of_edge(int e) const;

  /// True when the qubit subset induces a connected subgraph.
  [[nodiscard]] bool is_connected_subset(std::span<const int> qubits) const;

  /// Edges with both endpoints inside the subset (edge ids).
  [[nodiscard]] std::vector<int> induced_edges(
      std::span<const int> qubits) const;

 private:
  void check_qubit(int q) const;

  int num_qubits_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adj_;       // neighbor lists
  std::vector<int> edge_of_;  ///< dense (a,b) -> edge id, -1 when uncoupled
  std::vector<std::vector<int>> dist_;      // all-pairs hop distances
};

}  // namespace qucp
