#include "hardware/topology.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

namespace qucp {

Topology::Topology(int num_qubits, std::vector<std::pair<int, int>> edge_list)
    : num_qubits_(num_qubits) {
  if (num_qubits <= 0) {
    throw std::invalid_argument("Topology: non-positive qubit count");
  }
  adj_.resize(num_qubits);
  std::set<Edge> seen;
  for (const auto& [x, y] : edge_list) {
    if (x == y) throw std::invalid_argument("Topology: self edge");
    if (x < 0 || x >= num_qubits || y < 0 || y >= num_qubits) {
      throw std::out_of_range("Topology: edge endpoint out of range");
    }
    const Edge e(x, y);
    if (!seen.insert(e).second) {
      throw std::invalid_argument("Topology: duplicate edge");
    }
    edges_.push_back(e);
    adj_[e.a].push_back(e.b);
    adj_[e.b].push_back(e.a);
  }
  for (auto& nb : adj_) std::sort(nb.begin(), nb.end());

  // Dense (a, b) -> edge id table for O(1) edge_index lookups: the
  // executor and the allocator's scoring loop query it per gate/candidate.
  edge_of_.assign(static_cast<std::size_t>(num_qubits) * num_qubits, -1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    edge_of_[static_cast<std::size_t>(e.a) * num_qubits + e.b] =
        static_cast<int>(i);
    edge_of_[static_cast<std::size_t>(e.b) * num_qubits + e.a] =
        static_cast<int>(i);
  }

  // All-pairs BFS.
  dist_.assign(num_qubits, std::vector<int>(num_qubits, -1));
  for (int src = 0; src < num_qubits; ++src) {
    std::deque<int> queue{src};
    dist_[src][src] = 0;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : adj_[u]) {
        if (dist_[src][v] < 0) {
          dist_[src][v] = dist_[src][u] + 1;
          queue.push_back(v);
        }
      }
    }
  }
}

void Topology::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("Topology: qubit out of range");
  }
}

bool Topology::adjacent(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

const std::vector<int>& Topology::neighbors(int q) const {
  check_qubit(q);
  return adj_[q];
}

int Topology::degree(int q) const {
  check_qubit(q);
  return static_cast<int>(adj_[q].size());
}

std::optional<int> Topology::edge_index(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  const int idx = edge_of_[static_cast<std::size_t>(a) * num_qubits_ + b];
  if (idx < 0) return std::nullopt;
  return idx;
}

int Topology::distance(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  return dist_[a][b];
}

std::vector<std::pair<int, int>> Topology::one_hop_edge_pairs() const {
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < num_edges(); ++i) {
    for (int j = i + 1; j < num_edges(); ++j) {
      const Edge& e = edges_[i];
      const Edge& f = edges_[j];
      if (e.shares_qubit(f)) continue;
      const int d = std::min(
          std::min(dist_[e.a][f.a], dist_[e.a][f.b]),
          std::min(dist_[e.b][f.a], dist_[e.b][f.b]));
      if (d == 1) pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

std::vector<int> Topology::one_hop_neighbors_of_edge(int e) const {
  if (e < 0 || e >= num_edges()) {
    throw std::out_of_range("Topology: edge id out of range");
  }
  std::vector<int> out;
  for (int j = 0; j < num_edges(); ++j) {
    if (j == e) continue;
    const Edge& a = edges_[e];
    const Edge& b = edges_[j];
    if (a.shares_qubit(b)) continue;
    const int d = std::min(std::min(dist_[a.a][b.a], dist_[a.a][b.b]),
                           std::min(dist_[a.b][b.a], dist_[a.b][b.b]));
    if (d == 1) out.push_back(j);
  }
  return out;
}

bool Topology::is_connected_subset(std::span<const int> qubits) const {
  if (qubits.empty()) return true;
  // Flat membership + an index-walked BFS queue: this runs per candidate
  // partition inside the allocator's scoring loop, so no per-query set
  // lookups or node allocations.
  std::vector<char> subset(static_cast<std::size_t>(num_qubits_), 0);
  std::size_t subset_size = 0;
  int first = num_qubits_;
  for (int q : qubits) {
    check_qubit(q);
    if (!subset[q]) {
      subset[q] = 1;
      ++subset_size;
      first = std::min(first, q);
    }
  }
  std::vector<int> queue{first};
  queue.reserve(subset_size);
  std::vector<char> visited(static_cast<std::size_t>(num_qubits_), 0);
  visited[first] = 1;
  std::size_t visited_size = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const int u = queue[head];
    for (int v : adj_[u]) {
      if (subset[v] && !visited[v]) {
        visited[v] = 1;
        ++visited_size;
        queue.push_back(v);
      }
    }
  }
  return visited_size == subset_size;
}

std::vector<int> Topology::induced_edges(std::span<const int> qubits) const {
  std::vector<char> subset(static_cast<std::size_t>(num_qubits_), 0);
  for (int q : qubits) {
    check_qubit(q);
    subset[q] = 1;
  }
  std::vector<int> out;
  for (int i = 0; i < num_edges(); ++i) {
    if (subset[edges_[i].a] && subset[edges_[i].b]) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace qucp
