#include "hardware/topology.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>

namespace qucp {

Topology::Topology(int num_qubits, std::vector<std::pair<int, int>> edge_list)
    : num_qubits_(num_qubits) {
  if (num_qubits <= 0) {
    throw std::invalid_argument("Topology: non-positive qubit count");
  }
  adj_.resize(num_qubits);
  std::set<Edge> seen;
  for (const auto& [x, y] : edge_list) {
    if (x == y) throw std::invalid_argument("Topology: self edge");
    if (x < 0 || x >= num_qubits || y < 0 || y >= num_qubits) {
      throw std::out_of_range("Topology: edge endpoint out of range");
    }
    const Edge e(x, y);
    if (!seen.insert(e).second) {
      throw std::invalid_argument("Topology: duplicate edge");
    }
    edges_.push_back(e);
    adj_[e.a].push_back(e.b);
    adj_[e.b].push_back(e.a);
  }
  for (auto& nb : adj_) std::sort(nb.begin(), nb.end());

  // All-pairs BFS.
  dist_.assign(num_qubits, std::vector<int>(num_qubits, -1));
  for (int src = 0; src < num_qubits; ++src) {
    std::deque<int> queue{src};
    dist_[src][src] = 0;
    while (!queue.empty()) {
      const int u = queue.front();
      queue.pop_front();
      for (int v : adj_[u]) {
        if (dist_[src][v] < 0) {
          dist_[src][v] = dist_[src][u] + 1;
          queue.push_back(v);
        }
      }
    }
  }
}

void Topology::check_qubit(int q) const {
  if (q < 0 || q >= num_qubits_) {
    throw std::out_of_range("Topology: qubit out of range");
  }
}

bool Topology::adjacent(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  return std::binary_search(adj_[a].begin(), adj_[a].end(), b);
}

const std::vector<int>& Topology::neighbors(int q) const {
  check_qubit(q);
  return adj_[q];
}

int Topology::degree(int q) const {
  check_qubit(q);
  return static_cast<int>(adj_[q].size());
}

std::optional<int> Topology::edge_index(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  const Edge e(a, b);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i] == e) return static_cast<int>(i);
  }
  return std::nullopt;
}

int Topology::distance(int a, int b) const {
  check_qubit(a);
  check_qubit(b);
  return dist_[a][b];
}

std::vector<std::pair<int, int>> Topology::one_hop_edge_pairs() const {
  std::vector<std::pair<int, int>> pairs;
  for (int i = 0; i < num_edges(); ++i) {
    for (int j = i + 1; j < num_edges(); ++j) {
      const Edge& e = edges_[i];
      const Edge& f = edges_[j];
      if (e.shares_qubit(f)) continue;
      const int d = std::min(
          std::min(dist_[e.a][f.a], dist_[e.a][f.b]),
          std::min(dist_[e.b][f.a], dist_[e.b][f.b]));
      if (d == 1) pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

std::vector<int> Topology::one_hop_neighbors_of_edge(int e) const {
  if (e < 0 || e >= num_edges()) {
    throw std::out_of_range("Topology: edge id out of range");
  }
  std::vector<int> out;
  for (int j = 0; j < num_edges(); ++j) {
    if (j == e) continue;
    const Edge& a = edges_[e];
    const Edge& b = edges_[j];
    if (a.shares_qubit(b)) continue;
    const int d = std::min(std::min(dist_[a.a][b.a], dist_[a.a][b.b]),
                           std::min(dist_[a.b][b.a], dist_[a.b][b.b]));
    if (d == 1) out.push_back(j);
  }
  return out;
}

bool Topology::is_connected_subset(std::span<const int> qubits) const {
  if (qubits.empty()) return true;
  std::set<int> subset;
  for (int q : qubits) {
    check_qubit(q);
    subset.insert(q);
  }
  std::deque<int> queue{*subset.begin()};
  std::set<int> visited{*subset.begin()};
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int v : adj_[u]) {
      if (subset.count(v) && !visited.count(v)) {
        visited.insert(v);
        queue.push_back(v);
      }
    }
  }
  return visited.size() == subset.size();
}

std::vector<int> Topology::induced_edges(std::span<const int> qubits) const {
  std::set<int> subset(qubits.begin(), qubits.end());
  std::vector<int> out;
  for (int i = 0; i < num_edges(); ++i) {
    if (subset.count(edges_[i].a) && subset.count(edges_[i].b)) {
      out.push_back(i);
    }
  }
  return out;
}

}  // namespace qucp
