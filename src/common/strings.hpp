#pragma once
// Minimal string utilities shared by the QASM parser, report printers and
// bench harnesses.

#include <string>
#include <string_view>
#include <vector>

namespace qucp {

/// Split on a delimiter; empty tokens are kept.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Split on arbitrary whitespace; empty tokens are dropped.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Join items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view sep);

/// True when `s` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Fixed-precision double formatting (printf "%.*f").
[[nodiscard]] std::string fmt_double(double v, int precision);

/// Percentage formatting: fmt_percent(0.123, 1) == "12.3%".
[[nodiscard]] std::string fmt_percent(double fraction, int precision);

}  // namespace qucp
