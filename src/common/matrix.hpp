#pragma once
// Small dense complex matrices for gate unitaries, density matrices and
// Hamiltonians. Sizes here are tiny (2^n for n <= ~10), so a straightforward
// row-major std::vector backing with O(n^3) multiply is the right tool.

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace qucp {

using cx = std::complex<double>;

/// Dense row-major complex matrix.
///
/// Invariant: data().size() == rows() * cols().
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols);
  Matrix(std::size_t rows, std::size_t cols, std::initializer_list<cx> vals);

  [[nodiscard]] static Matrix identity(std::size_t n);
  [[nodiscard]] static Matrix zeros(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] cx& at(std::size_t r, std::size_t c);
  [[nodiscard]] const cx& at(std::size_t r, std::size_t c) const;
  cx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const cx> data() const noexcept { return data_; }
  [[nodiscard]] std::span<cx> data() noexcept { return data_; }

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(cx scalar);

  [[nodiscard]] Matrix operator+(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator-(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Matrix operator*(cx scalar) const;

  /// Conjugate transpose.
  [[nodiscard]] Matrix dagger() const;

  [[nodiscard]] cx trace() const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

  /// Max |a_ij - b_ij|; matrices must have equal shape.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// True when max_abs_diff(other) <= tol.
  [[nodiscard]] bool approx_equal(const Matrix& other, double tol) const;

  /// True when U * U^dagger == I within tol.
  [[nodiscard]] bool is_unitary(double tol = 1e-9) const;

  /// True when A == A^dagger within tol.
  [[nodiscard]] bool is_hermitian(double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cx> data_;
};

/// Kronecker (tensor) product a (x) b.
[[nodiscard]] Matrix kron(const Matrix& a, const Matrix& b);

/// Kronecker product of a list, left to right: ms[0] (x) ms[1] (x) ...
[[nodiscard]] Matrix kron_all(std::span<const Matrix> ms);

/// Matrix-vector product. Requires v.size() == m.cols().
[[nodiscard]] std::vector<cx> mat_vec(const Matrix& m, std::span<const cx> v);

}  // namespace qucp
