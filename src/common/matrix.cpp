#include "common/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace qucp {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, cx{0.0, 0.0}) {}

Matrix::Matrix(std::size_t rows, std::size_t cols,
               std::initializer_list<cx> vals)
    : Matrix(rows, cols) {
  if (vals.size() != rows * cols) {
    throw std::invalid_argument("Matrix: initializer size mismatch");
  }
  std::size_t i = 0;
  for (const cx& v : vals) data_[i++] = v;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols);
}

cx& Matrix::at(std::size_t r, std::size_t c) {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

const cx& Matrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at");
  return data_[r * cols_ + c];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::+=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
    throw std::invalid_argument("Matrix::-=: shape mismatch");
  }
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(cx scalar) {
  for (cx& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  Matrix out = *this;
  out += rhs;
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  Matrix out = *this;
  out -= rhs;
  return out;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  if (cols_ != rhs.rows_) {
    throw std::invalid_argument("Matrix::*: shape mismatch");
  }
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cx aik = (*this)(i, k);
      if (aik == cx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator*(cx scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Matrix Matrix::dagger() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out(j, i) = std::conj((*this)(i, j));
    }
  }
  return out;
}

cx Matrix::trace() const {
  if (!is_square()) throw std::logic_error("Matrix::trace: not square");
  cx t{0.0, 0.0};
  for (std::size_t i = 0; i < rows_; ++i) t += (*this)(i, i);
  return t;
}

double Matrix::norm() const {
  double s = 0.0;
  for (const cx& v : data_) s += std::norm(v);
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) {
    throw std::invalid_argument("Matrix::max_abs_diff: shape mismatch");
  }
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  return max_abs_diff(other) <= tol;
}

bool Matrix::is_unitary(double tol) const {
  if (!is_square()) return false;
  return ((*this) * dagger()).approx_equal(Matrix::identity(rows_), tol);
}

bool Matrix::is_hermitian(double tol) const {
  if (!is_square()) return false;
  return approx_equal(dagger(), tol);
}

Matrix kron(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      const cx aij = a(i, j);
      if (aij == cx{0.0, 0.0}) continue;
      for (std::size_t k = 0; k < b.rows(); ++k) {
        for (std::size_t l = 0; l < b.cols(); ++l) {
          out(i * b.rows() + k, j * b.cols() + l) = aij * b(k, l);
        }
      }
    }
  }
  return out;
}

Matrix kron_all(std::span<const Matrix> ms) {
  if (ms.empty()) return Matrix::identity(1);
  Matrix out = ms[0];
  for (std::size_t i = 1; i < ms.size(); ++i) out = kron(out, ms[i]);
  return out;
}

std::vector<cx> mat_vec(const Matrix& m, std::span<const cx> v) {
  if (v.size() != m.cols()) {
    throw std::invalid_argument("mat_vec: dimension mismatch");
  }
  std::vector<cx> out(m.rows(), cx{0.0, 0.0});
  for (std::size_t i = 0; i < m.rows(); ++i) {
    cx acc{0.0, 0.0};
    for (std::size_t j = 0; j < m.cols(); ++j) acc += m(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

}  // namespace qucp
