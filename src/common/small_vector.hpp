#pragma once
// Small-buffer vector for trivially copyable elements.
//
// Gate operand and parameter lists are tiny (<= 2 qubits, <= 3 angles) but
// were held in std::vector, so every Gate copy paid two heap allocations —
// and circuits are copied on every transpile-template bind, every remap,
// every service enqueue. SmallVector keeps up to N elements inline and only
// spills to the heap for the rare oversized case (device-wide barriers),
// making Gate copies allocation-free and gate walks pointer-chase-free.
//
// Deliberately minimal: the API covers what the circuit layer uses
// (vector-like access, push_back/resize/assign, equality, iteration,
// implicit std::span conversion via the C++20 range constructor). Elements
// must be trivially copyable so copies are memcpy and destruction is free.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace qucp {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable elements");
  static_assert(N >= 1);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;
  SmallVector(std::initializer_list<T> vals) { assign(vals.begin(), vals.end()); }
  SmallVector(const std::vector<T>& vals) {  // NOLINT(google-explicit-constructor)
    assign(vals.begin(), vals.end());
  }
  SmallVector(std::vector<T>&& vals) {  // NOLINT(google-explicit-constructor)
    assign(vals.begin(), vals.end());
  }

  SmallVector(const SmallVector& other) { assign(other.begin(), other.end()); }
  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  SmallVector(SmallVector&& other) noexcept { steal(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      delete[] heap_;
      heap_ = nullptr;
      steal(other);
    }
    return *this;
  }
  SmallVector& operator=(std::initializer_list<T> vals) {
    assign(vals.begin(), vals.end());
    return *this;
  }
  ~SmallVector() { delete[] heap_; }

  [[nodiscard]] T* data() noexcept { return heap_ != nullptr ? heap_ : inline_; }
  [[nodiscard]] const T* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] iterator begin() noexcept { return data(); }
  [[nodiscard]] iterator end() noexcept { return data() + size_; }
  [[nodiscard]] const_iterator begin() const noexcept { return data(); }
  [[nodiscard]] const_iterator end() const noexcept { return data() + size_; }

  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data()[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data()[i];
  }
  [[nodiscard]] T& at(std::size_t i) {
    if (i >= size_) throw std::out_of_range("SmallVector::at");
    return data()[i];
  }
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("SmallVector::at");
    return data()[i];
  }
  [[nodiscard]] T& front() noexcept { return data()[0]; }
  [[nodiscard]] const T& front() const noexcept { return data()[0]; }
  [[nodiscard]] T& back() noexcept { return data()[size_ - 1]; }
  [[nodiscard]] const T& back() const noexcept { return data()[size_ - 1]; }

  void push_back(T v) {
    reserve(size_ + 1);
    data()[size_++] = v;
  }
  void clear() noexcept { size_ = 0; }
  void resize(std::size_t n) {
    reserve(n);
    for (std::size_t i = size_; i < n; ++i) data()[i] = T{};
    size_ = static_cast<std::uint32_t>(n);
  }
  template <typename It>
  void assign(It first, It last) {
    const auto n = static_cast<std::size_t>(std::distance(first, last));
    reserve(n);
    std::copy(first, last, data());
    size_ = static_cast<std::uint32_t>(n);
  }
  void reserve(std::size_t n) {
    if (n <= capacity()) return;
    const std::size_t grown = std::max(n, 2 * capacity());
    T* fresh = new T[grown];
    std::memcpy(fresh, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = fresh;
    heap_cap_ = static_cast<std::uint32_t>(grown);
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return heap_ != nullptr ? heap_cap_ : N;
  }

  [[nodiscard]] bool operator==(const SmallVector& other) const noexcept {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }

 private:
  void steal(SmallVector& other) noexcept {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      heap_cap_ = other.heap_cap_;
      other.heap_ = nullptr;
      other.heap_cap_ = 0;
    } else {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
    }
    size_ = other.size_;
    other.size_ = 0;
  }

  T inline_[N];
  T* heap_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t heap_cap_ = 0;
};

}  // namespace qucp
