#pragma once
// Deterministic random number generation for reproducible experiments.
//
// Every stochastic component in the library (calibration synthesis, noise
// trajectories, measurement sampling, random folding, partitioner
// tie-breaking) draws from an explicitly seeded Rng. Substreams derived via
// Rng::derive(tag) decorrelate components without global state.

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace qucp {

/// Deterministic pseudo-random generator with named substream derivation.
///
/// Wraps a 64-bit Mersenne Twister seeded through SplitMix64 so that nearby
/// seeds produce uncorrelated streams. Copyable; copies continue the same
/// sequence independently from the point of copy.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(split_mix64(seed)), seed_(seed) {}

  /// Derive an independent substream from this generator's seed and a tag.
  /// Deriving is a pure function of (seed, tag): it does not advance *this.
  [[nodiscard]] Rng derive(std::string_view tag) const;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t integer(std::int64_t lo, std::int64_t hi);

  /// Normal deviate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// Sample an index from a discrete distribution given non-negative
  /// weights. Requires at least one strictly positive weight.
  [[nodiscard]] std::size_t discrete(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[index(i)]);
    }
  }

  /// Pick a uniformly random element. Requires non-empty span.
  template <typename T>
  [[nodiscard]] const T& choice(std::span<const T> items) {
    if (items.empty()) throw std::invalid_argument("Rng::choice: empty span");
    return items[index(items.size())];
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  /// Raw 64-bit draw (exposed for hashing-style uses in tests).
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

 private:
  static std::uint64_t split_mix64(std::uint64_t x);

  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::uint64_t seed_ = 0;
};

/// FNV-1a hash of a string, used for substream derivation tags.
[[nodiscard]] std::uint64_t fnv1a(std::string_view s) noexcept;

/// FNV-1a offset basis, the seed for incremental fnv1a_mix chains.
inline constexpr std::uint64_t kFnv1aBasis = 14695981039346656037ull;

/// Fold the 8 bytes of `v` (little-endian) into an FNV-1a running hash.
/// Shared kernel of circuit_fingerprint and the service cache keys — keep
/// one definition so fingerprints stay mutually stable.
[[nodiscard]] constexpr std::uint64_t fnv1a_mix(std::uint64_t h,
                                                std::uint64_t v) noexcept {
  for (int byte = 0; byte < 8; ++byte) {
    h ^= (v >> (8 * byte)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace qucp
