#include "common/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qucp {

std::uint64_t fnv1a(std::string_view s) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t Rng::split_mix64(std::uint64_t x) {
  x += 0x9E3779B97f4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Rng Rng::derive(std::string_view tag) const {
  return Rng(split_mix64(seed_ ^ fnv1a(tag)));
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return lo + (hi - lo) * unit_(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

std::int64_t Rng::integer(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::integer: lo > hi");
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return unit_(engine_) < p;
}

std::size_t Rng::discrete(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::discrete: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("Rng::discrete: all weights zero");
  }
  double r = unit_(engine_) * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // guard against floating rounding
}

}  // namespace qucp
