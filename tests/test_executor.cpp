#include "sim/executor.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "metrics/metrics.hpp"
#include "sim/statevector.hpp"

namespace qucp {
namespace {

/// Line device with uniform mild noise and no crosstalk.
Device quiet_line(int n) { return make_line_device(n, 7); }

Circuit bell_on(int a, int b, int n) {
  Circuit c(n, 2);
  c.h(a);
  c.cx(a, b);
  c.measure(a, 0);
  c.measure(b, 1);
  return c;
}

TEST(Executor, NoiselessMatchesIdeal) {
  const Device d = quiet_line(4);
  Circuit c = bell_on(0, 1, 4);
  ExecOptions opts;
  opts.gate_noise = false;
  opts.readout_noise = false;
  opts.idle_noise = false;
  opts.crosstalk_noise = false;
  const ProgramOutcome out = execute_single(d, c, opts);
  EXPECT_NEAR(out.distribution.prob(0b00), 0.5, 1e-9);
  EXPECT_NEAR(out.distribution.prob(0b11), 0.5, 1e-9);
}

TEST(Executor, NoiseReducesFidelity) {
  const Device d = quiet_line(4);
  Circuit c(4, 4);
  c.x(0);
  for (int i = 0; i < 6; ++i) {
    c.cx(0, 1);
    c.cx(1, 2);
  }
  c.measure(0, 0);
  c.measure(1, 1);
  c.measure(2, 2);
  ExecOptions noisy;
  const ProgramOutcome out = execute_single(d, c, noisy);
  const Distribution ideal = ideal_distribution(c);
  const double fidelity = out.distribution.prob(ideal.most_likely());
  EXPECT_LT(fidelity, 0.999);
  EXPECT_GT(fidelity, 0.3);  // mild noise should not destroy the state
}

TEST(Executor, ShotsAreSampledAndSeeded) {
  const Device d = quiet_line(3);
  Circuit c = bell_on(0, 1, 3);
  ExecOptions opts;
  opts.shots = 512;
  opts.seed = 5;
  const ProgramOutcome a = execute_single(d, c, opts);
  const ProgramOutcome b = execute_single(d, c, opts);
  EXPECT_EQ(a.counts.total(), 512);
  EXPECT_EQ(a.counts.data(), b.counts.data());
  opts.seed = 6;
  const ProgramOutcome e = execute_single(d, c, opts);
  EXPECT_NE(a.counts.data(), e.counts.data());
}

TEST(Executor, RejectsOverlappingPrograms) {
  const Device d = quiet_line(4);
  std::vector<PhysicalProgram> progs;
  progs.push_back({bell_on(0, 1, 4), "a"});
  progs.push_back({bell_on(1, 2, 4), "b"});
  EXPECT_THROW((void)execute_parallel(d, std::move(progs), {}),
               std::invalid_argument);
}

TEST(Executor, RejectsUncoupledGates) {
  const Device d = quiet_line(4);
  Circuit c(4, 2);
  c.h(0);
  c.cx(0, 2);  // not adjacent on a line
  c.measure(0, 0);
  EXPECT_THROW((void)execute_single(d, c, {}), std::invalid_argument);
}

TEST(Executor, RejectsUnmeasuredProgram) {
  const Device d = quiet_line(3);
  Circuit c(3);
  c.h(0);
  EXPECT_THROW((void)execute_single(d, c, {}), std::invalid_argument);
}

TEST(Executor, ThroughputAndQubitsUsed) {
  const Device d = quiet_line(8);
  std::vector<PhysicalProgram> progs;
  progs.push_back({bell_on(0, 1, 8), "a"});
  progs.push_back({bell_on(4, 5, 8), "b"});
  const ParallelRunReport report = execute_parallel(d, std::move(progs), {});
  EXPECT_EQ(report.qubits_used, 4);
  EXPECT_NEAR(report.throughput, 0.5, 1e-12);
  EXPECT_EQ(report.programs.size(), 2u);
  EXPECT_GT(report.makespan_ns, 0.0);
}

TEST(Executor, SwapsAreLowered) {
  const Device d = quiet_line(3);
  Circuit c(3, 2);
  c.x(0);
  c.swap(0, 1);
  c.measure(1, 0);
  ExecOptions opts;
  opts.gate_noise = false;
  opts.readout_noise = false;
  opts.idle_noise = false;
  const ProgramOutcome out = execute_single(d, c, opts);
  EXPECT_NEAR(out.distribution.prob(1), 1.0, 1e-9);
}

/// Crosstalk: two CX-heavy programs on one-hop edges with a planted gamma
/// must lose fidelity when run simultaneously.
class CrosstalkExecutionTest : public ::testing::Test {
 protected:
  static Device make_xtalk_device() {
    Topology topo(4, {{0, 1}, {1, 2}, {2, 3}});
    Rng rng(3);
    CalibrationProfile profile;
    profile.bad_edge_fraction = 0.0;
    profile.bad_readout_fraction = 0.0;
    Calibration cal = synthesize_calibration(topo, profile, rng);
    for (auto& e : cal.cx_error) e = 0.02;
    for (auto& r : cal.readout_error) r = 0.01;
    CrosstalkModel xtalk;
    xtalk.add_pair(0, 2, 5.0);  // edges (0,1) and (2,3) are one-hop
    return Device("xtalk4", std::move(topo), std::move(cal),
                  std::move(xtalk));
  }

  static Circuit cx_ladder(int a, int b) {
    Circuit c(4, 2);
    c.x(a);
    for (int i = 0; i < 8; ++i) c.cx(a, b);
    c.measure(a, 0);
    c.measure(b, 1);
    return c;
  }
};

TEST_F(CrosstalkExecutionTest, SimultaneousLosesFidelity) {
  const Device d = make_xtalk_device();
  const Circuit p0 = cx_ladder(0, 1);
  const Circuit p1 = cx_ladder(2, 3);

  const ProgramOutcome solo = execute_single(d, p0, {});
  std::vector<PhysicalProgram> progs;
  progs.push_back({p0, "p0"});
  progs.push_back({p1, "p1"});
  const ParallelRunReport both = execute_parallel(d, std::move(progs), {});

  EXPECT_GT(both.crosstalk_events, 0);
  EXPECT_NEAR(both.max_gamma_applied, 5.0, 1e-12);
  const Distribution ideal = ideal_distribution(p0);
  const double pst_solo = solo.distribution.prob(ideal.most_likely());
  const double pst_parallel =
      both.programs[0].distribution.prob(ideal.most_likely());
  EXPECT_LT(pst_parallel, pst_solo - 0.01);
}

TEST_F(CrosstalkExecutionTest, CrosstalkToggleRestoresFidelity) {
  const Device d = make_xtalk_device();
  std::vector<PhysicalProgram> progs;
  progs.push_back({cx_ladder(0, 1), "p0"});
  progs.push_back({cx_ladder(2, 3), "p1"});
  ExecOptions opts;
  opts.crosstalk_noise = false;
  const ParallelRunReport off = execute_parallel(d, progs, opts);
  EXPECT_EQ(off.crosstalk_events, 0);
  const ParallelRunReport on = execute_parallel(d, progs, {});
  const Distribution ideal = ideal_distribution(cx_ladder(0, 1));
  EXPECT_GT(off.programs[0].distribution.prob(ideal.most_likely()),
            on.programs[0].distribution.prob(ideal.most_likely()));
}

TEST_F(CrosstalkExecutionTest, NonOverlappingEdgesNoCrosstalk) {
  // Programs on edges (0,1) and (1,2) share qubit 1 -> rejected; instead
  // test edges (0,1) alone: no partner, no events.
  const Device d = make_xtalk_device();
  std::vector<PhysicalProgram> progs;
  progs.push_back({cx_ladder(0, 1), "p0"});
  const ParallelRunReport report = execute_parallel(d, std::move(progs), {});
  EXPECT_EQ(report.crosstalk_events, 0);
  EXPECT_DOUBLE_EQ(report.max_gamma_applied, 1.0);
}

TEST(Executor, AlapNotWorseThanAsapForUnequalDepths) {
  // A short program next to a long one: ALAP delays the short one so its
  // qubits idle in |0> instead of in an excited state.
  const Device d = quiet_line(5);
  Circuit longer(5, 2);
  longer.x(0);
  for (int i = 0; i < 20; ++i) longer.cx(0, 1);
  longer.measure(0, 0);
  longer.measure(1, 1);
  Circuit shorter(5, 1);
  shorter.x(3);
  shorter.measure(3, 0);

  auto run = [&](SchedulePolicy policy) {
    std::vector<PhysicalProgram> progs;
    progs.push_back({longer, "long"});
    progs.push_back({shorter, "short"});
    ExecOptions opts;
    opts.schedule = policy;
    return execute_parallel(d, std::move(progs), opts);
  };
  const auto alap = run(SchedulePolicy::ALAP);
  const auto asap = run(SchedulePolicy::ASAP);
  const double f_alap = alap.programs[1].distribution.prob(1);
  const double f_asap = asap.programs[1].distribution.prob(1);
  EXPECT_GE(f_alap, f_asap - 1e-9);
}

TEST(Executor, MeasurementClbitMapping) {
  const Device d = quiet_line(3);
  Circuit c(3, 3);
  c.x(2);
  c.measure(2, 0);  // q2 -> clbit 0
  c.measure(0, 2);  // q0 -> clbit 2
  ExecOptions opts;
  opts.gate_noise = false;
  opts.readout_noise = false;
  opts.idle_noise = false;
  const ProgramOutcome out = execute_single(d, c, opts);
  EXPECT_NEAR(out.distribution.prob(0b001), 1.0, 1e-9);
}

TEST(Executor, ValidatesOptions) {
  const Device d = quiet_line(3);
  Circuit c = bell_on(0, 1, 3);
  ExecOptions opts;
  opts.shots = 0;
  EXPECT_THROW((void)execute_single(d, c, opts), std::invalid_argument);
  EXPECT_THROW((void)execute_parallel(d, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace qucp
