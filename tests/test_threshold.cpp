#include "partition/threshold.hpp"

#include <gtest/gtest.h>

namespace qucp {
namespace {

const ProgramShape kShape{5, 11, 10};  // 4mod5-like

TEST(Threshold, ZeroThresholdRunsOneCircuit) {
  const Device d = make_manhattan65();
  const QucpPartitioner qucp(4.0);
  const ThresholdSelection sel =
      select_parallel_count(d, kShape, 6, 0.0, qucp);
  EXPECT_EQ(sel.num_circuits, 1);
  EXPECT_EQ(sel.assignments.size(), 1u);
  EXPECT_DOUBLE_EQ(sel.worst_delta, 0.0);
}

TEST(Threshold, HugeThresholdRunsMax) {
  const Device d = make_manhattan65();
  const QucpPartitioner qucp(4.0);
  const ThresholdSelection sel =
      select_parallel_count(d, kShape, 6, 100.0, qucp);
  EXPECT_EQ(sel.num_circuits, 6);
  EXPECT_EQ(sel.assignments.size(), 6u);
}

TEST(Threshold, MonotoneInThreshold) {
  const Device d = make_manhattan65();
  const QucpPartitioner qucp(4.0);
  int prev = 1;
  for (double tau : {0.0, 0.01, 0.05, 0.1, 0.3, 1.0, 10.0}) {
    const ThresholdSelection sel =
        select_parallel_count(d, kShape, 6, tau, qucp);
    EXPECT_GE(sel.num_circuits, prev) << "tau=" << tau;
    prev = sel.num_circuits;
  }
}

TEST(Threshold, WorstDeltaWithinThresholdWhenMultiple) {
  const Device d = make_manhattan65();
  const QucpPartitioner qucp(4.0);
  const double tau = 0.2;
  const ThresholdSelection sel =
      select_parallel_count(d, kShape, 6, tau, qucp);
  if (sel.num_circuits > 1) {
    EXPECT_LE(sel.worst_delta, tau);
  }
}

TEST(Threshold, CapsAtDeviceCapacity) {
  const Device d = make_line_device(7);
  const QucpPartitioner qucp(4.0);
  const ProgramShape small{2, 3, 3};
  // At most 3 disjoint 2-qubit partitions fit on 7 qubits (line).
  const ThresholdSelection sel =
      select_parallel_count(d, small, 10, 100.0, qucp);
  EXPECT_LE(sel.num_circuits, 3);
  EXPECT_GE(sel.num_circuits, 2);
}

TEST(Threshold, IndependentEfsMatchesSoloAllocation) {
  const Device d = make_manhattan65();
  const QucpPartitioner qucp(4.0);
  const ThresholdSelection sel =
      select_parallel_count(d, kShape, 3, 0.5, qucp);
  const auto solo = qucp.allocate(d, std::vector<ProgramShape>{kShape});
  ASSERT_TRUE(solo.has_value());
  EXPECT_DOUBLE_EQ(sel.independent_efs, (*solo)[0].efs.score);
}

TEST(Threshold, Validation) {
  const Device d = make_line_device(5);
  const QucpPartitioner qucp(4.0);
  EXPECT_THROW((void)select_parallel_count(d, kShape, 0, 0.1, qucp),
               std::invalid_argument);
  EXPECT_THROW((void)select_parallel_count(d, kShape, 2, -0.1, qucp),
               std::invalid_argument);
  // Program wider than the device.
  const ProgramShape wide{9, 5, 5};
  EXPECT_THROW((void)select_parallel_count(d, wide, 2, 0.1, qucp),
               std::runtime_error);
}

TEST(Threshold, ThroughputGrowsWithCircuits) {
  const Device d = make_manhattan65();
  const QucpPartitioner qucp(4.0);
  const ThresholdSelection one =
      select_parallel_count(d, kShape, 6, 0.0, qucp);
  const ThresholdSelection many =
      select_parallel_count(d, kShape, 6, 100.0, qucp);
  const double t1 =
      one.num_circuits * kShape.num_qubits / 65.0;
  const double t2 = many.num_circuits * kShape.num_qubits / 65.0;
  EXPECT_NEAR(t1, 5.0 / 65.0, 1e-12);        // 7.7% (paper Fig. 4)
  EXPECT_NEAR(t2, 30.0 / 65.0, 1e-12);       // 46.2%
}

}  // namespace
}  // namespace qucp
