#include "vqe/fermion.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qucp {
namespace {

TEST(PauliProduct, MultiplicationTable) {
  // XY = iZ, YX = -iZ, etc.
  auto check = [](PauliOp a, PauliOp b, PauliOp want, cx phase) {
    const auto [op, ph] = pauli_product(a, b);
    EXPECT_EQ(op, want);
    EXPECT_NEAR(std::abs(ph - phase), 0.0, 1e-12);
  };
  const cx i{0, 1};
  check(PauliOp::X, PauliOp::Y, PauliOp::Z, i);
  check(PauliOp::Y, PauliOp::X, PauliOp::Z, -i);
  check(PauliOp::Y, PauliOp::Z, PauliOp::X, i);
  check(PauliOp::Z, PauliOp::Y, PauliOp::X, -i);
  check(PauliOp::Z, PauliOp::X, PauliOp::Y, i);
  check(PauliOp::X, PauliOp::Z, PauliOp::Y, -i);
  check(PauliOp::X, PauliOp::X, PauliOp::I, 1.0);
  check(PauliOp::I, PauliOp::Y, PauliOp::Y, 1.0);
  check(PauliOp::Z, PauliOp::I, PauliOp::Z, 1.0);
}

TEST(PauliProduct, MatchesMatrixProduct) {
  for (PauliOp a : {PauliOp::I, PauliOp::X, PauliOp::Y, PauliOp::Z}) {
    for (PauliOp b : {PauliOp::I, PauliOp::X, PauliOp::Y, PauliOp::Z}) {
      const auto [op, phase] = pauli_product(a, b);
      Matrix expect = pauli_matrix(op);
      expect *= phase;
      EXPECT_TRUE(
          (pauli_matrix(a) * pauli_matrix(b)).approx_equal(expect, 1e-12));
    }
  }
}

TEST(QubitOperatorTest, AdditionMergesTerms) {
  QubitOperator a(2);
  a.add_term(PauliString("XX"), 1.0);
  QubitOperator b(2);
  b.add_term(PauliString("XX"), cx{0.5, 0.0});
  b.add_term(PauliString("ZI"), 2.0);
  a += b;
  EXPECT_EQ(a.terms().size(), 2u);
  EXPECT_NEAR(a.terms().at("XX").real(), 1.5, 1e-12);
}

TEST(QubitOperatorTest, ProductAccumulatesPhases) {
  QubitOperator x(1);
  x.add_term(PauliString("X"), 1.0);
  QubitOperator y(1);
  y.add_term(PauliString("Y"), 1.0);
  const QubitOperator xy = x * y;
  ASSERT_EQ(xy.terms().size(), 1u);
  EXPECT_NEAR(std::abs(xy.terms().at("Z") - cx{0, 1}), 0.0, 1e-12);
}

TEST(QubitOperatorTest, ToHamiltonianRejectsImaginary) {
  QubitOperator op(1);
  op.add_term(PauliString("X"), cx{0.0, 1.0});
  EXPECT_THROW((void)op.to_hamiltonian(), std::logic_error);
}

TEST(Mapping, JwAnnihilationSatisfiesAnticommutation) {
  // {a_p, a_q^dagger} = delta_pq must hold after mapping.
  const int n = 3;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      FermionicOp apaq(n);
      apaq.add_term({{{p, false}, {q, true}}, 1.0});
      FermionicOp aqap(n);
      aqap.add_term({{{q, true}, {p, false}}, 1.0});
      QubitOperator anti = map_to_qubits(apaq, FermionMapping::JordanWigner);
      anti += map_to_qubits(aqap, FermionMapping::JordanWigner);
      anti.prune(1e-12);
      if (p == q) {
        ASSERT_EQ(anti.terms().size(), 1u) << p << q;
        EXPECT_NEAR(std::abs(anti.terms().begin()->second - cx{1.0}), 0.0,
                    1e-12);
        EXPECT_EQ(anti.terms().begin()->first, std::string(n, 'I'));
      } else {
        EXPECT_TRUE(anti.terms().empty()) << p << " " << q;
      }
    }
  }
}

TEST(Mapping, ParityAnnihilationSatisfiesAnticommutation) {
  const int n = 3;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      FermionicOp apaq(n);
      apaq.add_term({{{p, false}, {q, true}}, 1.0});
      FermionicOp aqap(n);
      aqap.add_term({{{q, true}, {p, false}}, 1.0});
      QubitOperator anti = map_to_qubits(apaq, FermionMapping::Parity);
      anti += map_to_qubits(aqap, FermionMapping::Parity);
      anti.prune(1e-12);
      if (p == q) {
        ASSERT_EQ(anti.terms().size(), 1u);
        EXPECT_NEAR(std::abs(anti.terms().begin()->second - cx{1.0}), 0.0,
                    1e-12);
      } else {
        EXPECT_TRUE(anti.terms().empty()) << p << " " << q;
      }
    }
  }
}

TEST(Mapping, NumberOperatorSpectrum) {
  // n_0 = a0^dagger a0 has eigenvalues {0, 1} on each mode.
  FermionicOp number(2);
  number.add_term({{{0, true}, {0, false}}, 1.0});
  for (FermionMapping mapping :
       {FermionMapping::JordanWigner, FermionMapping::Parity}) {
    const Hamiltonian h =
        map_to_qubits(number, mapping).to_hamiltonian();
    const auto eig = hermitian_eigenvalues(h.matrix());
    EXPECT_NEAR(eig.front(), 0.0, 1e-10);
    EXPECT_NEAR(eig.back(), 1.0, 1e-10);
  }
}

TEST(Mapping, BravyiKitaevAnticommutation) {
  const int n = 4;
  for (int p = 0; p < n; ++p) {
    for (int q = 0; q < n; ++q) {
      FermionicOp apaq(n);
      apaq.add_term({{{p, false}, {q, true}}, 1.0});
      FermionicOp aqap(n);
      aqap.add_term({{{q, true}, {p, false}}, 1.0});
      QubitOperator anti = map_to_qubits(apaq, FermionMapping::BravyiKitaev);
      anti += map_to_qubits(aqap, FermionMapping::BravyiKitaev);
      anti.prune(1e-12);
      if (p == q) {
        ASSERT_EQ(anti.terms().size(), 1u) << p << " " << q;
        EXPECT_NEAR(std::abs(anti.terms().begin()->second - cx{1.0}), 0.0,
                    1e-12);
      } else {
        EXPECT_TRUE(anti.terms().empty()) << p << " " << q;
      }
    }
  }
}

TEST(Mapping, BravyiKitaevNumberOperator) {
  FermionicOp number(4);
  number.add_term({{{2, true}, {2, false}}, 1.0});
  const Hamiltonian h =
      map_to_qubits(number, FermionMapping::BravyiKitaev).to_hamiltonian();
  const auto eig = hermitian_eigenvalues(h.matrix());
  EXPECT_NEAR(eig.front(), 0.0, 1e-10);
  EXPECT_NEAR(eig.back(), 1.0, 1e-10);
}

TEST(Mapping, BravyiKitaevSpectrumMatchesJw) {
  const FermionicOp h2 = h2_fermionic_hamiltonian();
  const auto jw = hermitian_eigenvalues(
      map_to_qubits(h2, FermionMapping::JordanWigner).to_hamiltonian()
          .matrix());
  const auto bk = hermitian_eigenvalues(
      map_to_qubits(h2, FermionMapping::BravyiKitaev).to_hamiltonian()
          .matrix());
  ASSERT_EQ(jw.size(), bk.size());
  for (std::size_t i = 0; i < jw.size(); ++i) {
    EXPECT_NEAR(jw[i], bk[i], 1e-8) << i;
  }
}

TEST(Mapping, BravyiKitaevLocalityBeatsJwOnHighModes) {
  // BK's selling point: ladder operators touch O(log n) qubits. For mode
  // 6 of 8, JW's string covers 7 qubits; BK's covers fewer.
  const int n = 8;
  FermionicOp a6(n);
  a6.add_term({{{6, false}}, 1.0});
  auto max_support = [](const QubitOperator& op) {
    std::size_t mx = 0;
    for (const auto& [label, coeff] : op.terms()) {
      mx = std::max(mx, static_cast<std::size_t>(
                            PauliString(label).support().size()));
    }
    return mx;
  };
  const auto jw = map_to_qubits(a6, FermionMapping::JordanWigner);
  const auto bk = map_to_qubits(a6, FermionMapping::BravyiKitaev);
  EXPECT_EQ(max_support(jw), 7u);
  EXPECT_LT(max_support(bk), 7u);
}

TEST(Mapping, JwAndParitySpectraAgree) {
  const FermionicOp h2 = h2_fermionic_hamiltonian();
  const auto jw =
      hermitian_eigenvalues(
          map_to_qubits(h2, FermionMapping::JordanWigner).to_hamiltonian()
              .matrix());
  const auto parity = hermitian_eigenvalues(
      map_to_qubits(h2, FermionMapping::Parity).to_hamiltonian().matrix());
  ASSERT_EQ(jw.size(), parity.size());
  for (std::size_t i = 0; i < jw.size(); ++i) {
    EXPECT_NEAR(jw[i], parity[i], 1e-8) << i;
  }
}

TEST(Mapping, H2GroundEnergyFromIntegrals) {
  const Hamiltonian full =
      map_to_qubits(h2_fermionic_hamiltonian(), FermionMapping::JordanWigner)
          .to_hamiltonian();
  // Electronic ground energy near equilibrium, STO-3G: about -1.85 Ha.
  EXPECT_NEAR(full.ground_energy(), -1.857, 2e-2);
}

TEST(Taper, RemovesSymmetryQubit) {
  // Parity-mapped H2 has only I/Z on qubits 1 and 3 (conserved parities).
  const QubitOperator mapped =
      map_to_qubits(h2_fermionic_hamiltonian(), FermionMapping::Parity);
  for (const auto& [label, coeff] : mapped.terms()) {
    const PauliString p(label);
    EXPECT_TRUE(p.op(1) == PauliOp::I || p.op(1) == PauliOp::Z) << label;
    EXPECT_TRUE(p.op(3) == PauliOp::I || p.op(3) == PauliOp::Z) << label;
  }
  const QubitOperator reduced = taper_qubit(taper_qubit(mapped, 3, -1), 1, 1);
  EXPECT_EQ(reduced.num_qubits(), 2);
}

TEST(Taper, Validation) {
  QubitOperator op(2);
  op.add_term(PauliString("XI"), 1.0);
  EXPECT_THROW((void)taper_qubit(op, 1, 1), std::logic_error);
  EXPECT_THROW((void)taper_qubit(op, 0, 2), std::invalid_argument);
  EXPECT_THROW((void)taper_qubit(op, 5, 1), std::out_of_range);
}

TEST(Taper, H2ViaParityMatchesCanonical) {
  // The paper's derivation: 4-mode parity mapping + 2-qubit reduction must
  // reproduce the canonical 2-qubit Hamiltonian's ground energy.
  const Hamiltonian reduced = h2_via_parity_mapping();
  EXPECT_EQ(reduced.num_qubits(), 2);
  EXPECT_NEAR(reduced.ground_energy(), h2_hamiltonian().ground_energy(),
              2e-2);
  // And exactly the full 4-qubit ground energy (reduction is exact).
  const Hamiltonian full =
      map_to_qubits(h2_fermionic_hamiltonian(), FermionMapping::Parity)
          .to_hamiltonian();
  EXPECT_NEAR(reduced.ground_energy(), full.ground_energy(), 1e-9);
}

TEST(Taper, H2ReducedStructureMatchesPaper) {
  // 5 Pauli terms {II, IZ, ZI, ZZ, XX} as in the paper's Section IV-C.
  const Hamiltonian reduced = h2_via_parity_mapping().simplified(1e-10);
  std::set<std::string> labels;
  for (const auto& t : reduced.terms()) labels.insert(t.pauli.label());
  for (const auto& want : {"IZ", "ZI", "ZZ", "XX"}) {
    EXPECT_TRUE(labels.count(want)) << want;
  }
}

}  // namespace
}  // namespace qucp
