#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace qucp {
namespace {

TEST(Qasm, ParseMinimal) {
  const Circuit c = parse_qasm(R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[2];
    creg c[2];
    h q[0];
    cx q[0],q[1];
    measure q[0] -> c[0];
    measure q[1] -> c[1];
  )");
  EXPECT_EQ(c.num_qubits(), 2);
  EXPECT_EQ(c.gate_count(), 2);
  EXPECT_EQ(c.count_ops().at("measure"), 2);
}

TEST(Qasm, ParseParameterExpressions) {
  const Circuit c = parse_qasm(R"(
    qreg q[1];
    rz(pi/2) q[0];
    rx(-pi/4) q[0];
    ry(2*pi) q[0];
    u1(0.5) q[0];
    u3(pi/2, -1.5e-1, (pi+1)/2) q[0];
  )");
  EXPECT_NEAR(c.ops()[0].params[0], std::numbers::pi / 2, 1e-12);
  EXPECT_NEAR(c.ops()[1].params[0], -std::numbers::pi / 4, 1e-12);
  EXPECT_NEAR(c.ops()[2].params[0], 2 * std::numbers::pi, 1e-12);
  EXPECT_NEAR(c.ops()[3].params[0], 0.5, 1e-12);
  EXPECT_NEAR(c.ops()[4].params[1], -0.15, 1e-12);
  EXPECT_NEAR(c.ops()[4].params[2], (std::numbers::pi + 1) / 2, 1e-12);
}

TEST(Qasm, CommentsStripped) {
  const Circuit c = parse_qasm(R"(
    qreg q[1]; // register
    // a full-line comment; h q[0];
    x q[0];
  )");
  EXPECT_EQ(c.gate_count(), 1);
  EXPECT_EQ(c.ops()[0].kind, GateKind::X);
}

TEST(Qasm, MultipleRegistersFlattened) {
  const Circuit c = parse_qasm(R"(
    qreg a[2];
    qreg b[2];
    creg m[4];
    x a[1];
    x b[0];
    measure b[1] -> m[3];
  )");
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.ops()[0].qubits[0], 1);
  EXPECT_EQ(c.ops()[1].qubits[0], 2);
  EXPECT_EQ(c.ops()[2].qubits[0], 3);
  EXPECT_EQ(c.ops()[2].clbit, 3);
}

TEST(Qasm, BroadcastMeasureAndSingleQubitGate) {
  const Circuit c = parse_qasm(R"(
    qreg q[3];
    creg c[3];
    h q;
    measure q -> c;
  )");
  EXPECT_EQ(c.count_ops().at("h"), 3);
  EXPECT_EQ(c.count_ops().at("measure"), 3);
}

TEST(Qasm, CcxExpands) {
  const Circuit c = parse_qasm(R"(
    qreg q[3];
    ccx q[0],q[1],q[2];
  )");
  EXPECT_EQ(c.gate_count(), 15);
  EXPECT_EQ(c.two_qubit_count(), 6);
}

TEST(Qasm, BarrierForms) {
  const Circuit c = parse_qasm(R"(
    qreg q[3];
    barrier q;
    barrier q[0],q[2];
  )");
  EXPECT_EQ(c.ops()[0].qubits.size(), 3u);
  EXPECT_EQ(c.ops()[1].qubits, (std::vector<int>{0, 2}));
}

TEST(Qasm, Errors) {
  EXPECT_THROW((void)parse_qasm("x q[0];"), QasmError);  // no qreg
  EXPECT_THROW((void)parse_qasm("qreg q[2]; x q[5];"), QasmError);
  EXPECT_THROW((void)parse_qasm("qreg q[2]; frobnicate q[0];"), QasmError);
  EXPECT_THROW((void)parse_qasm("qreg q[2]; cx q[0];"), QasmError);
  EXPECT_THROW((void)parse_qasm("qreg q[2]; measure q[0];"), QasmError);
  EXPECT_THROW((void)parse_qasm("qreg q[2]; qreg q[3];"), QasmError);
  EXPECT_THROW((void)parse_qasm("qreg q[0];"), QasmError);
  EXPECT_THROW((void)parse_qasm("qreg q[1]; rz(pi/0) q[0];"), QasmError);
  EXPECT_THROW((void)parse_qasm("qreg q[1]; rz((pi q[0];"), QasmError);
}

TEST(Qasm, RoundTripPreservesSemantics) {
  Circuit c(3, 3, "rt");
  c.h(0);
  c.rz(0.25, 1);
  c.cx(0, 2);
  c.u3(0.1, 0.2, 0.3, 2);
  c.swap(1, 2);
  c.measure_all();
  const Circuit back = parse_qasm(to_qasm(c), "rt");
  ASSERT_EQ(back.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(back.ops()[i].kind, c.ops()[i].kind) << i;
    EXPECT_EQ(back.ops()[i].qubits, c.ops()[i].qubits) << i;
    ASSERT_EQ(back.ops()[i].params.size(), c.ops()[i].params.size());
    for (std::size_t p = 0; p < c.ops()[i].params.size(); ++p) {
      EXPECT_NEAR(back.ops()[i].params[p], c.ops()[i].params[p], 1e-9);
    }
  }
}

TEST(Qasm, WriterEmitsHeader) {
  Circuit c(1);
  c.x(0);
  const std::string text = to_qasm(c);
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("qreg q[1];"), std::string::npos);
  EXPECT_NE(text.find("x q[0];"), std::string::npos);
}

}  // namespace
}  // namespace qucp
