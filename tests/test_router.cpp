#include "mapping/router.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchmarks/suite.hpp"
#include "common/rng.hpp"
#include "mapping/transpiler.hpp"
#include "sim/statevector.hpp"

namespace qucp {
namespace {

/// Verify the routed circuit equals the logical one under the final
/// layout: undo the permutation and compare ideal distributions.
void expect_equivalent(const Circuit& logical, const RoutingResult& routed) {
  const Distribution want = ideal_distribution(logical);
  const Distribution got = ideal_distribution(routed.physical.compacted());
  ASSERT_EQ(want.probs().size(), got.probs().size());
  for (const auto& [outcome, p] : want.probs()) {
    EXPECT_NEAR(got.prob(outcome), p, 1e-9) << "outcome " << outcome;
  }
}

TEST(Router, NoSwapsWhenAlreadyRoutable) {
  const Device d = make_line_device(5);
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  const std::vector<int> partition{1, 2, 3};
  const std::vector<int> layout{1, 2, 3};
  const RoutingResult r = route_on_partition(c, d, partition, layout);
  EXPECT_EQ(r.swaps_added, 0);
  expect_equivalent(c, r);
}

TEST(Router, InsertsSwapForDistantPair) {
  const Device d = make_line_device(5);
  Circuit c(3);
  c.x(0);
  c.cx(0, 2);  // endpoints of the partition line
  c.measure_all();
  const std::vector<int> partition{0, 1, 2};
  const std::vector<int> layout{0, 1, 2};
  const RoutingResult r = route_on_partition(c, d, partition, layout);
  EXPECT_GE(r.swaps_added, 1);
  expect_equivalent(c, r);
}

TEST(Router, StaysInsidePartition) {
  const Device d = make_line_device(8);
  Circuit c(3);
  c.cx(0, 2);
  c.cx(1, 2);
  c.cx(0, 1);
  c.measure_all();
  const std::vector<int> partition{3, 4, 5};
  const std::vector<int> layout{3, 4, 5};
  const RoutingResult r = route_on_partition(c, d, partition, layout);
  for (const Gate& g : r.physical.ops()) {
    for (int q : g.qubits) {
      EXPECT_GE(q, 3);
      EXPECT_LE(q, 5);
    }
  }
  expect_equivalent(c, r);
}

TEST(Router, BenchmarksRouteOnToronto) {
  const Device d = make_toronto27();
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    const int k = spec.circuit.num_qubits();
    // A path partition through the heavy-hex: qubits 0..k via BFS order.
    std::vector<int> partition;
    for (int q = 0; q < d.num_qubits() && static_cast<int>(partition.size()) < k + 1; ++q) {
      partition.push_back(q);
    }
    if (!d.topology().is_connected_subset(partition)) continue;
    std::vector<int> layout(k);
    for (int i = 0; i < k; ++i) layout[i] = partition[i];
    const RoutingResult r =
        route_on_partition(spec.circuit, d, partition, layout);
    expect_equivalent(spec.circuit, r);
  }
}

TEST(Router, NonTerminalMeasureRejected) {
  const Device d = make_line_device(4);
  Circuit c(2);
  c.measure(0, 0);
  c.h(0);
  const std::vector<int> partition{0, 1};
  const std::vector<int> layout{0, 1};
  EXPECT_THROW((void)route_on_partition(c, d, partition, layout),
               std::invalid_argument);
}

TEST(Router, LayoutValidation) {
  const Device d = make_line_device(4);
  Circuit c(2);
  c.cx(0, 1);
  const std::vector<int> partition{0, 1};
  EXPECT_THROW((void)route_on_partition(c, d, partition,
                                        std::vector<int>{0, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)route_on_partition(c, d, partition,
                                        std::vector<int>{0, 3}),
               std::invalid_argument);
  EXPECT_THROW((void)route_on_partition(c, d, std::vector<int>{0, 2},
                                        std::vector<int>{0, 2}),
               std::invalid_argument);
}

TEST(Router, NoiseAwareAvoidsBadEdge) {
  // Ring of 4: two equal-length routes; one passes a terrible edge.
  Topology topo(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  Rng rng(9);
  CalibrationProfile profile;
  profile.bad_edge_fraction = 0.0;
  Calibration cal = synthesize_calibration(topo, profile, rng);
  for (auto& e : cal.cx_error) e = 0.01;
  const int bad = *topo.edge_index(1, 2);
  cal.cx_error[bad] = 0.30;
  Device d("ring4", std::move(topo), std::move(cal), CrosstalkModel{});

  Circuit c(4);
  c.x(0);
  c.cx(0, 2);  // distance 2 both ways around the ring
  c.measure_all();
  const std::vector<int> partition{0, 1, 2, 3};
  const std::vector<int> layout{0, 1, 2, 3};
  RouterOptions noise_on;
  noise_on.noise_aware = true;
  noise_on.error_weight = 20.0;
  const RoutingResult r =
      route_on_partition(c, d, partition, layout, noise_on);
  for (const Gate& g : r.physical.ops()) {
    if (g.kind == GateKind::SWAP) {
      EXPECT_FALSE((g.qubits[0] == 1 && g.qubits[1] == 2) ||
                   (g.qubits[0] == 2 && g.qubits[1] == 1))
          << "router used the bad edge";
    }
  }
  expect_equivalent(c, r);
}

TEST(Transpiler, EndToEndPreservesSemantics) {
  const Device d = make_toronto27();
  const BenchmarkSpec& spec = get_benchmark("fredkin");
  const std::vector<int> partition{1, 4, 7};
  const TranspiledProgram tp =
      transpile_to_partition(spec.circuit, d, partition);
  const Distribution want = ideal_distribution(spec.circuit);
  const Distribution got = ideal_distribution(tp.physical.compacted());
  for (const auto& [outcome, p] : want.probs()) {
    EXPECT_NEAR(got.prob(outcome), p, 1e-9);
  }
  // Ops confined to the partition.
  const std::set<int> part_set(partition.begin(), partition.end());
  for (const Gate& g : tp.physical.ops()) {
    for (int q : g.qubits) EXPECT_TRUE(part_set.count(q));
  }
}

TEST(Transpiler, CnaOptionsCarryContext) {
  CrosstalkModel est;
  est.add_pair(0, 2, 3.0);
  const TranspileOptions opts = cna_options({0, 1}, &est);
  EXPECT_EQ(opts.placement, PlacementStyle::NoiseAdaptive);
  EXPECT_TRUE(opts.router.crosstalk_aware);
  EXPECT_EQ(opts.router.context_edges, (std::vector<int>{0, 1}));
  EXPECT_EQ(opts.router.crosstalk_estimates, &est);
}

TEST(Transpiler, CnaRoutesCorrectly) {
  const Device d = make_toronto27();
  const BenchmarkSpec& spec = get_benchmark("adder");
  const std::vector<int> partition{12, 13, 14, 15, 16};
  CrosstalkModel est;
  for (const auto& [e1, e2] : d.topology().one_hop_edge_pairs()) {
    est.add_pair(e1, e2, 2.5);
  }
  const std::vector<int> context = d.topology().induced_edges(
      std::vector<int>{17, 18, 21});
  const TranspiledProgram tp = transpile_to_partition(
      spec.circuit, d, partition, cna_options(context, &est));
  const Distribution want = ideal_distribution(spec.circuit);
  const Distribution got = ideal_distribution(tp.physical.compacted());
  for (const auto& [outcome, p] : want.probs()) {
    EXPECT_NEAR(got.prob(outcome), p, 1e-9);
  }
}

}  // namespace
}  // namespace qucp
