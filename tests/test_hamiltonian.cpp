#include "vqe/hamiltonian.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qucp {
namespace {

TEST(Hamiltonian, ConstructionValidation) {
  EXPECT_THROW(Hamiltonian(0, {}), std::invalid_argument);
  EXPECT_THROW(Hamiltonian(2, {{PauliString("X"), 1.0}}),
               std::invalid_argument);
  EXPECT_NO_THROW(Hamiltonian(2, {{PauliString("XX"), 1.0}}));
}

TEST(Hamiltonian, MatrixAssembly) {
  const Hamiltonian h(1, {{PauliString("Z"), 2.0}, {PauliString("X"), 1.0}});
  const Matrix m = h.matrix();
  EXPECT_NEAR(m(0, 0).real(), 2.0, 1e-12);
  EXPECT_NEAR(m(1, 1).real(), -2.0, 1e-12);
  EXPECT_NEAR(m(0, 1).real(), 1.0, 1e-12);
  // Eigenvalues +- sqrt(5).
  EXPECT_NEAR(h.ground_energy(), -std::sqrt(5.0), 1e-10);
}

TEST(Hamiltonian, SimplifiedMergesDuplicates) {
  const Hamiltonian h(1, {{PauliString("Z"), 1.0},
                          {PauliString("Z"), 0.5},
                          {PauliString("X"), 1e-15}});
  const Hamiltonian s = h.simplified();
  ASSERT_EQ(s.terms().size(), 1u);
  EXPECT_EQ(s.terms()[0].pauli.label(), "Z");
  EXPECT_NEAR(s.terms()[0].coefficient, 1.5, 1e-12);
}

TEST(H2, FiveTermsOfThePaper) {
  const Hamiltonian h2 = h2_hamiltonian();
  EXPECT_EQ(h2.num_qubits(), 2);
  ASSERT_EQ(h2.terms().size(), 5u);
  std::set<std::string> labels;
  for (const auto& t : h2.terms()) labels.insert(t.pauli.label());
  EXPECT_EQ(labels,
            (std::set<std::string>{"II", "IZ", "ZI", "ZZ", "XX"}));
}

TEST(H2, GroundEnergyMatchesLiterature) {
  // Electronic ground energy at 0.735 A, STO-3G: ~ -1.8572750302 Ha.
  EXPECT_NEAR(h2_hamiltonian().ground_energy(), -1.857275030202382, 1e-6);
}

TEST(H2, TotalEnergyWithNuclearRepulsion) {
  const double total =
      h2_hamiltonian().ground_energy() + h2_nuclear_repulsion();
  EXPECT_NEAR(total, -1.1373, 2e-3);
}

TEST(H2, SymmetryOfIzZiCoefficients) {
  const Hamiltonian h2 = h2_hamiltonian();
  double iz = 0.0, zi = 0.0;
  for (const auto& t : h2.terms()) {
    if (t.pauli.label() == "IZ") iz = t.coefficient;
    if (t.pauli.label() == "ZI") zi = t.coefficient;
  }
  EXPECT_NEAR(iz, -zi, 1e-12);
}

TEST(H2, MatrixIsHermitian) {
  EXPECT_TRUE(h2_hamiltonian().matrix().is_hermitian(1e-12));
}

}  // namespace
}  // namespace qucp
