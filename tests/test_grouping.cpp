#include "vqe/grouping.hpp"

#include <gtest/gtest.h>

#include "sim/statevector.hpp"
#include "vqe/ansatz.hpp"

namespace qucp {
namespace {

TEST(Grouping, H2SplitsIntoTwoGroups) {
  // The paper: {II, IZ, ZI, ZZ} and {XX}.
  const auto groups = group_commuting_terms(h2_hamiltonian());
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].terms.size(), 4u);
  EXPECT_EQ(groups[1].terms.size(), 1u);
  EXPECT_EQ(groups[1].terms[0].pauli.label(), "XX");
}

TEST(Grouping, GroupsAreInternallyQwc) {
  const Hamiltonian h(3, {{PauliString("XXI"), 1.0},
                          {PauliString("IXX"), 1.0},
                          {PauliString("ZZZ"), 1.0},
                          {PauliString("IZZ"), 1.0},
                          {PauliString("XIX"), 1.0}});
  const auto groups = group_commuting_terms(h);
  for (const auto& group : groups) {
    for (std::size_t i = 0; i < group.terms.size(); ++i) {
      for (std::size_t j = i + 1; j < group.terms.size(); ++j) {
        EXPECT_TRUE(group.terms[i].pauli.qubit_wise_commutes_with(
            group.terms[j].pauli));
      }
    }
  }
  // All terms preserved.
  std::size_t total = 0;
  for (const auto& g : groups) total += g.terms.size();
  EXPECT_EQ(total, h.terms().size());
}

TEST(Grouping, BasisResolvedPerQubit) {
  const auto groups = group_commuting_terms(h2_hamiltonian());
  // Group 0 measures Z on both qubits; group 1 measures X on both.
  EXPECT_EQ(groups[0].basis[0], PauliOp::Z);
  EXPECT_EQ(groups[0].basis[1], PauliOp::Z);
  EXPECT_EQ(groups[1].basis[0], PauliOp::X);
  EXPECT_EQ(groups[1].basis[1], PauliOp::X);
}

TEST(MeasurementCircuit, AddsBasisRotationAndMeasure) {
  const auto groups = group_commuting_terms(h2_hamiltonian());
  Circuit prep(2);
  prep.ry(0.3, 0);
  prep.cx(0, 1);
  const Circuit zbasis = measurement_circuit(prep, groups[0]);
  EXPECT_EQ(zbasis.count_ops().at("measure"), 2);
  EXPECT_EQ(zbasis.count_ops().count("h"), 0u);
  const Circuit xbasis = measurement_circuit(prep, groups[1]);
  EXPECT_EQ(xbasis.count_ops().at("h"), 2);
}

TEST(MeasurementCircuit, RejectsMeasuredPrep) {
  const auto groups = group_commuting_terms(h2_hamiltonian());
  Circuit prep(2);
  prep.measure_all();
  EXPECT_THROW((void)measurement_circuit(prep, groups[0]),
               std::invalid_argument);
}

TEST(TermExpectation, ComputedFromDistribution) {
  // <IZ> on |01> (outcome bit0 = 1): parity of qubit 0 -> -1.
  const Distribution d(2, {{0b01, 1.0}});
  EXPECT_NEAR(term_expectation(PauliString("IZ"), d), -1.0, 1e-12);
  EXPECT_NEAR(term_expectation(PauliString("ZI"), d), 1.0, 1e-12);
  EXPECT_NEAR(term_expectation(PauliString("ZZ"), d), -1.0, 1e-12);
  EXPECT_NEAR(term_expectation(PauliString("II"), d), 1.0, 1e-12);
}

TEST(TermExpectation, MixedDistribution) {
  const Distribution d(1, {{0, 0.8}, {1, 0.2}});
  EXPECT_NEAR(term_expectation(PauliString("Z"), d), 0.6, 1e-12);
}

TEST(GroupEnergy, SumsWeightedExpectations) {
  const auto groups = group_commuting_terms(h2_hamiltonian());
  // All-zeros distribution in the Z group: <IZ>=<ZI>=<ZZ>=1, <II>=1.
  const Distribution d(2, {{0, 1.0}});
  double expected = 0.0;
  for (const auto& t : groups[0].terms) expected += t.coefficient;
  EXPECT_NEAR(group_energy(groups[0], d), expected, 1e-12);
}

TEST(GroupEnergy, ReconstructsExactEnergyFromIdealMeasurements) {
  // Energy from grouped ideal measurement must match <psi|H|psi>.
  const Hamiltonian h2 = h2_hamiltonian();
  const auto groups = group_commuting_terms(h2);
  const Circuit prep = make_tied_ansatz(2, 2, 0.35);

  Statevector sv(2);
  sv.apply_circuit(prep);
  const double direct = sv.expectation(h2.matrix());

  double from_groups = 0.0;
  for (const auto& group : groups) {
    const Circuit mc = measurement_circuit(prep, group);
    from_groups += group_energy(group, ideal_distribution(mc));
  }
  EXPECT_NEAR(from_groups, direct, 1e-9);
}

TEST(Grouping, SingleTermHamiltonian) {
  const Hamiltonian h(1, {{PauliString("Z"), 2.5}});
  const auto groups = group_commuting_terms(h);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].basis[0], PauliOp::Z);
}

}  // namespace
}  // namespace qucp
