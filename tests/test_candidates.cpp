#include "partition/candidates.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qucp {
namespace {

TEST(Candidates, AllConnectedAndRightSize) {
  const Device d = make_toronto27();
  for (int k : {2, 3, 4, 5}) {
    const auto cands = partition_candidates(d, k, {});
    ASSERT_FALSE(cands.empty()) << "k=" << k;
    for (const auto& cand : cands) {
      EXPECT_EQ(static_cast<int>(cand.size()), k);
      EXPECT_TRUE(d.topology().is_connected_subset(cand));
      EXPECT_TRUE(std::is_sorted(cand.begin(), cand.end()));
    }
  }
}

TEST(Candidates, AvoidAllocatedQubits) {
  const Device d = make_toronto27();
  const std::vector<int> allocated{0, 1, 2, 3, 4, 5};
  const auto cands = partition_candidates(d, 4, allocated);
  const std::set<int> blocked(allocated.begin(), allocated.end());
  for (const auto& cand : cands) {
    for (int q : cand) EXPECT_FALSE(blocked.count(q));
  }
}

TEST(Candidates, Deduplicated) {
  const Device d = make_line_device(6);
  const auto cands = partition_candidates(d, 3, {});
  std::set<std::vector<int>> unique(cands.begin(), cands.end());
  EXPECT_EQ(unique.size(), cands.size());
}

TEST(Candidates, LineCandidatesAreIntervals) {
  const Device d = make_line_device(6);
  const auto cands = partition_candidates(d, 3, {});
  for (const auto& cand : cands) {
    EXPECT_EQ(cand.back() - cand.front(), 2);  // contiguous on a line
  }
}

TEST(Candidates, EmptyWhenNoRoom) {
  const Device d = make_line_device(4);
  const std::vector<int> allocated{1, 2};
  // Remaining {0} and {3} are isolated: no 2-qubit candidate.
  EXPECT_TRUE(partition_candidates(d, 2, allocated).empty());
  // Size bigger than the device.
  EXPECT_TRUE(partition_candidates(d, 9, {}).empty());
}

TEST(Candidates, RejectsBadK) {
  const Device d = make_line_device(4);
  EXPECT_THROW((void)partition_candidates(d, 0, {}), std::invalid_argument);
}

TEST(Enumerate, LineSubsetsExact) {
  const Topology line(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  // Connected subsets of size 3 on a path of 5: the 3 windows.
  const auto subs = enumerate_connected_subsets(line, 3, {});
  EXPECT_EQ(subs.size(), 3u);
}

TEST(Enumerate, CountsOnRing) {
  const Topology ring(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  EXPECT_EQ(enumerate_connected_subsets(ring, 2, {}).size(), 4u);
  EXPECT_EQ(enumerate_connected_subsets(ring, 3, {}).size(), 4u);
  EXPECT_EQ(enumerate_connected_subsets(ring, 4, {}).size(), 1u);
}

TEST(Enumerate, RespectsBlocked) {
  const Topology line(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const std::vector<int> blocked{2};
  const auto subs = enumerate_connected_subsets(line, 2, blocked);
  // {0,1} and {3,4} remain.
  EXPECT_EQ(subs.size(), 2u);
}

TEST(Enumerate, GreedyCandidatesAreSubsetOfEnumeration) {
  const Device d = make_grid_device(3, 3);
  const auto greedy = partition_candidates(d, 4, {});
  const auto all = enumerate_connected_subsets(d.topology(), 4, {});
  const std::set<std::vector<int>> all_set(all.begin(), all.end());
  for (const auto& cand : greedy) {
    EXPECT_TRUE(all_set.count(cand));
  }
  EXPECT_LE(greedy.size(), all.size());
}

TEST(Enumerate, BoundEnforced) {
  const Device d = make_manhattan65();
  EXPECT_THROW(
      (void)enumerate_connected_subsets(d.topology(), 8, {}, 100),
      std::runtime_error);
}

}  // namespace
}  // namespace qucp
