#include "common/matrix.hpp"

#include <gtest/gtest.h>

namespace qucp {
namespace {

TEST(Matrix, ConstructAndAccess) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FALSE(m.is_square());
  m(1, 2) = cx{1.0, -2.0};
  EXPECT_EQ(m.at(1, 2), (cx{1.0, -2.0}));
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 3), std::out_of_range);
}

TEST(Matrix, InitializerListSizeChecked) {
  EXPECT_THROW(Matrix(2, 2, {1, 2, 3}), std::invalid_argument);
  const Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(m(0, 1), cx{2.0});
  EXPECT_EQ(m(1, 0), cx{3.0});
}

TEST(Matrix, IdentityAndTrace) {
  const Matrix id = Matrix::identity(4);
  EXPECT_EQ(id.trace(), cx{4.0});
  EXPECT_TRUE(id.is_unitary());
  EXPECT_TRUE(id.is_hermitian());
}

TEST(Matrix, AdditionSubtraction) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {4, 3, 2, 1});
  const Matrix sum = a + b;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(sum(i, j), cx{5.0});
    }
  }
  const Matrix diff = sum - b;
  EXPECT_TRUE(diff.approx_equal(a, 1e-15));
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW((void)(a * Matrix(3, 3)), std::invalid_argument);
}

TEST(Matrix, MultiplyKnownProduct) {
  const Matrix x(2, 2, {0, 1, 1, 0});
  const Matrix z(2, 2, {1, 0, 0, -1});
  const Matrix xz = x * z;
  // XZ = [[0,-1],[1,0]]
  EXPECT_EQ(xz(0, 0), cx{0.0});
  EXPECT_EQ(xz(0, 1), cx{-1.0});
  EXPECT_EQ(xz(1, 0), cx{1.0});
  EXPECT_EQ(xz(1, 1), cx{0.0});
}

TEST(Matrix, DaggerConjugatesAndTransposes) {
  Matrix m(2, 2);
  m(0, 1) = cx{1.0, 2.0};
  const Matrix d = m.dagger();
  EXPECT_EQ(d(1, 0), (cx{1.0, -2.0}));
  EXPECT_EQ(d(0, 1), cx{0.0});
}

TEST(Matrix, HermitianDetection) {
  Matrix h(2, 2);
  h(0, 0) = 1.0;
  h(1, 1) = -2.0;
  h(0, 1) = cx{0.5, 0.25};
  h(1, 0) = cx{0.5, -0.25};
  EXPECT_TRUE(h.is_hermitian());
  h(1, 0) = cx{0.5, 0.25};
  EXPECT_FALSE(h.is_hermitian());
}

TEST(Matrix, NormAndMaxAbsDiff) {
  const Matrix a(1, 2, {3, 4});
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  const Matrix b(1, 2, {3, 5});
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
}

TEST(Matrix, KronDimensionsAndValues) {
  const Matrix x(2, 2, {0, 1, 1, 0});
  const Matrix id = Matrix::identity(2);
  const Matrix k = kron(x, id);
  EXPECT_EQ(k.rows(), 4u);
  // X (x) I swaps the high bit: |00>-><10| etc.
  EXPECT_EQ(k(2, 0), cx{1.0});
  EXPECT_EQ(k(3, 1), cx{1.0});
  EXPECT_EQ(k(0, 2), cx{1.0});
  EXPECT_EQ(k(0, 0), cx{0.0});
}

TEST(Matrix, KronAllEmptyIsScalarIdentity) {
  const Matrix one = kron_all({});
  EXPECT_EQ(one.rows(), 1u);
  EXPECT_EQ(one(0, 0), cx{1.0});
}

TEST(Matrix, KronMixesScalars) {
  const std::vector<Matrix> ms{Matrix::identity(2), Matrix(2, 2, {0, 1, 1, 0})};
  const Matrix k = kron_all(ms);
  EXPECT_EQ(k.rows(), 4u);
  EXPECT_EQ(k(1, 0), cx{1.0});  // I (x) X flips low bit
}

TEST(Matrix, MatVecMatchesManual) {
  const Matrix h(2, 2,
                 {cx{M_SQRT1_2}, cx{M_SQRT1_2}, cx{M_SQRT1_2},
                  cx{-M_SQRT1_2}});
  const std::vector<cx> v{1.0, 0.0};
  const auto out = mat_vec(h, v);
  EXPECT_NEAR(out[0].real(), M_SQRT1_2, 1e-12);
  EXPECT_NEAR(out[1].real(), M_SQRT1_2, 1e-12);
  EXPECT_THROW((void)mat_vec(h, std::vector<cx>{1.0}), std::invalid_argument);
}

TEST(Matrix, TraceRequiresSquare) {
  const Matrix m(2, 3);
  EXPECT_THROW((void)m.trace(), std::logic_error);
}

TEST(Matrix, UnitaryProductStaysUnitary) {
  const Matrix h(2, 2,
                 {cx{M_SQRT1_2}, cx{M_SQRT1_2}, cx{M_SQRT1_2},
                  cx{-M_SQRT1_2}});
  const Matrix s(2, 2, {1, 0, 0, cx{0, 1}});
  EXPECT_TRUE((h * s).is_unitary(1e-12));
  EXPECT_TRUE(kron(h, s).is_unitary(1e-12));
}

}  // namespace
}  // namespace qucp
