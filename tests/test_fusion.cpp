// Golden suite for the program-fusion layer (sim/fusion.hpp).
//
// Fused replay must agree with gate-by-gate replay to <= 1e-10 on both the
// statevector (ideal_distribution) and density-matrix pipelines, over
// randomized circuits shaped for every bundled topology. The executor's
// per-op compiled channels must be BIT-identical to the uncompiled
// apply_unitary path (the compilation only hoists work, it must not change
// a single rounding), which in turn pins the sample_counts RNG streams.
// Structural tests assert fusion never merges across barriers or
// measurements.

#include "sim/fusion.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "benchmarks/suite.hpp"
#include "circuit/gate_cache.hpp"
#include "common/rng.hpp"
#include "hardware/device.hpp"
#include "service/backend.hpp"
#include "sim/density.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"

namespace qucp {
namespace {

constexpr double kTol = 1e-10;

std::vector<Device> bundled_devices() {
  std::vector<Device> devices;
  devices.push_back(make_melbourne16());
  devices.push_back(make_toronto27());
  devices.push_back(make_manhattan65());
  devices.push_back(make_line_device(9));
  devices.push_back(make_grid_device(4, 5));
  return devices;
}

double dist_diff(const Distribution& a, const Distribution& b) {
  double worst = 0.0;
  for (const auto& [k, p] : a.probs()) {
    worst = std::max(worst, std::abs(p - b.prob(k)));
  }
  for (const auto& [k, p] : b.probs()) {
    worst = std::max(worst, std::abs(p - a.prob(k)));
  }
  return worst;
}

double state_diff(std::span<const cx> a, std::span<const cx> b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

/// Gate-by-gate density replay of a circuit's unitary stream.
DensityMatrix density_reference(const Circuit& c) {
  DensityMatrix dm(c.num_qubits());
  for (const Gate& g : c.ops()) {
    if (g.kind == GateKind::Barrier || g.kind == GateKind::Measure) continue;
    dm.apply_unitary(gate_matrix(g), g.qubits);
  }
  return dm;
}

void expect_fused_matches_unfused(const Circuit& c, const char* label) {
  const CompiledProgram prog = CompiledProgram::compile(c);
  if (c.has_measurements()) {
    EXPECT_LT(dist_diff(ideal_distribution(prog), ideal_distribution(c)), kTol)
        << label;
  }
  if (c.num_qubits() <= 6) {
    DensityMatrix fused(c.num_qubits());
    fused.run(prog);
    EXPECT_LT(state_diff(fused.data(), density_reference(c).data()), kTol)
        << label;
  }
}

Gate random_1q_gate(Rng& rng, int qubit) {
  static const GateKind kinds[] = {GateKind::H,  GateKind::X,  GateKind::Y,
                                   GateKind::Z,  GateKind::S,  GateKind::T,
                                   GateKind::SX, GateKind::RX, GateKind::RY,
                                   GateKind::RZ, GateKind::U2, GateKind::U3};
  Gate g;
  g.kind = kinds[rng.index(std::size(kinds))];
  g.qubits = {qubit};
  for (int i = 0; i < gate_param_count(g.kind); ++i) {
    g.params.push_back(rng.uniform(-3.0, 3.0));
  }
  return g;
}

/// Grow a random connected region of `want` qubits on the device topology.
std::vector<int> random_region(const Device& device, Rng& rng, int want) {
  const Topology& topo = device.topology();
  std::vector<int> region{
      static_cast<int>(rng.index(static_cast<std::size_t>(device.num_qubits())))};
  while (static_cast<int>(region.size()) < want) {
    std::vector<int> frontier;
    for (const Edge& e : topo.edges()) {
      const bool has_a = std::count(region.begin(), region.end(), e.a) > 0;
      const bool has_b = std::count(region.begin(), region.end(), e.b) > 0;
      if (has_a != has_b) frontier.push_back(has_a ? e.b : e.a);
    }
    if (frontier.empty()) break;
    region.push_back(frontier[rng.index(frontier.size())]);
  }
  return region;
}

/// A randomized physical circuit on a connected region: parameterized
/// rotations, CX/SWAP-heavy stretches, occasional barriers and mid-circuit
/// measurements, measurement-suffixed.
Circuit random_physical_circuit(const Device& device, Rng& rng, int region_size,
                                int steps) {
  const std::vector<int> region = random_region(device, rng, region_size);
  std::vector<std::pair<int, int>> pairs;
  for (const Edge& e : device.topology().edges()) {
    if (std::count(region.begin(), region.end(), e.a) > 0 &&
        std::count(region.begin(), region.end(), e.b) > 0) {
      pairs.emplace_back(e.a, e.b);
    }
  }
  Circuit c(device.num_qubits(), static_cast<int>(region.size()));
  int next_clbit = 0;
  for (int s = 0; s < steps; ++s) {
    const double roll = rng.uniform(0.0, 1.0);
    if (!pairs.empty() && roll < 0.45) {
      auto [a, b] = pairs[rng.index(pairs.size())];
      if (rng.bernoulli(0.5)) std::swap(a, b);
      const double kind = rng.uniform(0.0, 1.0);
      if (kind < 0.6) {
        c.cx(a, b);
      } else if (kind < 0.8) {
        c.cz(a, b);
      } else {
        c.swap(a, b);
      }
    } else if (roll < 0.9) {
      c.append(random_1q_gate(rng, region[rng.index(region.size())]));
    } else if (roll < 0.95) {
      c.barrier(region);  // region-scoped, like transpiled programs emit
    } else if (next_clbit < static_cast<int>(region.size())) {
      // Mid-circuit measurement: fusion must not merge across it.
      c.measure(region[static_cast<std::size_t>(next_clbit)], next_clbit);
      ++next_clbit;
    }
  }
  for (; next_clbit < static_cast<int>(region.size()); ++next_clbit) {
    c.measure(region[static_cast<std::size_t>(next_clbit)], next_clbit);
  }
  return c;
}

TEST(FusionGolden, SuiteCircuitsMatchUnfused) {
  for (const BenchmarkSpec& spec : benchmark_suite()) {
    expect_fused_matches_unfused(spec.circuit, spec.short_name.c_str());
    expect_fused_matches_unfused(spec.circuit.compacted(),
                                 spec.short_name.c_str());
  }
}

TEST(FusionGolden, RandomizedCircuitsOnAllTopologies) {
  std::uint64_t seed = 9000;
  for (const Device& device : bundled_devices()) {
    for (int trial = 0; trial < 6; ++trial) {
      Rng rng(seed++);
      const int region = 2 + static_cast<int>(rng.index(4));  // 2..5 qubits
      const Circuit c =
          random_physical_circuit(device, rng, region, 30 + trial * 10);
      // Device-width replay where the state fits (manhattan65 exceeds the
      // statevector's cap), compacted replay always — the latter is the
      // stream the executor's partition simulation sees.
      if (device.num_qubits() <= 20) {
        expect_fused_matches_unfused(c, device.name().c_str());
      }
      expect_fused_matches_unfused(c.compacted(), device.name().c_str());
    }
  }
}

TEST(FusionGolden, ExecutorDistributionsAndCountsBitIdenticalWithCache) {
  // The noisy pipeline must not change at all under program compilation:
  // a Backend execution (gate + program caches) and a cache-free
  // execute_parallel must produce identical distributions and identical
  // sampled counts (same RNG stream, same bucket per draw).
  std::uint64_t seed = 500;
  for (const Device& device : bundled_devices()) {
    Backend backend(device);
    Rng rng(seed++);
    const Circuit c = random_physical_circuit(device, rng, 4, 40);
    ExecOptions opts;
    opts.shots = 256;
    std::vector<PhysicalProgram> progs;
    progs.push_back({c, "golden"});
    const ParallelRunReport direct =
        execute_parallel(device, progs, opts);
    const ParallelRunReport cached = backend.execute(progs, opts);
    // Twice through the backend: the second run replays cached programs.
    const ParallelRunReport cached2 = backend.execute(progs, opts);
    ASSERT_EQ(direct.programs.size(), 1u);
    for (const ParallelRunReport* run : {&cached, &cached2}) {
      EXPECT_EQ(direct.programs[0].distribution.probs(),
                run->programs[0].distribution.probs());
      EXPECT_EQ(direct.programs[0].counts.data(),
                run->programs[0].counts.data());
    }
  }
}

TEST(FusionGolden, NoiselessExecutorFusedStreamMatchesPerOpReplay) {
  // ROADMAP (f): with gate_noise and idle_noise both off, the executor
  // consumes the fused CompiledProgram stream instead of replaying per-op
  // channels. The distributions must agree with the per-op walk
  // (fuse_noiseless = false) to <= 1e-10 on every bundled topology —
  // through the backend caches and without them, readout noise on and off
  // — and the schedule-derived reporting must not move at all.
  std::uint64_t seed = 1300;
  for (const Device& device : bundled_devices()) {
    Backend backend(device);
    Rng rng(seed++);
    const Circuit c = random_physical_circuit(device, rng, 4, 40);
    std::vector<PhysicalProgram> progs;
    progs.push_back({c, "noiseless"});
    for (const bool readout : {true, false}) {
      ExecOptions fused_opts;
      fused_opts.shots = 128;
      fused_opts.gate_noise = false;
      fused_opts.idle_noise = false;
      fused_opts.readout_noise = readout;
      ExecOptions per_op_opts = fused_opts;
      per_op_opts.fuse_noiseless = false;
      // Twice through the backend: the second run replays the cached
      // fused program.
      const ParallelRunReport fused = backend.execute(progs, fused_opts);
      const ParallelRunReport fused2 = backend.execute(progs, fused_opts);
      const ParallelRunReport per_op =
          execute_parallel(device, progs, per_op_opts);
      for (const ParallelRunReport* run : {&fused, &fused2}) {
        EXPECT_LT(dist_diff(run->programs[0].distribution,
                            per_op.programs[0].distribution),
                  kTol)
            << device.name() << " readout=" << readout;
        EXPECT_DOUBLE_EQ(run->makespan_ns, per_op.makespan_ns)
            << device.name();
        EXPECT_EQ(run->crosstalk_events, per_op.crosstalk_events)
            << device.name();
      }
      EXPECT_EQ(fused.programs[0].counts.total(), 128);
    }
  }
}

TEST(FusionGolden, CompiledChannelBitIdenticalToApplyUnitary) {
  // apply_compiled must be the same arithmetic as apply_unitary — the
  // superket compilation is hoisted, not altered — so the executor's
  // switch to compiled channels cannot move a single bit.
  Rng rng(77);
  for (int n = 1; n <= 4; ++n) {
    DensityMatrix a(n);
    DensityMatrix b(n);
    for (int q = 0; q < n; ++q) {
      const Gate g = random_1q_gate(rng, q);
      a.apply_unitary(gate_matrix(g), g.qubits);
      b.apply_unitary(gate_matrix(g), g.qubits);
    }
    Circuit c(n);
    for (int step = 0; step < 12; ++step) {
      if (n >= 2 && rng.bernoulli(0.5)) {
        const int x = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
        int y = static_cast<int>(rng.index(static_cast<std::size_t>(n) - 1));
        if (y >= x) ++y;
        if (rng.bernoulli(0.5)) c.cx(x, y); else c.cz(x, y);
      } else {
        c.append(random_1q_gate(
            rng, static_cast<int>(rng.index(static_cast<std::size_t>(n)))));
      }
    }
    const std::vector<FusedOp> channels = compile_ops(c);
    for (std::size_t i = 0; i < c.size(); ++i) {
      const Gate& g = c.ops()[i];
      a.apply_unitary(gate_matrix(g), g.qubits);
      b.apply_compiled(channels[i], g.qubits);
    }
    for (std::size_t i = 0; i < a.data().size(); ++i) {
      EXPECT_EQ(a.data()[i].real(), b.data()[i].real()) << "n=" << n;
      EXPECT_EQ(a.data()[i].imag(), b.data()[i].imag()) << "n=" << n;
    }
  }
}

TEST(FusionStructure, NeverFusesAcrossMeasurement) {
  Circuit with_measure(1, 1);
  with_measure.x(0);
  with_measure.measure(0, 0);
  with_measure.x(0);
  // X . X would fuse to identity; the measurement must keep them apart.
  EXPECT_EQ(CompiledProgram::compile(with_measure).ops().size(), 2u);

  Circuit without(1, 1);
  without.x(0);
  without.x(0);
  without.measure(0, 0);
  EXPECT_EQ(CompiledProgram::compile(without).ops().size(), 1u);
}

TEST(FusionStructure, NeverFusesAcrossBarrier) {
  Circuit c(2);
  c.rz(0.4, 0);
  c.barrier();
  c.rz(0.3, 0);
  EXPECT_EQ(CompiledProgram::compile(c).ops().size(), 2u);

  Circuit c2(2);
  c2.cx(0, 1);
  c2.barrier();
  c2.cx(0, 1);
  EXPECT_EQ(CompiledProgram::compile(c2).ops().size(), 2u);

  // A subset barrier only fences its own qubits.
  Circuit c3(3);
  c3.rz(0.4, 0);
  c3.rz(0.5, 2);
  c3.barrier({1});
  c3.rz(0.3, 0);
  c3.rz(0.6, 2);
  EXPECT_EQ(CompiledProgram::compile(c3).ops().size(), 2u);
}

TEST(FusionStructure, RunsCollapseAndReclassify) {
  using Tag = kern::CompiledUnitary::Tag;
  // An RZ ladder fuses to one op that re-classifies as diagonal.
  Circuit rz(1);
  rz.rz(0.2, 0);
  rz.rz(0.4, 0);
  rz.t(0);
  rz.s(0);
  const CompiledProgram przs = CompiledProgram::compile(rz);
  ASSERT_EQ(przs.ops().size(), 1u);
  EXPECT_EQ(przs.ops()[0].sv.tag, Tag::kDiag1);

  // CX . CX collapses to the (diagonal) identity 4x4.
  Circuit cxcx(2);
  cxcx.cx(0, 1);
  cxcx.cx(0, 1);
  const CompiledProgram pcx = CompiledProgram::compile(cxcx);
  ASSERT_EQ(pcx.ops().size(), 1u);
  EXPECT_EQ(pcx.ops()[0].sv.tag, Tag::kDiag2);

  // 1q gates on both operands absorb into the 2q gate's 4x4, and a
  // reversed-operand CX merges into the same block.
  Circuit absorb(2);
  absorb.h(0);
  absorb.cx(0, 1);
  absorb.h(1);
  absorb.cx(1, 0);
  absorb.ry(0.3, 0);
  const CompiledProgram pa = CompiledProgram::compile(absorb);
  EXPECT_EQ(pa.ops().size(), 1u);
  EXPECT_EQ(pa.source_gate_count(), 5u);
  // Equivalence of the merged block.
  Statevector fused_sv(2);
  fused_sv.run(pa);
  Statevector ref(2);
  ref.apply_circuit(absorb);
  EXPECT_LT(state_diff(fused_sv.amplitudes(), ref.amplitudes()), kTol);
}

TEST(FusionStructure, MeasurementsKeepProgramOrderAndClbits) {
  Circuit c(3, 3);
  c.h(0);
  c.cx(0, 1);
  c.measure(1, 2);
  c.x(2);
  c.measure(2, 0);
  c.measure(0, 1);
  const CompiledProgram prog = CompiledProgram::compile(c);
  const std::vector<std::pair<int, int>> want{{1, 2}, {2, 0}, {0, 1}};
  EXPECT_EQ(prog.measurements(), want);
  EXPECT_LT(dist_diff(ideal_distribution(prog), ideal_distribution(c)), kTol);
}

TEST(CompiledProgramCache, MemoizesByFingerprint) {
  CompiledProgramCache cache;
  Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const auto first = cache.fused(c);
  const auto second = cache.fused(c);
  EXPECT_EQ(first.get(), second.get());
  Circuit renamed = c;
  renamed.set_name("other-name");
  // The fingerprint ignores names, so a rename hits the same entry.
  EXPECT_EQ(cache.fused(renamed).get(), first.get());
  const auto exe1 = cache.executable(c);
  const auto exe2 = cache.executable(c);
  EXPECT_EQ(exe1.get(), exe2.get());
  EXPECT_EQ(cache.entries(), 2u);
}

TEST(NativeKernels, ScalarAndNativeDenseKernelsAgree) {
  if (!kern::native_kernels_active()) {
    GTEST_SKIP() << "native kernels not compiled/supported on this machine";
  }
  // Dense-heavy fused circuits: 1q rotation ladders (dense1) and absorbed
  // 2q blocks (dense2), replayed with dispatch off and on.
  struct NativeReset {
    ~NativeReset() { kern::set_native_kernels(true); }
  } reset;
  Rng rng(4242);
  for (int n = 2; n <= 6; ++n) {
    Circuit c(n);
    for (int step = 0; step < 24; ++step) {
      if (n >= 2 && rng.bernoulli(0.35)) {
        const int x = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
        int y = static_cast<int>(rng.index(static_cast<std::size_t>(n) - 1));
        if (y >= x) ++y;
        c.cx(x, y);
      }
      c.append(random_1q_gate(
          rng, static_cast<int>(rng.index(static_cast<std::size_t>(n)))));
    }
    const CompiledProgram prog = CompiledProgram::compile(c);
    kern::set_native_kernels(false);
    Statevector scalar_sv(n);
    scalar_sv.run(prog);
    DensityMatrix scalar_dm(n);
    scalar_dm.run(prog);
    kern::set_native_kernels(true);
    Statevector native_sv(n);
    native_sv.run(prog);
    DensityMatrix native_dm(n);
    native_dm.run(prog);
    EXPECT_LT(state_diff(scalar_sv.amplitudes(), native_sv.amplitudes()), kTol)
        << "n=" << n;
    EXPECT_LT(state_diff(scalar_dm.data(), native_dm.data()), kTol)
        << "n=" << n;
  }
}

TEST(NativeKernels, ScalarAndNativeDiagPermKernelsAgree) {
  if (!kern::native_kernels_active()) {
    GTEST_SKIP() << "native kernels not compiled/supported on this machine";
  }
  // Monomial-heavy fused circuits: CZ + diagonal 1q gates fuse into kDiag2
  // blocks, CX + diagonal 1q gates into kPerm2 blocks (products of monomial
  // matrices stay monomial). The Hadamard layer spreads amplitude across
  // the whole register so every quad carries signal; the barrier keeps it
  // out of the monomial tail so the fused 2q ops stay diag/perm, not dense.
  struct NativeReset {
    ~NativeReset() { kern::set_native_kernels(true); }
  } reset;
  static const GateKind diag_kinds[] = {GateKind::Z,  GateKind::S,
                                        GateKind::Sdg, GateKind::T,
                                        GateKind::Tdg, GateKind::RZ,
                                        GateKind::U1};
  Rng rng(7117);
  for (int n = 2; n <= 6; ++n) {
    for (const GateKind twoq : {GateKind::CZ, GateKind::CX}) {
      Circuit c(n);
      for (int q = 0; q < n; ++q) c.h(q);
      c.barrier();
      for (int step = 0; step < 24; ++step) {
        if (step % 2 == 0) {
          const int x = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
          int y = static_cast<int>(rng.index(static_cast<std::size_t>(n) - 1));
          if (y >= x) ++y;
          if (twoq == GateKind::CZ) {
            c.cz(x, y);
          } else {
            c.cx(x, y);
          }
        }
        Gate g;
        g.kind = diag_kinds[rng.index(std::size(diag_kinds))];
        g.qubits = {static_cast<int>(rng.index(static_cast<std::size_t>(n)))};
        for (int i = 0; i < gate_param_count(g.kind); ++i) {
          g.params.push_back(rng.uniform(-3.0, 3.0));
        }
        c.append(g);
      }
      const CompiledProgram prog = CompiledProgram::compile(c);
      kern::set_native_kernels(false);
      Statevector scalar_sv(n);
      scalar_sv.run(prog);
      DensityMatrix scalar_dm(n);
      scalar_dm.run(prog);
      kern::set_native_kernels(true);
      Statevector native_sv(n);
      native_sv.run(prog);
      DensityMatrix native_dm(n);
      native_dm.run(prog);
      EXPECT_LT(state_diff(scalar_sv.amplitudes(), native_sv.amplitudes()),
                kTol)
          << "n=" << n << " twoq=" << static_cast<int>(twoq);
      EXPECT_LT(state_diff(scalar_dm.data(), native_dm.data()), kTol)
          << "n=" << n << " twoq=" << static_cast<int>(twoq);
    }
  }
}

TEST(NativeKernels, ScalarAndNativeChannelKernelsAgree) {
  if (!kern::native_kernels_active()) {
    GTEST_SKIP() << "native kernels not compiled/supported on this machine";
  }
  // Noise-channel superket passes (depolarizing 1q/2q, thermal
  // relaxation): the AVX2 bodies pre-fold c2 * inv_ldim into one
  // fill_scale, so agreement is pinned at <= 1e-10 rather than bitwise.
  // Qubit 0 operands exercise the packed-lane (pc == 0) code paths; higher
  // qubits the full-width two-quad bodies.
  struct NativeReset {
    ~NativeReset() { kern::set_native_kernels(true); }
  } reset;
  Rng rng(9911);
  for (int n = 2; n <= 6; ++n) {
    Circuit c(n);
    for (int step = 0; step < 20; ++step) {
      c.append(random_1q_gate(
          rng, static_cast<int>(rng.index(static_cast<std::size_t>(n)))));
      if (rng.bernoulli(0.3)) {
        const int x = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
        int y = static_cast<int>(rng.index(static_cast<std::size_t>(n) - 1));
        if (y >= x) ++y;
        c.cx(x, y);
      }
    }
    const CompiledProgram prog = CompiledProgram::compile(c);
    const auto run_channels = [&](bool native) {
      kern::set_native_kernels(native);
      DensityMatrix dm(n);
      dm.run(prog);  // non-trivial state so every superket element matters
      for (int q = 0; q < n; ++q) {
        const int one[] = {q};
        dm.apply_depolarizing(0.015 + 0.004 * q, one);
        dm.apply_relaxation(q, 120.0 + 15.0 * q, 85.0, 70.0);
      }
      for (int q = 0; q + 1 < n; ++q) {
        const int two[] = {q, q + 1};
        dm.apply_depolarizing(0.02, two);
      }
      std::vector<cx> snapshot(dm.data().begin(), dm.data().end());
      return snapshot;
    };
    const std::vector<cx> scalar = run_channels(false);
    const std::vector<cx> native = run_channels(true);
    EXPECT_LT(state_diff(scalar, native), kTol) << "n=" << n;
  }
}

TEST(NativeKernels, ScalarAndNativeMaterializeAgree) {
  if (!kern::native_kernels_active()) {
    GTEST_SKIP() << "native kernels not compiled/supported on this machine";
  }
  // FusionPlan::materialize's per-angle product chain (mul4 / lift1+mul4 /
  // operand-reorder+mul4 / absorb) dispatches to AVX2 FMA kernels when
  // native kernels are active. FMA contraction reassociates the complex
  // products, so agreement is pinned at <= 1e-10 rather than bitwise —
  // and a cancellation that lands on an exact 0.0 in scalar arithmetic
  // can leave ~1e-17 residue under FMA, flipping compile_unitary's
  // exact-zero monomial classification to dense (always correct, just a
  // different encoding). Compare the *decoded* matrices, not the raw
  // per-tag coefficient layouts. compile() shares the same dispatch, so
  // compile == materialize stays exact on either path (pinned in
  // test_parametric.cpp).
  struct NativeReset {
    ~NativeReset() { kern::set_native_kernels(true); }
  } reset;
  const auto decode = [](const kern::CompiledUnitary& cu) {
    const int dim = cu.k == 1 ? 2 : 4;
    std::vector<cx> m(static_cast<std::size_t>(dim * dim), cx{0.0, 0.0});
    using Tag = kern::CompiledUnitary::Tag;
    switch (cu.tag) {
      case Tag::kDiag1:
        for (int r = 0; r < 2; ++r) m[3 * r] = cx{cu.re[r], cu.im[r]};
        break;
      case Tag::kAnti1:
        for (int r = 0; r < 2; ++r) m[2 * r + (1 - r)] = cx{cu.re[r], cu.im[r]};
        break;
      case Tag::kDense1:
        for (int i = 0; i < 4; ++i) m[i] = cx{cu.re[i], cu.im[i]};
        break;
      case Tag::kCxPerm: {
        static constexpr int src[4] = {0, 1, 3, 2};
        for (int r = 0; r < 4; ++r) m[4 * r + src[r]] = cx{1.0, 0.0};
        break;
      }
      case Tag::kSwapPerm: {
        static constexpr int src[4] = {0, 2, 1, 3};
        for (int r = 0; r < 4; ++r) m[4 * r + src[r]] = cx{1.0, 0.0};
        break;
      }
      case Tag::kDiag2:
        for (int r = 0; r < 4; ++r) m[5 * r] = cx{cu.re[r], cu.im[r]};
        break;
      case Tag::kPerm2:
        for (int r = 0; r < 4; ++r) m[4 * r + cu.src[r]] = cx{cu.re[r], cu.im[r]};
        break;
      case Tag::kDense2:
        for (int i = 0; i < 16; ++i) m[i] = cx{cu.re[i], cu.im[i]};
        break;
    }
    return m;
  };
  const auto coeff_diff = [&](const CompiledProgram& a,
                              const CompiledProgram& b) {
    EXPECT_EQ(a.ops().size(), b.ops().size());
    double worst = 0.0;
    for (std::size_t i = 0; i < a.ops().size(); ++i) {
      for (const auto& pr :
           {std::pair{&a.ops()[i].sv, &b.ops()[i].sv},
            std::pair{&a.ops()[i].dm, &b.ops()[i].dm}}) {
        EXPECT_EQ(pr.first->k, pr.second->k) << "op " << i;
        const std::vector<cx> ma = decode(*pr.first);
        const std::vector<cx> mb = decode(*pr.second);
        for (std::size_t e = 0; e < ma.size(); ++e) {
          worst = std::max(worst, std::abs(ma[e] - mb[e]));
        }
      }
    }
    return worst;
  };
  Rng rng(20220212);
  for (int n = 2; n <= 6; ++n) {
    for (int trial = 0; trial < 4; ++trial) {
      // 2q-heavy so fused blocks chain 4x4 products (kMul2 / kAbsorb) and
      // lift 1q rotations into them (kLift1Mul) — the AVX2-dispatched steps.
      Circuit c(n);
      for (int q = 0; q < n; ++q) c.h(q);
      for (int step = 0; step < 30; ++step) {
        if (rng.bernoulli(0.45)) {
          const int x = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
          int y = static_cast<int>(rng.index(static_cast<std::size_t>(n) - 1));
          if (y >= x) ++y;
          c.cx(x, y);
        }
        c.append(random_1q_gate(
            rng, static_cast<int>(rng.index(static_cast<std::size_t>(n)))));
      }
      const FusionPlan plan = FusionPlan::build(c);
      kern::set_native_kernels(false);
      const CompiledProgram scalar_mat = CompiledProgram::materialize(plan, c);
      const CompiledProgram scalar_cmp = CompiledProgram::compile(c);
      kern::set_native_kernels(true);
      const CompiledProgram native_mat = CompiledProgram::materialize(plan, c);
      const CompiledProgram native_cmp = CompiledProgram::compile(c);
      EXPECT_LT(coeff_diff(scalar_mat, native_mat), kTol)
          << "n=" << n << " trial=" << trial;
      EXPECT_LT(coeff_diff(scalar_cmp, native_cmp), kTol)
          << "n=" << n << " trial=" << trial;
    }
  }
}

}  // namespace
}  // namespace qucp
