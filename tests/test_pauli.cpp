#include "vqe/pauli.hpp"

#include <gtest/gtest.h>

namespace qucp {
namespace {

TEST(Pauli, LabelRoundTrip) {
  for (const char* label : {"II", "IZ", "ZI", "ZZ", "XX", "XYZ", "IXYZ"}) {
    EXPECT_EQ(PauliString(label).label(), label);
  }
  EXPECT_THROW(PauliString(""), std::invalid_argument);
  EXPECT_THROW(PauliString("AB"), std::invalid_argument);
}

TEST(Pauli, LabelConvention) {
  // Leftmost char = highest qubit: "IZ" is Z on qubit 0.
  const PauliString p("IZ");
  EXPECT_EQ(p.op(0), PauliOp::Z);
  EXPECT_EQ(p.op(1), PauliOp::I);
  const PauliString q("ZI");
  EXPECT_EQ(q.op(0), PauliOp::I);
  EXPECT_EQ(q.op(1), PauliOp::Z);
}

TEST(Pauli, IdentityConstructor) {
  const PauliString p(3);
  EXPECT_TRUE(p.is_identity());
  EXPECT_EQ(p.label(), "III");
  EXPECT_THROW(PauliString(0), std::invalid_argument);
}

TEST(Pauli, SetOpAndSupport) {
  PauliString p(4);
  p.set_op(1, PauliOp::X);
  p.set_op(3, PauliOp::Z);
  EXPECT_EQ(p.support(), (std::vector<int>{1, 3}));
  EXPECT_FALSE(p.is_identity());
  EXPECT_THROW(p.set_op(4, PauliOp::X), std::out_of_range);
}

TEST(Pauli, MatrixOfZZ) {
  const Matrix m = PauliString("ZZ").matrix();
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m(0, 0), cx{1.0});
  EXPECT_EQ(m(1, 1), cx{-1.0});
  EXPECT_EQ(m(2, 2), cx{-1.0});
  EXPECT_EQ(m(3, 3), cx{1.0});
}

TEST(Pauli, MatrixOfIZIsZOnQubit0) {
  // Little-endian: "IZ" = Z on qubit 0 -> diag(1,-1,1,-1).
  const Matrix m = PauliString("IZ").matrix();
  EXPECT_EQ(m(0, 0), cx{1.0});
  EXPECT_EQ(m(1, 1), cx{-1.0});
  EXPECT_EQ(m(2, 2), cx{1.0});
  EXPECT_EQ(m(3, 3), cx{-1.0});
}

TEST(Pauli, MatricesAreHermitianAndUnitary) {
  for (const char* label : {"X", "Y", "Z", "XY", "ZXY", "IYI"}) {
    const Matrix m = PauliString(label).matrix();
    EXPECT_TRUE(m.is_hermitian(1e-12)) << label;
    EXPECT_TRUE(m.is_unitary(1e-12)) << label;
  }
}

TEST(Pauli, GeneralCommutation) {
  EXPECT_TRUE(PauliString("XX").commutes_with(PauliString("ZZ")));
  EXPECT_FALSE(PauliString("XI").commutes_with(PauliString("ZI")));
  EXPECT_TRUE(PauliString("XI").commutes_with(PauliString("IZ")));
  EXPECT_TRUE(PauliString("XY").commutes_with(PauliString("YX")));
  EXPECT_THROW((void)PauliString("X").commutes_with(PauliString("XX")),
               std::invalid_argument);
}

TEST(Pauli, CommutationMatchesMatrixAlgebra) {
  const std::vector<std::string> labels{"XX", "ZZ", "XZ", "YI", "IZ", "YY"};
  for (const auto& a : labels) {
    for (const auto& b : labels) {
      const Matrix ma = PauliString(a).matrix();
      const Matrix mb = PauliString(b).matrix();
      const Matrix comm = ma * mb - mb * ma;
      const bool commutes = comm.norm() < 1e-12;
      EXPECT_EQ(PauliString(a).commutes_with(PauliString(b)), commutes)
          << a << " vs " << b;
    }
  }
}

TEST(Pauli, QubitWiseCommutation) {
  // The paper's H2 grouping: {II, IZ, ZI, ZZ} mutually QWC; XX not with IZ.
  const PauliString ii("II"), iz("IZ"), zi("ZI"), zz("ZZ"), xx("XX");
  EXPECT_TRUE(ii.qubit_wise_commutes_with(zz));
  EXPECT_TRUE(iz.qubit_wise_commutes_with(zi));
  EXPECT_TRUE(iz.qubit_wise_commutes_with(zz));
  EXPECT_TRUE(zi.qubit_wise_commutes_with(zz));
  EXPECT_FALSE(xx.qubit_wise_commutes_with(iz));
  EXPECT_FALSE(xx.qubit_wise_commutes_with(zz));
  EXPECT_TRUE(xx.qubit_wise_commutes_with(ii));
}

TEST(Pauli, QwcImpliesCommuting) {
  const std::vector<std::string> labels{"IX", "XI", "XX", "ZZ", "IZ", "YY"};
  for (const auto& a : labels) {
    for (const auto& b : labels) {
      const PauliString pa(a), pb(b);
      if (pa.qubit_wise_commutes_with(pb)) {
        EXPECT_TRUE(pa.commutes_with(pb)) << a << " " << b;
      }
    }
  }
}

TEST(Pauli, EqualityOperator) {
  EXPECT_EQ(PauliString("XZ"), PauliString("XZ"));
  EXPECT_NE(PauliString("XZ"), PauliString("ZX"));
}

}  // namespace
}  // namespace qucp
