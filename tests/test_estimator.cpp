#include "vqe/estimator.hpp"

#include <gtest/gtest.h>

namespace qucp {
namespace {

VqeSweepOptions fast_options(bool parallel) {
  VqeSweepOptions opts;
  opts.run_parallel = parallel;
  opts.parallel.method = Method::QuCP;
  opts.parallel.exec.shots = 256;
  return opts;
}

TEST(ThetaGrid, EvenSpacing) {
  const auto grid = theta_grid(5, 0.0, 1.0);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid.front(), 0.0);
  EXPECT_DOUBLE_EQ(grid.back(), 1.0);
  EXPECT_NEAR(grid[1] - grid[0], 0.25, 1e-12);
  EXPECT_EQ(theta_grid(1, 0.3, 0.9), (std::vector<double>{0.3}));
  EXPECT_THROW((void)theta_grid(0, 0.0, 1.0), std::invalid_argument);
}

TEST(VqeSweep, CircuitCountIsThetasTimesGroups) {
  const Device d = make_manhattan65();
  const auto result = run_vqe_sweep(d, h2_hamiltonian(),
                                    theta_grid(8, -1.0, 1.0),
                                    fast_options(true));
  // 8 thetas x 2 commuting groups = 16 circuits (Table III row a).
  EXPECT_EQ(result.circuits_executed, 16);
  EXPECT_NEAR(result.throughput, 32.0 / 65.0, 1e-9);  // 49.2%
}

TEST(VqeSweep, ExactGroundMatchesEigensolver) {
  const Device d = make_manhattan65();
  const auto result = run_vqe_sweep(d, h2_hamiltonian(),
                                    theta_grid(4, -1.0, 1.0),
                                    fast_options(true));
  EXPECT_NEAR(result.exact_ground, -1.857275, 1e-5);
}

TEST(VqeSweep, IdealEnergiesBoundedBelowByGround) {
  const Device d = make_manhattan65();
  const auto result = run_vqe_sweep(d, h2_hamiltonian(),
                                    theta_grid(10, -2.0, 2.0),
                                    fast_options(true));
  for (double e : result.ideal_energies) {
    EXPECT_GE(e, result.exact_ground - 1e-9);
  }
  EXPECT_GE(result.min_ideal_energy, result.exact_ground - 1e-9);
}

TEST(VqeSweep, NoiselessParallelMatchesIdeal) {
  const Device d = make_manhattan65();
  VqeSweepOptions opts = fast_options(true);
  opts.parallel.exec.gate_noise = false;
  opts.parallel.exec.readout_noise = false;
  opts.parallel.exec.idle_noise = false;
  opts.parallel.exec.crosstalk_noise = false;
  const auto result = run_vqe_sweep(d, h2_hamiltonian(),
                                    theta_grid(6, -1.0, 1.0), opts);
  for (std::size_t i = 0; i < result.energies.size(); ++i) {
    EXPECT_NEAR(result.energies[i], result.ideal_energies[i], 1e-6) << i;
  }
  EXPECT_NEAR(result.delta_e_base_pct, 0.0, 1e-4);
}

TEST(VqeSweep, IndependentModeRunsSameCircuits) {
  const Device d = make_manhattan65();
  const auto thetas = theta_grid(3, -0.8, 0.2);
  const auto pg = run_vqe_sweep(d, h2_hamiltonian(), thetas,
                                fast_options(false));
  EXPECT_EQ(pg.circuits_executed, 6);
  // Independent throughput: one 2-qubit circuit on the 65-qubit chip.
  EXPECT_NEAR(pg.throughput, 2.0 / 65.0, 1e-9);  // 3.1% (Table III)
}

TEST(VqeSweep, ErrorsComputedAgainstBothReferences) {
  const Device d = make_manhattan65();
  const auto result = run_vqe_sweep(d, h2_hamiltonian(),
                                    theta_grid(8, -1.5, 1.5),
                                    fast_options(true));
  EXPECT_GE(result.delta_e_base_pct, 0.0);
  EXPECT_GE(result.delta_e_theory_pct, 0.0);
  EXPECT_LT(result.delta_e_theory_pct, 60.0);  // sane under mild noise
  EXPECT_EQ(result.energies.size(), result.thetas.size());
}

TEST(VqeSweep, RejectsEmptyThetas) {
  const Device d = make_manhattan65();
  EXPECT_THROW(
      (void)run_vqe_sweep(d, h2_hamiltonian(), {}, fast_options(true)),
      std::invalid_argument);
}

}  // namespace
}  // namespace qucp
