#include "schedule/schedule.hpp"

#include <gtest/gtest.h>

namespace qucp {
namespace {

TEST(Schedule, OpDurations) {
  const Device d = make_line_device(3);
  const Calibration& cal = d.calibration();
  Gate h{GateKind::H, {0}, {}};
  EXPECT_DOUBLE_EQ(op_duration_ns(h, d), cal.q1_duration_ns);
  Gate cx{GateKind::CX, {0, 1}, {}};
  EXPECT_DOUBLE_EQ(op_duration_ns(cx, d), cal.cx_duration_ns[0]);
  Gate swap{GateKind::SWAP, {0, 1}, {}};
  EXPECT_DOUBLE_EQ(op_duration_ns(swap, d), 3.0 * cal.cx_duration_ns[0]);
  Gate m{GateKind::Measure, {0}, {}};
  m.clbit = 0;
  EXPECT_DOUBLE_EQ(op_duration_ns(m, d), cal.readout_duration_ns);
  Gate b{GateKind::Barrier, {0}, {}};
  EXPECT_DOUBLE_EQ(op_duration_ns(b, d), 0.0);
}

TEST(Schedule, AsapPacksEarly) {
  const Device d = make_line_device(3);
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.cx(0, 1);
  const Schedule s = schedule_circuit(c, d, SchedulePolicy::ASAP);
  EXPECT_DOUBLE_EQ(s.ops[0].start_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.ops[1].start_ns, 0.0);
  EXPECT_DOUBLE_EQ(s.ops[2].start_ns, d.calibration().q1_duration_ns);
  EXPECT_DOUBLE_EQ(s.makespan_ns, s.ops[2].end_ns);
}

TEST(Schedule, AlapPushesLate) {
  const Device d = make_line_device(3);
  Circuit c(3);
  c.h(0);      // on the critical path start
  c.h(2);      // independent: ALAP should delay it to the end
  c.cx(0, 1);
  const Schedule alap = schedule_circuit(c, d, SchedulePolicy::ALAP);
  const double q1 = d.calibration().q1_duration_ns;
  // h(2) finishes exactly at makespan under ALAP.
  EXPECT_DOUBLE_EQ(alap.ops[1].end_ns, alap.makespan_ns);
  EXPECT_GT(alap.ops[1].start_ns, 0.0);
  // h(0) still starts at 0 (it is on the critical path).
  EXPECT_DOUBLE_EQ(alap.ops[0].start_ns, 0.0);
  EXPECT_DOUBLE_EQ(alap.ops[0].end_ns, q1);
}

TEST(Schedule, AlapAndAsapSameMakespan) {
  const Device d = make_line_device(4);
  Circuit c(4);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.x(3);
  c.measure_all();
  const Schedule asap = schedule_circuit(c, d, SchedulePolicy::ASAP);
  const Schedule alap = schedule_circuit(c, d, SchedulePolicy::ALAP);
  EXPECT_DOUBLE_EQ(asap.makespan_ns, alap.makespan_ns);
}

TEST(Schedule, AlapRespectsDependencies) {
  const Device d = make_line_device(3);
  Circuit c(3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  const Schedule s = schedule_circuit(c, d, SchedulePolicy::ALAP);
  EXPECT_LE(s.ops[0].end_ns, s.ops[1].start_ns + 1e-9);
  EXPECT_LE(s.ops[1].end_ns, s.ops[2].start_ns + 1e-9);
}

TEST(Schedule, WireSerialization) {
  const Device d = make_line_device(2);
  Circuit c(2);
  c.h(0);
  c.t(0);
  c.x(0);
  const Schedule s = schedule_circuit(c, d, SchedulePolicy::ASAP);
  EXPECT_DOUBLE_EQ(s.ops[1].start_ns, s.ops[0].end_ns);
  EXPECT_DOUBLE_EQ(s.ops[2].start_ns, s.ops[1].end_ns);
}

TEST(Schedule, RejectsWideCircuit) {
  const Device d = make_line_device(2);
  const Circuit c(5);
  EXPECT_THROW((void)schedule_circuit(c, d, SchedulePolicy::ASAP),
               std::invalid_argument);
}

TEST(Schedule, IntervalsOverlap) {
  EXPECT_TRUE(intervals_overlap(0, 10, 5, 15));
  EXPECT_TRUE(intervals_overlap(5, 15, 0, 10));
  EXPECT_TRUE(intervals_overlap(0, 10, 2, 3));
  EXPECT_FALSE(intervals_overlap(0, 10, 10, 20));  // half-open
  EXPECT_FALSE(intervals_overlap(0, 1, 2, 3));
}

TEST(Schedule, EmptyCircuit) {
  const Device d = make_line_device(2);
  const Circuit c(2);
  const Schedule s = schedule_circuit(c, d, SchedulePolicy::ALAP);
  EXPECT_TRUE(s.ops.empty());
  EXPECT_DOUBLE_EQ(s.makespan_ns, 0.0);
}

}  // namespace
}  // namespace qucp
