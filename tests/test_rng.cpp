#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace qucp {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, DeriveIsDeterministicAndIndependent) {
  Rng root(7);
  Rng d1 = root.derive("alpha");
  Rng d2 = root.derive("alpha");
  Rng d3 = root.derive("beta");
  EXPECT_DOUBLE_EQ(d1.uniform(), d2.uniform());
  // Deriving does not advance the parent.
  Rng root2(7);
  EXPECT_DOUBLE_EQ(root.uniform(), root2.uniform());
  // Distinct tags give distinct streams.
  Rng d1b = root.derive("alpha");
  EXPECT_NE(d1b.uniform(), d3.uniform());
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW((void)rng.uniform(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_THROW((void)rng.index(0), std::invalid_argument);
}

TEST(Rng, IntegerInclusiveBounds) {
  Rng rng(6);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.integer(-2, 2));
  EXPECT_TRUE(seen.count(-2));
  EXPECT_TRUE(seen.count(2));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(9);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.5, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.5, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(11);
  const std::vector<double> weights{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.35);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng(12);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW((void)rng.discrete(zero), std::invalid_argument);
  const std::vector<double> negative{0.5, -0.1};
  EXPECT_THROW((void)rng.discrete(negative), std::invalid_argument);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v(20);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // 20! permutations; identity is implausible
}

TEST(Rng, ChoiceThrowsOnEmpty) {
  Rng rng(14);
  const std::vector<int> empty;
  EXPECT_THROW((void)rng.choice(std::span<const int>(empty)),
               std::invalid_argument);
}

TEST(Rng, Fnv1aStable) {
  EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
  EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
  EXPECT_NE(fnv1a(""), fnv1a("a"));
}

}  // namespace
}  // namespace qucp
