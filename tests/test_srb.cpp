#include "srb/srb.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace qucp {
namespace {

TEST(SrbGrouping, LineHasConflictFreeGroups) {
  // Line of 7 qubits: one-hop pairs exist and conflict with neighbors.
  Topology topo(7, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}});
  const auto colors = group_one_hop_pairs(topo);
  const auto pairs = topo.one_hop_edge_pairs();
  ASSERT_EQ(colors.size(), pairs.size());
  // Every color class must be conflict-free: validate the one-hop rule by
  // checking no two same-colored pairs share an edge or touch.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    for (std::size_t j = i + 1; j < pairs.size(); ++j) {
      if (colors[i] != colors[j]) continue;
      const std::set<int> edges_i{pairs[i].first, pairs[i].second};
      EXPECT_EQ(edges_i.count(pairs[j].first) +
                    edges_i.count(pairs[j].second),
                0u);
    }
  }
}

TEST(SrbOverheadTest, JobsFormula) {
  const Device d = make_toronto27();
  const SrbOverhead oh = srb_overhead(d.topology(), 5);
  EXPECT_EQ(oh.qubits, 27);
  EXPECT_EQ(oh.edges, 28);  // the paper's Table I "1-hop pairs" row
  EXPECT_GT(oh.one_hop_pairs, 0);
  EXPECT_GT(oh.groups, 0);
  EXPECT_EQ(oh.seeds, 5);
  EXPECT_EQ(oh.jobs, oh.groups * 5 * 3);
}

TEST(SrbOverheadTest, ManhattanLargerThanToronto) {
  const SrbOverhead tor = srb_overhead(make_toronto27().topology(), 5);
  const SrbOverhead man = srb_overhead(make_manhattan65().topology(), 5);
  EXPECT_GT(man.one_hop_pairs, tor.one_hop_pairs);
  EXPECT_GE(man.groups, tor.groups);
  EXPECT_GT(man.jobs, tor.jobs);
}

TEST(SrbOverheadTest, NoPairsNoJobs) {
  // A 2-qubit device has a single edge and no one-hop pairs.
  Topology topo(2, {{0, 1}});
  const SrbOverhead oh = srb_overhead(topo, 5);
  EXPECT_EQ(oh.one_hop_pairs, 0);
  EXPECT_EQ(oh.groups, 0);
  EXPECT_EQ(oh.jobs, 0);
}

class CharacterizationTest : public ::testing::Test {
 protected:
  static Device planted_device() {
    // 6-qubit line; edges 0..4; plant crosstalk on pairs (0,2) and (2,4).
    Topology topo(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
    Rng rng(13);
    CalibrationProfile profile;
    profile.bad_edge_fraction = 0.0;
    profile.bad_readout_fraction = 0.0;
    Calibration cal = synthesize_calibration(topo, profile, rng);
    for (auto& e : cal.cx_error) e = 0.02;
    for (auto& r : cal.readout_error) r = 0.01;
    for (auto& q : cal.q1_error) q = 1e-4;
    CrosstalkModel xtalk;
    xtalk.add_pair(0, 2, 5.0);
    return Device("plant6", std::move(topo), std::move(cal),
                  std::move(xtalk));
  }

  static SrbCharacterizationOptions fast_options() {
    SrbCharacterizationOptions opts;
    opts.rb.lengths = {1, 3, 6, 10};
    opts.rb.seeds = 2;
    opts.ratio_threshold = 2.0;
    return opts;
  }
};

TEST_F(CharacterizationTest, FindsPlantedPairAndOnlyIt) {
  const Device d = planted_device();
  const CharacterizationResult result =
      characterize_crosstalk(d, fast_options(), Rng(17));
  ASSERT_FALSE(result.pairs.empty());
  // The planted pair (edges 0 and 2) must be flagged with a high ratio.
  bool found = false;
  for (const PairCharacterization& pc : result.pairs) {
    if ((pc.edge1 == 0 && pc.edge2 == 2) ||
        (pc.edge1 == 2 && pc.edge2 == 0)) {
      found = true;
      EXPECT_TRUE(pc.significant);
      EXPECT_GT(pc.ratio, 2.0);
    }
  }
  EXPECT_TRUE(found);
  // The estimate model contains the planted pair.
  EXPECT_GT(result.estimates.gamma(0, 2), 2.0);
}

TEST_F(CharacterizationTest, EstimateApproximatesGroundTruth) {
  const Device d = planted_device();
  const CharacterizationResult result =
      characterize_crosstalk(d, fast_options(), Rng(19));
  // Planted gamma is 5.0; mirror-RB ratio estimates within a loose band.
  const double est = result.estimates.gamma(0, 2);
  EXPECT_GT(est, 2.5);
  EXPECT_LT(est, 9.0);
}

TEST_F(CharacterizationTest, CleanDeviceYieldsNoSignificantPairs) {
  Topology topo(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  Rng rng(23);
  CalibrationProfile profile;
  profile.bad_edge_fraction = 0.0;
  profile.bad_readout_fraction = 0.0;
  Calibration cal = synthesize_calibration(topo, profile, rng);
  for (auto& e : cal.cx_error) e = 0.02;
  Device d("clean5", std::move(topo), std::move(cal), CrosstalkModel{});
  const CharacterizationResult result =
      characterize_crosstalk(d, fast_options(), Rng(29));
  for (const PairCharacterization& pc : result.pairs) {
    EXPECT_FALSE(pc.significant)
        << "edges " << pc.edge1 << "," << pc.edge2 << " ratio " << pc.ratio;
  }
  EXPECT_TRUE(result.estimates.empty());
}

}  // namespace
}  // namespace qucp
