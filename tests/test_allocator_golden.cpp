// Golden suite for the CandidateIndex-backed allocator: across randomized
// batch streams on every bundled topology, the indexed path must produce
// bit-identical results to the reference (non-indexed) path — the same
// candidate partitions, chosen in the same order, with the same EFS
// doubles — for every candidate-based partitioner, and pack_batches must
// make identical packing decisions. This is the contract that lets the
// service swap the incremental allocator in without a behavior flag.

#include "partition/candidate_index.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "partition/candidates.hpp"
#include "partition/partitioners.hpp"
#include "service/packer.hpp"

namespace qucp {
namespace {

std::vector<Device> bundled_devices() {
  std::vector<Device> devices;
  devices.push_back(make_melbourne16());
  devices.push_back(make_toronto27());
  devices.push_back(make_manhattan65());
  devices.push_back(make_line_device(9));
  devices.push_back(make_grid_device(4, 5));
  return devices;
}

std::vector<std::unique_ptr<Partitioner>> candidate_partitioners(
    const Device& device, Rng& rng) {
  std::vector<std::unique_ptr<Partitioner>> out;
  out.push_back(std::make_unique<QucpPartitioner>(4.0));
  CrosstalkModel estimates;
  for (const auto& [e1, e2] : device.topology().one_hop_edge_pairs()) {
    if (rng.bernoulli(0.5)) {
      estimates.add_pair(e1, e2, rng.uniform(1.0, 8.0));
    }
  }
  out.push_back(std::make_unique<QumcPartitioner>(std::move(estimates)));
  out.push_back(std::make_unique<QucloudPartitioner>());
  out.push_back(std::make_unique<MultiqcPartitioner>());
  return out;
}

/// Random batch of shapes; sizes occasionally too large so infeasible
/// batches (nullopt) are part of the golden stream.
std::vector<ProgramShape> random_batch(Rng& rng, int max_qubits) {
  const int batch_size = static_cast<int>(rng.integer(1, 5));
  std::vector<ProgramShape> shapes;
  for (int i = 0; i < batch_size; ++i) {
    ProgramShape s;
    s.num_qubits = static_cast<int>(rng.integer(1, max_qubits));
    s.num_2q = static_cast<int>(rng.integer(0, 30));
    s.num_1q = static_cast<int>(rng.integer(0, 40));
    if (s.num_qubits < 2) s.num_2q = 0;
    shapes.push_back(s);
  }
  return shapes;
}

void expect_identical(
    const std::optional<std::vector<PartitionAssignment>>& reference,
    const std::optional<std::vector<PartitionAssignment>>& indexed,
    const std::string& context) {
  ASSERT_EQ(reference.has_value(), indexed.has_value()) << context;
  if (!reference) return;
  ASSERT_EQ(reference->size(), indexed->size()) << context;
  for (std::size_t i = 0; i < reference->size(); ++i) {
    const PartitionAssignment& a = (*reference)[i];
    const PartitionAssignment& b = (*indexed)[i];
    EXPECT_EQ(a.qubits, b.qubits) << context << " program " << i;
    // EXPECT_EQ on doubles: the claim is bit-identity, not closeness.
    EXPECT_EQ(a.efs.score, b.efs.score) << context << " program " << i;
    EXPECT_EQ(a.efs.avg_2q, b.efs.avg_2q) << context << " program " << i;
    EXPECT_EQ(a.efs.avg_1q, b.efs.avg_1q) << context << " program " << i;
    EXPECT_EQ(a.efs.readout_sum, b.efs.readout_sum)
        << context << " program " << i;
    EXPECT_EQ(a.efs.crosstalk_edges, b.efs.crosstalk_edges)
        << context << " program " << i;
  }
}

TEST(AllocatorGolden, IndexedAllocationBitIdenticalOnAllTopologies) {
  Rng rng(20260730);
  for (const Device& device : bundled_devices()) {
    CandidateIndex index(device);  // persists across batches, like Backend's
    const int max_qubits = std::min(6, device.num_qubits());
    auto partitioners = candidate_partitioners(device, rng);
    for (int batch = 0; batch < 24; ++batch) {
      std::vector<ProgramShape> shapes = random_batch(rng, max_qubits);
      const std::vector<std::size_t> order = allocation_order(shapes);
      std::vector<ProgramShape> ordered;
      for (std::size_t idx : order) ordered.push_back(shapes[idx]);
      for (const auto& partitioner : partitioners) {
        const std::string context = device.name() + "/" +
                                    partitioner->name() + "/batch" +
                                    std::to_string(batch);
        const auto reference = partitioner->allocate(device, ordered);
        const auto indexed = partitioner->allocate(device, ordered, &index);
        expect_identical(reference, indexed, context);
      }
    }
  }
}

TEST(AllocatorGolden, SessionCandidatesMatchReferenceGeneration) {
  // Drive a session through a growing allocation and compare the raw
  // candidate lists (sets and order) against partition_candidates.
  Rng rng(77);
  for (const Device& device : bundled_devices()) {
    CandidateIndex index(device);
    for (int trial = 0; trial < 4; ++trial) {
      AllocationSession session(index);
      std::vector<int> allocated;
      for (int round = 0; round < 4; ++round) {
        const int k =
            static_cast<int>(rng.integer(1, std::min(5, device.num_qubits())));
        const auto reference = partition_candidates(device, k, allocated);
        const auto& session_cands = session.candidates(k);
        ASSERT_EQ(reference.size(), session_cands.size())
            << device.name() << " k=" << k << " round " << round;
        for (std::size_t i = 0; i < reference.size(); ++i) {
          EXPECT_EQ(reference[i], *session_cands[i].part)
              << device.name() << " k=" << k << " candidate " << i;
        }
        if (reference.empty()) break;
        // Commit a pseudo-random candidate to dirty the fringe.
        const auto& pick =
            reference[static_cast<std::size_t>(rng.integer(
                0, static_cast<std::int64_t>(reference.size()) - 1))];
        session.commit(pick);
        allocated.insert(allocated.end(), pick.begin(), pick.end());
      }
    }
  }
}

TEST(AllocatorGolden, PackerDecisionsIdenticalWithIndex) {
  const Device device = make_toronto27();
  CandidateIndex index(device);
  const QucpPartitioner partitioner;
  Rng rng(99);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<PackJob> jobs;
    const int n = static_cast<int>(rng.integer(1, 12));
    for (int i = 0; i < n; ++i) {
      ProgramShape s;
      s.num_qubits = static_cast<int>(rng.integer(1, 6));
      s.num_2q = s.num_qubits >= 2 ? static_cast<int>(rng.integer(0, 20)) : 0;
      s.num_1q = static_cast<int>(rng.integer(0, 20));
      jobs.push_back({static_cast<std::size_t>(i), s,
                      rng.next_u64(), rng.bernoulli(0.15)});
    }
    PackOptions opts;
    opts.max_batch_size = static_cast<int>(rng.integer(1, 5));
    opts.efs_threshold = rng.bernoulli(0.5) ? rng.uniform(0.0, 0.5)
                                            : PackOptions{}.efs_threshold;
    std::map<std::uint64_t, double> cache_ref;
    std::map<std::uint64_t, double> cache_idx;
    const PackResult reference =
        pack_batches(device, jobs, partitioner, opts, cache_ref);
    const PackResult indexed =
        pack_batches(device, jobs, partitioner, opts, cache_idx, &index);
    ASSERT_EQ(reference.batches.size(), indexed.batches.size()) << trial;
    for (std::size_t b = 0; b < reference.batches.size(); ++b) {
      EXPECT_EQ(reference.batches[b].jobs, indexed.batches[b].jobs)
          << trial << " batch " << b;
    }
    EXPECT_EQ(reference.unplaceable, indexed.unplaceable) << trial;
    EXPECT_EQ(reference.spill_events, indexed.spill_events) << trial;
    EXPECT_EQ(cache_ref, cache_idx) << trial;
  }
}

TEST(AllocatorGolden, IndexValidatesPartitionSize) {
  const Device device = make_line_device(5);
  CandidateIndex index(device);
  EXPECT_THROW((void)index.per_k(0), std::invalid_argument);
  EXPECT_THROW((void)index.per_k(-3), std::invalid_argument);
  EXPECT_EQ(index.sizes_cached(), 0u);
  EXPECT_EQ(index.per_k(2).candidates.size(),
            partition_candidates(device, 2, {}).size());
  EXPECT_EQ(index.sizes_cached(), 1u);
}

TEST(AllocatorGolden, OversizedProgramsYieldNoCandidates) {
  const Device device = make_line_device(4);
  CandidateIndex index(device);
  const QucpPartitioner partitioner;
  const std::vector<ProgramShape> programs{ProgramShape{5, 3, 3}};
  EXPECT_FALSE(partitioner.allocate(device, programs, &index).has_value());
  EXPECT_FALSE(partitioner.allocate(device, programs).has_value());
}

}  // namespace
}  // namespace qucp
