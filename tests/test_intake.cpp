// Intake-path tests: SubmitRing / ShardedIntake unit behavior, and the
// ExecutionService submission path under multi-producer stress.
//
// The stress tests pin the three properties the sharded MPSC intake must
// keep under arbitrary interleavings: no job is lost, no job is duplicated,
// and every producer's jobs stay in its own submission (FIFO) order. The
// determinism test pins the service-level consequence: with Canonical
// ordering and unique names, per-job results are reproducible regardless
// of how 8 submitter threads interleave. CI runs this binary under TSan
// and ASan+UBSan.

#include "service/intake.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "benchmarks/suite.hpp"
#include "hardware/device.hpp"
#include "service/job.hpp"
#include "service/service.hpp"

namespace qucp {
namespace {

using detail::JobPtr;
using detail::ShardedIntake;
using detail::SubmitRing;

JobPtr make_job(std::uint64_t id) {
  auto state = std::make_shared<detail::JobState>();
  state->id = id;
  return state;
}

std::vector<std::uint64_t> pop_all_ids(SubmitRing& ring) {
  std::vector<std::uint64_t> ids;
  JobPtr out;
  while (ring.try_pop(out)) ids.push_back(out->id);
  return ids;
}

TEST(SubmitRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(SubmitRing(0).capacity(), 2u);
  EXPECT_EQ(SubmitRing(1).capacity(), 2u);
  EXPECT_EQ(SubmitRing(3).capacity(), 4u);
  EXPECT_EQ(SubmitRing(8).capacity(), 8u);
  EXPECT_EQ(SubmitRing(9).capacity(), 16u);
}

TEST(SubmitRing, FifoAcrossWraparound) {
  SubmitRing ring(4);
  std::uint64_t next = 0;
  std::uint64_t expect = 0;
  // Push 3 / pop 3 per round: positions wrap the 4-cell ring many times
  // and every pop must still see submission order.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(ring.try_push(make_job(next++)));
    JobPtr out;
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      EXPECT_EQ(out->id, expect++);
    }
  }
  JobPtr out;
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SubmitRing, FullRingRejectsUntilPopped) {
  SubmitRing ring(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_push(make_job(i)));
  }
  EXPECT_FALSE(ring.try_push(make_job(99)));
  JobPtr out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out->id, 0u);
  EXPECT_TRUE(ring.try_push(make_job(4)));
  EXPECT_EQ(pop_all_ids(ring), (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(SubmitRing, BlockReservationIsAllOrNothing) {
  SubmitRing ring(8);
  std::vector<JobPtr> first;
  for (std::uint64_t i = 0; i < 5; ++i) first.push_back(make_job(i));
  ASSERT_TRUE(ring.try_push_block(first));

  // 3 free cells: a 4-job block must be rejected without touching the ring.
  std::vector<JobPtr> second;
  for (std::uint64_t i = 10; i < 14; ++i) second.push_back(make_job(i));
  EXPECT_FALSE(ring.try_push_block(second));
  EXPECT_EQ(pop_all_ids(ring), (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));

  // A block larger than the whole ring can never fit.
  std::vector<JobPtr> oversized;
  for (std::uint64_t i = 0; i < 9; ++i) oversized.push_back(make_job(i));
  EXPECT_FALSE(ring.try_push_block(oversized));

  // After the drain the rejected block fits (wrapped positions) and keeps
  // its internal order, interleaved correctly with single pushes.
  ASSERT_TRUE(ring.try_push_block(second));
  ASSERT_TRUE(ring.try_push(make_job(20)));
  EXPECT_EQ(pop_all_ids(ring),
            (std::vector<std::uint64_t>{10, 11, 12, 13, 20}));
}

TEST(SubmitRing, ReserveSpanPublishesOversizedBlockContiguously) {
  // The submit_all oversized path: a 10-ticket span on a 4-cell ring. The
  // whole span claims one contiguous ticket block up front, so other
  // producers are locked out (ring reads as full) until the span drains —
  // the no-chunk-seam property — and the reserver publishes through the
  // laps as the consumer frees cells.
  SubmitRing ring(4);
  const std::uint64_t base = ring.reserve_span(10);
  EXPECT_EQ(base, 0u);
  EXPECT_FALSE(ring.try_push(make_job(99)));

  std::vector<std::uint64_t> drained;
  JobPtr out;
  for (std::uint64_t i = 0; i < 10; ++i) {
    // A cell whose earlier lap is unconsumed rejects the publish; draining
    // our own published prefix frees it (what the service's backpressure
    // dispatch does).
    while (!ring.try_publish_at(base + i, make_job(i))) {
      ASSERT_TRUE(ring.try_pop(out)) << "ticket " << i;
      drained.push_back(out->id);
    }
    // Mid-span the ring still reads as full to other producers.
    EXPECT_FALSE(ring.try_push(make_job(99)));
  }
  while (ring.try_pop(out)) drained.push_back(out->id);
  EXPECT_EQ(drained, (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8,
                                                 9}));

  // With the span fully consumed the ring is a normal empty ring again.
  EXPECT_TRUE(ring.try_push(make_job(42)));
  EXPECT_EQ(pop_all_ids(ring), (std::vector<std::uint64_t>{42}));
}

TEST(SubmitRing, UnpublishedSpanHeadStallsPopWithoutLosingJobs) {
  // try_pop at a reserved-but-unpublished head ticket returns false (the
  // job is not lost, the shard just waits for the reserver) and resumes in
  // ticket order once the hole is published.
  SubmitRing ring(4);
  const std::uint64_t base = ring.reserve_span(3);
  ASSERT_TRUE(ring.try_publish_at(base + 0, make_job(0)));
  // Publish out of order is not allowed by the contract; simulate the
  // reserver pausing after ticket 0 instead.
  JobPtr out;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out->id, 0u);
  EXPECT_FALSE(ring.try_pop(out)) << "popped an unpublished ticket";
  ASSERT_TRUE(ring.try_publish_at(base + 1, make_job(1)));
  ASSERT_TRUE(ring.try_publish_at(base + 2, make_job(2)));
  EXPECT_EQ(pop_all_ids(ring), (std::vector<std::uint64_t>{1, 2}));
}

TEST(ShardedIntake, DrainsShardThenTicketOrder) {
  ShardedIntake intake(2, 4);
  // Chronological publish order crosses shards; the drain reads shard 0
  // fully, then shard 1 — deterministic layout, not arrival order.
  ASSERT_TRUE(intake.try_push(make_job(10), 1));
  ASSERT_TRUE(intake.try_push(make_job(1), 0));
  ASSERT_TRUE(intake.try_push(make_job(11), 1));
  ASSERT_TRUE(intake.try_push(make_job(2), 0));
  std::vector<JobPtr> out;
  EXPECT_EQ(intake.drain(out), 4u);
  std::vector<std::uint64_t> ids;
  for (const JobPtr& job : out) ids.push_back(job->id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{1, 2, 10, 11}));
}

TEST(ShardedIntake, HomeShardIsStableAndInRange) {
  ShardedIntake intake(4, 4);
  const std::size_t home = intake.home_shard();
  EXPECT_LT(home, 4u);
  EXPECT_EQ(intake.home_shard(), home);
  std::size_t other = 99;
  std::thread([&intake, &other] { other = intake.home_shard(); }).join();
  EXPECT_LT(other, 4u);
}

TEST(ShardedIntake, ZeroShardsThrows) {
  EXPECT_THROW(ShardedIntake(0, 4), std::invalid_argument);
}

TEST(ShardedIntake, MultiProducerStressKeepsPerProducerFifo) {
  constexpr int kProducers = 8;
  constexpr std::uint64_t kPerProducer = 2000;
  // Tiny rings force constant full/retry cycles, randomizing the
  // interleaving between producers and the single drainer.
  ShardedIntake intake(4, 16);
  std::vector<JobPtr> drained;
  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&intake, &live, t] {
      const std::size_t shard = intake.home_shard();
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const JobPtr job =
            make_job((static_cast<std::uint64_t>(t) << 32) | i);
        while (!intake.try_push(job, shard)) std::this_thread::yield();
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  while (live.load(std::memory_order_acquire) != 0) {
    (void)intake.drain(drained);
  }
  for (std::thread& t : producers) t.join();
  (void)intake.drain(drained);

  ASSERT_EQ(drained.size(), kProducers * kPerProducer);
  std::set<std::uint64_t> seen;
  std::vector<std::uint64_t> next_seq(kProducers, 0);
  for (const JobPtr& job : drained) {
    ASSERT_TRUE(seen.insert(job->id).second) << "duplicate job " << job->id;
    const int t = static_cast<int>(job->id >> 32);
    const std::uint64_t seq = job->id & 0xffffffffu;
    EXPECT_EQ(seq, next_seq[t]++) << "producer " << t << " out of order";
  }
}

// ---------------------------------------------------------------------------
// Service-level stress: the full submit() path (gate, id assignment, shard
// publish, backpressure, auto-flush) under 8 concurrent producers.

TEST(ServiceIntake, EightProducerStressNoLostNoDuplicateJobs) {
  ServiceOptions opts;
  opts.exec.shots = 1;
  opts.num_workers = 2;
  opts.max_batch_size = 8;
  opts.submit_shards = 4;
  opts.submit_shard_capacity = 32;  // small: exercises backpressure drains
  opts.auto_flush_batch_size = 16;  // dispatch cycles race the submitters
  ExecutionService service(make_toronto27(), opts);
  const Circuit circuit = get_benchmark("bell").circuit;

  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::vector<JobHandle>> handles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &handles, &circuit, t] {
      handles[static_cast<std::size_t>(t)].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        JobOptions jopts;
        jopts.name = "t" + std::to_string(t) + "#" + std::to_string(i);
        handles[static_cast<std::size_t>(t)].push_back(
            service.submit(circuit, jopts));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service.flush();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.jobs_completed, kThreads * kPerThread);
  EXPECT_EQ(stats.jobs_failed, 0u);

  std::set<std::uint64_t> ids;
  std::set<std::string> names;
  for (const auto& per_thread : handles) {
    for (const JobHandle& h : per_thread) {
      EXPECT_EQ(h.status(), JobStatus::Done) << h.name();
      EXPECT_TRUE(ids.insert(h.id()).second) << "duplicate id " << h.id();
      EXPECT_TRUE(names.insert(h.name()).second);
    }
  }
  EXPECT_EQ(ids.size(), kThreads * kPerThread);
}

TEST(ServiceIntake, AutoShardCountScalesToHardwareAndHoldsEightProducers) {
  // submit_shards = 0 (the default) resolves from hardware_concurrency,
  // rounded up to a power of two and clamped to [8, 64]. The floor of 8
  // is the no-cliff guarantee: an 8-producer burst homes every producer
  // on its own ring even on small machines, so producers never serialize
  // on a shared shard's CAS loop. An explicit value still overrides.
  {
    ServiceOptions opts;
    ASSERT_EQ(opts.submit_shards, 0u);  // auto is the default
    ExecutionService service(make_toronto27(), opts);
    const std::size_t resolved = service.options().submit_shards;
    EXPECT_GE(resolved, 8u);
    EXPECT_LE(resolved, 64u);
    EXPECT_EQ(resolved & (resolved - 1), 0u) << "power of two, got "
                                             << resolved;
  }
  {
    ServiceOptions opts;
    opts.submit_shards = 2;  // explicit override is honored verbatim
    ExecutionService service(make_toronto27(), opts);
    EXPECT_EQ(service.options().submit_shards, 2u);
  }

  // Burst stress on the resolved default: 8 producers alternating block
  // submit_all() and single submit() at full rate. Every job must land
  // exactly once (no lost, no duplicate ids) with nothing failed.
  ServiceOptions opts;
  opts.exec.shots = 1;
  opts.num_workers = 2;
  opts.max_batch_size = 8;
  opts.auto_flush_batch_size = 32;  // dispatch cycles race the submitters
  ExecutionService service(make_toronto27(), opts);
  const Circuit circuit = get_benchmark("bell").circuit;

  constexpr int kThreads = 8;
  constexpr int kBursts = 10;
  constexpr int kBurstSize = 12;
  std::vector<std::vector<JobHandle>> handles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &handles, &circuit, t] {
      auto& mine = handles[static_cast<std::size_t>(t)];
      mine.reserve(kBursts * kBurstSize);
      for (int burst = 0; burst < kBursts; ++burst) {
        if (burst % 2 == 0) {
          std::vector<Circuit> block;
          block.reserve(kBurstSize);
          for (int i = 0; i < kBurstSize; ++i) {
            Circuit c = circuit;
            c.set_name("t" + std::to_string(t) + "b" + std::to_string(burst) +
                       "#" + std::to_string(i));
            block.push_back(std::move(c));
          }
          for (JobHandle& h : service.submit_all(std::move(block))) {
            mine.push_back(std::move(h));
          }
        } else {
          for (int i = 0; i < kBurstSize; ++i) {
            JobOptions jopts;
            jopts.name = "t" + std::to_string(t) + "b" + std::to_string(burst) +
                         "#" + std::to_string(i);
            mine.push_back(service.submit(circuit, jopts));
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  service.flush();

  constexpr std::size_t kTotal = static_cast<std::size_t>(kThreads) * kBursts *
                                 kBurstSize;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, kTotal);
  EXPECT_EQ(stats.jobs_completed, kTotal);
  EXPECT_EQ(stats.jobs_failed, 0u);
  std::set<std::uint64_t> ids;
  for (const auto& per_thread : handles) {
    for (const JobHandle& h : per_thread) {
      EXPECT_EQ(h.status(), JobStatus::Done) << h.name();
      EXPECT_TRUE(ids.insert(h.id()).second) << "duplicate id " << h.id();
    }
  }
  EXPECT_EQ(ids.size(), kTotal);
}

TEST(ServiceIntake, ResultsDeterministicAcrossInterleavings) {
  // Same job set, different physical interleavings (whatever the scheduler
  // produces each run): with Canonical order, unique names, and one flush,
  // every job's batch assignment and result must be bit-identical.
  const auto run = [] {
    ServiceOptions opts;
    opts.exec.shots = 8;
    opts.num_workers = 2;
    opts.max_batch_size = 4;
    ExecutionService service(make_toronto27(), opts);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::vector<JobHandle>> handles(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&service, &handles, t] {
        for (int i = 0; i < kPerThread; ++i) {
          const BenchmarkSpec& spec =
              benchmark_suite()[static_cast<std::size_t>((t * 31 + i) % 8)];
          JobOptions jopts;
          jopts.name = "job-t" + std::to_string(t) + "-" + std::to_string(i);
          handles[static_cast<std::size_t>(t)].push_back(
              service.submit(spec.circuit, jopts));
        }
      });
    }
    for (std::thread& t : threads) t.join();
    service.flush();

    std::map<std::string, std::pair<std::uint64_t, double>> by_name;
    for (const auto& per_thread : handles) {
      for (const JobHandle& h : per_thread) {
        const JobResult& r = h.result();
        by_name[h.name()] = {r.batch.batch_index, r.report.pst_value};
      }
    }
    return by_name;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

TEST(ServiceIntake, BackpressureDispatchesInsteadOfBlocking) {
  ServiceOptions opts;
  opts.exec.shots = 1;
  opts.num_workers = 1;
  opts.max_batch_size = 4;
  opts.submit_shards = 1;
  opts.submit_shard_capacity = 2;  // every third submit drains the ring
  ExecutionService service(make_toronto27(), opts);
  const Circuit circuit = get_benchmark("bell").circuit;
  for (int i = 0; i < 50; ++i) (void)service.submit(circuit);
  service.flush();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, 50u);
  EXPECT_EQ(stats.jobs_completed, 50u);
  EXPECT_EQ(stats.jobs_failed, 0u);
}

TEST(ServiceIntake, CancelPendingFailsQueuedJobsOnly) {
  ServiceOptions opts;
  opts.exec.shots = 1;
  ExecutionService service(make_toronto27(), opts);
  const Circuit circuit = get_benchmark("bell").circuit;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 10; ++i) {
    JobOptions jopts;
    jopts.name = "doomed#" + std::to_string(i);
    handles.push_back(service.submit(circuit, jopts));
  }
  EXPECT_EQ(service.cancel_pending(), 10u);
  EXPECT_EQ(service.cancel_pending(), 0u);
  for (const JobHandle& h : handles) {
    EXPECT_EQ(h.status(), JobStatus::Failed);
    EXPECT_NE(h.error().find("cancelled before dispatch"), std::string::npos);
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_cancelled, 10u);
  EXPECT_EQ(stats.jobs_failed, 10u);

  // The service keeps working after a cancel sweep.
  const JobHandle survivor = service.submit(circuit);
  service.flush();
  EXPECT_EQ(survivor.status(), JobStatus::Done);
}

TEST(ServiceIntake, SubmitAllPublishesOversizedBatchAsOneContiguousSpan) {
  ServiceOptions opts;
  opts.exec.shots = 1;
  opts.order = JobOrder::Fifo;
  opts.max_batch_size = 4;
  opts.submit_shard_capacity = 8;  // 20 circuits -> one multi-lap span
  ExecutionService service(make_toronto27(), opts);
  std::vector<Circuit> circuits;
  for (int i = 0; i < 20; ++i) {
    circuits.push_back(
        benchmark_suite()[static_cast<std::size_t>(i % 8)].circuit);
  }
  const std::vector<JobHandle> handles = service.submit_all(circuits);
  ASSERT_EQ(handles.size(), 20u);
  for (std::size_t i = 1; i < handles.size(); ++i) {
    EXPECT_EQ(handles[i].id(), handles[i - 1].id() + 1);
  }
  service.flush();
  for (const JobHandle& h : handles) {
    EXPECT_EQ(h.status(), JobStatus::Done);
  }
  EXPECT_EQ(service.stats().jobs_submitted, 20u);
}

TEST(ServiceIntake, OversizedSubmitAllSurvivesConcurrentSubmitters) {
  // The multi-lap span publish backpressure-drains the rings while other
  // producers keep submitting singles to their own shards: nothing is
  // lost, duplicated, or wedged.
  ServiceOptions opts;
  opts.exec.shots = 1;
  opts.num_workers = 2;
  opts.max_batch_size = 8;
  opts.submit_shards = 2;
  opts.submit_shard_capacity = 8;  // 64-circuit submit_all spans 8 laps
  ExecutionService service(make_toronto27(), opts);
  const Circuit circuit = get_benchmark("bell").circuit;

  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;
  std::vector<std::vector<JobHandle>> single_handles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&service, &single_handles, &circuit, t] {
      for (int i = 0; i < kPerThread; ++i) {
        JobOptions jopts;
        jopts.name = "t" + std::to_string(t) + "#" + std::to_string(i);
        single_handles[static_cast<std::size_t>(t)].push_back(
            service.submit(circuit, jopts));
      }
    });
  }
  std::vector<Circuit> bulk;
  for (int i = 0; i < 64; ++i) {
    bulk.push_back(
        benchmark_suite()[static_cast<std::size_t>(i % 8)].circuit);
  }
  const std::vector<JobHandle> bulk_handles =
      service.submit_all(std::move(bulk));
  for (std::thread& t : threads) t.join();
  service.flush();

  constexpr std::size_t kTotal = 64 + kThreads * kPerThread;
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, kTotal);
  EXPECT_EQ(stats.jobs_completed, kTotal);
  EXPECT_EQ(stats.jobs_failed, 0u);

  std::set<std::uint64_t> ids;
  for (const JobHandle& h : bulk_handles) {
    EXPECT_EQ(h.status(), JobStatus::Done);
    EXPECT_TRUE(ids.insert(h.id()).second);
  }
  for (const auto& per_thread : single_handles) {
    for (const JobHandle& h : per_thread) {
      EXPECT_EQ(h.status(), JobStatus::Done) << h.name();
      EXPECT_TRUE(ids.insert(h.id()).second);
    }
  }
  EXPECT_EQ(ids.size(), kTotal);
}

TEST(ServiceIntake, SubmitAfterShutdownThrows) {
  ServiceOptions opts;
  opts.exec.shots = 1;
  ExecutionService service(make_toronto27(), opts);
  const Circuit circuit = get_benchmark("bell").circuit;
  service.shutdown();
  EXPECT_THROW((void)service.submit(circuit), std::runtime_error);
  EXPECT_THROW((void)service.submit_all({circuit}), std::runtime_error);
}

}  // namespace
}  // namespace qucp
