#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace qucp {
namespace {

TEST(Strings, SplitKeepsEmptyTokens) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n"), "");
  EXPECT_EQ(trim("ab"), "ab");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("OPENQASM 2.0", "OPENQASM"));
  EXPECT_FALSE(starts_with("OPEN", "OPENQASM"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Strings, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

TEST(Strings, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.267, 1), "26.7%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace qucp
