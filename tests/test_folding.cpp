#include "zne/folding.hpp"

#include <gtest/gtest.h>

#include "sim/statevector.hpp"

namespace qucp {
namespace {

Circuit sample_circuit() {
  Circuit c(3, 3, "sample");
  c.h(0);
  c.t(1);
  c.cx(0, 1);
  c.ry(0.4, 2);
  c.cx(1, 2);
  c.s(0);
  c.rz(-0.3, 1);
  c.x(2);
  c.measure_all();
  return c;
}

TEST(Folding, ScaleOneIsIdentityTransformation) {
  const Circuit c = sample_circuit();
  const Circuit folded = fold_gates_at_random(c, 1.0, Rng(1));
  EXPECT_EQ(folded.gate_count(), c.gate_count());
}

class FoldScaleTest : public ::testing::TestWithParam<double> {};

TEST_P(FoldScaleTest, AchievedScaleNearRequested) {
  const Circuit c = sample_circuit();
  const double scale = GetParam();
  const Circuit folded = fold_gates_at_random(c, scale, Rng(7));
  // Quantization: folds add pairs of gates, so the achieved scale is
  // within 1/n of the request.
  EXPECT_NEAR(achieved_scale(c, folded), scale,
              2.0 / c.gate_count() + 1e-12);
}

TEST_P(FoldScaleTest, FoldingPreservesSemantics) {
  const Circuit c = sample_circuit();
  const Circuit folded = fold_gates_at_random(c, GetParam(), Rng(3));
  const Distribution want = ideal_distribution(c);
  const Distribution got = ideal_distribution(folded);
  for (const auto& [outcome, p] : want.probs()) {
    EXPECT_NEAR(got.prob(outcome), p, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, FoldScaleTest,
                         ::testing::Values(1.0, 1.5, 2.0, 2.5, 3.0, 4.5));

TEST(Folding, GlobalFoldExactOddScales) {
  const Circuit c = sample_circuit();
  for (double scale : {1.0, 3.0, 5.0}) {
    const Circuit folded = fold_global(c, scale);
    EXPECT_NEAR(achieved_scale(c, folded), scale, 1e-12) << scale;
  }
}

TEST(Folding, GlobalFoldPreservesSemantics) {
  const Circuit c = sample_circuit();
  for (double scale : {1.5, 2.0, 3.0}) {
    const Distribution want = ideal_distribution(c);
    const Distribution got = ideal_distribution(fold_global(c, scale));
    for (const auto& [outcome, p] : want.probs()) {
      EXPECT_NEAR(got.prob(outcome), p, 1e-9) << scale;
    }
  }
}

TEST(Folding, MeasurementsStayTerminalAndUntouched) {
  const Circuit c = sample_circuit();
  const Circuit folded = fold_gates_at_random(c, 2.5, Rng(5));
  EXPECT_EQ(folded.count_ops().at("measure"), 3);
  // All measurements at the very end.
  std::size_t first_measure = folded.size();
  for (std::size_t i = 0; i < folded.size(); ++i) {
    if (folded.ops()[i].kind == GateKind::Measure) {
      first_measure = std::min(first_measure, i);
    } else {
      EXPECT_GT(first_measure, i) << "gate after measurement";
    }
  }
}

TEST(Folding, RejectsBadScale) {
  const Circuit c = sample_circuit();
  EXPECT_THROW((void)fold_gates_at_random(c, 0.5, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW((void)fold_global(c, 0.0), std::invalid_argument);
}

TEST(Folding, NonTerminalMeasurementRejected) {
  Circuit c(2, 2);
  c.h(0);
  c.measure(0, 0);
  c.x(0);
  EXPECT_THROW((void)fold_gates_at_random(c, 2.0, Rng(1)),
               std::invalid_argument);
}

TEST(Folding, DeterministicPerSeed) {
  const Circuit c = sample_circuit();
  const Circuit a = fold_gates_at_random(c, 2.0, Rng(9));
  const Circuit b = fold_gates_at_random(c, 2.0, Rng(9));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.ops()[i], b.ops()[i]);
  }
}

TEST(Folding, PaperScaleFactors) {
  EXPECT_EQ(paper_scale_factors(), (std::vector<double>{1.0, 1.5, 2.0, 2.5}));
}

TEST(Folding, AchievedScaleValidation) {
  const Circuit empty(2);
  EXPECT_THROW((void)achieved_scale(empty, empty), std::invalid_argument);
}

}  // namespace
}  // namespace qucp
