#include "circuit/optimize.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace qucp {
namespace {

TEST(Optimize, CancelsAdjacentSelfInverse) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  OptimizeStats stats;
  const Circuit out = optimize(c, &stats);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(stats.cancelled_pairs, 1);
}

TEST(Optimize, CancelsCxPairs) {
  Circuit c(2);
  c.cx(0, 1);
  c.cx(0, 1);
  EXPECT_TRUE(optimize(c).empty());
}

TEST(Optimize, KeepsReversedCx) {
  Circuit c(2);
  c.cx(0, 1);
  c.cx(1, 0);  // different orientation: NOT an inverse pair
  EXPECT_EQ(optimize(c).size(), 2u);
}

TEST(Optimize, CancelsSymmetricCzEitherOrientation) {
  Circuit c(2);
  c.cz(0, 1);
  c.cz(1, 0);
  EXPECT_TRUE(optimize(c).empty());
}

TEST(Optimize, CancelsSTdgPairs) {
  Circuit c(1);
  c.s(0);
  c.sdg(0);
  c.t(0);
  c.tdg(0);
  EXPECT_TRUE(optimize(c).empty());
}

TEST(Optimize, InterveningGateBlocksCancellation) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  c.h(0);
  EXPECT_EQ(optimize(c).size(), 3u);
}

TEST(Optimize, InterveningOnEitherWireBlocks2qCancellation) {
  Circuit c(2);
  c.cx(0, 1);
  c.x(1);
  c.cx(0, 1);
  EXPECT_EQ(optimize(c).size(), 3u);
}

TEST(Optimize, MergesRotations) {
  Circuit c(1);
  c.rz(0.25, 0);
  c.rz(0.50, 0);
  OptimizeStats stats;
  const Circuit out = optimize(c, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out.ops()[0].params[0], 0.75, 1e-12);
  EXPECT_EQ(stats.merged_rotations, 1);
}

TEST(Optimize, MergedRotationsCancelToIdentity) {
  Circuit c(1);
  c.rx(0.7, 0);
  c.rx(-0.7, 0);
  EXPECT_TRUE(optimize(c).empty());
}

TEST(Optimize, RemovesIdentityAndZeroRotations) {
  Circuit c(1);
  c.i(0);
  c.rz(0.0, 0);
  c.ry(2 * std::numbers::pi, 0);  // global phase only
  OptimizeStats stats;
  EXPECT_TRUE(optimize(c, &stats).empty());
  EXPECT_EQ(stats.removed_identities, 3);
}

TEST(Optimize, MeasureIsAFence) {
  Circuit c(1);
  c.h(0);
  c.measure(0, 0);
  c.h(0);
  EXPECT_EQ(optimize(c).size(), 3u);
}

TEST(Optimize, CascadingCancellation) {
  // h x x h -> h h -> empty (requires fixpoint iteration).
  Circuit c(1);
  c.h(0);
  c.x(0);
  c.x(0);
  c.h(0);
  EXPECT_TRUE(optimize(c).empty());
}

TEST(Optimize, PreservesUnitary) {
  Circuit c(3);
  c.h(0);
  c.t(1);
  c.cx(0, 1);
  c.cx(0, 1);
  c.rz(0.4, 2);
  c.rz(0.6, 2);
  c.x(1);
  c.x(1);
  c.s(2);
  const Matrix before = c.to_unitary();
  const Circuit out = optimize(c);
  EXPECT_LT(out.size(), c.size());
  EXPECT_TRUE(out.to_unitary().approx_equal(before, 1e-10));
}

TEST(Optimize, StatsTotalConsistent) {
  Circuit c(1);
  c.h(0);
  c.h(0);
  c.rz(0.1, 0);
  c.rz(0.2, 0);
  c.i(0);
  OptimizeStats stats;
  (void)optimize(c, &stats);
  EXPECT_EQ(stats.total(),
            stats.cancelled_pairs * 2 + stats.merged_rotations +
                stats.removed_identities);
  EXPECT_GT(stats.total(), 0);
}

TEST(Optimize, SwapPairCancels) {
  Circuit c(2);
  c.swap(0, 1);
  c.swap(1, 0);
  EXPECT_TRUE(optimize(c).empty());
}

}  // namespace
}  // namespace qucp
