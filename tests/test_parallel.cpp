#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchmarks/suite.hpp"

namespace qucp {
namespace {

std::vector<Circuit> three_benchmarks() {
  return {get_benchmark("adder").circuit, get_benchmark("fredkin").circuit,
          get_benchmark("alu").circuit};
}

ParallelOptions fast_options(Method method) {
  ParallelOptions opts;
  opts.method = method;
  opts.exec.shots = 256;
  return opts;
}

TEST(MethodName, AllNamed) {
  EXPECT_EQ(method_name(Method::QuCP), "QuCP");
  EXPECT_EQ(method_name(Method::QuMC), "QuMC");
  EXPECT_EQ(method_name(Method::CNA), "CNA");
  EXPECT_EQ(method_name(Method::QuCloud), "QuCloud");
  EXPECT_EQ(method_name(Method::MultiQC), "MultiQC");
  EXPECT_EQ(method_name(Method::Naive), "Naive");
}

TEST(MakePartitioner, QumcNeedsEstimates) {
  EXPECT_THROW((void)make_partitioner(Method::QuMC, 4.0, std::nullopt),
               std::invalid_argument);
  CrosstalkModel est;
  EXPECT_NO_THROW((void)make_partitioner(Method::QuMC, 4.0, est));
}

class RunParallelMethodTest : public ::testing::TestWithParam<Method> {};

TEST_P(RunParallelMethodTest, ThreeBenchmarksOnToronto) {
  const Device d = make_toronto27();
  ParallelOptions opts = fast_options(GetParam());
  if (GetParam() == Method::QuMC || GetParam() == Method::CNA) {
    CrosstalkModel est;
    for (const auto& [e1, e2, g] : d.crosstalk_ground_truth().pairs()) {
      est.add_pair(e1, e2, g);  // perfectly-informed estimates
    }
    opts.srb_estimates = est;
  }
  const BatchReport report = run_parallel(d, three_benchmarks(), opts);
  ASSERT_EQ(report.programs.size(), 3u);

  // Disjoint partitions of the right sizes, results in input order.
  std::set<int> used;
  EXPECT_EQ(report.programs[0].partition.size(), 4u);  // adder
  EXPECT_EQ(report.programs[1].partition.size(), 3u);  // fredkin
  EXPECT_EQ(report.programs[2].partition.size(), 5u);  // alu
  for (const ProgramReport& pr : report.programs) {
    for (int q : pr.partition) EXPECT_TRUE(used.insert(q).second);
    EXPECT_GT(pr.efs, 0.0);
    EXPECT_GT(pr.pst_value, 0.05);
    EXPECT_LT(pr.jsd_value, 0.95);
    EXPECT_EQ(pr.counts.total(), 256);
  }
  EXPECT_NEAR(report.throughput, 12.0 / 27.0, 1e-9);
  EXPECT_GT(report.runtime_reduction, 1.5);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, RunParallelMethodTest,
    ::testing::Values(Method::QuCP, Method::QuMC, Method::CNA,
                      Method::QuCloud, Method::MultiQC, Method::Naive),
    [](const auto& info) {
      return std::string(method_name(info.param));
    });

TEST(RunParallel, SingleProgram) {
  const Device d = make_toronto27();
  const BatchReport report = run_parallel(
      d, {get_benchmark("bell").circuit}, fast_options(Method::QuCP));
  ASSERT_EQ(report.programs.size(), 1u);
  EXPECT_NEAR(report.throughput, 4.0 / 27.0, 1e-9);
}

TEST(RunParallel, QumcWithoutEstimatesThrows) {
  const Device d = make_toronto27();
  EXPECT_THROW(
      (void)run_parallel(d, three_benchmarks(), fast_options(Method::QuMC)),
      std::invalid_argument);
}

TEST(RunParallel, OverfullBatchThrows) {
  const Device d = make_line_device(6);
  std::vector<Circuit> programs(3, get_benchmark("adder").circuit);
  EXPECT_THROW((void)run_parallel(d, programs, fast_options(Method::QuCP)),
               std::runtime_error);
  EXPECT_THROW((void)run_parallel(d, {}, fast_options(Method::QuCP)),
               std::invalid_argument);
}

TEST(RunParallel, DeterministicForFixedSeed) {
  const Device d = make_toronto27();
  const auto opts = fast_options(Method::QuCP);
  const BatchReport a = run_parallel(d, three_benchmarks(), opts);
  const BatchReport b = run_parallel(d, three_benchmarks(), opts);
  for (std::size_t i = 0; i < a.programs.size(); ++i) {
    EXPECT_EQ(a.programs[i].partition, b.programs[i].partition);
    EXPECT_DOUBLE_EQ(a.programs[i].pst_value, b.programs[i].pst_value);
    EXPECT_EQ(a.programs[i].counts.data(), b.programs[i].counts.data());
  }
}

TEST(RunParallel, NoiselessExecIsPerfect) {
  const Device d = make_toronto27();
  ParallelOptions opts = fast_options(Method::QuCP);
  opts.exec.gate_noise = false;
  opts.exec.readout_noise = false;
  opts.exec.idle_noise = false;
  opts.exec.crosstalk_noise = false;
  const BatchReport report = run_parallel(d, three_benchmarks(), opts);
  for (const ProgramReport& pr : report.programs) {
    EXPECT_NEAR(pr.jsd_value, 0.0, 1e-6);
    EXPECT_NEAR(pr.pst_value, 1.0, 1e-6);  // all three are deterministic
  }
}

TEST(RunParallel, SoloBeatsCrowdedFidelity) {
  // Running a benchmark alone should be at least as good as running it
  // beside copies of a CX-heavy neighbor.
  const Device d = make_toronto27();
  const Circuit target = get_benchmark("4mod").circuit;
  const BatchReport solo =
      run_parallel(d, {target}, fast_options(Method::QuCP));
  std::vector<Circuit> crowd{target};
  for (int i = 0; i < 2; ++i) crowd.push_back(get_benchmark("alu").circuit);
  const BatchReport crowded = run_parallel(d, crowd, fast_options(Method::QuCP));
  EXPECT_GE(solo.programs[0].pst_value,
            crowded.programs[0].pst_value - 0.02);
}

TEST(RunParallel, QucpNotWorseThanNaive) {
  const Device d = make_toronto27();
  const auto programs = three_benchmarks();
  const BatchReport qucp =
      run_parallel(d, programs, fast_options(Method::QuCP));
  const BatchReport naive =
      run_parallel(d, programs, fast_options(Method::Naive));
  double qucp_avg = 0.0;
  double naive_avg = 0.0;
  for (std::size_t i = 0; i < programs.size(); ++i) {
    qucp_avg += qucp.programs[i].pst_value;
    naive_avg += naive.programs[i].pst_value;
  }
  EXPECT_GE(qucp_avg, naive_avg - 0.05);
}

}  // namespace
}  // namespace qucp
