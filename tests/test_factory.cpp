#include "zne/factory.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace qucp {
namespace {

TEST(Polyfit, ExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{3, 5, 7, 9};  // y = 1 + 2x
  const auto c = polyfit(xs, ys, 1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_NEAR(c[0], 1.0, 1e-9);
  EXPECT_NEAR(c[1], 2.0, 1e-9);
}

TEST(Polyfit, ExactQuadratic) {
  const std::vector<double> xs{0, 1, 2, 3};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.0 - x + 0.5 * x * x);
  const auto c = polyfit(xs, ys, 2);
  EXPECT_NEAR(c[0], 2.0, 1e-9);
  EXPECT_NEAR(c[1], -1.0, 1e-9);
  EXPECT_NEAR(c[2], 0.5, 1e-9);
}

TEST(Polyfit, LeastSquaresAveragesNoise) {
  const std::vector<double> xs{1, 2, 3, 4, 5, 6};
  const std::vector<double> ys{2.1, 1.9, 2.05, 1.95, 2.02, 1.98};
  const auto c = polyfit(xs, ys, 0);
  EXPECT_NEAR(c[0], 2.0, 0.05);
}

TEST(Polyfit, Validation) {
  const std::vector<double> xs{1, 2};
  const std::vector<double> ys{1, 2};
  EXPECT_THROW((void)polyfit(xs, ys, 2), std::invalid_argument);
  EXPECT_THROW((void)polyfit(xs, ys, -1), std::invalid_argument);
  const std::vector<double> y1{1};
  EXPECT_THROW((void)polyfit(xs, y1, 1), std::invalid_argument);
}

TEST(LinearFactoryTest, ExtrapolatesLineToZero) {
  const LinearFactory f;
  const std::vector<double> scales{1.0, 1.5, 2.0, 2.5};
  std::vector<double> values;
  for (double s : scales) values.push_back(0.9 - 0.2 * s);  // ideal 0.9
  EXPECT_NEAR(f.extrapolate(scales, values), 0.9, 1e-9);
  EXPECT_EQ(f.name(), "Linear");
}

TEST(PolyFactoryTest, CapturesCurvature) {
  const PolyFactory f(2);
  const std::vector<double> scales{1.0, 1.5, 2.0, 2.5};
  std::vector<double> values;
  for (double s : scales) values.push_back(1.0 - 0.1 * s - 0.05 * s * s);
  EXPECT_NEAR(f.extrapolate(scales, values), 1.0, 1e-9);
  EXPECT_EQ(f.name(), "Poly2");
  EXPECT_THROW(PolyFactory(0), std::invalid_argument);
}

TEST(RichardsonFactoryTest, InterpolatesExactly) {
  const RichardsonFactory f;
  // Any polynomial of degree n-1 through n points extrapolates exactly.
  const std::vector<double> scales{1.0, 1.5, 2.0};
  std::vector<double> values;
  for (double s : scales) values.push_back(0.8 - 0.3 * s + 0.02 * s * s);
  EXPECT_NEAR(f.extrapolate(scales, values), 0.8, 1e-9);
}

TEST(RichardsonFactoryTest, Validation) {
  const RichardsonFactory f;
  const std::vector<double> one{1.0};
  const std::vector<double> v1{0.5};
  EXPECT_THROW((void)f.extrapolate(one, v1), std::invalid_argument);
  const std::vector<double> dup{1.0, 1.0};
  const std::vector<double> v2{0.5, 0.6};
  EXPECT_THROW((void)f.extrapolate(dup, v2), std::invalid_argument);
}

TEST(Factories, ExponentialDecaySignal) {
  // Expectation decaying as E(s) = E0 * exp(-0.3 s): none of the factories
  // is exact, but all must beat the unmitigated scale-1 value.
  const double e0 = 1.0;
  const std::vector<double> scales{1.0, 1.5, 2.0, 2.5};
  std::vector<double> values;
  for (double s : scales) values.push_back(e0 * std::exp(-0.3 * s));
  const double unmitigated_err = std::abs(values[0] - e0);

  const LinearFactory lin;
  const PolyFactory poly(2);
  const RichardsonFactory rich;
  for (const ExtrapolationFactory* f :
       std::initializer_list<const ExtrapolationFactory*>{&lin, &poly,
                                                          &rich}) {
    const double err = std::abs(f->extrapolate(scales, values) - e0);
    EXPECT_LT(err, unmitigated_err) << f->name();
  }
}

}  // namespace
}  // namespace qucp
