// Randomized property tests: invariants that must hold for *any* circuit,
// checked over seeded random instances.
//  - transpilation preserves semantics (ideal output distribution)
//  - the peephole optimizer preserves the unitary
//  - statevector and density-matrix simulators agree on pure evolution
//  - QASM serialization round-trips
//  - folding preserves semantics at random scales
//  - executor distributions are valid probability distributions

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "circuit/optimize.hpp"
#include "circuit/qasm.hpp"
#include "common/rng.hpp"
#include "fleetsim/simulator.hpp"
#include "mapping/transpiler.hpp"
#include "partition/candidates.hpp"
#include "service/service.hpp"
#include "sim/density.hpp"
#include "sim/executor.hpp"
#include "sim/statevector.hpp"
#include "zne/folding.hpp"

namespace qucp {
namespace {

/// Random circuit over n qubits with `gates` ops from a mixed gate set.
Circuit random_circuit(int n, int gates, Rng& rng, bool measured) {
  Circuit c(n, n, "fuzz");
  for (int i = 0; i < gates; ++i) {
    switch (rng.index(8)) {
      case 0: c.h(static_cast<int>(rng.index(n))); break;
      case 1: c.t(static_cast<int>(rng.index(n))); break;
      case 2: c.x(static_cast<int>(rng.index(n))); break;
      case 3: c.s(static_cast<int>(rng.index(n))); break;
      case 4: c.ry(rng.uniform(-3.1, 3.1), static_cast<int>(rng.index(n)));
        break;
      case 5: c.rz(rng.uniform(-3.1, 3.1), static_cast<int>(rng.index(n)));
        break;
      default: {
        if (n < 2) {
          c.h(0);
          break;
        }
        const int a = static_cast<int>(rng.index(n));
        int b = static_cast<int>(rng.index(n - 1));
        if (b >= a) ++b;
        if (rng.bernoulli(0.8)) {
          c.cx(a, b);
        } else {
          c.cz(a, b);
        }
        break;
      }
    }
  }
  if (measured) c.measure_all();
  return c;
}

void expect_same_distribution(const Distribution& a, const Distribution& b,
                              double tol = 1e-9) {
  for (const auto& [outcome, p] : a.probs()) {
    EXPECT_NEAR(b.prob(outcome), p, tol) << "outcome " << outcome;
  }
  for (const auto& [outcome, p] : b.probs()) {
    EXPECT_NEAR(a.prob(outcome), p, tol) << "outcome " << outcome;
  }
}

class FuzzSeeds : public ::testing::TestWithParam<int> {};

TEST_P(FuzzSeeds, OptimizerPreservesUnitary) {
  Rng rng(1000 + GetParam());
  const Circuit c = random_circuit(3, 30, rng, false);
  const Circuit opt = optimize(c);
  EXPECT_TRUE(opt.to_unitary().approx_equal(c.to_unitary(), 1e-9));
}

TEST_P(FuzzSeeds, StatevectorAndDensityAgree) {
  Rng rng(2000 + GetParam());
  const Circuit c = random_circuit(4, 25, rng, false);
  Statevector sv(4);
  sv.apply_circuit(c);
  DensityMatrix dm(4);
  for (const Gate& g : c.ops()) {
    if (g.kind == GateKind::Barrier) continue;
    dm.apply_unitary(gate_matrix(g), g.qubits);
  }
  const auto sp = sv.probabilities();
  const auto dp = dm.probabilities();
  for (std::size_t i = 0; i < sp.size(); ++i) {
    EXPECT_NEAR(sp[i], dp[i], 1e-10) << i;
  }
}

TEST_P(FuzzSeeds, QasmRoundTrip) {
  Rng rng(3000 + GetParam());
  const Circuit c = random_circuit(4, 20, rng, true);
  const Circuit back = parse_qasm(to_qasm(c), "fuzz");
  expect_same_distribution(ideal_distribution(c), ideal_distribution(back));
}

TEST_P(FuzzSeeds, TranspilationPreservesSemantics) {
  Rng rng(4000 + GetParam());
  const Circuit c = random_circuit(4, 18, rng, true);
  const Device d = make_toronto27(17 + GetParam());
  const auto cands = partition_candidates(d, 4, {});
  ASSERT_FALSE(cands.empty());
  const auto& partition = cands[rng.index(cands.size())];
  const TranspiledProgram tp = transpile_to_partition(c, d, partition);
  expect_same_distribution(ideal_distribution(c),
                           ideal_distribution(tp.physical.compacted()));
}

TEST_P(FuzzSeeds, FoldingPreservesSemantics) {
  Rng rng(5000 + GetParam());
  const Circuit c = random_circuit(3, 15, rng, true);
  const double scale = rng.uniform(1.0, 3.5);
  const Circuit folded = fold_gates_at_random(c, scale, rng.derive("fold"));
  expect_same_distribution(ideal_distribution(c),
                           ideal_distribution(folded), 1e-8);
}

TEST_P(FuzzSeeds, ExecutorDistributionIsNormalized) {
  Rng rng(6000 + GetParam());
  Circuit c = random_circuit(3, 20, rng, true);
  // Route onto the first three qubits of a line device.
  const Device d = make_line_device(6, 23 + GetParam());
  const TranspiledProgram tp =
      transpile_to_partition(c, d, std::vector<int>{0, 1, 2});
  ExecOptions opts;
  opts.shots = 64;
  const ProgramOutcome out = execute_single(d, tp.physical, opts);
  double total = 0.0;
  for (const auto& [outcome, p] : out.distribution.probs()) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(out.counts.total(), 64);
}

TEST_P(FuzzSeeds, FleetSchedulerDeterministicUnderSubmissionInterleaving) {
  // Randomized fleet-scheduler property (the fleet extension of the
  // service determinism contract): a random job set submitted to a
  // heterogeneous 2-backend fleet in a random permutation must produce
  // identical per-job results and identical per-backend batch assignments
  // as the in-order submission — routing, packing and seeds all derive
  // from the canonical order, never from arrival order.
  Rng rng(9000 + GetParam());
  std::vector<Circuit> jobs;
  const int n = 4 + static_cast<int>(rng.index(5));  // 4..8 jobs
  for (int i = 0; i < n; ++i) {
    const int width = 2 + static_cast<int>(rng.index(3));  // 2..4 qubits
    jobs.push_back(random_circuit(width, 12, rng, true));
  }
  auto run = [&](const std::vector<std::size_t>& order) {
    ServiceOptions opts;
    opts.exec.shots = 64;
    opts.num_workers = 2;
    opts.max_batch_size = 3;
    opts.route_policy = RoutePolicy::LeastLoaded;
    BackendRegistry fleet(std::vector<Device>{
        make_line_device(8, 21), make_grid_device(3, 3, 22)});
    ExecutionService service(std::move(fleet), opts);
    std::vector<JobHandle> handles(jobs.size());
    for (std::size_t pos : order) {
      JobOptions jopts;
      jopts.name = "fuzz" + std::to_string(pos);
      handles[pos] = service.submit(jobs[pos], jopts);
    }
    service.flush();
    // (backend, batch, counts) digest per job, in job-id order.
    std::vector<std::tuple<int, std::uint64_t, std::vector<Counts::Entry>>>
        digest;
    for (const JobHandle& h : handles) {
      const JobResult& r = h.result();
      digest.emplace_back(r.batch.backend_id, r.batch.batch_index,
                          r.report.counts.data());
    }
    return digest;
  };

  std::vector<std::size_t> in_order(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) in_order[i] = i;
  std::vector<std::size_t> shuffled = in_order;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.index(i)]);
  }
  EXPECT_EQ(run(in_order), run(shuffled));
}

TEST_P(FuzzSeeds, FleetSimulatorInvariantsUnderRandomTraffic) {
  // Randomized interleaving fuzz over the discrete-event simulator: a
  // random fleet (random class tables, some classes unfit on some
  // devices), a random arrival process and a random policy must always
  // yield a physical trace — every arrival served on a device it fits,
  // batches within the cap, FIFO starts per lane, busy time bounded by
  // the horizon — and rerunning the simulation must be bit-identical.
  Rng rng(11000 + GetParam());
  const std::size_t num_devices = 2 + rng.index(3);  // 2..4
  const std::size_t num_classes = 1 + rng.index(4);  // 1..4
  std::vector<fleetsim::SimJobClass> classes;
  for (std::size_t c = 0; c < num_classes; ++c) {
    fleetsim::SimJobClass cls;
    cls.name = "c" + std::to_string(c);
    cls.qubits = 2 + static_cast<int>(rng.index(6));
    for (std::size_t d = 0; d < num_devices; ++d) {
      // ~1 in 5 (device, class) pairs are unfit; retried below if a class
      // ends up fitting nowhere.
      const bool unfit = rng.bernoulli(0.2) && d + 1 < num_devices;
      cls.makespan_ns.push_back(unfit ? -1.0 : rng.uniform(500.0, 8000.0));
      cls.efs.push_back(rng.uniform(0.01, 0.5));
    }
    if (std::all_of(cls.makespan_ns.begin(), cls.makespan_ns.end(),
                    [](double m) { return m < 0.0; })) {
      cls.makespan_ns.back() = rng.uniform(500.0, 8000.0);
    }
    classes.push_back(std::move(cls));
  }

  fleetsim::ArrivalConfig config;
  config.kind = static_cast<fleetsim::ArrivalKind>(rng.index(3));
  config.rate_per_s = rng.uniform(0.05, 2.0);
  config.diurnal_period_s = rng.uniform(60.0, 600.0);
  config.class_weights.assign(num_classes, 0.0);
  for (double& w : config.class_weights) w = rng.uniform(0.1, 3.0);

  fleetsim::SimOptions options;
  options.policy = static_cast<fleetsim::SimPolicy>(rng.index(4));
  options.max_batch_size = static_cast<int>(rng.index(5));  // 0 = unbounded
  const int cap = options.max_batch_size <= 0
                      ? std::numeric_limits<int>::max()
                      : options.max_batch_size;

  const fleetsim::FleetSimulator sim(classes, num_devices, options);
  const auto arrivals =
      fleetsim::generate_arrivals(config, 400, 500 + GetParam());
  const fleetsim::SimTrace trace = sim.run(arrivals);

  ASSERT_EQ(trace.jobs.size(), arrivals.size());
  std::vector<double> last_start(num_devices, 0.0);
  std::map<std::tuple<int, double, double>, int> batch_sizes;
  for (std::size_t i = 0; i < trace.jobs.size(); ++i) {
    const fleetsim::JobRecord& r = trace.jobs[i];
    EXPECT_EQ(r.job_class, arrivals[i].job_class);
    EXPECT_DOUBLE_EQ(r.arrival_s, arrivals[i].time_s);
    ASSERT_GE(r.device, 0);
    ASSERT_LT(static_cast<std::size_t>(r.device), num_devices);
    // Routed somewhere the class actually fits.
    EXPECT_GE(classes[static_cast<std::size_t>(r.job_class)]
                  .makespan_ns[static_cast<std::size_t>(r.device)],
              0.0);
    EXPECT_GE(r.start_s, r.arrival_s);
    EXPECT_GT(r.end_s, r.start_s);
    EXPECT_LE(r.end_s, trace.horizon_s);
    // FIFO lanes: start times never regress in arrival order per device.
    EXPECT_GE(r.start_s, last_start[static_cast<std::size_t>(r.device)]);
    last_start[static_cast<std::size_t>(r.device)] = r.start_s;
    batch_sizes[{r.device, r.start_s, r.end_s}] += 1;
  }
  std::vector<std::uint64_t> batches_per_device(num_devices, 0);
  for (const auto& [key, size] : batch_sizes) {
    EXPECT_LE(size, cap);
    batches_per_device[static_cast<std::size_t>(std::get<0>(key))] += 1;
  }
  double busy_sum = 0.0;
  for (std::size_t d = 0; d < num_devices; ++d) {
    EXPECT_LE(trace.busy_s[d], trace.horizon_s + 1e-9);
    // Distinct (start, end) pairs undercount only if two batches on one
    // device share both endpoints, which disjoint busy intervals forbid.
    EXPECT_EQ(trace.batches[d], batches_per_device[d]);
    busy_sum += trace.busy_s[d];
  }
  EXPECT_GT(busy_sum, 0.0);

  // Bit-identical on rerun: the simulator holds no hidden state.
  EXPECT_EQ(trace.hash(), sim.run(arrivals).hash());
}

TEST_P(FuzzSeeds, InverseCircuitComposesToIdentity) {
  Rng rng(7000 + GetParam());
  const Circuit c = random_circuit(3, 20, rng, false);
  Circuit full = c;
  full.compose(c.inverse());
  Statevector sv(3);
  sv.apply_circuit(full);
  EXPECT_NEAR(sv.probabilities()[0], 1.0, 1e-9);
}

TEST_P(FuzzSeeds, NoiseOnlyReducesPeakProbability) {
  // Depolarizing + readout noise can never make the modal outcome more
  // likely than ideal for a deterministic-output circuit built from
  // classical gates.
  Rng rng(8000 + GetParam());
  Circuit c(3, 3);
  // Random classical reversible circuit: X and CX only.
  for (int i = 0; i < 15; ++i) {
    if (rng.bernoulli(0.4)) {
      c.x(static_cast<int>(rng.index(3)));
    } else {
      const int a = static_cast<int>(rng.index(3));
      int b = static_cast<int>(rng.index(2));
      if (b >= a) ++b;
      c.cx(a, b);
    }
  }
  c.measure_all();
  const Device d = make_line_device(5, 31 + GetParam());
  const TranspiledProgram tp =
      transpile_to_partition(c, d, std::vector<int>{0, 1, 2});
  const ProgramOutcome out = execute_single(d, tp.physical, {});
  const Distribution ideal = ideal_distribution(c);
  EXPECT_LT(out.distribution.prob(ideal.most_likely()), 1.0);
  EXPECT_GT(out.distribution.prob(ideal.most_likely()), 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range(0, 10));

}  // namespace
}  // namespace qucp
