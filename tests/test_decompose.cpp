#include "circuit/decompose.hpp"

#include <gtest/gtest.h>

namespace qucp {
namespace {

TEST(Decompose, SwapBecomesThreeCx) {
  Circuit c(2);
  c.swap(0, 1);
  const Circuit out = decompose_swaps(c);
  EXPECT_EQ(out.size(), 3u);
  for (const Gate& g : out.ops()) EXPECT_EQ(g.kind, GateKind::CX);
  EXPECT_TRUE(out.to_unitary().approx_equal(c.to_unitary(), 1e-12));
}

TEST(Decompose, SwapOrientationAlternates) {
  Circuit c(2);
  c.swap(0, 1);
  const Circuit out = decompose_swaps(c);
  EXPECT_EQ(out.ops()[0].qubits, (std::vector<int>{0, 1}));
  EXPECT_EQ(out.ops()[1].qubits, (std::vector<int>{1, 0}));
  EXPECT_EQ(out.ops()[2].qubits, (std::vector<int>{0, 1}));
}

TEST(Decompose, CzBecomesHCxH) {
  Circuit c(2);
  c.cz(0, 1);
  const Circuit out = decompose_cz(c);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.to_unitary().approx_equal(c.to_unitary(), 1e-12));
}

TEST(Decompose, LowerToCxBasisHandlesBoth) {
  Circuit c(3);
  c.h(0);
  c.swap(0, 1);
  c.cz(1, 2);
  c.measure_all();
  const Circuit out = lower_to_cx_basis(c);
  for (const Gate& g : out.ops()) {
    EXPECT_NE(g.kind, GateKind::SWAP);
    EXPECT_NE(g.kind, GateKind::CZ);
  }
  EXPECT_EQ(out.two_qubit_count(), 4);  // 3 from swap + 1 from cz
  EXPECT_EQ(out.count_ops().at("measure"), 3);
}

TEST(Decompose, PreservesSemanticsOnMixedCircuit) {
  Circuit c(3);
  c.h(0);
  c.t(1);
  c.swap(1, 2);
  c.cz(0, 2);
  c.rz(0.3, 1);
  const Matrix before = c.to_unitary();
  EXPECT_TRUE(lower_to_cx_basis(c).to_unitary().approx_equal(before, 1e-10));
}

TEST(Decompose, NoOpOnPlainCircuit) {
  Circuit c(2);
  c.h(0);
  c.cx(0, 1);
  const Circuit out = lower_to_cx_basis(c);
  EXPECT_EQ(out.size(), c.size());
}

}  // namespace
}  // namespace qucp
