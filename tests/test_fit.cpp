#include "srb/fit.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace qucp {
namespace {

std::pair<std::vector<double>, std::vector<double>> synth(double A,
                                                          double alpha,
                                                          double B,
                                                          double noise_sd,
                                                          Rng* rng) {
  std::vector<double> xs{1, 2, 4, 8, 12, 20, 30};
  std::vector<double> ys;
  for (double x : xs) {
    double y = A * std::pow(alpha, x) + B;
    if (rng != nullptr) y += rng->normal(0.0, noise_sd);
    ys.push_back(y);
  }
  return {xs, ys};
}

TEST(Fit, ExactRecoveryNoiseless) {
  const auto [xs, ys] = synth(0.75, 0.93, 0.25, 0.0, nullptr);
  const DecayFit fit = fit_exponential_decay(xs, ys, 0.25);
  EXPECT_NEAR(fit.alpha, 0.93, 1e-6);
  EXPECT_NEAR(fit.amplitude, 0.75, 1e-5);
  EXPECT_NEAR(fit.offset, 0.25, 1e-5);
  EXPECT_LT(fit.rmse, 1e-8);
}

TEST(Fit, RecoveryWithWrongAsymptoteGuess) {
  const auto [xs, ys] = synth(0.7, 0.9, 0.3, 0.0, nullptr);
  const DecayFit fit = fit_exponential_decay(xs, ys, 0.1);
  EXPECT_NEAR(fit.alpha, 0.9, 1e-4);
  EXPECT_NEAR(fit.offset, 0.3, 1e-3);
}

TEST(Fit, ToleratesMildNoise) {
  Rng rng(5);
  const auto [xs, ys] = synth(0.75, 0.95, 0.25, 0.005, &rng);
  const DecayFit fit = fit_exponential_decay(xs, ys, 0.25);
  EXPECT_NEAR(fit.alpha, 0.95, 0.02);
}

class FitSweep : public ::testing::TestWithParam<double> {};

TEST_P(FitSweep, RecoversAlphaAcrossRange) {
  const double alpha = GetParam();
  const auto [xs, ys] = synth(0.7, alpha, 0.25, 0.0, nullptr);
  const DecayFit fit = fit_exponential_decay(xs, ys, 0.25);
  EXPECT_NEAR(fit.alpha, alpha, 1e-4) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(AlphaRange, FitSweep,
                         ::testing::Values(0.5, 0.7, 0.85, 0.95, 0.99));

TEST(Fit, FlatDataStillFitsWell) {
  // Nearly flat at the asymptote: the (A, alpha) pair is weakly
  // identified, but the fitted curve itself must match the data.
  std::vector<double> xs{1, 2, 4, 8, 16};
  std::vector<double> ys{0.26, 0.252, 0.25, 0.25, 0.25};
  const DecayFit fit = fit_exponential_decay(xs, ys, 0.25);
  EXPECT_LT(fit.rmse, 0.01);
  EXPECT_NEAR(fit.offset, 0.25, 0.05);
}

TEST(Fit, Validation) {
  const std::vector<double> two_x{1, 2};
  const std::vector<double> two_y{0.9, 0.8};
  EXPECT_THROW((void)fit_exponential_decay(two_x, two_y), std::invalid_argument);
  const std::vector<double> bad_x{1, 3, 2};
  const std::vector<double> y3{0.9, 0.8, 0.7};
  EXPECT_THROW((void)fit_exponential_decay(bad_x, y3), std::invalid_argument);
  const std::vector<double> x3{1, 2, 3};
  const std::vector<double> y2{0.9, 0.8};
  EXPECT_THROW((void)fit_exponential_decay(x3, y2), std::invalid_argument);
}

TEST(Fit, AlphaStaysInUnitInterval) {
  // Increasing data would want alpha > 1; the fit clamps.
  const std::vector<double> xs{1, 2, 3, 4};
  const std::vector<double> ys{0.3, 0.5, 0.7, 0.9};
  const DecayFit fit = fit_exponential_decay(xs, ys, 0.25);
  EXPECT_LE(fit.alpha, 1.0);
  EXPECT_GE(fit.alpha, 0.0);
}

}  // namespace
}  // namespace qucp
