#include "mapping/initial.hpp"

#include <gtest/gtest.h>

#include <set>

#include "benchmarks/suite.hpp"
#include "common/rng.hpp"

namespace qucp {
namespace {

TEST(InteractionWeights, CountsTwoQubitGates) {
  Circuit c(3);
  c.cx(0, 1);
  c.cx(0, 1);
  c.cx(1, 2);
  c.h(0);
  const auto w = interaction_weights(c);
  EXPECT_EQ(w[0][1], 2);
  EXPECT_EQ(w[1][0], 2);
  EXPECT_EQ(w[1][2], 1);
  EXPECT_EQ(w[0][2], 0);
}

class LayoutStyleTest : public ::testing::TestWithParam<PlacementStyle> {};

TEST_P(LayoutStyleTest, LayoutIsInjectiveIntoPartition) {
  const Device d = make_toronto27();
  const BenchmarkSpec& spec = get_benchmark("adder");
  const std::vector<int> partition{1, 2, 3, 4, 5};
  const auto layout =
      initial_layout(spec.circuit, d, partition, GetParam());
  ASSERT_EQ(layout.size(), 4u);
  std::set<int> seen;
  const std::set<int> part_set(partition.begin(), partition.end());
  for (int phys : layout) {
    EXPECT_TRUE(part_set.count(phys));
    EXPECT_TRUE(seen.insert(phys).second);
  }
}

TEST_P(LayoutStyleTest, InteractingPairsPlacedClose) {
  const Device d = make_line_device(8);
  Circuit c(2);
  for (int i = 0; i < 6; ++i) c.cx(0, 1);
  const std::vector<int> partition{2, 3, 4, 5};
  const auto layout = initial_layout(c, d, partition, GetParam());
  EXPECT_EQ(d.topology().distance(layout[0], layout[1]), 1);
}

INSTANTIATE_TEST_SUITE_P(BothStyles, LayoutStyleTest,
                         ::testing::Values(PlacementStyle::HardwareAware,
                                           PlacementStyle::NoiseAdaptive),
                         [](const auto& info) {
                           return info.param == PlacementStyle::HardwareAware
                                      ? "HardwareAware"
                                      : "NoiseAdaptive";
                         });

TEST(InitialLayout, HeavyPairOnBestEdge) {
  // Two logical pairs: (0,1) heavily interacting, (2,3) lightly. The
  // heavy pair should sit on the lower-error edge.
  Topology topo(4, {{0, 1}, {1, 2}, {2, 3}});
  Rng rng(8);
  CalibrationProfile profile;
  profile.bad_edge_fraction = 0.0;
  profile.bad_readout_fraction = 0.0;
  Calibration cal = synthesize_calibration(topo, profile, rng);
  cal.cx_error[0] = 0.005;  // (0,1) good
  cal.cx_error[1] = 0.02;
  cal.cx_error[2] = 0.05;   // (2,3) bad
  for (auto& r : cal.readout_error) r = 0.02;
  Device d("bias4", std::move(topo), std::move(cal), CrosstalkModel{});

  Circuit c(4);
  for (int i = 0; i < 10; ++i) c.cx(0, 1);
  c.cx(2, 3);
  const std::vector<int> partition{0, 1, 2, 3};
  const auto layout =
      initial_layout(c, d, partition, PlacementStyle::HardwareAware);
  const std::set<int> heavy{layout[0], layout[1]};
  EXPECT_EQ(heavy, (std::set<int>{0, 1}));
}

TEST(InitialLayout, Validation) {
  const Device d = make_line_device(6);
  const Circuit c(4);
  EXPECT_THROW((void)initial_layout(c, d, std::vector<int>{0, 1, 2},
                                    PlacementStyle::HardwareAware),
               std::invalid_argument);
  EXPECT_THROW((void)initial_layout(c, d, std::vector<int>{0, 1, 3, 4},
                                    PlacementStyle::HardwareAware),
               std::invalid_argument);
}

TEST(InitialLayout, IsolatedQubitsStillPlaced) {
  const Device d = make_line_device(6);
  Circuit c(3);
  c.h(0);
  c.h(1);
  c.h(2);  // no interactions at all
  const std::vector<int> partition{1, 2, 3};
  const auto layout =
      initial_layout(c, d, partition, PlacementStyle::HardwareAware);
  std::set<int> seen(layout.begin(), layout.end());
  EXPECT_EQ(seen.size(), 3u);
}

TEST(InitialLayout, DeterministicForFixedInputs) {
  const Device d = make_toronto27();
  const BenchmarkSpec& spec = get_benchmark("alu-v0_27");
  const std::vector<int> partition{12, 13, 14, 15, 16};
  const auto a =
      initial_layout(spec.circuit, d, partition, PlacementStyle::HardwareAware);
  const auto b =
      initial_layout(spec.circuit, d, partition, PlacementStyle::HardwareAware);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace qucp
