// Golden-value equivalence suite for the superket kernel layer.
//
// The reference implementations below are verbatim ports of the seed
// (pre-kernel-rewrite) DensityMatrix and Statevector update loops:
// skip-scan base enumeration, per-call scratch, four-Kraus relaxation,
// copy-based depolarizing. Every channel of the new kernel layer is pinned
// against them elementwise to 1e-10 over random circuits on 1-8 qubits,
// plus trace/purity/hermiticity invariants.

#include "sim/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <thread>
#include <utility>
#include <vector>

#include "circuit/circuit.hpp"
#include "common/rng.hpp"
#include "sim/density.hpp"
#include "sim/statevector.hpp"

namespace qucp {
namespace {

constexpr double kTol = 1e-10;

std::size_t with_local(std::size_t base, std::size_t local,
                       std::span<const int> qubits) {
  const int k = static_cast<int>(qubits.size());
  for (int j = 0; j < k; ++j) {
    if ((local >> (k - 1 - j)) & 1U) base |= std::size_t{1} << qubits[j];
  }
  return base;
}

/// Seed implementation of the density-matrix channels (skip-scan loops).
struct RefDensity {
  int n;
  std::size_t dim;
  std::vector<cx> rho;

  explicit RefDensity(int num_qubits)
      : n(num_qubits), dim(std::size_t{1} << num_qubits) {
    rho.assign(dim * dim, cx{0.0, 0.0});
    rho[0] = 1.0;
  }

  void apply_unitary(const Matrix& u, std::span<const int> qubits) {
    const int k = static_cast<int>(qubits.size());
    const std::size_t ldim = std::size_t{1} << k;
    std::size_t submask = 0;
    for (int q : qubits) submask |= std::size_t{1} << q;
    std::vector<cx> local(ldim);
    for (std::size_t c = 0; c < dim; ++c) {
      for (std::size_t base = 0; base < dim; ++base) {
        if (base & submask) continue;
        for (std::size_t li = 0; li < ldim; ++li) {
          local[li] = rho[with_local(base, li, qubits) * dim + c];
        }
        for (std::size_t lr = 0; lr < ldim; ++lr) {
          cx acc{0.0, 0.0};
          for (std::size_t lc = 0; lc < ldim; ++lc) {
            acc += u(lr, lc) * local[lc];
          }
          rho[with_local(base, lr, qubits) * dim + c] = acc;
        }
      }
    }
    for (std::size_t r = 0; r < dim; ++r) {
      cx* row = &rho[r * dim];
      for (std::size_t base = 0; base < dim; ++base) {
        if (base & submask) continue;
        for (std::size_t li = 0; li < ldim; ++li) {
          local[li] = row[with_local(base, li, qubits)];
        }
        for (std::size_t lc = 0; lc < ldim; ++lc) {
          cx acc{0.0, 0.0};
          for (std::size_t lk = 0; lk < ldim; ++lk) {
            acc += std::conj(u(lc, lk)) * local[lk];
          }
          row[with_local(base, lc, qubits)] = acc;
        }
      }
    }
  }

  void apply_depolarizing(double p, std::span<const int> qubits) {
    if (p == 0.0) return;
    const int k = static_cast<int>(qubits.size());
    const std::size_t ldim = std::size_t{1} << k;
    const double pauli_dim = std::pow(4.0, k);
    const double c2 = p * pauli_dim / (pauli_dim - 1.0);
    const double c1 = 1.0 - c2;
    std::size_t submask = 0;
    for (int q : qubits) submask |= std::size_t{1} << q;
    std::vector<cx> out(dim * dim, cx{0.0, 0.0});
    for (std::size_t i = 0; i < rho.size(); ++i) out[i] = c1 * rho[i];
    const double inv_ldim = 1.0 / static_cast<double>(ldim);
    for (std::size_t rb = 0; rb < dim; ++rb) {
      if (rb & submask) continue;
      for (std::size_t cb = 0; cb < dim; ++cb) {
        if (cb & submask) continue;
        cx traced{0.0, 0.0};
        for (std::size_t s = 0; s < ldim; ++s) {
          traced += rho[with_local(rb, s, qubits) * dim +
                        with_local(cb, s, qubits)];
        }
        const cx fill = c2 * traced * inv_ldim;
        for (std::size_t s = 0; s < ldim; ++s) {
          out[with_local(rb, s, qubits) * dim + with_local(cb, s, qubits)] +=
              fill;
        }
      }
    }
    rho = std::move(out);
  }

  void apply_kraus(std::span<const Matrix> kraus,
                   std::span<const int> qubits) {
    const std::vector<cx> original = rho;
    std::vector<cx> acc(dim * dim, cx{0.0, 0.0});
    for (const Matrix& k : kraus) {
      rho = original;
      apply_unitary(k, qubits);
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += rho[i];
    }
    rho = std::move(acc);
  }

  void apply_relaxation(int qubit, double duration_ns, double t1_us,
                        double t2_us) {
    if (duration_ns <= 0.0) return;
    const double t_us = duration_ns * 1e-3;
    const double gamma = 1.0 - std::exp(-t_us / t1_us);
    const double inv_tphi = std::max(0.0, 1.0 / t2_us - 0.5 / t1_us);
    const double lambda = 1.0 - std::exp(-t_us * inv_tphi);
    const double sg = std::sqrt(std::max(0.0, 1.0 - gamma));
    const Matrix ad0(2, 2, {1, 0, 0, sg});
    const Matrix ad1(2, 2, {0, std::sqrt(gamma), 0, 0});
    const Matrix ads[] = {ad0, ad1};
    apply_kraus(ads, std::span<const int>(&qubit, 1));
    const double sl = std::sqrt(std::max(0.0, 1.0 - lambda));
    const Matrix pd0(2, 2, {1, 0, 0, sl});
    const Matrix pd1(2, 2, {0, 0, 0, std::sqrt(lambda)});
    const Matrix pds[] = {pd0, pd1};
    apply_kraus(pds, std::span<const int>(&qubit, 1));
  }
};

/// Seed implementation of the statevector update (skip-scan).
void ref_sv_apply(std::vector<cx>& amps, const Matrix& u,
                  std::span<const int> qubits) {
  const int k = static_cast<int>(qubits.size());
  const std::size_t ldim = std::size_t{1} << k;
  const std::size_t dim = amps.size();
  std::vector<std::size_t> masks(qubits.size());
  for (int j = 0; j < k; ++j) masks[j] = std::size_t{1} << qubits[j];
  std::vector<cx> local(ldim);
  for (std::size_t base = 0; base < dim; ++base) {
    bool is_base = true;
    for (std::size_t m : masks) {
      if (base & m) {
        is_base = false;
        break;
      }
    }
    if (!is_base) continue;
    for (std::size_t li = 0; li < ldim; ++li) {
      std::size_t idx = base;
      for (int j = 0; j < k; ++j) {
        if ((li >> (k - 1 - j)) & 1U) idx |= masks[j];
      }
      local[li] = amps[idx];
    }
    for (std::size_t lr = 0; lr < ldim; ++lr) {
      cx acc{0.0, 0.0};
      for (std::size_t lc = 0; lc < ldim; ++lc) acc += u(lr, lc) * local[lc];
      std::size_t idx = base;
      for (int j = 0; j < k; ++j) {
        if ((lr >> (k - 1 - j)) & 1U) idx |= masks[j];
      }
      amps[idx] = acc;
    }
  }
}

double max_abs_diff(std::span<const cx> a, std::span<const cx> b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

void check_density_invariants(const DensityMatrix& dm) {
  EXPECT_NEAR(dm.trace_real(), 1.0, 1e-9);
  EXPECT_LE(dm.purity(), 1.0 + 1e-9);
  EXPECT_GE(dm.purity(), 0.0);
  // Hermiticity of the stored matrix.
  const std::span<const cx> rho = dm.data();
  const std::size_t dim = dm.dim();
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = r; c < dim; ++c) {
      EXPECT_NEAR(std::abs(rho[r * dim + c] - std::conj(rho[c * dim + r])),
                  0.0, 1e-9);
    }
  }
}

Gate random_1q_gate(Rng& rng, int qubit) {
  static const GateKind kinds[] = {GateKind::H,  GateKind::X,  GateKind::Y,
                                   GateKind::Z,  GateKind::S,  GateKind::T,
                                   GateKind::SX, GateKind::RX, GateKind::RY,
                                   GateKind::RZ, GateKind::U3};
  Gate g;
  g.kind = kinds[rng.index(std::size(kinds))];
  g.qubits = {qubit};
  const int want = gate_param_count(g.kind);
  for (int i = 0; i < want; ++i) {
    g.params.push_back(rng.uniform(-3.0, 3.0));
  }
  return g;
}

Gate random_2q_gate(Rng& rng, int a, int b) {
  static const GateKind kinds[] = {GateKind::CX, GateKind::CZ, GateKind::SWAP};
  Gate g;
  g.kind = kinds[rng.index(std::size(kinds))];
  g.qubits = {a, b};
  return g;
}

TEST(KernelGolden, StatevectorRandomCircuits) {
  for (int n = 1; n <= 8; ++n) {
    Rng rng(1000 + static_cast<std::uint64_t>(n));
    Statevector sv(n);
    std::vector<cx> ref(std::size_t{1} << n, cx{0.0, 0.0});
    ref[0] = 1.0;
    for (int step = 0; step < 40; ++step) {
      Gate g;
      if (n >= 2 && rng.bernoulli(0.4)) {
        const int a = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
        int b = static_cast<int>(rng.index(static_cast<std::size_t>(n) - 1));
        if (b >= a) ++b;
        g = random_2q_gate(rng, a, b);
      } else {
        g = random_1q_gate(
            rng, static_cast<int>(rng.index(static_cast<std::size_t>(n))));
      }
      const Matrix u = gate_matrix(g);
      sv.apply_unitary(u, g.qubits);
      ref_sv_apply(ref, u, g.qubits);
    }
    EXPECT_LT(max_abs_diff(sv.amplitudes(), ref), kTol) << "n=" << n;
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
  }
}

TEST(KernelGolden, DensityUnitaryRandomCircuits) {
  for (int n = 1; n <= 8; ++n) {
    Rng rng(2000 + static_cast<std::uint64_t>(n));
    DensityMatrix dm(n);
    RefDensity ref(n);
    const int steps = n <= 6 ? 30 : 12;
    for (int step = 0; step < steps; ++step) {
      Gate g;
      if (n >= 2 && rng.bernoulli(0.4)) {
        const int a = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
        int b = static_cast<int>(rng.index(static_cast<std::size_t>(n) - 1));
        if (b >= a) ++b;
        g = random_2q_gate(rng, a, b);
      } else {
        g = random_1q_gate(
            rng, static_cast<int>(rng.index(static_cast<std::size_t>(n))));
      }
      const Matrix u = gate_matrix(g);
      dm.apply_unitary(u, g.qubits);
      ref.apply_unitary(u, g.qubits);
    }
    EXPECT_LT(max_abs_diff(dm.data(), ref.rho), kTol) << "n=" << n;
    check_density_invariants(dm);
  }
}

TEST(KernelGolden, DensityGenericKernelThreeQubitUnitary) {
  // An entangling 8x8 unitary exercises the generic (k >= 3) fallback.
  Rng rng(31);
  Circuit block(3);
  block.h(0);
  block.cx(0, 1);
  block.t(1);
  block.cx(1, 2);
  block.ry(0.7, 2);
  block.cx(2, 0);
  const Matrix u8 = block.to_unitary();
  for (int n = 3; n <= 6; ++n) {
    DensityMatrix dm(n);
    RefDensity ref(n);
    // Scramble first so the state is non-trivial.
    for (int q = 0; q < n; ++q) {
      const Gate g = random_1q_gate(rng, q);
      const Matrix u = gate_matrix(g);
      dm.apply_unitary(u, g.qubits);
      ref.apply_unitary(u, g.qubits);
    }
    std::vector<int> qs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) qs[static_cast<std::size_t>(i)] = i;
    rng.shuffle(qs);
    qs.resize(3);
    dm.apply_unitary(u8, qs);
    ref.apply_unitary(u8, qs);
    EXPECT_LT(max_abs_diff(dm.data(), ref.rho), kTol) << "n=" << n;
    check_density_invariants(dm);
  }
}

TEST(KernelGolden, DepolarizingRandomSubsets) {
  for (int n = 1; n <= 8; ++n) {
    Rng rng(3000 + static_cast<std::uint64_t>(n));
    DensityMatrix dm(n);
    RefDensity ref(n);
    // Non-trivial state first.
    for (int q = 0; q < n; ++q) {
      const Gate g = random_1q_gate(rng, q);
      const Matrix u = gate_matrix(g);
      dm.apply_unitary(u, g.qubits);
      ref.apply_unitary(u, g.qubits);
    }
    for (int trial = 0; trial < 6; ++trial) {
      const int k = 1 + static_cast<int>(
                            rng.index(static_cast<std::size_t>(
                                std::min(n, 3))));
      std::vector<int> qs(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) qs[static_cast<std::size_t>(i)] = i;
      rng.shuffle(qs);
      qs.resize(static_cast<std::size_t>(k));
      const double p = rng.uniform(0.0, 0.75);
      dm.apply_depolarizing(p, qs);
      ref.apply_depolarizing(p, qs);
    }
    EXPECT_LT(max_abs_diff(dm.data(), ref.rho), kTol) << "n=" << n;
    check_density_invariants(dm);
  }
}

TEST(KernelGolden, RelaxationMatchesFourKrausReference) {
  for (int n = 1; n <= 6; ++n) {
    Rng rng(4000 + static_cast<std::uint64_t>(n));
    DensityMatrix dm(n);
    RefDensity ref(n);
    for (int q = 0; q < n; ++q) {
      const Gate g = random_1q_gate(rng, q);
      const Matrix u = gate_matrix(g);
      dm.apply_unitary(u, g.qubits);
      ref.apply_unitary(u, g.qubits);
    }
    for (int trial = 0; trial < 8; ++trial) {
      const int q = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      const double dur = rng.uniform(10.0, 50000.0);
      const double t1 = rng.uniform(20.0, 200.0);
      // Cover both the clamped (T2 > 2 T1) and unclamped dephasing regime.
      const double t2 = rng.uniform(10.0, 2.5 * t1);
      dm.apply_relaxation(q, dur, t1, t2);
      ref.apply_relaxation(q, dur, t1, t2);
    }
    EXPECT_LT(max_abs_diff(dm.data(), ref.rho), kTol) << "n=" << n;
    check_density_invariants(dm);
  }
}

TEST(KernelGolden, KrausChannelsMatchReference) {
  for (int n = 1; n <= 6; ++n) {
    Rng rng(5000 + static_cast<std::uint64_t>(n));
    DensityMatrix dm(n);
    RefDensity ref(n);
    for (int q = 0; q < n; ++q) {
      const Gate g = random_1q_gate(rng, q);
      const Matrix u = gate_matrix(g);
      dm.apply_unitary(u, g.qubits);
      ref.apply_unitary(u, g.qubits);
    }
    // Amplitude damping on a random qubit.
    {
      const double g = rng.uniform(0.05, 0.6);
      const Matrix k0(2, 2, {1, 0, 0, std::sqrt(1.0 - g)});
      const Matrix k1(2, 2, {0, std::sqrt(g), 0, 0});
      const Matrix ks[] = {k0, k1};
      const int q = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      const std::vector<int> qs{q};
      dm.apply_kraus(ks, qs);
      ref.apply_kraus(ks, qs);
    }
    // Single-operator channel (unitary as Kraus) hits the in-place path.
    {
      const Matrix h = gate_matrix(GateKind::H);
      const Matrix ks[] = {h};
      const int q = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      const std::vector<int> qs{q};
      dm.apply_kraus(ks, qs);
      ref.apply_kraus(ks, qs);
    }
    // Two-qubit Pauli-mix channel.
    if (n >= 2) {
      const double p = 0.2;
      Matrix k0 = Matrix::identity(4);
      k0 *= std::sqrt(1.0 - p);
      Matrix k1 = gate_matrix(GateKind::CZ);
      k1 *= std::sqrt(p);
      const Matrix ks[] = {k0, k1};
      const int a = static_cast<int>(rng.index(static_cast<std::size_t>(n)));
      int b = static_cast<int>(rng.index(static_cast<std::size_t>(n) - 1));
      if (b >= a) ++b;
      const std::vector<int> qs{a, b};
      dm.apply_kraus(ks, qs);
      ref.apply_kraus(ks, qs);
    }
    EXPECT_LT(max_abs_diff(dm.data(), ref.rho), kTol) << "n=" << n;
    check_density_invariants(dm);
  }
}

TEST(KernelGolden, KrausValidateFlagContract) {
  DensityMatrix dm(1);
  const Matrix bad(2, 2, {0.5, 0, 0, 0.5});
  const Matrix ks[] = {bad};
  const std::vector<int> qs{0};
  // Default (validate=true): incomplete sets are rejected.
  EXPECT_THROW(dm.apply_kraus(ks, qs), std::invalid_argument);
  EXPECT_THROW(dm.apply_kraus(ks, qs, /*validate=*/true),
               std::invalid_argument);
  // validate=false skips the completeness check (hot-path contract for
  // callers that construct provably complete sets).
  EXPECT_NO_THROW(dm.apply_kraus(ks, qs, /*validate=*/false));
}

TEST(KernelGolden, CompiledUnitaryClassification) {
  using Tag = kern::CompiledUnitary::Tag;
  EXPECT_EQ(kern::compile_unitary(gate_matrix(GateKind::Z).data()).tag,
            Tag::kDiag1);
  EXPECT_EQ(kern::compile_unitary(gate_matrix(GateKind::T).data()).tag,
            Tag::kDiag1);
  EXPECT_EQ(kern::compile_unitary(gate_matrix(GateKind::X).data()).tag,
            Tag::kAnti1);
  EXPECT_EQ(kern::compile_unitary(gate_matrix(GateKind::H).data()).tag,
            Tag::kDense1);
  EXPECT_EQ(kern::compile_unitary(gate_matrix(GateKind::CX).data()).tag,
            Tag::kCxPerm);
  EXPECT_EQ(kern::compile_unitary(gate_matrix(GateKind::SWAP).data()).tag,
            Tag::kSwapPerm);
  EXPECT_EQ(kern::compile_unitary(gate_matrix(GateKind::CZ).data()).tag,
            Tag::kDiag2);
}

TEST(KernelGolden, NonInjectiveOneNonzeroPerRowMatrixStaysDense) {
  // [[s,0],[s,0]] has one nonzero per row but both rows read column 0 —
  // not a generalized permutation. It must classify dense and apply
  // correctly (the kernels explicitly support non-unitary matrices via
  // apply_kraus).
  const double s = 1.0 / std::sqrt(2.0);
  const cx u[4] = {s, 0.0, s, 0.0};
  EXPECT_EQ(kern::compile_unitary(std::span<const cx>(u, 4)).tag,
            kern::CompiledUnitary::Tag::kDense1);
  std::vector<cx> amps{cx{0.0, 0.0}, cx{1.0, 0.0}};  // |1>
  kern::apply1(amps, 1, 0, u);
  // M|1> = column 1 of M = (0, 0).
  EXPECT_NEAR(std::abs(amps[0]), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(amps[1]), 0.0, 1e-15);
}

TEST(KernelGolden, InsertBitEnumeratesBases) {
  // Bit-insertion must enumerate exactly the indices with the target bit
  // clear, in ascending order.
  const int n = 5;
  for (int bit = 0; bit < n; ++bit) {
    std::vector<std::size_t> got;
    for (std::size_t t = 0; t < (std::size_t{1} << (n - 1)); ++t) {
      got.push_back(kern::insert_bit(t, bit));
    }
    std::vector<std::size_t> want;
    for (std::size_t i = 0; i < (std::size_t{1} << n); ++i) {
      if (!(i & (std::size_t{1} << bit))) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "bit=" << bit;
  }
}

/// RAII reset so a failing expectation cannot leak a cap into later tests.
struct ThreadCapReset {
  ~ThreadCapReset() { kern::set_parallel_threads(0); }
};

TEST(ParallelFor, ResolvesZeroHardwareConcurrencyToSerial) {
  // The standard allows hardware_concurrency() to report 0 ("unknown");
  // the resolver must map that to 1 worker, not feed 0 into the chunk
  // split. Explicit overrides and the env knob take precedence in order.
  EXPECT_EQ(kern::resolve_parallel_threads(0, nullptr, 0u), 1);
  EXPECT_EQ(kern::resolve_parallel_threads(0, nullptr, 8u), 8);
  EXPECT_EQ(kern::resolve_parallel_threads(3, nullptr, 8u), 3);
  EXPECT_EQ(kern::resolve_parallel_threads(3, "5", 8u), 3);
  EXPECT_EQ(kern::resolve_parallel_threads(0, "5", 8u), 5);
  EXPECT_EQ(kern::resolve_parallel_threads(0, "5", 0u), 5);
  // Garbage / non-positive env values fall through to hardware.
  EXPECT_EQ(kern::resolve_parallel_threads(0, "nope", 4u), 4);
  EXPECT_EQ(kern::resolve_parallel_threads(0, "0", 4u), 4);
  EXPECT_EQ(kern::resolve_parallel_threads(0, "-2", 0u), 1);
}

TEST(ParallelFor, CoversEveryElementExactlyOnceUnderAnyCap) {
  const ThreadCapReset reset;
  // Above-threshold count so the parallel branch engages when the cap
  // allows it; each element incremented exactly once proves the ranges
  // are disjoint and complete.
  const std::size_t count = (std::size_t{2} << 16) + 37;
  for (int cap : {1, 2, 3, 8}) {
    kern::set_parallel_threads(cap);
    EXPECT_EQ(kern::parallel_threads(), cap);
    std::vector<int> touched(count, 0);
    kern::parallel_for(count, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++touched[i];
    });
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(touched.begin(), touched.end(), 1)),
              count)
        << "cap=" << cap;
  }
}

TEST(ParallelFor, GuardScopesTheCapAndRestoresOnExit) {
  const ThreadCapReset reset;
  kern::set_parallel_threads(6);
  {
    const kern::ParallelThreadsGuard guard(2);
    EXPECT_EQ(kern::parallel_threads(), 2);
    {
      const kern::ParallelThreadsGuard inner(0);  // no-op: inherit
      EXPECT_EQ(kern::parallel_threads(), 2);
    }
    EXPECT_EQ(kern::parallel_threads(), 2);
  }
  EXPECT_EQ(kern::parallel_threads(), 6);
  kern::set_parallel_threads(0);
  EXPECT_GE(kern::parallel_threads(), 1);  // ambient is always >= 1
}

TEST(ParallelFor, CapIsThreadLocal) {
  const ThreadCapReset reset;
  kern::set_parallel_threads(5);
  int other_thread_cap = -1;
  std::thread probe([&] { other_thread_cap = kern::parallel_threads(); });
  probe.join();
  // A worker thread inherits the ambient cap, not this thread's override —
  // each ExecutionService worker manages its own budget.
  EXPECT_EQ(kern::parallel_threads(), 5);
  EXPECT_NE(other_thread_cap, -1);
  EXPECT_NE(other_thread_cap, 0);
}

TEST(ParallelFor, SmallCountsStaySerialRegardlessOfCap) {
  const ThreadCapReset reset;
  kern::set_parallel_threads(8);
  // Below 2 * kParallelGrain the body must run inline as one range.
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  kern::parallel_for(kern::kParallelGrain, [&](std::size_t b, std::size_t e) {
    ranges.emplace_back(b, e);
  });
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (std::pair<std::size_t, std::size_t>{
                           0, kern::kParallelGrain}));
}

}  // namespace
}  // namespace qucp
