#include "hardware/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qucp {
namespace {

Topology line5() {
  return Topology(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
}

TEST(Edge, CanonicalOrder) {
  const Edge e(3, 1);
  EXPECT_EQ(e.a, 1);
  EXPECT_EQ(e.b, 3);
  EXPECT_TRUE(e.contains(1));
  EXPECT_TRUE(e.contains(3));
  EXPECT_FALSE(e.contains(2));
  EXPECT_EQ(e, Edge(1, 3));
}

TEST(Edge, SharesQubit) {
  EXPECT_TRUE(Edge(0, 1).shares_qubit(Edge(1, 2)));
  EXPECT_FALSE(Edge(0, 1).shares_qubit(Edge(2, 3)));
}

TEST(Topology, ConstructionValidation) {
  EXPECT_THROW(Topology(0, {}), std::invalid_argument);
  EXPECT_THROW(Topology(2, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(Topology(2, {{0, 5}}), std::out_of_range);
  EXPECT_THROW(Topology(3, {{0, 1}, {1, 0}}), std::invalid_argument);
}

TEST(Topology, AdjacencyAndDegree) {
  const Topology t = line5();
  EXPECT_TRUE(t.adjacent(0, 1));
  EXPECT_TRUE(t.adjacent(1, 0));
  EXPECT_FALSE(t.adjacent(0, 2));
  EXPECT_EQ(t.degree(0), 1);
  EXPECT_EQ(t.degree(2), 2);
  EXPECT_EQ(t.neighbors(2), (std::vector<int>{1, 3}));
  EXPECT_THROW((void)t.adjacent(0, 9), std::out_of_range);
}

TEST(Topology, EdgeIndexLookup) {
  const Topology t = line5();
  EXPECT_TRUE(t.edge_index(1, 2).has_value());
  EXPECT_EQ(t.edge_index(2, 1), t.edge_index(1, 2));
  EXPECT_FALSE(t.edge_index(0, 4).has_value());
}

TEST(Topology, BfsDistances) {
  const Topology t = line5();
  EXPECT_EQ(t.distance(0, 0), 0);
  EXPECT_EQ(t.distance(0, 4), 4);
  EXPECT_EQ(t.distance(4, 0), 4);
  EXPECT_EQ(t.distance(1, 3), 2);
}

TEST(Topology, DisconnectedDistanceIsMinusOne) {
  const Topology t(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(t.distance(0, 3), -1);
  EXPECT_EQ(t.distance(0, 1), 1);
}

TEST(Topology, OneHopEdgePairsOnLine) {
  const Topology t = line5();
  // Edges: 0:(0,1) 1:(1,2) 2:(2,3) 3:(3,4). Disjoint pairs at one hop:
  // {0,2} via 1-2, {1,3} via 2-3. {0,3} is two hops.
  const auto pairs = t.one_hop_edge_pairs();
  const std::set<std::pair<int, int>> got(pairs.begin(), pairs.end());
  EXPECT_EQ(got, (std::set<std::pair<int, int>>{{0, 2}, {1, 3}}));
}

TEST(Topology, OneHopNeighborsOfEdge) {
  const Topology t = line5();
  EXPECT_EQ(t.one_hop_neighbors_of_edge(0), (std::vector<int>{2}));
  EXPECT_EQ(t.one_hop_neighbors_of_edge(1), (std::vector<int>{3}));
  EXPECT_THROW((void)t.one_hop_neighbors_of_edge(99), std::out_of_range);
}

TEST(Topology, OneHopPairsConsistentWithNeighborLists) {
  const Topology grid(9, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8},
                          {0, 3}, {3, 6}, {1, 4}, {4, 7}, {2, 5}, {5, 8}});
  const auto pairs = grid.one_hop_edge_pairs();
  std::size_t from_lists = 0;
  for (int e = 0; e < grid.num_edges(); ++e) {
    from_lists += grid.one_hop_neighbors_of_edge(e).size();
  }
  EXPECT_EQ(pairs.size() * 2, from_lists);
}

TEST(Topology, ConnectedSubset) {
  const Topology t = line5();
  EXPECT_TRUE(t.is_connected_subset(std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(t.is_connected_subset(std::vector<int>{0, 2}));
  EXPECT_TRUE(t.is_connected_subset(std::vector<int>{}));
  EXPECT_TRUE(t.is_connected_subset(std::vector<int>{4}));
}

TEST(Topology, InducedEdges) {
  const Topology t = line5();
  const auto edges = t.induced_edges(std::vector<int>{1, 2, 3});
  EXPECT_EQ(edges, (std::vector<int>{1, 2}));
  EXPECT_TRUE(t.induced_edges(std::vector<int>{0, 2}).empty());
}

TEST(Topology, RingOneHopPairs) {
  const Topology ring(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  // Opposite edges of a square are disjoint and at one hop.
  const auto pairs = ring.one_hop_edge_pairs();
  EXPECT_EQ(pairs.size(), 2u);
}

}  // namespace
}  // namespace qucp
