#include "hardware/crosstalk.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace qucp {
namespace {

TEST(CrosstalkModel, DefaultGammaIsOne) {
  const CrosstalkModel m;
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.gamma(0, 1), 1.0);
}

TEST(CrosstalkModel, AddAndQuerySymmetric) {
  CrosstalkModel m;
  m.add_pair(2, 5, 3.0);
  EXPECT_DOUBLE_EQ(m.gamma(2, 5), 3.0);
  EXPECT_DOUBLE_EQ(m.gamma(5, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.gamma(2, 6), 1.0);
  EXPECT_EQ(m.size(), 1u);
}

TEST(CrosstalkModel, Validation) {
  CrosstalkModel m;
  EXPECT_THROW(m.add_pair(1, 1, 2.0), std::invalid_argument);
  EXPECT_THROW(m.add_pair(1, 2, 0.5), std::invalid_argument);
}

TEST(CrosstalkModel, PairsListedCanonically) {
  CrosstalkModel m;
  m.add_pair(7, 3, 2.0);
  m.add_pair(1, 2, 4.0);
  const auto pairs = m.pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(std::get<0>(pairs[0]), 1);
  EXPECT_EQ(std::get<1>(pairs[0]), 2);
  EXPECT_EQ(std::get<0>(pairs[1]), 3);
  EXPECT_EQ(std::get<1>(pairs[1]), 7);
}

TEST(PlantCrosstalk, FractionControlsCount) {
  // 3x3 grid has plenty of one-hop pairs.
  const Topology grid(9, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8},
                          {0, 3}, {3, 6}, {1, 4}, {4, 7}, {2, 5}, {5, 8}});
  const std::size_t total = grid.one_hop_edge_pairs().size();
  ASSERT_GT(total, 4u);
  const CrosstalkModel half = plant_crosstalk(grid, 0.5, 2.0, 4.0, Rng(3));
  EXPECT_NEAR(static_cast<double>(half.size()),
              0.5 * static_cast<double>(total), 1.0);
  const CrosstalkModel none = plant_crosstalk(grid, 0.0, 2.0, 4.0, Rng(3));
  EXPECT_TRUE(none.empty());
  const CrosstalkModel all = plant_crosstalk(grid, 1.0, 2.0, 4.0, Rng(3));
  EXPECT_EQ(all.size(), total);
}

TEST(PlantCrosstalk, GammasWithinRange) {
  const Topology grid(9, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8},
                          {0, 3}, {3, 6}, {1, 4}, {4, 7}, {2, 5}, {5, 8}});
  const CrosstalkModel m = plant_crosstalk(grid, 1.0, 2.0, 4.0, Rng(11));
  for (const auto& [e1, e2, g] : m.pairs()) {
    EXPECT_GE(g, 2.0);
    EXPECT_LE(g, 4.0);
  }
}

TEST(PlantCrosstalk, OnlyOneHopPairs) {
  const Topology line(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const CrosstalkModel m = plant_crosstalk(line, 1.0, 2.0, 3.0, Rng(4));
  const auto allowed = line.one_hop_edge_pairs();
  for (const auto& [e1, e2, g] : m.pairs()) {
    EXPECT_TRUE(std::find(allowed.begin(), allowed.end(),
                          std::make_pair(e1, e2)) != allowed.end());
  }
}

TEST(PlantCrosstalk, Validation) {
  const Topology line(3, {{0, 1}, {1, 2}});
  EXPECT_THROW((void)plant_crosstalk(line, -0.1, 2.0, 3.0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW((void)plant_crosstalk(line, 0.5, 0.5, 3.0, Rng(1)),
               std::invalid_argument);
  EXPECT_THROW((void)plant_crosstalk(line, 0.5, 3.0, 2.0, Rng(1)),
               std::invalid_argument);
}

TEST(PlantCrosstalk, Deterministic) {
  const Topology grid(9, {{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8},
                          {0, 3}, {3, 6}, {1, 4}, {4, 7}, {2, 5}, {5, 8}});
  const CrosstalkModel a = plant_crosstalk(grid, 0.4, 2.0, 4.0, Rng(21));
  const CrosstalkModel b = plant_crosstalk(grid, 0.4, 2.0, 4.0, Rng(21));
  EXPECT_EQ(a.pairs(), b.pairs());
}

}  // namespace
}  // namespace qucp
