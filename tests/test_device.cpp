#include "hardware/device.hpp"

#include <gtest/gtest.h>

namespace qucp {
namespace {

TEST(Device, Melbourne16Layout) {
  const Device d = make_melbourne16();
  EXPECT_EQ(d.num_qubits(), 15);  // "IBM Q 16 Melbourne" exposes 15 qubits
  EXPECT_EQ(d.topology().num_edges(), 20);
  // Fig. 1 structure: two rows plus rungs.
  EXPECT_TRUE(d.topology().adjacent(0, 1));
  EXPECT_TRUE(d.topology().adjacent(13, 14));
  EXPECT_TRUE(d.topology().adjacent(0, 14));
  EXPECT_TRUE(d.topology().adjacent(6, 8));
  EXPECT_FALSE(d.topology().adjacent(0, 7));
}

TEST(Device, MelbourneFig1Errors) {
  const Device d = make_melbourne16();
  // Transcribed values: edge (0,1) = 2.1%, (4,5) = 1.1%, (8,9) = 6.2%.
  EXPECT_NEAR(d.cx_error(0, 1), 0.021, 1e-12);
  EXPECT_NEAR(d.cx_error(4, 5), 0.011, 1e-12);
  EXPECT_NEAR(d.cx_error(8, 9), 0.062, 1e-12);
}

TEST(Device, Toronto27IsHeavyHex) {
  const Device d = make_toronto27();
  EXPECT_EQ(d.num_qubits(), 27);
  EXPECT_EQ(d.topology().num_edges(), 28);
  // Spot checks of the Falcon coupling map.
  EXPECT_TRUE(d.topology().adjacent(1, 4));
  EXPECT_TRUE(d.topology().adjacent(25, 26));
  EXPECT_FALSE(d.topology().adjacent(0, 26));
  // Heavy-hex degree bound.
  for (int q = 0; q < 27; ++q) EXPECT_LE(d.topology().degree(q), 3);
}

TEST(Device, Manhattan65IsHeavyHex) {
  const Device d = make_manhattan65();
  EXPECT_EQ(d.num_qubits(), 65);
  EXPECT_EQ(d.topology().num_edges(), 72);
  for (int q = 0; q < 65; ++q) EXPECT_LE(d.topology().degree(q), 3);
  // Connectivity sanity: the chip is one component.
  for (int q = 1; q < 65; ++q) EXPECT_GE(d.topology().distance(0, q), 1);
}

TEST(Device, CalibrationAccessors) {
  const Device d = make_toronto27();
  EXPECT_GT(d.cx_error(0, 1), 0.0);
  EXPECT_LT(d.cx_error(0, 1), 0.2);
  EXPECT_GT(d.cx_duration_ns(0, 1), 100.0);
  EXPECT_GT(d.readout_error(5), 0.0);
  EXPECT_GT(d.q1_error(5), 0.0);
  EXPECT_THROW((void)d.cx_error(0, 26), std::invalid_argument);
  EXPECT_THROW((void)d.readout_error(99), std::out_of_range);
}

TEST(Device, CrosstalkGroundTruthOnOneHopPairs) {
  const Device d = make_toronto27();
  const auto& xtalk = d.crosstalk_ground_truth();
  EXPECT_FALSE(xtalk.empty());
  const auto one_hop = d.topology().one_hop_edge_pairs();
  for (const auto& [e1, e2, g] : xtalk.pairs()) {
    EXPECT_GT(g, 1.0);
    EXPECT_TRUE(std::find(one_hop.begin(), one_hop.end(),
                          std::make_pair(e1, e2)) != one_hop.end());
  }
}

TEST(Device, SeedsChangeCalibration) {
  const Device a = make_toronto27(1);
  const Device b = make_toronto27(2);
  EXPECT_NE(a.calibration().cx_error, b.calibration().cx_error);
  const Device c = make_toronto27(1);
  EXPECT_EQ(a.calibration().cx_error, c.calibration().cx_error);
}

TEST(Device, LineAndGridFactories) {
  const Device line = make_line_device(6);
  EXPECT_EQ(line.num_qubits(), 6);
  EXPECT_EQ(line.topology().num_edges(), 5);
  EXPECT_TRUE(line.crosstalk_ground_truth().empty());

  const Device grid = make_grid_device(3, 4);
  EXPECT_EQ(grid.num_qubits(), 12);
  EXPECT_EQ(grid.topology().num_edges(), 3 * 3 + 2 * 4);
}

TEST(Device, SetCalibrationValidates) {
  Device d = make_line_device(3);
  Calibration cal = d.calibration();
  cal.cx_error[0] = 0.5;
  EXPECT_NO_THROW(d.set_calibration(cal));
  EXPECT_DOUBLE_EQ(d.cx_error(0, 1), 0.5);
  cal.cx_error.pop_back();
  EXPECT_THROW(d.set_calibration(cal), std::invalid_argument);
}

TEST(Device, MelbourneThroughputNumbersFromPaper) {
  // Fig. 1: one 4-qubit circuit -> 26.7% utilization; two -> 53.3%.
  const Device d = make_melbourne16();
  EXPECT_NEAR(4.0 / d.num_qubits(), 0.267, 0.001);
  EXPECT_NEAR(8.0 / d.num_qubits(), 0.533, 0.001);
}

}  // namespace
}  // namespace qucp
