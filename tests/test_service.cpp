// Tests for the asynchronous ExecutionService: packing, threshold spill,
// worker-pool concurrency, determinism under concurrent submission, the
// transpilation cache, and bit-identity of the run_parallel() shim.

#include "service/service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "benchmarks/suite.hpp"
#include "core/runtime.hpp"

namespace qucp {
namespace {

const char* kMix[] = {"adder", "fred", "lin", "4mod",
                      "bell",  "qec",  "alu", "var"};

Circuit mix_circuit(std::size_t i) {
  return get_benchmark(kMix[i % std::size(kMix)]).circuit;
}

ServiceOptions fast_service_options() {
  ServiceOptions opts;
  opts.exec.shots = 128;
  opts.num_workers = 4;
  opts.max_batch_size = 4;
  return opts;
}

/// Comparable digest of one job's outcome, including where it ran: the
/// determinism contract covers routing decisions and per-backend batch
/// assignments, not just per-job results.
struct Outcome {
  std::vector<int> partition;
  std::vector<Counts::Entry> counts;
  double pst = 0.0;
  double jsd = 0.0;
  int backend_id = 0;
  std::uint64_t batch_index = 0;

  [[nodiscard]] bool operator==(const Outcome& other) const = default;
};

Outcome outcome_of(const JobHandle& handle) {
  const JobResult& r = handle.result();
  return {r.report.partition, r.report.counts.data(), r.report.pst_value,
          r.report.jsd_value,  r.batch.backend_id,   r.batch.batch_index};
}

/// Submit `n` jobs with unique names "job<i>" and return name -> outcome.
std::map<std::string, Outcome> run_jobs(ExecutionService& service, int n,
                                        int num_submit_threads,
                                        bool reversed = false) {
  std::vector<JobHandle> handles(static_cast<std::size_t>(n));
  if (num_submit_threads <= 1) {
    for (int i = 0; i < n; ++i) {
      const int idx = reversed ? n - 1 - i : i;
      JobOptions jopts;
      jopts.name = "job" + std::to_string(idx);
      handles[idx] = service.submit(mix_circuit(idx), jopts);
    }
  } else {
    std::vector<std::thread> threads;
    std::atomic<int> next{0};
    for (int t = 0; t < num_submit_threads; ++t) {
      threads.emplace_back([&] {
        for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
          JobOptions jopts;
          jopts.name = "job" + std::to_string(i);
          handles[i] = service.submit(mix_circuit(i), jopts);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  service.flush();
  std::map<std::string, Outcome> outcomes;
  for (const JobHandle& h : handles) outcomes[h.name()] = outcome_of(h);
  return outcomes;
}

TEST(ExecutionService, DrainsSixtyFourJobsFromFourThreads) {
  ExecutionService service(make_toronto27(), fast_service_options());
  const auto outcomes = run_jobs(service, 64, 4);
  ASSERT_EQ(outcomes.size(), 64u);
  for (const auto& [name, out] : outcomes) {
    EXPECT_FALSE(out.partition.empty()) << name;
    int total = 0;
    for (const auto& [bits, count] : out.counts) total += count;
    EXPECT_EQ(total, 128) << name;
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_submitted, 64u);
  EXPECT_EQ(stats.jobs_completed, 64u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  EXPECT_GE(stats.batches_executed, 16u);  // max_batch_size = 4
  // 8 distinct circuits land on a handful of partitions: the cache must
  // carry most of the 64 transpilations.
  EXPECT_GT(stats.transpile_cache.hits, 0u);
}

TEST(ExecutionService, DeterministicAcrossSubmissionInterleavings) {
  // Same 64 jobs (unique names), submitted serially, serially in reverse,
  // and from 4 racing threads: with canonical ordering and a fixed seed
  // every handle must observe the identical result.
  ExecutionService serial(make_toronto27(), fast_service_options());
  const auto base = run_jobs(serial, 64, 1);

  ExecutionService reversed(make_toronto27(), fast_service_options());
  EXPECT_EQ(run_jobs(reversed, 64, 1, /*reversed=*/true), base);

  ExecutionService threaded(make_toronto27(), fast_service_options());
  EXPECT_EQ(run_jobs(threaded, 64, 4), base);
}

TEST(ExecutionService, ShimIsBitIdenticalToDirectPipeline) {
  // run_parallel() must reproduce the pre-service facade exactly: same
  // partitions, same sampled counts, same metrics. The direct pipeline
  // call below is the historical code path (partition -> transpile ->
  // execute -> score) on a fresh backend.
  const Device d = make_toronto27();
  std::vector<Circuit> programs{get_benchmark("adder").circuit,
                                get_benchmark("fred").circuit,
                                get_benchmark("alu").circuit};
  ParallelOptions opts;
  opts.exec.shots = 256;

  Backend backend(d);
  const BatchReport direct = run_batch_pipeline(backend, programs, {}, opts);
  const BatchReport shim = run_parallel(d, programs, opts);

  ASSERT_EQ(shim.programs.size(), direct.programs.size());
  for (std::size_t i = 0; i < shim.programs.size(); ++i) {
    EXPECT_EQ(shim.programs[i].name, direct.programs[i].name);
    EXPECT_EQ(shim.programs[i].partition, direct.programs[i].partition);
    EXPECT_EQ(shim.programs[i].final_layout, direct.programs[i].final_layout);
    EXPECT_EQ(shim.programs[i].swaps_added, direct.programs[i].swaps_added);
    EXPECT_DOUBLE_EQ(shim.programs[i].efs, direct.programs[i].efs);
    EXPECT_EQ(shim.programs[i].counts.data(), direct.programs[i].counts.data());
    EXPECT_DOUBLE_EQ(shim.programs[i].pst_value, direct.programs[i].pst_value);
    EXPECT_DOUBLE_EQ(shim.programs[i].jsd_value, direct.programs[i].jsd_value);
  }
  EXPECT_DOUBLE_EQ(shim.makespan_ns, direct.makespan_ns);
  EXPECT_DOUBLE_EQ(shim.throughput, direct.throughput);
  EXPECT_EQ(shim.crosstalk_events, direct.crosstalk_events);
  EXPECT_DOUBLE_EQ(shim.runtime_reduction, direct.runtime_reduction);
}

TEST(ExecutionService, ZeroThresholdForcesIndependentExecution) {
  // tau = 0 (paper §IV-B): a co-placement may not degrade EFS at all, so
  // four copies of the same CX-heavy program run one per batch.
  ServiceOptions opts = fast_service_options();
  opts.efs_threshold = 0.0;
  ExecutionService service(make_toronto27(), opts);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    JobOptions jopts;
    jopts.name = "alu" + std::to_string(i);
    handles.push_back(service.submit(get_benchmark("alu").circuit, jopts));
  }
  service.flush();
  for (const JobHandle& h : handles) {
    EXPECT_EQ(h.result().batch.batch_size, 1u);
  }
  EXPECT_EQ(service.stats().batches_executed, 4u);
  EXPECT_GT(service.stats().spill_events, 0u);
}

TEST(ExecutionService, GenerousThresholdPacksOneBatch) {
  ServiceOptions opts = fast_service_options();
  ExecutionService service(make_toronto27(), opts);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    JobOptions jopts;
    jopts.name = "alu" + std::to_string(i);
    handles.push_back(service.submit(get_benchmark("alu").circuit, jopts));
  }
  service.flush();
  for (const JobHandle& h : handles) {
    EXPECT_EQ(h.result().batch.batch_size, 4u);
    EXPECT_GT(h.result().batch.runtime_reduction, 1.5);
  }
  EXPECT_EQ(service.stats().batches_executed, 1u);
}

TEST(ExecutionService, ExclusiveJobRunsAlone) {
  ExecutionService service(make_toronto27(), fast_service_options());
  JobOptions exclusive;
  exclusive.name = "solo";
  exclusive.exclusive = true;
  const JobHandle solo =
      service.submit(get_benchmark("adder").circuit, exclusive);
  std::vector<JobHandle> rest;
  for (int i = 0; i < 3; ++i) {
    rest.push_back(service.submit(get_benchmark("bell").circuit));
  }
  service.flush();
  EXPECT_EQ(solo.result().batch.batch_size, 1u);
  for (const JobHandle& h : rest) {
    EXPECT_EQ(h.result().batch.batch_size, 3u);
  }
}

TEST(ExecutionService, UnplaceableJobFailsOthersSurvive) {
  ServiceOptions opts = fast_service_options();
  ExecutionService service(make_line_device(4), opts);
  const JobHandle big =
      service.submit(get_benchmark("alu").circuit);  // 5 qubits > 4
  const JobHandle small = service.submit(get_benchmark("bell").circuit);
  service.flush();
  EXPECT_EQ(big.status(), JobStatus::Failed);
  EXPECT_NE(big.error().find("does not fit"), std::string::npos);
  EXPECT_THROW((void)big.result(), std::runtime_error);
  EXPECT_EQ(small.status(), JobStatus::Done);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
}

TEST(ExecutionService, StatusLifecycleAndShutdown) {
  ExecutionService service(make_toronto27(), fast_service_options());
  const JobHandle job = service.submit(get_benchmark("bell").circuit);
  EXPECT_EQ(job.status(), JobStatus::Queued);
  EXPECT_FALSE(job.finished());
  service.flush();
  EXPECT_EQ(job.status(), JobStatus::Done);
  EXPECT_TRUE(job.finished());
  EXPECT_TRUE(job.wait_for(std::chrono::milliseconds(1)));

  // More work after a flush is fine; submit after shutdown is not.
  const JobHandle second = service.submit(get_benchmark("bell").circuit);
  service.shutdown();
  EXPECT_EQ(second.status(), JobStatus::Done);
  EXPECT_THROW((void)service.submit(get_benchmark("bell").circuit),
               std::runtime_error);
  service.shutdown();  // idempotent
}

TEST(ExecutionService, AutoFlushDispatchesWithoutExplicitFlush) {
  ServiceOptions opts = fast_service_options();
  opts.auto_flush_batch_size = 4;
  ExecutionService service(make_toronto27(), opts);
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(service.submit(get_benchmark("bell").circuit));
  }
  for (const JobHandle& h : handles) {
    EXPECT_TRUE(h.wait_for(std::chrono::seconds(30)));
    EXPECT_EQ(h.status(), JobStatus::Done);
  }
  EXPECT_EQ(service.pending_jobs(), 0u);
}

TEST(ExecutionService, QumcWithoutEstimatesThrowsAtConstruction) {
  ServiceOptions opts = fast_service_options();
  opts.method = Method::QuMC;
  EXPECT_THROW(ExecutionService(make_toronto27(), opts),
               std::invalid_argument);
}

TEST(Packer, PartialTailBatchAndOrder) {
  // 5 equal jobs, batches of 4: the tail batch has 1 job — the non-multiple
  // case the old examples/cloud_queue.cpp slicing read past the end on.
  const Device d = make_toronto27();
  const QucpPartitioner partitioner;
  const ProgramShape shape = shape_of(get_benchmark("bell").circuit);
  std::vector<PackJob> jobs;
  for (std::size_t i = 0; i < 5; ++i) jobs.push_back({i, shape, i, false});
  std::map<std::uint64_t, double> cache;
  const PackResult packed =
      pack_batches(d, jobs, partitioner, PackOptions{}, cache);
  ASSERT_EQ(packed.batches.size(), 2u);
  EXPECT_EQ(packed.batches[0].jobs, (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(packed.batches[1].jobs, (std::vector<std::size_t>{4}));
  EXPECT_TRUE(packed.unplaceable.empty());
}

TEST(Packer, SpillsWhatDoesNotFitTogether) {
  // Three 5-qubit programs on a 12-qubit line with first-fit packing: two
  // fit side by side, the third spills to a second batch instead of
  // failing the whole queue. (Naive is used because its left-to-right
  // first-fit makes the packing geometry exact; the EFS partitioners may
  // fragment the line.)
  const Device d = make_line_device(12);
  const NaivePartitioner partitioner;
  const ProgramShape shape = shape_of(get_benchmark("alu").circuit);
  std::vector<PackJob> jobs;
  for (std::size_t i = 0; i < 3; ++i) jobs.push_back({i, shape, i, false});
  std::map<std::uint64_t, double> cache;
  const PackResult packed =
      pack_batches(d, jobs, partitioner, PackOptions{}, cache);
  ASSERT_EQ(packed.batches.size(), 2u);
  EXPECT_EQ(packed.batches[0].jobs.size(), 2u);
  EXPECT_EQ(packed.batches[1].jobs.size(), 1u);
  EXPECT_GT(packed.spill_events, 0u);
}

TEST(Packer, SpilledJobsKeepFifoOrderBehindRepeatedlyFullBatches) {
  // Five device-filling 5-qubit jobs on a 12-qubit line: only two fit per
  // batch, so jobs 2..4 spill repeatedly. A spilled job must neither
  // starve nor reorder: every job appears exactly once, batches hold
  // consecutive queue positions, and first-dispatch order is arrival
  // order.
  const Device d = make_line_device(12);
  const NaivePartitioner partitioner;
  const ProgramShape shape = shape_of(get_benchmark("alu").circuit);
  std::vector<PackJob> jobs;
  for (std::size_t i = 0; i < 5; ++i) jobs.push_back({i, shape, i, false});
  std::map<std::uint64_t, double> cache;
  const PackResult packed =
      pack_batches(d, jobs, partitioner, PackOptions{}, cache);
  ASSERT_EQ(packed.batches.size(), 3u);
  EXPECT_EQ(packed.batches[0].jobs, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(packed.batches[1].jobs, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(packed.batches[2].jobs, (std::vector<std::size_t>{4}));
  EXPECT_TRUE(packed.unplaceable.empty());
  // Job 2, 3, 4 each spill from batch 1; job 4 spills again from batch 2.
  EXPECT_EQ(packed.spill_events, 4u);
}

TEST(Packer, LateSmallJobMayOvertakeButSpilledJobsStayOrdered) {
  // Greedy in-queue-order packing lets a later job join an earlier batch
  // when it still fits (that is the throughput policy, not starvation):
  // with [5q, 5q, 5q, 2q] on a 12-qubit line, the trailing 2q job rides
  // in batch 1 past the spilled third 5q job, which still dispatches next
  // and exactly once.
  const Device d = make_line_device(12);
  const NaivePartitioner partitioner;
  const ProgramShape big = shape_of(get_benchmark("alu").circuit);
  const ProgramShape small{2, 1, 1};
  std::vector<PackJob> jobs{{0, big, 10, false},
                            {1, big, 11, false},
                            {2, big, 12, false},
                            {3, small, 13, false}};
  std::map<std::uint64_t, double> cache;
  const PackResult packed =
      pack_batches(d, jobs, partitioner, PackOptions{}, cache);
  ASSERT_EQ(packed.batches.size(), 2u);
  EXPECT_EQ(packed.batches[0].jobs, (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(packed.batches[1].jobs, (std::vector<std::size_t>{2}));
  EXPECT_EQ(packed.spill_events, 1u);
}

TEST(Packer, AccountingIsExactOverRandomizedStreams) {
  // Property: every job lands in exactly one batch or in unplaceable —
  // nothing is dropped or duplicated no matter how spills interleave.
  const Device d = make_line_device(10);
  const QucpPartitioner partitioner;
  Rng rng(4242);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<PackJob> jobs;
    const int n = static_cast<int>(rng.integer(1, 14));
    for (int i = 0; i < n; ++i) {
      ProgramShape s;
      s.num_qubits = static_cast<int>(rng.integer(1, 12));  // some > device
      s.num_2q = s.num_qubits >= 2 ? static_cast<int>(rng.integer(0, 9)) : 0;
      s.num_1q = static_cast<int>(rng.integer(0, 9));
      jobs.push_back({static_cast<std::size_t>(i), s, rng.next_u64(),
                      rng.bernoulli(0.2)});
    }
    PackOptions opts;
    opts.max_batch_size = static_cast<int>(rng.integer(1, 4));
    std::map<std::uint64_t, double> cache;
    const PackResult packed =
        pack_batches(d, jobs, partitioner, opts, cache);
    std::vector<std::size_t> seen;
    for (const PackedBatch& batch : packed.batches) {
      EXPECT_FALSE(batch.jobs.empty()) << trial;
      EXPECT_LE(batch.jobs.size(),
                static_cast<std::size_t>(opts.max_batch_size))
          << trial;
      EXPECT_TRUE(std::is_sorted(batch.jobs.begin(), batch.jobs.end()))
          << trial;  // queue order within a batch
      seen.insert(seen.end(), batch.jobs.begin(), batch.jobs.end());
    }
    seen.insert(seen.end(), packed.unplaceable.begin(),
                packed.unplaceable.end());
    std::sort(seen.begin(), seen.end());
    std::vector<std::size_t> expected(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) expected[i] = i;
    EXPECT_EQ(seen, expected) << trial;
  }
}

TEST(Packer, ExclusiveJobThatCannotFitAloneIsUnplaceableNotSpilled) {
  // The exclusive path probes solo allocation before opening a batch: a
  // solo-allocation failure is terminal (unplaceable), never a spill, and
  // must not wedge the jobs queued behind it.
  const Device d = make_line_device(4);
  const QucpPartitioner partitioner;
  const ProgramShape small{2, 1, 1};
  const ProgramShape huge{9, 4, 4};
  std::vector<PackJob> jobs{{0, small, 1, false},
                            {1, huge, 2, true},  // exclusive, cannot fit
                            {2, small, 3, false}};
  std::map<std::uint64_t, double> cache;
  const PackResult packed =
      pack_batches(d, jobs, partitioner, PackOptions{}, cache);
  EXPECT_EQ(packed.unplaceable, (std::vector<std::size_t>{1}));
  EXPECT_EQ(packed.spill_events, 0u);
  ASSERT_EQ(packed.batches.size(), 1u);
  EXPECT_EQ(packed.batches[0].jobs, (std::vector<std::size_t>{0, 2}));
}

TEST(Packer, MidQueueExclusiveJobDefersWithoutSpillAccounting) {
  // An exclusive job behind an open batch waits for the next one (normal
  // queueing, not a spill_event); followers may still fill the current
  // batch, and the exclusive job runs alone in the following one.
  const Device d = make_line_device(8);
  const QucpPartitioner partitioner;
  const ProgramShape small{2, 1, 1};
  std::vector<PackJob> jobs{{0, small, 1, false},
                            {1, small, 2, true},  // exclusive
                            {2, small, 3, false}};
  std::map<std::uint64_t, double> cache;
  const PackResult packed =
      pack_batches(d, jobs, partitioner, PackOptions{}, cache);
  ASSERT_EQ(packed.batches.size(), 2u);
  EXPECT_EQ(packed.batches[0].jobs, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(packed.batches[1].jobs, (std::vector<std::size_t>{1}));
  EXPECT_EQ(packed.spill_events, 0u);
  EXPECT_TRUE(packed.unplaceable.empty());
}

TEST(ExecutionService, ExclusiveUnplaceableJobFailsCleanly) {
  // Service-level pin of the exclusive solo-allocation-failure path.
  ExecutionService service(make_line_device(4), fast_service_options());
  JobOptions exclusive;
  exclusive.name = "solo-too-big";
  exclusive.exclusive = true;
  const JobHandle big =
      service.submit(get_benchmark("alu").circuit, exclusive);  // 5q > 4
  const JobHandle small = service.submit(get_benchmark("bell").circuit);
  service.flush();
  EXPECT_EQ(big.status(), JobStatus::Failed);
  EXPECT_NE(big.error().find("does not fit"), std::string::npos);
  EXPECT_EQ(small.status(), JobStatus::Done);
  EXPECT_EQ(service.stats().spill_events, 0u);
}

TEST(Packer, SingleBatchModeNeverSplits) {
  const Device d = make_line_device(6);
  const QucpPartitioner partitioner;
  const ProgramShape shape = shape_of(get_benchmark("adder").circuit);
  std::vector<PackJob> jobs;
  for (std::size_t i = 0; i < 3; ++i) jobs.push_back({i, shape, i, false});
  PackOptions opts;
  opts.single_batch = true;
  std::map<std::uint64_t, double> cache;
  const PackResult packed = pack_batches(d, jobs, partitioner, opts, cache);
  ASSERT_EQ(packed.batches.size(), 1u);
  EXPECT_EQ(packed.batches[0].jobs.size(), 3u);
}

TEST(FleetService, DrainsAcrossBackendsWithPerBackendBreakdown) {
  // Two-backend fleet with load balancing: every job completes, both
  // lanes execute batches, and the per-backend stats breakdown sums to
  // the service-wide totals.
  ServiceOptions opts = fast_service_options();
  opts.route_policy = RoutePolicy::LeastLoaded;
  BackendRegistry fleet(
      std::vector<Device>{make_toronto27(), make_toronto27()});
  ExecutionService service(std::move(fleet), opts);
  const auto outcomes = run_jobs(service, 24, 1);
  ASSERT_EQ(outcomes.size(), 24u);

  std::size_t per_backend[2] = {0, 0};
  for (const auto& [name, out] : outcomes) {
    ASSERT_TRUE(out.backend_id == 0 || out.backend_id == 1) << name;
    ++per_backend[out.backend_id];
  }
  EXPECT_GT(per_backend[0], 0u);
  EXPECT_GT(per_backend[1], 0u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_completed, 24u);
  EXPECT_EQ(stats.jobs_failed, 0u);
  ASSERT_EQ(stats.backends.size(), 2u);
  std::uint64_t sum_completed = 0;
  std::uint64_t sum_batches = 0;
  std::uint64_t sum_hits = 0;
  for (const BackendStats& bs : stats.backends) {
    EXPECT_EQ(bs.device, "ibmq_toronto27");
    EXPECT_EQ(bs.jobs_routed, bs.jobs_completed + bs.jobs_failed);
    EXPECT_GT(bs.batches_executed, 0u);
    sum_completed += bs.jobs_completed;
    sum_batches += bs.batches_executed;
    sum_hits += bs.transpile_cache.hits;
  }
  EXPECT_EQ(sum_completed, stats.jobs_completed);
  EXPECT_EQ(sum_batches, stats.batches_executed);
  EXPECT_EQ(sum_hits, stats.transpile_cache.hits);
  EXPECT_EQ(per_backend[0],
            static_cast<std::size_t>(stats.backends[0].jobs_completed));
}

TEST(FleetService, DeterministicAcrossSubmissionInterleavings) {
  // The fleet extension of the single-backend determinism contract: on a
  // heterogeneous 2-backend fleet, the same 24 jobs submitted serially,
  // in reverse, and from 4 racing threads must give every handle the
  // identical result — same counts, same routing (backend id) and same
  // per-backend batch assignment (batch index).
  auto fleet_service = [] {
    ServiceOptions opts = fast_service_options();
    opts.route_policy = RoutePolicy::LeastLoaded;
    return std::make_unique<ExecutionService>(
        BackendRegistry(
            std::vector<Device>{make_toronto27(), make_manhattan65()}),
        opts);
  };
  auto serial = fleet_service();
  const auto base = run_jobs(*serial, 24, 1);
  bool multiple_backends = false;
  for (const auto& [name, out] : base) {
    multiple_backends |= out.backend_id != base.begin()->second.backend_id;
  }
  EXPECT_TRUE(multiple_backends);

  auto reversed = fleet_service();
  EXPECT_EQ(run_jobs(*reversed, 24, 1, /*reversed=*/true), base);

  auto threaded = fleet_service();
  EXPECT_EQ(run_jobs(*threaded, 24, 4), base);
}

TEST(FleetService, BestEfsRoutesEveryJobToItsLowestErrorDevice) {
  // Acceptance pin: with BestEfs routing and no capacity pressure, every
  // job must execute on the device where its solo EFS is lowest —
  // checked against direct solo_efs_score probes with the same
  // partitioner configuration the service uses.
  ServiceOptions opts = fast_service_options();
  opts.route_policy = RoutePolicy::BestEfs;
  opts.max_batch_size = 0;  // unbounded: fullness never overrides routing
  const Device toronto = make_toronto27();
  const Device manhattan = make_manhattan65();
  BackendRegistry fleet(
      std::vector<Device>{make_toronto27(), make_manhattan65()});
  ExecutionService service(std::move(fleet), opts);

  std::vector<JobHandle> handles;
  std::vector<ProgramShape> shapes;
  for (const char* name : {"bell", "lin", "adder", "alu", "qec", "var"}) {
    const Circuit& c = get_benchmark(name).circuit;
    shapes.push_back(shape_of(c));
    JobOptions jopts;
    jopts.name = name;
    handles.push_back(service.submit(c, jopts));
  }
  service.flush();

  const QucpPartitioner partitioner(service.options().sigma);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const auto on_toronto = solo_efs_score(toronto, partitioner, shapes[i]);
    const auto on_manhattan =
        solo_efs_score(manhattan, partitioner, shapes[i]);
    ASSERT_TRUE(on_toronto && on_manhattan) << handles[i].name();
    const int expected = *on_toronto <= *on_manhattan ? 0 : 1;
    EXPECT_EQ(handles[i].result().batch.backend_id, expected)
        << handles[i].name() << " toronto=" << *on_toronto
        << " manhattan=" << *on_manhattan;
  }
}

TEST(FleetService, FourBackendFleetDrainsAtLeast2p5xFaster) {
  // Acceptance: a 4-backend fleet drains a 64-job queue with >= 2.5x the
  // throughput of the single-backend service on the same job stream,
  // measured as modeled device occupancy (each chip runs its batches
  // back to back; the fleet finishes when its busiest chip does).
  RuntimeModel model;
  model.shots = 4096;
  model.queue_depth = 5;
  auto modeled_drain_s = [&](std::size_t num_backends) {
    ServiceOptions opts = fast_service_options();
    opts.exec.shots = 64;
    opts.route_policy = RoutePolicy::LeastLoaded;
    std::vector<Device> devices;
    for (std::size_t i = 0; i < num_backends; ++i) {
      devices.push_back(make_toronto27());
    }
    ExecutionService service(BackendRegistry(std::move(devices)), opts);
    std::vector<JobHandle> handles;
    for (int i = 0; i < 64; ++i) {
      JobOptions jopts;
      jopts.name = "job" + std::to_string(i);
      handles.push_back(service.submit(mix_circuit(i), jopts));
    }
    service.flush();
    return modeled_fleet_drain_s(handles, num_backends, model);
  };
  const double single = modeled_drain_s(1);
  const double fleet = modeled_drain_s(4);
  EXPECT_GE(single / fleet, 2.5) << "single=" << single << " fleet=" << fleet;
}

TEST(FleetService, UnplaceableOnEveryDeviceFailsWithFleetMessage) {
  ServiceOptions opts = fast_service_options();
  opts.route_policy = RoutePolicy::BestEfs;
  BackendRegistry fleet(
      std::vector<Device>{make_line_device(4), make_line_device(4, 11)});
  ExecutionService service(std::move(fleet), opts);
  const JobHandle big =
      service.submit(get_benchmark("alu").circuit);  // 5 qubits > both
  const JobHandle small = service.submit(get_benchmark("bell").circuit);
  service.flush();
  EXPECT_EQ(big.status(), JobStatus::Failed);
  EXPECT_NE(big.error().find("does not fit on any of the 2 fleet devices"),
            std::string::npos);
  EXPECT_EQ(small.status(), JobStatus::Done);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.jobs_failed, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
}

TEST(FleetService, ExclusiveJobRunsAloneOnSomeBackend) {
  ServiceOptions opts = fast_service_options();
  opts.route_policy = RoutePolicy::LeastLoaded;
  BackendRegistry fleet(
      std::vector<Device>{make_toronto27(), make_toronto27()});
  ExecutionService service(std::move(fleet), opts);
  JobOptions exclusive;
  exclusive.name = "solo";
  exclusive.exclusive = true;
  const JobHandle solo =
      service.submit(get_benchmark("adder").circuit, exclusive);
  std::vector<JobHandle> rest;
  for (int i = 0; i < 3; ++i) {
    rest.push_back(service.submit(get_benchmark("bell").circuit));
  }
  service.flush();
  EXPECT_EQ(solo.result().batch.batch_size, 1u);
  for (const JobHandle& h : rest) {
    EXPECT_EQ(h.status(), JobStatus::Done);
  }
}

TEST(FleetService, ReservationStatsTrackExclusiveJobs) {
  // Three exclusive jobs on a two-backend fleet, one dispatch cycle: the
  // first two reservations each claim an idle chip (zero modeled wait),
  // the third defers a round and is admitted behind a closed reservation
  // batch — so the service counters record three reservation jobs and
  // exactly one positive wait (sum == max).
  ServiceOptions opts = fast_service_options();
  opts.route_policy = RoutePolicy::LeastLoaded;
  BackendRegistry fleet(
      std::vector<Device>{make_toronto27(), make_toronto27()});
  ExecutionService service(std::move(fleet), opts);
  JobOptions exclusive;
  exclusive.exclusive = true;
  std::vector<JobHandle> handles;
  for (int i = 0; i < 3; ++i) {
    exclusive.name = "solo-" + std::to_string(i);
    handles.push_back(
        service.submit(get_benchmark("adder").circuit, exclusive));
  }
  service.flush();
  for (const JobHandle& h : handles) {
    ASSERT_EQ(h.status(), JobStatus::Done) << h.name();
    EXPECT_EQ(h.result().batch.batch_size, 1u) << h.name();
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.reservation_jobs, 3u);
  EXPECT_GT(stats.reservation_wait_sum_s, 0.0);
  EXPECT_DOUBLE_EQ(stats.reservation_wait_sum_s, stats.reservation_wait_max_s);
}

TEST(FleetService, WaitAccountingIsAuditableAgainstAnIndependentPlan) {
  // The per-backend modeled-wait counters (ServiceStats) must be exactly
  // recomputable from an independent FleetScheduler run over the same
  // jobs: one flush = one dispatch cycle with a zero backlog snapshot, so
  // planning the canonically-sorted PackJobs with the same options must
  // reproduce wait_sum/wait_max per lane. After the flush every batch has
  // completed, so the modeled backlog must have drained back to zero.
  ServiceOptions opts = fast_service_options();
  opts.route_policy = RoutePolicy::LeastLoaded;
  const std::vector<Device> devices{make_toronto27(), make_manhattan65()};
  ExecutionService service(BackendRegistry(devices), opts);

  std::vector<Circuit> circuits;
  for (int i = 0; i < 12; ++i) circuits.push_back(mix_circuit(i));
  std::vector<JobHandle> handles;
  for (const Circuit& c : circuits) handles.push_back(service.submit(c));
  service.flush();
  for (const JobHandle& h : handles) ASSERT_EQ(h.status(), JobStatus::Done);

  // Replay the dispatch: canonical order sorts by (fingerprint, name, id).
  struct Key {
    std::uint64_t fingerprint;
    std::string name;
    std::size_t id;
  };
  std::vector<Key> keys;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    keys.push_back({circuit_fingerprint(circuits[i]), circuits[i].name(), i});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    return std::tie(a.fingerprint, a.name, a.id) <
           std::tie(b.fingerprint, b.name, b.id);
  });
  std::vector<PackJob> pack_jobs;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    pack_jobs.push_back(
        {i, shape_of(circuits[keys[i].id]), keys[i].fingerprint, false});
  }
  PackOptions popts;
  popts.max_batch_size = opts.max_batch_size;
  popts.efs_threshold = opts.efs_threshold;
  popts.single_batch = opts.single_batch;
  popts.runtime.shots = opts.exec.shots;
  BackendRegistry audit(devices);
  FleetScheduler scheduler(audit, opts.route_policy);
  const QucpPartitioner partitioner(opts.sigma);
  const std::vector<double> idle = {0.0, 0.0};
  const FleetPlan plan =
      scheduler.plan(pack_jobs, partitioner, popts, idle);

  const ServiceStats stats = service.stats();
  ASSERT_EQ(stats.backends.size(), 2u);
  for (std::size_t s = 0; s < 2; ++s) {
    EXPECT_DOUBLE_EQ(stats.backends[s].modeled_wait_sum_s, plan.wait_sum_s[s])
        << "lane " << s;
    EXPECT_DOUBLE_EQ(stats.backends[s].modeled_wait_max_s, plan.wait_max_s[s])
        << "lane " << s;
    EXPECT_DOUBLE_EQ(stats.backends[s].modeled_backlog_s, 0.0) << "lane " << s;
  }
  // The modeled waits are real numbers, not zeros: at least one lane saw
  // a job admitted behind planned work.
  EXPECT_GT(stats.backends[0].modeled_wait_sum_s +
                stats.backends[1].modeled_wait_sum_s,
            0.0);
}

TEST(FleetService, ExpectedLatencyDrainsDeterministicallyAcrossInterleavings) {
  // The queue-aware policy reads lane backlog snapshots, which could in
  // principle vary with worker timing — but one flush cycle starts from
  // zero backlog and canonical order, so routing must stay reproducible
  // across submission interleavings, like every other policy.
  auto fleet_service = [] {
    ServiceOptions opts = fast_service_options();
    opts.route_policy = RoutePolicy::ExpectedLatency;
    return std::make_unique<ExecutionService>(
        BackendRegistry(
            std::vector<Device>{make_toronto27(), make_manhattan65()}),
        opts);
  };
  auto serial = fleet_service();
  const auto base = run_jobs(*serial, 24, 1);
  bool multiple_backends = false;
  for (const auto& [name, out] : base) {
    multiple_backends |= out.backend_id != base.begin()->second.backend_id;
  }
  EXPECT_TRUE(multiple_backends);

  auto reversed = fleet_service();
  EXPECT_EQ(run_jobs(*reversed, 24, 1, /*reversed=*/true), base);

  auto threaded = fleet_service();
  EXPECT_EQ(run_jobs(*threaded, 24, 4), base);
}

TEST(ExecutionService, RealizedDurationFeedbackPopulatesLaneStats) {
  // feed_realized_durations on: every executed batch contributes a wall-
  // clock measurement and the lane's realized/modeled EWMA moves off its
  // 1.0 seed. The knob changes routing inputs only (an EWMA-scaled backlog
  // snapshot), never results — and with one flush cycle the backlog
  // snapshot is zero anyway, so the outcomes must match the modeled-only
  // service bit for bit.
  ServiceOptions opts = fast_service_options();
  ExecutionService modeled(make_toronto27(), opts);
  const auto base = run_jobs(modeled, 16, 1);
  const ServiceStats modeled_stats = modeled.stats();
  EXPECT_EQ(modeled_stats.backends[0].realized_batches, 0u);
  EXPECT_DOUBLE_EQ(modeled_stats.backends[0].realized_ratio, 1.0);
  EXPECT_DOUBLE_EQ(modeled_stats.backends[0].realized_exec_sum_s, 0.0);

  opts.feed_realized_durations = true;
  ExecutionService measured(make_toronto27(), opts);
  EXPECT_EQ(run_jobs(measured, 16, 1), base);
  const ServiceStats stats = measured.stats();
  EXPECT_EQ(stats.backends[0].realized_batches, stats.batches_executed);
  EXPECT_GT(stats.backends[0].realized_exec_sum_s, 0.0);
  EXPECT_GT(stats.backends[0].realized_ratio, 0.0);
  EXPECT_NE(stats.backends[0].realized_ratio, 1.0);

  // A second flush cycle routes on the EWMA-scaled backlog; everything
  // still drains.
  const auto second = run_jobs(measured, 16, 1);
  EXPECT_EQ(second.size(), 16u);
  EXPECT_EQ(measured.stats().jobs_failed, 0u);
}

TEST(Backend, TranspileCacheHitsAndEviction) {
  Backend backend(make_toronto27(), /*transpile_cache_capacity=*/2);
  const Circuit bell = get_benchmark("bell").circuit;
  const std::vector<int> partition{0, 1, 2, 4};
  const TranspileOptions topts = hardware_aware_options();

  const TranspiledProgram first =
      backend.transpile(bell, partition, topts, 7);
  const TranspiledProgram again =
      backend.transpile(bell, partition, topts, 7);
  EXPECT_EQ(first.physical.ops(), again.physical.ops());
  EXPECT_EQ(first.final_layout, again.final_layout);
  TranspileCacheStats stats = backend.cache_stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);

  // Distinct keys evict FIFO once capacity is exceeded.
  (void)backend.transpile(bell, partition, topts, 8);
  (void)backend.transpile(bell, partition, topts, 9);
  stats = backend.cache_stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(CircuitFingerprint, SensitiveToContentNotName) {
  Circuit a(2);
  a.h(0);
  a.cx(0, 1);
  Circuit b = a;
  b.set_name("renamed");
  EXPECT_EQ(circuit_fingerprint(a), circuit_fingerprint(b));
  b.x(1);
  EXPECT_NE(circuit_fingerprint(a), circuit_fingerprint(b));
  Circuit c(2);
  c.rx(0.5, 0);
  Circuit d(2);
  d.rx(0.5000001, 0);
  EXPECT_NE(circuit_fingerprint(c), circuit_fingerprint(d));
}

}  // namespace
}  // namespace qucp
