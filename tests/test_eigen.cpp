#include "vqe/eigen.hpp"

#include <gtest/gtest.h>

#include "vqe/pauli.hpp"

namespace qucp {
namespace {

TEST(Eigen, DiagonalMatrix) {
  Matrix m(3, 3);
  m(0, 0) = 2.0;
  m(1, 1) = -1.0;
  m(2, 2) = 0.5;
  const auto eig = hermitian_eigenvalues(m);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], -1.0, 1e-12);
  EXPECT_NEAR(eig[1], 0.5, 1e-12);
  EXPECT_NEAR(eig[2], 2.0, 1e-12);
}

TEST(Eigen, PauliX) {
  const auto eig = hermitian_eigenvalues(PauliString("X").matrix());
  EXPECT_NEAR(eig[0], -1.0, 1e-12);
  EXPECT_NEAR(eig[1], 1.0, 1e-12);
}

TEST(Eigen, PauliY_ComplexEntries) {
  const auto eig = hermitian_eigenvalues(PauliString("Y").matrix());
  EXPECT_NEAR(eig[0], -1.0, 1e-12);
  EXPECT_NEAR(eig[1], 1.0, 1e-12);
}

TEST(Eigen, TwoByTwoWithComplexOffDiagonal) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(1, 1) = -1.0;
  m(0, 1) = cx{0.5, 0.5};
  m(1, 0) = cx{0.5, -0.5};
  const auto eig = hermitian_eigenvalues(m);
  // Eigenvalues of [[1, c],[c*, -1]] are +/- sqrt(1 + |c|^2).
  const double expect = std::sqrt(1.0 + 0.5);
  EXPECT_NEAR(eig[0], -expect, 1e-10);
  EXPECT_NEAR(eig[1], expect, 1e-10);
}

TEST(Eigen, TraceAndSumInvariant) {
  // Random-ish Hermitian 4x4 built as A + A^dagger.
  Matrix a(4, 4);
  int k = 1;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = cx{0.1 * k, 0.05 * (k % 3)};
      ++k;
    }
  }
  Matrix h = a + a.dagger();
  const auto eig = hermitian_eigenvalues(h);
  double sum = 0.0;
  for (double e : eig) sum += e;
  EXPECT_NEAR(sum, h.trace().real(), 1e-9);
}

TEST(Eigen, PauliSumSpectrum) {
  // H = Z(x)Z has eigenvalues {1,-1,-1,1}.
  const auto eig = hermitian_eigenvalues(PauliString("ZZ").matrix());
  EXPECT_NEAR(eig[0], -1.0, 1e-12);
  EXPECT_NEAR(eig[1], -1.0, 1e-12);
  EXPECT_NEAR(eig[2], 1.0, 1e-12);
  EXPECT_NEAR(eig[3], 1.0, 1e-12);
}

TEST(Eigen, GroundStateEnergy) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = -7.0;
  EXPECT_NEAR(ground_state_energy(m), -7.0, 1e-12);
}

TEST(Eigen, RejectsNonHermitian) {
  Matrix m(2, 2, {1, 2, 3, 4});  // not Hermitian (m01 != conj(m10))
  EXPECT_THROW((void)hermitian_eigenvalues(m), std::invalid_argument);
  EXPECT_THROW((void)hermitian_eigenvalues(Matrix(2, 3)),
               std::invalid_argument);
}

}  // namespace
}  // namespace qucp
