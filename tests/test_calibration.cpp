#include "hardware/calibration.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace qucp {
namespace {

Topology line4() { return Topology(4, {{0, 1}, {1, 2}, {2, 3}}); }

TEST(Calibration, SynthesizedIsValid) {
  const Topology topo = line4();
  const Calibration cal =
      synthesize_calibration(topo, CalibrationProfile{}, Rng(1));
  EXPECT_NO_THROW(cal.validate(topo));
  EXPECT_EQ(cal.q1_error.size(), 4u);
  EXPECT_EQ(cal.cx_error.size(), 3u);
}

TEST(Calibration, Deterministic) {
  const Topology topo = line4();
  const Calibration a =
      synthesize_calibration(topo, CalibrationProfile{}, Rng(5));
  const Calibration b =
      synthesize_calibration(topo, CalibrationProfile{}, Rng(5));
  EXPECT_EQ(a.cx_error, b.cx_error);
  EXPECT_EQ(a.readout_error, b.readout_error);
  const Calibration c =
      synthesize_calibration(topo, CalibrationProfile{}, Rng(6));
  EXPECT_NE(a.cx_error, c.cx_error);
}

TEST(Calibration, MediansRoughlyHonored) {
  // On a larger graph the lognormal medians should land near the profile.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 99; ++i) edges.emplace_back(i, i + 1);
  const Topology topo(100, edges);
  CalibrationProfile p;
  p.cx_error_median = 0.02;
  p.bad_edge_fraction = 0.0;
  p.bad_readout_fraction = 0.0;
  const Calibration cal = synthesize_calibration(topo, p, Rng(7));
  EXPECT_NEAR(cal.avg_cx_error(), 0.02, 0.012);
  EXPECT_GT(cal.avg_readout_error(), 0.005);
  EXPECT_LT(cal.avg_q1_error(), 0.005);
}

TEST(Calibration, BadEdgesDegrade) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < 49; ++i) edges.emplace_back(i, i + 1);
  const Topology topo(50, edges);
  CalibrationProfile clean;
  clean.bad_edge_fraction = 0.0;
  clean.bad_readout_fraction = 0.0;
  CalibrationProfile dirty = clean;
  dirty.bad_edge_fraction = 0.3;
  dirty.bad_edge_multiplier = 5.0;
  const Calibration a = synthesize_calibration(topo, clean, Rng(9));
  const Calibration b = synthesize_calibration(topo, dirty, Rng(9));
  EXPECT_GT(b.avg_cx_error(), a.avg_cx_error());
}

TEST(Calibration, ValidateRejectsBadSizes) {
  const Topology topo = line4();
  Calibration cal =
      synthesize_calibration(topo, CalibrationProfile{}, Rng(1));
  cal.q1_error.pop_back();
  EXPECT_THROW(cal.validate(topo), std::invalid_argument);
}

TEST(Calibration, ValidateRejectsOutOfRangeErrors) {
  const Topology topo = line4();
  Calibration cal =
      synthesize_calibration(topo, CalibrationProfile{}, Rng(1));
  cal.cx_error[0] = 1.5;
  EXPECT_THROW(cal.validate(topo), std::invalid_argument);
  cal.cx_error[0] = -0.1;
  EXPECT_THROW(cal.validate(topo), std::invalid_argument);
}

TEST(Calibration, ValidateRejectsNonPositiveDurations) {
  const Topology topo = line4();
  Calibration cal =
      synthesize_calibration(topo, CalibrationProfile{}, Rng(1));
  cal.q1_duration_ns = 0.0;
  EXPECT_THROW(cal.validate(topo), std::invalid_argument);
  cal.q1_duration_ns = 35.0;
  cal.t1_us[2] = -1.0;
  EXPECT_THROW(cal.validate(topo), std::invalid_argument);
}

}  // namespace
}  // namespace qucp
