#include "circuit/gate.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace qucp {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Gate, ArityAndParams) {
  EXPECT_EQ(gate_arity(GateKind::H), 1);
  EXPECT_EQ(gate_arity(GateKind::CX), 2);
  EXPECT_EQ(gate_arity(GateKind::SWAP), 2);
  EXPECT_EQ(gate_param_count(GateKind::RZ), 1);
  EXPECT_EQ(gate_param_count(GateKind::U2), 2);
  EXPECT_EQ(gate_param_count(GateKind::U3), 3);
  EXPECT_EQ(gate_param_count(GateKind::CX), 0);
}

TEST(Gate, NameRoundTrip) {
  for (GateKind k :
       {GateKind::I, GateKind::X, GateKind::Y, GateKind::Z, GateKind::H,
        GateKind::S, GateKind::Sdg, GateKind::T, GateKind::Tdg, GateKind::SX,
        GateKind::RX, GateKind::RY, GateKind::RZ, GateKind::U1, GateKind::U2,
        GateKind::U3, GateKind::CX, GateKind::CZ, GateKind::SWAP,
        GateKind::Barrier, GateKind::Measure}) {
    const auto back = gate_from_name(gate_name(k));
    ASSERT_TRUE(back.has_value()) << gate_name(k);
    EXPECT_EQ(*back, k);
  }
  EXPECT_FALSE(gate_from_name("nonsense").has_value());
  EXPECT_EQ(*gate_from_name("cnot"), GateKind::CX);
  EXPECT_EQ(*gate_from_name("u"), GateKind::U3);
  EXPECT_EQ(*gate_from_name("p"), GateKind::U1);
}

TEST(Gate, UnitaryClassification) {
  EXPECT_TRUE(is_unitary_gate(GateKind::H));
  EXPECT_FALSE(is_unitary_gate(GateKind::Measure));
  EXPECT_FALSE(is_unitary_gate(GateKind::Barrier));
  EXPECT_TRUE(is_two_qubit_gate(GateKind::CZ));
  EXPECT_FALSE(is_two_qubit_gate(GateKind::T));
}

class UnitaryGateTest : public ::testing::TestWithParam<GateKind> {};

TEST_P(UnitaryGateTest, MatrixIsUnitary) {
  const GateKind kind = GetParam();
  const std::vector<double> params{0.37, -1.2, 2.5};
  const Matrix m = gate_matrix(
      kind, std::span<const double>(params.data(),
                                    gate_param_count(kind)));
  EXPECT_TRUE(m.is_unitary(1e-12)) << gate_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, UnitaryGateTest,
    ::testing::Values(GateKind::I, GateKind::X, GateKind::Y, GateKind::Z,
                      GateKind::H, GateKind::S, GateKind::Sdg, GateKind::T,
                      GateKind::Tdg, GateKind::SX, GateKind::RX, GateKind::RY,
                      GateKind::RZ, GateKind::U1, GateKind::U2, GateKind::U3,
                      GateKind::CX, GateKind::CZ, GateKind::SWAP),
    [](const auto& info) { return std::string(gate_name(info.param)); });

class InverseGateTest : public ::testing::TestWithParam<GateKind> {};

TEST_P(InverseGateTest, InverseComposesToIdentityUpToPhase) {
  const GateKind kind = GetParam();
  const std::vector<double> params{0.81, -0.33, 1.7};
  Gate g{kind, {}, {}};
  g.qubits.resize(static_cast<std::size_t>(gate_arity(kind)));
  for (std::size_t i = 0; i < g.qubits.size(); ++i) {
    g.qubits[i] = static_cast<int>(i);
  }
  g.params.assign(params.begin(),
                  params.begin() + gate_param_count(kind));
  const Gate inv = inverse_gate(g);
  const Matrix prod = gate_matrix(inv) * gate_matrix(g);
  // Identity up to global phase: |prod[0][0]| == 1 and prod proportional
  // to I.
  const cx phase = prod(0, 0);
  EXPECT_NEAR(std::abs(phase), 1.0, 1e-12) << gate_name(kind);
  Matrix expected = Matrix::identity(prod.rows());
  expected *= phase;
  EXPECT_TRUE(prod.approx_equal(expected, 1e-10)) << gate_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, InverseGateTest,
    ::testing::Values(GateKind::I, GateKind::X, GateKind::Y, GateKind::Z,
                      GateKind::H, GateKind::S, GateKind::Sdg, GateKind::T,
                      GateKind::Tdg, GateKind::SX, GateKind::RX, GateKind::RY,
                      GateKind::RZ, GateKind::U1, GateKind::U2, GateKind::U3,
                      GateKind::CX, GateKind::CZ, GateKind::SWAP),
    [](const auto& info) { return std::string(gate_name(info.param)); });

TEST(Gate, KnownMatrices) {
  const Matrix cxm = gate_matrix(GateKind::CX);
  // First operand (control) is the high bit: |10> -> |11>.
  EXPECT_EQ(cxm(3, 2), cx{1.0});
  EXPECT_EQ(cxm(2, 3), cx{1.0});
  EXPECT_EQ(cxm(0, 0), cx{1.0});
  EXPECT_EQ(cxm(1, 1), cx{1.0});

  const Matrix swap = gate_matrix(GateKind::SWAP);
  EXPECT_EQ(swap(1, 2), cx{1.0});
  EXPECT_EQ(swap(2, 1), cx{1.0});

  const Matrix rz = gate_matrix(GateKind::RZ, std::vector<double>{kPi});
  EXPECT_NEAR(rz(0, 0).imag(), -1.0, 1e-12);
  EXPECT_NEAR(rz(1, 1).imag(), 1.0, 1e-12);
}

TEST(Gate, SRelations) {
  const Matrix s = gate_matrix(GateKind::S);
  const Matrix z = gate_matrix(GateKind::Z);
  EXPECT_TRUE((s * s).approx_equal(z, 1e-12));
  const Matrix t = gate_matrix(GateKind::T);
  EXPECT_TRUE((t * t).approx_equal(s, 1e-12));
}

TEST(Gate, SxSquaredIsX) {
  const Matrix sx = gate_matrix(GateKind::SX);
  EXPECT_TRUE((sx * sx).approx_equal(gate_matrix(GateKind::X), 1e-12));
}

TEST(Gate, U3GeneralizesOthers) {
  // U3(pi/2, phi, lambda) == U2(phi, lambda)
  const std::vector<double> u2p{0.4, 1.1};
  const std::vector<double> u3p{kPi / 2.0, 0.4, 1.1};
  EXPECT_TRUE(gate_matrix(GateKind::U2, u2p)
                  .approx_equal(gate_matrix(GateKind::U3, u3p), 1e-12));
}

TEST(Gate, MatrixRejectsNonUnitaryOps) {
  EXPECT_THROW((void)gate_matrix(GateKind::Measure), std::invalid_argument);
  EXPECT_THROW((void)gate_matrix(GateKind::Barrier), std::invalid_argument);
  EXPECT_THROW((void)gate_matrix(GateKind::RZ), std::invalid_argument);
}

TEST(Gate, InverseRejectsNonUnitary) {
  Gate m{GateKind::Measure, {0}, {}};
  m.clbit = 0;
  EXPECT_THROW((void)inverse_gate(m), std::invalid_argument);
}

}  // namespace
}  // namespace qucp
